(* E22 — always-on statement statistics overhead.  Unlike tracing (E17),
   the Stmt_stats store cannot be switched off: every statement records one
   observation (one shard lock, a handful of field updates).  To price that
   without a "stats off" build, the same E17-style scan -> filter -> group
   batch is timed twice, interleaved: once as-is (one record per statement,
   the production path) and once with one extra [Stmt_stats.record] per
   statement into a standalone store.  The delta between the two is the
   marginal cost of a record, i.e. exactly what always-on stats add to a
   statement.  A raw record/sec microbenchmark sanity-checks the same
   number from below.  Acceptance: overhead <= 2% of rows/sec. *)

let sql =
  "SELECT s.prod AS prod, SUM(s.qty) AS units FROM sales s WHERE s.qty <= 3 \
   GROUP BY s.prod"

let reps = 20

let time_run n f g =
  let once h =
    let t0 = Unix.gettimeofday () in
    h ();
    Unix.gettimeofday () -. t0
  in
  (* Interleaved with alternating order, median of n — same protocol as
     E17, for the same GC-debt reason. *)
  let ts_f = Array.make n 0. and ts_g = Array.make n 0. in
  for i = 0 to n - 1 do
    if i land 1 = 0 then begin
      ts_f.(i) <- once f;
      ts_g.(i) <- once g
    end
    else begin
      ts_g.(i) <- once g;
      ts_f.(i) <- once f
    end
  done;
  let median ts =
    Array.sort compare ts;
    ts.(n / 2)
  in
  (median ts_f, median ts_g)

let run () =
  let cat =
    Star.load
      ~params:{ Star.default_params with days = 120; rows_per_day = 400 } ()
  in
  let svc = Service.create cat in
  let stmt = Service.prepare svc sql in
  ignore (Service.execute svc stmt);
  let fp = Service.stmt_fingerprint stmt in
  let input_rows = (Catalog.table_exn cat "sales").Catalog.tstats.Stats.card in
  (* The probe store stands in for "a second stats subsystem": the extra
     record call per statement measures the marginal cost of the one the
     service already does. *)
  let probe = Stmt_stats.create () in
  let batch_plain () =
    for _ = 1 to reps do
      ignore (Service.execute svc stmt)
    done
  in
  let batch_extra () =
    for _ = 1 to reps do
      let _, rel, io = Service.execute svc stmt in
      Stmt_stats.record probe ~fp ~query:sql
        ~rows:(Relation.cardinality rel)
        ~pages:(io.Buffer_pool.reads + io.Buffer_pool.writes)
        ~cache_hit:true ~ms:1.0 ()
    done
  in
  let t_plain, t_extra = time_run 15 batch_plain batch_extra in
  let rps t = float_of_int (reps * input_rows) /. t in
  let overhead = 1. -. (rps t_extra /. rps t_plain) in
  (* Raw record throughput, hot fingerprint (worst case: every record hits
     the same shard lock and the same entry). *)
  let n_micro = 1_000_000 in
  let micro = Stmt_stats.create () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n_micro do
    Stmt_stats.record micro ~fp ~query:sql ~rows:1 ~pages:1 ~ms:0.5 ()
  done;
  let ns_per_record =
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int n_micro
  in
  (* The delta of two interleaved medians jitters far above the ~100ns a
     record costs, so the acceptance number is the direct ratio: record
     cost over per-statement wall time.  The measured delta is reported as
     context (it brackets the ratio when the host is quiet). *)
  let stmt_ns = t_plain /. float_of_int reps *. 1e9 in
  let share = ns_per_record /. stmt_ns in
  let record mode t =
    Bench_util.Json.record
      ~name:(Printf.sprintf "stats-%s" mode)
      ~config:
        [ ("stats", mode);
          ("reps", string_of_int reps);
          ("input_rows", string_of_int input_rows) ]
      ~extra:
        [ ("overhead_share", share); ("measured_delta", overhead);
          ("ns_per_record", ns_per_record) ]
      ~io:0 ~wall_ms:(t *. 1000.) ~rows_per_sec:(rps t) ()
  in
  record "1x" t_plain;
  record "2x" t_extra;
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "E22  Always-on statement stats, %d reps of scan->filter->group \
          over %d fact rows; '2x' adds one extra record per statement \
          (acceptance: <= 2%%)"
         reps input_rows)
    ~header:[ "records/stmt"; "wall-ms"; "rows/sec"; "marginal overhead" ]
    [
      [ "1 (production)"; Bench_util.f1 (t_plain *. 1000.);
        Bench_util.f1 (rps t_plain); "-" ];
      [ "2"; Bench_util.f1 (t_extra *. 1000.); Bench_util.f1 (rps t_extra);
        Printf.sprintf "%.2f%%" (100. *. overhead) ];
    ];
  Printf.printf
    "\nraw record cost (hot fingerprint): %.0f ns/record over %.0f ns/stmt \
     = %.4f%% of statement time\n"
    ns_per_record stmt_ns (100. *. share);
  Printf.printf "store after run: tracked=%d recorded=%d\n"
    (Stmt_stats.tracked (Service.stats_store svc))
    (Stmt_stats.recorded (Service.stats_store svc));
  if share > 0.02 then
    Printf.printf
      "note: record share %.2f%% exceeds the 2%% acceptance bound on this \
       host.\n"
      (100. *. share)
  else
    Printf.printf "record share %.4f%% within the 2%% acceptance bound\n"
      (100. *. share)
