(* E20 — network front end: latency and throughput vs connection count
   (extension).  An in-process [Server] over a 4-worker pool is driven by
   the closed-loop load generator at 1, 4, 16 and 64 concurrent
   connections, reporting throughput and p50/p95/p99 statement latency;
   one open-loop run offers a fixed rate so latency is measured under
   constant offered load rather than self-clocked; and one run against a
   deliberately tiny admission queue shows over-admission being rejected
   (typed, counted) instead of buffered.  Temps must be zero after every
   drain. *)

let conn_counts = [ 1; 4; 16; 64 ]
let statements_per_conn = 40
let workers = 4

let sqls =
  [
    "SELECT e.dno AS dno, COUNT(*) AS heads FROM emp e WHERE e.sal > 1500 \
     GROUP BY e.dno";
    "SELECT e.dno AS dno, AVG(e.sal) AS avg_sal FROM emp e WHERE e.age > 30 \
     GROUP BY e.dno";
    "SELECT e.dno AS dno, AVG(e.sal) AS avg_sal FROM emp e, dept d WHERE \
     e.dno = d.dno AND d.budget > 100000 GROUP BY e.dno";
  ]

let make_catalog () =
  Emp_dept.load
    ~params:{ Emp_dept.default_params with Emp_dept.emps = 4000; seed = 5 } ()

let with_server ~max_queue f =
  Lifecycle.reset ();
  let cat = make_catalog () in
  let svc = Service.create cat in
  let result =
    Service.Pool.with_pool ~workers svc (fun pool ->
        let srv =
          Server.start
            ~config:{ Server.default_config with Server.port = 0; max_queue }
            pool
        in
        Fun.protect
          ~finally:(fun () ->
            Server.stop srv;
            Lifecycle.reset ())
          (fun () -> f cat srv))
  in
  result

let loadgen_config port conns mode =
  {
    Loadgen.default_config with
    Loadgen.port;
    connections = conns;
    statements = statements_per_conn;
    mode;
    sqls;
  }

let record ~name ~config (stats : Loadgen.stats) srv =
  Bench_util.Json.record ~name ~config
    ~extra:
      [
        ("ok", float_of_int stats.Loadgen.ok);
        ("errors", float_of_int stats.Loadgen.errors);
        ("rejected", float_of_int stats.Loadgen.rejected);
        ("admitted", float_of_int (Server.admitted srv));
        ("p50_ms", Loadgen.percentile stats.Loadgen.latencies_ms 50.);
        ("p95_ms", Loadgen.percentile stats.Loadgen.latencies_ms 95.);
        ("p99_ms", Loadgen.percentile stats.Loadgen.latencies_ms 99.);
      ]
    ~io:0 ~wall_ms:stats.Loadgen.wall_ms
    ~rows_per_sec:(Loadgen.throughput stats) ()

let run () =
  Printf.printf "E20: avq serve under concurrent connections\n";
  let rows = ref [] in
  (* closed loop: each connection self-clocks; capacity + latency curve *)
  List.iter
    (fun conns ->
      (* queue sized above the connection count: this is the capacity curve;
         the dedicated over-admission run below shows the rejection path *)
      with_server ~max_queue:128 (fun cat srv ->
          let stats =
            Loadgen.run (loadgen_config (Server.port srv) conns Loadgen.Closed)
          in
          let temps = Storage.live_temps (Catalog.storage cat) in
          if stats.Loadgen.errors > 0 then
            Printf.printf "!! %d unexpected statement errors at %d conns\n"
              stats.Loadgen.errors conns;
          if temps <> 0 then
            Printf.printf "!! %d leaked temps at %d conns\n" temps conns;
          record
            ~name:(Printf.sprintf "serve.closed.%dconns" conns)
            ~config:
              [
                ("mode", "closed");
                ("connections", string_of_int conns);
                ("workers", string_of_int workers);
              ]
            stats srv;
          rows :=
            [
              "closed";
              string_of_int conns;
              string_of_int stats.Loadgen.ok;
              string_of_int stats.Loadgen.rejected;
              Bench_util.f1 (Loadgen.throughput stats);
              Bench_util.f2 (Loadgen.percentile stats.Loadgen.latencies_ms 50.);
              Bench_util.f2 (Loadgen.percentile stats.Loadgen.latencies_ms 95.);
              Bench_util.f2 (Loadgen.percentile stats.Loadgen.latencies_ms 99.);
            ]
            :: !rows))
    conn_counts;
  (* open loop: fixed offered rate, latency under load instead of self-clock *)
  with_server ~max_queue:Server.default_config.Server.max_queue (fun _cat srv ->
      let stats =
        Loadgen.run
          (loadgen_config (Server.port srv) 16 (Loadgen.Open_rate 400.))
      in
      record ~name:"serve.open.16conns.400sps"
        ~config:
          [ ("mode", "open"); ("connections", "16"); ("rate_sps", "400") ]
        stats srv;
      rows :=
        [
          "open@400/s";
          "16";
          string_of_int stats.Loadgen.ok;
          string_of_int stats.Loadgen.rejected;
          Bench_util.f1 (Loadgen.throughput stats);
          Bench_util.f2 (Loadgen.percentile stats.Loadgen.latencies_ms 50.);
          Bench_util.f2 (Loadgen.percentile stats.Loadgen.latencies_ms 95.);
          Bench_util.f2 (Loadgen.percentile stats.Loadgen.latencies_ms 99.);
        ]
        :: !rows);
  (* over-admission: a 2-deep queue under 32 connections must reject (typed),
     not buffer without bound *)
  with_server ~max_queue:2 (fun _cat srv ->
      let stats =
        Loadgen.run (loadgen_config (Server.port srv) 32 Loadgen.Closed)
      in
      if stats.Loadgen.rejected = 0 then
        Printf.printf
          "!! expected admission rejections with max_queue=2 at 32 conns\n";
      record ~name:"serve.overadmission.32conns.queue2"
        ~config:
          [ ("mode", "closed"); ("connections", "32"); ("max_queue", "2") ]
        stats srv;
      rows :=
        [
          "closed,q=2";
          "32";
          string_of_int stats.Loadgen.ok;
          string_of_int stats.Loadgen.rejected;
          Bench_util.f1 (Loadgen.throughput stats);
          Bench_util.f2 (Loadgen.percentile stats.Loadgen.latencies_ms 50.);
          Bench_util.f2 (Loadgen.percentile stats.Loadgen.latencies_ms 95.);
          Bench_util.f2 (Loadgen.percentile stats.Loadgen.latencies_ms 99.);
        ]
        :: !rows);
  Bench_util.print_table ~title:"E20: serve throughput & latency percentiles"
    ~header:
      [ "mode"; "conns"; "ok"; "rejected"; "stmts/s"; "p50ms"; "p95ms"; "p99ms" ]
    (List.rev !rows)
