(* E18 — materialized aggregate views (extension).  A decision-support
   query that groups a large fact table can instead re-aggregate a small
   stored extent.  At three base-table sizes we run the same covered
   GROUP BY query from the base table and from the view and compare page
   IO and throughput (the rewrite must win by >= 5x at the largest size);
   we check the cost-based choice falls back to the base plan when the
   query is not subsumed or the extent is not cheaper; and at the largest
   size we compare the cost of absorbing append batches incrementally
   against recomputing the extent with REFRESH. *)

let sizes = [ 20_000; 60_000; 180_000 ]
let depts = 64
let view_sql =
  "SELECT e.dno AS dno, COUNT(*) AS c, SUM(e.sal) AS s, AVG(e.age) AS a \
   FROM emp e GROUP BY e.dno"
let query_sql =
  "SELECT e.dno AS d, COUNT(*) AS c, SUM(e.sal) AS s, AVG(e.age) AS a FROM \
   emp e GROUP BY e.dno"

let load emps =
  Emp_dept.load ~params:{ Emp_dept.default_params with emps; depts } ()

let mk_view cat =
  let reg = Matview.create () in
  let def = Binder.bind_matview_body cat ~name:"by_dept" (Parser.parse_select view_sql) in
  ignore (Matview.create_view cat reg ~name:"by_dept" ~sql:view_sql def);
  (reg, Option.get (Matview.find reg "by_dept"))

let timed_run cat plan =
  let ctx = Exec_ctx.create ~work_mem:32 cat in
  let t0 = Unix.gettimeofday () in
  let rel, io = Executor.run_measured ~cold:true ctx plan in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  (rel, io.Buffer_pool.reads + io.Buffer_pool.writes, wall_ms)

let rps rows wall_ms =
  if wall_ms > 0. then float_of_int rows /. (wall_ms /. 1000.) else 0.

let run () =
  let table_rows = ref [] in
  let largest_speedup = ref 0. in
  List.iter
    (fun emps ->
      let cat = load emps in
      let reg, _v = mk_view cat in
      let q = Binder.bind_sql cat query_sql in
      let base = Optimizer.optimize cat q in
      let res, decision = Matview.optimize cat reg q in
      (match decision with
      | Matview.Chosen _ -> ()
      | d ->
        Printf.printf "UNEXPECTED decision at %d: %s\n" emps
          (Matview.decision_to_string d));
      let brel, bio, bms = timed_run cat base.Optimizer.plan in
      let vrel, vio, vms = timed_run cat res.Optimizer.plan in
      let agree = Relation.multiset_equal brel vrel in
      let nrows = Relation.cardinality brel in
      let speedup = bms /. max 0.001 vms in
      if emps = List.fold_left max 0 sizes then largest_speedup := speedup;
      let record tag io wall_ms =
        Bench_util.Json.record
          ~name:(Printf.sprintf "%s@%d" tag emps)
          ~config:[ ("plan", tag); ("emps", string_of_int emps) ]
          ~extra:[ ("speedup", speedup); ("agree", if agree then 1. else 0.) ]
          ~io ~wall_ms ~rows_per_sec:(rps nrows wall_ms) ()
      in
      record "base" bio bms;
      record "view" vio vms;
      table_rows :=
        [ Bench_util.i emps; Bench_util.i nrows; Bench_util.i bio;
          Bench_util.i vio; Bench_util.f1 bms; Bench_util.f1 vms;
          Bench_util.f1 speedup; (if agree then "yes" else "NO") ]
        :: !table_rows)
    sizes;
  Bench_util.print_table
    ~title:
      "E18  Covered GROUP BY from the base table vs the materialized view \
       (same rows both ways; view must win by >= 5x at the largest size)"
    ~header:
      [ "emps"; "groups"; "base-io"; "view-io"; "base-ms"; "view-ms";
        "speedup"; "agree" ]
    (List.rev !table_rows);
  Printf.printf "\nlargest size speedup: %.1fx (must be >= 5)\n"
    !largest_speedup;

  (* Cost-based fallback: an uncovered predicate is not subsumed, and an
     extent as wide as the base table is matched but rejected on cost. *)
  let cat = load (List.hd sizes) in
  let reg, _ = mk_view cat in
  let q_uncovered =
    Binder.bind_sql cat
      "SELECT e.dno AS d, SUM(e.sal) AS s FROM emp e WHERE e.sal > 5000 \
       GROUP BY e.dno"
  in
  let _, d1 = Matview.optimize cat reg q_uncovered in
  let wide =
    Binder.bind_matview_body cat ~name:"per_emp"
      (Parser.parse_select
         "SELECT e.eno AS eno, COUNT(*) AS c, SUM(e.sal) AS s1, SUM(e.age) \
          AS s2, SUM(e.dno) AS s3, MIN(e.sal) AS m1, MAX(e.sal) AS x1, \
          MIN(e.age) AS m2, MAX(e.age) AS x2 FROM emp e GROUP BY e.eno")
  in
  ignore (Matview.create_view cat reg ~name:"per_emp" ~sql:"per_emp" wide);
  let q_wide =
    Binder.bind_sql cat
      "SELECT e.eno AS k, SUM(e.sal) AS s FROM emp e GROUP BY e.eno"
  in
  let _, d2 = Matview.optimize cat reg q_wide in
  Printf.printf
    "fallback: uncovered predicate -> %s (must be: no matching view)\n"
    (Matview.decision_to_string d1);
  Printf.printf "fallback: one-group-per-row extent -> %s (must be: cost)\n"
    (Matview.decision_to_string d2);

  (* Incremental maintenance vs REFRESH at the largest size. *)
  let emps = List.fold_left max 0 sizes in
  let cat = load emps in
  let reg, v = mk_view cat in
  let batches = 10 and batch_rows = 1000 in
  let next = ref 10_000_000 in
  let batch () =
    List.init batch_rows (fun i ->
        let id = !next + i in
        Tuple.make
          [ Value.Int id; Value.Int (id mod depts);
            Value.Int (1000 + (id mod 8000)); Value.Int (18 + (id mod 48)) ])
  in
  let delta_ms = ref 0. in
  for _ = 1 to batches do
    let rows = batch () in
    next := !next + batch_rows;
    let t0 = Unix.gettimeofday () in
    let stored = Catalog.insert cat ~table:"emp" rows in
    Matview.on_insert cat reg ~table:"emp" ~rows:stored;
    delta_ms := !delta_ms +. ((Unix.gettimeofday () -. t0) *. 1000.)
  done;
  let fresh = Matview.is_fresh cat v in
  let t0 = Unix.gettimeofday () in
  Matview.refresh cat reg "by_dept";
  let refresh_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let per_batch = !delta_ms /. float_of_int batches in
  Bench_util.Json.record ~name:"maintenance"
    ~config:
      [ ("emps", string_of_int emps); ("batches", string_of_int batches);
        ("batch_rows", string_of_int batch_rows) ]
    ~extra:
      [ ("per_batch_ms", per_batch); ("refresh_ms", refresh_ms);
        ("fresh_after_deltas", if fresh then 1. else 0.);
        ("delta_rows", float_of_int (Matview.stats reg).Matview.delta_rows) ]
    ~io:0 ~wall_ms:!delta_ms
    ~rows_per_sec:(rps (batches * batch_rows) !delta_ms) ();
  Printf.printf
    "maintenance @%d emps: %d batches x %d rows, %.2f ms/batch (incl. \
     append), REFRESH %.1f ms, view stayed fresh: %b\n"
    emps batches batch_rows per_batch refresh_ms fresh
