(* Shared helpers for the experiment harness. *)

(* ---- machine-readable benchmark records ----

   Experiments accumulate records as they run ([run_algo] records
   automatically); [main] writes the pending records to BENCH_E<k>.json
   after each experiment so CI can archive a perf trajectory. *)
module Json = struct
  (* Schema v2: every record is {name, config, metrics} — [config] holds the
     setup knobs that define the data point (strings), [metrics] the measured
     quantities (numbers).  [io], [wall_ms] and [rows_per_sec] are present in
     every record; experiments append extras ([hit_ratio], [overhead], ...).
     The envelope carries the schema version and a run timestamp supplied by
     the runner, so archived files from different CI runs are comparable. *)

  let schema_version = 2

  type record = {
    rname : string;
    rconfig : (string * string) list;
    rmetrics : (string * float) list;
  }

  let pending : record list ref = ref []

  let record ~name ?(config = []) ?(extra = []) ~io ~wall_ms ~rows_per_sec () =
    pending :=
      { rname = name;
        rconfig = config;
        rmetrics =
          ("io", float_of_int io) :: ("wall_ms", wall_ms)
          :: ("rows_per_sec", rows_per_sec) :: extra }
      :: !pending

  let escape s =
    let buf = Buffer.create (String.length s + 8) in
    String.iter
      (fun c ->
        match c with
        | '"' -> Buffer.add_string buf "\\\""
        | '\\' -> Buffer.add_string buf "\\\\"
        | c when Char.code c < 32 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
        | c -> Buffer.add_char buf c)
      s;
    Buffer.contents buf

  let num x =
    if Float.is_nan x then "0"
    else if Float.is_integer x && Float.abs x < 1e15 then
      Printf.sprintf "%.0f" x
    else Printf.sprintf "%.6g" x

  let write ~exp ~ts =
    let recs = List.rev !pending in
    pending := [];
    let oc = open_out (Printf.sprintf "BENCH_%s.json" exp) in
    let out fmt = Printf.fprintf oc fmt in
    out "{\n  \"experiment\": \"%s\",\n  \"schema\": %d,\n  \"ts\": %.3f,\n  \"records\": ["
      (escape exp) schema_version ts;
    List.iteri
      (fun i r ->
        out "%s\n    { \"name\": \"%s\", \"config\": {"
          (if i = 0 then "" else ",")
          (escape r.rname);
        List.iteri
          (fun j (k, v) ->
            out "%s\"%s\": \"%s\"" (if j = 0 then "" else ", ") (escape k)
              (escape v))
          r.rconfig;
        out "}, \"metrics\": {";
        List.iteri
          (fun j (k, v) ->
            out "%s\"%s\": %s" (if j = 0 then "" else ", ") (escape k) (num v))
          r.rmetrics;
        out "} }")
      recs;
    out "\n  ]\n}\n";
    close_out oc
end

type outcome = {
  est_cost : float;
  reads : int;
  writes : int;
  rows : int;
  opt_ms : float;
  search : Search_stats.t;
  plan : Physical.t;
}

let algo_name = function
  | Optimizer.Traditional -> "traditional"
  | Optimizer.Greedy_conservative -> "greedy"
  | Optimizer.Paper -> "paper"

let run_algo ?(work_mem = 32) ?paper_opts ?tag cat query algorithm =
  let options =
    {
      Optimizer.default_options with
      algorithm;
      work_mem;
      paper = Option.value ~default:Paper_opt.default_options paper_opts;
    }
  in
  let r = Optimizer.optimize ~options cat query in
  let opt_ms = r.Optimizer.time_ms in
  let ctx = Exec_ctx.create ~work_mem cat in
  let t0 = Unix.gettimeofday () in
  let rel, io = Executor.run_measured ~cold:true ctx r.Optimizer.plan in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let nrows = Relation.cardinality rel in
  Json.record
    ~name:(Option.value ~default:(algo_name algorithm) tag)
    ~config:[ ("algo", algo_name algorithm); ("work_mem", string_of_int work_mem) ]
    ~io:(io.Buffer_pool.reads + io.Buffer_pool.writes)
    ~wall_ms
    ~rows_per_sec:
      (if wall_ms > 0. then float_of_int nrows /. (wall_ms /. 1000.) else 0.)
    ();
  {
    est_cost = r.Optimizer.est.Cost_model.cost;
    reads = io.Buffer_pool.reads;
    writes = io.Buffer_pool.writes;
    rows = Relation.cardinality rel;
    opt_ms;
    search = r.Optimizer.search;
    plan = r.Optimizer.plan;
  }

let io_total o = o.reads + o.writes

(* Plan shape fingerprints for the Figure 4 discussion. *)
let rec count_joins = function
  | Physical.Block_nl_join j -> 1 + count_joins j.left + count_joins j.right
  | Physical.Hash_join j -> 1 + count_joins j.left + count_joins j.right
  | Physical.Merge_join j -> 1 + count_joins j.left + count_joins j.right
  | Physical.Index_nl_join j -> 1 + count_joins j.left
  | Physical.Seq_scan _ | Physical.Index_scan _ -> 0
  | Physical.Filter f -> count_joins f.input
  | Physical.Sort s -> count_joins s.input
  | Physical.Hash_group g | Physical.Sort_group g -> count_joins g.input
  | Physical.Project p -> count_joins p.input
  | Physical.Materialize m -> count_joins m.input
  | Physical.Limit l -> count_joins l.input
  | Physical.Exchange e -> count_joins e.input
  | Physical.Repartition r -> count_joins r.input

let rec count_groups = function
  | Physical.Hash_group g | Physical.Sort_group g -> 1 + count_groups g.input
  | Physical.Block_nl_join j -> count_groups j.left + count_groups j.right
  | Physical.Hash_join j -> count_groups j.left + count_groups j.right
  | Physical.Merge_join j -> count_groups j.left + count_groups j.right
  | Physical.Index_nl_join j -> count_groups j.left
  | Physical.Seq_scan _ | Physical.Index_scan _ -> 0
  | Physical.Filter f -> count_groups f.input
  | Physical.Sort s -> count_groups s.input
  | Physical.Project p -> count_groups p.input
  | Physical.Materialize m -> count_groups m.input
  | Physical.Limit l -> count_groups l.input
  | Physical.Exchange e -> count_groups e.input
  | Physical.Repartition r -> count_groups r.input

(* Inputs of the topmost group-by operators. *)
let rec top_group_inputs = function
  | Physical.Hash_group g | Physical.Sort_group g -> [ g.Physical.input ]
  | Physical.Block_nl_join j -> top_group_inputs j.left @ top_group_inputs j.right
  | Physical.Hash_join j -> top_group_inputs j.left @ top_group_inputs j.right
  | Physical.Merge_join j -> top_group_inputs j.left @ top_group_inputs j.right
  | Physical.Index_nl_join j -> top_group_inputs j.left
  | Physical.Seq_scan _ | Physical.Index_scan _ -> []
  | Physical.Filter f -> top_group_inputs f.input
  | Physical.Sort s -> top_group_inputs s.input
  | Physical.Project p -> top_group_inputs p.input
  | Physical.Materialize m -> top_group_inputs m.input
  | Physical.Limit l -> top_group_inputs l.input
  | Physical.Exchange e -> top_group_inputs e.input
  | Physical.Repartition r -> top_group_inputs r.input

(* Compact shape signature: (#groups, joins below the topmost group-bys,
   joins above them).  "Joins above > 0" means group-bys were evaluated
   early (push-down / pull-up placed them under later joins). *)
let shape plan =
  let groups = count_groups plan in
  let below =
    List.fold_left (fun acc t -> acc + count_joins t) 0 (top_group_inputs plan)
  in
  let total = count_joins plan in
  (groups, below, total - below)

let shape_label plan =
  let groups, below, above = shape plan in
  Printf.sprintf "%dG;%dJin;%dJout" groups below above

(* ---- tiny fixed-width table printer ---- *)

let print_table ~title ~header rows =
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (String.length c)) row
  in
  measure header;
  List.iter measure rows;
  Printf.printf "\n### %s\n" title;
  let line row =
    String.concat "  "
      (List.mapi (fun i c -> Printf.sprintf "%-*s" widths.(i) c) row)
  in
  print_endline (line header);
  print_endline (String.make (String.length (line header)) '-');
  List.iter (fun r -> print_endline (line r)) rows

let f1 x = Printf.sprintf "%.1f" x
let f2 x = Printf.sprintf "%.2f" x
let i s = string_of_int s
