(* E17 — observability overhead.  The session layer pays for tracing only
   when a tracer is installed: the untraced path runs the plain executor,
   the traced path runs under per-operator profiling and synthesizes spans
   from the profile tree after the run.  This experiment measures that
   price on the E14-style scan -> filter -> group workload: the same
   statement replayed through two services over one catalog — one with a
   tracer writing to /dev/null, one without — interleaved, median of 15.
   Acceptance: overhead <= 5% of rows/sec. *)

let sql =
  "SELECT s.prod AS prod, SUM(s.qty) AS units FROM sales s WHERE s.qty <= 3 \
   GROUP BY s.prod"

let reps = 20

let time_run n f g =
  let once h =
    let t0 = Unix.gettimeofday () in
    h ();
    Unix.gettimeofday () -. t0
  in
  (* Interleaved, alternating which side goes first: the second runner in a
     pair inherits the first one's GC debt (~10% on this workload), so a
     fixed order would charge that entirely to one side. *)
  let ts_f = Array.make n 0. and ts_g = Array.make n 0. in
  for i = 0 to n - 1 do
    if i land 1 = 0 then begin
      ts_f.(i) <- once f;
      ts_g.(i) <- once g
    end
    else begin
      ts_g.(i) <- once g;
      ts_f.(i) <- once f
    end
  done;
  let median ts =
    Array.sort compare ts;
    ts.(n / 2)
  in
  (median ts_f, median ts_g)

let run () =
  let cat =
    Star.load
      ~params:{ Star.default_params with days = 120; rows_per_day = 400 } ()
  in
  let svc_off = Service.create cat in
  let svc_on = Service.create cat in
  let tracer = Trace.create ~out:(open_out "/dev/null") ~owns_out:true () in
  Service.set_tracer svc_on (Some tracer);
  let stmt_off = Service.prepare svc_off sql in
  let stmt_on = Service.prepare svc_on sql in
  (* Warm both pools and caches before timing. *)
  ignore (Service.execute svc_off stmt_off);
  ignore (Service.execute svc_on stmt_on);
  (* The scan reads every fact row; rows/sec is input-relative like E14. *)
  let input_rows = (Catalog.table_exn cat "sales").Catalog.tstats.Stats.card in
  let batch n svc stmt () =
    for _ = 1 to n do
      ignore (Service.execute svc stmt)
    done
  in
  let t_off, t_on =
    time_run 15 (batch reps svc_off stmt_off) (batch reps svc_on stmt_on)
  in
  let rps t = float_of_int (reps * input_rows) /. t in
  let overhead = 1. -. (rps t_on /. rps t_off) in
  let record mode t =
    Bench_util.Json.record
      ~name:(Printf.sprintf "obs-%s" mode)
      ~config:
        [ ("obs", mode);
          ("reps", string_of_int reps);
          ("input_rows", string_of_int input_rows) ]
      ~extra:[ ("overhead", overhead) ]
      ~io:0 ~wall_ms:(t *. 1000.) ~rows_per_sec:(rps t) ()
  in
  record "off" t_off;
  record "on" t_on;
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "E17  Tracing + profiling overhead, %d reps of scan->filter->group \
          over %d fact rows (acceptance: <= 5%%)"
         reps input_rows)
    ~header:[ "obs"; "wall-ms"; "rows/sec"; "overhead" ]
    [
      [ "off"; Bench_util.f1 (t_off *. 1000.); Bench_util.f1 (rps t_off); "-" ];
      [ "on"; Bench_util.f1 (t_on *. 1000.); Bench_util.f1 (rps t_on);
        Printf.sprintf "%.1f%%" (100. *. overhead) ];
    ];
  Printf.printf "\nspans emitted: %d\n" (Trace.spans_emitted tracer);
  if overhead > 0.05 then
    Printf.printf
      "note: overhead %.1f%% exceeds the 5%% acceptance bound on this host \
       — per-operator profiling dominates on small inputs; re-run on an \
       unloaded machine before reading much into it.\n"
      (100. *. overhead)
  else
    Printf.printf "overhead %.1f%% within the 5%% acceptance bound\n"
      (100. *. overhead);
  Trace.close tracer
