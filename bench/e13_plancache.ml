(* E13 — the plan cache of the service layer (extension).  Decision-support
   workloads re-issue the same parameterized templates with fresh constants;
   the session layer should amortize the optimizer's DP + pull-up
   enumeration across those repeats.  We replay a repeated-template workload
   from the random query generator through one service twice — cache on and
   cache off — and compare optimizer wall time; we also force a catalog
   epoch bump mid-stream and check that no stale plan is ever served, and
   spot-check that cache-served plans compute the same result as freshly
   optimized ones. *)

let n_templates = 8
let n_calls = 160

let perturb rng v =
  match v with
  | Value.Int i -> Value.Int (i + Rng.in_range rng (-3) 3)
  | Value.Float f -> Value.Float (f *. (0.9 +. (0.2 *. Rng.float rng)))
  | Value.String _ | Value.Bool _ | Value.Date _ -> v

let make_workload rng cat =
  let templates =
    Array.init n_templates (fun _ -> Query_gen.generate ~complexity:`Rich rng cat)
  in
  let calls =
    Array.init n_calls (fun _ ->
        let q = templates.(Rng.int rng n_templates) in
        let ps = List.map (perturb rng) (Canon.params q) in
        (q, ps))
  in
  (templates, calls)

let replay ~cache_enabled cat calls =
  let config = { Service.default_config with Service.cache_enabled } in
  let svc = Service.create ~config cat in
  let plan_ms = ref 0. in
  Array.iter
    (fun (q, ps) ->
      let stmt = Service.prepare_query svc q in
      let p = Service.plan ~params:ps svc stmt in
      plan_ms := !plan_ms +. p.Service.plan_ms)
    calls;
  (svc, Service.stats svc, !plan_ms)

(* Spot-check semantics: a cache-served plan must compute the same rows as a
   fresh optimization of the same parameterized query. *)
let check_results cat calls =
  let svc = Service.create cat in
  let mismatches = ref 0 in
  Array.iteri
    (fun i (q, ps) ->
      if i < 3 * n_templates then begin
        let stmt = Service.prepare_query svc q in
        let p, rel, _ = Service.execute ~params:ps svc stmt in
        ignore p;
        let fresh = Optimizer.optimize cat (Canon.substitute q ps) in
        let ctx = Exec_ctx.create ~work_mem:32 cat in
        let rel' = Executor.run ctx fresh.Optimizer.plan in
        if not (Relation.multiset_equal rel rel') then incr mismatches
      end)
    calls;
  !mismatches

let run () =
  let params =
    { Tpcd.default_params with customers = 1200; orders_per_customer = 6;
      lines_per_order = 4; nations = 25 }
  in
  let cat = Tpcd.load ~params () in
  let rng = Rng.create ~seed:13 in
  let _templates, calls = make_workload rng cat in

  let svc, on, on_plan_ms = replay ~cache_enabled:true cat calls in
  let _, off, off_plan_ms = replay ~cache_enabled:false cat calls in

  (* Forced epoch bump: every cached plan must be invalidated, not served. *)
  Catalog.refresh_stats cat;
  let before = Service.stats svc in
  Array.iter
    (fun (q, ps) ->
      let stmt = Service.prepare_query svc q in
      ignore (Service.plan ~params:ps svc stmt))
    (Array.sub calls 0 (2 * n_templates));
  let after = Service.stats svc in

  let mismatches = check_results cat calls in

  let record mode (st : Service.stats) plan_ms =
    Bench_util.Json.record ~name:mode
      ~config:
        [ ("cache", mode);
          ("calls", string_of_int n_calls);
          ("templates", string_of_int n_templates) ]
      ~extra:
        [ ("hit_ratio", Service.hit_ratio st);
          ("hits", float_of_int st.Service.hits);
          ("rebinds", float_of_int st.Service.rebinds);
          ("misses", float_of_int st.Service.misses);
          ("opt_ms", st.Service.opt_ms_total) ]
      ~io:0 ~wall_ms:plan_ms
      ~rows_per_sec:(float_of_int n_calls /. (plan_ms /. 1000.))
      ()
  in
  record "on" on on_plan_ms;
  record "off" off off_plan_ms;

  let speedup = off.Service.opt_ms_total /. max 0.001 on.Service.opt_ms_total in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "E13  Plan cache on %d calls over %d random rich templates (hit \
          ratio must be >= 0.8; optimizer-time speedup >= 5x)"
         n_calls n_templates)
    ~header:
      [ "mode"; "calls"; "hits"; "rebinds"; "misses"; "hit-ratio"; "opt-ms";
        "plan-ms" ]
    [
      [ "cache"; Bench_util.i on.Service.calls; Bench_util.i on.Service.hits;
        Bench_util.i on.Service.rebinds; Bench_util.i on.Service.misses;
        Bench_util.f2 (Service.hit_ratio on);
        Bench_util.f1 on.Service.opt_ms_total; Bench_util.f1 on_plan_ms ];
      [ "no-cache"; Bench_util.i off.Service.calls; Bench_util.i off.Service.hits;
        Bench_util.i off.Service.rebinds; Bench_util.i off.Service.misses;
        Bench_util.f2 (Service.hit_ratio off);
        Bench_util.f1 off.Service.opt_ms_total; Bench_util.f1 off_plan_ms ];
    ];
  Printf.printf "\noptimizer-time speedup: %.1fx (plan-path %.1fx)\n" speedup
    (off_plan_ms /. max 0.001 on_plan_ms);
  Printf.printf
    "epoch bump: +%d invalidations, +%d misses, stale hits %d (must be 0)\n"
    (after.Service.invalidations - before.Service.invalidations)
    (after.Service.misses - before.Service.misses)
    after.Service.stale_hits;
  Printf.printf "result spot-check: %d mismatches (must be 0)\n" mismatches
