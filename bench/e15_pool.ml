(* E15 — concurrent session throughput over the worker pool (extension).
   The plan cache amortizes optimization across calls (E13); the pool
   amortizes it across *clients*: N executor worker domains share one
   service (one cache, one buffer pool) and run statements in parallel.
   We replay one fixed workload of perturbed repeated templates through
   pools of 1, 2, 4 and 8 workers and measure session throughput
   (statements/sec), checking that the shared cache behaves identically:
   hit ratio within 0.02 of the single-worker run, counters that add up
   exactly, and zero stale hits.  A spot-check compares pool results
   against fresh single-threaded optimization + execution. *)

let n_templates = 8
let n_calls = 160
let worker_counts = [ 1; 2; 4; 8 ]

let perturb rng v =
  match v with
  | Value.Int i -> Value.Int (i + Rng.in_range rng (-3) 3)
  | Value.Float f -> Value.Float (f *. (0.9 +. (0.2 *. Rng.float rng)))
  | Value.String _ | Value.Bool _ | Value.Date _ -> v

(* Reject templates whose single-shot execution blows the per-statement
   budget: a throughput benchmark over 160 calls x 4 pool sizes needs
   statements in the millisecond range, and the rich generator occasionally
   emits a full-lineitem blowup (seconds per call) that would turn the run
   into a measurement of one outlier. Screening is deterministic given the
   seed: candidates are drawn and tested in rng order. *)
let template_budget_ms = 200.

let make_workload rng cat =
  let accepted = ref [] in
  let n_accepted = ref 0 in
  while !n_accepted < n_templates do
    let q = Query_gen.generate ~complexity:`Rich rng cat in
    let r = Optimizer.optimize cat q in
    let ctx = Exec_ctx.create ~work_mem:32 cat in
    let t0 = Unix.gettimeofday () in
    ignore (Executor.run ctx r.Optimizer.plan);
    if (Unix.gettimeofday () -. t0) *. 1000. <= template_budget_ms then begin
      accepted := q :: !accepted;
      incr n_accepted
    end
  done;
  let templates = Array.of_list (List.rev !accepted) in
  Array.init n_calls (fun _ ->
      let q = templates.(Rng.int rng n_templates) in
      let ps = List.map (perturb rng) (Canon.params q) in
      (q, ps))

type run = {
  rworkers : int;
  rwall_ms : float;
  rstats : Service.stats;
  rio : int;
  rresults : Relation.t option array;
}

let run_pool cat calls workers =
  let svc = Service.create cat in
  (* Prime: one serial pass over every distinct template so the measured
     phase is the cached steady state the pool is built for. *)
  let seen = Hashtbl.create 16 in
  Array.iter
    (fun (q, _) ->
      let key = Canon.serialize q in
      if not (Hashtbl.mem seen key) then begin
        Hashtbl.add seen key ();
        ignore (Service.execute svc (Service.prepare_query svc q))
      end)
    calls;
  let io = ref 0 in
  let results = Array.make (Array.length calls) None in
  let t0 = Unix.gettimeofday () in
  Service.Pool.with_pool ~workers svc (fun pool ->
      let futs =
        Array.map
          (fun (q, ps) ->
            let stmt = Service.prepare_query svc q in
            Service.Pool.submit ~params:ps pool stmt)
          calls
      in
      Array.iteri
        (fun i fut ->
          let _p, rel, pio = Service.Pool.await fut in
          results.(i) <- Some rel;
          io := !io + pio.Buffer_pool.reads + pio.Buffer_pool.writes)
        futs);
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  {
    rworkers = workers;
    rwall_ms = wall_ms;
    rstats = Service.stats svc;
    rio = !io;
    rresults = results;
  }

(* Spot-check: pool results must match fresh single-threaded runs. *)
let check_results cat calls (r : run) =
  let mismatches = ref 0 in
  Array.iteri
    (fun i (q, ps) ->
      if i < 2 * n_templates then begin
        let fresh = Optimizer.optimize cat (Canon.substitute q ps) in
        let ctx = Exec_ctx.create ~work_mem:32 cat in
        let expected = Executor.run ctx fresh.Optimizer.plan in
        match r.rresults.(i) with
        | Some rel when Relation.multiset_equal expected rel -> ()
        | _ -> incr mismatches
      end)
    calls;
  !mismatches

let counters_add_up (s : Service.stats) =
  s.Service.hits + s.Service.rebinds + s.Service.misses
  + s.Service.recost_fallbacks + s.Service.rebind_conflicts
  = s.Service.calls

let run () =
  let params =
    { Tpcd.default_params with customers = 1200; orders_per_customer = 6;
      lines_per_order = 4; nations = 25 }
  in
  let cat = Tpcd.load ~params () in
  let rng = Rng.create ~seed:13 in
  let calls = make_workload rng cat in

  let runs = List.map (run_pool cat calls) worker_counts in
  let base = List.hd runs in
  let base_ratio = Service.hit_ratio base.rstats in
  let mismatches = check_results cat calls (List.nth runs 2) in
  let cores = Domain.recommended_domain_count () in

  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "E15  Worker-pool session throughput, %d calls over %d cached rich \
          templates, %d core(s) available (>= 2x stmts/sec at 4 workers \
          given >= 4 cores; hit ratio within 0.02 of 1 worker; 0 stale hits)"
         n_calls n_templates cores)
    ~header:
      [ "workers"; "wall-ms"; "stmts/sec"; "speedup"; "hit-ratio"; "drift";
        "stale"; "sum=calls" ]
    (List.map
       (fun r ->
         let ratio = Service.hit_ratio r.rstats in
         [ Bench_util.i r.rworkers;
           Bench_util.f1 r.rwall_ms;
           Bench_util.f1 (float_of_int n_calls /. (r.rwall_ms /. 1000.));
           Bench_util.f2 (base.rwall_ms /. r.rwall_ms);
           Bench_util.f2 ratio;
           Bench_util.f2 (Float.abs (ratio -. base_ratio));
           Bench_util.i r.rstats.Service.stale_hits;
           (if counters_add_up r.rstats then "yes" else "NO") ])
       runs);
  List.iter
    (fun r ->
      Bench_util.Json.record
        ~name:(Printf.sprintf "pool-w%d" r.rworkers)
        ~config:
          [ ("workers", string_of_int r.rworkers);
            ("calls", string_of_int n_calls);
            ("cores", string_of_int cores) ]
        ~extra:
          [ ("hit_ratio", Service.hit_ratio r.rstats);
            ("stale_hits", float_of_int r.rstats.Service.stale_hits) ]
        ~io:r.rio ~wall_ms:r.rwall_ms
        ~rows_per_sec:(float_of_int n_calls /. (r.rwall_ms /. 1000.))
        ())
    runs;
  Printf.printf "\nresult spot-check vs fresh optimization: %d mismatches (must be 0)\n"
    mismatches;
  if cores < 4 then
    Printf.printf
      "note: only %d core(s) available — parallel speedup is bounded by \
       available cores, so the throughput column measures pool overhead \
       here; the 2x criterion applies on hosts with >= 4 cores.\n"
      cores
