(* E19 — morsel-driven intra-query parallelism.

   Not a paper experiment: like E14 this tracks the repo's CPU-side perf
   trajectory.  The E14 scan->filter->group pipeline (75k lineitem rows)
   runs serial and through the exchange operator at dop 1, 2 and 4;
   outputs must stay byte-identical at every dop, dop 1 through the
   exchange must cost < 10% over the bare serial plan, and a multi-core
   host must show >= 2x rows/sec at dop 4.  On a single-core CI runner
   the scaling half of the verdict is waived (the determinism and
   dop-1-overhead checks still bind). *)

let col q n = Schema.column ~qual:q n Datatype.Int
let le q n v = Expr.Cmp (Expr.Le, Expr.Col (col q n), Expr.Const (Value.Int v))
let sum q n out = Aggregate.make Aggregate.Sum ~arg:(Expr.Col (col q n)) out

(* Interleaved trials scored by median, as in E14: machine-load drift hits
   every configuration equally. *)
let time_round n fs =
  let ts = Array.make_matrix (List.length fs) n 0. in
  for i = 0 to n - 1 do
    List.iteri
      (fun j f ->
        let t0 = Unix.gettimeofday () in
        f ();
        ts.(j).(i) <- Unix.gettimeofday () -. t0)
      fs
  done;
  List.mapi
    (fun j _ ->
      let row = ts.(j) in
      Array.sort compare row;
      row.(n / 2))
    fs

let run () =
  let cat =
    Tpcd.load
      ~params:
        {
          Tpcd.default_params with
          customers = 3000;
          orders_per_customer = 5;
          lines_per_order = 5;
          parts = 500;
          frames = 4096;
        }
      ()
  in
  let input_rows = 3000 * 5 * 5 in
  let serial =
    Physical.Hash_group
      {
        Physical.input =
          Physical.Seq_scan
            { alias = "l"; table = "lineitem"; filter = [ le "l" "qty" 5 ] };
        agg_qual = "g";
        keys = [ col "l" "pk" ];
        aggs = [ sum "l" "price" "rev" ];
        having = [];
      }
  in
  let dops = [ 1; 2; 4 ] in
  let plans =
    ("serial", 0, serial)
    :: List.map
         (fun d ->
           (Printf.sprintf "dop%d" d, d, Exchange.parallelize ~dop:d serial))
         dops
  in
  let ctx = Exec_ctx.create ~work_mem:256 cat in
  let run_plan p = Executor.run ~executor:`Batch ctx p in
  (* Correctness first: every parallel plan byte-identical to serial. *)
  let reference = run_plan serial in
  let identical =
    List.for_all
      (fun (_, _, p) ->
        let r = run_plan p in
        let ta = Relation.tuples reference and tb = Relation.tuples r in
        List.length ta = List.length tb && List.for_all2 Tuple.equal ta tb)
      plans
  in
  (* Warm the pool, then interleave 7 timed trials of each configuration. *)
  List.iter (fun (_, _, p) -> ignore (run_plan p)) plans;
  let medians =
    time_round 7 (List.map (fun (_, _, p) () -> ignore (run_plan p)) plans)
  in
  let rps t = float_of_int input_rows /. t in
  let timed =
    List.map2 (fun (name, d, _) t -> (name, d, t, rps t)) plans medians
  in
  let rps_of want =
    match List.find_opt (fun (n, _, _, _) -> n = want) timed with
    | Some (_, _, _, r) -> r
    | None -> 0.
  in
  let base = rps_of "serial" in
  List.iter
    (fun (name, d, t, r) ->
      Bench_util.Json.record
        ~name:(Printf.sprintf "tpcd.scan_filter_group.%s" name)
        ~config:
          [
            ("engine", if d = 0 then "batch" else "exchange");
            ("dop", string_of_int (max 1 d));
            ("input_rows", string_of_int input_rows);
          ]
        ~io:0 ~wall_ms:(t *. 1000.) ~rows_per_sec:r ())
    timed;
  Bench_util.print_table ~title:"E19: morsel-driven parallel scan+group"
    ~header:[ "plan"; "rows_in"; "M rows/s"; "vs serial"; "identical" ]
    (List.map
       (fun (name, _, _, r) ->
         [
           name;
           Bench_util.i input_rows;
           Printf.sprintf "%.2fM" (r /. 1e6);
           Bench_util.f2 (r /. base);
           (if identical then "yes" else "NO");
         ])
       timed);
  (* Per-operator counters of a profiled dop-4 run: the exchange node plus
     its worker-<i> children (rows, batches, wall ms, page IO each). *)
  (match List.find_opt (fun (n, _, _) -> n = "dop4") plans with
   | Some (_, _, p) ->
     let _, prof = Executor.run_profiled ~executor:`Batch ctx p in
     Printf.printf "\nper-operator counters (dop 4):\n%s\n"
       (Profile.to_string prof)
   | None -> ());
  let cores = Domain.recommended_domain_count () in
  let dop1_ok = rps_of "dop1" >= 0.9 *. base in
  let scaling_ok = rps_of "dop4" >= 2.0 *. rps_of "dop1" in
  Printf.printf "\nhost: %d recommended domains\n" cores;
  Printf.printf "verdict: %s\n"
    (if not identical then "NOT met — parallel output diverged from serial"
     else if not dop1_ok then
       "NOT met — dop 1 through the exchange regresses > 10%"
     else if scaling_ok then
       "reproduced — byte-identical output, dop 1 overhead < 10%, >= 2x \
        rows/sec at dop 4"
     else if cores < 2 then
       "partially reproduced — byte-identical output and dop 1 overhead < \
        10%; scaling not measurable on a single-core host"
     else "NOT met — < 2x rows/sec at dop 4 on a multi-core host")
