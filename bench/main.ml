(* Benchmark harness: regenerates every experiment of EXPERIMENTS.md.

     dune exec bench/main.exe                 -- all experiments
     dune exec bench/main.exe -- E1 E6        -- selected experiments
     dune exec bench/main.exe -- --bechamel   -- Bechamel optimizer micro-benchmarks
*)

let experiments =
  [
    ("E1", E1_example1.run);
    ("E2", E2_transforms.run);
    ("E3", E3_pushdown.run);
    ("E4", E4_fig4.run);
    ("E5", E5_multiview.run);
    ("E6", E6_noregress.run);
    ("E7", E7_searchspace.run);
    ("E8", E8_restrictions.run);
    ("E9", E9_costmodel.run);
    ("E10", E10_unnest.run);
    ("E11", E11_ablations.run);
    ("E12", E12_bushy.run);
    ("E13", E13_plancache.run);
    ("E14", E14_batchexec.run);
    ("E15", E15_pool.run);
    ("E16", E16_faults.run);
    ("E17", E17_obs.run);
    ("E18", E18_matview.run);
    ("E19", E19_parallel.run);
    ("E20", E20_serve.run);
    ("E21", E21_wal.run);
    ("E22", E22_stats.run);
  ]

(* One Bechamel test per experiment: optimizer latency on that experiment's
   representative query. *)
let bechamel_tests () =
  let open Bechamel in
  let opt algo cat q () = ignore (Optimizer.optimize
    ~options:{ Optimizer.default_options with algorithm = algo } cat q) in
  let empdept = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 5000 } () in
  let tpcd = Tpcd.load () in
  let chain5 = Chain.load ~n:5 () in
  let mk name f = Test.make ~name (Staged.stage f) in
  [
    mk "E1.optimize.example1.paper" (opt Optimizer.Paper empdept (Emp_dept.example1 ()));
    mk "E2.pullup.rewrite" (fun () ->
        ignore (Pullup.rewrite empdept
                  (Block.query_logical empdept (Emp_dept.example1 ()))));
    mk "E3.optimize.example2.greedy"
      (opt Optimizer.Greedy_conservative empdept (Emp_dept.example2 ()));
    mk "E4.optimize.q17.paper" (opt Optimizer.Paper tpcd (Tpcd.q_small_quantity_parts ()));
    mk "E5.optimize.two_views.paper" (opt Optimizer.Paper tpcd (Tpcd.q_two_views ()));
    mk "E6.optimize.big_spenders.traditional"
      (opt Optimizer.Traditional tpcd (Tpcd.q_big_spenders ()));
    mk "E7.optimize.chain5.paper"
      (opt Optimizer.Paper chain5 (Chain.chain_query ~view_size:2 ~n:5));
    mk "E8.optimize.chain5.k0"
      (fun () ->
        ignore
          (Optimizer.optimize
             ~options:
               { Optimizer.default_options with
                 paper = { Paper_opt.default_options with k_pullup = 0 } }
             chain5 (Chain.chain_query ~view_size:2 ~n:5)));
    mk "E9.estimate.example1" (fun () ->
        let r = Optimizer.optimize empdept (Emp_dept.example1 ()) in
        ignore (Cost_model.estimate empdept ~work_mem:32 r.Optimizer.plan));
    mk "E10.bind.nested" (fun () ->
        ignore
          (Binder.bind_sql empdept
             "SELECT e1.eno AS eno FROM emp e1 WHERE e1.sal > (SELECT AVG(e2.sal) FROM emp e2 WHERE e2.dno = e1.dno)"));
  ]

let run_bechamel () =
  let open Bechamel in
  let open Bechamel.Toolkit in
  let instances = [ Instance.monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let tests = bechamel_tests () in
  List.iter
    (fun test ->
      List.iter
        (fun (name, result) ->
          let stats =
            Analyze.one (Analyze.ols ~bootstrap:0 ~r_square:false
                           ~predictors:[| Measure.run |])
              Instance.monotonic_clock result
          in
          match Analyze.OLS.estimates stats with
          | Some [ est ] -> Printf.printf "%-42s %12.1f ns/run\n" name est
          | _ -> Printf.printf "%-42s (no estimate)\n" name)
        (Benchmark.all cfg instances test
         |> Hashtbl.to_seq |> List.of_seq
         |> List.map (fun (k, v) -> (k, v))))
    tests

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  if List.mem "--bechamel" args then run_bechamel ()
  else begin
    let selected = List.filter (fun a -> not (String.length a > 1 && a.[0] = '-')) args in
    let to_run =
      if selected = [] then experiments
      else List.filter (fun (n, _) -> List.mem n selected) experiments
    in
    let ts = Unix.gettimeofday () in
    List.iter
      (fun (name, run) ->
        Printf.printf "\n================ %s ================\n%!" name;
        run ();
        Bench_util.Json.write ~exp:name ~ts;
        print_newline ())
      to_run
  end
