(* E16 — graceful degradation under injected storage faults (robustness).
   A 4-worker pool replays a fixed statement mix while the storage layer
   injects read faults at increasing rates.  With a retry budget, transient
   faults should be absorbed (throughput degrades smoothly, every statement
   still succeeds and matches the fault-free results); with retries off, the
   same faults surface as typed per-statement errors while the pool and the
   remaining statements keep going.  Either way: zero worker deaths and zero
   temp-file leaks. *)

let workers = 4
let reps = 40
let fault_rates = [ 0.0; 0.001; 0.01; 0.05 ]
let retry_budget = 8

let sqls =
  [
    "SELECT c.nation AS nation, COUNT(*) AS n FROM customer c GROUP BY \
     c.nation";
    "SELECT c.nation AS nation, SUM(o.totalprice) AS total FROM customer c, \
     orders o WHERE o.ck = c.ck GROUP BY c.nation";
    "SELECT o.ck AS ck, COUNT(*) AS n FROM orders o GROUP BY o.ck";
    "SELECT l.ok AS ok, SUM(l.price) AS rev FROM lineitem l GROUP BY l.ok";
  ]

type run = {
  rrate : float;
  rretries : int;
  rwall_ms : float;
  rok : int;
  rerrors : int;
  rmismatch : int;
  rfaults : Buffer_pool.fault_stats;
  rstats : Service.stats;
  rexecuted : int;
  rleaks : int;
}

let run_rate cat baseline ~rate ~retries =
  let st = Catalog.storage cat in
  Storage.Faults.clear st;
  Storage.Faults.reset_stats st;
  if rate > 0. then begin
    let spec = Printf.sprintf "seed=17;retries=%d;read:p=%g" retries rate in
    match Fault.parse spec with
    | Ok plan -> Storage.Faults.install st plan
    | Error m -> failwith ("E16: bad spec: " ^ m)
  end;
  let svc = Service.create cat in
  let ok = ref 0 and errors = ref 0 and mismatch = ref 0 in
  let t0 = Unix.gettimeofday () in
  let executed =
    Service.Pool.with_pool ~workers svc (fun pool ->
        let futs =
          List.concat_map
            (fun _ ->
              List.mapi (fun i sql -> (i, Service.Pool.submit_sql pool sql))
                sqls)
            (List.init reps Fun.id)
        in
        List.iter
          (fun (i, fut) ->
            match Service.Pool.await fut with
            | _, rel, _ ->
              incr ok;
              if not (Relation.multiset_equal (List.nth baseline i) rel) then
                incr mismatch
            | exception Avq_error.Error _ -> incr errors)
          futs;
        Service.Pool.executed pool)
  in
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let faults = Storage.Faults.stats st in
  Storage.Faults.clear st;
  {
    rrate = rate;
    rretries = retries;
    rwall_ms = wall_ms;
    rok = !ok;
    rerrors = !errors;
    rmismatch = !mismatch;
    rfaults = faults;
    rstats = Service.stats svc;
    rexecuted = executed;
    rleaks = Storage.live_temps st;
  }

let run () =
  let params =
    { Tpcd.default_params with customers = 600; orders_per_customer = 5;
      lines_per_order = 4; nations = 20 }
  in
  let cat = Tpcd.load ~params () in
  let njobs = reps * List.length sqls in
  (* fault-free baseline relations, one per template *)
  let base_svc = Service.create cat in
  let baseline =
    List.map (fun sql -> let _, rel, _ = Service.submit base_svc sql in rel) sqls
  in
  let with_retries =
    List.map (fun rate -> run_rate cat baseline ~rate ~retries:retry_budget)
      fault_rates
  in
  let no_retries = run_rate cat baseline ~rate:0.01 ~retries:0 in
  let runs = with_retries @ [ no_retries ] in

  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "E16  Throughput and degradation vs injected read-fault rate, %d \
          statements on %d workers (retries=%d rows; last row retries=0: \
          typed errors, no deaths; all rows: 0 mismatches, 0 leaks, \
          executed=%d)"
         njobs workers retry_budget njobs)
    ~header:
      [ "fault-p"; "retries"; "wall-ms"; "stmts/sec"; "ok"; "errors";
        "injected"; "recovered"; "exhausted"; "mismatch"; "leaks"; "executed" ]
    (List.map
       (fun r ->
         [ Printf.sprintf "%g" r.rrate;
           Bench_util.i r.rretries;
           Bench_util.f1 r.rwall_ms;
           Bench_util.f1 (float_of_int njobs /. (r.rwall_ms /. 1000.));
           Bench_util.i r.rok;
           Bench_util.i r.rerrors;
           Bench_util.i r.rfaults.Buffer_pool.injected;
           Bench_util.i r.rfaults.Buffer_pool.recovered;
           Bench_util.i r.rfaults.Buffer_pool.exhausted;
           Bench_util.i r.rmismatch;
           Bench_util.i r.rleaks;
           Bench_util.i r.rexecuted ])
       runs);
  List.iter
    (fun r ->
      Bench_util.Json.record
        ~name:(Printf.sprintf "faults-p%g-r%d" r.rrate r.rretries)
        ~config:
          [ ("fault_p", Printf.sprintf "%g" r.rrate);
            ("retries", string_of_int r.rretries);
            ("workers", string_of_int workers) ]
        ~extra:
          [ ("ok", float_of_int r.rok);
            ("errors", float_of_int r.rerrors);
            ("injected", float_of_int r.rfaults.Buffer_pool.injected);
            ("retried", float_of_int r.rfaults.Buffer_pool.retried);
            ("recovered", float_of_int r.rfaults.Buffer_pool.recovered);
            ("exhausted", float_of_int r.rfaults.Buffer_pool.exhausted);
            ("mismatches", float_of_int r.rmismatch);
            ("leaks", float_of_int r.rleaks);
            ("executed", float_of_int r.rexecuted);
            ("io_faults",
             float_of_int r.rstats.Service.errors.Service.io_faults);
            ("hit_ratio", Service.hit_ratio r.rstats) ]
        ~io:0 ~wall_ms:r.rwall_ms
        ~rows_per_sec:(float_of_int njobs /. (r.rwall_ms /. 1000.))
        ())
    runs;
  let bad =
    List.exists
      (fun r -> r.rmismatch > 0 || r.rleaks > 0 || r.rexecuted <> njobs)
      runs
  in
  let retry_errors =
    List.exists (fun r -> r.rretries > 0 && r.rerrors > 0) with_retries
  in
  Printf.printf
    "\nacceptance: %s (every run: 0 mismatches, 0 temp leaks, all %d jobs \
     executed%s)\n"
    (if bad || retry_errors then "FAIL" else "ok")
    njobs
    (if retry_errors then "; UNEXPECTED errors despite retry budget" else
       "; retried runs error-free")
