(* E14 — batched (vectorized) execution engine vs. the row-at-a-time
   volcano interpreter.

   Not a paper experiment: the paper's claims are about IO cost, and both
   engines are constructed to incur *identical* page IO (same plans, same
   page-touch order).  This experiment establishes the repo's CPU-side perf
   trajectory: rows/sec of scan→filter→group and scan→filter→join→group
   pipelines over the TPC-D-like and star workloads, row vs. batch path,
   plus per-operator counters from the profiled batch run. *)

let col q n = Schema.column ~qual:q n Datatype.Int
let le q n v = Expr.Cmp (Expr.Le, Expr.Col (col q n), Expr.Const (Value.Int v))
let sum q n out = Aggregate.make Aggregate.Sum ~arg:(Expr.Col (col q n)) out

(* Interleave trials of the two engines so machine-load drift hits both
   equally, and score each by its median trial — a median keeps one slow
   (or one lucky) run from swinging the reported ratio. *)
let time_pair n f g =
  let once h =
    let t0 = Unix.gettimeofday () in
    h ();
    Unix.gettimeofday () -. t0
  in
  let ts_f = Array.make n 0. and ts_g = Array.make n 0. in
  for i = 0 to n - 1 do
    ts_f.(i) <- once f;
    ts_g.(i) <- once g
  done;
  let median ts =
    Array.sort compare ts;
    ts.(n / 2)
  in
  (median ts_f, median ts_g)

type outcome = {
  same : bool;
  io_row : int;
  io_batch : int;
  rps_row : float;
  rps_batch : float;
}

let bench_pipeline ~cat ~name ~input_rows plan =
  let ctx = Exec_ctx.create ~work_mem:256 cat in
  let rel_row, io_row = Executor.run_measured ~cold:true ~executor:`Row ctx plan in
  let rel_batch, io_batch =
    Executor.run_measured ~cold:true ~executor:`Batch ctx plan
  in
  let same = Relation.multiset_equal rel_row rel_batch in
  let io (s : Buffer_pool.stats) = s.Buffer_pool.reads + s.Buffer_pool.writes in
  (* Warm the pool, then time CPU-side throughput (median of 7,
     interleaved). *)
  ignore (Executor.run ~executor:`Row ctx plan);
  ignore (Executor.run ~executor:`Batch ctx plan);
  let t_row, t_batch =
    time_pair 7
      (fun () -> ignore (Executor.run ~executor:`Row ctx plan))
      (fun () -> ignore (Executor.run ~executor:`Batch ctx plan))
  in
  let rps t = float_of_int input_rows /. t in
  let record engine t =
    Bench_util.Json.record
      ~name:(Printf.sprintf "%s.%s" name engine)
      ~config:
        [ ("engine", engine); ("dop", "1");
          ("input_rows", string_of_int input_rows) ]
      ~io:(io (if engine = "row" then io_row else io_batch))
      ~wall_ms:(t *. 1000.) ~rows_per_sec:(rps t) ()
  in
  record "row" t_row;
  record "batch" t_batch;
  {
    same;
    io_row = io io_row;
    io_batch = io io_batch;
    rps_row = rps t_row;
    rps_batch = rps t_batch;
  }

let run () =
  let tpcd =
    Tpcd.load
      ~params:
        {
          Tpcd.default_params with
          customers = 3000;
          orders_per_customer = 5;
          lines_per_order = 5;
          parts = 500;
          frames = 4096;
        }
      ()
  in
  let star =
    Star.load
      ~params:
        {
          Star.default_params with
          days = 365;
          products = 1000;
          stores = 50;
          rows_per_day = 300;
          frames = 4096;
        }
      ()
  in
  let lineitems = 3000 * 5 * 5 in
  let sales_rows = 365 * 300 in
  let scan_l =
    Physical.Seq_scan { alias = "l"; table = "lineitem"; filter = [ le "l" "qty" 5 ] }
  in
  let tpcd_sfg =
    Physical.Hash_group
      {
        Physical.input = scan_l;
        agg_qual = "g";
        keys = [ col "l" "pk" ];
        aggs = [ sum "l" "price" "rev" ];
        having = [];
      }
  in
  let tpcd_sfjg =
    Physical.Hash_group
      {
        Physical.input =
          Physical.Hash_join
            {
              left = Physical.Seq_scan { alias = "o"; table = "orders"; filter = [] };
              right = scan_l;
              keys = [ (col "o" "ok", col "l" "ok") ];
              cond = [];
              build_side = `Left;
            };
        agg_qual = "g";
        keys = [ col "l" "pk" ];
        aggs = [ sum "l" "price" "rev" ];
        having = [];
      }
  in
  let star_sfg =
    Physical.Hash_group
      {
        Physical.input =
          Physical.Seq_scan
            { alias = "s"; table = "sales"; filter = [ le "s" "qty" 3 ] };
        agg_qual = "g";
        keys = [ col "s" "prod" ];
        aggs = [ sum "s" "qty" "units" ];
        having = [];
      }
  in
  let pipelines =
    [
      ("tpcd.scan_filter_group", tpcd, lineitems, tpcd_sfg);
      ("tpcd.scan_filter_join_group", tpcd, lineitems, tpcd_sfjg);
      ("star.scan_filter_group", star, sales_rows, star_sfg);
    ]
  in
  let rows =
    List.map
      (fun (name, cat, input_rows, plan) ->
        let o = bench_pipeline ~cat ~name ~input_rows plan in
        ( name,
          [
            name;
            Bench_util.i input_rows;
            Printf.sprintf "%.2fM" (o.rps_row /. 1e6);
            Printf.sprintf "%.2fM" (o.rps_batch /. 1e6);
            Bench_util.f2 (o.rps_batch /. o.rps_row);
            Bench_util.i o.io_row;
            Bench_util.i o.io_batch;
            (if o.same && o.io_row = o.io_batch then "yes" else "NO");
          ],
          o ))
      pipelines
  in
  Bench_util.print_table ~title:"E14: row vs batch execution engine"
    ~header:
      [ "pipeline"; "rows_in"; "row M/s"; "batch M/s"; "speedup"; "io(row)";
        "io(batch)"; "identical" ]
    (List.map (fun (_, r, _) -> r) rows);
  (* Per-operator counters of the profiled batch run (join pipeline). *)
  let ctx = Exec_ctx.create ~work_mem:256 tpcd in
  let _, prof = Executor.run_profiled ~executor:`Batch ctx tpcd_sfjg in
  Printf.printf "\nper-operator counters (batch, tpcd.scan_filter_join_group):\n%s\n"
    (Profile.to_string prof);
  let ok =
    List.for_all
      (fun (name, _, o) ->
        let is_sfg =
          name = "tpcd.scan_filter_group" || name = "star.scan_filter_group"
        in
        o.same && o.io_row = o.io_batch
        && ((not is_sfg) || o.rps_batch >= 2.0 *. o.rps_row))
      rows
  in
  Printf.printf "\nverdict: %s\n"
    (if ok then
       "reproduced — batch path >= 2x rows/sec on scan->filter->group, \
        identical results and page IO"
     else "NOT met — see table above")
