(* E21 — durability overhead and recovery time (extension).

   Part 1: the write path.  The same INSERT sequence (with one maintained
   materialized view absorbing every statement) runs with no WAL, with
   [Fsync_always], with group commit, and with [Fsync_never]; the spread is
   the price of each durability level on top of the in-memory write.

   Part 2: recovery.  A data directory is populated with a growing number
   of committed inserts past its last checkpoint; [Recovery.recover] is
   timed against each, showing recovery cost scaling with the WAL tail (and
   the checkpoint putting a floor under it). *)

let n_inserts = 300

let mv_sql =
  "SELECT e.dno AS dno, COUNT(*) AS c, SUM(e.sal) AS s FROM emp e GROUP BY \
   e.dno"

let load () =
  Emp_dept.load
    ~params:{ Emp_dept.default_params with Emp_dept.emps = 2000; seed = 3 }
    ()

let fresh_dir tag =
  let d =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "avq_e21_%s_%d" tag (Unix.getpid ()))
  in
  if Sys.file_exists d then
    Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d);
  d

let insert_sql i =
  Printf.sprintf "INSERT INTO emp VALUES (%d, %d, %d, %d)" (900000 + i)
    (i mod 8)
    (1000 + (i mod 5000))
    (20 + (i mod 40))

let run_inserts svc =
  let t0 = Unix.gettimeofday () in
  for i = 1 to n_inserts do
    ignore (Service.exec_statement svc (insert_sql i))
  done;
  (Unix.gettimeofday () -. t0) *. 1000.

let durable_service ~tag ~fsync_mode =
  let dir = fresh_dir tag in
  let cat, mviews, writer, _ =
    Recovery.recover ~data_dir:dir ~fsync_mode ~meta:"e21" ~seed:load ()
  in
  let svc = Service.create ~mviews cat in
  Service.attach_wal svc ~data_dir:dir writer;
  (svc, dir)

let bench_mode ~name ~fsync_label svc =
  ignore (Service.exec_statement svc ("CREATE MATERIALIZED VIEW by_dept AS " ^ mv_sql));
  let wall_ms = run_inserts svc in
  let per_insert = wall_ms /. float_of_int n_inserts in
  let fsyncs, bytes =
    match Service.wal svc with
    | Some w ->
      let s = Wal.stats w in
      (s.Wal.fsyncs, s.Wal.bytes)
    | None -> (0, 0)
  in
  Printf.printf "  %-12s %6.1f ms total  %6.3f ms/insert  %5d fsyncs\n%!"
    fsync_label wall_ms per_insert fsyncs;
  Bench_util.Json.record ~name
    ~config:[ ("fsync", fsync_label); ("inserts", string_of_int n_inserts) ]
    ~extra:
      [
        ("per_insert_ms", per_insert);
        ("fsyncs", float_of_int fsyncs);
        ("wal_bytes", float_of_int bytes);
      ]
    ~io:0 ~wall_ms
    ~rows_per_sec:(float_of_int n_inserts /. (wall_ms /. 1000.))
    ();
  wall_ms

let part1 () =
  Printf.printf "E21: WAL overhead on the insert path (%d inserts, 1 \
                 maintained view)\n%!" n_inserts;
  let base = bench_mode ~name:"E21.insert.nowal" ~fsync_label:"no-wal"
      (Service.create (load ()))
  in
  let always, _ =
    let svc, dir = durable_service ~tag:"always" ~fsync_mode:Wal.Fsync_always in
    (bench_mode ~name:"E21.insert.always" ~fsync_label:"always" svc, dir)
  in
  let _group =
    let svc, _ = durable_service ~tag:"group" ~fsync_mode:(Wal.Fsync_group 5.) in
    bench_mode ~name:"E21.insert.group5ms" ~fsync_label:"group-5ms" svc
  in
  let _never =
    let svc, _ = durable_service ~tag:"never" ~fsync_mode:Wal.Fsync_never in
    bench_mode ~name:"E21.insert.never" ~fsync_label:"never" svc
  in
  Printf.printf "  fsync-always overhead over no-wal: %.2fx\n%!"
    (always /. base)

let part2 () =
  Printf.printf "E21: recovery time vs WAL tail since last checkpoint\n%!";
  List.iter
    (fun tail ->
      let dir = fresh_dir (Printf.sprintf "rec%d" tail) in
      let cat, mviews, writer, _ =
        Recovery.recover ~data_dir:dir ~fsync_mode:Wal.Fsync_never ~meta:"e21"
          ~seed:load ()
      in
      let svc = Service.create ~mviews cat in
      Service.attach_wal svc ~data_dir:dir writer;
      ignore
        (Service.exec_statement svc
           ("CREATE MATERIALIZED VIEW by_dept AS " ^ mv_sql));
      ignore (Service.checkpoint svc);
      for i = 1 to tail do
        ignore (Service.exec_statement svc (insert_sql i))
      done;
      (match Service.wal svc with Some w -> Wal.flush w | None -> ());
      let _, _, w2, st =
        Recovery.recover ~data_dir:dir ~meta:"e21" ~seed:load ()
      in
      Wal.close w2;
      Printf.printf
        "  tail %4d inserts: recovered in %6.1f ms (%d replayed, %d bytes \
         scanned)\n%!"
        tail st.Recovery.duration_ms st.Recovery.replayed st.Recovery.wal_bytes;
      Bench_util.Json.record
        ~name:(Printf.sprintf "E21.recover.tail%d" tail)
        ~config:[ ("wal_tail_inserts", string_of_int tail) ]
        ~extra:
          [
            ("replayed", float_of_int st.Recovery.replayed);
            ("wal_bytes", float_of_int st.Recovery.wal_bytes);
          ]
        ~io:0 ~wall_ms:st.Recovery.duration_ms
        ~rows_per_sec:
          (if st.Recovery.duration_ms > 0. then
             float_of_int tail /. (st.Recovery.duration_ms /. 1000.)
           else 0.)
        ())
    [ 0; 100; 400; 1600 ]

let run () =
  part1 ();
  part2 ()
