(* avq.obs: metrics registry exports, statement trace span trees, and
   EXPLAIN ANALYZE's estimate-vs-actual q-errors as testable quantities. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains what hay needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s contains %s" what needle)
    true (contains hay needle)

(* ---- metrics primitives ---- *)

let metrics_counter_histogram () =
  let c = Metrics.Counter.create () in
  Metrics.Counter.add c 5;
  Metrics.Counter.incr c;
  Alcotest.(check int) "counter sums shards" 6 (Metrics.Counter.get c);
  let h = Metrics.Histogram.create [| 1.; 10.; 100. |] in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 5.; 5.; 50.; 500. ];
  Alcotest.(check int) "histogram count" 5 (Metrics.Histogram.count h);
  Alcotest.(check (float 1e-9)) "histogram sum" 560.5 (Metrics.Histogram.sum h);
  Alcotest.(check (list (pair (float 1e-9) int)))
    "per-bucket (non-cumulative) counts"
    [ (1., 1); (10., 2); (100., 1); (infinity, 1) ]
    (Metrics.Histogram.buckets h)

let metrics_counter_domains () =
  let c = Metrics.Counter.create () in
  let per_domain = 10_000 in
  let ds =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            for _ = 1 to per_domain do
              Metrics.Counter.incr c
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no lost updates across domains" (4 * per_domain)
    (Metrics.Counter.get c)

let registry_exports () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"a counter" "t_requests_total" in
  Metrics.Counter.add c 3;
  ignore (Metrics.gauge m "t_depth" (fun () -> 7.));
  let h =
    Metrics.histogram m ~buckets:[| 1.; 10. |] ~help:"a histogram" "t_ms"
  in
  Metrics.Histogram.observe h 0.5;
  Metrics.Histogram.observe h 5.;
  let lc =
    Metrics.counter m ~labels:[ ("kind", "x") ] "t_errors_total"
  in
  Metrics.Counter.incr lc;
  let js = Metrics.to_json m in
  List.iter
    (check_contains "json" js)
    [
      "\"t_requests_total\""; "\"t_depth\""; "\"t_ms\"";
      "{\"kind\": \"x\"}"; "\"value\": 3"; "\"value\": 7";
    ];
  let prom = Metrics.to_prometheus m in
  List.iter
    (check_contains "prometheus" prom)
    [
      "# TYPE t_requests_total counter"; "# HELP t_requests_total a counter";
      "t_requests_total 3"; "# TYPE t_depth gauge";
      "t_errors_total{kind=\"x\"} 1"; "t_ms_bucket{le=\"1\"} 1";
      (* cumulative: the 10-bucket includes the 1-bucket's observation *)
      "t_ms_bucket{le=\"10\"} 2"; "t_ms_bucket{le=\"+Inf\"} 2";
      "t_ms_sum 5.5"; "t_ms_count 2";
    ];
  Alcotest.check_raises "invalid metric name rejected"
    (Invalid_argument "Metrics.register: bad metric name \"bad name\"")
    (fun () -> ignore (Metrics.counter m "bad name"))

(* ---- service registry families ---- *)

let service_metric_families () =
  let cat = Emp_dept.load () in
  let svc = Service.create cat in
  ignore
    (Service.submit svc
       "SELECT e.dno AS dno, SUM(e.sal) AS total FROM emp e WHERE e.age <= \
        40 GROUP BY e.dno");
  let m = Service.metrics svc in
  let js = Metrics.to_json m and prom = Metrics.to_prometheus m in
  List.iter
    (fun fam ->
      check_contains "service json" js (Printf.sprintf "\"%s\"" fam);
      check_contains "service prometheus" prom fam)
    [
      "avq_bufferpool_reads_total"; "avq_bufferpool_hits_total";
      "avq_plancache_calls_total"; "avq_plancache_entries";
      "avq_errors_total"; "avq_statements_total"; "avq_statement_ms";
      "avq_statement_io_pages"; "avq_faults_injected_total";
    ];
  check_contains "error kinds are labeled" prom
    "avq_errors_total{kind=\"timeout\"} 0";
  (* pool family appears once a pool exists, and the queue gauge drains *)
  Service.Pool.with_pool ~workers:2 svc (fun pool ->
      let f =
        Service.Pool.submit_sql pool
          "SELECT d.dno AS dno FROM dept d WHERE d.budget <= 500000"
      in
      ignore (Service.Pool.await f);
      let prom = Metrics.to_prometheus m in
      check_contains "pool workers gauge" prom "avq_pool_workers 2";
      check_contains "pool queue gauge" prom "avq_pool_queue_depth 0";
      check_contains "pool executed counter" prom "avq_pool_executed_total")

(* ---- trace span tree ---- *)

(* Just-enough JSONL field extraction: the tracer's output is controlled by
   these tests (no escapes in the fields we read). *)
let field line key =
  let pat = Printf.sprintf "\"%s\":" key in
  let nl = String.length line and np = String.length pat in
  let rec find i =
    if i + np > nl then None
    else if String.sub line i np = pat then Some (i + np)
    else find (i + 1)
  in
  match find 0 with
  | None -> None
  | Some start ->
    if line.[start] = '"' then begin
      let e = String.index_from line (start + 1) '"' in
      Some (String.sub line (start + 1) (e - start - 1))
    end
    else begin
      let e = ref start in
      while
        !e < nl && (match line.[!e] with ',' | '}' -> false | _ -> true)
      do
        incr e
      done;
      Some (String.sub line start (!e - start))
    end

let fx line key =
  match field line key with
  | Some v -> v
  | None -> Alcotest.failf "span line missing %s: %s" key line

let span_tree () =
  let cat = Emp_dept.load () in
  let svc = Service.create cat in
  let path = Filename.temp_file "avq_trace" ".jsonl" in
  let tr = Trace.create_file path in
  Service.set_tracer svc (Some tr);
  ignore
    (Service.submit svc
       "SELECT e.dno AS dno, SUM(e.sal) AS total FROM emp e WHERE e.age <= \
        40 GROUP BY e.dno");
  Service.set_tracer svc None;
  Trace.close tr;
  let lines =
    In_channel.with_open_text path In_channel.input_all
    |> String.split_on_char '\n'
    |> List.filter (fun l -> String.trim l <> "")
  in
  Sys.remove path;
  Alcotest.(check bool) "several spans" true (List.length lines >= 5);
  let named n = List.filter (fun l -> fx l "name" = n) lines in
  let root =
    match named "statement" with
    | [ r ] -> r
    | other -> Alcotest.failf "expected 1 statement span, got %d" (List.length other)
  in
  Alcotest.(check string) "root has no parent" "null" (fx root "parent");
  Alcotest.(check bool) "root carries the statement fingerprint" true
    (String.length (fx root "fingerprint") = 16);
  let root_id = fx root "span" in
  List.iter
    (fun n ->
      match named n with
      | [ sp ] ->
        Alcotest.(check string) (n ^ " is a child of statement") root_id
          (fx sp "parent")
      | other -> Alcotest.failf "expected 1 %s span, got %d" n (List.length other))
    [ "parse"; "canonicalize"; "plan"; "execute" ];
  (* operator spans hang off execute and their root covers the execute span
     (operator spans are synthesized from the profile, which measures the
     same work the execute span wraps) *)
  let exec = List.hd (named "execute") in
  let exec_id = fx exec "span" in
  let ops = List.filter (fun l -> fx l "parent" = exec_id) lines in
  Alcotest.(check bool) "execute has operator children" true (ops <> []);
  let exec_ms = float_of_string (fx exec "dur_ms") in
  let op_root_ms =
    List.fold_left (fun acc l -> acc +. float_of_string (fx l "dur_ms")) 0. ops
  in
  let tol = Float.max 5. (0.5 *. exec_ms) in
  Alcotest.(check bool)
    (Printf.sprintf "op tree (%.2fms) accounts for execute (%.2fms)"
       op_root_ms exec_ms)
    true
    (Float.abs (exec_ms -. op_root_ms) <= tol);
  Alcotest.(check int) "tracer span tally matches file" (List.length lines)
    (Trace.spans_emitted tr)

(* ---- EXPLAIN ANALYZE q-errors: cost-model validation ---- *)

let ed_cat = lazy (Emp_dept.load ())

let analyze_plan ?(work_mem = 32) cat plan =
  let ctx = Exec_ctx.create ~work_mem cat in
  let res, report = Explain_analyze.analyze ~cold:true ctx plan in
  (match res with
   | Ok _ -> ()
   | Error e -> Alcotest.failf "analyze failed: %s" (Printexc.to_string e));
  report

let check_q what bound v =
  Alcotest.(check bool)
    (Printf.sprintf "%s: q=%.2f <= %.1f" what v bound)
    true (v <= bound)

let qerror_scans () =
  let cat = Lazy.force ed_cat in
  let seq =
    Physical.Seq_scan { alias = "e"; table = "emp"; filter = [] }
  in
  let r = analyze_plan cat seq in
  check_q "seq scan rows" 1.5 (Explain_analyze.q_rows r.Explain_analyze.root);
  check_q "seq scan pages" 2. (Explain_analyze.q_pages r.Explain_analyze.root);
  let idx =
    Physical.Index_scan
      { alias = "e"; table = "emp"; column = "age";
        lo = None; hi = Some (Value.Int 30, true); filter = [] }
  in
  let r = analyze_plan cat idx in
  check_q "index scan rows" 3. (Explain_analyze.q_rows r.Explain_analyze.root);
  (* The model caps unclustered fetch cost at the table's page count
     (assuming the pool absorbs revisits), while the actual counts every
     heap access — so index scans carry the largest structural q_pages.
     The bound documents that gap and trips if either side drifts. *)
  check_q "index scan pages" 60. (Explain_analyze.q_pages r.Explain_analyze.root)

let c ~q n = Schema.column ~qual:q n Datatype.Int

let qerror_join_group () =
  let cat = Lazy.force ed_cat in
  let join =
    Physical.Hash_join
      {
        left = Physical.Seq_scan { alias = "e"; table = "emp"; filter = [] };
        right = Physical.Seq_scan { alias = "d"; table = "dept"; filter = [] };
        keys = [ (c ~q:"e" "dno", c ~q:"d" "dno") ];
        cond = [];
        build_side = `Right;
      }
  in
  let r = analyze_plan cat join in
  check_q "hash join rows" 5. (Explain_analyze.q_rows r.Explain_analyze.root);
  check_q "hash join pages" 5. (Explain_analyze.q_pages r.Explain_analyze.root);
  let group =
    Physical.Hash_group
      {
        input = Physical.Seq_scan { alias = "e"; table = "emp"; filter = [] };
        agg_qual = "g";
        keys = [ c ~q:"e" "dno" ];
        aggs =
          [ Aggregate.make Aggregate.Sum ~arg:(Expr.Col (c ~q:"e" "sal"))
              "total" ];
        having = [];
      }
  in
  let r = analyze_plan cat group in
  check_q "hash group rows" 5. (Explain_analyze.q_rows r.Explain_analyze.root);
  check_q "hash group pages" 5. (Explain_analyze.q_pages r.Explain_analyze.root)

(* Example 1 end to end: the optimizer's chosen plan, every profiled node
   within a loose q-error bound — the cost model may be off per node, but
   not unboundedly so. *)
let qerror_example1 () =
  let cat = Lazy.force ed_cat in
  let q = Emp_dept.example1 () in
  let r = Optimizer.optimize cat q in
  let report = analyze_plan cat r.Optimizer.plan in
  List.iter
    (fun n ->
      if not n.Explain_analyze.missing then begin
        check_q
          (Printf.sprintf "example1 %s rows" n.Explain_analyze.label)
          50. (Explain_analyze.q_rows n);
        check_q
          (Printf.sprintf "example1 %s pages" n.Explain_analyze.label)
          50. (Explain_analyze.q_pages n)
      end)
    (Explain_analyze.nodes report)

(* ---- partial stats on failing statements ---- *)

let exploding_pred col =
  (* 100 / (age - 40) flips to a division by zero partway through the scan *)
  Expr.Cmp
    ( Expr.Gt,
      Expr.Binop
        ( Expr.Div, Expr.int 100,
          Expr.Binop (Expr.Sub, Expr.Col col, Expr.int 40) ),
      Expr.int (-1000) )

let partial_profile_on_error () =
  let cat = Lazy.force ed_cat in
  let plan =
    Physical.Filter
      {
        input = Physical.Seq_scan { alias = "e"; table = "emp"; filter = [] };
        pred = [ exploding_pred (c ~q:"e" "age") ];
      }
  in
  let ctx = Exec_ctx.create ~work_mem:32 cat in
  match Executor.run_profiled_result ctx plan with
  | Ok _ -> Alcotest.fail "expected the statement to fail"
  | Error (_, prof) ->
    (match Profile.error prof with
     | Some _ -> ()
     | None -> Alcotest.fail "profile not marked partial");
    let filter = List.hd (Profile.roots prof) in
    let scan = List.hd (Profile.children filter) in
    Alcotest.(check string) "scan node present" "SeqScan(emp)"
      scan.Profile.pname;
    Alcotest.(check bool) "partial rows were counted" true
      (scan.Profile.rows_out > 0);
    (* the same failure through EXPLAIN ANALYZE keeps the partial tree *)
    let _, report =
      Explain_analyze.analyze (Exec_ctx.create ~work_mem:32 cat) plan
    in
    Alcotest.(check bool) "report carries the error" true
      (report.Explain_analyze.error <> None);
    let rendered = Explain_analyze.to_string report in
    check_contains "rendered report" rendered "FAILED (partial stats)"

(* ---- profiling must not change what the executor does ---- *)

let profiled_io_equals_unprofiled () =
  let cat =
    Tpcd.load
      ~params:
        { Tpcd.default_params with customers = 60; orders_per_customer = 3;
          lines_per_order = 3; parts = 30; suppliers = 8 }
      ()
  in
  let q = Tpcd.q_small_quantity_parts () in
  let plan = (Optimizer.optimize cat q).Optimizer.plan in
  let run profiled engine =
    let ctx = Exec_ctx.create ~work_mem:8 cat in
    if profiled then
      match Executor.run_profiled_result ~cold:true ~executor:engine ctx plan with
      | Ok (rel, io, _) -> (rel, io)
      | Error (e, _) -> raise e
    else Executor.run_measured ~cold:true ~executor:engine ctx plan
  in
  List.iter
    (fun engine ->
      let rel_p, io_p = run true engine and rel_u, io_u = run false engine in
      Alcotest.(check bool) "same result under profiling" true
        (Relation.multiset_equal rel_p rel_u);
      Alcotest.(check int) "same reads under profiling"
        io_u.Buffer_pool.reads io_p.Buffer_pool.reads;
      Alcotest.(check int) "same writes under profiling"
        io_u.Buffer_pool.writes io_p.Buffer_pool.writes)
    [ `Row; `Batch ];
  (* and row vs batch still agree on physical IO when both are profiled *)
  let _, io_r = run true `Row and _, io_b = run true `Batch in
  Alcotest.(check int) "row/batch reads agree under profiling"
    io_r.Buffer_pool.reads io_b.Buffer_pool.reads;
  Alcotest.(check int) "row/batch writes agree under profiling"
    io_r.Buffer_pool.writes io_b.Buffer_pool.writes

(* json_float must round-trip every finite float exactly: %g's 6 significant
   digits silently corrupted large counters and sums like 0.1 +. 0.2. *)
let json_float_roundtrip () =
  let exact =
    [
      0.; 1.; -1.; 42.; 1e15 -. 1.; 1e15 +. 4.; 4503599627370497.;
      0.1; 0.1 +. 0.2; 1. /. 3.; -1.5e-300; 1.7976931348623157e308;
      123456789.123456789; 2718281828459045.7;
    ]
  in
  List.iter
    (fun x ->
      let s = Metrics.json_float x in
      Alcotest.(check (float 0.))
        (Printf.sprintf "%h round-trips via %S" x s)
        x (float_of_string s))
    exact;
  (* integral values keep the compact no-fraction form *)
  Alcotest.(check string) "integral compact" "42" (Metrics.json_float 42.);
  Alcotest.(check string) "large integral compact" "999999999999999"
    (Metrics.json_float 999_999_999_999_999.);
  Alcotest.(check string) "nan sanitized for JSON" "0" (Metrics.json_float Float.nan)

let tests =
  [
    Alcotest.test_case "counter + histogram primitives" `Quick
      metrics_counter_histogram;
    Alcotest.test_case "json_float round-trips exactly" `Quick
      json_float_roundtrip;
    Alcotest.test_case "counter across domains" `Quick metrics_counter_domains;
    Alcotest.test_case "registry JSON + Prometheus exports" `Quick
      registry_exports;
    Alcotest.test_case "service metric families" `Quick service_metric_families;
    Alcotest.test_case "statement span tree" `Quick span_tree;
    Alcotest.test_case "q-error: scans" `Quick qerror_scans;
    Alcotest.test_case "q-error: join + group" `Quick qerror_join_group;
    Alcotest.test_case "q-error: example 1 plan" `Quick qerror_example1;
    Alcotest.test_case "partial stats on error" `Quick partial_profile_on_error;
    Alcotest.test_case "profiling is observation-only" `Quick
      profiled_io_equals_unprofiled;
  ]
