(* Materialized aggregate views: the structural matching rules, the
   cost-based choice between base plan and rewrite, differential
   correctness of view-answered queries (including after appends absorbed
   by incremental maintenance), the guarantee that stale views never
   answer queries, and the session-level statement surface (INSERT /
   CREATE / DROP / REFRESH MATERIALIZED VIEW, plan-cache invalidation,
   [\dm] rendering). *)

let small = { Emp_dept.default_params with emps = 400; depts = 8; seed = 7 }
let load () = Emp_dept.load ~params:small ()
let bind cat sql = Binder.bind_sql cat sql

let mk_view ?(name = "by_dept") cat sql =
  let reg = Matview.create () in
  let def = Binder.bind_matview_body cat ~name (Parser.parse_select sql) in
  let v = Matview.create_view cat reg ~name ~sql def in
  (reg, v)

(* Stores: count, SUM(sal), SUM(age) (from the AVG), MIN(sal), MAX(age). *)
let wide_view_sql =
  "SELECT e.dno AS dno, COUNT(*) AS c, SUM(e.sal) AS ssal, AVG(e.age) AS \
   aage, MIN(e.sal) AS mnsal, MAX(e.age) AS mxage FROM emp e GROUP BY e.dno"

let run_plan cat plan =
  let ctx = Exec_ctx.create cat in
  Fun.protect
    ~finally:(fun () -> Exec_ctx.cleanup ctx)
    (fun () -> Executor.run ctx plan)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---- structural matching ---------------------------------------------- *)

let matching_rules () =
  let cat = load () in
  let _reg, v = mk_view cat wide_view_sql in
  let matches sql = Matview.match_view v (bind cat sql) <> None in
  Alcotest.(check bool) "same grouping, covered aggregate" true
    (matches "SELECT e.dno AS d, SUM(e.sal) AS s FROM emp e GROUP BY e.dno");
  Alcotest.(check bool) "base-table alias is irrelevant" true
    (matches "SELECT x.dno AS d, COUNT(*) AS c FROM emp x GROUP BY x.dno");
  Alcotest.(check bool) "scalar aggregation: [] refines any grouping" true
    (matches "SELECT MAX(e.age) AS m FROM emp e");
  Alcotest.(check bool) "residual predicate on a view key" true
    (matches
       "SELECT e.dno AS d, AVG(e.age) AS a FROM emp e WHERE e.dno > 3 GROUP \
        BY e.dno");
  Alcotest.(check bool) "COUNT of a column reads the stored count" true
    (matches "SELECT e.dno AS d, COUNT(e.sal) AS c FROM emp e GROUP BY e.dno");
  Alcotest.(check bool) "SUM rides on the partial AVG stored" true
    (matches "SELECT e.dno AS d, SUM(e.age) AS s FROM emp e GROUP BY e.dno");
  Alcotest.(check bool) "grouping column missing from the view" false
    (matches "SELECT e.age AS a, COUNT(*) AS c FROM emp e GROUP BY e.age");
  Alcotest.(check bool) "residual predicate on a non-key column" false
    (matches
       "SELECT e.dno AS d, COUNT(*) AS c FROM emp e WHERE e.sal > 100 GROUP \
        BY e.dno");
  Alcotest.(check bool) "aggregate argument with no stored partial" false
    (matches "SELECT e.dno AS d, SUM(e.eno) AS s FROM emp e GROUP BY e.dno");
  Alcotest.(check bool) "MIN has no partial for that argument" false
    (matches "SELECT e.dno AS d, MIN(e.age) AS m FROM emp e GROUP BY e.dno");
  Alcotest.(check bool) "different base table" false
    (matches "SELECT d.dno AS d, COUNT(*) AS c FROM dept d GROUP BY d.dno")

let predicate_subsumption () =
  let cat = load () in
  let _reg, v =
    mk_view ~name:"seniors" cat
      "SELECT e.dno AS dno, COUNT(*) AS c, SUM(e.sal) AS s FROM emp e WHERE \
       e.age > 40 GROUP BY e.dno"
  in
  let matches sql = Matview.match_view v (bind cat sql) <> None in
  Alcotest.(check bool) "query repeats the view predicate" true
    (matches
       "SELECT e.dno AS d, SUM(e.sal) AS s FROM emp e WHERE e.age > 40 GROUP \
        BY e.dno");
  Alcotest.(check bool) "view predicate absent from the query" false
    (matches "SELECT e.dno AS d, SUM(e.sal) AS s FROM emp e GROUP BY e.dno");
  Alcotest.(check bool) "extra residual conjunct on a key is fine" true
    (matches
       "SELECT e.dno AS d, SUM(e.sal) AS s FROM emp e WHERE e.age > 40 AND \
        e.dno > 2 GROUP BY e.dno");
  Alcotest.(check bool) "a different constant is not subsumed" false
    (matches
       "SELECT e.dno AS d, SUM(e.sal) AS s FROM emp e WHERE e.age > 41 GROUP \
        BY e.dno")

let predicate_implication () =
  let cat = load () in
  let reg, v =
    mk_view ~name:"big_depts" cat
      "SELECT e.dno AS dno, COUNT(*) AS c, SUM(e.sal) AS s FROM emp e WHERE \
       e.dno > 1 GROUP BY e.dno"
  in
  let q_sql pred =
    Printf.sprintf
      "SELECT e.dno AS d, SUM(e.sal) AS s FROM emp e WHERE %s GROUP BY e.dno"
      pred
  in
  let matches pred = Matview.match_view v (bind cat (q_sql pred)) <> None in
  Alcotest.(check bool) "stronger bound on the key implies the view pred" true
    (matches "e.dno > 3");
  Alcotest.(check bool) ">= strictly inside the half-range implies" true
    (matches "e.dno >= 2");
  Alcotest.(check bool) "equality inside the half-range implies" true
    (matches "e.dno = 5");
  Alcotest.(check bool) "weaker bound is not implied" false
    (matches "e.dno > 0");
  Alcotest.(check bool) ">= at the view's own open bound is not implied" false
    (matches "e.dno >= 1");
  Alcotest.(check bool) "equality outside the half-range is not implied" false
    (matches "e.dno = 1");
  (* The covering conjunct stays residual: the rewrite must re-apply
     [e.dno > 3] over the extent, not return every extent group. *)
  let q = bind cat (q_sql "e.dno > 3") in
  let base = run_plan cat (Optimizer.optimize cat q).Optimizer.plan in
  (match Matview.rewrites cat reg q with
  | [] -> Alcotest.fail "expected a rewrite by implication"
  | rewrites ->
    List.iter
      (fun (_, r) ->
        Alcotest.(check bool) "implied rewrite agrees with the base plan" true
          (Relation.multiset_equal base (run_plan cat r.Optimizer.plan)))
      rewrites);
  Alcotest.(check int) "residual filter keeps only dno in 4..7" 4
    (Relation.cardinality base)

let having_over_avg () =
  let cat = load () in
  let reg, v = mk_view cat wide_view_sql in
  let q_sql h =
    Printf.sprintf
      "SELECT e.dno AS d, AVG(e.age) AS a FROM emp e GROUP BY e.dno HAVING %s"
      h
  in
  let check h =
    let q = bind cat (q_sql h) in
    Alcotest.(check bool)
      (Printf.sprintf "HAVING %s matches" h)
      true
      (Matview.match_view v q <> None);
    let base = run_plan cat (Optimizer.optimize cat q).Optimizer.plan in
    (match Matview.rewrites cat reg q with
    | [] -> Alcotest.failf "expected a rewrite for HAVING %s" h
    | rewrites ->
      List.iter
        (fun (_, r) ->
          Alcotest.(check bool)
            (Printf.sprintf "HAVING %s agrees with the base plan" h)
            true
            (Relation.multiset_equal base (run_plan cat r.Optimizer.plan)))
        rewrites);
    Relation.cardinality base
  in
  let all = check "AVG(e.age) > 0" in
  Alcotest.(check int) "trivial threshold keeps every group"
    small.Emp_dept.depts all;
  Alcotest.(check int) "impossible threshold drops every group" 0
    (check "AVG(e.age) > 100");
  (* Mixed predicate: an AVG quotient AND a plain re-aggregated COUNT. *)
  ignore (check "AVG(e.age) > 35 AND COUNT(*) > 2");
  (* HAVING over an AVG that is not in the select list binds a hidden
     aggregate — it must re-aggregate from the stored partials too. *)
  let q =
    bind cat
      "SELECT e.dno AS d, COUNT(*) AS c FROM emp e GROUP BY e.dno HAVING \
       AVG(e.sal) > 0"
  in
  Alcotest.(check bool) "hidden HAVING aggregate matches" true
    (Matview.match_view v q <> None)

let order_limit_passthrough () =
  let cat = load () in
  let reg, _v = mk_view cat wide_view_sql in
  let q =
    bind cat
      "SELECT e.dno AS d, SUM(e.sal) AS s FROM emp e GROUP BY e.dno ORDER BY \
       s LIMIT 3"
  in
  match Matview.rewrites cat reg q with
  | [ (name, res) ] ->
    Alcotest.(check string) "rewrite uses the view" "by_dept" name;
    let base = run_plan cat (Optimizer.optimize cat q).Optimizer.plan in
    let viewed = run_plan cat res.Optimizer.plan in
    Alcotest.(check int) "LIMIT applies" 3 (Relation.cardinality viewed);
    Alcotest.(check bool) "ordered + limited results agree" true
      (Relation.multiset_equal base viewed)
  | l -> Alcotest.failf "expected one rewrite, got %d" (List.length l)

(* ---- differential: base plan vs forced view plan ---------------------- *)

(* Every aggregate the wide view can answer (SUM(e.age) via AVG's partial). *)
let agg_pool =
  [|
    "COUNT(*)"; "COUNT(e.sal)"; "SUM(e.sal)"; "AVG(e.sal)"; "MIN(e.sal)";
    "SUM(e.age)"; "AVG(e.age)"; "MAX(e.age)";
  |]

let pred_ops = [| ">"; ">="; "=" |]

let case_to_sql (mask, pred, grouped, having) =
  let aggs =
    List.filteri
      (fun i _ -> mask land (1 lsl i) <> 0)
      (Array.to_list agg_pool)
  in
  let aggs = if aggs = [] then [ agg_pool.(0) ] else aggs in
  let sel = List.mapi (fun i a -> Printf.sprintf "%s AS a%d" a i) aggs in
  let sel = if grouped then "e.dno AS d" :: sel else sel in
  Printf.sprintf "SELECT %s FROM emp e%s%s%s"
    (String.concat ", " sel)
    (match pred with
    | None -> ""
    | Some (op, k) -> Printf.sprintf " WHERE e.dno %s %d" pred_ops.(op) k)
    (if grouped then " GROUP BY e.dno" else "")
    (match having with
    | Some h when grouped ->
      Printf.sprintf " HAVING AVG(e.age) > %d AND COUNT(*) > 1" h
    | _ -> "")

let gen_case =
  QCheck.Gen.(
    quad (int_range 1 255)
      (opt (pair (int_range 0 2) (int_range 0 6)))
      bool
      (opt (int_range 20 50)))

let differential_prop =
  QCheck.Test.make ~count:20
    ~name:"view plan and base plan agree (incl. after absorbed appends)"
    (QCheck.make gen_case ~print:case_to_sql)
    (fun case ->
      let sql = case_to_sql case in
      let cat = load () in
      let reg, v = mk_view cat wide_view_sql in
      (* A second, predicated view in the same registry: queries whose
         conjunct strictly implies [e.dno > 1] are answered by it too, with
         the conjunct kept as residual. *)
      let _ =
        let name = "big_depts" in
        let sql =
          "SELECT e.dno AS dno, COUNT(*) AS c, SUM(e.sal) AS ssal, AVG(e.age) \
           AS aage, MIN(e.sal) AS mnsal, MAX(e.age) AS mxage FROM emp e WHERE \
           e.dno > 1 GROUP BY e.dno"
        in
        let def = Binder.bind_matview_body cat ~name (Parser.parse_select sql) in
        Matview.create_view cat reg ~name ~sql def
      in
      let check_round tag =
        let q = bind cat sql in
        let rewrites = Matview.rewrites cat reg q in
        if rewrites = [] then
          QCheck.Test.fail_reportf "%s: no rewrite for %s" tag sql;
        let base = run_plan cat (Optimizer.optimize cat q).Optimizer.plan in
        List.for_all
          (fun (_, res) ->
            Relation.multiset_equal base (run_plan cat res.Optimizer.plan)
            || QCheck.Test.fail_reportf "%s: results differ for %s" tag sql)
          rewrites
      in
      let ok0 = check_round "initial" in
      (* Interleave appends; maintenance is on, so the view must keep up. *)
      let next = ref 1_000_000 in
      let insert n =
        let rows =
          List.init n (fun i ->
              let id = !next + i in
              Tuple.make
                [
                  Value.Int id;
                  Value.Int (id mod small.Emp_dept.depts);
                  Value.Int (1000 + ((id * 37) mod 8000));
                  Value.Int (18 + (id mod 48));
                ])
        in
        next := !next + n;
        let stored = Catalog.insert cat ~table:"emp" rows in
        Matview.on_insert cat reg ~table:"emp" ~rows:stored
      in
      insert 7;
      let ok1 = check_round "after one batch" in
      insert 13;
      let ok2 = check_round "after two batches" in
      ok0 && ok1 && ok2 && Matview.is_fresh cat v
      && (Matview.stats reg).Matview.deltas >= 2)

(* ---- cost-based decision ---------------------------------------------- *)

let cost_chooses_view () =
  let cat = load () in
  let reg, _ = mk_view cat wide_view_sql in
  let q = bind cat "SELECT e.dno AS d, SUM(e.sal) AS s FROM emp e GROUP BY e.dno" in
  let res, decision = Matview.optimize cat reg q in
  (match decision with
  | Matview.Chosen { view; base_cost; view_cost } ->
    Alcotest.(check string) "view chosen" "by_dept" view;
    Alcotest.(check bool) "view estimated cheaper" true (view_cost < base_cost)
  | d -> Alcotest.failf "expected Chosen, got %s" (Matview.decision_to_string d));
  Alcotest.(check bool) "plan reads the extent" true
    (List.exists
       (fun (_, t) -> String.equal t "__mv_by_dept")
       (Physical.relations res.Optimizer.plan));
  Alcotest.(check bool) "plan text names the view, not the backing table" true
    (contains (Physical.to_string res.Optimizer.plan) "mv:by_dept"
    && not (contains (Physical.to_string res.Optimizer.plan) "__mv_"));
  let s = Matview.stats reg in
  Alcotest.(check int) "hit counted" 1 s.Matview.hits;
  Alcotest.(check int) "attempt counted" 1 s.Matview.attempts

let cost_rejects_wide_extent () =
  let cat = load () in
  (* One group per emp row and nine extent columns against emp's four: the
     extent is strictly more pages than the base table, so the base plan
     must win even though the view matches. *)
  let reg, _ =
    mk_view ~name:"per_emp" cat
      "SELECT e.eno AS eno, COUNT(*) AS c, SUM(e.sal) AS s1, SUM(e.age) AS \
       s2, SUM(e.dno) AS s3, MIN(e.sal) AS m1, MAX(e.sal) AS x1, MIN(e.age) \
       AS m2, MAX(e.age) AS x2 FROM emp e GROUP BY e.eno"
  in
  let q = bind cat "SELECT e.eno AS k, SUM(e.sal) AS s FROM emp e GROUP BY e.eno" in
  let res, decision = Matview.optimize cat reg q in
  (match decision with
  | Matview.Rejected_cost { base_cost; view_cost; _ } ->
    Alcotest.(check bool) "base plan no dearer than the view" true
      (base_cost <= view_cost)
  | d ->
    Alcotest.failf "expected Rejected_cost, got %s"
      (Matview.decision_to_string d));
  Alcotest.(check bool) "plan does not touch the extent" true
    (List.for_all
       (fun (_, t) -> String.equal t "emp")
       (Physical.relations res.Optimizer.plan));
  let s = Matview.stats reg in
  Alcotest.(check int) "rejection counted" 1 s.Matview.cost_rejections;
  Alcotest.(check int) "no hit" 0 s.Matview.hits

(* ---- staleness and maintenance ---------------------------------------- *)

let stale_views_never_answer () =
  let cat = load () in
  let reg, v = mk_view cat wide_view_sql in
  Matview.set_maintenance reg "by_dept" false;
  let stored =
    Catalog.insert cat ~table:"emp"
      [ Tuple.make [ Value.Int 999_001; Value.Int 0; Value.Int 7777; Value.Int 30 ] ]
  in
  Matview.on_insert cat reg ~table:"emp" ~rows:stored;
  Alcotest.(check bool) "unabsorbed append leaves the view stale" false
    (Matview.is_fresh cat v);
  let q = bind cat "SELECT e.dno AS d, SUM(e.sal) AS s FROM emp e GROUP BY e.dno" in
  Alcotest.(check int) "no forced rewrite from a stale view" 0
    (List.length (Matview.rewrites cat reg q));
  let res, decision = Matview.optimize cat reg q in
  (match decision with
  | Matview.Stale [ "by_dept" ] -> ()
  | d -> Alcotest.failf "expected Stale, got %s" (Matview.decision_to_string d));
  Alcotest.(check bool) "stale skip counted" true
    ((Matview.stats reg).Matview.stale_skips >= 1);
  Alcotest.(check bool) "base plan only" true
    (List.for_all
       (fun (_, t) -> String.equal t "emp")
       (Physical.relations res.Optimizer.plan));
  let base_answer = run_plan cat res.Optimizer.plan in
  (* REFRESH recomputes the extent and restores the rewrite. *)
  Matview.refresh cat reg "by_dept";
  Alcotest.(check bool) "fresh after refresh" true (Matview.is_fresh cat v);
  Alcotest.(check int) "refresh counted" 1 (Matview.stats reg).Matview.refreshes;
  (match snd (Matview.optimize cat reg q) with
  | Matview.Chosen _ -> ()
  | d ->
    Alcotest.failf "expected Chosen after refresh, got %s"
      (Matview.decision_to_string d));
  List.iter
    (fun (_, r) ->
      Alcotest.(check bool) "post-refresh rewrite sees the append" true
        (Relation.multiset_equal base_answer (run_plan cat r.Optimizer.plan)))
    (Matview.rewrites cat reg q)

let insert_dept cat reg =
  let stored =
    Catalog.insert cat ~table:"dept"
      [ Tuple.make [ Value.Int 99; Value.Int 1; Value.String "dept099" ] ]
  in
  Matview.on_insert cat reg ~table:"dept" ~rows:stored

let maintenance_matches_refresh () =
  (* Few emps over many depts so appends create brand-new groups too. *)
  let params = { Emp_dept.default_params with emps = 12; depts = 16; seed = 3 } in
  let cat = Emp_dept.load ~params () in
  let reg, v = mk_view cat wide_view_sql in
  let groups0 = Matview.row_count cat v in
  let insert rows =
    let stored = Catalog.insert cat ~table:"emp" rows in
    Matview.on_insert cat reg ~table:"emp" ~rows:stored
  in
  let row id dno sal age =
    Tuple.make [ Value.Int id; Value.Int dno; Value.Int sal; Value.Int age ]
  in
  insert [ row 500 0 9100 21; row 501 15 4200 55; row 502 15 4300 56 ];
  insert [ row 503 14 8800 33 ];
  Alcotest.(check bool) "deltas absorbed, view still fresh" true
    (Matview.is_fresh cat v);
  Alcotest.(check bool) "appends to unseen depts created groups" true
    (Matview.row_count cat v > groups0);
  (* Appends to an unrelated table must not stale the view. *)
  insert_dept cat reg;
  Alcotest.(check bool) "append to another table is irrelevant" true
    (Matview.is_fresh cat v);
  let read_extent () =
    run_plan cat
      (Physical.Seq_scan { alias = "m"; table = "__mv_by_dept"; filter = [] })
  in
  let incremental = read_extent () in
  Matview.refresh cat reg "by_dept";
  Alcotest.(check bool) "incremental extent equals recomputed extent" true
    (Relation.multiset_equal incremental (read_extent ()));
  let s = Matview.stats reg in
  Alcotest.(check bool) "delta batches counted" true (s.Matview.deltas >= 2);
  Alcotest.(check bool) "delta rows counted" true (s.Matview.delta_rows >= 4)

(* ---- write path: catalog + binder ------------------------------------- *)

let catalog_insert_bumps_versions () =
  let cat = load () in
  let e0 = Catalog.epoch cat in
  let v0 = Catalog.table_version cat "emp" in
  let stored =
    Catalog.insert cat ~table:"emp"
      [ Tuple.make [ Value.Int 999_001; Value.Int 0; Value.Int 1; Value.Int 18 ] ]
  in
  Alcotest.(check int) "row stored at full width" 4
    (Tuple.arity (List.hd stored));
  Alcotest.(check int) "table version bumped" (v0 + 1)
    (Catalog.table_version cat "emp");
  Alcotest.(check int) "other tables untouched" 0
    (Catalog.table_version cat "dept");
  Alcotest.(check bool) "epoch bumped (plan cache invalidates)" true
    (Catalog.epoch cat > e0)

let insert_rows_of sql =
  match Parser.parse_script sql with
  | [ Sql_ast.S_insert { it_table; it_rows } ] -> (it_table, it_rows)
  | _ -> Alcotest.fail "expected a single INSERT"

let bind_insert_checks () =
  let cat = Catalog.create ~frames:32 () in
  ignore
    (Catalog.add_table cat ~name:"t"
       ~columns:[ ("k", Datatype.Int); ("v", Datatype.Float) ]
       ~pk:[ "k" ]
       [ Tuple.make [ Value.Int 0; Value.Float 1.5 ] ]);
  let tbl, rows = insert_rows_of "INSERT INTO t VALUES (1, 2), (3, 4.5)" in
  (match Binder.bind_insert cat ~table:tbl rows with
  | [ r1; r2 ] ->
    Alcotest.(check bool) "integer literal coerced into Float column" true
      (Tuple.get r1 1 = Value.Float 2.);
    Alcotest.(check bool) "float literal kept" true
      (Tuple.get r2 1 = Value.Float 4.5)
  | l -> Alcotest.failf "expected two rows, got %d" (List.length l));
  let rejected name sql =
    let tbl, rows = insert_rows_of sql in
    try
      ignore (Binder.bind_insert cat ~table:tbl rows);
      Alcotest.failf "%s: should have been rejected" name
    with Binder.Bind_error _ -> ()
  in
  rejected "wrong arity" "INSERT INTO t VALUES (1, 2.0, 3)";
  rejected "type clash" "INSERT INTO t VALUES ('a', 2.0)";
  rejected "unknown table" "INSERT INTO missing VALUES (1)"

(* ---- session surface: statements, plan cache, \dm --------------------- *)

let check_source name expected (p : Service.planned) =
  Alcotest.(check string) name
    (Service.source_label expected)
    (Service.source_label p.Service.source)

let insert_invalidates_plan_cache () =
  let cat = load () in
  let svc = Service.create cat in
  let stmt =
    Service.prepare svc
      "SELECT e.dno AS dno, COUNT(*) AS c FROM emp e GROUP BY e.dno"
  in
  let total rel =
    Relation.fold
      (fun acc t ->
        match Tuple.get t 1 with Value.Int n -> acc + n | _ -> acc)
      0 rel
  in
  check_source "first plan misses" Service.Miss (Service.plan svc stmt);
  check_source "second plan hits" Service.Hit (Service.plan svc stmt);
  let _, before, _ = Service.execute svc stmt in
  Alcotest.(check string) "completion tag" "INSERT 2"
    (Service.exec_statement svc
       "INSERT INTO emp VALUES (999001, 0, 5000, 33), (999002, 1, 6000, 44)");
  check_source "INSERT invalidates the cached plan" Service.Miss
    (Service.plan svc stmt);
  let _, after, _ = Service.execute svc stmt in
  Alcotest.(check int) "re-planned result sees the appended rows"
    (total before + 2) (total after);
  let s = Service.stats svc in
  Alcotest.(check bool) "invalidation counted" true
    (s.Service.invalidations >= 1);
  Alcotest.(check int) "no stale plan was ever served" 0 s.Service.stale_hits

let statement_surface () =
  let cat = load () in
  let svc = Service.create cat in
  Alcotest.(check string) "create tag"
    "CREATE MATERIALIZED VIEW by_dept (8 groups)"
    (Service.exec_statement svc
       "CREATE MATERIALIZED VIEW by_dept AS SELECT e.dno AS dno, SUM(e.sal) \
        AS s FROM emp e GROUP BY e.dno");
  let dm = Service.render_matviews svc in
  Alcotest.(check bool) "\\dm lists the view" true (contains dm "by_dept");
  Alcotest.(check bool) "\\dm reports fresh" true (contains dm "fresh");
  let stmt =
    Service.prepare svc
      "SELECT e.dno AS dno, SUM(e.sal) AS s FROM emp e GROUP BY e.dno"
  in
  let p = Service.plan svc stmt in
  (match p.Service.rewrite with
  | Matview.Chosen { view = "by_dept"; _ } -> ()
  | d ->
    Alcotest.failf "expected the view to answer, got %s"
      (Matview.decision_to_string d));
  Alcotest.(check bool) "EXPLAIN names the view, not the backing table" true
    (contains (Physical.to_string p.Service.plan) "mv:by_dept"
    && not (contains (Physical.to_string p.Service.plan) "__mv_"));
  (match (Service.plan svc stmt).Service.rewrite with
  | Matview.From_cache (Some "by_dept") -> ()
  | d ->
    Alcotest.failf "expected the cache to remember the view, got %s"
      (Matview.decision_to_string d));
  (* With maintenance off an INSERT leaves the view stale — and a stale
     view must never answer. *)
  Matview.set_maintenance (Service.matviews svc) "by_dept" false;
  Alcotest.(check string) "insert tag" "INSERT 1"
    (Service.exec_statement svc "INSERT INTO emp VALUES (999001, 0, 7777, 30)");
  Alcotest.(check bool) "\\dm reports STALE" true
    (contains (Service.render_matviews svc) "STALE");
  (match (Service.plan svc stmt).Service.rewrite with
  | Matview.Stale [ "by_dept" ] -> ()
  | d ->
    Alcotest.failf "expected Stale after the append, got %s"
      (Matview.decision_to_string d));
  Alcotest.(check string) "refresh tag"
    "REFRESH MATERIALIZED VIEW by_dept (8 groups)"
    (Service.exec_statement svc "REFRESH MATERIALIZED VIEW by_dept");
  (match (Service.plan svc stmt).Service.rewrite with
  | Matview.Chosen _ -> ()
  | d ->
    Alcotest.failf "expected Chosen after REFRESH, got %s"
      (Matview.decision_to_string d));
  (try
     ignore
       (Service.exec_statement svc "INSERT INTO __mv_by_dept VALUES (0, 1, 2)");
     Alcotest.fail "INSERT into an extent must be rejected"
   with Avq_error.Error (Avq_error.Bad_statement _) -> ());
  Alcotest.(check string) "drop tag" "DROP MATERIALIZED VIEW by_dept"
    (Service.exec_statement svc "DROP MATERIALIZED VIEW by_dept");
  Alcotest.(check bool) "\\dm is empty again" true
    (contains (Service.render_matviews svc) "no materialized views");
  Alcotest.(check bool) "backing table dropped from the catalog" true
    (Catalog.find_table cat "__mv_by_dept" = None)

let tests =
  [
    Alcotest.test_case "matching rules" `Quick matching_rules;
    Alcotest.test_case "predicate subsumption" `Quick predicate_subsumption;
    Alcotest.test_case "predicate implication" `Quick predicate_implication;
    Alcotest.test_case "HAVING over AVG" `Quick having_over_avg;
    Alcotest.test_case "ORDER BY / LIMIT pass through" `Quick
      order_limit_passthrough;
    QCheck_alcotest.to_alcotest differential_prop;
    Alcotest.test_case "cost picks the view when cheaper" `Quick
      cost_chooses_view;
    Alcotest.test_case "cost rejects a wider extent" `Quick
      cost_rejects_wide_extent;
    Alcotest.test_case "stale views never answer" `Quick
      stale_views_never_answer;
    Alcotest.test_case "incremental maintenance equals refresh" `Quick
      maintenance_matches_refresh;
    Alcotest.test_case "catalog insert bumps versions" `Quick
      catalog_insert_bumps_versions;
    Alcotest.test_case "INSERT binding" `Quick bind_insert_checks;
    Alcotest.test_case "INSERT invalidates the plan cache" `Quick
      insert_invalidates_plan_cache;
    Alcotest.test_case "statement surface and \\dm" `Quick statement_surface;
  ]
