(* Executor tests: every physical operator is checked against the reference
   interpreter on randomized data, including the spill paths (Grace hash
   join, multi-run external sort). *)

let build_catalog_frames ~frames seed nr ns =
  let rng = Rng.create ~seed in
  let cat = Catalog.create ~frames () in
  let r_rows =
    List.init nr (fun i ->
        Tuple.make
          [ Value.Int i; Value.Int (Rng.int rng 10); Value.Int (Rng.in_range rng 0 100) ])
  in
  ignore
    (Catalog.add_table cat ~name:"r"
       ~columns:[ ("k", Datatype.Int); ("g", Datatype.Int); ("v", Datatype.Int) ]
       ~pk:[ "k" ] ~index:[ "g"; "v" ] r_rows);
  let s_rows =
    List.init ns (fun i ->
        Tuple.make [ Value.Int i; Value.Int (Rng.int rng 10); Value.Int (Rng.in_range rng 0 100) ])
  in
  ignore
    (Catalog.add_table cat ~name:"s"
       ~columns:[ ("k", Datatype.Int); ("g", Datatype.Int); ("w", Datatype.Int) ]
       ~pk:[ "k" ] ~index:[ "g" ] s_rows);
  cat

let build_catalog seed nr ns = build_catalog_frames ~frames:512 seed nr ns

let c ~q n = Schema.column ~qual:q n Datatype.Int

let exec ?(work_mem = 32) cat plan =
  Executor.run (Exec_ctx.create ~work_mem cat) plan

let join_cond = [ Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"a" "g"), Expr.Col (c ~q:"b" "g")) ]

let reference_join cat =
  Logical.eval cat
    (Logical.Join
       { left = Logical.scan cat ~alias:"a" "r";
         right = Logical.scan cat ~alias:"b" "s"; cond = join_cond })

let scan_a = Physical.Seq_scan { alias = "a"; table = "r"; filter = [] }
let scan_b = Physical.Seq_scan { alias = "b"; table = "s"; filter = [] }

let check_join name cat plan =
  let expected = reference_join cat in
  let got = exec cat plan in
  Alcotest.(check bool) name true (Relation.multiset_equal expected got)

let prop_join_methods =
  QCheck.Test.make ~name:"all join algorithms agree with the reference" ~count:25
    (QCheck.triple (QCheck.int_range 0 10_000) (QCheck.int_range 1 400) (QCheck.int_range 1 400))
    (fun (seed, nr, ns) ->
      let cat = build_catalog seed nr ns in
      let expected = reference_join cat in
      let keys = [ (c ~q:"a" "g", c ~q:"b" "g") ] in
      let plans =
        [
          Physical.Block_nl_join { left = scan_a; right = scan_b; cond = join_cond };
          Physical.Hash_join
            { left = scan_a; right = scan_b; keys; cond = []; build_side = `Right };
          Physical.Hash_join
            { left = scan_a; right = scan_b; keys; cond = []; build_side = `Left };
          Physical.Merge_join
            {
              left = Physical.Sort { input = scan_a; cols = [ c ~q:"a" "g" ] ; desc = [] };
              right = Physical.Sort { input = scan_b; cols = [ c ~q:"b" "g" ] ; desc = [] };
              keys;
              cond = [];
            };
          Physical.Index_nl_join
            { left = scan_a; alias = "b"; table = "s"; column = "g";
              outer_key = c ~q:"a" "g"; cond = [] };
        ]
      in
      List.for_all (fun p -> Relation.multiset_equal expected (exec cat p)) plans)

let grace_hash_spill () =
  (* Force the Grace path: the build side is far larger than work_mem, and
     the buffer pool is small enough that spilled partitions actually get
     evicted (with a huge pool, temp pages legitimately never reach disk). *)
  let cat = build_catalog_frames ~frames:16 5 4000 3000 in
  let plan =
    Physical.Hash_join
      { left = scan_a; right = scan_b;
        keys = [ (c ~q:"a" "g", c ~q:"b" "g") ]; cond = []; build_side = `Right }
  in
  let ctx = Exec_ctx.create ~work_mem:3 cat in
  let st = Exec_ctx.storage ctx in
  Buffer_pool.clear (Storage.pool st);
  Storage.reset_io st;
  let got = Iter.to_relation (Executor.open_iter ctx plan) in
  let io = Storage.io_stats st in
  Exec_ctx.cleanup ctx;
  Alcotest.(check bool) "spill wrote temp pages" true (io.Buffer_pool.writes > 0);
  Alcotest.(check bool) "grace result correct" true
    (Relation.multiset_equal (reference_join cat) got)

let bnl_with_materialized_inner () =
  let cat = build_catalog 6 500 300 in
  (* inner = filtered scan wrapped in Materialize (a non-rescannable shape) *)
  let inner =
    Physical.Materialize
      { input = Physical.Filter { input = scan_b; pred = [ Expr.Cmp (Expr.Lt, Expr.Col (c ~q:"b" "w"), Expr.int 50) ] } }
  in
  let plan = Physical.Block_nl_join { left = scan_a; right = inner; cond = join_cond } in
  let expected =
    Logical.eval cat
      (Logical.Join
         {
           left = Logical.scan cat ~alias:"a" "r";
           right =
             Logical.Filter
               {
                 input = Logical.scan cat ~alias:"b" "s";
                 pred = Expr.Cmp (Expr.Lt, Expr.Col (c ~q:"b" "w"), Expr.int 50);
               };
           cond = join_cond;
         })
  in
  Alcotest.(check bool) "bnl+materialize" true
    (Relation.multiset_equal expected (exec ~work_mem:4 cat plan))

let prop_sort =
  QCheck.Test.make ~name:"external sort: sorted permutation even when spilling"
    ~count:20
    (QCheck.pair (QCheck.int_range 0 10_000) (QCheck.int_range 3 6))
    (fun (seed, work_mem) ->
      let cat = build_catalog seed 3000 10 in
      let plan = Physical.Sort { input = scan_a; cols = [ c ~q:"a" "v"; c ~q:"a" "k" ] ; desc = [] } in
      let got = exec ~work_mem cat plan in
      let base = exec cat scan_a in
      let tuples = Relation.tuples got in
      let rec sorted = function
        | a :: (b :: _ as rest) ->
          Tuple.compare_at [| 2; 0 |] a b <= 0 && sorted rest
        | _ -> true
      in
      sorted tuples && Relation.multiset_equal base got)

let group_plans cat =
  let keys = [ c ~q:"a" "g" ] in
  let aggs =
    [
      Aggregate.make Aggregate.Sum ~arg:(Expr.Col (c ~q:"a" "v")) "s";
      Aggregate.make Aggregate.Avg ~arg:(Expr.Col (c ~q:"a" "v")) "m";
      Aggregate.make Aggregate.Count_star "n";
    ]
  in
  let having = [ Expr.Cmp (Expr.Gt, Expr.Col (Schema.column ~qual:"x" "n" Datatype.Int), Expr.int 2) ] in
  let logical =
    Logical.Group
      { input = Logical.scan cat ~alias:"a" "r"; agg_qual = "x"; keys; aggs; having }
  in
  let hash = Physical.Hash_group { input = scan_a; agg_qual = "x"; keys; aggs; having } in
  let sorted =
    Physical.Sort_group
      { input = Physical.Sort { input = scan_a; cols = keys ; desc = [] }; agg_qual = "x"; keys;
        aggs; having }
  in
  (logical, hash, sorted)

let prop_grouping =
  QCheck.Test.make ~name:"hash and sort aggregation agree with the reference"
    ~count:25 (QCheck.pair (QCheck.int_range 0 10_000) (QCheck.int_range 1 2000))
    (fun (seed, nr) ->
      let cat = build_catalog seed nr 5 in
      let logical, hash, sorted = group_plans cat in
      let expected = Logical.eval cat logical in
      Relation.multiset_equal expected (exec cat hash)
      && Relation.multiset_equal expected (exec ~work_mem:3 cat sorted))

let index_scan_ranges () =
  let cat = build_catalog 17 2000 5 in
  let check lo hi =
    let plan =
      Physical.Index_scan
        { alias = "a"; table = "r"; column = "v";
          lo = Option.map (fun v -> (Value.Int v, true)) lo;
          hi = Option.map (fun v -> (Value.Int v, false)) hi;
          filter = [] }
    in
    let got = exec cat plan in
    let pred t =
      let v = match Tuple.get t 2 with Value.Int v -> v | _ -> assert false in
      (match lo with None -> true | Some l -> v >= l)
      && match hi with None -> true | Some h -> v < h
    in
    let expected = Relation.filter pred (exec cat scan_a) in
    Alcotest.(check bool)
      (Printf.sprintf "range [%s,%s)"
         (match lo with None -> "-inf" | Some v -> string_of_int v)
         (match hi with None -> "+inf" | Some v -> string_of_int v))
      true
      (Relation.multiset_equal expected got)
  in
  check (Some 20) (Some 60);
  check None (Some 30);
  check (Some 90) None;
  check (Some 60) (Some 60);
  check None None

let sorted_output_of_index_scan () =
  let cat = build_catalog 18 800 5 in
  let plan =
    Physical.Index_scan
      { alias = "a"; table = "r"; column = "v"; lo = None; hi = None; filter = [] }
  in
  let rel = exec cat plan in
  let rec is_sorted = function
    | a :: (b :: _ as rest) -> Value.compare (Tuple.get a 2) (Tuple.get b 2) <= 0 && is_sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "index scan emits in key order" true (is_sorted (Relation.tuples rel))

let projection_and_filter () =
  let cat = build_catalog 19 100 5 in
  let plan =
    Physical.Project
      {
        input =
          Physical.Filter
            { input = scan_a; pred = [ Expr.Cmp (Expr.Ge, Expr.Col (c ~q:"a" "v"), Expr.int 50) ] };
        cols =
          [
            (Expr.Binop (Expr.Mul, Expr.Col (c ~q:"a" "v"), Expr.int 2),
             Schema.column "v2" Datatype.Int);
          ];
      }
  in
  let rel = exec cat plan in
  Relation.iter
    (fun t ->
      match Tuple.get t 0 with
      | Value.Int v when v >= 100 && v mod 2 = 0 -> ()
      | v -> Alcotest.failf "bad projected value %s" (Value.to_string v))
    rel

let tests =
  [
    QCheck_alcotest.to_alcotest prop_join_methods;
    Alcotest.test_case "grace hash join spills and is correct" `Quick grace_hash_spill;
    Alcotest.test_case "BNL with materialized inner" `Quick bnl_with_materialized_inner;
    QCheck_alcotest.to_alcotest prop_sort;
    QCheck_alcotest.to_alcotest prop_grouping;
    Alcotest.test_case "index scan range semantics" `Quick index_scan_ranges;
    Alcotest.test_case "index scan ordering" `Quick sorted_output_of_index_scan;
    Alcotest.test_case "filter + project pipeline" `Quick projection_and_filter;
    Alcotest.test_case "bnl join small" `Quick (fun () ->
        check_join "bnl" (build_catalog 3 50 40)
          (Physical.Block_nl_join { left = scan_a; right = scan_b; cond = join_cond }));
  ]
