let () =
  Alcotest.run "avq"
    [
      ("relation", Relation_tests.tests);
      ("storage", Storage_tests.tests);
      ("catalog", Catalog_tests.tests);
      ("expr", Expr_tests.tests);
      ("aggregate", Aggregate_tests.tests @ Aggregate_tests.udf_tests);
      ("logical", Logical_tests.tests);
      ("exec", Exec_tests.tests);
      ("iter_xsort", Iter_xsort_tests.tests);
      ("batch", Batch_tests.tests);
      ("exchange", Exchange_tests.tests);
      ("cost", Cost_tests.tests);
      ("transform", Transform_tests.tests @ Transform_tests.rowid_tests);
      ("grouping", Grouping_tests.tests);
      ("optimizer", Optimizer_tests.tests @ Optimizer_tests.bushy_tests);
      ("plan_check", Plan_check_tests.tests);
      ("pretty", Pretty_tests.tests);
      ("moveround", Moveround_tests.tests);
      ("smoke", Smoke.tests);
      ("sql", Sql_tests.tests @ Sql_tests.more_tests @ Sql_tests.sugar_tests);
      ("workload", Workload_tests.tests @ Workload_tests.fuzz_tests);
      ("star", Star_tests.tests);
      ("matview", Matview_tests.tests);
      ("service", Service_tests.tests);
      ("errorpath", Errorpath_tests.tests);
      ("pool", Pool_tests.tests);
      ("fault", Fault_tests.tests);
      ("obs", Obs_tests.tests);
      ("sysview", Sysview_tests.tests);
      ("wal", Wal_tests.tests);
      ("net", Net_tests.tests);
    ]
