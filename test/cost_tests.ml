(* Cost model and estimation tests: histogram selectivities, the Cardenas
   formula, plan-aware group counts, and estimate/measured agreement on
   basic operators. *)

let histogram_props () =
  let values = List.init 1000 (fun i -> Value.Int (i mod 100)) in
  let h = Histogram.build values in
  Alcotest.(check int) "count" 1000 (Histogram.count h);
  Alcotest.(check int) "ndv" 100 (Histogram.ndv h);
  let full = Histogram.sel_range h () in
  Alcotest.(check bool) "full range ~1" true (full > 0.99 && full <= 1.0);
  let half = Histogram.sel_range h ~hi:(Value.Int 49, true) () in
  Alcotest.(check bool) (Printf.sprintf "half range ~0.5 (%.3f)" half) true
    (half > 0.4 && half < 0.6);
  let eq = Histogram.sel_eq h (Value.Int 50) in
  Alcotest.(check bool) (Printf.sprintf "point ~1/100 (%.4f)" eq) true
    (eq > 0.005 && eq < 0.02);
  Alcotest.(check (float 0.0001)) "below min" 0.0
    (Histogram.sel_eq h (Value.Int (-5)))

let prop_histogram_monotone =
  QCheck.Test.make ~name:"sel_range is monotone in the upper bound" ~count:100
    (QCheck.pair (QCheck.int_range 0 99) (QCheck.int_range 0 99))
    (fun (a, b) ->
      let values = List.init 500 (fun i -> Value.Int (i mod 100)) in
      let h = Histogram.build values in
      let lo = min a b and hi = max a b in
      Histogram.sel_range h ~hi:(Value.Int lo, true) ()
      <= Histogram.sel_range h ~hi:(Value.Int hi, true) () +. 1e-9)

let cardenas_props () =
  Alcotest.(check (float 0.001)) "no rows" 0. (Cost_model.cardenas ~n:0. ~d:10.);
  Alcotest.(check (float 0.001)) "one group" 1. (Cost_model.cardenas ~n:50. ~d:1.);
  let g = Cost_model.cardenas ~n:1000. ~d:10. in
  Alcotest.(check bool) "saturates to d" true (g > 9.99 && g <= 10.);
  let few = Cost_model.cardenas ~n:5. ~d:1000. in
  Alcotest.(check bool) "few rows ~ n" true (few > 4.9 && few <= 5.)

let scan_cost_exact () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 10_000 } () in
  let plan = Physical.Seq_scan { alias = "e"; table = "emp"; filter = [] } in
  let est = Cost_model.estimate cat ~work_mem:32 plan in
  let ctx = Exec_ctx.create cat in
  let _, io = Executor.run_measured ctx plan in
  Alcotest.(check int) "seq scan cost = pages" io.Buffer_pool.reads
    (int_of_float est.Cost_model.cost);
  Alcotest.(check int) "rows exact" 10_000 (int_of_float est.Cost_model.rows)

let filter_reduces_rows () =
  let cat = Emp_dept.load () in
  let base = Physical.Seq_scan { alias = "e"; table = "emp"; filter = [] } in
  let filtered =
    Physical.Seq_scan
      { alias = "e"; table = "emp";
        filter =
          [ Expr.Cmp (Expr.Lt, Expr.Col (Schema.column ~qual:"e" "age" Datatype.Int), Expr.int 30) ] }
  in
  let eb = Cost_model.estimate cat ~work_mem:32 base in
  let ef = Cost_model.estimate cat ~work_mem:32 filtered in
  Alcotest.(check bool) "filter reduces estimated rows" true
    (ef.Cost_model.rows < eb.Cost_model.rows);
  Alcotest.(check (float 0.001)) "same scan cost" eb.Cost_model.cost ef.Cost_model.cost

let sort_spill_formula () =
  (* Sorting more pages than work_mem must charge 2*pages*passes, and the
     executor must actually incur comparable temp IO. *)
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 30_000 } () in
  let scan = Physical.Seq_scan { alias = "e"; table = "emp"; filter = [] } in
  let plan =
    Physical.Sort { input = scan; cols = [ Schema.column ~qual:"e" "sal" Datatype.Int ] ; desc = [] }
  in
  let est = Cost_model.estimate cat ~work_mem:8 plan in
  let scan_est = Cost_model.estimate cat ~work_mem:8 scan in
  Alcotest.(check bool) "spill charged" true
    (est.Cost_model.cost > scan_est.Cost_model.cost);
  let ctx = Exec_ctx.create ~work_mem:8 cat in
  let _, io = Executor.run_measured ctx plan in
  let measured = float_of_int (io.Buffer_pool.reads + io.Buffer_pool.writes) in
  let rel_err = Float.abs (est.Cost_model.cost -. measured) /. measured in
  Alcotest.(check bool)
    (Printf.sprintf "estimate within 40%% of measured (est %.0f vs %.0f)"
       est.Cost_model.cost measured)
    true (rel_err < 0.4)

let group_estimate_fd_aware () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 20_000; depts = 50 } () in
  let e col = Schema.column ~qual:"e" col Datatype.Int in
  let scan = Physical.Seq_scan { alias = "e"; table = "emp"; filter = [] } in
  (* Grouping by the PK plus other columns = one group per row. *)
  let plan keys =
    Physical.Hash_group
      { input = scan; agg_qual = "g"; keys;
        aggs = [ Aggregate.make Aggregate.Count_star "n" ]; having = [] }
  in
  let by_pk = Cost_model.estimate cat ~work_mem:32 (plan [ e "eno"; e "sal"; e "age" ]) in
  Alcotest.(check bool)
    (Printf.sprintf "PK grouping = input rows (%.0f)" by_pk.Cost_model.rows)
    true
    (Float.abs (by_pk.Cost_model.rows -. 20_000.) < 200.);
  let by_dno = Cost_model.estimate cat ~work_mem:32 (plan [ e "dno" ]) in
  Alcotest.(check bool)
    (Printf.sprintf "dno grouping ~ depts (%.0f)" by_dno.Cost_model.rows)
    true
    (by_dno.Cost_model.rows > 40. && by_dno.Cost_model.rows < 60.)

let group_estimate_join_classes () =
  (* Grouping the join emp x dept by both join columns must count one
     attribute, not the square. *)
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 20_000; depts = 50 } () in
  let e col = Schema.column ~qual:"e" col Datatype.Int in
  let d col = Schema.column ~qual:"d" col Datatype.Int in
  let join =
    Physical.Hash_join
      {
        left = Physical.Seq_scan { alias = "e"; table = "emp"; filter = [] };
        right = Physical.Seq_scan { alias = "d"; table = "dept"; filter = [] };
        keys = [ (e "dno", d "dno") ];
        cond = [];
        build_side = `Right;
      }
  in
  let plan =
    Physical.Hash_group
      { input = join; agg_qual = "g"; keys = [ e "dno"; d "dno" ];
        aggs = [ Aggregate.make Aggregate.Count_star "n" ]; having = [] }
  in
  let est = Cost_model.estimate cat ~work_mem:32 plan in
  Alcotest.(check bool)
    (Printf.sprintf "join-equal keys counted once (%.0f)" est.Cost_model.rows)
    true
    (est.Cost_model.rows < 100.)

let hash_join_spill_charged () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 30_000 } () in
  let e col = Schema.column ~qual:"e1" col Datatype.Int in
  let f col = Schema.column ~qual:"e2" col Datatype.Int in
  let join build_side =
    Physical.Hash_join
      {
        left = Physical.Seq_scan { alias = "e1"; table = "emp"; filter = [] };
        right = Physical.Seq_scan { alias = "e2"; table = "emp"; filter = [] };
        keys = [ (e "dno", f "dno") ];
        cond = [];
        build_side;
      }
  in
  let small = Cost_model.estimate cat ~work_mem:500 (join `Right) in
  let spill = Cost_model.estimate cat ~work_mem:8 (join `Right) in
  Alcotest.(check bool) "spill costs more" true
    (spill.Cost_model.cost > small.Cost_model.cost +. 100.)

let tests =
  [
    Alcotest.test_case "histogram selectivities" `Quick histogram_props;
    QCheck_alcotest.to_alcotest prop_histogram_monotone;
    Alcotest.test_case "cardenas formula" `Quick cardenas_props;
    Alcotest.test_case "seq scan cost exact" `Quick scan_cost_exact;
    Alcotest.test_case "filter selectivity" `Quick filter_reduces_rows;
    Alcotest.test_case "sort spill estimate vs measured" `Quick sort_spill_formula;
    Alcotest.test_case "group estimate: FD-aware" `Quick group_estimate_fd_aware;
    Alcotest.test_case "group estimate: join equivalence classes" `Quick
      group_estimate_join_classes;
    Alcotest.test_case "hash join spill charged" `Quick hash_join_spill_charged;
  ]
