(* Storage engine tests: buffer pool LRU accounting, heap files, B+-trees
   (checked against a Map-based model), page geometry. *)

let page_geometry () =
  Alcotest.(check int) "capacity floor" 1 (Page.capacity ~row_bytes:10_000);
  Alcotest.(check int) "capacity" (4096 / 16) (Page.capacity ~row_bytes:16);
  Alcotest.(check int) "pages_for empty" 0 (Page.pages_for ~rows:0 ~row_bytes:16);
  Alcotest.(check int) "pages_for exact" 2 (Page.pages_for ~rows:512 ~row_bytes:16);
  Alcotest.(check int) "pages_for round up" 3 (Page.pages_for ~rows:513 ~row_bytes:16)

let pool_lru () =
  let pool = Buffer_pool.create ~frames:2 in
  Buffer_pool.read pool ~file:0 ~page:0;
  Buffer_pool.read pool ~file:0 ~page:1;
  Buffer_pool.read pool ~file:0 ~page:0;
  (* page 1 is LRU; reading page 2 evicts it *)
  Buffer_pool.read pool ~file:0 ~page:2;
  Buffer_pool.read pool ~file:0 ~page:0;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "reads (misses)" 3 s.Buffer_pool.reads;
  Alcotest.(check int) "hits" 2 s.Buffer_pool.hits;
  Buffer_pool.read pool ~file:0 ~page:1;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "evicted page re-read" 4 s.Buffer_pool.reads

let pool_dirty_writes () =
  let pool = Buffer_pool.create ~frames:2 in
  Buffer_pool.write pool ~file:1 ~page:0;
  Buffer_pool.write pool ~file:1 ~page:1;
  Buffer_pool.read pool ~file:1 ~page:2;
  (* evicts dirty page 0 -> one physical write *)
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "dirty eviction writes" 1 s.Buffer_pool.writes;
  Buffer_pool.flush_all pool;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "flush writes remaining dirty" 2 s.Buffer_pool.writes;
  Buffer_pool.flush_all pool;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "flush is idempotent" 2 s.Buffer_pool.writes

let pool_alloc_and_drop () =
  let pool = Buffer_pool.create ~frames:4 in
  Buffer_pool.alloc pool ~file:3 ~page:0;
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "alloc reads nothing" 0 s.Buffer_pool.reads;
  Alcotest.(check bool) "resident" true (Buffer_pool.resident pool ~file:3 ~page:0);
  Buffer_pool.drop_file pool ~file:3;
  Alcotest.(check bool) "dropped" false (Buffer_pool.resident pool ~file:3 ~page:0);
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "drop writes nothing" 0 s.Buffer_pool.writes

let heap_schema =
  Schema.of_columns
    [ Schema.column ~qual:"t" "k" Datatype.Int; Schema.column ~qual:"t" "v" Datatype.Int ]

let heap_roundtrip () =
  let pool = Buffer_pool.create ~frames:64 in
  let h = Heap_file.create ~pool ~file_id:0 heap_schema in
  let n = 1000 in
  let rids =
    List.init n (fun i -> Heap_file.append h (Tuple.make [ Value.Int i; Value.Int (i * i) ]))
  in
  Alcotest.(check int) "nrows" n (Heap_file.nrows h);
  Alcotest.(check bool) "multiple pages" true (Heap_file.npages h > 1);
  List.iteri
    (fun i rid ->
      let t = Heap_file.get h rid in
      if Value.compare (Tuple.get t 0) (Value.Int i) <> 0 then
        Alcotest.failf "rid %d roundtrip failed" i)
    rids;
  let count = ref 0 in
  Heap_file.scan h (fun _ _ -> incr count);
  Alcotest.(check int) "scan count" n !count;
  (match Heap_file.get h { Page.page = 9999; slot = 0 } with
   | _ -> Alcotest.fail "bad rid should raise"
   | exception Avq_error.Error (Avq_error.Corruption _) -> ()
   | exception e -> Alcotest.fail ("bad rid: unexpected " ^ Printexc.to_string e))

let heap_scan_io () =
  (* A cold scan reads exactly npages; a second scan hits the pool. *)
  let pool = Buffer_pool.create ~frames:256 in
  let h = Heap_file.create ~pool ~file_id:0 heap_schema in
  for i = 0 to 2999 do
    ignore (Heap_file.append h (Tuple.make [ Value.Int i; Value.Int 0 ]))
  done;
  Buffer_pool.clear pool;
  Buffer_pool.reset_stats pool;
  Heap_file.scan h (fun _ _ -> ());
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "cold scan reads = npages" (Heap_file.npages h) s.Buffer_pool.reads;
  Heap_file.scan h (fun _ _ -> ());
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "warm scan adds no reads" (Heap_file.npages h) s.Buffer_pool.reads

(* ---- B+-tree vs a sorted-Map model ---- *)

module IntMap = Map.Make (Int)

let btree_model_ops ops =
  let pool = Buffer_pool.create ~frames:512 in
  let t = Btree.create ~pool ~file_id:0 ~order:4 () in
  let model = ref IntMap.empty in
  List.iteri
    (fun i key ->
      let rid = { Page.page = i; slot = 0 } in
      Btree.insert t (Value.Int key) rid;
      model :=
        IntMap.update key
          (function None -> Some [ rid ] | Some l -> Some (rid :: l))
          !model)
    ops;
  Btree.check_invariants t;
  (t, !model)

let sort_rids = List.sort Page.compare_rid

let prop_btree_eq =
  QCheck.Test.make ~name:"btree search_eq matches model" ~count:60
    QCheck.(list_of_size (QCheck.Gen.int_range 0 300) (int_range 0 80))
    (fun keys ->
      let t, model = btree_model_ops keys in
      List.for_all
        (fun k ->
          let expected =
            match IntMap.find_opt k model with Some l -> sort_rids l | None -> []
          in
          sort_rids (Btree.search_eq t (Value.Int k)) = expected)
        (List.init 82 (fun i -> i - 1)))

let prop_btree_range =
  QCheck.Test.make ~name:"btree range scan matches model" ~count:60
    (QCheck.pair
       QCheck.(list_of_size (QCheck.Gen.int_range 0 200) (int_range 0 60))
       (QCheck.pair QCheck.(int_range (-5) 65) QCheck.(int_range (-5) 65)))
    (fun (keys, (a, b)) ->
      let lo = min a b and hi = max a b in
      let t, model = btree_model_ops keys in
      let expected =
        IntMap.fold
          (fun k rids acc -> if k >= lo && k <= hi then acc @ sort_rids rids else acc)
          model []
      in
      let got =
        Btree.search_range t ~lo:(Value.Int lo, true) ~hi:(Value.Int hi, true) ()
      in
      (* per-key order must be ascending; within a key rids can be arbitrary *)
      List.length got = List.length expected
      && sort_rids got = sort_rids expected)

let btree_bounds () =
  let t, _ = btree_model_ops [ 1; 3; 3; 5; 7 ] in
  let count ?lo ?hi () = List.length (Btree.search_range t ?lo ?hi ()) in
  Alcotest.(check int) "exclusive lo" 2 (count ~lo:(Value.Int 3, false) ());
  Alcotest.(check int) "inclusive lo" 4 (count ~lo:(Value.Int 3, true) ());
  Alcotest.(check int) "exclusive hi" 3 (count ~hi:(Value.Int 5, false) ());
  Alcotest.(check int) "open scan" 5 (count ());
  Alcotest.(check int) "empty range" 0
    (count ~lo:(Value.Int 4, true) ~hi:(Value.Int 4, true) ())

let btree_stats () =
  let t, _ = btree_model_ops (List.init 500 (fun i -> i mod 97)) in
  Alcotest.(check int) "nentries" 500 (Btree.nentries t);
  Alcotest.(check int) "nkeys" 97 (Btree.nkeys t);
  Alcotest.(check bool) "height grows" true (Btree.height t >= 3);
  Alcotest.(check bool) "pages allocated" true (Btree.npages t > 10)

let btree_io_accounting () =
  let pool = Buffer_pool.create ~frames:4 in
  let t = Btree.create ~pool ~file_id:9 ~order:4 () in
  List.iteri
    (fun i k -> Btree.insert t (Value.Int k) { Page.page = i; slot = 0 })
    (List.init 200 (fun i -> i));
  Buffer_pool.clear pool;
  Buffer_pool.reset_stats pool;
  ignore (Btree.search_eq t (Value.Int 100));
  let s = Buffer_pool.stats pool in
  Alcotest.(check int) "cold lookup reads height pages" (Btree.height t)
    s.Buffer_pool.reads

(* ---- domain-safety ---- *)

(* Temp-file ids are allocated with an atomic counter: concurrent allocators
   must never observe a duplicate (a duplicate would alias two operators'
   spill files). *)
let concurrent_fresh_file_ids () =
  let st = Storage.create ~frames:64 () in
  let schema = Schema.of_columns [ Schema.column "x" Datatype.Int ] in
  let per_domain = 50 in
  let doms =
    List.init 4 (fun _ ->
        Domain.spawn (fun () ->
            List.init per_domain (fun _ ->
                Heap_file.file_id (Storage.create_temp st schema))))
  in
  let ids = List.concat_map Domain.join doms in
  let distinct = List.sort_uniq compare ids in
  Alcotest.(check int) "all allocated ids distinct" (List.length ids)
    (List.length distinct)

(* Hammer one pool from several domains; the global counters must equal the
   sum of the per-domain tallies (every event lands in exactly one tally). *)
let concurrent_pool_accounting () =
  let pool = Buffer_pool.create ~frames:32 in
  let before_global = Buffer_pool.stats pool in
  let work file () =
    let before = Buffer_pool.local_stats () in
    for round = 0 to 9 do
      ignore round;
      for page = 0 to 99 do
        Buffer_pool.read pool ~file ~page
      done
    done;
    Buffer_pool.diff (Buffer_pool.local_stats ()) before
  in
  let doms = List.init 4 (fun d -> Domain.spawn (work d)) in
  let tallies = List.map Domain.join doms in
  let sum f = List.fold_left (fun a t -> a + f t) 0 tallies in
  let now = Buffer_pool.stats pool in
  let dg = Buffer_pool.diff now before_global in
  Alcotest.(check int) "reads: global = sum of domain tallies"
    dg.Buffer_pool.reads
    (sum (fun (t : Buffer_pool.stats) -> t.Buffer_pool.reads));
  Alcotest.(check int) "hits: global = sum of domain tallies"
    dg.Buffer_pool.hits
    (sum (fun (t : Buffer_pool.stats) -> t.Buffer_pool.hits));
  Alcotest.(check int) "every access accounted" (4 * 10 * 100)
    (dg.Buffer_pool.reads + dg.Buffer_pool.hits)

(* Snapshot/subtract measurement: a domain's window growth is its own IO
   even while another domain does unrelated IO on the same storage. *)
let delta_accounting_isolated () =
  let st = Storage.create ~frames:8 () in
  let noise_stop = Atomic.make false in
  let noise =
    Domain.spawn (fun () ->
        let pool = Storage.pool st in
        while not (Atomic.get noise_stop) do
          for page = 0 to 40 do
            Buffer_pool.read pool ~file:1000 ~page
          done
        done)
  in
  let before = Storage.io_snapshot st in
  let pool = Storage.pool st in
  for page = 0 to 99 do
    Buffer_pool.read pool ~file:2000 ~page
  done;
  let d = Storage.io_since st before in
  Atomic.set noise_stop true;
  Domain.join noise;
  Alcotest.(check int) "window counts only this domain's accesses" 100
    (d.Buffer_pool.reads + d.Buffer_pool.hits)

let tests =
  [
    Alcotest.test_case "page geometry" `Quick page_geometry;
    Alcotest.test_case "buffer pool LRU" `Quick pool_lru;
    Alcotest.test_case "buffer pool dirty writes" `Quick pool_dirty_writes;
    Alcotest.test_case "buffer pool alloc/drop" `Quick pool_alloc_and_drop;
    Alcotest.test_case "heap file roundtrip" `Quick heap_roundtrip;
    Alcotest.test_case "heap scan IO" `Quick heap_scan_io;
    QCheck_alcotest.to_alcotest prop_btree_eq;
    QCheck_alcotest.to_alcotest prop_btree_range;
    Alcotest.test_case "btree range bounds" `Quick btree_bounds;
    Alcotest.test_case "btree statistics" `Quick btree_stats;
    Alcotest.test_case "btree IO accounting" `Quick btree_io_accounting;
    Alcotest.test_case "concurrent temp-file ids are distinct" `Quick
      concurrent_fresh_file_ids;
    Alcotest.test_case "concurrent pool accounting adds up" `Quick
      concurrent_pool_accounting;
    Alcotest.test_case "delta accounting isolates the calling domain" `Quick
      delta_accounting_isolated;
  ]
