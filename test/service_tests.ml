(* The session layer: fingerprint stability, canonicalization sharing, LRU
   eviction order, catalog-epoch invalidation, and the property that a
   cache-served plan is indistinguishable from a freshly optimized one. *)

let tiny = { Tpcd.default_params with customers = 60; orders_per_customer = 3;
             lines_per_order = 3; parts = 40; suppliers = 10 }

(* Published FNV-1a 64-bit test vectors: the fingerprint must match them on
   any OCaml version (the whole point of not using Hashtbl.hash). *)
let fnv1a_vectors () =
  List.iter
    (fun (input, expected) ->
      Alcotest.(check string) input expected
        (Fingerprint.to_hex (Fingerprint.of_string input)))
    [
      ("", "cbf29ce484222325");
      ("a", "af63dc4c8601ec8c");
      ("foobar", "85944171f73967e8");
    ]

let bind cat sql = Binder.bind_sql cat sql

let canonicalization_shares_templates () =
  let cat = Emp_dept.load () in
  let q1 =
    bind cat
      "SELECT e.dno AS dno, AVG(e.sal) AS s FROM emp e WHERE e.age > 30 AND \
       e.sal > 1000 GROUP BY e.dno"
  in
  let q2 =
    bind cat
      "SELECT e.dno AS dno, AVG(e.sal) AS s FROM emp e WHERE e.sal > 2000 AND \
       e.age > 50 GROUP BY e.dno"
  in
  Alcotest.(check string) "same template despite constants and conjunct order"
    (Canon.serialize q1) (Canon.serialize q2);
  Alcotest.(check int) "two parameters" 2 (List.length (Canon.params q1));
  let q1' = Canon.substitute q1 (Canon.params q2) in
  Alcotest.(check string) "substitute keeps the template"
    (Canon.serialize q1) (Canon.serialize q1');
  Alcotest.(check bool) "substitute installs the new constants" true
    (Canon.params q1' = Canon.params q2);
  let q3 =
    bind cat
      "SELECT e.dno AS dno, AVG(e.sal) AS s FROM emp e WHERE e.age > 30 GROUP \
       BY e.dno"
  in
  Alcotest.(check bool) "different predicate set, different template" true
    (Canon.serialize q1 <> Canon.serialize q3)

let dummy_entry key =
  {
    Plan_cache.key;
    template = key;
    params = [];
    plan = Physical.Seq_scan { alias = "t"; table = "t"; filter = [] };
    est = { Cost_model.rows = 1.; width = 4; pages = 1.; cost = 1. };
    search = { Search_stats.join_plans = 0; group_plans = 0; entries = 0;
               pullups = 0 };
    opt_ms = 0.;
    epoch = 0;
    mv = None;
    bytes = 100;
  }

let lru_eviction_order () =
  let c = Plan_cache.create ~max_entries:3 () in
  List.iter (fun k -> Plan_cache.add c (dummy_entry k)) [ "a"; "b"; "c" ];
  Alcotest.(check (list string)) "LRU to MRU" [ "a"; "b"; "c" ]
    (Plan_cache.keys_lru c);
  Alcotest.(check bool) "find refreshes recency" true
    (Plan_cache.find c "a" ~epoch:0 <> None);
  Alcotest.(check (list string)) "a is now MRU" [ "b"; "c"; "a" ]
    (Plan_cache.keys_lru c);
  Plan_cache.add c (dummy_entry "d");
  Alcotest.(check (list string)) "b (the LRU) was evicted" [ "c"; "a"; "d" ]
    (Plan_cache.keys_lru c);
  let k = Plan_cache.counters c in
  Alcotest.(check int) "one eviction" 1 k.Plan_cache.evictions;
  (* byte-bounded eviction *)
  let c2 = Plan_cache.create ~max_entries:100 ~max_bytes:250 () in
  List.iter (fun k -> Plan_cache.add c2 (dummy_entry k)) [ "x"; "y"; "z" ];
  Alcotest.(check (list string)) "byte budget keeps two entries" [ "y"; "z" ]
    (Plan_cache.keys_lru c2)

let epoch_counter () =
  let cat = Catalog.create ~frames:32 () in
  Alcotest.(check int) "fresh catalog at epoch 0" 0 (Catalog.epoch cat);
  ignore
    (Catalog.add_table cat ~name:"t"
       ~columns:[ ("k", Datatype.Int); ("v", Datatype.Int) ]
       ~pk:[ "k" ]
       (List.init 10 (fun i -> Tuple.make [ Value.Int i; Value.Int (i * i) ])));
  Alcotest.(check int) "DDL bumps the epoch" 1 (Catalog.epoch cat);
  Catalog.refresh_stats cat;
  Alcotest.(check int) "stats refresh bumps the epoch" 2 (Catalog.epoch cat);
  Catalog.bump_epoch cat;
  Alcotest.(check int) "manual bump" 3 (Catalog.epoch cat)

let check_source name expected (p : Service.planned) =
  Alcotest.(check string) name
    (Service.source_label expected)
    (Service.source_label p.Service.source)

let epoch_invalidation () =
  let cat = Emp_dept.load () in
  let svc = Service.create cat in
  let stmt =
    Service.prepare svc
      "SELECT e.dno AS dno, MAX(e.sal) AS m FROM emp e WHERE e.age > 40 GROUP \
       BY e.dno"
  in
  check_source "first call misses" Service.Miss (Service.plan svc stmt);
  check_source "second call hits" Service.Hit (Service.plan svc stmt);
  Catalog.refresh_stats cat;
  check_source "stale plan is not served after refresh" Service.Miss
    (Service.plan svc stmt);
  let s = Service.stats svc in
  Alcotest.(check int) "refresh invalidated the entry" 1
    s.Service.invalidations;
  Alcotest.(check int) "no stale hits ever" 0 s.Service.stale_hits;
  check_source "re-cached plan hits again" Service.Hit (Service.plan svc stmt)

(* For any generated query: serving from the cache (same parameters) yields
   a plan with identical estimated cost and identical EXPLAIN rendering to a
   fresh optimizer run. *)
let prop_cached_plan_identity cat =
  QCheck.Test.make ~name:"cache-served plan = freshly optimized plan"
    ~count:20
    (QCheck.make QCheck.Gen.(int_bound 1_000_000))
    (fun seed ->
      let rng = Rng.create ~seed in
      let q = Query_gen.generate ~complexity:`Rich rng cat in
      let svc = Service.create cat in
      let stmt = Service.prepare_query svc q in
      let first = Service.plan svc stmt in
      let served = Service.plan svc stmt in
      let fresh = Optimizer.optimize cat q in
      first.Service.source = Service.Miss
      && served.Service.source = Service.Hit
      && served.Service.est.Cost_model.cost = fresh.Optimizer.est.Cost_model.cost
      && Physical.to_string served.Service.plan
         = Physical.to_string fresh.Optimizer.plan)

(* Re-binding a cached template to perturbed parameters must still compute
   the same rows as optimizing those parameters from scratch. *)
let rebound_plans_are_correct () =
  let cat = Tpcd.load ~params:tiny () in
  let svc = Service.create cat in
  let rng = Rng.create ~seed:99 in
  let perturb v =
    match v with
    | Value.Int i -> Value.Int (i + Rng.in_range rng (-4) 4)
    | Value.Float f -> Value.Float (f *. 0.9)
    | _ -> v
  in
  for i = 1 to 6 do
    let q = Query_gen.generate ~complexity:`Rich rng cat in
    let stmt = Service.prepare_query svc q in
    ignore (Service.plan svc stmt);
    let ps = List.map perturb (Service.stmt_params stmt) in
    let p, rel, _io = Service.execute ~params:ps svc stmt in
    (match p.Service.source with
     | Service.Hit | Service.Hit_rebound | Service.Rebind_conflict
     | Service.Recost_fallback -> ()
     | s ->
       Alcotest.failf "query %d: unexpected source %s" i (Service.source_label s));
    let fresh = Optimizer.optimize cat (Canon.substitute q ps) in
    let ctx = Exec_ctx.create cat in
    let expected = Executor.run ctx fresh.Optimizer.plan in
    if not (Relation.multiset_equal expected rel) then
      Alcotest.failf "query %d: re-bound plan computed different rows" i
  done;
  Alcotest.(check int) "no stale hits" 0 (Service.stats svc).Service.stale_hits

(* Regression: two bound predicates on one indexed column ('e.dno = ?1 AND
   e.dno <= ?2') both fold into the index bounds, and only the tightest value
   survives as the bound.  Prepared with (10, 20) the tightest bound comes
   from the equality; re-bound to (15, 5) it comes from the other predicate,
   and the correct answer is empty.  The served plan must agree with a fresh
   optimization — the bound folding may not lose the weaker predicate.
   (emp is clustered on dno, so the optimizer does pick the index scan.) *)
let rebind_multi_bound_same_column () =
  let cat = Emp_dept.load () in
  let svc = Service.create cat in
  let sql = "SELECT e.eno AS eno FROM emp e WHERE e.dno = 10 AND e.dno <= 20" in
  let stmt = Service.prepare svc sql in
  let _, rel0, _ = Service.execute svc stmt in
  Alcotest.(check bool) "prepared parameters find rows" true
    (Relation.cardinality rel0 > 0);
  (* Canonical parameter order is an implementation detail: rebind by value
     (the equality was prepared with 10, the range bound with 20). *)
  let ps =
    List.map
      (function
        | Value.Int 10 -> Value.Int 15  (* e.dno = 15 *)
        | Value.Int 20 -> Value.Int 5  (* e.dno <= 5 *)
        | v -> v)
      (Service.stmt_params stmt)
  in
  let p, rel, _ = Service.execute ~params:ps svc stmt in
  (match p.Service.source with
   | Service.Hit_rebound | Service.Rebind_conflict | Service.Recost_fallback ->
     ()
   | s ->
     Alcotest.failf "unexpected source %s" (Service.source_label s));
  let fresh = Optimizer.optimize cat (Canon.substitute (bind cat sql) ps) in
  let expected = Executor.run (Exec_ctx.create cat) fresh.Optimizer.plan in
  Alcotest.(check bool) "re-bound contradictory range is empty" true
    (Relation.is_empty expected);
  Alcotest.(check bool) "served rows match fresh optimization" true
    (Relation.multiset_equal expected rel)

let explicit_invalidation_counts () =
  let cat = Emp_dept.load () in
  let svc = Service.create cat in
  let stmt =
    Service.prepare svc
      "SELECT e.dno AS dno, MAX(e.sal) AS m FROM emp e WHERE e.age > 40 GROUP \
       BY e.dno"
  in
  ignore (Service.plan svc stmt);
  Service.invalidate_all svc;
  let s = Service.stats svc in
  Alcotest.(check int) "explicit drop counted as invalidation" 1
    s.Service.invalidations;
  Alcotest.(check int) "cache emptied" 0 s.Service.entries;
  check_source "next call misses" Service.Miss (Service.plan svc stmt)

let substitute_rejects_type_mismatch () =
  let cat = Emp_dept.load () in
  let q =
    bind cat
      "SELECT e.dno AS dno, MAX(e.sal) AS m FROM emp e WHERE e.age > 40 GROUP \
       BY e.dno"
  in
  let raised =
    try
      ignore (Canon.substitute q [ Value.String "forty" ]);
      false
    with Invalid_argument _ -> true
  in
  Alcotest.(check bool) "ill-typed parameter raises" true raised;
  (* same arity, right type: accepted *)
  ignore (Canon.substitute q [ Value.Int 50 ])

let replay_splits_statements () =
  let stmts =
    Replay.split_statements
      "-- comment line\nSELECT 1;;\n\nCREATE VIEW v AS SELECT 2; SELECT 3;;\n"
  in
  Alcotest.(check (list string)) "statements"
    [ "SELECT 1"; "CREATE VIEW v AS SELECT 2; SELECT 3" ]
    stmts

let tests =
  [
    Alcotest.test_case "FNV-1a published vectors" `Quick fnv1a_vectors;
    Alcotest.test_case "canonicalization shares templates" `Quick
      canonicalization_shares_templates;
    Alcotest.test_case "LRU eviction order" `Quick lru_eviction_order;
    Alcotest.test_case "catalog epoch counter" `Quick epoch_counter;
    Alcotest.test_case "epoch invalidation" `Quick epoch_invalidation;
    Alcotest.test_case "re-bound plans compute the same rows" `Quick
      rebound_plans_are_correct;
    Alcotest.test_case "re-binding honours multiple bounds on one column"
      `Quick rebind_multi_bound_same_column;
    Alcotest.test_case "explicit invalidation is counted" `Quick
      explicit_invalidation_counts;
    Alcotest.test_case "substitute rejects ill-typed parameters" `Quick
      substitute_rejects_type_mismatch;
    Alcotest.test_case "replay statement splitting" `Quick
      replay_splits_statements;
    QCheck_alcotest.to_alcotest
      (prop_cached_plan_identity (Tpcd.load ~params:tiny ()));
  ]
