(* The batched execution engine: batch/selection-vector primitives, the
   heap-based k-way merge, Limit's eager close, and the differential
   property that the batch executor is indistinguishable from the row
   executor (same relation, same buffer-pool IO) on arbitrary plans. *)

let int_schema = Schema.of_columns [ Schema.column ~qual:"t" "x" Datatype.Int ]

let mk_tuples l = List.map (fun i -> Tuple.make [ Value.Int i ]) l

let ints_of rel =
  List.map
    (fun t -> match Tuple.get t 0 with Value.Int i -> i | _ -> assert false)
    (Relation.tuples rel)

let batch_ints b =
  List.map
    (fun t -> match Tuple.get t 0 with Value.Int i -> i | _ -> assert false)
    (Batch.to_list b)

(* ---- Batch / Biter primitives ---- *)

let batch_basics () =
  let rows = Array.of_list (mk_tuples [ 0; 1; 2; 3; 4; 5; 6; 7 ]) in
  let seg = Batch.of_segment int_schema rows ~lo:2 ~len:4 in
  Alcotest.(check int) "segment live" 4 (Batch.live seg);
  Alcotest.(check (list int)) "segment window" [ 2; 3; 4; 5 ] (batch_ints seg);
  let even =
    Batch.select
      (fun t -> match Tuple.get t 0 with Value.Int i -> i mod 2 = 0 | _ -> false)
      seg
  in
  Alcotest.(check (list int)) "select refines window" [ 2; 4 ] (batch_ints even);
  Alcotest.(check (list int)) "take after select" [ 2 ]
    (batch_ints (Batch.take 1 even));
  Alcotest.(check (list int)) "take on unselected" [ 2; 3 ]
    (batch_ints (Batch.take 2 seg));
  let doubled =
    Batch.map int_schema
      (fun t -> Tuple.make [ Value.mul (Tuple.get t 0) (Value.Int 2) ])
      even
  in
  Alcotest.(check (list int)) "map compacts" [ 4; 8 ] (batch_ints doubled);
  Alcotest.(check int) "fold counts live" 2
    (Batch.fold (fun acc _ -> acc + 1) 0 even)

(* The vectorized int-compare kernel must agree with the generic compiled
   predicate on every operator and every selection-vector state. *)
let prop_select_int_cmp =
  QCheck.Test.make ~name:"select_int_cmp = select (compile_pred)" ~count:200
    QCheck.(
      triple
        (list_of_size (Gen.int_range 0 40) (int_range (-8) 8))
        (int_range (-8) 8) (int_range 0 5))
    (fun (xs, k, opi) ->
      let op =
        List.nth [ Expr.Eq; Expr.Ne; Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ] opi
      in
      let col = Schema.column ~qual:"t" "x" Datatype.Int in
      let pred = Expr.Cmp (op, Expr.Col col, Expr.Const (Value.Int k)) in
      let generic = Expr.compile_pred int_schema pred in
      let check b =
        batch_ints (Batch.select_int_cmp ~op ~idx:0 k b)
        = batch_ints (Batch.select generic b)
      in
      let b = Batch.of_list int_schema (mk_tuples xs) in
      (* plain, after a generic select (selection vector present), and as an
         offset segment *)
      check b
      && check (Batch.select (fun _ -> true) b)
      && check
           (let rows = Array.of_list (mk_tuples (0 :: xs)) in
            Batch.of_segment int_schema rows ~lo:1
              ~len:(Array.length rows - 1)))

let biter_adapters () =
  let tuples = mk_tuples (List.init 2500 (fun i -> i)) in
  let bit = Biter.of_iter (Iter.of_list int_schema tuples) in
  let back = Iter.to_list (Biter.to_iter bit) in
  Alcotest.(check int) "iter->biter->iter cardinality" 2500 (List.length back);
  Alcotest.(check bool) "round trip preserves order" true
    (List.for_all2 Tuple.equal tuples back);
  let chunks = ref 0 in
  Biter.iter
    (fun b ->
      incr chunks;
      Alcotest.(check bool) "batches bounded" true
        (Batch.live b <= Batch.default_rows))
    (Biter.of_rows int_schema (Array.of_list tuples));
  Alcotest.(check int) "of_rows chunking" 3 !chunks

(* ---- heap-based k-way merge ---- *)

let merge_64_runs () =
  (* 64 sorted runs with interleaved and duplicated keys; the heap merge
     must produce a fully sorted result containing every input row. *)
  let nruns = 64 in
  let runs =
    List.init nruns (fun r ->
        List.init 40 (fun i -> (i * nruns) + ((r * 13) mod nruns)))
  in
  let iters =
    List.map (fun run -> Iter.of_list int_schema (mk_tuples run)) runs
  in
  let cmp a b = Value.compare (Tuple.get a 0) (Tuple.get b 0) in
  let merged =
    List.map
      (fun t -> match Tuple.get t 0 with Value.Int i -> i | _ -> assert false)
      (Iter.to_list (Xsort.merge_iters int_schema cmp iters))
  in
  Alcotest.(check int) "all rows survive" (64 * 40) (List.length merged);
  Alcotest.(check bool) "fully sorted" true
    (List.for_all2 ( <= ) merged (List.tl merged @ [ max_int ]));
  Alcotest.(check (list int)) "same multiset" (List.sort compare (List.concat runs))
    (List.sort compare merged)

let merge_stability () =
  (* Equal keys must come out in run-index order (ties break on source). *)
  let schema2 =
    Schema.of_columns
      [ Schema.column ~qual:"t" "k" Datatype.Int;
        Schema.column ~qual:"t" "run" Datatype.Int ]
  in
  let run r keys =
    Iter.of_list schema2
      (List.map (fun k -> Tuple.make [ Value.Int k; Value.Int r ]) keys)
  in
  let cmp a b = Value.compare (Tuple.get a 0) (Tuple.get b 0) in
  let merged =
    Iter.to_list
      (Xsort.merge_iters schema2 cmp
         [ run 0 [ 1; 5; 9 ]; run 1 [ 5; 5; 7 ]; run 2 [ 0; 5 ] ])
  in
  let pairs =
    List.map
      (fun t ->
        match (Tuple.get t 0, Tuple.get t 1) with
        | Value.Int k, Value.Int r -> (k, r)
        | _ -> assert false)
      merged
  in
  Alcotest.(check (list (pair int int)))
    "sorted, equal keys in run order"
    [ (0, 2); (1, 0); (5, 0); (5, 1); (5, 1); (5, 2); (7, 1); (9, 0) ]
    pairs

(* ---- Limit closes eagerly and close is idempotent ---- *)

let limit_eager_close () =
  let cat = Catalog.create ~frames:256 () in
  ignore
    (Catalog.add_table cat ~name:"t"
       ~columns:[ ("x", Datatype.Int) ]
       ~pk:[ "x" ]
       (mk_tuples (List.init 500 (fun i -> i))));
  let plan =
    Physical.Limit
      {
        input =
          Physical.Materialize
            { input = Physical.Seq_scan { alias = "a"; table = "t"; filter = [] } };
        count = 3;
      }
  in
  List.iter
    (fun executor ->
      let ctx = Exec_ctx.create cat in
      let rel = Executor.run ~executor ctx plan in
      Alcotest.(check int) "limit rows" 3 (Relation.cardinality rel))
    [ `Row; `Batch ];
  (* Pull through the iterator by hand: exhausting the count closes the
     input (dropping the Materialize temp) and the outer close must then be
     a no-op rather than a double drop. *)
  let ctx = Exec_ctx.create cat in
  let it = Executor.open_iter ctx plan in
  let rec drain n = match it.Iter.next () with None -> n | Some _ -> drain (n + 1) in
  Alcotest.(check int) "row iter yields count" 3 (drain 0);
  it.Iter.close ();
  it.Iter.close ();
  Exec_ctx.cleanup ctx;
  let ctx = Exec_ctx.create cat in
  let bit = Executor.open_batch ctx plan in
  let rec bdrain n =
    match bit.Biter.next_batch () with
    | None -> n
    | Some b -> bdrain (n + Batch.live b)
  in
  Alcotest.(check int) "batch iter yields count" 3 (bdrain 0);
  bit.Biter.close ();
  bit.Biter.close ();
  Exec_ctx.cleanup ctx

(* ---- differential property: batch executor = row executor ---- *)

let diff_catalogs =
  lazy
    [
      ( "tpcd",
        Tpcd.load
          ~params:
            { Tpcd.default_params with customers = 50; orders_per_customer = 3;
              lines_per_order = 3; parts = 30; suppliers = 8 }
          () );
      ( "star",
        Star.load
          ~params:
            { Star.default_params with days = 15; products = 25; stores = 5;
              rows_per_day = 25 }
          () );
      ("chain", Chain.load ~rows:250 ~n:4 ());
    ]

let run_both cat work_mem plan =
  let exec engine =
    let ctx = Exec_ctx.create ~work_mem cat in
    Executor.run_measured ~cold:true ~executor:engine ctx plan
  in
  (exec `Row, exec `Batch)

let prop_batch_equals_row =
  QCheck.Test.make ~name:"batch executor = row executor (result and IO)"
    ~count:36 QCheck.(pair small_nat (int_range 0 1))
    (fun (seed, wm_pick) ->
      let name, cat = List.nth (Lazy.force diff_catalogs) (seed mod 3) in
      let rng = Rng.create ~seed:(seed * 7919) in
      let q = Query_gen.generate ~complexity:`Rich rng cat in
      let work_mem = if wm_pick = 0 then 4 else 32 in
      List.for_all
        (fun algo ->
          let options =
            { Optimizer.default_options with algorithm = algo; work_mem }
          in
          let plan = (Optimizer.optimize ~options cat q).Optimizer.plan in
          let (rel_r, io_r), (rel_b, io_b) = run_both cat work_mem plan in
          if not (Relation.multiset_equal rel_r rel_b) then
            QCheck.Test.fail_reportf "%s seed %d wm %d: differing relations"
              name seed work_mem
          else if
            io_r.Buffer_pool.reads <> io_b.Buffer_pool.reads
            || io_r.Buffer_pool.writes <> io_b.Buffer_pool.writes
          then
            QCheck.Test.fail_reportf
              "%s seed %d wm %d: IO diverged (row %d/%d, batch %d/%d)" name
              seed work_mem io_r.Buffer_pool.reads io_r.Buffer_pool.writes
              io_b.Buffer_pool.reads io_b.Buffer_pool.writes
          else true)
        [ Optimizer.Traditional; Optimizer.Greedy_conservative; Optimizer.Paper ])

let tests =
  [
    Alcotest.test_case "batch primitives" `Quick batch_basics;
    QCheck_alcotest.to_alcotest prop_select_int_cmp;
    Alcotest.test_case "biter adapters" `Quick biter_adapters;
    Alcotest.test_case "heap merge of 64 runs" `Quick merge_64_runs;
    Alcotest.test_case "heap merge tie-break" `Quick merge_stability;
    Alcotest.test_case "limit closes input eagerly" `Quick limit_eager_close;
    QCheck_alcotest.to_alcotest ~long:true prop_batch_equals_row;
  ]
