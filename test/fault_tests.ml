(* Robustness: deterministic fault injection, page checksums, typed errors,
   retry recovery, statement limits (timeout / cancel / spill quota) and
   graceful pool degradation under injected faults. *)

let tiny =
  { Tpcd.default_params with customers = 40; orders_per_customer = 3;
    lines_per_order = 3; parts = 30; suppliers = 8 }

let nation_sql =
  "SELECT c.nation AS nation, COUNT(*) AS n FROM customer c GROUP BY c.nation"

let heap_schema =
  Schema.of_columns
    [ Schema.column ~qual:"t" "k" Datatype.Int;
      Schema.column ~qual:"t" "v" Datatype.Int ]

(* ---- fault-plan spec ---- *)

let parse_spec () =
  (match Fault.parse "seed=7;retries=6;read:p=0.01;corrupt:file=2,at=3+5" with
   | Error m -> Alcotest.fail m
   | Ok plan ->
     Alcotest.(check int) "seed" 7 (Fault.seed plan);
     Alcotest.(check int) "retries" 6 (Fault.retries plan);
     Alcotest.(check int) "rules" 2 (List.length (Fault.rules plan));
     (* canonical rendering is a fixed point *)
     (match Fault.parse (Fault.to_string plan) with
      | Ok p2 ->
        Alcotest.(check string) "roundtrip"
          (Fault.to_string plan) (Fault.to_string p2)
      | Error m -> Alcotest.fail ("roundtrip: " ^ m)));
  List.iter
    (fun bad ->
      match Fault.parse bad with
      | Ok _ -> Alcotest.fail ("accepted bad spec: " ^ bad)
      | Error _ -> ())
    [ "read:p=zebra"; "frobnicate:p=0.1"; "read:p=1.5"; "seed=" ]

(* A scheduled rule faults exactly at its listed matching-op counts. *)
let scheduled_faults () =
  let plan = Fault.make [ Fault.rule ~op:Fault.Read ~at:[ 2; 4 ] () ] in
  let pool = Buffer_pool.create ~frames:8 in
  Buffer_pool.set_faults pool (Some plan);
  let outcomes =
    List.init 5 (fun i ->
        match Buffer_pool.read pool ~file:0 ~page:i with
        | () -> false
        | exception Avq_error.Error (Avq_error.Io_fault _) -> true)
  in
  Alcotest.(check (list bool)) "faults at scheduled ops only"
    [ false; true; false; true; false ]
    outcomes;
  Alcotest.(check int) "plan counted them" 2 (Fault.injected plan)

(* Probabilistic rules are pure in (seed, rule, match count): two fresh
   plans from the same spec fault the same op sequence identically. *)
let deterministic_probability () =
  let run () =
    match Fault.parse "seed=42;read:p=0.3" with
    | Error m -> Alcotest.fail m
    | Ok plan ->
      let pool = Buffer_pool.create ~frames:4 in
      Buffer_pool.set_faults pool (Some plan);
      List.init 100 (fun i ->
          match Buffer_pool.read pool ~file:1 ~page:(i mod 8) with
          | () -> false
          | exception Avq_error.Error (Avq_error.Io_fault _) -> true)
  in
  let a = run () and b = run () in
  Alcotest.(check (list bool)) "identical fault positions" a b;
  Alcotest.(check bool) "some faults fired" true (List.mem true a);
  Alcotest.(check bool) "not every op faulted" true (List.mem false a)

(* ---- checksums ---- *)

let checksum_detects_corruption () =
  let pool = Buffer_pool.create ~frames:64 in
  let verify = Atomic.make true in
  let h = Heap_file.create ~pool ~file_id:0 ~verify heap_schema in
  for i = 0 to 99 do
    ignore (Heap_file.append h [| Value.Int i; Value.Int (i * i) |])
  done;
  Heap_file.scan h (fun _ _ -> ());  (* clean pages verify fine *)
  Heap_file.corrupt h { Page.page = 0; slot = 0 };
  (match Heap_file.get h { Page.page = 0; slot = 1 } with
   | _ -> Alcotest.fail "corrupted page served silently"
   | exception Avq_error.Error (Avq_error.Corruption { file = 0; page = 0; _ })
     -> ());
  (* scans hit the same page and must also refuse it *)
  (match Heap_file.scan h (fun _ _ -> ()) with
   | () -> Alcotest.fail "scan served a corrupted page"
   | exception Avq_error.Error (Avq_error.Corruption _) -> ());
  (* with verification off the damage goes unnoticed (the hazard the
     checksums exist to remove) *)
  Atomic.set verify false;
  ignore (Heap_file.get h { Page.page = 0; slot = 1 })

let bad_rid_is_typed () =
  let pool = Buffer_pool.create ~frames:8 in
  let h = Heap_file.create ~pool ~file_id:3 heap_schema in
  ignore (Heap_file.append h [| Value.Int 1; Value.Int 2 |]);
  match Heap_file.get h { Page.page = 77; slot = 0 } with
  | _ -> Alcotest.fail "out-of-range rid should raise"
  | exception Avq_error.Error (Avq_error.Corruption { file = 3; page = 77; _ })
    -> ()

(* ---- retries ---- *)

let retry_exhaustion () =
  (* A persistent rule on one file: read_retrying spends the whole budget,
     then surfaces a typed fault carrying the attempt count. *)
  let plan =
    Fault.make ~retries:3 [ Fault.rule ~op:Fault.Read ~file:5 () ]
  in
  let pool = Buffer_pool.create ~frames:4 in
  Buffer_pool.set_faults pool (Some plan);
  (match Buffer_pool.read_retrying pool ~file:5 ~page:0 with
   | () -> Alcotest.fail "persistent fault should exhaust the budget"
   | exception Avq_error.Error (Avq_error.Io_fault { attempts; file; _ }) ->
     Alcotest.(check int) "attempts = 1 + retries" 4 attempts;
     Alcotest.(check int) "file" 5 file);
  let fs = Buffer_pool.fault_stats pool in
  Alcotest.(check int) "retried" 3 fs.Buffer_pool.retried;
  Alcotest.(check int) "exhausted" 1 fs.Buffer_pool.exhausted;
  Alcotest.(check int) "recovered" 0 fs.Buffer_pool.recovered;
  (* other files are untouched *)
  Buffer_pool.read_retrying pool ~file:6 ~page:0

let retry_recovers_identically () =
  let cat =
    Tpcd.load ~params:{ tiny with Tpcd.customers = 400 } ()
  in
  let svc = Service.create cat in
  let _, baseline, _ = Service.submit svc nation_sql in
  let st = Catalog.storage cat in
  (* every 2nd read faults; its retry is the next matching op (odd count),
     so each fault recovers after exactly one retry — deterministically. *)
  (match Fault.parse "retries=4;read:every=2" with
   | Error m -> Alcotest.fail m
   | Ok plan -> Storage.Faults.install st plan);
  let _, faulted, _ = Service.submit svc nation_sql in
  let fs = Storage.Faults.stats st in
  Storage.Faults.clear st;
  Alcotest.(check bool) "faults actually fired" true
    (fs.Buffer_pool.injected > 0);
  Alcotest.(check int) "every faulted read recovered" 0
    fs.Buffer_pool.exhausted;
  Alcotest.(check bool) "recovered run identical to fault-free run" true
    (Relation.multiset_equal baseline faulted);
  Alcotest.(check int) "no temp leak" 0 (Storage.live_temps st)

(* ---- statement limits ---- *)

let timeout_and_cancel () =
  let cat = Tpcd.load ~params:tiny () in
  let ctx = Exec_ctx.create cat in
  Exec_ctx.begin_statement ~timeout_ms:0.5 ctx;
  Unix.sleepf 0.002;
  (match Exec_ctx.check ctx with
   | () -> Alcotest.fail "deadline passed but check succeeded"
   | exception Avq_error.Error (Avq_error.Timeout { limit_ms }) ->
     Alcotest.(check (float 1e-9)) "limit reported" 0.5 limit_ms);
  let tok = Atomic.make false in
  Exec_ctx.begin_statement ~cancel:tok ctx;
  Exec_ctx.check ctx;  (* not cancelled yet *)
  Atomic.set tok true;
  (match Exec_ctx.check ctx with
   | () -> Alcotest.fail "cancelled token ignored"
   | exception Avq_error.Error Avq_error.Cancelled -> ());
  (* service-level: a configured deadline surfaces as a typed statement
     error and bumps the timeout counter *)
  let config =
    { Service.default_config with Service.statement_timeout_ms = Some 0.0001 }
  in
  let svc = Service.create ~config cat in
  (match Service.submit svc nation_sql with
   | _ -> Alcotest.fail "statement should have timed out"
   | exception Avq_error.Error (Avq_error.Timeout _) -> ());
  let s = Service.stats svc in
  Alcotest.(check int) "timeout counted" 1 s.Service.errors.Service.timeouts;
  Alcotest.(check int) "call still counted" 1 s.Service.calls;
  Alcotest.(check int) "no temp leak" 0
    (Storage.live_temps (Catalog.storage cat))

let spill_quota_enforced () =
  let cat = Tpcd.load ~params:tiny () in
  let ctx = Exec_ctx.create cat in
  Exec_ctx.begin_statement ~spill_quota:2 ctx;
  let h = Exec_ctx.temp ctx heap_schema in
  let cap = Heap_file.page_capacity h in
  (match
     for i = 0 to 2 * cap do
       ignore (Heap_file.append h [| Value.Int i; Value.Int i |])
     done
   with
   | () -> Alcotest.fail "third temp page should exceed the quota"
   | exception
       Avq_error.Error
         (Avq_error.Resource_exceeded { resource = "temp-pages"; limit; used })
     ->
     Alcotest.(check int) "limit" 2 limit;
     Alcotest.(check int) "used" 3 used);
  Alcotest.(check int) "rows below quota all landed" (2 * cap)
    (Heap_file.nrows h);
  Exec_ctx.cleanup ctx;
  Alcotest.(check int) "no temp leak" 0
    (Storage.live_temps (Exec_ctx.storage ctx))

let pool_cancellation () =
  let cat = Tpcd.load ~params:tiny () in
  let svc = Service.create cat in
  Service.Pool.with_pool ~workers:2 svc (fun pool ->
      let futs = List.init 8 (fun _ -> Service.Pool.submit_sql pool nation_sql) in
      List.iter Service.Pool.cancel futs;
      let resolved =
        List.fold_left
          (fun n f ->
            match Service.Pool.await f with
            | _ -> n + 1
            | exception Avq_error.Error Avq_error.Cancelled -> n + 1)
          0 futs
      in
      Alcotest.(check int) "every future resolved (Ok or Cancelled)" 8 resolved;
      (* the pool keeps serving after a burst of cancellations *)
      let _, rel, _ = Service.Pool.await (Service.Pool.submit_sql pool nation_sql) in
      Alcotest.(check bool) "pool alive" true (Relation.cardinality rel > 0);
      Alcotest.(check int) "all jobs executed" 9 (Service.Pool.executed pool));
  Alcotest.(check int) "no temp leak" 0
    (Storage.live_temps (Catalog.storage cat))

(* ---- qcheck soak: a 4-worker pool under a random fault schedule ---- *)

let soak_sqls =
  [
    nation_sql;
    "SELECT c.nation AS nation, SUM(o.totalprice) AS total FROM customer c, \
     orders o WHERE o.ck = c.ck GROUP BY c.nation";
    "SELECT o.ck AS ck, COUNT(*) AS n FROM orders o GROUP BY o.ck";
  ]

let counters_add_up (s : Service.stats) =
  s.Service.hits + s.Service.rebinds + s.Service.misses
  + s.Service.recost_fallbacks + s.Service.rebind_conflicts
  = s.Service.calls

let soak =
  QCheck.Test.make ~count:8
    ~name:"pool soak under faults: no leaks, no deaths, exact counters"
    QCheck.(triple small_nat (int_bound 5) (int_bound 8))
    (fun (seed, prob_pct, retries) ->
      let cat = Tpcd.load ~params:tiny () in
      let st = Catalog.storage cat in
      (* fault-free baseline, one relation per template *)
      let base_svc = Service.create cat in
      let baseline =
        List.map
          (fun sql ->
            let _, rel, _ = Service.submit base_svc sql in
            rel)
          soak_sqls
      in
      let spec =
        Printf.sprintf "seed=%d;retries=%d;read:p=%.2f" seed retries
          (float_of_int prob_pct /. 100.)
      in
      (match Fault.parse spec with
       | Ok plan -> Storage.Faults.install st plan
       | Error m -> Alcotest.fail m);
      let svc = Service.create cat in
      let reps = 4 in
      let njobs = reps * List.length soak_sqls in
      let ok = ref true in
      Service.Pool.with_pool ~workers:4 svc (fun pool ->
          let futs =
            List.concat_map
              (fun _ ->
                List.mapi (fun i sql -> (i, Service.Pool.submit_sql pool sql))
                  soak_sqls)
              (List.init reps Fun.id)
          in
          List.iter
            (fun (i, fut) ->
              match Service.Pool.await fut with
              | _, rel, _ ->
                if not (Relation.multiset_equal (List.nth baseline i) rel)
                then ok := false
              | exception Avq_error.Error _ -> ()  (* typed failure: fine *)
              | exception _ -> ok := false)
            futs;
          if Service.Pool.executed pool <> njobs then ok := false);
      Storage.Faults.clear st;
      let s = Service.stats svc in
      !ok && counters_add_up s
      && s.Service.calls <= njobs  (* bad statements never planned *)
      && Storage.live_temps st = 0)

let tests =
  [
    Alcotest.test_case "fault-plan spec parses and round-trips" `Quick parse_spec;
    Alcotest.test_case "scheduled rules fault at exact ops" `Quick scheduled_faults;
    Alcotest.test_case "probabilistic rules are deterministic" `Quick
      deterministic_probability;
    Alcotest.test_case "checksum turns corruption into typed error" `Quick
      checksum_detects_corruption;
    Alcotest.test_case "out-of-range rid is typed corruption" `Quick
      bad_rid_is_typed;
    Alcotest.test_case "retry budget exhaustion is typed" `Quick retry_exhaustion;
    Alcotest.test_case "retries recover byte-identical results" `Quick
      retry_recovers_identically;
    Alcotest.test_case "timeout and cancellation are typed" `Quick
      timeout_and_cancel;
    Alcotest.test_case "spill quota bounds temp pages" `Quick spill_quota_enforced;
    Alcotest.test_case "pool degrades gracefully under cancellation" `Quick
      pool_cancellation;
    QCheck_alcotest.to_alcotest soak;
  ]
