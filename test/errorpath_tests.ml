(* Error-path resource tests: a query that fails mid-pipeline must not leak
   temp heap files, and eager operator closes (Limit) must compose with the
   executor's unconditional cleanup.  The failing operator sits *above* a
   spilling external sort, so at the moment of the raise the sort's run
   files exist and are mid-merge. *)

let c ~q n = Schema.column ~qual:q n Datatype.Int

(* 1200 rows of a 2-int schema (~256 rows/page -> ~5 pages), so an external
   sort with work_mem = 3 spills to temp runs. *)
let n_rows = 1200

let build_catalog () =
  let cat = Catalog.create ~frames:256 () in
  let rows =
    List.init n_rows (fun i -> Tuple.make [ Value.Int i; Value.Int (i * 37 mod 101) ])
  in
  ignore
    (Catalog.add_table cat ~name:"r"
       ~columns:[ ("k", Datatype.Int); ("v", Datatype.Int) ]
       ~pk:[ "k" ] ~index:[] rows);
  cat

let spilling_sort = Physical.Sort
    { input = Physical.Seq_scan { alias = "a"; table = "r"; filter = [] };
      cols = [ c ~q:"a" "v" ] ; desc = [] }

(* 100 / (v - 50) > 0 — evaluates fine (negative) for v < 50, raises
   Type_error (division by zero) once the sorted stream reaches v = 50. *)
let exploding_pred =
  Expr.Cmp
    ( Expr.Gt,
      Expr.Binop
        (Expr.Div, Expr.int 100, Expr.Binop (Expr.Sub, Expr.Col (c ~q:"a" "v"), Expr.int 50)),
      Expr.int 0 )

let failing_plan = Physical.Filter { input = spilling_sort; pred = [ exploding_pred ] }

let check_no_leak engine name () =
  let cat = build_catalog () in
  let ctx = Exec_ctx.create ~work_mem:3 cat in
  let raised =
    match Executor.run ~executor:engine ctx failing_plan with
    | _ -> false
    | exception Value.Type_error _ -> true
  in
  Alcotest.(check bool) (name ^ ": Type_error propagates") true raised;
  Alcotest.(check int) (name ^ ": zero temp files survive") 0 (Exec_ctx.live_temps ctx)

(* Sanity: the same sort *does* spill and completes cleanly without the
   exploding filter, and cleanup still leaves no temps. *)
let check_clean_run engine name () =
  let cat = build_catalog () in
  let ctx = Exec_ctx.create ~work_mem:3 cat in
  let rel = Executor.run ~executor:engine ctx spilling_sort in
  Alcotest.(check int) (name ^ ": row count") n_rows (Relation.cardinality rel);
  Alcotest.(check int) (name ^ ": zero temps after run") 0 (Exec_ctx.live_temps ctx)

(* Limit closes its input eagerly after [count] rows; the executor's
   unconditional cleanup then closes again.  Both closes and the temp drops
   must compose (idempotent close, idempotent drop). *)
let check_limit_compose engine name () =
  let cat = build_catalog () in
  let ctx = Exec_ctx.create ~work_mem:3 cat in
  let plan = Physical.Limit { input = spilling_sort; count = 5 } in
  let rel = Executor.run ~executor:engine ctx plan in
  Alcotest.(check int) (name ^ ": limited rows") 5 (Relation.cardinality rel);
  Alcotest.(check int) (name ^ ": zero temps after eager close") 0
    (Exec_ctx.live_temps ctx)

let sample_schema = Schema.of_columns [ c ~q:"t" "x" ]
let sample_rows = List.init 10 (fun i -> Tuple.make [ Value.Int i ])

exception Boom

let iter_closes_on_exception () =
  let closes = ref 0 in
  let base = Iter.of_list sample_schema sample_rows in
  let it = { base with Iter.close = (fun () -> incr closes; base.Iter.close ()) } in
  (try Iter.iter (fun _ -> raise Boom) it with Boom -> ());
  Alcotest.(check int) "source closed exactly once" 1 !closes

let biter_closes_on_exception () =
  let closes = ref 0 in
  let base = Biter.of_rows sample_schema (Array.of_list sample_rows) in
  let bt =
    { base with Biter.close = (fun () -> incr closes; base.Biter.close ()) }
  in
  (try Biter.iter (fun _ -> raise Boom) bt with Boom -> ());
  Alcotest.(check int) "batch source closed exactly once" 1 !closes

let once_idempotent () =
  let calls = ref 0 in
  let f = Iter.once (fun () -> incr calls) in
  f (); f (); f ();
  Alcotest.(check int) "wrapped close ran once" 1 !calls;
  let calls = ref 0 in
  let g = Biter.once (fun () -> incr calls) in
  g (); g ();
  Alcotest.(check int) "batch wrapped close ran once" 1 !calls

let drop_idempotent () =
  let cat = build_catalog () in
  let ctx = Exec_ctx.create ~work_mem:3 cat in
  let tmp = Exec_ctx.temp ctx sample_schema in
  Alcotest.(check int) "one live temp" 1 (Exec_ctx.live_temps ctx);
  Exec_ctx.drop ctx tmp;
  Exec_ctx.drop ctx tmp;
  Alcotest.(check int) "double drop leaves zero" 0 (Exec_ctx.live_temps ctx);
  Exec_ctx.cleanup ctx;
  Alcotest.(check int) "cleanup after drop is a no-op" 0 (Exec_ctx.live_temps ctx)

let tests =
  [
    Alcotest.test_case "row: failed query leaks no temps" `Quick
      (check_no_leak `Row "row");
    Alcotest.test_case "batch: failed query leaks no temps" `Quick
      (check_no_leak `Batch "batch");
    Alcotest.test_case "row: clean spilling sort leaves no temps" `Quick
      (check_clean_run `Row "row");
    Alcotest.test_case "batch: clean spilling sort leaves no temps" `Quick
      (check_clean_run `Batch "batch");
    Alcotest.test_case "row: limit eager close composes with cleanup" `Quick
      (check_limit_compose `Row "row");
    Alcotest.test_case "batch: limit eager close composes with cleanup" `Quick
      (check_limit_compose `Batch "batch");
    Alcotest.test_case "iter closes source on exception" `Quick iter_closes_on_exception;
    Alcotest.test_case "biter closes source on exception" `Quick biter_closes_on_exception;
    Alcotest.test_case "once close wrappers are idempotent" `Quick once_idempotent;
    Alcotest.test_case "exec_ctx drop is idempotent" `Quick drop_idempotent;
  ]
