(* Morsel-driven parallelism: the exchange rewrite's shapes, the
   differential property that a parallel plan's output is byte-identical
   to the serial plan's at every dop (all three algorithms, spilling and
   non-spilling work_mem), and error containment — a failing or timed-out
   worker cancels its siblings, the morsel queues drain, every temp is
   freed, and exactly one typed error surfaces. *)

let col q n = Schema.column ~qual:q n Datatype.Int
let le q n v = Expr.Cmp (Expr.Le, Expr.Col (col q n), Expr.Const (Value.Int v))
let sum q n out = Aggregate.make Aggregate.Sum ~arg:(Expr.Col (col q n)) out

let tiny =
  { Tpcd.default_params with customers = 60; orders_per_customer = 3;
    lines_per_order = 4; parts = 40; suppliers = 8 }

let scan_l filter =
  Physical.Seq_scan { alias = "l"; table = "lineitem"; filter }

let group_l input =
  Physical.Hash_group
    {
      Physical.input;
      agg_qual = "g";
      keys = [ col "l" "pk" ];
      aggs = [ sum "l" "price" "rev" ];
      having = [];
    }

let run_batch ?work_mem cat plan =
  let ctx = Exec_ctx.create ?work_mem cat in
  Fun.protect
    ~finally:(fun () -> Exec_ctx.cleanup ctx)
    (fun () -> Executor.run ~executor:`Batch ctx plan)

let same_bytes a b =
  let ta = Relation.tuples a and tb = Relation.tuples b in
  List.length ta = List.length tb && List.for_all2 Tuple.equal ta tb

(* ---- rewrite shapes ---------------------------------------------------- *)

let rewrite_shapes () =
  let scan = scan_l [ le "l" "qty" 5 ] in
  Alcotest.(check bool) "filtered scan is a morsel segment" true
    (Exchange.segment_ok scan);
  Alcotest.(check bool) "bare scan gets an exchange" true
    (Exchange.has_exchange (Exchange.parallelize ~dop:4 scan));
  Alcotest.(check bool) "group over a segment gets an exchange" true
    (Exchange.has_exchange (Exchange.parallelize ~dop:4 (group_l scan)));
  Alcotest.(check bool) "exchange recurses through Sort" true
    (Exchange.has_exchange
       (Exchange.parallelize ~dop:4
          (Physical.Sort
             { input = group_l scan; cols = [ col "g" "rev" ] ; desc = [] })));
  (* A UDF aggregate has no partial/merge decomposition. *)
  Alcotest.(check bool) "UDF aggregates never parallelize partials" false
    (Exchange.parallel_group_ok
       [ Aggregate.make
           (Aggregate.Udf
              {
                Aggregate.udf_name = "first";
                udf_result = Datatype.Int;
                udf_fold =
                  (function v :: _ -> v | [] -> Value.Int 0);
              })
           ~arg:(Expr.Col (col "l" "qty")) "u" ]);
  Alcotest.(check bool) "Int SUM partials merge exactly" true
    (Exchange.parallel_group_ok [ sum "l" "price" "rev" ])

(* ---- differential: parallel = serial, byte for byte -------------------- *)

let diff_catalogs =
  lazy
    [
      ( "tpcd",
        Tpcd.load
          ~params:
            { Tpcd.default_params with customers = 50; orders_per_customer = 3;
              lines_per_order = 3; parts = 30; suppliers = 8 }
          () );
      ( "star",
        Star.load
          ~params:
            { Star.default_params with days = 15; products = 25; stores = 5;
              rows_per_day = 25 }
          () );
      ("chain", Chain.load ~rows:250 ~n:4 ());
    ]

let prop_parallel_equals_serial =
  QCheck.Test.make
    ~name:"parallel plan output = serial plan output (dop 1, 2, 4)" ~count:18
    QCheck.(pair small_nat (int_range 0 1))
    (fun (seed, wm_pick) ->
      let name, cat = List.nth (Lazy.force diff_catalogs) (seed mod 3) in
      let rng = Rng.create ~seed:(seed * 7919) in
      let q = Query_gen.generate ~complexity:`Rich rng cat in
      let work_mem = if wm_pick = 0 then 4 else 32 in
      List.for_all
        (fun algo ->
          let options =
            { Optimizer.default_options with algorithm = algo; work_mem }
          in
          let plan = (Optimizer.optimize ~options cat q).Optimizer.plan in
          let serial = run_batch ~work_mem cat plan in
          List.for_all
            (fun dop ->
              let pplan = Exchange.parallelize ~dop plan in
              let par = run_batch ~work_mem cat pplan in
              same_bytes serial par
              || QCheck.Test.fail_reportf
                   "%s seed %d wm %d dop %d: parallel output diverged" name
                   seed work_mem dop)
            [ 1; 2; 4 ])
        [ Optimizer.Traditional; Optimizer.Greedy_conservative; Optimizer.Paper ])

(* ---- error containment ------------------------------------------------- *)

let worker_fault_containment () =
  let cat = Tpcd.load ~params:{ tiny with customers = 300 } () in
  let st = Catalog.storage cat in
  let plan = Physical.Exchange { input = scan_l [ le "l" "qty" 5 ]; dop = 4 } in
  let baseline = run_batch cat plan in
  (* Every page read faults: whichever worker claims a morsel first fails;
     its error wins the slot, siblings stop at their next claim, and the
     consumer re-raises exactly one typed error after the queue drains. *)
  let fplan = Fault.make [ Fault.rule ~op:Fault.Read ~p:1.0 () ] in
  Storage.Faults.install st fplan;
  let ctx = Exec_ctx.create cat in
  (match Executor.run_measured ~cold:true ~executor:`Batch ctx plan with
  | _ -> Alcotest.fail "expected a typed IO fault from a morsel worker"
  | exception Avq_error.Error (Avq_error.Io_fault _) -> ());
  Exec_ctx.cleanup ctx;
  Alcotest.(check bool) "faults were injected" true (Fault.injected fplan >= 1);
  Alcotest.(check int) "no temp heap leaked" 0 (Storage.live_temps st);
  Storage.Faults.clear st;
  (* The team joined cleanly: the same plan runs again and reproduces the
     pre-fault result byte for byte. *)
  Alcotest.(check bool) "clean rerun after containment" true
    (same_bytes baseline (run_batch cat plan))

let deadline_stops_workers () =
  let cat = Tpcd.load ~params:{ tiny with customers = 300 } () in
  let st = Catalog.storage cat in
  (* Parallel partial aggregation: the deadline is polled at every morsel
     claim, on the workers' own domains. *)
  let plan =
    group_l (Physical.Exchange { input = scan_l [ le "l" "qty" 5 ]; dop = 4 })
  in
  let ctx = Exec_ctx.create cat in
  Exec_ctx.begin_statement ~timeout_ms:0.001 ctx;
  (match Executor.run ~executor:`Batch ctx plan with
  | _ -> Alcotest.fail "expected a typed timeout"
  | exception Avq_error.Error (Avq_error.Timeout _) -> ());
  Exec_ctx.cleanup ctx;
  Alcotest.(check int) "no temp heap leaked on timeout" 0
    (Storage.live_temps st);
  (* A fresh statement without a deadline completes normally. *)
  let serial = run_batch cat (group_l (scan_l [ le "l" "qty" 5 ])) in
  Alcotest.(check bool) "parallel group after the timeout" true
    (same_bytes serial (run_batch cat plan))

let tests =
  [
    Alcotest.test_case "rewrite shapes" `Quick rewrite_shapes;
    QCheck_alcotest.to_alcotest ~long:true prop_parallel_equals_serial;
    Alcotest.test_case "worker fault cancels siblings" `Quick
      worker_fault_containment;
    Alcotest.test_case "deadline stops morsel workers" `Quick
      deadline_stops_workers;
  ]
