(* The worker pool: K domains sharing one service must be observationally
   identical to serial replay — same result multisets, cache counters that
   add up exactly, no stale hits — and worker-side exceptions must surface
   through [await] in the submitter. *)

let tiny = { Tpcd.default_params with customers = 60; orders_per_customer = 3;
             lines_per_order = 3; parts = 40; suppliers = 10 }

let perturb rng v =
  match v with
  | Value.Int i -> Value.Int (i + Rng.in_range rng (-2) 2)
  | Value.Float f -> Value.Float (f *. (0.95 +. (0.1 *. Rng.float rng)))
  | Value.String _ | Value.Bool _ | Value.Date _ -> v

(* A repeated-template workload, like a session trace: a few templates, many
   perturbed calls. *)
let make_calls cat ~templates ~calls seed =
  let rng = Rng.create ~seed in
  let ts =
    Array.init templates (fun _ -> Query_gen.generate ~complexity:`Simple rng cat)
  in
  Array.init calls (fun _ ->
      let q = ts.(Rng.int rng templates) in
      (q, List.map (perturb rng) (Canon.params q)))

let run_serial cat calls =
  let svc = Service.create cat in
  let results =
    Array.map
      (fun (q, ps) ->
        let _, rel, _ = Service.execute ~params:ps svc (Service.prepare_query svc q) in
        rel)
      calls
  in
  (results, Service.stats svc)

let run_pooled cat ~workers calls =
  let svc = Service.create cat in
  let results =
    Service.Pool.with_pool ~workers svc (fun pool ->
        let futs =
          Array.map
            (fun (q, ps) ->
              Service.Pool.submit ~params:ps pool (Service.prepare_query svc q))
            calls
        in
        Array.map (fun f -> let _, rel, _ = Service.Pool.await f in rel) futs)
  in
  (results, Service.stats svc)

let counters_add_up (s : Service.stats) =
  s.Service.hits + s.Service.rebinds + s.Service.misses
  + s.Service.recost_fallbacks + s.Service.rebind_conflicts
  = s.Service.calls

let differential ~workers () =
  let cat = Tpcd.load ~params:tiny () in
  let calls = make_calls cat ~templates:5 ~calls:40 7 in
  let serial, _ = run_serial cat calls in
  let pooled, stats = run_pooled cat ~workers calls in
  Array.iteri
    (fun i rel ->
      Alcotest.(check bool)
        (Printf.sprintf "call %d multiset-identical to serial" i)
        true
        (Relation.multiset_equal serial.(i) rel))
    pooled;
  Alcotest.(check int) "every call accounted" (Array.length calls)
    stats.Service.calls;
  Alcotest.(check bool) "hits+rebinds+misses+fallbacks+conflicts = calls" true
    (counters_add_up stats);
  Alcotest.(check int) "no stale hits" 0 stats.Service.stale_hits

(* Optimization is paid once per (fingerprint, algo, work_mem) even when all
   workers race on a cold cache: misses <= distinct templates. *)
let pay_once () =
  let cat = Tpcd.load ~params:tiny () in
  let calls = make_calls cat ~templates:4 ~calls:32 11 in
  let _, stats = run_pooled cat ~workers:4 calls in
  let distinct =
    Array.fold_left
      (fun acc (q, _) ->
        let k = Canon.serialize q in
        if List.mem k acc then acc else k :: acc)
      [] calls
    |> List.length
  in
  Alcotest.(check bool)
    (Printf.sprintf "misses (%d) bounded by distinct templates (%d)"
       stats.Service.misses distinct)
    true
    (stats.Service.misses <= distinct)

let exceptions_propagate () =
  let cat = Tpcd.load ~params:tiny () in
  let svc = Service.create cat in
  Service.Pool.with_pool ~workers:2 svc (fun pool ->
      let bad = Service.Pool.submit_sql pool "SELEKT nonsense FROM nowhere" in
      let ok =
        Service.Pool.submit_sql pool
          "SELECT c.nation AS nation, COUNT(*) AS n FROM customer c GROUP BY \
           c.nation"
      in
      let raised =
        match Service.Pool.await bad with
        | _ -> false
        | exception Avq_error.Error (Avq_error.Bad_statement _) -> true
      in
      Alcotest.(check bool) "worker-side error re-raised at await" true raised;
      let _, rel, _ = Service.Pool.await ok in
      Alcotest.(check bool) "pool survives a failed statement" true
        (Relation.cardinality rel > 0))

let shutdown_semantics () =
  let cat = Tpcd.load ~params:tiny () in
  let svc = Service.create cat in
  let pool = Service.Pool.create ~workers:2 svc in
  Alcotest.(check int) "workers" 2 (Service.Pool.workers pool);
  let fut =
    Service.Pool.submit_sql pool
      "SELECT c.nation AS nation, COUNT(*) AS n FROM customer c GROUP BY c.nation"
  in
  ignore (Service.Pool.await fut);
  Alcotest.(check int) "one statement executed" 1 (Service.Pool.executed pool);
  Service.Pool.shutdown pool;
  Service.Pool.shutdown pool;
  (* idempotent *)
  let rejected =
    match Service.Pool.submit_sql pool "SELECT 1 AS one FROM customer c" with
    | _ -> false
    | exception Invalid_argument _ -> true
  in
  Alcotest.(check bool) "submit after shutdown rejected" true rejected

let tests =
  [
    Alcotest.test_case "pool(2) differential vs serial" `Quick (differential ~workers:2);
    Alcotest.test_case "pool(4) differential vs serial" `Quick (differential ~workers:4);
    Alcotest.test_case "cold cache pays optimization once" `Quick pay_once;
    Alcotest.test_case "worker exceptions propagate through await" `Quick
      exceptions_propagate;
    Alcotest.test_case "shutdown is idempotent and rejects new work" `Quick
      shutdown_semantics;
  ]
