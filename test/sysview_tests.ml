(* Observability v2: the statement-statistics store (Stmt_stats), the
   system views synthesized into the catalog, the \stats directive, the
   HTTP observability endpoint, the data-dir lock, and the Prometheus
   histogram export shape. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_contains what hay needle =
  Alcotest.(check bool)
    (Printf.sprintf "%s contains %s" what needle)
    true (contains hay needle)

let small =
  { Emp_dept.default_params with Emp_dept.emps = 800; depts = 5; seed = 7 }

let make_service () = Service.create (Emp_dept.load ~params:small ())

let run svc sql =
  let _, rel, _ = Service.submit svc sql in
  rel

let probe_sql = "SELECT e.dno AS dno, COUNT(*) AS c FROM emp e GROUP BY e.dno"

(* ---- Stmt_stats store ---- *)

let stats_basics () =
  let st = Stmt_stats.create () in
  Stmt_stats.record st ~fp:"aaaa" ~query:"q1" ~rows:10 ~pages:3 ~cache_hit:true
    ~ms:2.0 ();
  Stmt_stats.record st ~fp:"aaaa" ~query:"q1" ~rows:5 ~pages:1 ~rebind:true
    ~ms:4.0 ();
  Stmt_stats.record st ~fp:"bbbb" ~query:"q2" ~error:"timeout" ~ms:100.0 ();
  Alcotest.(check int) "tracked" 2 (Stmt_stats.tracked st);
  Alcotest.(check int) "recorded" 3 (Stmt_stats.recorded st);
  Alcotest.(check int) "total calls" 3 (Stmt_stats.total_calls st);
  let by_fp fp =
    List.find (fun (s : Stmt_stats.stat) -> s.fingerprint = fp)
      (Stmt_stats.snapshot st)
  in
  let a = by_fp "aaaa" in
  Alcotest.(check int) "calls" 2 a.Stmt_stats.calls;
  Alcotest.(check int) "errors" 0 a.Stmt_stats.errors;
  Alcotest.(check (float 1e-9)) "total_ms" 6.0 a.Stmt_stats.total_ms;
  Alcotest.(check (float 1e-9)) "mean_ms" 3.0 a.Stmt_stats.mean_ms;
  Alcotest.(check (float 1e-9)) "min_ms" 2.0 a.Stmt_stats.min_ms;
  Alcotest.(check (float 1e-9)) "max_ms" 4.0 a.Stmt_stats.max_ms;
  Alcotest.(check int) "rows sum" 15 a.Stmt_stats.rows;
  Alcotest.(check int) "pages sum" 4 a.Stmt_stats.pages;
  Alcotest.(check int) "cache hits" 1 a.Stmt_stats.cache_hits;
  Alcotest.(check int) "rebinds" 1 a.Stmt_stats.rebinds;
  let b = by_fp "bbbb" in
  Alcotest.(check int) "error count" 1 b.Stmt_stats.errors;
  Alcotest.(check (list (pair string int)))
    "error classes"
    [ ("timeout", 1) ]
    b.Stmt_stats.error_classes;
  (* quantiles answer with bucket upper bounds of the shared latency
     ladder: 2ms and 4ms land in the 2.5 and 5 buckets, 100ms exactly on
     the 100 bound *)
  Alcotest.(check (float 1e-9)) "p50 of single obs" 100. b.Stmt_stats.p50_ms;
  Alcotest.(check (float 1e-9)) "p50 over ladder" 2.5 a.Stmt_stats.p50_ms;
  Alcotest.(check (float 1e-9)) "p99 over ladder" 5. a.Stmt_stats.p99_ms;
  (* snapshot sorts by total_ms desc *)
  (match Stmt_stats.snapshot st with
  | first :: _ ->
    Alcotest.(check string) "hottest first" "bbbb" first.Stmt_stats.fingerprint
  | [] -> Alcotest.fail "snapshot empty");
  let json = Stmt_stats.to_json_top ~n:1 st in
  check_contains "top json" json "\"fingerprint\": \"bbbb\"";
  check_contains "top json tracked" json "\"tracked\": 2"

let stats_eviction () =
  let st = Stmt_stats.create ~max_entries:8 () in
  (* 8 shards, cap 1 per shard: 64 distinct fingerprints must evict *)
  for i = 1 to 64 do
    Stmt_stats.record st ~fp:(Printf.sprintf "fp%02d" i) ~query:"q" ~ms:1.0 ()
  done;
  Alcotest.(check bool) "bounded" true (Stmt_stats.tracked st <= 8);
  Alcotest.(check int) "evicted the rest" (64 - Stmt_stats.tracked st)
    (Stmt_stats.evictions st);
  Alcotest.(check int) "recorded counts everything" 64 (Stmt_stats.recorded st);
  Alcotest.check_raises "cap below shard count refused"
    (Invalid_argument "Stmt_stats.create: max_entries below shard count")
    (fun () -> ignore (Stmt_stats.create ~max_entries:4 ()))

let stats_lru_keeps_hot () =
  let st = Stmt_stats.create ~max_entries:16 () in
  (* keep one fingerprint hot while cycling many cold ones through the
     shards; the hot one must survive every eviction *)
  for round = 1 to 50 do
    Stmt_stats.record st ~fp:"hot" ~query:"q" ~ms:1.0 ();
    Stmt_stats.record st ~fp:(Printf.sprintf "cold%d" round) ~query:"q" ~ms:1.0 ()
  done;
  Alcotest.(check bool) "hot fingerprint survived" true
    (List.exists
       (fun (s : Stmt_stats.stat) -> s.fingerprint = "hot")
       (Stmt_stats.snapshot st))

let stats_reset_keeps_counters () =
  let st = Stmt_stats.create () in
  Stmt_stats.record st ~fp:"x" ~query:"q" ~ms:1.0 ();
  Stmt_stats.reset st;
  Alcotest.(check int) "tracked drops" 0 (Stmt_stats.tracked st);
  Alcotest.(check int) "recorded survives" 1 (Stmt_stats.recorded st);
  Alcotest.(check int) "total_calls drops" 0 (Stmt_stats.total_calls st)

let stats_across_domains () =
  let st = Stmt_stats.create () in
  let per_domain = 2_000 in
  let fps = [| "d0"; "d1"; "d2"; "d3" |] in
  let ds =
    List.init 4 (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per_domain do
              Stmt_stats.record st ~fp:fps.((d + i) mod 4) ~query:"q"
                ~rows:1 ~ms:0.1 ()
            done))
  in
  List.iter Domain.join ds;
  Alcotest.(check int) "no observation lost" (4 * per_domain)
    (Stmt_stats.recorded st);
  Alcotest.(check int) "sum of calls = recorded (no eviction)"
    (4 * per_domain) (Stmt_stats.total_calls st);
  Alcotest.(check int) "4 fingerprints" 4 (Stmt_stats.tracked st)

(* ---- the service records into the store on every path ---- *)

let prom_counter_value body name =
  let target = name ^ " " in
  let line =
    List.find_opt
      (fun l ->
        String.length l > String.length target
        && String.sub l 0 (String.length target) = target)
      (String.split_on_char '\n' body)
  in
  match line with
  | None -> Alcotest.fail (name ^ " not exported")
  | Some l ->
    float_of_string
      (String.sub l (String.length target)
         (String.length l - String.length target))

(* The tentpole's sum invariant: with nothing evicted or reset, the total
   calls across tracked fingerprints equal [avq_statements_total] — every
   statement path records exactly one observation.  Exercised under 4 pool
   workers plus an INSERT and an EXPLAIN ANALYZE riding along. *)
let pool_soak_sum_invariant () =
  let svc = make_service () in
  let templates =
    [|
      "SELECT e.dno AS dno, COUNT(*) AS c FROM emp e GROUP BY e.dno";
      "SELECT e.dno AS dno, AVG(e.sal) AS s FROM emp e WHERE e.sal > 1000 \
       GROUP BY e.dno";
      "SELECT d.dname AS dname, COUNT(*) AS c FROM emp e, dept d WHERE e.dno \
       = d.dno GROUP BY d.dname";
    |]
  in
  let per_template = 12 in
  Service.Pool.with_pool ~workers:4 svc (fun pool ->
      let futs =
        List.init (3 * per_template) (fun i ->
            Service.Pool.submit_sql pool templates.(i mod 3))
      in
      List.iter (fun f -> ignore (Service.Pool.await f)) futs);
  ignore
    (Service.exec_statement svc "INSERT INTO emp VALUES (990001, 1, 5000, 31)");
  let stmt = Service.prepare svc templates.(0) in
  (match Service.explain_analyze svc stmt with
  | _, Ok _, _ -> ()
  | _, Error _, _ -> Alcotest.fail "explain analyze failed");
  let st = Service.stats_store svc in
  let expected = (3 * per_template) + 2 in
  Alcotest.(check int) "recorded = statements executed" expected
    (Stmt_stats.recorded st);
  Alcotest.(check int) "sum(calls) = recorded (nothing evicted)" expected
    (Stmt_stats.total_calls st);
  let prom = Metrics.to_prometheus (Service.metrics svc) in
  Alcotest.(check (float 0.))
    "sum(calls) = avq_statements_total"
    (prom_counter_value prom "avq_statements_total")
    (float_of_int (Stmt_stats.total_calls st));
  check_contains "store meta-instruments exported" prom
    "avq_stat_recorded_total"

(* ---- system views ---- *)

let sysview_statements () =
  let svc = make_service () in
  ignore (run svc probe_sql);
  ignore (run svc probe_sql);
  let rel =
    run svc "SELECT * FROM avq_stat_statements ORDER BY total_ms DESC LIMIT 5"
  in
  Alcotest.(check bool) "at least the probe row" true
    (Relation.cardinality rel >= 1);
  Alcotest.(check int) "all 19 columns" 19 (Schema.arity (Relation.schema rel));
  (* total_ms (column 4) really is descending *)
  let totals =
    List.map
      (fun t ->
        match Tuple.get t 4 with
        | Value.Float f -> f
        | _ -> Alcotest.fail "total_ms must be a float")
      (Relation.tuples rel)
  in
  Alcotest.(check bool) "ordered descending" true
    (List.sort (fun a b -> compare b a) totals = totals);
  (* the probe's entry carries its two calls, the second a plan-cache hit *)
  let rel2 =
    run svc
      "SELECT s.fingerprint AS fingerprint, s.calls AS calls, s.cache_hits \
       AS hits FROM avq_stat_statements s WHERE s.calls = 2"
  in
  Alcotest.(check int) "probe fingerprint found" 1 (Relation.cardinality rel2);
  (match Relation.tuples rel2 with
  | [ t ] ->
    Alcotest.(check bool) "second call hit the plan cache" true
      (Tuple.get t 2 = Value.Int 1)
  | _ -> Alcotest.fail "expected one row");
  (* writes into system views are refused with a typed error *)
  match
    Service.exec_statement svc "INSERT INTO avq_stat_statements VALUES (1)"
  with
  | _ -> Alcotest.fail "INSERT into a system view must be refused"
  | exception Avq_error.Error (Avq_error.Bad_statement _) -> ()

let sysview_tables_and_matviews () =
  let svc = make_service () in
  let rel =
    run svc "SELECT t.name AS name, t.rows AS rows FROM avq_stat_tables t"
  in
  Alcotest.(check int) "emp + dept, no system tables listed" 2
    (Relation.cardinality rel);
  let rel = run svc "SELECT * FROM avq_stat_matviews" in
  Alcotest.(check int) "no views yet" 0 (Relation.cardinality rel);
  ignore
    (Service.exec_statement svc
       "CREATE MATERIALIZED VIEW by_dept AS SELECT e.dno AS dno, SUM(e.sal) \
        AS total FROM emp e GROUP BY e.dno");
  let rel =
    run svc
      "SELECT v.name AS name, v.groups AS groups, v.fresh AS fresh FROM \
       avq_stat_matviews v"
  in
  (match Relation.tuples rel with
  | [ t ] ->
    Alcotest.(check bool) "name" true (Tuple.get t 0 = Value.String "by_dept");
    Alcotest.(check bool) "5 groups" true (Tuple.get t 1 = Value.Int 5);
    Alcotest.(check bool) "fresh" true (Tuple.get t 2 = Value.Bool true)
  | _ -> Alcotest.fail "expected exactly by_dept");
  (* staleness shows up once a base change goes unabsorbed *)
  Matview.set_maintenance (Service.matviews svc) "by_dept" false;
  ignore
    (Service.exec_statement svc "INSERT INTO emp VALUES (990001, 1, 5000, 31)");
  let rel = run svc "SELECT v.fresh AS fresh FROM avq_stat_matviews v" in
  (match Relation.tuples rel with
  | [ t ] ->
    Alcotest.(check bool) "stale after unabsorbed insert" true
      (Tuple.get t 0 = Value.Bool false)
  | _ -> Alcotest.fail "expected one row");
  (* the backing extent is a regular table, visible in avq_stat_tables *)
  let rel =
    run svc "SELECT t.name AS name FROM avq_stat_tables t WHERE t.rows = 5"
  in
  Alcotest.(check bool) "extent listed" true
    (List.exists
       (fun t -> Tuple.get t 0 = Value.String "__mv_by_dept")
       (Relation.tuples rel))

let sysview_snapshot_is_per_statement () =
  let svc = make_service () in
  let monitoring =
    "SELECT s.calls AS calls FROM avq_stat_statements s WHERE s.calls > 0"
  in
  let count () = Relation.cardinality (run svc monitoring) in
  let n1 = count () in
  ignore (run svc probe_sql);
  let n2 = count () in
  Alcotest.(check bool) "later snapshot sees the new statement" true (n2 > n1);
  (* repeated monitoring queries must be cache-served: a same-shaped
     snapshot refresh must not bump the catalog epoch *)
  let p, _, _ = Service.submit svc monitoring in
  match p.Service.source with
  | Service.Hit | Service.Hit_rebound -> ()
  | s ->
    Alcotest.failf "monitoring query should be cache-served, got %s"
      (Service.source_label s)

let sysview_not_checkpointed () =
  let dir =
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "avq_sysview_ckpt_%d" (Unix.getpid ()))
    in
    if Sys.file_exists d then
      Array.iter (fun f -> Sys.remove (Filename.concat d f)) (Sys.readdir d)
    else Unix.mkdir d 0o755;
    d
  in
  let load () = Emp_dept.load ~params:small () in
  let cat, mviews, writer, rstats =
    Recovery.recover ~data_dir:dir ~meta:"sysview" ~seed:load ()
  in
  let svc = Service.create ~mviews cat in
  Service.attach_wal svc ~data_dir:dir ~recovery:rstats writer;
  ignore (run svc probe_sql);
  (* materialize the system views, then checkpoint with them in the catalog *)
  ignore (run svc "SELECT * FROM avq_stat_statements");
  ignore
    (Service.exec_statement svc "INSERT INTO emp VALUES (990001, 1, 5000, 31)");
  let tag = Service.checkpoint svc in
  check_contains "checkpointed" tag "CHECKPOINT";
  let cat2, _, w2, st2 =
    Recovery.recover ~data_dir:dir ~meta:"sysview" ~seed:load ()
  in
  Wal.close w2;
  Alcotest.(check bool) "checkpoint loaded" true st2.Recovery.checkpoint_loaded;
  Alcotest.(check bool) "no system table snapshot recovered" true
    (List.for_all
       (fun (t : Catalog.table) -> not (Sysview.is_system_table t.Catalog.tname))
       (Catalog.tables cat2));
  (* and a fresh service over the recovered catalog synthesizes them anew *)
  let svc2 = Service.create cat2 in
  let rel = run svc2 "SELECT t.name AS name FROM avq_stat_tables t" in
  Alcotest.(check int) "emp + dept recovered" 2 (Relation.cardinality rel)

let stats_directive () =
  let svc = make_service () in
  ignore (run svc probe_sql);
  (match Replay.classify "\\stats" with
  | Replay.Directive_stats `Show -> ()
  | _ -> Alcotest.fail "\\stats must classify as a stats directive");
  (match Replay.classify "\\stats reset" with
  | Replay.Directive_stats `Reset -> ()
  | _ -> Alcotest.fail "\\stats reset must classify as a reset");
  let body = Replay.run_stats svc `Show in
  check_contains "header" body "fingerprint";
  check_contains "tracked" body "tracked=1";
  ignore (Replay.run_stats svc `Reset);
  check_contains "after reset" (Replay.run_stats svc `Show) "tracked=0";
  (* through the replay loop itself *)
  match Replay.replay svc "\\stats;;" with
  | [ { Replay.outcome = Replay.Rendered body; _ } ] ->
    check_contains "replayed directive" body "recorded="
  | _ -> Alcotest.fail "expected one rendered line"

(* ---- over the TCP protocol ---- *)

let with_server ?(workers = 2) f =
  Lifecycle.reset ();
  let svc = make_service () in
  Service.Pool.with_pool ~workers svc (fun pool ->
      let srv =
        Server.start ~config:{ Server.default_config with Server.port = 0 } pool
      in
      Fun.protect
        ~finally:(fun () ->
          Server.stop srv;
          Lifecycle.reset ())
        (fun () -> f svc srv))

let server_sysviews_over_tcp () =
  with_server (fun svc srv ->
      let c = Client.connect ~port:(Server.port srv) () in
      (match Client.query c probe_sql with
      | Protocol.Result { rows; _ } -> Alcotest.(check int) "probe rows" 5 rows
      | _ -> Alcotest.fail "probe failed");
      (match
         Client.query c
           "SELECT * FROM avq_stat_statements ORDER BY total_ms DESC LIMIT 5"
       with
      | Protocol.Result { rows; body; _ } ->
        Alcotest.(check bool) "tracked statements" true (rows >= 1);
        check_contains "header row" body "fingerprint";
        (* the view and the store agree on the hottest statement *)
        (match Stmt_stats.snapshot (Service.stats_store svc) with
        | top :: _ ->
          check_contains "agrees with store" body top.Stmt_stats.fingerprint
        | [] -> Alcotest.fail "store empty")
      | _ -> Alcotest.fail "system view query failed");
      (* this very connection appears in avq_server_sessions *)
      (match
         Client.query c
           "SELECT s.sid AS sid, s.prepared AS prepared FROM \
            avq_server_sessions s"
       with
      | Protocol.Result { rows; _ } ->
        Alcotest.(check int) "one live session" 1 rows
      | _ -> Alcotest.fail "sessions view failed");
      (match Client.query c "\\stats" with
      | Protocol.Result { body; _ } ->
        check_contains "directive body" body "tracked="
      | _ -> Alcotest.fail "\\stats over TCP failed");
      Client.close c)

(* ---- slow-query log carries fingerprint + sid ---- *)

let with_captured_stderr f =
  flush stderr;
  let saved = Unix.dup Unix.stderr in
  let path = Filename.temp_file "avq_slow" ".log" in
  let fd = Unix.openfile path [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  Unix.dup2 fd Unix.stderr;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stderr;
      Unix.dup2 saved Unix.stderr;
      Unix.close saved)
    f;
  In_channel.with_open_text path In_channel.input_all

let slow_log_fields () =
  let svc = make_service () in
  let tr = Trace.create ~slow_ms:0.0 () in
  Service.set_tracer svc (Some tr);
  let stmt = Service.prepare svc probe_sql in
  let limits = { Service.no_limits with Service.sl_sid = Some 7 } in
  let log =
    with_captured_stderr (fun () ->
        let ctx = Exec_ctx.create (Service.catalog svc) in
        ignore (Service.execute_on ctx ~limits svc stmt))
  in
  Service.set_tracer svc None;
  Alcotest.(check int) "slow statement noted" 1 (Trace.slow_statements tr);
  check_contains "slow log line" log "[slow ";
  check_contains "fingerprint joins avq_stat_statements" log
    ("fp=" ^ Service.stmt_fingerprint stmt);
  check_contains "session id" log "sid=7"

(* ---- HTTP endpoint ---- *)

let http_request port raw_req =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  ignore (Unix.write_substring fd raw_req 0 (String.length raw_req));
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec drain () =
    match Unix.read fd chunk 0 1024 with
    | 0 -> ()
    | n ->
      Buffer.add_subbytes buf chunk 0 n;
      drain ()
    | exception Unix.Unix_error _ -> ()
  in
  drain ();
  Unix.close fd;
  Buffer.contents buf

let http_get port target =
  let raw = http_request port (Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" target) in
  let code =
    try int_of_string (String.sub raw 9 3)
    with _ -> Alcotest.fail ("unparsable reply: " ^ raw)
  in
  let body =
    let rec find i =
      if i + 4 > String.length raw then raw
      else if String.sub raw i 4 = "\r\n\r\n" then
        String.sub raw (i + 4) (String.length raw - i - 4)
      else find (i + 1)
    in
    find 0
  in
  (code, body)

let http_endpoints () =
  Lifecycle.reset ();
  let scraped = ref 0 in
  let h =
    Http.start ~port:0
      ~metrics:(fun () ->
        incr scraped;
        "avq_statements_total 42\n")
      ~statements:(fun ~n -> Printf.sprintf "{\"n\":%d}" n)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Http.stop h;
      Lifecycle.reset ())
    (fun () ->
      let port = Http.port h in
      (* before set_ready everything but healthz is 503, healthz says why *)
      let code, body = http_get port "/healthz" in
      Alcotest.(check int) "healthz recovering code" 503 code;
      check_contains "healthz recovering body" body "recovering";
      let code, _ = http_get port "/metrics" in
      Alcotest.(check int) "metrics gated" 503 code;
      Http.set_ready h;
      let code, body = http_get port "/healthz" in
      Alcotest.(check int) "healthz ready" 200 code;
      check_contains "ready body" body "ready";
      let code, body = http_get port "/metrics" in
      Alcotest.(check int) "metrics open" 200 code;
      check_contains "metrics body" body "avq_statements_total 42";
      let code, body = http_get port "/statements?n=3" in
      Alcotest.(check int) "statements" 200 code;
      Alcotest.(check string) "n forwarded" "{\"n\":3}" body;
      let _, body = http_get port "/statements" in
      Alcotest.(check string) "default n" "{\"n\":10}" body;
      let code, _ = http_get port "/nope" in
      Alcotest.(check int) "unknown path" 404 code;
      let raw = http_request port "POST /metrics HTTP/1.0\r\n\r\n" in
      check_contains "post refused" raw "405";
      (* draining flips healthz while /metrics stays up for the last scrape *)
      Lifecycle.request_drain ();
      let code, body = http_get port "/healthz" in
      Alcotest.(check int) "healthz draining code" 503 code;
      check_contains "draining body" body "draining";
      let code, _ = http_get port "/metrics" in
      Alcotest.(check int) "metrics during drain" 200 code;
      Alcotest.(check bool) "scrapes counted" true (!scraped >= 2);
      Alcotest.(check bool) "requests counted" true (Http.requests h >= 8))

(* ---- data-dir lock ---- *)

let dir_lock () =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "avq_dirlock_%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let lock = Dir_lock.acquire dir in
  let lock_file = Filename.concat dir "LOCK" in
  Alcotest.(check bool) "lock file exists" true (Sys.file_exists lock_file);
  let pid_in_file =
    let ic = open_in lock_file in
    let line = input_line ic in
    close_in ic;
    int_of_string (String.trim line)
  in
  Alcotest.(check int) "pid recorded" (Unix.getpid ()) pid_in_file;
  (* a second acquire — same process or another — must fail typed *)
  (match Dir_lock.acquire dir with
  | _ -> Alcotest.fail "second acquire must fail"
  | exception Avq_error.Error (Avq_error.Unavailable msg) ->
    check_contains "error names the dir" msg dir);
  Dir_lock.release lock;
  Alcotest.(check bool) "lock file removed" false (Sys.file_exists lock_file);
  (* released: the next acquire succeeds *)
  let lock2 = Dir_lock.acquire dir in
  Dir_lock.release lock2

(* ---- Prometheus histogram export shape ---- *)

let prometheus_buckets () =
  let m = Metrics.create () in
  let h = Metrics.histogram m ~help:"test" ~buckets:[| 1.; 10.; 100. |] "t_ms" in
  List.iter (Metrics.Histogram.observe h) [ 0.5; 5.; 5.; 50.; 500. ];
  let body = Metrics.to_prometheus m in
  (* cumulative _bucket lines with le labels, then +Inf = _count, _sum *)
  check_contains "le=1" body "t_ms_bucket{le=\"1\"} 1";
  check_contains "le=10 cumulative" body "t_ms_bucket{le=\"10\"} 3";
  check_contains "le=100 cumulative" body "t_ms_bucket{le=\"100\"} 4";
  check_contains "le=+Inf" body "t_ms_bucket{le=\"+Inf\"} 5";
  check_contains "_count" body "t_ms_count 5";
  check_contains "_sum" body "t_ms_sum 560.5";
  (* the bucket lines really are monotonically non-decreasing *)
  let bucket_counts =
    List.filter_map
      (fun line ->
        match String.index_opt line '}' with
        | Some i when contains line "t_ms_bucket{" ->
          Some
            (float_of_string
               (String.trim
                  (String.sub line (i + 1) (String.length line - i - 1))))
        | _ -> None)
      (String.split_on_char '\n' body)
  in
  Alcotest.(check int) "all bucket lines seen" 4 (List.length bucket_counts);
  Alcotest.(check bool) "cumulative monotone" true
    (List.sort compare bucket_counts = bucket_counts)

let tests =
  [
    Alcotest.test_case "stmt_stats: record + snapshot" `Quick stats_basics;
    Alcotest.test_case "stmt_stats: bounded cardinality (LRU)" `Quick
      stats_eviction;
    Alcotest.test_case "stmt_stats: LRU keeps the hot entry" `Quick
      stats_lru_keeps_hot;
    Alcotest.test_case "stmt_stats: reset keeps meta counters" `Quick
      stats_reset_keeps_counters;
    Alcotest.test_case "stmt_stats: concurrent domains lose nothing" `Quick
      stats_across_domains;
    Alcotest.test_case "pool soak: sum(calls) = avq_statements_total" `Quick
      pool_soak_sum_invariant;
    Alcotest.test_case "avq_stat_statements via SQL" `Quick sysview_statements;
    Alcotest.test_case "avq_stat_tables + avq_stat_matviews" `Quick
      sysview_tables_and_matviews;
    Alcotest.test_case "system views snapshot per statement, cache-friendly"
      `Quick sysview_snapshot_is_per_statement;
    Alcotest.test_case "system views are not checkpointed" `Quick
      sysview_not_checkpointed;
    Alcotest.test_case "\\stats directive" `Quick stats_directive;
    Alcotest.test_case "system views over the TCP protocol" `Quick
      server_sysviews_over_tcp;
    Alcotest.test_case "slow log carries fingerprint + sid" `Quick
      slow_log_fields;
    Alcotest.test_case "HTTP /metrics /healthz /statements" `Quick
      http_endpoints;
    Alcotest.test_case "data-dir lock" `Quick dir_lock;
    Alcotest.test_case "Prometheus cumulative buckets" `Quick
      prometheus_buckets;
  ]
