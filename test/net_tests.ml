(* avq.net: wire framing, protocol codec, lifecycle state machine, and the
   TCP server end to end — sessions, admission control, disconnect
   cancellation, and a connection-churn soak that must leak nothing. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let small =
  { Emp_dept.default_params with Emp_dept.emps = 1200; depts = 4; seed = 11 }

let make_service () = Service.create (Emp_dept.load ~params:small ())

let fast_sql =
  "SELECT e.dno AS dno, COUNT(*) AS heads FROM emp e WHERE e.sal > 1000 GROUP \
   BY e.dno"

(* a self-join blowup: enough batches that timeouts, cancellation and abort
   all get observed at a boundary before it finishes.  Three-way on purpose:
   the two-way pair count (~360k joined rows) completes in ~1 ms on a fast
   host, racing the 1 ms deadline the tests arm; the ~100M-row triple count
   cannot finish before any deadline check fires, on any host.  No test
   reads its result — every use expects a timeout, a cancel, or neither
   outcome specifically. *)
let slow_sql =
  "SELECT e1.dno AS dno, COUNT(*) AS triples FROM emp e1, emp e2, emp e3 \
   WHERE e1.dno = e2.dno AND e2.dno = e3.dno GROUP BY e1.dno"

(* ---- wire framing ---- *)

let wire_roundtrip () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let payloads = [ ""; "x"; String.make 70_000 'q'; "embedded\nnewline\x00nul" ] in
  List.iter (fun p -> Wire.write_frame a p) payloads;
  List.iter
    (fun expect ->
      match Wire.read_frame b with
      | Some got -> Alcotest.(check string) "frame payload" expect got
      | None -> Alcotest.fail "unexpected EOF")
    payloads;
  Unix.close a;
  Alcotest.(check bool) "clean EOF at boundary" true (Wire.read_frame b = None);
  Unix.close b

let wire_mid_frame_eof () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  (* a 4-byte length promising 100 bytes, then only 3 before EOF *)
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 100l;
  ignore (Unix.write a hdr 0 4);
  ignore (Unix.write_substring a "abc" 0 3);
  Unix.close a;
  Alcotest.check_raises "mid-frame EOF is a protocol error"
    (Wire.Protocol_error "peer closed mid-frame")
    (fun () -> ignore (Wire.read_frame b));
  Unix.close b

let wire_bad_length () =
  let a, b = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let hdr = Bytes.create 4 in
  Bytes.set_int32_be hdr 0 (Int32.of_int (Wire.max_frame + 1));
  ignore (Unix.write a hdr 0 4);
  (match Wire.read_frame b with
  | exception Wire.Protocol_error _ -> ()
  | _ -> Alcotest.fail "oversized length must be rejected");
  (match Wire.write_frame a (String.make 1 'x') with
  | () -> ()
  | exception _ -> Alcotest.fail "small frame must be writable");
  Alcotest.check_raises "oversized write refused"
    (Wire.Protocol_error
       (Printf.sprintf "frame too large: %d bytes" (Wire.max_frame + 1)))
    (fun () ->
      (* don't actually allocate 16 MiB of payload writes: build once *)
      Wire.write_frame a (String.make (Wire.max_frame + 1) 'x'));
  Unix.close a;
  Unix.close b

(* ---- protocol codec ---- *)

let req_roundtrip r =
  Alcotest.(check bool)
    "request roundtrips" true
    (Protocol.decode_request (Protocol.encode_request r) = r)

let reply_roundtrip r =
  Alcotest.(check bool)
    "reply roundtrips" true
    (Protocol.decode_reply (Protocol.encode_reply r) = r)

let protocol_requests () =
  List.iter req_roundtrip
    [
      Protocol.Query "SELECT 1";
      Protocol.Query "multi\nline\nsql;;";
      Protocol.Set ("timeout_ms", "50");
      Protocol.Set ("dop", "default");
      Protocol.Prepare ("q1", "SELECT e.dno AS dno, COUNT(*) AS c FROM emp e\nGROUP BY e.dno");
      Protocol.Exec_prepared ("q1", []);
      Protocol.Exec_prepared
        ( "q1",
          [
            Value.Int 42;
            Value.Float 0.1;
            Value.String "O'Brien, with: colons\nand newlines";
            Value.Bool true;
            Value.Date 19000;
          ] );
      Protocol.Close;
    ]

let protocol_replies () =
  List.iter reply_roundtrip
    [
      Protocol.Hello { server = "avq"; workers = 4 };
      Protocol.Result { source = "hit"; rows = 12; ms = 3.25; body = "dno c\n1 2\n" };
      Protocol.Result { source = "tag"; rows = 0; ms = 0.; body = "INSERT 3" };
      Protocol.Err { kind = "timeout"; detail = "kind=timeout limit_ms=50" };
    ]

let protocol_values () =
  List.iter
    (fun v ->
      Alcotest.(check bool)
        "value roundtrips" true
        (Protocol.parse_value (Protocol.render_value v) = v))
    [
      Value.Int 0;
      Value.Int min_int;
      Value.Float 0.1;
      Value.Float (-1e300);
      Value.Float (1. /. 3.);
      Value.String "";
      Value.String "i:looks like a tag";
      Value.Bool false;
      Value.Date 0;
    ]

let protocol_bad_input () =
  List.iter
    (fun s ->
      match Protocol.decode_request s with
      | _ -> Alcotest.fail ("must reject request " ^ String.escaped s)
      | exception Protocol.Protocol_error _ -> ())
    [ ""; "zunknown"; "sno-separator"; "ename\n3:i:1" (* unterminated *) ];
  List.iter
    (fun s ->
      match Protocol.decode_reply s with
      | _ -> Alcotest.fail ("must reject reply " ^ String.escaped s)
      | exception Protocol.Protocol_error _ -> ())
    [ ""; "Havq"; "Rbad header\nbody"; "Zx" ]

(* ---- lifecycle state machine ---- *)

let lifecycle_phases () =
  Lifecycle.reset ();
  Alcotest.(check bool) "starts running" false (Lifecycle.draining ());
  Lifecycle.request_drain ();
  Alcotest.(check bool) "draining" true (Lifecycle.draining ());
  Alcotest.(check bool) "not yet aborting" false (Lifecycle.aborting ());
  Lifecycle.request_abort ();
  Alcotest.(check bool) "aborting" true (Lifecycle.aborting ());
  (* monotone: a drain request cannot de-escalate an abort *)
  Lifecycle.request_drain ();
  Alcotest.(check bool) "abort sticks" true (Lifecycle.aborting ());
  Alcotest.(check int) "no signal, exit 0" 0 (Lifecycle.exit_code ());
  Lifecycle.reset ();
  Alcotest.(check bool) "reset" false (Lifecycle.draining ())

let lifecycle_hooks () =
  Lifecycle.reset ();
  let order = ref [] in
  Lifecycle.at_shutdown (fun () -> order := "first" :: !order);
  Lifecycle.at_shutdown (fun () -> order := "second" :: !order);
  Lifecycle.at_shutdown (fun () -> failwith "a failing hook must not stop the rest");
  Lifecycle.run_hooks ();
  (* LIFO: last registered runs first; [order] accumulates by consing *)
  Alcotest.(check (list string)) "LIFO order" [ "first"; "second" ] !order;
  Lifecycle.run_hooks ();
  Alcotest.(check (list string)) "hooks run once" [ "first"; "second" ] !order;
  Lifecycle.reset ()

let lifecycle_gates_exec () =
  Lifecycle.reset ();
  let cat = Emp_dept.load ~params:small () in
  let ctx = Exec_ctx.create cat in
  Lifecycle.request_abort ();
  Alcotest.check_raises "executors observe a lifecycle abort"
    (Avq_error.Error Avq_error.Cancelled)
    (fun () -> Exec_ctx.check ctx);
  Lifecycle.reset ()

(* ---- server ---- *)

let with_server ?(config = { Server.default_config with Server.port = 0 })
    ?(workers = 2) ?service f =
  Lifecycle.reset ();
  let svc = match service with Some s -> s | None -> make_service () in
  Service.Pool.with_pool ~workers svc (fun pool ->
      let srv = Server.start ~config pool in
      Fun.protect
        ~finally:(fun () ->
          Server.stop srv;
          Lifecycle.reset ())
        (fun () -> f svc srv))

let connect srv = Client.connect ~port:(Server.port srv) ()

let expect_rows what = function
  | Protocol.Result { rows; _ } ->
    Alcotest.(check bool) (what ^ " returns rows") true (rows > 0)
  | Protocol.Err { kind; detail } -> Alcotest.fail (what ^ ": " ^ kind ^ ": " ^ detail)
  | Protocol.Hello _ -> Alcotest.fail (what ^ ": unexpected hello")

let expect_err what kind = function
  | Protocol.Err { kind = k; _ } -> Alcotest.(check string) what kind k
  | Protocol.Result _ -> Alcotest.fail (what ^ ": unexpected success")
  | Protocol.Hello _ -> Alcotest.fail (what ^ ": unexpected hello")

let server_hello_query () =
  with_server (fun svc srv ->
      let c = connect srv in
      Alcotest.(check string) "server name" "avq" (Client.server c);
      Alcotest.(check int) "advertised workers" 2 (Client.workers c);
      expect_rows "plain query" (Client.query c fast_sql);
      expect_rows "repeat (cache)" (Client.query c fast_sql);
      (match Client.query c "SELECT nonsense FROM nowhere" with
      | Protocol.Err _ -> ()
      | _ -> Alcotest.fail "bad SQL must fail");
      expect_rows "session survives a bad statement" (Client.query c fast_sql);
      Client.close c;
      let s = Service.stats svc in
      Alcotest.(check bool) "cache was shared and hit" true (s.Service.hits >= 1);
      Alcotest.(check int) "admitted = statements" 4 (Server.admitted srv))

let server_session_vars () =
  with_server (fun _svc srv ->
      let c = connect srv in
      (match Client.set c "timeout_ms" "1" with
      | Protocol.Result _ -> ()
      | _ -> Alcotest.fail "SET must succeed");
      expect_err "deadline trips" "timeout" (Client.query c slow_sql);
      (match Client.set c "timeout_ms" "default" with
      | Protocol.Result _ -> ()
      | _ -> Alcotest.fail "SET default must succeed");
      expect_rows "restored default" (Client.query c fast_sql);
      expect_err "unknown variable" "bad-statement" (Client.set c "nope" "1");
      expect_err "bad value" "bad-statement" (Client.set c "dop" "zero-ish");
      (match Client.set c "dop" "2" with
      | Protocol.Result _ -> ()
      | _ -> Alcotest.fail "SET dop must succeed");
      expect_rows "parallel-eligible session still answers"
        (Client.query c fast_sql);
      Client.close c)

let server_prepared () =
  with_server (fun _svc srv ->
      let c = connect srv in
      let template =
        "SELECT e.dno AS dno, AVG(e.sal) AS avg_sal FROM emp e WHERE e.age > 30 \
         AND e.sal > 1000 GROUP BY e.dno"
      in
      (match Client.prepare c "q1" template with
      | Protocol.Result _ -> ()
      | Protocol.Err { detail; _ } -> Alcotest.fail ("prepare: " ^ detail)
      | _ -> Alcotest.fail "prepare: unexpected reply");
      expect_rows "exec with template params" (Client.exec_prepared c "q1" []);
      expect_rows "exec with fresh params"
        (Client.exec_prepared c "q1" [ Value.Int 40; Value.Int 2000 ]);
      expect_err "unknown statement" "bad-statement"
        (Client.exec_prepared c "nope" []);
      (* prepared statements are per-session: a second connection can't see q1 *)
      let c2 = connect srv in
      expect_err "per-session namespace" "bad-statement"
        (Client.exec_prepared c2 "q1" []);
      Client.close c2;
      Client.close c)

let server_directives () =
  with_server (fun _svc srv ->
      let c = connect srv in
      expect_rows "warmup" (Client.query c fast_sql);
      (match Client.query c "\\metrics" with
      | Protocol.Result { source = "text"; body; _ } ->
        Alcotest.(check bool)
          "metrics body mentions the plan cache" true
          (contains body "plancache")
      | _ -> Alcotest.fail "\\metrics must render text");
      (match Client.query c "INSERT INTO dept VALUES (99, 12345, 'netdept')" with
      | Protocol.Result { body; _ } ->
        Alcotest.(check string) "insert tag" "INSERT 1" body
      | Protocol.Err { detail; _ } -> Alcotest.fail ("insert: " ^ detail)
      | _ -> Alcotest.fail "insert: unexpected reply");
      (match Client.query c ("EXPLAIN ANALYZE " ^ fast_sql) with
      | Protocol.Result { source = "text"; body; _ } ->
        Alcotest.(check bool) "analysis is non-empty" true (String.length body > 0)
      | Protocol.Err { detail; _ } -> Alcotest.fail ("explain analyze: " ^ detail)
      | _ -> Alcotest.fail "explain analyze: unexpected reply");
      Client.close c)

let server_admission_rejects () =
  (* max_queue = 0: every statement is over the admission bound, so the
     typed rejection path is exercised deterministically *)
  with_server
    ~config:{ Server.default_config with Server.port = 0; max_queue = 0 }
    (fun svc srv ->
      let c = connect srv in
      expect_err "over admission" "resource-exceeded" (Client.query c fast_sql);
      expect_err "still rejected" "resource-exceeded" (Client.query c fast_sql);
      Client.close c;
      Alcotest.(check int) "nothing admitted" 0 (Server.admitted srv);
      Alcotest.(check int) "rejections counted" 2 (Server.rejected srv);
      let s = Service.stats svc in
      Alcotest.(check int)
        "typed errors counted on the service" 2
        s.Service.errors.Service.resource_exceeded)

let server_drain_rejects () =
  with_server (fun svc srv ->
      let c = connect srv in
      expect_rows "before drain" (Client.query c fast_sql);
      Lifecycle.request_drain ();
      expect_err "draining server is unavailable" "unavailable"
        (Client.query c fast_sql);
      Client.close c;
      (* new connections are refused outright once draining *)
      (match Client.connect ~port:(Server.port srv) () with
      | c2 ->
        Client.abort c2;
        Alcotest.fail "draining server must refuse new connections"
      | exception Wire.Protocol_error _ -> ());
      let s = Service.stats svc in
      Alcotest.(check bool)
        "unavailable counted" true
        (s.Service.errors.Service.unavailable >= 1))

let server_connection_cap () =
  with_server
    ~config:
      { Server.default_config with Server.port = 0; max_connections = 1 }
    (fun _svc srv ->
      let c = connect srv in
      (* the acceptor refuses the second session with a typed error *)
      (match Client.connect ~port:(Server.port srv) () with
      | c2 ->
        Client.abort c2;
        Alcotest.fail "connection cap must refuse the second session"
      | exception Wire.Protocol_error _ -> ());
      expect_rows "first session unaffected" (Client.query c fast_sql);
      Client.close c;
      (* capacity freed: connecting works again *)
      let rec retry n =
        match Client.connect ~port:(Server.port srv) () with
        | c3 -> c3
        | exception Wire.Protocol_error _ when n > 0 ->
          Thread.delay 0.02;
          retry (n - 1)
      in
      let c3 = retry 100 in
      expect_rows "after release" (Client.query c3 fast_sql);
      Client.close c3)

let wait_for ?(timeout = 10.) what pred =
  let t0 = Unix.gettimeofday () in
  while (not (pred ())) && Unix.gettimeofday () -. t0 < timeout do
    Thread.delay 0.01
  done;
  Alcotest.(check bool) what true (pred ())

let server_disconnect_cancels () =
  with_server (fun svc srv ->
      let c = connect srv in
      (* fire a long statement and vanish without reading the reply: the
         handler must notice the dead socket and cancel the pool job *)
      Wire.write_frame (Client.fd c)
        (Protocol.encode_request (Protocol.Query slow_sql));
      Thread.delay 0.05;
      Client.abort c;
      wait_for "disconnect cancels the in-flight statement" (fun () ->
          (Service.stats svc).Service.errors.Service.cancellations >= 1
          || Server.in_flight srv = 0);
      wait_for "admission slot released" (fun () -> Server.in_flight srv = 0))

let server_reply_frame_cap () =
  (* a table of fat strings whose full scan renders to > 16 MiB: the reply
     must come back as a typed resource error on a still-usable session,
     not a torn connection *)
  let cat = Catalog.create () in
  let pad = String.make 20_000 'x' in
  ignore
    (Catalog.add_table cat ~name:"big"
       ~columns:[ ("id", Datatype.Int); ("pad", Datatype.String) ]
       ~pk:[ "id" ]
       (List.init 1000 (fun i -> [| Value.Int i; Value.String pad |])));
  let svc = Service.create cat in
  with_server ~service:svc (fun svc srv ->
      let c = connect srv in
      (match Client.query c "SELECT b.id AS id, b.pad AS pad FROM big b" with
      | Protocol.Err { kind; detail } ->
        Alcotest.(check string) "typed kind" "resource-exceeded" kind;
        Alcotest.(check bool) "detail names the frame cap" true
          (contains detail "frame")
      | _ -> Alcotest.fail "oversized reply must fail typed");
      expect_rows "session survives the oversized reply"
        (Client.query c "SELECT COUNT(*) AS n FROM big b");
      Client.close c;
      let s = Service.stats svc in
      Alcotest.(check bool) "counted in the error taxonomy" true
        (s.Service.errors.Service.resource_exceeded >= 1))

(* ---- lifecycle x durability: an interrupted write leaves a recoverable,
   consistent state (the view is either old or new, never partial) ---- *)

let drain_mid_refresh_recoverable () =
  Lifecycle.reset ();
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "avq_net_wal_%d" (Unix.getpid ()))
  in
  if Sys.file_exists dir then
    Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
  let seed () = Emp_dept.load ~params:small () in
  let cat, mviews, writer, _ = Recovery.recover ~data_dir:dir ~meta:"net" ~seed () in
  let svc = Service.create ~mviews cat in
  Service.attach_wal svc ~data_dir:dir writer;
  ignore
    (Service.exec_statement svc
       ("CREATE MATERIALIZED VIEW by_dept AS SELECT e.dno AS dno, COUNT(*) AS \
         c, SUM(e.sal) AS s FROM emp e GROUP BY e.dno"));
  ignore (Service.exec_statement svc "INSERT INTO emp VALUES (990001, 1, 5000, 31)");
  let probe svc =
    let _, rel, _ = Service.submit svc fast_sql in
    Format.asprintf "%a" Relation.pp rel
  in
  (* abort engaged before the refresh starts: the executor cancels it at its
     first poll point, leaving the WAL's Refresh record uncommitted *)
  Lifecycle.request_abort ();
  let refresh_outcome =
    match Service.exec_statement svc "REFRESH MATERIALIZED VIEW by_dept" with
    | tag -> `Completed tag
    | exception _ -> `Aborted
  in
  Lifecycle.reset ();
  let acked = probe svc in
  let cat2, mviews2, w2, _ = Recovery.recover ~data_dir:dir ~meta:"net" ~seed () in
  Wal.close w2;
  let svc2 = Service.create ~mviews:mviews2 cat2 in
  (* whatever the interrupted statement's fate, recovery agrees with the
     acknowledged state — never a half-applied refresh *)
  Alcotest.(check string) "recovered state matches acknowledged state" acked
    (probe svc2);
  (match refresh_outcome with
  | `Aborted -> ()
  | `Completed _ -> Alcotest.fail "abort must cancel the refresh");
  Alcotest.(check int) "no temp leaks" 0
    (Storage.live_temps (Catalog.storage cat2));
  Lifecycle.reset ()

(* ---- connection-churn soak ---- *)

let soak () =
  let config =
    { Server.default_config with Server.port = 0; max_connections = 32 }
  in
  Lifecycle.reset ();
  let svc = make_service () in
  let cat = Service.catalog svc in
  Service.Pool.with_pool ~workers:3 svc (fun pool ->
      let srv = Server.start ~config pool in
      let port = Server.port srv in
      let failures = Atomic.make 0 in
      let fail () = Atomic.incr failures in
      let client_life i round =
        let c = Client.connect ~port () in
        match (i + round) mod 4 with
        | 0 ->
          (* plain mixed statements *)
          (match Client.query c fast_sql with
          | Protocol.Result _ -> ()
          | _ -> fail ());
          (match Client.query c fast_sql with
          | Protocol.Result _ -> ()
          | _ -> fail ());
          Client.close c
        | 1 ->
          (* prepared round trip *)
          (match Client.prepare c "s" fast_sql with
          | Protocol.Result _ -> (
            match Client.exec_prepared c "s" [] with
            | Protocol.Result _ -> ()
            | _ -> fail ())
          | _ -> fail ());
          Client.close c
        | 2 ->
          (* hits its deadline: must come back as a typed timeout *)
          (match Client.set c "timeout_ms" "1" with
          | Protocol.Result _ -> ()
          | _ -> fail ());
          (match Client.query c slow_sql with
          | Protocol.Err { kind = "timeout"; _ } -> ()
          | _ -> fail ());
          Client.close c
        | _ ->
          (* cancelled by disconnect mid-statement *)
          Wire.write_frame (Client.fd c)
            (Protocol.encode_request (Protocol.Query slow_sql));
          Client.abort c
      in
      let rounds = 3 in
      for round = 0 to rounds - 1 do
        let threads =
          List.init 8 (fun i ->
              Thread.create
                (fun () -> try client_life i round with _ -> fail ())
                ())
        in
        List.iter Thread.join threads
      done;
      Alcotest.(check int) "no soak-client failures" 0 (Atomic.get failures);
      wait_for "all admission slots released" (fun () -> Server.in_flight srv = 0);
      Server.stop srv;
      Alcotest.(check int) "no sessions survive the drain" 0
        (Server.connections srv);
      let s = Service.stats svc in
      Alcotest.(check bool) "cache counters add up exactly" true
        (s.Service.hits + s.Service.rebinds + s.Service.misses
         + s.Service.recost_fallbacks + s.Service.rebind_conflicts
        = s.Service.calls);
      Alcotest.(check int) "zero stale hits" 0 s.Service.stale_hits;
      Alcotest.(check int) "zero temp-file leaks" 0
        (Storage.live_temps (Catalog.storage cat)));
  Lifecycle.reset ()

let tests =
  [
    Alcotest.test_case "wire: frame roundtrip + clean EOF" `Quick wire_roundtrip;
    Alcotest.test_case "wire: mid-frame EOF is typed" `Quick wire_mid_frame_eof;
    Alcotest.test_case "wire: length cap enforced" `Quick wire_bad_length;
    Alcotest.test_case "protocol: request roundtrips" `Quick protocol_requests;
    Alcotest.test_case "protocol: reply roundtrips" `Quick protocol_replies;
    Alcotest.test_case "protocol: value tags lossless" `Quick protocol_values;
    Alcotest.test_case "protocol: malformed input rejected" `Quick
      protocol_bad_input;
    Alcotest.test_case "lifecycle: phases escalate monotonically" `Quick
      lifecycle_phases;
    Alcotest.test_case "lifecycle: hooks LIFO, once, contained" `Quick
      lifecycle_hooks;
    Alcotest.test_case "lifecycle: abort reaches executor checks" `Quick
      lifecycle_gates_exec;
    Alcotest.test_case "server: hello, queries, shared cache" `Quick
      server_hello_query;
    Alcotest.test_case "server: SET session variables" `Quick server_session_vars;
    Alcotest.test_case "server: prepared statements per session" `Quick
      server_prepared;
    Alcotest.test_case "server: directives, writes, explain analyze" `Quick
      server_directives;
    Alcotest.test_case "server: admission control rejects typed" `Quick
      server_admission_rejects;
    Alcotest.test_case "server: draining rejects with unavailable" `Quick
      server_drain_rejects;
    Alcotest.test_case "server: connection cap" `Quick server_connection_cap;
    Alcotest.test_case "server: disconnect cancels in-flight work" `Quick
      server_disconnect_cancels;
    Alcotest.test_case "server: oversized reply fails typed" `Quick
      server_reply_frame_cap;
    Alcotest.test_case "lifecycle: abort mid-refresh is recoverable" `Quick
      drain_mid_refresh_recoverable;
    Alcotest.test_case "server: connection-churn soak leaks nothing" `Slow soak;
  ]
