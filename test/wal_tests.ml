(* Durability: WAL record codec, torn-tail handling, checkpoint round trip,
   commit-gated recovery, seeded backoff jitter, and a crash-torture
   harness — a forked writer child is SIGKILLed at scripted WAL offsets
   (optionally mid-frame) and recovery must reproduce, byte for byte, the
   state a never-crashed process reaches after the committed statement
   prefix. *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let small = { Emp_dept.default_params with emps = 300; depts = 6; seed = 13 }
let load () = Emp_dept.load ~params:small ()

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let d =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "avq_wal_test_%d_%d" (Unix.getpid ()) !n)
    in
    if Sys.file_exists d then
      Array.iter
        (fun f -> Sys.remove (Filename.concat d f))
        (Sys.readdir d)
    else Unix.mkdir d 0o755;
    d

let append_bytes path s =
  let oc = Out_channel.open_gen [ Open_append; Open_binary ] 0o644 path in
  Out_channel.output_string oc s;
  Out_channel.close oc

(* ---- record codec ---- *)

let all_records =
  [
    Wal.Insert
      {
        table = "emp";
        rows =
          [
            [| Value.Int 1; Value.Float 2.5; Value.String "x"; Value.Bool true |];
            [| Value.Int (-7); Value.Date 19000; Value.String "" |];
          ];
      };
    Wal.Insert { table = "empty"; rows = [] };
    Wal.Mv_delta { view = "by_dept"; table = "emp"; rows = 3 };
    Wal.Create_matview
      { name = "v"; sql = "SELECT e.dno AS d FROM emp e GROUP BY e.dno" };
    Wal.Drop_matview "v";
    Wal.Refresh_matview "v";
    Wal.Checkpoint_begin;
    Wal.Checkpoint_end { ckpt_lsn = 123456789L };
    Wal.Commit 42L;
  ]

let codec_roundtrip () =
  let dir = fresh_dir () in
  let path = Recovery.wal_path ~data_dir:dir in
  let w = Wal.open_writer path in
  let lsns = List.map (Wal.append w) all_records in
  Wal.close w;
  let r = Wal.read_all path in
  Alcotest.(check bool) "no torn tail" false r.Wal.torn;
  Alcotest.(check int) "all records read" (List.length all_records)
    (List.length r.Wal.records);
  List.iteri
    (fun i (lsn, rec_) ->
      Alcotest.(check bool)
        (Printf.sprintf "record %d (%s) roundtrips" i (Wal.record_name rec_))
        true
        (rec_ = List.nth all_records i && lsn = List.nth lsns i))
    r.Wal.records

let missing_file_reads_empty () =
  let r = Wal.read_all "/nonexistent/avq/wal.log" in
  Alcotest.(check bool) "empty" true (r.Wal.records = [] && not r.Wal.torn)

(* ---- torn tails and corruption ---- *)

let torn_tail_cut () =
  let dir = fresh_dir () in
  let path = Recovery.wal_path ~data_dir:dir in
  let w = Wal.open_writer path in
  let l1 = Wal.append w (Wal.Drop_matview "a") in
  let _l2 = Wal.append w (Wal.Drop_matview "b") in
  Wal.close w;
  let whole = Wal.read_all path in
  Alcotest.(check int) "two records" 2 (List.length whole.Wal.records);
  (* half a frame of a would-be third record: the residue of a crash *)
  let frame = Wal.encode ~lsn:99L (Wal.Drop_matview "torn") in
  append_bytes path (String.sub frame 0 (String.length frame / 2));
  let r = Wal.read_all path in
  Alcotest.(check bool) "tail is torn" true r.Wal.torn;
  Alcotest.(check int) "prefix survives" 2 (List.length r.Wal.records);
  Alcotest.(check int) "valid prefix measured" whole.Wal.valid_bytes
    r.Wal.valid_bytes;
  (* reopening truncates the torn tail and keeps counting LSNs *)
  let w2 = Wal.open_writer path in
  Alcotest.(check int) "truncated to the valid prefix" whole.Wal.valid_bytes
    (Wal.size w2);
  let l3 = Wal.append w2 (Wal.Drop_matview "c") in
  Wal.close w2;
  Alcotest.(check bool) "LSNs resume after the survivors" true
    (Int64.compare l3 l1 > 0);
  let r2 = Wal.read_all path in
  Alcotest.(check bool) "healed" false r2.Wal.torn;
  Alcotest.(check int) "three records" 3 (List.length r2.Wal.records)

let corrupt_frame_stops_read () =
  let dir = fresh_dir () in
  let path = Recovery.wal_path ~data_dir:dir in
  let w = Wal.open_writer path in
  ignore (Wal.append w (Wal.Drop_matview "a"));
  let pos_before = Wal.size w in
  ignore (Wal.append w (Wal.Drop_matview "b"));
  ignore (Wal.append w (Wal.Drop_matview "c"));
  Wal.close w;
  (* flip one payload byte of the middle record: its CRC must catch it *)
  let fd = Unix.openfile path [ Unix.O_RDWR ] 0o644 in
  ignore (Unix.lseek fd (pos_before + 9) Unix.SEEK_SET);
  ignore (Unix.write fd (Bytes.make 1 '\xff') 0 1);
  Unix.close fd;
  let r = Wal.read_all path in
  Alcotest.(check bool) "read stops at the damage" true r.Wal.torn;
  Alcotest.(check int) "clean prefix only" 1 (List.length r.Wal.records)

let crash_grammar () =
  (match Wal.parse_crash "at=3+7;torn" with
  | Ok c ->
    Alcotest.(check (list int)) "points" [ 3; 7 ] c.Wal.crash_at;
    Alcotest.(check bool) "torn" true c.Wal.crash_torn
  | Error e -> Alcotest.fail e);
  (match Wal.parse_crash "at=12" with
  | Ok c ->
    Alcotest.(check (list int)) "single point" [ 12 ] c.Wal.crash_at;
    Alcotest.(check bool) "not torn" false c.Wal.crash_torn
  | Error e -> Alcotest.fail e);
  List.iter
    (fun bad ->
      match Wal.parse_crash bad with
      | Ok _ -> Alcotest.fail ("must reject " ^ bad)
      | Error _ -> ())
    [ "at="; "at=x"; "at=0"; "bogus=1" ]

(* ---- fsync modes ---- *)

let group_commit_defers () =
  let dir = fresh_dir () in
  let path = Recovery.wal_path ~data_dir:dir in
  let w = Wal.open_writer ~fsync_mode:(Wal.Fsync_group 60_000.) path in
  let l1 = Wal.append w (Wal.Insert { table = "t"; rows = [] }) in
  Wal.commit w l1;
  let l2 = Wal.append w (Wal.Insert { table = "t"; rows = [] }) in
  Wal.commit w l2;
  let s = Wal.stats w in
  Alcotest.(check bool) "inside the window, fsyncs are deferred" true
    (s.Wal.deferred >= 1);
  Alcotest.(check int) "both commits counted" 2 s.Wal.commits;
  Wal.close w;
  let r = Wal.read_all path in
  Alcotest.(check int) "close flushed everything" 4 (List.length r.Wal.records)

(* ---- checkpoint + recovery (no crash) ---- *)

let mv_sql =
  "SELECT e.dno AS dno, COUNT(*) AS c, SUM(e.sal) AS s FROM emp e GROUP BY \
   e.dno"

let probe_sql =
  "SELECT e.dno AS d, SUM(e.sal) AS s, COUNT(*) AS c FROM emp e GROUP BY e.dno"

let render_probe svc =
  let _, rel, _ = Service.submit svc probe_sql in
  Format.asprintf "%a" Relation.pp rel

let rows_of (tbl : Catalog.table) =
  List.of_seq (Heap_file.to_seq tbl.Catalog.heap)

(* Byte-identical: same table set, same rows in the same stored order, and
   the restored heaps recompute the exact page checksums of the originals. *)
let check_catalogs_equal msg refc recc =
  let names c =
    List.map (fun (t : Catalog.table) -> t.Catalog.tname) (Catalog.tables c)
  in
  Alcotest.(check (list string)) (msg ^ ": table set") (names refc) (names recc);
  List.iter
    (fun (rt : Catalog.table) ->
      match Catalog.find_table recc rt.Catalog.tname with
      | None -> Alcotest.fail (msg ^ ": missing table " ^ rt.Catalog.tname)
      | Some ct ->
        Alcotest.(check bool)
          (msg ^ ": rows of " ^ rt.Catalog.tname)
          true
          (rows_of rt = rows_of ct);
        Alcotest.(check bool)
          (msg ^ ": page checksums of " ^ rt.Catalog.tname)
          true
          (Heap_file.page_checksums rt.Catalog.heap
          = Heap_file.page_checksums ct.Catalog.heap))
    (Catalog.tables refc)

let attach dir (cat, mviews, writer, rstats) =
  let svc = Service.create ~mviews cat in
  Service.attach_wal svc ~data_dir:dir ~recovery:rstats writer;
  svc

let checkpoint_roundtrip () =
  let dir = fresh_dir () in
  let r1 = Recovery.recover ~data_dir:dir ~meta:"t" ~seed:load () in
  let _, _, _, st1 = r1 in
  Alcotest.(check bool) "first open seeds" false st1.Recovery.checkpoint_loaded;
  let svc = attach dir r1 in
  ignore
    (Service.exec_statement svc ("CREATE MATERIALIZED VIEW by_dept AS " ^ mv_sql));
  ignore (Service.exec_statement svc "INSERT INTO emp VALUES (990001, 1, 5000, 31)");
  let tag = Service.checkpoint svc in
  Alcotest.(check bool) "checkpoint tag" true (contains tag "CHECKPOINT");
  ignore (Service.exec_statement svc "INSERT INTO emp VALUES (990002, 2, 6000, 42)");
  let live = render_probe svc in
  (* a second recovery of the same directory: checkpoint + WAL tail *)
  let ((cat2, _, _, st2) as r2) = Recovery.recover ~data_dir:dir ~meta:"t" ~seed:load () in
  Alcotest.(check bool) "checkpoint loaded" true st2.Recovery.checkpoint_loaded;
  Alcotest.(check bool) "tables restored" true (st2.Recovery.tables_restored >= 2);
  Alcotest.(check int) "one matview restored" 1 st2.Recovery.matviews_restored;
  Alcotest.(check int) "post-checkpoint insert replayed" 1 st2.Recovery.replayed;
  check_catalogs_equal "checkpoint+tail" (Service.catalog svc) cat2;
  let svc2 = attach dir r2 in
  Alcotest.(check string) "probe answers agree" live (render_probe svc2);
  Alcotest.(check int) "no temp leaks" 0
    (Storage.live_temps (Catalog.storage cat2))

let meta_mismatch_refused () =
  let dir = fresh_dir () in
  let _, _, w, _ = Recovery.recover ~data_dir:dir ~meta:"db=a;scale=1" ~seed:load () in
  Wal.close w;
  match Recovery.recover ~data_dir:dir ~meta:"db=b;scale=9" ~seed:load () with
  | _ -> Alcotest.fail "identity mismatch must refuse"
  | exception Recovery.Error msg ->
    Alcotest.(check bool) "names both identities" true
      (contains msg "db=a;scale=1" && contains msg "db=b;scale=9")

let size_triggered_checkpoint () =
  let dir = fresh_dir () in
  let ((cat, mviews, writer, rstats)) = Recovery.recover ~data_dir:dir ~meta:"t" ~seed:load () in
  let svc = Service.create ~mviews cat in
  (* tiny limit: the first committed statement crosses it *)
  Service.attach_wal svc ~data_dir:dir ~checkpoint_bytes:64 ~recovery:rstats writer;
  ignore (Service.exec_statement svc "INSERT INTO emp VALUES (990001, 1, 5000, 31)");
  Alcotest.(check bool) "checkpoint written" true
    (Sys.file_exists (Filename.concat dir Checkpoint.file_name));
  Alcotest.(check bool) "WAL truncated back to its header" true
    (match Service.wal svc with
    | Some w -> Wal.size w < 64
    | None -> false);
  (* and the truncated dir still recovers to the same state *)
  let live = render_probe svc in
  let ((cat2, _, _, _) as r2) = Recovery.recover ~data_dir:dir ~meta:"t" ~seed:load () in
  check_catalogs_equal "after size-triggered checkpoint" (Service.catalog svc) cat2;
  let svc2 = attach dir r2 in
  Alcotest.(check string) "probe answers agree" live (render_probe svc2)

let uncommitted_tail_dropped () =
  let dir = fresh_dir () in
  let cat, _mviews, w, _ = Recovery.recover ~data_dir:dir ~meta:"t" ~seed:load () in
  let before = render_probe (Service.create cat) in
  (* a data record with no commit: the statement was never acknowledged *)
  ignore
    (Wal.append w
       (Wal.Insert
          { table = "emp"; rows = [ [| Value.Int 990009; Value.Int 1; Value.Int 1; Value.Int 1 |] ] }));
  Wal.flush w;
  Wal.close w;
  let cat2, _, _, st = Recovery.recover ~data_dir:dir ~meta:"t" ~seed:load () in
  Alcotest.(check int) "nothing replayed" 0 st.Recovery.replayed;
  Alcotest.(check int) "uncommitted record skipped" 1 st.Recovery.skipped;
  Alcotest.(check string) "state is the pre-statement one" before
    (render_probe (Service.create cat2))

(* ---- seeded backoff jitter ---- *)

let jitter_backoff () =
  (* jitter off: pure binary exponential, capped *)
  Alcotest.(check int) "attempt 0" 1 (Buffer_pool.backoff_spins ~seed:1 ~salt:2 0);
  Alcotest.(check int) "attempt 4" 16 (Buffer_pool.backoff_spins ~seed:1 ~salt:2 4);
  Alcotest.(check int) "cap at 2^10" 1024
    (Buffer_pool.backoff_spins ~seed:1 ~salt:2 30);
  (* jittered: deterministic in (seed, salt, attempt), inside the band *)
  let a = Buffer_pool.backoff_spins ~jitter:0.5 ~seed:7 ~salt:11 6 in
  let b = Buffer_pool.backoff_spins ~jitter:0.5 ~seed:7 ~salt:11 6 in
  Alcotest.(check int) "reproducible" a b;
  let base = 64 in
  Alcotest.(check bool) "within the +/-50% band" true
    (a >= base / 2 && a <= base * 3 / 2);
  (* different salts decorrelate retry storms *)
  let spread =
    List.init 32 (fun salt ->
        Buffer_pool.backoff_spins ~jitter:0.5 ~seed:7 ~salt 6)
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "salts spread the band" true (List.length spread > 8)

let jitter_fault_plan () =
  (match Fault.parse "seed=3;retries=4;jitter=0.25;read:p=0.01" with
  | Ok plan ->
    Alcotest.(check bool) "jitter parsed" true (Fault.jitter plan = 0.25);
    Alcotest.(check bool) "round trips" true
      (contains (Fault.to_string plan) "jitter=0.25")
  | Error e -> Alcotest.fail e);
  (match Fault.parse "jitter=1.5;read:p=0.01" with
  | Ok _ -> Alcotest.fail "jitter above 1 must be rejected"
  | Error _ -> ());
  match Fault.parse "seed=3;read:p=0.01" with
  | Ok plan -> Alcotest.(check bool) "default off" true (Fault.jitter plan = 0.)
  | Error e -> Alcotest.fail e

(* ---- crash torture ----

   A forked child recovers an empty data dir (seeding the workload), arms a
   scripted crash plan on its WAL writer, and runs a fixed statement
   sequence; the plan SIGKILLs it mid-append at a chosen frame (optionally
   writing only half the frame first).  The parent then recovers the
   directory and compares — byte for byte — against a reference process
   that ran exactly the committed statement prefix and never crashed.

   Frame schedule for [torture_stmts] (one maintained view absorbs each
   insert): CREATE = [Create_matview, Commit]; INSERT = [Insert, Mv_delta,
   Commit]; REFRESH = [Refresh_matview, Commit].
     f1  Create_matview   f2  Commit        (stmt 1)
     f3  Insert   f4 Mv_delta   f5  Commit  (stmt 2)
     f6  Insert   f7 Mv_delta   f8  Commit  (stmt 3)
     f9  Refresh_matview  f10 Commit        (stmt 4)
     f11 Insert  f12 Mv_delta   f13 Commit  (stmt 5) *)

let torture_stmts =
  [
    "CREATE MATERIALIZED VIEW by_dept AS " ^ mv_sql;
    "INSERT INTO emp VALUES (990001, 1, 5000, 31)";
    "INSERT INTO emp VALUES (990002, 2, 6000, 42)";
    "REFRESH MATERIALIZED VIEW by_dept";
    "INSERT INTO emp VALUES (990003, 3, 7000, 53)";
  ]

let committed_prefix ~durable_frames =
  (* commits land on frames 2, 5, 8, 10, 13 *)
  List.length (List.filter (fun f -> f <= durable_frames) [ 2; 5; 8; 10; 13 ])

(* The writer child is a re-exec of this very test binary: [Unix.fork]
   is unavailable once earlier suites have spawned domains, but
   fork+exec ([create_process]) is fine.  The env var selects child mode
   during module initialization, long before alcotest takes over. *)
let torture_env = "AVQ_WAL_TORTURE"

let torture_child dir spec =
  try
    let crash =
      match Wal.parse_crash spec with Ok c -> c | Error _ -> Unix._exit 10
    in
    let cat, mviews, writer, _ =
      Recovery.recover ~data_dir:dir ~meta:"torture" ~seed:load ()
    in
    let svc = Service.create ~mviews cat in
    Service.attach_wal svc ~data_dir:dir writer;
    Wal.set_crash writer (Some crash);
    List.iter (fun s -> ignore (Service.exec_statement svc s)) torture_stmts;
    Unix._exit 8 (* crash plan failed to fire *)
  with _ -> Unix._exit 9

let () =
  match Sys.getenv_opt torture_env with
  | None -> ()
  | Some v -> (
    match String.index_opt v '|' with
    | Some i ->
      torture_child (String.sub v 0 i)
        (String.sub v (i + 1) (String.length v - i - 1))
    | None -> Unix._exit 10)

let run_torture ~crash_spec ~durable_frames =
  let dir = fresh_dir () in
  let env =
    Array.append (Unix.environment ())
      [| Printf.sprintf "%s=%s|%s" torture_env dir crash_spec |]
  in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin devnull devnull
  in
  Unix.close devnull;
  match Unix.waitpid [] pid with
    | _, Unix.WSIGNALED s when s = Sys.sigkill ->
      let ((cat2, _, _, st) as r2) =
        Recovery.recover ~data_dir:dir ~meta:"torture" ~seed:load ()
      in
      let svc2 = attach dir r2 in
      (* the reference: a process that ran the committed prefix, no crash *)
      let refsvc = Service.create (load ()) in
      let prefix = committed_prefix ~durable_frames in
      List.iteri
        (fun i s ->
          if i < prefix then ignore (Service.exec_statement refsvc s))
        torture_stmts;
      check_catalogs_equal
        (Printf.sprintf "crash %s" crash_spec)
        (Service.catalog refsvc) cat2;
      Alcotest.(check string)
        (Printf.sprintf "crash %s: probe answer" crash_spec)
        (render_probe refsvc) (render_probe svc2);
      Alcotest.(check int) "no temp leaks after recovery" 0
        (Storage.live_temps (Catalog.storage cat2));
      st
    | _, Unix.WEXITED 8 -> Alcotest.fail "crash plan never fired"
    | _, Unix.WEXITED n ->
      Alcotest.fail (Printf.sprintf "child failed before crashing (exit %d)" n)
    | _ -> Alcotest.fail "child ended unexpectedly"

let torture_mid_insert () =
  (* dies appending the Mv_delta of statement 2: the insert mutated memory
     but never committed — recovery must show only statement 1 *)
  let st = run_torture ~crash_spec:"at=4" ~durable_frames:4 in
  Alcotest.(check bool) "uncommitted insert skipped" true
    (st.Recovery.skipped >= 1)

let torture_torn_commit () =
  (* dies with half the commit of statement 2 on disk: a torn commit must
     not seal anything *)
  let st = run_torture ~crash_spec:"at=5;torn" ~durable_frames:4 in
  Alcotest.(check bool) "tail reported torn" true st.Recovery.torn

let torture_mid_refresh () =
  (* dies with half the REFRESH commit on disk: the view must come back in
     its pre-refresh state, consistently *)
  let st = run_torture ~crash_spec:"at=10;torn" ~durable_frames:9 in
  Alcotest.(check bool) "tail reported torn" true st.Recovery.torn

let torture_after_final_commit () =
  (* dies immediately after the last commit frame reaches disk: everything
     acknowledged must survive *)
  let st = run_torture ~crash_spec:"at=13" ~durable_frames:13 in
  Alcotest.(check bool) "clean tail" false st.Recovery.torn;
  Alcotest.(check int) "all five statements replayed" 5 st.Recovery.replayed

let tests =
  [
    Alcotest.test_case "codec: every record roundtrips" `Quick codec_roundtrip;
    Alcotest.test_case "codec: missing file reads empty" `Quick
      missing_file_reads_empty;
    Alcotest.test_case "torn tail cut, LSNs resume" `Quick torn_tail_cut;
    Alcotest.test_case "CRC catches a corrupt frame" `Quick
      corrupt_frame_stops_read;
    Alcotest.test_case "crash-plan grammar" `Quick crash_grammar;
    Alcotest.test_case "group commit defers fsyncs" `Quick group_commit_defers;
    Alcotest.test_case "checkpoint + WAL tail roundtrip" `Quick
      checkpoint_roundtrip;
    Alcotest.test_case "workload identity pinned" `Quick meta_mismatch_refused;
    Alcotest.test_case "size-triggered checkpoint truncates" `Quick
      size_triggered_checkpoint;
    Alcotest.test_case "uncommitted tail dropped" `Quick uncommitted_tail_dropped;
    Alcotest.test_case "backoff jitter: seeded, bounded" `Quick jitter_backoff;
    Alcotest.test_case "fault plan: jitter knob" `Quick jitter_fault_plan;
    Alcotest.test_case "torture: SIGKILL mid-insert maintenance" `Quick
      torture_mid_insert;
    Alcotest.test_case "torture: torn commit seals nothing" `Quick
      torture_torn_commit;
    Alcotest.test_case "torture: SIGKILL mid-refresh" `Quick torture_mid_refresh;
    Alcotest.test_case "torture: everything acknowledged survives" `Quick
      torture_after_final_commit;
  ]
