(* Iterators, external sort internals and execution-context hygiene. *)

let int_schema = Schema.of_columns [ Schema.column ~qual:"t" "x" Datatype.Int ]

let mk_tuples l = List.map (fun i -> Tuple.make [ Value.Int i ]) l

let iter_helpers () =
  let it = Iter.of_list int_schema (mk_tuples [ 1; 2; 3; 4 ]) in
  let doubled =
    Iter.map int_schema (fun t ->
        Tuple.make [ Value.mul (Tuple.get t 0) (Value.Int 2) ]) it
  in
  let even =
    Iter.filter
      (fun t -> match Tuple.get t 0 with Value.Int v -> v mod 4 = 0 | _ -> false)
      doubled
  in
  Alcotest.(check int) "map+filter" 2 (List.length (Iter.to_list even));
  let fanout =
    Iter.concat_map_tuples int_schema
      (fun t -> [ t; t ])
      (Iter.of_list int_schema (mk_tuples [ 7; 8 ]))
  in
  Alcotest.(check int) "concat_map fanout" 4 (List.length (Iter.to_list fanout));
  Alcotest.(check int) "empty" 0 (List.length (Iter.to_list (Iter.empty int_schema)))

let multi_pass_merge () =
  (* work_mem = 3 => fan-in 2; 40 pages of data => several merge passes. *)
  let cat = Catalog.create ~frames:512 () in
  ignore
    (Catalog.add_table cat ~name:"t"
       ~columns:[ ("x", Datatype.Int) ]
       ~pk:[ "x" ]
       (mk_tuples (List.init 20_000 (fun i -> (i * 7919) mod 65536))));
  let ctx = Exec_ctx.create ~work_mem:3 cat in
  let scan = Physical.Seq_scan { alias = "a"; table = "t"; filter = [] } in
  let sorted =
    Executor.run ctx
      (Physical.Sort { input = scan; cols = [ Schema.column ~qual:"a" "x" Datatype.Int ] ; desc = [] })
  in
  Alcotest.(check int) "cardinality preserved" 20_000 (Relation.cardinality sorted);
  let rec is_sorted = function
    | a :: (b :: _ as rest) ->
      Value.compare (Tuple.get a 0) (Tuple.get b 0) <= 0 && is_sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "fully sorted through multiple passes" true
    (is_sorted (Relation.tuples sorted))

let temp_cleanup () =
  let cat = Catalog.create ~frames:64 () in
  ignore
    (Catalog.add_table cat ~name:"t"
       ~columns:[ ("x", Datatype.Int) ]
       ~pk:[ "x" ] (mk_tuples (List.init 5000 (fun i -> i))));
  let ctx = Exec_ctx.create ~work_mem:3 cat in
  let scan = Physical.Seq_scan { alias = "a"; table = "t"; filter = [] } in
  (* Run a spilling sort, then ensure cleanup drops every temp frame. *)
  ignore
    (Executor.run ctx
       (Physical.Sort { input = scan; cols = [ Schema.column ~qual:"a" "x" Datatype.Int ] ; desc = [] }));
  Exec_ctx.cleanup ctx;
  (* A second identical run must behave identically: no temp leakage. *)
  let r2 =
    Executor.run ctx
      (Physical.Sort { input = scan; cols = [ Schema.column ~qual:"a" "x" Datatype.Int ] ; desc = [] })
  in
  Alcotest.(check int) "second run identical" 5000 (Relation.cardinality r2)

let sort_comparator_fallback () =
  (* by_columns resolves re-qualified columns via name lookup. *)
  let schema = Schema.of_columns [ Schema.column ~qual:"other" "x" Datatype.Int ] in
  let t = Tuple.make [ Value.Int 0 ] in
  match Xsort.by_columns schema [ Schema.column ~qual:"ghost" "y" Datatype.Int ] t t with
  | exception Expr.Unresolved_column _ -> ()
  | _ -> Alcotest.fail "expected Unresolved_column for unknown sort key"

let tests =
  [
    Alcotest.test_case "iterator combinators" `Quick iter_helpers;
    Alcotest.test_case "multi-pass external merge sort" `Quick multi_pass_merge;
    Alcotest.test_case "temp files cleaned up between runs" `Quick temp_cleanup;
    Alcotest.test_case "sort key resolution failure" `Quick sort_comparator_fallback;
  ]
