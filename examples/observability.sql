-- Observability demo for `avq session` (CI smoke test):
-- EXPLAIN ANALYZE renders the estimated-vs-actual tree with per-node
-- q-errors, and \metrics dumps the service registry mid-replay.
--   dune exec bin/avq.exe -- session \
--     --metrics-out metrics.json --trace-out trace.jsonl --slow-ms 500 \
--     examples/observability.sql

SELECT e.dno AS dno, AVG(e.sal) AS avg_sal FROM emp e
WHERE e.age > 30 AND e.sal > 1000 GROUP BY e.dno;;

EXPLAIN ANALYZE SELECT e.dno AS dno, SUM(e.sal) AS total FROM emp e
WHERE e.age <= 40 GROUP BY e.dno;;

-- same template, fresh constants: served from the plan cache (rebind)
SELECT e.dno AS dno, AVG(e.sal) AS avg_sal FROM emp e
WHERE e.age > 45 AND e.sal > 2000 GROUP BY e.dno;;

EXPLAIN ANALYZE SELECT e.eno AS eno, e.sal AS sal FROM emp e
WHERE e.sal <= 30000;;

\metrics;;

\metrics prom;;
