-- Materialized aggregate views for `avq session` (CI smoke test and demo):
-- a stored extent answers covered GROUP BY queries, appends are folded in
-- incrementally, REFRESH recomputes, and \dm shows freshness.
--   dune exec bin/avq.exe -- session examples/matviews.sql

-- The base query, answered from the emp table.
SELECT e.dno AS dno, COUNT(*) AS heads, SUM(e.sal) AS total, AVG(e.age) AS avg_age
FROM emp e GROUP BY e.dno;;

-- Materialize it: grouping keys + count + SUM/AVG partials per group.
CREATE MATERIALIZED VIEW by_dept AS
SELECT e.dno AS dno, COUNT(*) AS heads, SUM(e.sal) AS total, AVG(e.age) AS avg_age
FROM emp e GROUP BY e.dno;;

\dm;;

-- The same shape is now answered from the view: the scan in the plan reads
-- mv:by_dept, not the emp table (the [mv:by_dept] tag on the result line
-- and the EXPLAIN ANALYZE tree both show it).
SELECT e.dno AS dno, COUNT(*) AS heads, SUM(e.sal) AS total, AVG(e.age) AS avg_age
FROM emp e GROUP BY e.dno;;

EXPLAIN ANALYZE SELECT e.dno AS dno, SUM(e.sal) AS total FROM emp e GROUP BY e.dno;;

-- A coarser grouping (none at all) and a residual predicate on the view's
-- keys also re-aggregate the extent.
SELECT COUNT(*) AS heads, MAX(e.sal) AS top FROM emp e;;

-- Wait: MAX(sal) has no stored partial, so that one fell back to the base
-- plan; SUM over a key-restricted slice is covered.
SELECT e.dno AS dno, SUM(e.sal) AS total FROM emp e WHERE e.dno > 40 GROUP BY e.dno;;

-- Appends invalidate cached plans and are absorbed by the view
-- incrementally (it stays fresh — see \dm).
INSERT INTO emp VALUES (900001, 0, 8500, 41), (900002, 1, 4200, 23);;

\dm;;

SELECT e.dno AS dno, COUNT(*) AS heads, SUM(e.sal) AS total, AVG(e.age) AS avg_age
FROM emp e GROUP BY e.dno;;

-- REFRESH recomputes the extent from scratch (a no-op here: still fresh).
REFRESH MATERIALIZED VIEW by_dept;;

\dm;;

DROP MATERIALIZED VIEW by_dept;;

\dm;;

-- Rewrite attempt/hit counters and maintenance deltas land in the registry.
\metrics;;
