-- Session trace for `avq session` (CI smoke test and demo):
-- repeated templates with fresh constants, so the plan cache serves
-- re-bound plans after the first optimization of each shape.
--   dune exec bin/avq.exe -- session --workers 4 examples/session.sql

SELECT e.dno AS dno, AVG(e.sal) AS avg_sal FROM emp e
WHERE e.age > 30 AND e.sal > 1000 GROUP BY e.dno;;

SELECT e.dno AS dno, AVG(e.sal) AS avg_sal FROM emp e
WHERE e.age > 40 AND e.sal > 2000 GROUP BY e.dno;;

SELECT e.dno AS dno, AVG(e.sal) AS avg_sal FROM emp e
WHERE e.age > 50 AND e.sal > 1500 GROUP BY e.dno;;

SELECT e.dno AS dno, COUNT(*) AS heads FROM emp e
WHERE e.sal > 3000 GROUP BY e.dno;;

SELECT e.dno AS dno, COUNT(*) AS heads FROM emp e
WHERE e.sal > 3500 GROUP BY e.dno;;

SELECT e.dno AS dno, AVG(e.sal) AS avg_sal FROM emp e
WHERE e.age > 35 AND e.sal > 1200 GROUP BY e.dno;;

SELECT e.dno AS dno, COUNT(*) AS heads FROM emp e
WHERE e.sal > 2800 GROUP BY e.dno;;

SELECT e.dno AS dno, AVG(e.sal) AS avg_sal FROM emp e
WHERE e.age > 25 AND e.sal > 900 GROUP BY e.dno;;
