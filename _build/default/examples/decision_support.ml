(* Decision-support workload: TPC-D-like queries with aggregate views,
   optimized under all three algorithms; prints estimated and measured IO
   side by side.

     dune exec examples/decision_support.exe
*)

let algos =
  [
    ("traditional", Optimizer.Traditional);
    ("greedy-conservative", Optimizer.Greedy_conservative);
    ("paper (pull-up + push-down)", Optimizer.Paper);
  ]

let run_query cat name query =
  Format.printf "== %s ==@." name;
  List.iter
    (fun (aname, algorithm) ->
      let options = { Optimizer.default_options with algorithm } in
      let r = Optimizer.optimize ~options cat query in
      let ctx = Exec_ctx.create cat in
      let rel, io = Executor.run_measured ctx r.Optimizer.plan in
      Format.printf
        "  %-28s est-cost %8.1f   measured %5d reads %4d writes   %d rows@."
        aname r.Optimizer.est.Cost_model.cost io.Buffer_pool.reads
        io.Buffer_pool.writes (Relation.cardinality rel))
    algos;
  Format.printf "@."

let () =
  let params =
    { Tpcd.default_params with customers = 800; orders_per_customer = 8;
      lines_per_order = 5 }
  in
  let cat = Tpcd.load ~params () in
  run_query cat
    "big spenders: customers with balance below their average order value"
    (Tpcd.q_big_spenders ());
  run_query cat
    "Q17 shape: revenue of small-quantity lineitems for one brand"
    (Tpcd.q_small_quantity_parts ());
  run_query cat "two aggregate views joined (Figure 5 shape)" (Tpcd.q_two_views ());
  (* Show the winning plan of the most interesting query. *)
  let r = Optimizer.optimize cat (Tpcd.q_small_quantity_parts ()) in
  Format.printf "Paper-algorithm plan for the Q17 shape:@.%a@." Physical.pp
    r.Optimizer.plan
