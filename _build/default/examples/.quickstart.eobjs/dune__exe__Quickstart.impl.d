examples/quickstart.ml: Binder Block Buffer_pool Cost_model Emp_dept Exec_ctx Executor Format Optimizer Physical Relation
