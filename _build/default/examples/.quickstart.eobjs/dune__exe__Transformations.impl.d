examples/transformations.ml: Aggregate Coalesce Datatype Emp_dept Expr Format Logical Pullup Pushdown Relation Schema
