examples/quickstart.mli:
