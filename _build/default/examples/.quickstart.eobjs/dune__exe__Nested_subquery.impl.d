examples/nested_subquery.ml: Binder Block Buffer_pool Cost_model Emp_dept Exec_ctx Executor Format List Optimizer Physical Relation
