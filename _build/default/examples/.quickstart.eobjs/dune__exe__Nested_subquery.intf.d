examples/nested_subquery.mli:
