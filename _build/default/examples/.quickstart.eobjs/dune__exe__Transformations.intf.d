examples/transformations.mli:
