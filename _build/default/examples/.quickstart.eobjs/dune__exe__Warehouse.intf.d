examples/warehouse.mli:
