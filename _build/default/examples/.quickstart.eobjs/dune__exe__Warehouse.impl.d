examples/warehouse.ml: Block Buffer_pool Catalog Cost_model Exec_ctx Executor Explain Format List Optimizer Relation Star Stats
