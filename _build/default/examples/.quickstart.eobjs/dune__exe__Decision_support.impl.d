examples/decision_support.ml: Buffer_pool Cost_model Exec_ctx Executor Format List Optimizer Physical Relation Tpcd
