examples/decision_support.mli:
