(* Data-warehouse walkthrough on a star schema: dimension-join aggregation
   (invariant grouping territory) and a fact-vs-its-own-average query
   (pull-up territory), with annotated EXPLAIN output.

     dune exec examples/warehouse.exe
*)

let () =
  let params = { Star.default_params with days = 180; rows_per_day = 300 } in
  let cat = Star.load ~params () in
  List.iter
    (fun (tbl : Catalog.table) ->
      Format.printf "%-8s %a@." tbl.Catalog.tname Stats.pp_table tbl.Catalog.tstats)
    (Catalog.tables cat);
  Format.printf "@.";

  (* 1. Revenue by month for one category: group-by over dimension joins. *)
  let q1 = Star.q_category_revenue ~category:3 () in
  Format.printf "== monthly revenue for category 3 ==@.%a@.@." Block.pp q1;
  let r1 = Optimizer.optimize cat q1 in
  Format.printf "%a@." (Explain.pp cat ~work_mem:32) r1.Optimizer.plan;
  let ctx = Exec_ctx.create cat in
  let rel1, io1 = Executor.run_measured ctx r1.Optimizer.plan in
  Format.printf "%a@.(%a)@.@." Relation.pp rel1 Buffer_pool.pp_stats io1;

  (* 2. Above-average sales rows in one region: the fact table joined with
     an aggregate view over itself — compare the three algorithms. *)
  let q2 = Star.q_above_average_products () in
  Format.printf "== sales above the product's average quantity (region 2) ==@.";
  List.iter
    (fun (name, algorithm) ->
      let options = { Optimizer.default_options with algorithm } in
      let r = Optimizer.optimize ~options cat q2 in
      let ctx = Exec_ctx.create cat in
      let rel, io = Executor.run_measured ctx r.Optimizer.plan in
      Format.printf "  %-12s est %8.1f   measured %5d reads   %d rows@." name
        r.Optimizer.est.Cost_model.cost io.Buffer_pool.reads
        (Relation.cardinality rel))
    [
      ("traditional", Optimizer.Traditional);
      ("greedy", Optimizer.Greedy_conservative);
      ("paper", Optimizer.Paper);
    ]
