(* Quickstart: load a database, run a SQL query with an aggregate view
   through the optimizer, inspect the plan and the measured IO.

     dune exec examples/quickstart.exe
*)

let () =
  (* 1. Load the paper's running-example schema: emp(eno, dno, sal, age),
     dept(dno, budget, dname), with indexes and statistics. *)
  let cat = Emp_dept.load () in

  (* 2. Example 1 of the paper, written in SQL: employees under 22 earning
     more than their department's average salary. *)
  let sql =
    "CREATE VIEW a1 (dno, asal) AS \
       SELECT e2.dno, AVG(e2.sal) FROM emp e2 GROUP BY e2.dno; \
     SELECT e1.eno AS eno, e1.sal AS sal \
     FROM emp e1, a1 b \
     WHERE e1.dno = b.dno AND e1.age < 22 AND e1.sal > b.asal"
  in
  let query = Binder.bind_sql cat sql in
  Format.printf "Canonical multi-block form:@.%a@.@." Block.pp query;

  (* 3. Optimize with the paper's algorithm (pull-up + push-down + DP). *)
  let result = Optimizer.optimize cat query in
  Format.printf "Chosen plan (estimated %a):@.%a@.@." Cost_model.pp_est
    result.Optimizer.est Physical.pp result.Optimizer.plan;

  (* 4. Execute and measure real page IO. *)
  let ctx = Exec_ctx.create cat in
  let rel, io = Executor.run_measured ctx result.Optimizer.plan in
  Format.printf "Measured IO: %a@.@.%a@." Buffer_pool.pp_stats io Relation.pp rel
