(* The three transformations as standalone operator-tree rewrites, shown on
   the paper's own examples (Figures 1 and 2), with result equality checked
   by the reference interpreter.

     dune exec examples/transformations.exe
*)

let show cat title before after =
  Format.printf "== %s ==@.Before:@.%a@.After:@.%a@." title Logical.pp before
    Logical.pp after;
  let a = Logical.eval cat before and b = Logical.eval cat after in
  Format.printf "Results equal: %b (%d rows)@.@." (Relation.multiset_equal a b)
    (Relation.cardinality a)

let () =
  let params = { Emp_dept.default_params with emps = 2000; depts = 40 } in
  let cat = Emp_dept.load ~params () in

  (* Figure 1: pull-up.  P1 = Join(Group(emp e2), emp e1). *)
  let p1 =
    let group =
      Logical.Group
        {
          input = Logical.scan cat ~alias:"e2" "emp";
          agg_qual = "b";
          keys = [ Schema.column ~qual:"e2" "dno" Datatype.Int ];
          aggs =
            [
              Aggregate.make Aggregate.Avg
                ~arg:(Expr.Col (Schema.column ~qual:"e2" "sal" Datatype.Int))
                "asal";
            ];
          having = [];
        }
    in
    let e1 =
      Logical.Filter
        {
          input = Logical.scan cat ~alias:"e1" "emp";
          pred =
            Expr.Cmp
              (Expr.Lt, Expr.Col (Schema.column ~qual:"e1" "age" Datatype.Int), Expr.int 22);
        }
    in
    Logical.Join
      {
        left = group;
        right = e1;
        cond =
          [
            Expr.Cmp
              ( Expr.Eq,
                Expr.Col (Schema.column ~qual:"e2" "dno" Datatype.Int),
                Expr.Col (Schema.column ~qual:"e1" "dno" Datatype.Int) );
            Expr.Cmp
              ( Expr.Lt,
                Expr.Col (Schema.column ~qual:"b" "asal" Datatype.Float),
                Expr.Col (Schema.column ~qual:"e1" "sal" Datatype.Int) );
          ];
      }
  in
  (match Pullup.rewrite cat p1 with
   | Some p2 -> show cat "Figure 1: pull-up (defer the group-by past the join)" p1 p2
   | None -> Format.printf "pull-up did not apply!@.");

  (* Figure 2a: invariant grouping (Example 2).  Group(Join(emp, dept)). *)
  let c =
    Logical.Group
      {
        input =
          Logical.Join
            {
              left = Logical.scan cat ~alias:"e" "emp";
              right =
                Logical.Filter
                  {
                    input = Logical.scan cat ~alias:"d" "dept";
                    pred =
                      Expr.Cmp
                        ( Expr.Lt,
                          Expr.Col (Schema.column ~qual:"d" "budget" Datatype.Int),
                          Expr.int 1_000_000 );
                  };
              cond =
                [
                  Expr.Cmp
                    ( Expr.Eq,
                      Expr.Col (Schema.column ~qual:"e" "dno" Datatype.Int),
                      Expr.Col (Schema.column ~qual:"d" "dno" Datatype.Int) );
                ];
            };
        agg_qual = "g";
        keys = [ Schema.column ~qual:"e" "dno" Datatype.Int ];
        aggs =
          [
            Aggregate.make Aggregate.Avg
              ~arg:(Expr.Col (Schema.column ~qual:"e" "sal" Datatype.Int))
              "asal";
          ];
        having = [];
      }
  in
  (match Pushdown.rewrite cat c with
   | Some d -> show cat "Figure 2a: invariant grouping push-down (Example 2)" c d
   | None -> Format.printf "invariant grouping did not apply!@.");

  (* Figure 2b: simple coalescing on the same query. *)
  (match Coalesce.rewrite c with
   | Some d -> show cat "Figure 2b: simple coalescing grouping" c d
   | None -> Format.printf "simple coalescing did not apply!@.")
