(* Nested-subquery flattening (Kim's transformation): a correlated scalar
   aggregate subquery is rewritten into a join with a synthesized aggregate
   view, which the optimizer can then reorder across blocks with pull-up.

     dune exec examples/nested_subquery.exe
*)

let () =
  let params =
    { Emp_dept.default_params with emps = 30_000; depts = 1500; age_max = 1000 }
  in
  let cat = Emp_dept.load ~params () in
  let sql =
    "SELECT e1.eno AS eno, e1.sal AS sal \
     FROM emp e1 \
     WHERE e1.age < 20 \
       AND e1.sal > (SELECT AVG(e2.sal) FROM emp e2 WHERE e2.dno = e1.dno)"
  in
  Format.printf "Correlated nested query:@.  %s@.@." sql;
  let query = Binder.bind_sql cat sql in
  Format.printf "After Kim-style flattening (a join with an aggregate view):@.%a@.@."
    Block.pp query;
  List.iter
    (fun (name, algorithm) ->
      let options = { Optimizer.default_options with algorithm } in
      let r = Optimizer.optimize ~options cat query in
      let ctx = Exec_ctx.create cat in
      let rel, io = Executor.run_measured ctx r.Optimizer.plan in
      Format.printf "--- %s: est cost %.1f, measured %d reads, %d rows@.%a@.@."
        name r.Optimizer.est.Cost_model.cost io.Buffer_pool.reads
        (Relation.cardinality rel) Physical.pp r.Optimizer.plan)
    [ ("traditional", Optimizer.Traditional); ("paper", Optimizer.Paper) ]
