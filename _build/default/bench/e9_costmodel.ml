(* E9 — cost-model validation: the paper's algorithms minimize an IO cost
   function (Section 5); the experiments are only meaningful if estimated
   IO tracks measured IO.  We compare both across all workload queries and
   algorithms. *)

let run () =
  let rows = ref [] in
  let errors = ref [] in
  let record name cat q =
    List.iter
      (fun algo ->
        let o = Bench_util.run_algo cat q algo in
        let measured = Bench_util.io_total o in
        let rel_err =
          Float.abs (o.Bench_util.est_cost -. float_of_int measured)
          /. Float.max 1. (float_of_int measured)
        in
        errors := rel_err :: !errors;
        rows :=
          [
            name;
            Bench_util.algo_name algo;
            Bench_util.f1 o.Bench_util.est_cost;
            Bench_util.i measured;
            Bench_util.f2 rel_err;
          ]
          :: !rows)
      [ Optimizer.Traditional; Optimizer.Paper ]
  in
  let empdept =
    Emp_dept.load
      ~params:{ Emp_dept.default_params with emps = 20_000; depts = 500 }
      ()
  in
  record "example1" empdept (Emp_dept.example1 ());
  record "example2" empdept (Emp_dept.example2 ());
  let tpcd = Tpcd.load () in
  record "big_spenders" tpcd (Tpcd.q_big_spenders ());
  record "q17_shape" tpcd (Tpcd.q_small_quantity_parts ());
  record "two_views" tpcd (Tpcd.q_two_views ());
  let chain = Chain.load ~n:4 () in
  record "chain4" chain (Chain.chain_query ~view_size:2 ~n:4);
  let n = List.length !errors in
  let mean = List.fold_left ( +. ) 0. !errors /. float_of_int n in
  Bench_util.print_table
    ~title:"E9  Cost model: estimated vs measured page IO"
    ~header:[ "query"; "algorithm"; "est-cost"; "measured-io"; "rel-error" ]
    (List.rev !rows);
  Printf.printf "\nmean relative error across %d plans: %.2f\n" n mean
