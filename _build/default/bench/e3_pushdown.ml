(* E3 — Figure 2 / Section 4: when does evaluating the group-by early pay?

   Example 2 (average salary per department with a budget filter) under a
   small work memory: late grouping sorts/joins the full emp table, early
   grouping (invariant push-down, chosen cost-based by the greedy
   conservative heuristic) reduces emp to one row per department first.
   Sweep the employee count (spill pressure) and the budget selectivity. *)

let run () =
  let work_mem = 8 in
  let rows = ref [] in
  List.iter
    (fun emps ->
      List.iter
        (fun budget ->
          (* Many departments: the dept side no longer fits in work memory,
             so joining before grouping forces a Grace spill that early
             grouping avoids. *)
          let params = { Emp_dept.default_params with emps; depts = 2000 } in
          let cat = Emp_dept.load ~params () in
          let q = Emp_dept.example2 ~budget_limit:budget () in
          let late = Bench_util.run_algo ~work_mem cat q Optimizer.Traditional in
          let early = Bench_util.run_algo ~work_mem cat q Optimizer.Greedy_conservative in
          rows :=
            [
              Bench_util.i emps;
              Bench_util.i budget;
              Bench_util.i (Bench_util.io_total late);
              Bench_util.i (Bench_util.io_total early);
              Bench_util.shape_label late.Bench_util.plan;
              Bench_util.shape_label early.Bench_util.plan;
              Printf.sprintf "%.2fx"
                (float_of_int (Bench_util.io_total late)
                /. float_of_int (max 1 (Bench_util.io_total early)));
            ]
            :: !rows)
        [ 300_000; 2_000_000 ])
    [ 5_000; 40_000 ];
  Bench_util.print_table
    ~title:
      "E3  Push-down (Example 2, work_mem=8): traditional late grouping vs greedy conservative"
    ~header:
      [ "emps"; "budget<"; "io(late)"; "io(greedy)"; "shape(late)"; "shape(greedy)"; "speedup" ]
    (List.rev !rows)
