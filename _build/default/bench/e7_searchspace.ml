(* E7 — search-space growth (Section 5.2, citing [CS94]: the greedy
   conservative heuristic causes only a "very moderate increase in search
   space"; Section 5.3: pull-up is the expensive dimension, bounded by the
   restrictions).  Chain queries of growing size; we count costed join
   plans, group placements, DP entries and pulled view variants, and the
   optimizer wall time. *)

let run () =
  let rows = ref [] in
  List.iter
    (fun n ->
      let cat = Chain.load ~n () in
      let q = Chain.chain_query ~view_size:2 ~n in
      List.iter
        (fun algo ->
          let o = Bench_util.run_algo cat q algo in
          rows :=
            [
              Bench_util.i n;
              Bench_util.algo_name algo;
              Bench_util.i o.Bench_util.search.Search_stats.join_plans;
              Bench_util.i o.Bench_util.search.Search_stats.group_plans;
              Bench_util.i o.Bench_util.search.Search_stats.entries;
              Bench_util.i o.Bench_util.search.Search_stats.pullups;
              Printf.sprintf "%.1f" o.Bench_util.opt_ms;
              Bench_util.i (Bench_util.io_total o);
            ]
            :: !rows)
        [ Optimizer.Traditional; Optimizer.Greedy_conservative; Optimizer.Paper ])
    [ 3; 4; 5; 6 ];
  Bench_util.print_table
    ~title:
      "E7  Search effort vs query size (chain queries, view over 2 relations + n-2 outer)"
    ~header:
      [ "n"; "algorithm"; "join-plans"; "group-plans"; "dp-entries"; "pullups";
        "opt-ms"; "io" ]
    (List.rev !rows);
  (* Single-block growth: the greedy conservative heuristic alone. *)
  let rows2 = ref [] in
  List.iter
    (fun n ->
      let cat = Chain.load ~n () in
      let q = Chain.flat_query ~n in
      List.iter
        (fun algo ->
          let o = Bench_util.run_algo cat q algo in
          rows2 :=
            [
              Bench_util.i n;
              Bench_util.algo_name algo;
              Bench_util.i o.Bench_util.search.Search_stats.join_plans;
              Bench_util.i o.Bench_util.search.Search_stats.group_plans;
              Printf.sprintf "%.1f" o.Bench_util.opt_ms;
              Bench_util.i (Bench_util.io_total o);
            ]
            :: !rows2)
        [ Optimizer.Traditional; Optimizer.Greedy_conservative ])
    [ 3; 5; 7 ];
  Bench_util.print_table
    ~title:"E7b Single-block grouped chain: traditional vs greedy conservative"
    ~header:[ "n"; "algorithm"; "join-plans"; "group-plans"; "opt-ms"; "io" ]
    (List.rev !rows2)
