(* E11 — ablations of the supporting machinery:
   (a) predicate move-around [LMS94/MFPR90], which the paper assumes as
       pre-existing inter-block technique;
   (b) the plan-aware group-count estimation (join equivalence classes,
       FD reduction, scan-capped NDVs) that the pull-up decisions rely on.
   Both are toggled off to expose their contribution to plan quality. *)

let dno_filter_query () =
  let q = Emp_dept.example1 () in
  let c = Schema.column ~qual:"e1" "dno" Datatype.Int in
  { q with Block.q_preds = q.Block.q_preds @ [ Expr.Cmp (Expr.Lt, Expr.Col c, Expr.int 40) ] }

let run () =
  (* (a) move-around ablation *)
  let cat =
    Emp_dept.load
      ~params:{ Emp_dept.default_params with emps = 30_000; depts = 1500 } ()
  in
  let q = dno_filter_query () in
  let rows_a = ref [] in
  List.iter
    (fun algorithm ->
      List.iter
        (fun moveround ->
          let options =
            { Optimizer.default_options with algorithm; predicate_moveround = moveround }
          in
          let r = Optimizer.optimize ~options cat q in
          let ctx = Exec_ctx.create cat in
          let rel, io = Executor.run_measured ctx r.Optimizer.plan in
          rows_a :=
            [
              Bench_util.algo_name algorithm;
              (if moveround then "on" else "off");
              Bench_util.f1 r.Optimizer.est.Cost_model.cost;
              Bench_util.i (io.Buffer_pool.reads + io.Buffer_pool.writes);
              Bench_util.i (Relation.cardinality rel);
            ]
            :: !rows_a)
        [ true; false ])
    [ Optimizer.Traditional; Optimizer.Paper ];
  Bench_util.print_table
    ~title:
      "E11a Predicate move-around ablation (Example 1 + restriction on the join column)"
    ~header:[ "algorithm"; "move-around"; "est-cost"; "io"; "rows" ]
    (List.rev !rows_a);

  (* (b) group-estimate ablation on the two-view query where the choice of
     the pulled set W depends on it *)
  let params =
    { Tpcd.default_params with customers = 5000; orders_per_customer = 10;
      lines_per_order = 6; nations = 100 }
  in
  let tcat = Tpcd.load ~params () in
  let tq = Tpcd.q_two_views () in
  let rows_b = ref [] in
  List.iter
    (fun aware ->
      Cost_model.plan_aware_grouping := aware;
      let r = Optimizer.optimize tcat tq in
      let ctx = Exec_ctx.create tcat in
      let rel, io = Executor.run_measured ctx r.Optimizer.plan in
      let chosen =
        match r.Optimizer.report with
        | Some rep ->
          String.concat ";"
            (List.map
               (fun (v, w) ->
                 Printf.sprintf "%s={%s}" v (String.concat "," (List.map fst w)))
               rep.Paper_opt.chosen_w)
        | None -> "-"
      in
      rows_b :=
        [
          (if aware then "plan-aware" else "naive");
          Bench_util.f1 r.Optimizer.est.Cost_model.cost;
          Bench_util.i (io.Buffer_pool.reads + io.Buffer_pool.writes);
          Bench_util.i (Relation.cardinality rel);
          chosen;
        ]
        :: !rows_b)
    [ true; false ];
  Cost_model.plan_aware_grouping := true;
  Bench_util.print_table
    ~title:"E11b Group-count estimation ablation (two-view query, pull-up choice)"
    ~header:[ "estimator"; "est-cost"; "io"; "rows"; "chosen W" ]
    (List.rev !rows_b)
