(* E6 — the paper's guarantee: "our cost-based optimization algorithm is
   guaranteed to pick a plan that is no worse than the traditional
   optimization algorithm."  The guarantee is stated in terms of the cost
   model; we check it on random aggregate-view queries and also report the
   measured-IO outcome — once for simple single-relation views and once for
   rich ones (multi-relation views, HAVING, several aggregates), where cost
   estimation is harder and measured regressions become possible. *)

let run_pass ~complexity ~n cat rng =
  let violations = ref 0 in
  let improved = ref 0 in
  let equal = ref 0 in
  let ratios = ref [] in
  for i = 1 to n do
    let q = Query_gen.generate ~complexity rng cat in
    let t = Bench_util.run_algo cat q Optimizer.Traditional in
    let p = Bench_util.run_algo cat q Optimizer.Paper in
    if p.Bench_util.est_cost > t.Bench_util.est_cost +. 1e-6 then incr violations;
    let iot = Bench_util.io_total t and iop = Bench_util.io_total p in
    let ratio = float_of_int iot /. float_of_int (max 1 iop) in
    ratios := ratio :: !ratios;
    if iop < iot then incr improved else if iop = iot then incr equal;
    if p.Bench_util.rows <> t.Bench_util.rows then
      Printf.printf "E6 WARNING: query %d row mismatch (%d vs %d)\n" i
        t.Bench_util.rows p.Bench_util.rows
  done;
  let geo =
    exp (List.fold_left (fun acc r -> acc +. log r) 0. !ratios /. float_of_int n)
  in
  [
    (match complexity with `Simple -> "simple" | `Rich -> "rich");
    Bench_util.i !violations;
    Bench_util.i !improved;
    Bench_util.i !equal;
    Bench_util.i (n - !improved - !equal);
    Bench_util.f2 geo;
    Bench_util.f2 (List.fold_left max 1. !ratios);
    Bench_util.f2 (List.fold_left min infinity !ratios);
  ]

let run () =
  let params =
    { Tpcd.default_params with customers = 1500; orders_per_customer = 8;
      lines_per_order = 5; nations = 30 }
  in
  let cat = Tpcd.load ~params () in
  let n = 50 in
  let rows =
    [
      run_pass ~complexity:`Simple ~n cat (Rng.create ~seed:2024);
      run_pass ~complexity:`Rich ~n cat (Rng.create ~seed:2024);
    ]
  in
  Bench_util.print_table
    ~title:
      (Printf.sprintf
         "E6  No-regression over %d random queries per class (ratio = io(trad)/io(paper); est-violations must be 0)"
         n)
    ~header:
      [ "queries"; "est-viol"; "improved"; "equal"; "worse"; "geo-ratio"; "max"; "min" ]
    rows
