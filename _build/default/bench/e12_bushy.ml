(* E12 — linear vs bushy join trees (extension).  The paper's execution
   space is linear join orders (Section 5.1); enumerating bushy trees is
   the natural enlargement.  We measure what it buys and costs. *)

let run () =
  let rows = ref [] in
  let record name cat q =
    List.iter
      (fun bushy ->
        let paper_opts = { Paper_opt.default_options with bushy } in
        let o = Bench_util.run_algo ~paper_opts cat q Optimizer.Paper in
        rows :=
          [
            name;
            (if bushy then "bushy" else "linear");
            Bench_util.f1 o.Bench_util.est_cost;
            Bench_util.i (Bench_util.io_total o);
            Bench_util.i o.Bench_util.search.Search_stats.join_plans;
            Printf.sprintf "%.1f" o.Bench_util.opt_ms;
          ]
          :: !rows)
      [ false; true ]
  in
  let chain = Chain.load ~n:6 () in
  record "chain6" chain (Chain.chain_query ~view_size:2 ~n:6);
  let tpcd = Tpcd.load () in
  record "two_views" tpcd (Tpcd.q_two_views ());
  record "q17_shape" tpcd (Tpcd.q_small_quantity_parts ());
  let star = Star.load () in
  record "star_revenue" star (Star.q_category_revenue ());
  Bench_util.print_table
    ~title:"E12 Linear vs bushy join enumeration (paper algorithm)"
    ~header:[ "query"; "space"; "est-cost"; "io"; "join-plans"; "opt-ms" ]
    (List.rev !rows)
