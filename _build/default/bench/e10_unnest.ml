(* E10 — nested-subquery flattening (Section 1: Kim's transformation turns
   join-aggregate nested queries into joins with aggregate views, which our
   optimizer then handles).  The correlated form, its flattened view form
   and the optimized plans must all agree; pull-up should beat the
   traditional plan when the outer predicate is selective. *)

let nested_sql age =
  Printf.sprintf
    "SELECT e1.eno AS eno, e1.sal AS sal FROM emp e1 WHERE e1.age < %d AND \
     e1.sal > (SELECT AVG(e2.sal) FROM emp e2 WHERE e2.dno = e1.dno)"
    age

let run () =
  let params =
    { Emp_dept.default_params with emps = 30_000; depts = 1500; age_max = 2000 }
  in
  let cat = Emp_dept.load ~params () in
  let rows = ref [] in
  List.iter
    (fun age ->
      let q = Binder.bind_sql cat (nested_sql age) in
      let t = Bench_util.run_algo cat q Optimizer.Traditional in
      let p = Bench_util.run_algo cat q Optimizer.Paper in
      let reference = Emp_dept.example1 ~age_limit:age () in
      let ref_rows =
        (Bench_util.run_algo cat reference Optimizer.Traditional).Bench_util.rows
      in
      rows :=
        [
          Bench_util.i age;
          Bench_util.i (Bench_util.io_total t);
          Bench_util.i (Bench_util.io_total p);
          Bench_util.i t.Bench_util.rows;
          (if t.Bench_util.rows = p.Bench_util.rows && p.Bench_util.rows = ref_rows
           then "agree" else "DIFFER");
        ]
        :: !rows)
    [ 20; 100; 1000 ];
  Bench_util.print_table
    ~title:
      "E10 Correlated nested subquery, flattened (Kim) then optimized: traditional vs paper"
    ~header:[ "age<"; "io(trad)"; "io(paper)"; "rows"; "vs view form" ]
    (List.rev !rows)
