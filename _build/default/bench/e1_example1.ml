(* E1 — Example 1 crossover (paper Section 3).

   Query A (multi-block): join emp with the aggregate view A1(dno, avg sal).
   Query B (after pull-up): single-block group-by over the join.
   The paper argues A wins when many employees qualify and B wins when the
   age predicate is selective; the cost-based paper algorithm should track
   the winner.  We sweep the age limit (predicate selectivity) and the
   number of departments (group count). *)

let plan_b_query age_limit =
  (* The paper's query B, written directly as a single-block query. *)
  let c ~q n = Schema.column ~qual:q n Datatype.Int in
  let avg_sal =
    Aggregate.make Aggregate.Avg ~arg:(Expr.Col (c ~q:"e2" "sal")) "asal"
  in
  {
    Block.q_views = [];
    q_rels =
      [
        { Block.r_alias = "e1"; r_table = "emp" };
        { Block.r_alias = "e2"; r_table = "emp" };
      ];
    q_preds =
      [
        Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"e1" "dno"), Expr.Col (c ~q:"e2" "dno"));
        Expr.Cmp (Expr.Lt, Expr.Col (c ~q:"e1" "age"), Expr.int age_limit);
      ];
    q_grouped = true;
    q_keys = [ c ~q:"e2" "dno"; c ~q:"e1" "eno"; c ~q:"e1" "sal" ];
    q_aggs = [ avg_sal ];
    q_having =
      [
        Expr.Cmp
          ( Expr.Gt,
            Expr.Col (c ~q:"e1" "sal"),
            Expr.Col (Schema.column ~qual:"" "asal" Datatype.Float) );
      ];
    q_select =
      [ Block.Sel_col (c ~q:"e1" "eno", "eno"); Block.Sel_col (c ~q:"e1" "sal", "sal") ];
    q_order = [];
    q_limit = None;
  }

let run () =
  let emps = 30_000 in
  let age_max = 2000 in
  let rows = ref [] in
  List.iter
    (fun depts ->
      List.iter
        (fun age_limit ->
          let params =
            { Emp_dept.default_params with emps; depts; age_min = 18; age_max }
          in
          let cat = Emp_dept.load ~params () in
          let qa = Emp_dept.example1 ~age_limit () in
          let qb = plan_b_query age_limit in
          let work_mem = 8 in
          let a = Bench_util.run_algo ~work_mem cat qa Optimizer.Traditional in
          let b = Bench_util.run_algo ~work_mem cat qb Optimizer.Greedy_conservative in
          let p = Bench_util.run_algo ~work_mem cat qa Optimizer.Paper in
          let sel =
            float_of_int (age_limit - 18) /. float_of_int (age_max - 18 + 1)
          in
          let winner =
            if Bench_util.io_total a < Bench_util.io_total b then "A" else "B"
          in
          let tracks =
            Bench_util.io_total p
            <= min (Bench_util.io_total a) (Bench_util.io_total b) + 10
          in
          rows :=
            [
              Bench_util.i depts;
              Printf.sprintf "%.3f" sel;
              Bench_util.i (Bench_util.io_total a);
              Bench_util.i (Bench_util.io_total b);
              Bench_util.i (Bench_util.io_total p);
              winner;
              (if tracks then "yes" else "NO");
              Bench_util.i p.Bench_util.rows;
            ]
            :: !rows)
        [ 20; 60; 200; 800; 1999 ])
    [ 50; 2000 ];
  Bench_util.print_table
    ~title:
      "E1  Example 1: view-join (A) vs pulled-up single block (B) vs cost-based paper algorithm"
    ~header:
      [ "depts"; "age-sel"; "io(A)"; "io(B)"; "io(paper)"; "best"; "paper<=best"; "rows" ]
    (List.rev !rows)
