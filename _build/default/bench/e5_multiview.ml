(* E5 — Figure 5: the two-phase enumeration for a query with two aggregate
   views.  Step 1 optimizes every pulled-up variant Phi(V_i', W_i) of each
   view; step 2 picks consistent (disjoint) W choices.  We print the actual
   Step-1 plan sets the optimizer enumerated and the chosen combination,
   then compare against the traditional strategy. *)

let run () =
  (* Large orders/lineitem clustered on the join columns plus a selective
     customer filter: the regime where pulling a view through the filtered
     relation enables index access instead of full scans. *)
  let params =
    { Tpcd.default_params with customers = 5000; orders_per_customer = 10;
      lines_per_order = 6; nations = 100 }
  in
  let cat = Tpcd.load ~params () in
  let q = Tpcd.q_two_views () in
  let r = Optimizer.optimize cat q in
  (match r.Optimizer.report with
   | None -> print_endline "E5: no paper report (unexpected)"
   | Some rep ->
     let rows =
       List.map
         (fun p ->
           [
             p.Paper_opt.p_view;
             "{" ^ String.concat "," (List.map fst p.Paper_opt.p_w) ^ "}";
             Bench_util.f1 p.Paper_opt.p_entry.Dp.est.Cost_model.cost;
             Bench_util.f1 p.Paper_opt.p_entry.Dp.est.Cost_model.rows;
           ])
         rep.Paper_opt.pulled_plans
     in
     Bench_util.print_table
       ~title:"E5  Step 1: pulled-up view variants Phi(V', W) and their optimized costs"
       ~header:[ "view"; "W"; "est-cost"; "est-rows" ]
       rows;
     Printf.printf "\nminimal invariant sets: %s\n"
       (String.concat "; "
          (List.map
             (fun (v, s) -> Printf.sprintf "%s={%s}" v (String.concat "," s))
             rep.Paper_opt.minimal_sets));
     Printf.printf "combinations tried in step 2: %d\n" rep.Paper_opt.combos_tried;
     Printf.printf "chosen W per view: %s\n"
       (String.concat "; "
          (List.map
             (fun (v, w) ->
               Printf.sprintf "%s={%s}" v (String.concat "," (List.map fst w)))
             rep.Paper_opt.chosen_w)));
  let t = Bench_util.run_algo cat q Optimizer.Traditional in
  let p = Bench_util.run_algo cat q Optimizer.Paper in
  Bench_util.print_table
    ~title:"E5  Step 2 outcome vs the traditional two-phase optimizer"
    ~header:[ "algorithm"; "est-cost"; "io"; "rows"; "plan shape" ]
    [
      [ "traditional"; Bench_util.f1 t.Bench_util.est_cost;
        Bench_util.i (Bench_util.io_total t); Bench_util.i t.Bench_util.rows;
        Bench_util.shape_label t.Bench_util.plan ];
      [ "paper"; Bench_util.f1 p.Bench_util.est_cost;
        Bench_util.i (Bench_util.io_total p); Bench_util.i p.Bench_util.rows;
        Bench_util.shape_label p.Bench_util.plan ];
    ]
