(* E2 — Figures 1 and 2: the three transformations as tree rewrites,
   validated for equivalence on randomized instances and across aggregate
   functions, with the interpreter as ground truth. *)

let c ~q n = Schema.column ~qual:q n Datatype.Int

let make_agg func =
  let arg = Expr.Col (c ~q:"e2" "sal") in
  match func with
  | `Avg -> Aggregate.make Aggregate.Avg ~arg "a"
  | `Sum -> Aggregate.make Aggregate.Sum ~arg "a"
  | `Min -> Aggregate.make Aggregate.Min ~arg "a"
  | `Max -> Aggregate.make Aggregate.Max ~arg "a"
  | `Count -> Aggregate.make Aggregate.Count_star "a"

let func_name = function
  | `Avg -> "AVG" | `Sum -> "SUM" | `Min -> "MIN" | `Max -> "MAX" | `Count -> "COUNT*"

(* Figure 1 shape: Join(Group(emp e2), emp e1 filtered). *)
let p1_tree cat func age_limit =
  let agg = make_agg func in
  let group =
    Logical.Group
      {
        input = Logical.scan cat ~alias:"e2" "emp";
        agg_qual = "b";
        keys = [ c ~q:"e2" "dno" ];
        aggs = [ agg ];
        having = [];
      }
  in
  let e1 =
    Logical.Filter
      {
        input = Logical.scan cat ~alias:"e1" "emp";
        pred = Expr.Cmp (Expr.Lt, Expr.Col (c ~q:"e1" "age"), Expr.int age_limit);
      }
  in
  Logical.Join
    {
      left = group;
      right = e1;
      cond =
        [
          Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"e2" "dno"), Expr.Col (c ~q:"e1" "dno"));
          Expr.Cmp
            ( Expr.Lt,
              Expr.Col (Schema.column ~qual:"b" "a" (Aggregate.result_type agg)),
              Expr.Col (c ~q:"e1" "sal") );
        ];
    }

(* Figure 2 shape: Group(Join(emp e, dept d filtered)) — Example 2. *)
let fig2_tree cat func budget =
  let agg =
    match make_agg func with
    | a -> { a with Aggregate.arg = Option.map (fun _ -> Expr.Col (c ~q:"e" "sal")) a.Aggregate.arg }
  in
  Logical.Group
    {
      input =
        Logical.Join
          {
            left = Logical.scan cat ~alias:"e" "emp";
            right =
              Logical.Filter
                {
                  input = Logical.scan cat ~alias:"d" "dept";
                  pred =
                    Expr.Cmp (Expr.Lt, Expr.Col (c ~q:"d" "budget"), Expr.int budget);
                };
            cond =
              [ Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"e" "dno"), Expr.Col (c ~q:"d" "dno")) ];
          };
      agg_qual = "g";
      keys = [ c ~q:"e" "dno" ];
      aggs = [ agg ];
      having = [];
    }

let run () =
  let rows = ref [] in
  let record name func seed before after_opt =
    match after_opt with
    | None -> rows := [ name; func_name func; Bench_util.i seed; "-"; "NOT APPLIED" ] :: !rows
    | Some after ->
      let cat_rows r = Relation.cardinality r in
      let equal = Relation.multiset_equal before after in
      rows :=
        [
          name;
          func_name func;
          Bench_util.i seed;
          Bench_util.i (cat_rows before);
          (if equal then "equal" else "DIFFER");
        ]
        :: !rows
  in
  List.iter
    (fun seed ->
      let params =
        { Emp_dept.default_params with emps = 400 + (seed * 57); depts = 5 + (seed * 3); seed }
      in
      let cat = Emp_dept.load ~params () in
      List.iter
        (fun func ->
          let p1 = p1_tree cat func (25 + seed) in
          record "pull-up (Fig 1)" func seed (Logical.eval cat p1)
            (Option.map (Logical.eval cat) (Pullup.rewrite cat p1));
          let f2 = fig2_tree cat func 1_000_000 in
          record "invariant (Fig 2a)" func seed (Logical.eval cat f2)
            (Option.map (Logical.eval cat) (Pushdown.rewrite cat f2));
          record "coalesce (Fig 2b)" func seed (Logical.eval cat f2)
            (Option.map (Logical.eval cat) (Coalesce.rewrite f2)))
        [ `Avg; `Sum; `Min; `Max; `Count ])
    [ 1; 2; 3 ];
  Bench_util.print_table
    ~title:"E2  Transformation equivalence (Figures 1, 2a, 2b) on randomized instances"
    ~header:[ "transformation"; "agg"; "seed"; "rows"; "verdict" ]
    (List.rev !rows)
