(* E8 — practical restrictions on the search space (Section 5.3): the
   k-level pull-up bound and the shared-predicate requirement.  We ablate
   both on a chain query with a pullable view and report plan quality vs
   search effort. *)

let run () =
  let n = 5 in
  let cat = Chain.load ~n () in
  let q = Chain.chain_query ~view_size:2 ~n in
  let rows = ref [] in
  List.iter
    (fun k ->
      List.iter
        (fun shared ->
          let paper_opts =
            { Paper_opt.default_options with k_pullup = k; require_shared_pred = shared }
          in
          let o = Bench_util.run_algo ~paper_opts cat q Optimizer.Paper in
          rows :=
            [
              Bench_util.i k;
              (if shared then "yes" else "no");
              Bench_util.f1 o.Bench_util.est_cost;
              Bench_util.i (Bench_util.io_total o);
              Bench_util.i o.Bench_util.search.Search_stats.pullups;
              Bench_util.i o.Bench_util.search.Search_stats.join_plans;
              Printf.sprintf "%.1f" o.Bench_util.opt_ms;
            ]
            :: !rows)
        [ true; false ])
    [ 0; 1; 2; 3 ];
  Bench_util.print_table
    ~title:
      "E8  Ablation of the Section 5.3 restrictions (k-level pull-up, shared-predicate)"
    ~header:
      [ "k"; "shared-pred"; "est-cost"; "io"; "pullups"; "join-plans"; "opt-ms" ]
    (List.rev !rows)
