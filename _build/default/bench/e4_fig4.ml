(* E4 — Figure 4: the four alternative executions for a query with one
   aggregate view over a multi-relation backdrop.

   Query: TPC-D Q17 shape — lineitem x part x view(avg qty per part).  The
   four plan families of Figure 4 are: (a) view evaluated as-is, group-by
   at the view top; (b) group-by pushed inside the view; (c) group-by
   pulled above outer joins; (d) push and pull combined.  We report, per
   parameter cell, the plan shape and IO chosen by each algorithm; across
   cells the winning shape changes, which is the paper's point that neither
   transformation is a universal heuristic. *)

let run () =
  let rows = ref [] in
  List.iter
    (fun (parts, lines_per_order) ->
      List.iter
        (fun work_mem ->
          let params =
            { Tpcd.default_params with parts; lines_per_order; customers = 500;
              orders_per_customer = 6 }
          in
          let cat = Tpcd.load ~params () in
          let q = Tpcd.q_small_quantity_parts () in
          let t = Bench_util.run_algo ~work_mem cat q Optimizer.Traditional in
          let g = Bench_util.run_algo ~work_mem cat q Optimizer.Greedy_conservative in
          let p = Bench_util.run_algo ~work_mem cat q Optimizer.Paper in
          rows :=
            [
              Bench_util.i parts;
              Bench_util.i lines_per_order;
              Bench_util.i work_mem;
              Bench_util.i (Bench_util.io_total t);
              Bench_util.i (Bench_util.io_total g);
              Bench_util.i (Bench_util.io_total p);
              Bench_util.shape_label t.Bench_util.plan;
              Bench_util.shape_label p.Bench_util.plan;
              (if t.Bench_util.rows = p.Bench_util.rows
               && g.Bench_util.rows = p.Bench_util.rows
               then "agree" else "DIFFER");
            ]
            :: !rows)
        [ 8; 64 ])
    [ (50, 3); (50, 12); (2000, 3); (2000, 12) ];
  Bench_util.print_table
    ~title:
      "E4  Figure 4 plan families on the Q17 shape (io per algorithm; shape = groups;joins-inside;joins-after)"
    ~header:
      [ "parts"; "lines/ord"; "wmem"; "io(trad)"; "io(greedy)"; "io(paper)";
        "shape(trad)"; "shape(paper)"; "results" ]
    (List.rev !rows)
