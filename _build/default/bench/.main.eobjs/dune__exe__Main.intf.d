bench/main.mli:
