bench/bench_util.ml: Array Buffer_pool Cost_model Exec_ctx Executor List Optimizer Option Paper_opt Physical Printf Relation Search_stats String Unix
