bench/e4_fig4.ml: Bench_util List Optimizer Tpcd
