bench/e6_noregress.ml: Bench_util List Optimizer Printf Query_gen Rng Tpcd
