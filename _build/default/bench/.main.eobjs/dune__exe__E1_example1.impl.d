bench/e1_example1.ml: Aggregate Bench_util Block Datatype Emp_dept Expr List Optimizer Printf Schema
