bench/e9_costmodel.ml: Bench_util Chain Emp_dept Float List Optimizer Printf Tpcd
