bench/e12_bushy.ml: Bench_util Chain List Optimizer Paper_opt Printf Search_stats Star Tpcd
