bench/e2_transforms.ml: Aggregate Bench_util Coalesce Datatype Emp_dept Expr List Logical Option Pullup Pushdown Relation Schema
