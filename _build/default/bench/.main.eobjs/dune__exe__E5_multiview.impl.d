bench/e5_multiview.ml: Bench_util Cost_model Dp List Optimizer Paper_opt Printf String Tpcd
