bench/e3_pushdown.ml: Bench_util Emp_dept List Optimizer Printf
