bench/e8_restrictions.ml: Bench_util Chain List Optimizer Paper_opt Printf Search_stats
