bench/e11_ablations.ml: Bench_util Block Buffer_pool Cost_model Datatype Emp_dept Exec_ctx Executor Expr List Optimizer Paper_opt Printf Relation Schema String Tpcd
