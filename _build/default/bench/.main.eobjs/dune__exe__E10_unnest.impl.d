bench/e10_unnest.ml: Bench_util Binder Emp_dept List Optimizer Printf
