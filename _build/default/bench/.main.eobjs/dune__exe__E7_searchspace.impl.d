bench/e7_searchspace.ml: Bench_util Chain List Optimizer Printf Search_stats
