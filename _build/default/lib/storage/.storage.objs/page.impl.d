lib/storage/page.ml: Format Stdlib
