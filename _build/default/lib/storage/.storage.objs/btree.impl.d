lib/storage/btree.ml: Array Buffer_pool Format List Page Value
