lib/storage/heap_file.ml: Array Buffer_pool List Page Relation Schema Seq Tuple
