lib/storage/heap_file.mli: Buffer_pool Page Relation Schema Seq Tuple
