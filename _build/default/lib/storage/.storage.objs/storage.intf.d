lib/storage/storage.mli: Btree Buffer_pool Heap_file Relation Schema
