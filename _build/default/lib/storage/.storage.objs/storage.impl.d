lib/storage/storage.ml: Btree Buffer_pool Heap_file Tuple
