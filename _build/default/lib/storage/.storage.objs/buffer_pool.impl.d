lib/storage/buffer_pool.ml: Format Hashtbl List
