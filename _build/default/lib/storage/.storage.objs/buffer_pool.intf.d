lib/storage/buffer_pool.mli: Format
