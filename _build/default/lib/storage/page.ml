let size = 4096

let capacity ~row_bytes = max 1 (size / max 1 row_bytes)

let pages_for ~rows ~row_bytes =
  if rows = 0 then 0 else (rows + capacity ~row_bytes - 1) / capacity ~row_bytes

type rid = { page : int; slot : int }

let compare_rid a b =
  let c = Stdlib.compare a.page b.page in
  if c <> 0 then c else Stdlib.compare a.slot b.slot

let pp_rid ppf r = Format.fprintf ppf "(%d,%d)" r.page r.slot
