(** Page geometry and record identifiers.

    The storage engine is page-based: the buffer pool, the heap files and the
    B+-trees all account IO in whole pages of {!size} bytes.  Tuple contents
    are kept in memory (the engine simulates a disk), but every page touch is
    routed through the buffer pool so that physical reads and writes are
    faithfully counted — the paper's cost model is IO-only (Section 5), so
    measured page IO is the quantity experiments compare against. *)

val size : int
(** Page size in bytes (4096). *)

val capacity : row_bytes:int -> int
(** [capacity ~row_bytes] is the number of tuples of width [row_bytes] that
    fit in one page (at least 1). *)

val pages_for : rows:int -> row_bytes:int -> int
(** Number of pages needed to store [rows] tuples. *)

type rid = { page : int; slot : int }
(** Record identifier within a heap file. *)

val compare_rid : rid -> rid -> int
val pp_rid : Format.formatter -> rid -> unit
