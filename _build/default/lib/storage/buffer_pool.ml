type key = int * int

type frame = {
  key : key;
  mutable dirty : bool;
  mutable prev : frame option;
  mutable next : frame option;
}

type stats = { reads : int; writes : int; hits : int }

type t = {
  capacity : int;
  table : (key, frame) Hashtbl.t;
  mutable head : frame option;  (* most recently used *)
  mutable tail : frame option;  (* least recently used *)
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
}

let create ~frames =
  if frames < 1 then invalid_arg "Buffer_pool.create: frames < 1";
  {
    capacity = frames;
    table = Hashtbl.create (2 * frames);
    head = None;
    tail = None;
    reads = 0;
    writes = 0;
    hits = 0;
  }

let frames t = t.capacity

let unlink t f =
  (match f.prev with Some p -> p.next <- f.next | None -> t.head <- f.next);
  (match f.next with Some n -> n.prev <- f.prev | None -> t.tail <- f.prev);
  f.prev <- None;
  f.next <- None

let push_front t f =
  f.next <- t.head;
  f.prev <- None;
  (match t.head with Some h -> h.prev <- Some f | None -> t.tail <- Some f);
  t.head <- Some f

let evict_lru t =
  match t.tail with
  | None -> ()
  | Some f ->
    unlink t f;
    Hashtbl.remove t.table f.key;
    if f.dirty then t.writes <- t.writes + 1

let insert t key ~dirty =
  if Hashtbl.length t.table >= t.capacity then evict_lru t;
  let f = { key; dirty; prev = None; next = None } in
  Hashtbl.replace t.table key f;
  push_front t f

let touch t key ~dirty =
  match Hashtbl.find_opt t.table key with
  | Some f ->
    t.hits <- t.hits + 1;
    if dirty then f.dirty <- true;
    unlink t f;
    push_front t f;
    true
  | None -> false

let read t ~file ~page =
  let key = (file, page) in
  if not (touch t key ~dirty:false) then begin
    t.reads <- t.reads + 1;
    insert t key ~dirty:false
  end

let write t ~file ~page =
  let key = (file, page) in
  if not (touch t key ~dirty:true) then begin
    t.reads <- t.reads + 1;
    insert t key ~dirty:true
  end

let alloc t ~file ~page =
  let key = (file, page) in
  if not (touch t key ~dirty:true) then insert t key ~dirty:true

let drop_file t ~file =
  let doomed =
    Hashtbl.fold (fun (f, p) fr acc -> if f = file then (fr, p) :: acc else acc)
      t.table []
  in
  List.iter
    (fun (fr, _p) ->
      unlink t fr;
      Hashtbl.remove t.table fr.key)
    doomed

let flush_all t =
  Hashtbl.iter
    (fun _ f ->
      if f.dirty then begin
        f.dirty <- false;
        t.writes <- t.writes + 1
      end)
    t.table

let clear t =
  Hashtbl.reset t.table;
  t.head <- None;
  t.tail <- None

let stats t = { reads = t.reads; writes = t.writes; hits = t.hits }

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0;
  t.hits <- 0

let io_total t = t.reads + t.writes

let resident t ~file ~page = Hashtbl.mem t.table (file, page)

let pp_stats ppf (s : stats) =
  Format.fprintf ppf "reads=%d writes=%d hits=%d" s.reads s.writes s.hits
