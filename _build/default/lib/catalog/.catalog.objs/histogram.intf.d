lib/catalog/histogram.mli: Format Value
