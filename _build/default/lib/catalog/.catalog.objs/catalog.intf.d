lib/catalog/catalog.mli: Btree Datatype Heap_file Schema Stats Storage Tuple
