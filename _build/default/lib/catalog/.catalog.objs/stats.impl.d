lib/catalog/stats.ml: Array Format Histogram List Page Schema Tuple Value
