lib/catalog/stats.mli: Format Histogram Schema Tuple Value
