lib/catalog/catalog.ml: Array Btree Datatype Heap_file List Option Printf Schema Stats Storage String Tuple Value
