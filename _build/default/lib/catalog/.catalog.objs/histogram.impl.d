lib/catalog/histogram.ml: Array Format List Value
