type column_stats = {
  ndv : int;
  vmin : Value.t;
  vmax : Value.t;
  histogram : Histogram.t;
}

type table_stats = {
  card : int;
  pages : int;
  row_bytes : int;
  columns : column_stats array;
}

let analyze_column values =
  let h = Histogram.build values in
  {
    ndv = Histogram.ndv h;
    vmin = Histogram.min_value h;
    vmax = Histogram.max_value h;
    histogram = h;
  }

let analyze schema tuples =
  if tuples = [] then invalid_arg "Stats.analyze: empty table";
  let arity = Schema.arity schema in
  let columns =
    Array.init arity (fun i ->
        analyze_column (List.map (fun t -> Tuple.get t i) tuples))
  in
  let card = List.length tuples in
  let row_bytes = Schema.byte_width schema in
  { card; pages = Page.pages_for ~rows:card ~row_bytes; row_bytes; columns }

let pp_table ppf t =
  Format.fprintf ppf "card=%d pages=%d width=%dB" t.card t.pages t.row_bytes;
  Array.iteri
    (fun i c -> Format.fprintf ppf "@ col%d: ndv=%d [%a..%a]" i c.ndv Value.pp c.vmin Value.pp c.vmax)
    t.columns
