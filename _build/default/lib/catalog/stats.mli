(** Column and table statistics. *)

type column_stats = {
  ndv : int;              (** number of distinct values *)
  vmin : Value.t;
  vmax : Value.t;
  histogram : Histogram.t;
}

type table_stats = {
  card : int;                     (** row count *)
  pages : int;                    (** heap pages *)
  row_bytes : int;                (** average row width *)
  columns : column_stats array;   (** aligned with the table schema *)
}

val analyze_column : Value.t list -> column_stats
(** Statistics of one column from its full contents.
    @raise Invalid_argument on an empty column. *)

val analyze : Schema.t -> Tuple.t list -> table_stats
(** Full-table analyze pass.
    @raise Invalid_argument on an empty table (workloads never load empty
    base tables; the estimator needs at least one row per column). *)

val pp_table : Format.formatter -> table_stats -> unit
