(** Equi-depth histograms for selectivity estimation.

    Built from the actual column data at load time (the engine plays both
    DBMS and statistics collector), so estimates reflect the synthetic
    workloads' real distributions. *)

type t

val build : ?buckets:int -> Value.t list -> t
(** [build ~buckets vs] sorts [vs] and cuts it into at most [buckets]
    (default 32) equal-frequency buckets.
    @raise Invalid_argument on an empty list. *)

val count : t -> int
val ndv : t -> int
val min_value : t -> Value.t
val max_value : t -> Value.t

val sel_eq : t -> Value.t -> float
(** Estimated fraction of rows equal to the value. *)

val sel_range : t -> ?lo:Value.t * bool -> ?hi:Value.t * bool -> unit -> float
(** Estimated fraction of rows within the range; endpoints carry an
    inclusive flag.  Uses linear interpolation inside numeric buckets. *)

val pp : Format.formatter -> t -> unit
