type bucket = {
  blo : Value.t;    (* smallest value in the bucket *)
  bhi : Value.t;    (* largest value in the bucket *)
  brows : int;
  bndv : int;
}

type t = {
  buckets : bucket array;
  total : int;
  ndv : int;
  vmin : Value.t;
  vmax : Value.t;
}

let build ?(buckets = 32) values =
  if values = [] then invalid_arg "Histogram.build: empty column";
  let sorted = List.sort Value.compare values in
  let arr = Array.of_list sorted in
  let n = Array.length arr in
  let nb = max 1 (min buckets n) in
  let make_bucket lo hi =
    (* rows in arr.[lo..hi-1] *)
    let ndv = ref 1 in
    for i = lo + 1 to hi - 1 do
      if Value.compare arr.(i - 1) arr.(i) <> 0 then incr ndv
    done;
    { blo = arr.(lo); bhi = arr.(hi - 1); brows = hi - lo; bndv = !ndv }
  in
  let bs =
    Array.init nb (fun b ->
        let lo = b * n / nb and hi = (b + 1) * n / nb in
        make_bucket lo (max hi (lo + 1)))
  in
  let total_ndv =
    let d = ref 1 in
    for i = 1 to n - 1 do
      if Value.compare arr.(i - 1) arr.(i) <> 0 then incr d
    done;
    !d
  in
  { buckets = bs; total = n; ndv = total_ndv; vmin = arr.(0); vmax = arr.(n - 1) }

let count t = t.total
let ndv t = t.ndv
let min_value t = t.vmin
let max_value t = t.vmax

(* Fraction of a bucket's rows with value < v (strict), by interpolation.
   The linear ratio is scaled by (1 - 1/ndv): rows equal to the bucket's
   maximum belong to the bucket, so even at v = bhi the strictly-below
   fraction must leave one value's share out (keeps sel_lt + sel_eq
   monotone across bucket boundaries). *)
let frac_below b v =
  let c_lo = Value.compare v b.blo and c_hi = Value.compare v b.bhi in
  if c_lo <= 0 then 0.
  else if c_hi > 0 then 1.
  else
    let top_share = 1. -. (1. /. float_of_int (max 1 b.bndv)) in
    match b.blo, b.bhi with
    | (Value.Int _ | Value.Float _ | Value.Date _), (Value.Int _ | Value.Float _ | Value.Date _)
      ->
      let lo = Value.to_float b.blo and hi = Value.to_float b.bhi in
      if hi <= lo then 0.5
      else (Value.to_float v -. lo) /. (hi -. lo) *. top_share
    | _ -> 0.5 *. top_share

let sel_lt t v =
  let rows_below =
    Array.fold_left
      (fun acc b -> acc +. (frac_below b v *. float_of_int b.brows))
      0. t.buckets
  in
  rows_below /. float_of_int t.total

let sel_eq t v =
  if Value.compare v t.vmin < 0 || Value.compare v t.vmax > 0 then 0.
  else
    (* Average frequency of a value within the bucket containing v. *)
    let bucket =
      Array.fold_left
        (fun acc b ->
          match acc with
          | Some _ -> acc
          | None ->
            if Value.compare v b.blo >= 0 && Value.compare v b.bhi <= 0 then Some b
            else None)
        None t.buckets
    in
    match bucket with
    | None -> 1. /. float_of_int (max 1 t.ndv)
    | Some b ->
      float_of_int b.brows
      /. float_of_int (max 1 b.bndv)
      /. float_of_int t.total

let clamp01 x = if x < 0. then 0. else if x > 1. then 1. else x

let sel_range t ?lo ?hi () =
  let below_hi =
    match hi with
    | None -> 1.
    | Some (v, incl) -> sel_lt t v +. (if incl then sel_eq t v else 0.)
  in
  let below_lo =
    match lo with
    | None -> 0.
    | Some (v, incl) -> sel_lt t v +. (if incl then 0. else sel_eq t v)
  in
  clamp01 (below_hi -. below_lo)

let pp ppf t =
  Format.fprintf ppf "hist{n=%d ndv=%d min=%a max=%a buckets=%d}" t.total t.ndv
    Value.pp t.vmin Value.pp t.vmax (Array.length t.buckets)
