type t = { join_plans : int; group_plans : int; entries : int; pullups : int }

let join_plans = ref 0
let group_plans = ref 0
let entries = ref 0
let pullups = ref 0

let reset () =
  join_plans := 0;
  group_plans := 0;
  entries := 0;
  pullups := 0

let snapshot () =
  {
    join_plans = !join_plans;
    group_plans = !group_plans;
    entries = !entries;
    pullups = !pullups;
  }

let count_join_plan () = incr join_plans
let count_group_plan () = incr group_plans
let count_entry () = incr entries
let count_pullup () = incr pullups

let pp ppf t =
  Format.fprintf ppf "join_plans=%d group_plans=%d entries=%d pullups=%d"
    t.join_plans t.group_plans t.entries t.pullups
