(** Invariant grouping push-down as a standalone operator-tree rewrite
    (paper, Section 4.1 and Figure 2a).

    [rewrite cat tree] matches

    {v Group g (Join [cond] R1 R2) v}

    and, when the grouping is invariant with respect to R2, produces

    {v Join [cond] (Group g (R1)) R2 v}

    Applicability (the conditions {!Grouping} also uses inside the
    optimizer): grouping columns and aggregate arguments all come from R1;
    every join predicate's R1-side columns are grouping columns; and the
    equality predicates cover a primary key of R2 on the R2 side, so each
    group matches at most one R2 row — later joins can only keep or drop
    whole groups.  The Having clause moves down with the group-by. *)

val rewrite : Catalog.t -> Logical.t -> Logical.t option
(** [None] when the shape or the invariance conditions do not hold.  The
    result's output schema equals the input's up to column order, restored
    with a final projection. *)
