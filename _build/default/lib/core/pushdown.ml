let rec base_access cat = function
  | Logical.Scan s -> Some (s.alias, s.table)
  | Logical.Filter f -> base_access cat f.input
  | Logical.Join _ | Logical.Group _ | Logical.Project _ -> None

let rewrite cat tree =
  match tree with
  | Logical.Group ({ input = Logical.Join { left; right; cond }; _ } as g) -> (
    match base_access cat right with
    | None -> None
    | Some (r2_alias, r2_table) ->
      let tbl = Catalog.table_exn cat r2_table in
      let pk = tbl.Catalog.primary_key in
      let left_schema = Logical.schema left in
      let from_left (c : Schema.column) = Schema.mem left_schema c in
      let from_r2 (c : Schema.column) = String.equal c.Schema.cqual r2_alias in
      let is_key c = List.exists (Schema.column_equal c) g.keys in
      let conditions_ok =
        pk <> []
        && List.for_all from_left g.keys
        && List.for_all
             (fun a -> List.for_all from_left (Aggregate.arg_columns a))
             g.aggs
        && List.for_all
             (fun p ->
               List.for_all
                 (fun c -> from_r2 c || is_key c)
                 (Expr.pred_columns p))
             cond
        &&
        let covered_pk =
          List.filter_map
            (fun p ->
              match Expr.as_equijoin p with
              | Some (a, b) when is_key a && from_r2 b -> Some b.Schema.cname
              | Some (a, b) when is_key b && from_r2 a -> Some a.Schema.cname
              | _ -> None)
            cond
        in
        List.for_all (fun k -> List.exists (String.equal k) covered_pk) pk
      in
      if not conditions_ok then None
      else begin
        let pushed = Logical.Group { g with input = left } in
        let joined = Logical.Join { left = pushed; right; cond } in
        (* Output schema of the original: group keys ++ agg cols.  The new
           tree also carries R2's columns; project them away, restoring the
           original schema. *)
        let orig_schema = Logical.schema tree in
        let cols = List.map (fun c -> (Expr.Col c, c)) (Schema.columns orig_schema) in
        Some (Logical.Project { input = joined; cols })
      end)
  | Logical.Scan _ | Logical.Filter _ | Logical.Join _ | Logical.Group _
  | Logical.Project _ ->
    None
