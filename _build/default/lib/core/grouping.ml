type group_spec = {
  gs_qual : string;
  gs_keys : Schema.column list;
  gs_aggs : Aggregate.t list;
  gs_having : Expr.pred list;
}

type later_item = {
  li_aliases : string list;
  li_key : Schema.column list option;
}

let covered aliases (c : Schema.column) =
  List.exists (String.equal c.Schema.cqual) aliases

let is_key spec c = List.exists (Schema.column_equal c) spec.gs_keys

(* Equality predicates [kc = oc] in [preds] with [kc] a covered grouping key
   and [oc] on the given later item. *)
let key_equalities spec covered_aliases item preds =
  List.filter_map
    (fun p ->
      match Expr.as_equijoin p with
      | None -> None
      | Some (a, b) ->
        let item_side c = List.exists (String.equal c.Schema.cqual) item.li_aliases in
        if covered covered_aliases a && is_key spec a && item_side b then Some b
        else if covered covered_aliases b && is_key spec b && item_side a then Some a
        else None)
    preds

let invariant_final_ok ~spec ~covered_aliases ~remaining_items ~remaining_preds =
  let cov = covered covered_aliases in
  (* Keys and aggregate arguments must be computable over the prefix. *)
  List.for_all cov spec.gs_keys
  && List.for_all
       (fun a -> List.for_all cov (Aggregate.arg_columns a))
       spec.gs_aggs
  && List.for_all
       (fun p ->
         match Expr.pred_columns p with
         | cols ->
           List.for_all (fun c -> (not (cov c)) || is_key spec c) cols)
       remaining_preds
  (* Each later item must join N:1: equalities on grouping keys covering one
     of its declared keys, so later joins only filter or keep whole groups. *)
  && List.for_all
       (fun item ->
         match item.li_key with
         | None -> false
         | Some key_cols ->
           let eqs = key_equalities spec covered_aliases item remaining_preds in
           key_cols <> []
           && List.for_all
                (fun kc -> List.exists (Schema.column_equal kc) eqs)
                key_cols)
       remaining_items

type coalesce = {
  partial_keys : Schema.column list;
  partial_aggs : Aggregate.t list;
  combine_aggs : Aggregate.t list;
  post : (Expr.t * string) list;
}

let dedup_columns cols =
  List.fold_left
    (fun acc c -> if List.exists (Schema.column_equal c) acc then acc else acc @ [ c ])
    [] cols

let coalesce_at ~spec ~covered_aliases ~remaining_preds =
  let cov = covered covered_aliases in
  let args_ok =
    List.for_all
      (fun a -> Aggregate.is_decomposable a && List.for_all cov (Aggregate.arg_columns a))
      spec.gs_aggs
  in
  if not args_ok then None
  else begin
    let needed_later =
      List.concat_map Expr.pred_columns remaining_preds |> List.filter cov
    in
    let partial_keys =
      dedup_columns (List.filter cov spec.gs_keys @ needed_later)
    in
    let decomposed = List.map (Aggregate.decompose ~qual:spec.gs_qual) spec.gs_aggs in
    Some
      {
        partial_keys;
        partial_aggs = List.concat_map (fun d -> d.Aggregate.partials) decomposed;
        combine_aggs = List.concat_map (fun d -> d.Aggregate.combine) decomposed;
        post = List.filter_map (fun d -> d.Aggregate.post) decomposed;
      }
  end

let minimal_invariant_set cat (v : Normalize.nview) =
  let module N = Normalize in
  let agg_arg_quals =
    List.concat_map
      (fun a -> List.map (fun c -> c.Schema.cqual) (Aggregate.arg_columns a))
      v.N.n_aggs
  in
  let key_quals = List.map (fun (c : Schema.column) -> c.Schema.cqual) v.N.n_keys in
  let removable current alias table =
    (* Only predicates still internal to the current set matter. *)
    let inner_preds =
      List.filter
        (fun p ->
          List.for_all
            (fun q -> List.exists (String.equal q) current)
            (Expr.qualifiers p))
        v.N.n_preds
    in
    let tbl = Catalog.table_exn cat table in
    let pk = tbl.Catalog.primary_key in
    pk <> []
    && (not (List.exists (String.equal alias) agg_arg_quals))
    && (not (List.exists (String.equal alias) key_quals))
    &&
    let connecting =
      List.filter
        (fun p ->
          let qs = Expr.qualifiers p in
          List.exists (String.equal alias) qs
          && List.exists (fun q -> not (String.equal q alias)) qs)
        inner_preds
    in
    (* Other-side columns of connecting predicates must be grouping keys. *)
    List.for_all
      (fun p ->
        List.for_all
          (fun (c : Schema.column) ->
            String.equal c.Schema.cqual alias
            || List.exists (Schema.column_equal c) v.N.n_keys)
          (Expr.pred_columns p))
      connecting
    &&
    (* Equalities key-col = alias-col must cover the full primary key. *)
    let covered_pk =
      List.filter_map
        (fun p ->
          match Expr.as_equijoin p with
          | Some (a, b)
            when String.equal b.Schema.cqual alias
                 && List.exists (Schema.column_equal a) v.N.n_keys ->
            Some b.Schema.cname
          | Some (a, b)
            when String.equal a.Schema.cqual alias
                 && List.exists (Schema.column_equal b) v.N.n_keys ->
            Some a.Schema.cname
          | _ -> None)
        connecting
    in
    List.for_all (fun k -> List.exists (String.equal k) covered_pk) pk
  in
  let rec fixpoint current moved =
    let next =
      List.find_opt
        (fun (alias, table) ->
          removable (List.map fst current) alias table)
        current
    in
    match next with
    | None -> (List.map fst current, moved)
    | Some (alias, table) ->
      fixpoint
        (List.filter (fun (a, _) -> not (String.equal a alias)) current)
        (moved @ [ (alias, table) ])
  in
  fixpoint v.N.n_rels []
