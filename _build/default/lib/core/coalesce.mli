(** Simple coalescing grouping as a standalone operator-tree rewrite
    (paper, Section 4.2 and Figure 2b).

    [rewrite tree] matches

    {v Group g1 (Join [cond] R1 R2) v}

    and, when every aggregate of g1 is decomposable with arguments from R1,
    inserts a partial group-by under the join:

    {v Group g1' (Join [cond] (Group g2 (R1)) R2) v}

    where g2 groups R1 on g1's R1-side grouping columns plus every R1
    column the join predicates mention, computing partial aggregates, and
    g1' coalesces them (SUM of partial sums and counts, MIN of mins, …; AVG
    is recombined with a final projection).  Unlike invariant grouping, g1
    is {e not} moved — a new group-by is added, so no key condition on R2 is
    needed. *)

val rewrite : Logical.t -> Logical.t option
(** [None] when the shape or decomposability conditions do not hold. *)
