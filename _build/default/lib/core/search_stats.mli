(** Search-effort counters, for the "moderate increase in search space"
    experiment (paper Section 5.2, citing [CS94]). *)

type t = {
  join_plans : int;    (** joinplan() invocations: candidate joins costed *)
  group_plans : int;   (** early group-by placements considered *)
  entries : int;       (** DP table entries retained *)
  pullups : int;       (** pulled-up view variants Φ(V', W) optimized *)
}

val reset : unit -> unit
val snapshot : unit -> t

val count_join_plan : unit -> unit
val count_group_plan : unit -> unit
val count_entry : unit -> unit
val count_pullup : unit -> unit

val pp : Format.formatter -> t -> unit
