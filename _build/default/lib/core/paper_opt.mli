(** The paper's optimization algorithm for queries with aggregate views
    (Sections 5.3–5.4).

    For each view Q_i = G_i(V_i):
    + compute the minimal invariant set V_i'; the relations V_i - V_i' join
      the augmented outer set B' = B ∪ ⋃(V_i - V_i');
    + for every candidate pull-up set W ⊆ B' (restricted by the k-level
      pull-up bound and the shared-predicate requirement of Section 5.3),
      optimize the pulled-up single block Φ(V_i', W): joins over V_i' ∪ W
      with G_i' on top, whose grouping columns are extended with the keys
      (and outward-visible columns) of the W relations and whose Having
      clause absorbs the deferred predicates on aggregated columns
      (Definition 1);
    + in the second phase, enumerate consistent (disjoint) choices of W_i,
      joining the pulled-up views with the remaining B' relations, placing
      the outer group-by G_0 with the greedy conservative heuristic.

    The search space contains the traditional strategy (W_i = V_i - V_i'),
    so the chosen plan is never worse than {!Baseline}'s — in estimated
    cost, which is the sense of the paper's guarantee. *)

type options = {
  k_pullup : int;  (** max relations pulled through a view beyond V - V' *)
  require_shared_pred : bool;
      (** only pull a relation sharing a predicate with the view *)
  max_w_sets : int;  (** cap on candidate W sets per view *)
  max_combos : int;  (** cap on phase-2 (W_1..W_m) combinations *)
  bushy : bool;  (** enumerate bushy join trees too (extension; default off) *)
}

val default_options : options

type pulled = {
  p_view : string;  (** view alias *)
  p_w : (string * string) list;  (** the pulled set W (alias, table) *)
  p_entry : Dp.entry;  (** optimized Φ(V', W) *)
}

type report = {
  best : Dp.entry;
  chosen_w : (string * (string * string) list) list;
      (** per view: the W of the winning combination *)
  pulled_plans : pulled list;  (** all Φ(V', W) optimized in phase 1 *)
  minimal_sets : (string * string list) list;
      (** per view: aliases of the minimal invariant set *)
  combos_tried : int;
}

val optimize :
  Catalog.t -> work_mem:int -> opts:options -> Normalize.nquery -> report
(** @raise Invalid_argument on malformed input (unknown aliases etc.). *)
