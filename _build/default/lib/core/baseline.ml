module N = Normalize

let view_spec (v : N.nview) =
  {
    Grouping.gs_qual = v.N.n_alias;
    gs_keys = v.N.n_keys;
    gs_aggs = v.N.n_aggs;
    gs_having = v.N.n_having;
  }

let top_spec (nq : N.nquery) =
  {
    Grouping.gs_qual = "";
    gs_keys = nq.N.keys;
    gs_aggs = nq.N.aggs;
    gs_having = nq.N.having;
  }

let base_item (alias, table) =
  { Dp.covers = [ alias ]; access = Dp.A_base { alias; table } }

let optimize_view cat ~work_mem ~early ?(bushy = false) (v : N.nview) =
  Dp.optimize cat ~work_mem
    {
      Dp.items = List.map base_item v.N.n_rels;
      preds = v.N.n_preds;
      group = Some (view_spec v);
      early_grouping = early;
      bushy;
    }

let derived_of_view (v : N.nview) (entry : Dp.entry) =
  {
    Dp.covers = List.map fst v.N.n_rels @ [ v.N.n_alias ];
    access = Dp.A_derived { plan = entry.Dp.plan; out_key = Some v.N.n_keys };
  }

let view_items cat ~mode ~work_mem ?(bushy = false) (nq : N.nquery) =
  let early = match mode with `Traditional -> false | `Greedy -> true in
  List.map
    (fun v -> derived_of_view v (optimize_view cat ~work_mem ~early ~bushy v))
    nq.N.views
  @ List.map base_item nq.N.rels

let optimize cat ~work_mem ~mode ?(bushy = false) (nq : N.nquery) =
  let early = match mode with `Traditional -> false | `Greedy -> true in
  let items = view_items cat ~mode ~work_mem ~bushy nq in
  Dp.optimize cat ~work_mem
    {
      Dp.items;
      preds = nq.N.preds;
      group = (if nq.N.grouped then Some (top_spec nq) else None);
      early_grouping = early;
      bushy;
    }
