(** Predicate move-around (Levy–Mumick–Sagiv [LMS94], Mumick et al.
    [MFPR90]): propagate constant predicates along equality classes across
    query blocks.

    The paper treats this as the {e existing} inter-block technique that
    traditional optimizers already apply before optimizing each block
    locally (Section 1, Section 5.1), so it runs for every algorithm here;
    disabling it (see {!Optimizer.options}) isolates its contribution.

    Given the normalized query, equality conjuncts — both outer and
    view-local — induce equivalence classes over base columns; every
    constant comparison on a class member is replicated onto the other
    members.  An implied conjunct whose columns all belong to one view's
    relations is pushed into that view's predicate list (so even the
    block-at-a-time baseline benefits); the rest join the outer conjunct
    pool.  Aggregate-output columns never participate: a restriction on an
    aggregated value is a Having condition, not a movable predicate. *)

val apply : Normalize.nquery -> Normalize.nquery

val implied_predicates : Normalize.nquery -> Expr.pred list
(** The new conjuncts {!apply} would add (exposed for tests/experiments). *)
