(** Dynamic-programming join enumeration (the [Enumerate] algorithm of
    Section 5.1, after [SAC+79]) over linear join trees, extended with the
    {e greedy conservative heuristic} of Section 5.2: at every subset the
    optimizer may place the block's group-by early — either finally
    (invariant grouping) or as a partial aggregate (simple coalescing) — and
    keeps the early-grouped plan only when it is no more expensive and no
    wider than the plain join plan, which preserves the paper's
    never-worse-than-traditional guarantee.

    Items are either base relations or {e derived} relations (materialized
    views, pulled-up views); predicates are attached at the lowest subset
    that covers their aliases.  Access paths (sequential and index scans),
    join methods (block nested loops, index nested loops, hash, sort-merge)
    and orderings (a light interesting-orders Pareto set per subset) are
    enumerated; costs come from {!Cost_model}. *)

type access =
  | A_base of { alias : string; table : string }
  | A_derived of {
      plan : Physical.t;
      out_key : Schema.column list option;
          (** a key of the derived output (its grouping columns), used by
              the invariant-grouping legality check *)
    }

type item = { covers : string list; access : access }

type input = {
  items : item list;
  preds : Expr.pred list;
      (** every conjunct the block must apply (single-item conjuncts become
          scan filters) *)
  group : Grouping.group_spec option;  (** the block's group-by, if any *)
  early_grouping : bool;  (** enable the greedy conservative heuristic *)
  bushy : bool;
      (** also enumerate bushy join trees (composite inner sides).  The
          paper's space is linear join orders (Section 5.1, after
          [SAC+79]); this is the natural extension, kept off by default. *)
}

type gtag =
  | Ungrouped
  | Grouped_final
  | Grouped_partial of Grouping.coalesce

type entry = { plan : Physical.t; est : Cost_model.est; tag : gtag }

val optimize : Catalog.t -> work_mem:int -> input -> entry
(** Best finalized plan for the whole block: the group-by (if any) is
    guaranteed applied — early, partially+combined, or on top.
    @raise Invalid_argument on an empty item list. *)

val finish_partial :
  Grouping.group_spec -> Grouping.coalesce -> Physical.t -> Physical.t
(** Append the combining group-by (plus AVG recombination projection and the
    Having filter) to a plan that already contains the partial group-by. *)
