let dedup_columns cols =
  List.fold_left
    (fun acc c -> if List.exists (Schema.column_equal c) acc then acc else acc @ [ c ])
    [] cols

let rewrite tree =
  match tree with
  | Logical.Group ({ input = Logical.Join { left; right; cond }; _ } as g) ->
    let left_schema = Logical.schema left in
    let from_left (c : Schema.column) = Schema.mem left_schema c in
    let ok =
      List.for_all
        (fun a ->
          Aggregate.is_decomposable a
          && List.for_all from_left (Aggregate.arg_columns a))
        g.aggs
    in
    if not ok then None
    else begin
      let needed =
        List.concat_map Expr.pred_columns cond |> List.filter from_left
      in
      let partial_keys =
        dedup_columns (List.filter from_left g.keys @ needed)
      in
      let dec = List.map (Aggregate.decompose ~qual:g.agg_qual) g.aggs in
      let partial_aggs = List.concat_map (fun d -> d.Aggregate.partials) dec in
      let combine_aggs = List.concat_map (fun d -> d.Aggregate.combine) dec in
      let posts = List.filter_map (fun d -> d.Aggregate.post) dec in
      let g2 =
        Logical.Group
          { input = left; agg_qual = g.agg_qual; keys = partial_keys;
            aggs = partial_aggs; having = [] }
      in
      let joined = Logical.Join { left = g2; right; cond } in
      let g1' =
        Logical.Group
          { input = joined; agg_qual = g.agg_qual; keys = g.keys;
            aggs = combine_aggs;
            having = (if posts = [] then g.having else []) }
      in
      if posts = [] then Some g1'
      else begin
        (* Recombine AVG and restore the original output schema, then apply
           the Having clause over it. *)
        let key_cols = List.map (fun k -> (Expr.Col k, k)) g.keys in
        let agg_cols =
          List.map
            (fun (a : Aggregate.t) ->
              let out =
                Schema.column ~qual:g.agg_qual a.Aggregate.out_name
                  (Aggregate.result_type a)
              in
              match
                List.find_opt
                  (fun (_, name) -> String.equal name a.Aggregate.out_name)
                  posts
              with
              | Some (e, _) -> (e, out)
              | None -> (Expr.Col out, out))
            g.aggs
        in
        let projected = Logical.Project { input = g1'; cols = key_cols @ agg_cols } in
        match Expr.conjoin g.having with
        | None -> Some projected
        | Some p -> Some (Logical.Filter { input = projected; pred = p })
      end
    end
  | Logical.Scan _ | Logical.Filter _ | Logical.Join _ | Logical.Group _
  | Logical.Project _ ->
    None
