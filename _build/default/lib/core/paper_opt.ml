module N = Normalize

type options = {
  k_pullup : int;
  require_shared_pred : bool;
  max_w_sets : int;
  max_combos : int;
  bushy : bool;
}

let default_options =
  { k_pullup = 2; require_shared_pred = true; max_w_sets = 24; max_combos = 128;
    bushy = false }

type pulled = {
  p_view : string;
  p_w : (string * string) list;
  p_entry : Dp.entry;
}

type report = {
  best : Dp.entry;
  chosen_w : (string * (string * string) list) list;
  pulled_plans : pulled list;
  minimal_sets : (string * string list) list;
  combos_tried : int;
}

let base_item (alias, table) =
  { Dp.covers = [ alias ]; access = Dp.A_base { alias; table } }

let dedup_columns cols =
  List.fold_left
    (fun acc c -> if List.exists (Schema.column_equal c) acc then acc else acc @ [ c ])
    [] cols

(* All subsets of [pool] with at most [k] elements. *)
let rec bounded_subsets k = function
  | [] -> [ [] ]
  | x :: rest ->
    let without = bounded_subsets k rest in
    if k = 0 then without
    else without @ List.map (fun s -> x :: s) (bounded_subsets (k - 1) rest)

let optimize cat ~work_mem ~opts (nq : N.nquery) =
  let view_aliases = List.map (fun v -> v.N.n_alias) nq.N.views in
  let is_view_alias q = List.exists (String.equal q) view_aliases in
  let split_quals p =
    let quals = Expr.qualifiers p in
    List.partition is_view_alias quals
  in
  let all_preds = nq.N.preds @ List.concat_map (fun v -> v.N.n_preds) nq.N.views in
  let infos =
    List.map
      (fun v ->
        let vprime_aliases, moved = Grouping.minimal_invariant_set cat v in
        let vprime =
          List.filter
            (fun (a, _) -> List.exists (String.equal a) vprime_aliases)
            v.N.n_rels
        in
        (v, vprime, moved))
      nq.N.views
  in
  let bprime = nq.N.rels @ List.concat_map (fun (_, _, moved) -> moved) infos in

  (* Columns visible outside a phase-1 block: anything the rest of the query
     mentions.  Pulled W relations must export these through the group-by. *)
  let outward_cols_of preds_not_placed =
    List.concat_map Expr.pred_columns preds_not_placed
    @ List.concat_map (fun (e, _) -> Expr.columns e) nq.N.select
    @ nq.N.keys
    @ List.concat_map Aggregate.arg_columns nq.N.aggs
    @ List.concat_map Expr.pred_columns nq.N.having
  in

  (* ---- phase 1: optimize Phi(V', W) ---- *)
  let phase1 (v, vprime, _moved) w =
    let item_rels = vprime @ w in
    let item_aliases = List.map fst item_rels in
    let placeable p =
      let aggq, baseq = split_quals p in
      List.for_all (fun q -> List.exists (String.equal q) item_aliases) baseq
      && List.for_all (String.equal v.N.n_alias) aggq
    in
    let placed, not_placed = List.partition placeable all_preds in
    let joins, deferred =
      List.partition (fun p -> fst (split_quals p) = []) placed
    in
    (* Columns the deferred (Having) predicates mention must survive the
       group-by too: they are evaluated over its output. *)
    let outward =
      outward_cols_of not_placed @ List.concat_map Expr.pred_columns deferred
    in
    let w_keys =
      List.concat_map
        (fun (alias, table) ->
          let tbl = Catalog.table_exn cat table in
          let pk_cols =
            List.map
              (fun k ->
                let idx = Schema.find_exn tbl.Catalog.tschema k in
                Schema.column ~qual:alias k (Schema.get tbl.Catalog.tschema idx).Schema.cty)
              tbl.Catalog.primary_key
          in
          let needed =
            List.filter (fun (c : Schema.column) -> String.equal c.Schema.cqual alias) outward
          in
          pk_cols @ needed)
        w
    in
    let spec =
      {
        Grouping.gs_qual = v.N.n_alias;
        gs_keys = dedup_columns (v.N.n_keys @ w_keys);
        gs_aggs = v.N.n_aggs;
        gs_having = v.N.n_having @ deferred;
      }
    in
    if w <> [] then Search_stats.count_pullup ();
    let entry =
      Dp.optimize cat ~work_mem
        {
          Dp.items = List.map base_item item_rels;
          preds = joins;
          group = Some spec;
          early_grouping = true;
          bushy = opts.bushy;
        }
    in
    let item =
      {
        Dp.covers = item_aliases @ [ v.N.n_alias ];
        access = Dp.A_derived { plan = entry.Dp.plan; out_key = Some spec.Grouping.gs_keys };
      }
    in
    (entry, item, placed)
  in

  (* ---- candidate W sets per view ---- *)
  let w_sets (v, vprime, moved) =
    let taken (a, _) =
      List.exists (fun (a', _) -> String.equal a a') (vprime @ moved)
    in
    let view_side_aliases = List.map fst v.N.n_rels in
    let connected_to current (alias, _) =
      List.exists
        (fun p ->
          let aggq, baseq = split_quals p in
          List.exists (String.equal alias) baseq
          && (List.exists (fun q -> List.exists (String.equal q) current)
                (List.filter (fun q -> not (String.equal q alias)) baseq)
              || List.exists (String.equal v.N.n_alias) aggq))
        all_preds
    in
    let pool =
      List.filter
        (fun ((_, table) as r) ->
          (not (taken r))
          && (Catalog.table_exn cat table).Catalog.primary_key <> []
          && ((not opts.require_shared_pred) || connected_to view_side_aliases r))
        bprime
    in
    let moved_subsets = bounded_subsets (List.length moved) moved in
    let pull_subsets = bounded_subsets opts.k_pullup pool in
    let candidates =
      List.concat_map
        (fun ms -> List.map (fun ps -> ms @ ps) pull_subsets)
        moved_subsets
    in
    (* The traditional choice W = V - V' must always be present (this is the
       never-worse guarantee's witness), and goes first. *)
    let key w = List.sort compare (List.map fst w) in
    let seen = Hashtbl.create 16 in
    let uniq =
      List.filter
        (fun w ->
          let k = key w in
          if Hashtbl.mem seen k then false
          else begin
            Hashtbl.add seen k ();
            true
          end)
        (moved :: candidates)
    in
    let rec take k = function
      | [] -> []
      | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
    in
    take opts.max_w_sets uniq
  in

  (* ---- phase 2: enumerate consistent W choices ---- *)
  let per_view =
    List.map
      (fun info ->
        let sets = w_sets info in
        let cache = Hashtbl.create 8 in
        let get w =
          let k = List.sort compare (List.map fst w) in
          match Hashtbl.find_opt cache k with
          | Some r -> r
          | None ->
            let r = phase1 info w in
            Hashtbl.add cache k r;
            r
        in
        (info, sets, get))
      infos
  in
  let pulled_plans =
    List.concat_map
      (fun ((v, _, _), sets, get) ->
        List.map
          (fun w ->
            let entry, _, _ = get w in
            { p_view = v.N.n_alias; p_w = w; p_entry = entry })
          sets)
      per_view
  in
  let rec combos acc_choices = function
    | [] -> [ List.rev acc_choices ]
    | (info, sets, get) :: rest ->
      List.concat_map
        (fun w ->
          let disjoint =
            List.for_all
              (fun (_, w', _) ->
                List.for_all
                  (fun (a, _) -> not (List.exists (fun (a', _) -> String.equal a a') w'))
                  w)
              acc_choices
          in
          if disjoint then combos ((info, w, get) :: acc_choices) rest else [])
        sets
  in
  let all_combos =
    let rec take k = function
      | [] -> []
      | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
    in
    take opts.max_combos (combos [] per_view)
  in
  let top_spec =
    {
      Grouping.gs_qual = "";
      gs_keys = nq.N.keys;
      gs_aggs = nq.N.aggs;
      gs_having = nq.N.having;
    }
  in
  let eval_combo choices =
    let derived = List.map (fun (_, w, get) -> let _, item, _ = get w in item) choices in
    let consumed =
      List.concat_map (fun (_, w, get) -> let _, _, placed = get w in placed) choices
    in
    let taken_rels =
      List.concat_map (fun (_, w, _) -> List.map fst w) choices
    in
    let rest_rels =
      List.filter
        (fun (a, _) -> not (List.exists (String.equal a) taken_rels))
        bprime
    in
    let preds2 = List.filter (fun p -> not (List.memq p consumed)) all_preds in
    let entry =
      Dp.optimize cat ~work_mem
        {
          Dp.items = derived @ List.map base_item rest_rels;
          preds = preds2;
          group = (if nq.N.grouped then Some top_spec else None);
          early_grouping = true;
          bushy = opts.bushy;
        }
    in
    (entry, List.map (fun ((v, _, _), w, _) -> (v.N.n_alias, w)) choices)
  in
  match all_combos with
  | [] -> invalid_arg "Paper_opt.optimize: no combination enumerable"
  | first :: rest ->
    let best0 = eval_combo first in
    let best =
      List.fold_left
        (fun ((be, _) as acc) combo ->
          let (e, _) as r = eval_combo combo in
          if e.Dp.est.Cost_model.cost < be.Dp.est.Cost_model.cost then r else acc)
        best0 rest
    in
    let entry, chosen = best in
    {
      best = entry;
      chosen_w = chosen;
      pulled_plans;
      minimal_sets = List.map (fun (v, vprime, _) -> (v.N.n_alias, List.map fst vprime)) infos;
      combos_tried = List.length all_combos;
    }
