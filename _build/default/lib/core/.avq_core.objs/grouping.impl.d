lib/core/grouping.ml: Aggregate Catalog Expr List Normalize Schema String
