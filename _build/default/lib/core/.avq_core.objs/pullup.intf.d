lib/core/pullup.mli: Catalog Logical
