lib/core/predicate_transfer.ml: Expr List Normalize Option Schema String
