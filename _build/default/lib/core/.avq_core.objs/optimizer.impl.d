lib/core/optimizer.ml: Baseline Cost_model Dp Exec_ctx Executor Normalize Paper_opt Physical Predicate_transfer Search_stats
