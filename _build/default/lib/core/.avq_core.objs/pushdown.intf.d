lib/core/pushdown.mli: Catalog Logical
