lib/core/grouping.mli: Aggregate Catalog Expr Normalize Schema
