lib/core/search_stats.mli: Format
