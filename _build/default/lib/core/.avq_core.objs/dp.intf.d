lib/core/dp.mli: Catalog Cost_model Expr Grouping Physical Schema
