lib/core/search_stats.ml: Format
