lib/core/coalesce.ml: Aggregate Expr List Logical Schema String
