lib/core/normalize.ml: Aggregate Block Expr List Option Schema String
