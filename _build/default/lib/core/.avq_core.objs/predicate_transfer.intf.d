lib/core/predicate_transfer.mli: Expr Normalize
