lib/core/optimizer.mli: Block Buffer_pool Catalog Cost_model Paper_opt Physical Relation Search_stats
