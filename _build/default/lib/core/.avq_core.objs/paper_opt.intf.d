lib/core/paper_opt.mli: Catalog Dp Normalize
