lib/core/normalize.mli: Aggregate Block Catalog Expr Schema
