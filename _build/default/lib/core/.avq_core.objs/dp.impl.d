lib/core/dp.ml: Aggregate Array Catalog Cost_model Expr Float Grouping Hashtbl List Option Physical Printf Schema Search_stats String Value
