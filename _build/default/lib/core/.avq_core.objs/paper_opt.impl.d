lib/core/paper_opt.ml: Aggregate Catalog Cost_model Dp Expr Grouping Hashtbl List Normalize Schema Search_stats String
