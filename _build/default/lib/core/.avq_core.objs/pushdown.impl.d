lib/core/pushdown.ml: Aggregate Catalog Expr List Logical Schema String
