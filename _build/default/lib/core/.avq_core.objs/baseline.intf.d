lib/core/baseline.mli: Catalog Dp Normalize
