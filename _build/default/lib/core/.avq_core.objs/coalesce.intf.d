lib/core/coalesce.mli: Logical
