lib/core/pullup.ml: Aggregate Catalog Expr List Logical Option Schema
