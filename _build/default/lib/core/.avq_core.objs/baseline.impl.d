lib/core/baseline.ml: Dp Grouping List Normalize
