(** The traditional two-phase optimizer (paper, Section 5.1) and its greedy
    conservative refinement (Section 5.2).

    Phase 1 optimizes each aggregate view locally over its own relations and
    predicates; phase 2 joins the materialized views (treated as base
    relations) with the outer tables.  [`Traditional] places each group-by
    at the top of its block; [`Greedy] additionally lets {!Dp} place
    group-bys early inside each block (push-down only — no cross-block
    reordering, which is what the pull-up algorithm in {!Paper_opt} adds). *)

val optimize :
  Catalog.t ->
  work_mem:int ->
  mode:[ `Traditional | `Greedy ] ->
  ?bushy:bool ->
  Normalize.nquery ->
  Dp.entry
(** Best plan for the whole query, {e without} the final projection (the
    caller appends it; see {!Optimizer}). *)

val view_items :
  Catalog.t -> mode:[ `Traditional | `Greedy ] -> work_mem:int ->
  ?bushy:bool -> Normalize.nquery -> Dp.item list
(** The phase-2 items: one derived item per locally-optimized view plus the
    outer base tables (exposed for tests and experiments). *)
