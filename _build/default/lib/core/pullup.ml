(* Base-table access shapes allowed as R2: a scan, optionally filtered. *)
let rec base_access cat = function
  | Logical.Scan s -> Some (s.alias, s.table, s.schema)
  | Logical.Filter f -> base_access cat f.input
  | Logical.Join _ | Logical.Group _ | Logical.Project _ -> None

let mentions_agg_cols agg_cols p =
  List.exists
    (fun c -> List.exists (Schema.column_equal c) agg_cols)
    (Expr.pred_columns p)

let rewrite cat tree =
  match tree with
  | Logical.Join { left = Logical.Group g; right; cond } -> (
    match base_access cat right with
    | None -> None
    | Some (_alias, table, r2_schema) ->
      let tbl = Catalog.table_exn cat table in
      if tbl.Catalog.primary_key = [] then None
      else begin
        let agg_cols =
          List.map
            (fun (a : Aggregate.t) ->
              Schema.column ~qual:g.agg_qual a.Aggregate.out_name
                (Aggregate.result_type a))
            g.aggs
        in
        let deferred, kept = List.partition (mentions_agg_cols agg_cols) cond in
        let g2_keys = g.keys @ Schema.columns r2_schema in
        let joined = Logical.Join { left = g.input; right; cond = kept } in
        let g2 =
          Logical.Group
            {
              input = joined;
              agg_qual = g.agg_qual;
              keys = g2_keys;
              aggs = g.aggs;
              having = g.having @ deferred;
            }
        in
        (* Restore P1's output schema (group output ++ R2 columns). *)
        let p1_schema = Logical.schema tree in
        let cols =
          List.map (fun c -> (Expr.Col c, c)) (Schema.columns p1_schema)
        in
        Some (Logical.Project { input = g2; cols })
      end)
  | Logical.Scan _ | Logical.Filter _ | Logical.Join _ | Logical.Group _
  | Logical.Project _ ->
    None

let rec rewrite_anywhere cat tree =
  match rewrite cat tree with
  | Some t -> Some t
  | None -> (
    let try_child build child =
      Option.map build (rewrite_anywhere cat child)
    in
    match tree with
    | Logical.Filter f ->
      try_child (fun input -> Logical.Filter { f with input }) f.input
    | Logical.Project p ->
      try_child (fun input -> Logical.Project { p with input }) p.input
    | Logical.Group g ->
      try_child (fun input -> Logical.Group { g with input }) g.input
    | Logical.Join j -> (
      match rewrite_anywhere cat j.left with
      | Some left -> Some (Logical.Join { j with left })
      | None -> try_child (fun right -> Logical.Join { j with right }) j.right)
    | Logical.Scan _ -> None)
