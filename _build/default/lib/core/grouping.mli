(** Legality of group-by placement: the applicability conditions behind the
    paper's transformations.

    - {b Invariant grouping} (Section 4.1): a group-by may be evaluated over
      a prefix of the join order and {e not} re-evaluated later iff every
      later-joined relation joins N:1 on grouping columns (equality on a key
      of that relation) so that later joins only eliminate or preserve whole
      groups.
    - {b Simple coalescing} (Section 4.2): a {e partial} group-by may be
      inserted over a prefix when all aggregates are decomposable and the
      columns later joins need are made part of the partial grouping key.
    - {b Minimal invariant set} (Section 4.1): the fixpoint of removing
      relations from an aggregate view's SPJ part by invariant grouping. *)

type group_spec = {
  gs_qual : string;  (** qualifier for the aggregate output columns *)
  gs_keys : Schema.column list;
  gs_aggs : Aggregate.t list;
  gs_having : Expr.pred list;
}

(** What a later-joined item looks like to the legality check. *)
type later_item = {
  li_aliases : string list;  (** aliases the item covers *)
  li_key : Schema.column list option;
      (** a key of the item's output (base table PK, or a pulled view's
          grouping columns); [None] = no usable key *)
}

val covered : string list -> Schema.column -> bool
(** Is the column's qualifier among the given aliases? *)

val invariant_final_ok :
  spec:group_spec ->
  covered_aliases:string list ->
  remaining_items:later_item list ->
  remaining_preds:Expr.pred list ->
  bool
(** May [spec] be applied — finally, with Having — over a plan covering
    [covered_aliases], given the joins still to come?  Checks: keys and
    aggregate arguments available; every remaining predicate's covered-side
    columns are grouping keys; every remaining item is joined by equalities
    on grouping keys covering one of its keys. *)

type coalesce = {
  partial_keys : Schema.column list;  (** grouping keys of the added G2 *)
  partial_aggs : Aggregate.t list;
  combine_aggs : Aggregate.t list;  (** aggregates of the final G1 *)
  post : (Expr.t * string) list;  (** final expressions (AVG recombination) *)
}

val coalesce_at :
  spec:group_spec ->
  covered_aliases:string list ->
  remaining_preds:Expr.pred list ->
  coalesce option
(** The partial group-by (simple coalescing) applicable over a plan covering
    [covered_aliases], if any: all aggregate arguments must be available and
    decomposable.  The partial key is the covered part of [spec]'s keys plus
    every covered column that remaining predicates mention. *)

val minimal_invariant_set :
  Catalog.t -> Normalize.nview -> string list * (string * string) list
(** [(v', moved)] — aliases of the minimal invariant set, and the (alias,
    table) pairs that invariant grouping can move out of the view. *)
