(** The pull-up transformation as a standalone operator-tree rewrite
    (paper, Section 3, Definition 1 and Figure 1).

    [rewrite cat tree] matches the plan shape P1

    {v Join [cond] (Group g1 (V)) R2 v}

    where R2 is a base-table access with a declared primary key, and
    produces the equivalent plan P2

    {v Project (Group g2 (Join [cond'] V R2)) v}

    with, per Definition 1:
    + grouping columns of g2 = grouping columns of g1 ∪ all columns of R2
      (a superset of R2's key, all functionally determined by it);
    + the aggregates of g1 carried over unchanged;
    + join predicates on aggregated columns of g1 deferred to the Having
      clause of g2;
    + the remaining join predicates kept in the join;
    and a final projection restoring P1's exact output schema.

    The equivalence of P1 and P2 is exercised by property tests that run
    both trees through {!Logical.eval} on randomized instances. *)

val rewrite : Catalog.t -> Logical.t -> Logical.t option
(** [None] when the tree does not have the P1 shape or R2 lacks a key. *)

val rewrite_anywhere : Catalog.t -> Logical.t -> Logical.t option
(** Apply {!rewrite} at the topmost matching node of the tree. *)
