module N = Normalize

let same_col (a : Schema.column) (b : Schema.column) =
  String.equal a.Schema.cqual b.Schema.cqual && String.equal a.Schema.cname b.Schema.cname

let is_agg_col nq (c : Schema.column) =
  List.exists
    (fun v -> List.exists (same_col c) v.N.n_agg_cols)
    nq.N.views

let all_preds nq = nq.N.preds @ List.concat_map (fun v -> v.N.n_preds) nq.N.views

(* Union-find as a list of classes (queries are small). *)
let equality_classes nq =
  let classes : Schema.column list list ref = ref [] in
  let class_of c = List.find_opt (List.exists (same_col c)) !classes in
  let add c = if class_of c = None then classes := [ c ] :: !classes in
  List.iter
    (fun p ->
      match Expr.as_equijoin p with
      | Some (a, b) when (not (is_agg_col nq a)) && not (is_agg_col nq b) ->
        add a;
        add b;
        let ca = Option.get (class_of a) and cb = Option.get (class_of b) in
        if ca != cb then
          classes := (ca @ cb) :: List.filter (fun cl -> cl != ca && cl != cb) !classes
      | _ -> ())
    (all_preds nq);
  !classes

(* Constant comparisons eligible for transfer, as (column, rebuild). *)
let constant_comparisons nq =
  List.filter_map
    (fun p ->
      match p with
      | Expr.Cmp (op, Expr.Col c, (Expr.Const _ as k)) when not (is_agg_col nq c) ->
        Some (c, fun c' -> Expr.Cmp (op, Expr.Col c', k))
      | Expr.Cmp (op, (Expr.Const _ as k), Expr.Col c) when not (is_agg_col nq c) ->
        Some (c, fun c' -> Expr.Cmp (op, k, Expr.Col c'))
      | _ -> None)
    (all_preds nq)

let implied_predicates nq =
  let classes = equality_classes nq in
  let existing = all_preds nq in
  let fresh = ref [] in
  List.iter
    (fun (c, rebuild) ->
      match List.find_opt (List.exists (same_col c)) classes with
      | None -> ()
      | Some cls ->
        List.iter
          (fun c' ->
            if not (same_col c c') then begin
              let p = rebuild c' in
              if
                (not (List.mem p existing))
                && not (List.mem p !fresh)
              then fresh := p :: !fresh
            end)
          cls)
    (constant_comparisons nq);
  List.rev !fresh

let apply nq =
  let fresh = implied_predicates nq in
  if fresh = [] then nq
  else begin
    (* A conjunct whose aliases all belong to one view's relations is moved
       into that view; others stay in the outer pool. *)
    let owner p =
      let quals = Expr.qualifiers p in
      List.find_opt
        (fun v ->
          List.for_all
            (fun q -> List.exists (fun (a, _) -> String.equal a q) v.N.n_rels)
            quals)
        nq.N.views
    in
    let for_view, for_outer =
      List.partition (fun p -> owner p <> None) fresh
    in
    let views =
      List.map
        (fun v ->
          let mine =
            List.filter
              (fun p -> match owner p with
                 | Some o -> String.equal o.N.n_alias v.N.n_alias
                 | None -> false)
              for_view
          in
          { v with N.n_preds = v.N.n_preds @ mine })
        nq.N.views
    in
    { nq with N.views; preds = nq.N.preds @ for_outer }
  end
