(** SQL data types supported by the engine.

    The paper's query class (Section 2) assumes no NULLs, so every column is
    implicitly NOT NULL and there is no nullability flag. *)

type t =
  | Int     (** 64-bit signed integer *)
  | Float   (** double-precision float *)
  | String  (** variable-length character string *)
  | Bool    (** boolean *)
  | Date    (** date, stored as days since epoch *)

val equal : t -> t -> bool
val compare : t -> t -> int

val is_numeric : t -> bool
(** [is_numeric t] is true for {!Int}, {!Float} and {!Date} (dates support
    ordering and difference arithmetic). *)

val to_string : t -> string
val pp : Format.formatter -> t -> unit

val byte_width : t -> int
(** [byte_width t] is the width in bytes used by the storage layer and the
    cost model for a column of type [t].  Strings are budgeted at a fixed
    average width. *)
