type column = { cqual : string; cname : string; cty : Datatype.t }

type t = column array

exception Ambiguous of string

let column ?(qual = "") cname cty = { cqual = qual; cname; cty }
let of_columns cols = Array.of_list cols
let columns t = Array.to_list t
let arity = Array.length
let get t i = t.(i)
let types t = Array.map (fun c -> c.cty) t
let append a b = Array.append a b
let project t idxs = Array.of_list (List.map (fun i -> t.(i)) idxs)

let column_equal a b =
  String.equal a.cqual b.cqual && String.equal a.cname b.cname
  && Datatype.equal a.cty b.cty

let matches ~qual ~name c =
  String.equal c.cname name
  && (match qual with None -> true | Some q -> String.equal c.cqual q)

let find t ?qual name =
  let hits = ref [] in
  Array.iteri (fun i c -> if matches ~qual ~name c then hits := i :: !hits) t;
  match !hits with
  | [] -> None
  | [ i ] -> Some i
  | _ :: _ :: _ ->
    (* Same qualified column appearing twice (self-join output) is resolved
       to its first occurrence; a bare name matching distinct qualifiers is
       ambiguous. *)
    let cs = List.map (fun i -> t.(i)) !hits in
    let first = List.hd cs in
    if List.for_all (fun c -> String.equal c.cqual first.cqual) cs then
      Some (List.fold_left min (List.hd !hits) !hits)
    else raise (Ambiguous name)

let find_exn t ?qual name =
  match find t ?qual name with Some i -> i | None -> raise Not_found

let index_of_column t c =
  let n = Array.length t in
  let rec loop i =
    if i >= n then None
    else if String.equal t.(i).cqual c.cqual && String.equal t.(i).cname c.cname
    then Some i
    else loop (i + 1)
  in
  loop 0

let mem t c = index_of_column t c <> None

let byte_width t =
  Array.fold_left (fun acc c -> acc + Datatype.byte_width c.cty) 0 t

let rename_qualifier t q = Array.map (fun c -> { c with cqual = q }) t

let equal a b = Array.length a = Array.length b && Array.for_all2 column_equal a b

let column_to_string c =
  if String.equal c.cqual "" then c.cname else c.cqual ^ "." ^ c.cname

let pp_column ppf c =
  Format.fprintf ppf "%s:%a" (column_to_string c) Datatype.pp c.cty

let pp ppf t =
  Format.fprintf ppf "(%a)"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       pp_column)
    (columns t)
