type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Date of int

exception Type_error of string

let type_error fmt = Format.kasprintf (fun s -> raise (Type_error s)) fmt

let type_of = function
  | Int _ -> Datatype.Int
  | Float _ -> Datatype.Float
  | String _ -> Datatype.String
  | Bool _ -> Datatype.Bool
  | Date _ -> Datatype.Date

let to_string = function
  | Int i -> string_of_int i
  | Float f -> Printf.sprintf "%g" f
  | String s -> s
  | Bool b -> string_of_bool b
  | Date d -> Printf.sprintf "date:%d" d

let pp ppf v = Format.pp_print_string ppf (to_string v)

let compare a b =
  match a, b with
  | Int x, Int y -> Stdlib.compare x y
  | Float x, Float y -> Stdlib.compare x y
  | Int x, Float y -> Stdlib.compare (float_of_int x) y
  | Float x, Int y -> Stdlib.compare x (float_of_int y)
  | String x, String y -> Stdlib.compare x y
  | Bool x, Bool y -> Stdlib.compare x y
  | Date x, Date y -> Stdlib.compare x y
  | (Int _ | Float _ | String _ | Bool _ | Date _), _ ->
    type_error "compare: %s vs %s" (to_string a) (to_string b)

let equal a b = compare a b = 0

let hash = function
  | Int i -> Hashtbl.hash (0, i)
  | Float f ->
    (* Hash a float that is integral like the equal Int, so that mixed-type
       join keys hash consistently with [compare]. *)
    if Float.is_integer f && Float.abs f < 1e18 then Hashtbl.hash (0, int_of_float f)
    else Hashtbl.hash (1, f)
  | String s -> Hashtbl.hash (2, s)
  | Bool b -> Hashtbl.hash (3, b)
  | Date d -> Hashtbl.hash (4, d)

let to_float = function
  | Int i -> float_of_int i
  | Float f -> f
  | Date d -> float_of_int d
  | (String _ | Bool _) as v -> type_error "to_float: %s" (to_string v)

let arith name int_op float_op a b =
  match a, b with
  | Int x, Int y -> Int (int_op x y)
  | (Int _ | Float _), (Int _ | Float _) -> Float (float_op (to_float a) (to_float b))
  | Date x, Int y -> Date (int_op x y)
  | Date x, Date y -> Int (int_op x y)
  | (Int _ | Float _ | String _ | Bool _ | Date _), _ ->
    type_error "%s: %s and %s" name (to_string a) (to_string b)

let add a b = arith "add" ( + ) ( +. ) a b
let sub a b = arith "sub" ( - ) ( -. ) a b
let mul a b = arith "mul" ( * ) ( *. ) a b

let div a b =
  match a, b with
  | (Int _ | Float _), (Int _ | Float _) ->
    let d = to_float b in
    if d = 0. then type_error "div: division by zero" else Float (to_float a /. d)
  | (Int _ | Float _ | String _ | Bool _ | Date _), _ ->
    type_error "div: %s and %s" (to_string a) (to_string b)

let min_value a b = if compare a b <= 0 then a else b
let max_value a b = if compare a b >= 0 then a else b
