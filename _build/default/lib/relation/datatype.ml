type t = Int | Float | String | Bool | Date

let equal a b =
  match a, b with
  | Int, Int | Float, Float | String, String | Bool, Bool | Date, Date -> true
  | (Int | Float | String | Bool | Date), _ -> false

let rank = function Int -> 0 | Float -> 1 | String -> 2 | Bool -> 3 | Date -> 4
let compare a b = Stdlib.compare (rank a) (rank b)

let is_numeric = function
  | Int | Float | Date -> true
  | String | Bool -> false

let to_string = function
  | Int -> "INT"
  | Float -> "FLOAT"
  | String -> "STRING"
  | Bool -> "BOOL"
  | Date -> "DATE"

let pp ppf t = Format.pp_print_string ppf (to_string t)

(* Average in-page width; strings are budgeted at 16 bytes which matches the
   synthetic workloads' short identifiers. *)
let byte_width = function
  | Int -> 8
  | Float -> 8
  | String -> 16
  | Bool -> 1
  | Date -> 4
