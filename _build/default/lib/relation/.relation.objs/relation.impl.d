lib/relation/relation.ml: Array Format List Schema String Tuple Value
