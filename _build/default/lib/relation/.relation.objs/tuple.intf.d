lib/relation/tuple.mli: Format Value
