lib/relation/value.ml: Datatype Float Format Hashtbl Printf Stdlib
