lib/relation/tuple.ml: Array Format List Stdlib String Value
