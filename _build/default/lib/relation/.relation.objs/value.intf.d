lib/relation/value.mli: Datatype Format
