lib/relation/schema.mli: Datatype Format
