lib/relation/datatype.mli: Format
