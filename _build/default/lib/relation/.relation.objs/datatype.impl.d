lib/relation/datatype.ml: Format Stdlib
