lib/relation/schema.ml: Array Datatype Format List String
