type t = Value.t array

let make = Array.of_list
let arity = Array.length
let get t i = t.(i)
let concat = Array.append
let project t idxs = Array.of_list (List.map (fun i -> t.(i)) idxs)
let project_arr t idxs = Array.map (fun i -> t.(i)) idxs

let compare_at cols a b =
  let n = Array.length cols in
  let rec loop i =
    if i >= n then 0
    else
      let c = Value.compare a.(cols.(i)) b.(cols.(i)) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

let compare a b =
  let n = Array.length a in
  let c = Stdlib.compare n (Array.length b) in
  if c <> 0 then c
  else
    let rec loop i =
      if i >= n then 0
      else
        let c = Value.compare a.(i) b.(i) in
        if c <> 0 then c else loop (i + 1)
    in
    loop 0

let equal a b = compare a b = 0

let hash_at cols t =
  Array.fold_left (fun acc i -> (acc * 31) + Value.hash t.(i)) 17 cols

let to_string t =
  "[" ^ String.concat "; " (Array.to_list (Array.map Value.to_string t)) ^ "]"

let pp ppf t = Format.pp_print_string ppf (to_string t)
