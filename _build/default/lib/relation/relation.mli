(** In-memory relations (multisets of tuples with a schema).

    Used as the materialized form of query results and as the reference
    representation in tests; on-disk relations live in [avq.storage]. *)

type t

val create : Schema.t -> Tuple.t list -> t
val schema : t -> Schema.t
val tuples : t -> Tuple.t list
val cardinality : t -> int
val is_empty : t -> bool

val iter : (Tuple.t -> unit) -> t -> unit
val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a
val filter : (Tuple.t -> bool) -> t -> t
val map_tuples : Schema.t -> (Tuple.t -> Tuple.t) -> t -> t
val project : t -> int list -> t
val sort_by : int array -> t -> t

val multiset_equal : t -> t -> bool
(** Bag equality of the tuple contents (schemas are not compared: plans that
    compute the same result may label columns differently). *)

val pp : Format.formatter -> t -> unit
(** Render as an aligned ASCII table with a header row. *)
