(** Tuples: fixed-arity arrays of values. *)

type t = Value.t array

val make : Value.t list -> t
val arity : t -> int
val get : t -> int -> Value.t
val concat : t -> t -> t
val project : t -> int list -> t
val project_arr : t -> int array -> t

val compare_at : int array -> t -> t -> int
(** [compare_at cols a b] compares lexicographically on positions [cols]. *)

val compare : t -> t -> int
(** Full lexicographic comparison (both tuples must have equal arity). *)

val equal : t -> t -> bool
val hash_at : int array -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string
