(** Schemas: ordered lists of typed, qualified columns.

    A column is identified by an optional table qualifier and a name.
    Operator outputs keep qualifiers so that the optimizer can trace a column
    back to its base relation (needed by the pull-up transformation, which
    must locate key columns of a joined relation). *)

type column = {
  cqual : string;  (** table or view alias this column comes from *)
  cname : string;  (** column name within the qualifier *)
  cty : Datatype.t;
}

type t

val column : ?qual:string -> string -> Datatype.t -> column
(** [column ~qual name ty] builds a column; [qual] defaults to ["" ]. *)

val of_columns : column list -> t
val columns : t -> column list
val arity : t -> int
val get : t -> int -> column
val types : t -> Datatype.t array

val append : t -> t -> t
(** [append a b] is the schema of the concatenation of tuples of [a] and
    [b] (join output). *)

val project : t -> int list -> t
(** [project s idxs] keeps columns at positions [idxs], in that order. *)

val find : t -> ?qual:string -> string -> int option
(** [find s ~qual name] resolves a column reference.  Without [qual], the
    name must be unambiguous; {!Ambiguous} is raised if two columns match. *)

exception Ambiguous of string

val find_exn : t -> ?qual:string -> string -> int
(** Like {!find} but raises [Not_found]. *)

val index_of_column : t -> column -> int option
(** Position of an exactly-matching (qualifier, name) column. *)

val mem : t -> column -> bool

val byte_width : t -> int
(** Total row width in bytes, as used by the storage layer and cost model. *)

val rename_qualifier : t -> string -> t
(** [rename_qualifier s q] re-qualifies every column with [q] (view
    materialization: the view's output columns belong to the view alias). *)

val equal : t -> t -> bool
val column_equal : column -> column -> bool
val pp_column : Format.formatter -> column -> unit
val pp : Format.formatter -> t -> unit
val column_to_string : column -> string
