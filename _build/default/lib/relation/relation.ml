type t = { schema : Schema.t; tuples : Tuple.t list }

let create schema tuples = { schema; tuples }
let schema t = t.schema
let tuples t = t.tuples
let cardinality t = List.length t.tuples
let is_empty t = t.tuples = []

let iter f t = List.iter f t.tuples
let fold f init t = List.fold_left f init t.tuples
let filter p t = { t with tuples = List.filter p t.tuples }
let map_tuples schema f t = { schema; tuples = List.map f t.tuples }

let project t idxs =
  {
    schema = Schema.project t.schema idxs;
    tuples = List.map (fun tup -> Tuple.project tup idxs) t.tuples;
  }

let sort_by cols t =
  { t with tuples = List.stable_sort (Tuple.compare_at cols) t.tuples }

let multiset_equal a b =
  cardinality a = cardinality b
  &&
  let sa = List.sort Tuple.compare a.tuples in
  let sb = List.sort Tuple.compare b.tuples in
  List.for_all2 (fun x y -> Tuple.equal x y) sa sb

let pp ppf t =
  let header =
    List.map Schema.column_to_string (Schema.columns t.schema)
  in
  let rows = List.map (fun tup ->
      Array.to_list (Array.map Value.to_string tup)) t.tuples
  in
  let ncols = List.length header in
  let widths = Array.make ncols 0 in
  let measure row =
    List.iteri (fun i cell -> widths.(i) <- max widths.(i) (String.length cell)) row
  in
  measure header;
  List.iter measure rows;
  let pp_row ppf row =
    List.iteri
      (fun i cell ->
        if i > 0 then Format.fprintf ppf " | ";
        Format.fprintf ppf "%-*s" widths.(i) cell)
      row
  in
  pp_row ppf header;
  Format.pp_print_newline ppf ();
  let total = Array.fold_left ( + ) 0 widths + (3 * (ncols - 1)) in
  Format.pp_print_string ppf (String.make (max total 1) '-');
  Format.pp_print_newline ppf ();
  List.iter
    (fun row ->
      pp_row ppf row;
      Format.pp_print_newline ppf ())
    rows;
  Format.fprintf ppf "(%d rows)" (List.length rows)
