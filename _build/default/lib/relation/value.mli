(** Runtime values.

    A value is a dynamically-tagged scalar.  The database contains no NULLs
    (paper, Section 2), so there is no null constructor; absence must be
    modelled at a higher level if ever needed. *)

type t =
  | Int of int
  | Float of float
  | String of string
  | Bool of bool
  | Date of int  (** days since 1970-01-01 *)

exception Type_error of string
(** Raised by operations applied to values of incompatible types. *)

val type_of : t -> Datatype.t

val compare : t -> t -> int
(** Total order.  Int and Float compare numerically with each other; values
    of structurally different types raise {!Type_error} — the binder
    guarantees well-typed comparisons, so a cross-type comparison signals an
    engine bug. *)

val equal : t -> t -> bool
val hash : t -> int

val add : t -> t -> t
val sub : t -> t -> t
val mul : t -> t -> t
val div : t -> t -> t
(** Numeric arithmetic.  Int op Int stays Int except [div] which promotes to
    Float (SQL-92 would keep Int, but Float avoids surprising truncation in
    AVG-style arithmetic and is what the workloads expect). *)

val to_float : t -> float
(** Numeric coercion; raises {!Type_error} on strings and bools. *)

val min_value : t -> t -> t
val max_value : t -> t -> t

val to_string : t -> string
val pp : Format.formatter -> t -> unit
