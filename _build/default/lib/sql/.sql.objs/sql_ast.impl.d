lib/sql/sql_ast.ml: Aggregate Expr
