lib/sql/lexer.mli:
