lib/sql/binder.mli: Block Catalog Sql_ast
