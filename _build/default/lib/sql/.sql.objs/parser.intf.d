lib/sql/parser.mli: Sql_ast
