lib/sql/binder.ml: Aggregate Block Catalog Expr Format List Option Parser Printf Schema Sql_ast String Value
