lib/sql/pretty.mli: Sql_ast
