lib/sql/pretty.ml: Aggregate Buffer Expr List Printf Sql_ast String
