lib/sql/parser.ml: Aggregate Array Expr Lexer List Printf Sql_ast String
