(** Hand-written SQL lexer. *)

type token =
  | IDENT of string
  | INT of int
  | FLOAT of float
  | STRING of string
  | KW of string  (** upper-cased keyword: SELECT, FROM, ... *)
  | LPAREN
  | RPAREN
  | COMMA
  | DOT
  | SEMI
  | STAR
  | PLUS
  | MINUS
  | SLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

exception Lex_error of string * int  (** message, character offset *)

val tokenize : string -> (token * int) array
(** Tokens with their starting offsets; ends with [EOF].
    @raise Lex_error on an unrecognized character or unterminated string. *)

val token_to_string : token -> string
