(** Recursive-descent parser for the supported SQL subset:

    {v
    script    := statement (';' statement)* ';'?
    statement := CREATE VIEW name ['(' cols ')'] AS select | select
    select    := SELECT items FROM refs [WHERE cond]
                 [GROUP BY cols] [HAVING cond]
    items     := item (',' item);  item := expr [AS name] | agg [AS name]
    agg       := COUNT '(' '*' ')' | (COUNT|SUM|AVG|MIN|MAX) '(' expr ')'
    refs      := name [AS? alias] (',' ...)
    cond      := or-tree of comparisons; operands are expressions,
                 aggregates (HAVING), or a parenthesized scalar subquery
                 (WHERE, for nested-query flattening)
    expr      := arithmetic over columns and literals
    v} *)

exception Parse_error of string * int  (** message, character offset *)

val parse_script : string -> Sql_ast.script
val parse_select : string -> Sql_ast.select
(** @raise Parse_error / Lexer.Lex_error on malformed input. *)
