(** Render SQL ASTs back to text (used by the CLI and round-trip tests:
    [parse (print (parse s))] must equal [parse s]). *)

val expr_to_string : Sql_ast.sexpr -> string
val cond_to_string : Sql_ast.cond -> string
val select_to_string : Sql_ast.select -> string
val statement_to_string : Sql_ast.statement -> string
val script_to_string : Sql_ast.script -> string
