(** The binder: resolves a parsed script against a catalog and lowers it to
    the canonical multi-block form {!Block.query} (Figure 3).

    Handled here:
    - name resolution (qualified and bare columns, ambiguity detection);
    - CREATE VIEW registration; aggregate views referenced in FROM become
      {!Block.view}s, with their internal aliases renamed
      ["<outer alias>_<inner alias>"] so aliases stay globally unique;
    - SPJ views (no GROUP BY) are {e inlined} into the referencing block —
      the traditional flattening the paper contrasts against;
    - HAVING aggregate references are matched to select-list aggregates (or
      added as hidden aggregates);
    - correlated scalar aggregate subqueries in WHERE are flattened à la
      Kim [Kim82] into a join with a synthesized aggregate view grouped on
      the correlation columns (COUNT subqueries are rejected: the classic
      count bug makes the plain join transformation unsound for them). *)

exception Bind_error of string

val bind_script : Catalog.t -> Sql_ast.script -> Block.query
(** Process view definitions in order; the last statement must be a SELECT.
    @raise Bind_error on resolution or well-formedness failures. *)

val bind_sql : Catalog.t -> string -> Block.query
(** Parse and bind a script given as text. *)
