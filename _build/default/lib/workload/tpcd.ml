type params = {
  customers : int;
  orders_per_customer : int;
  lines_per_order : int;
  parts : int;
  suppliers : int;
  nations : int;
  seed : int;
  frames : int;
}

let default_params =
  {
    customers = 300;
    orders_per_customer = 5;
    lines_per_order = 4;
    parts = 200;
    suppliers = 50;
    nations = 10;
    seed = 1234;
    frames = 256;
  }

let load ?(params = default_params) () =
  let rng = Rng.create ~seed:params.seed in
  let cat = Catalog.create ~frames:params.frames () in
  let customers =
    List.init params.customers (fun i ->
        Tuple.make
          [
            Value.Int i;
            Value.Int (Rng.int rng params.nations);
            Value.Int (Rng.in_range rng 0 10_000);
            Value.String (Rng.pick rng [ "BUILDING"; "AUTO"; "MACHINERY" ]);
          ])
  in
  ignore
    (Catalog.add_table cat ~name:"customer"
       ~columns:
         [ ("ck", Datatype.Int); ("nation", Datatype.Int);
           ("acctbal", Datatype.Int); ("mkt", Datatype.String) ]
       ~pk:[ "ck" ] ~index:[ "nation" ] customers);
  let norders = params.customers * params.orders_per_customer in
  let orders =
    List.init norders (fun i ->
        Tuple.make
          [
            Value.Int i;
            Value.Int (Rng.int rng params.customers);
            Value.Date (Rng.in_range rng 8000 11000);
            Value.Int (Rng.in_range rng 100 50_000);
          ])
  in
  ignore
    (Catalog.add_table cat ~name:"orders"
       ~columns:
         [ ("ok", Datatype.Int); ("ck", Datatype.Int); ("odate", Datatype.Date);
           ("totalprice", Datatype.Int) ]
       ~pk:[ "ok" ] ~index:[ "ck" ] ~cluster:"ck" orders);
  let nlines = norders * params.lines_per_order in
  let lineitems =
    List.init nlines (fun i ->
        Tuple.make
          [
            Value.Int i;
            Value.Int (Rng.int rng norders);
            Value.Int (Rng.int rng params.parts);
            Value.Int (Rng.in_range rng 1 50);
            Value.Int (Rng.in_range rng 100 10_000);
            Value.Float (float_of_int (Rng.in_range rng 0 10) /. 100.);
          ])
  in
  ignore
    (Catalog.add_table cat ~name:"lineitem"
       ~columns:
         [ ("lk", Datatype.Int); ("ok", Datatype.Int); ("pk", Datatype.Int);
           ("qty", Datatype.Int); ("price", Datatype.Int);
           ("discount", Datatype.Float) ]
       ~pk:[ "lk" ] ~index:[ "ok"; "pk" ] ~cluster:"ok" lineitems);
  let part_rows =
    List.init params.parts (fun i ->
        Tuple.make
          [
            Value.Int i;
            Value.Int (Rng.int rng 5);
            Value.Int (Rng.in_range rng 1 50);
            Value.Int (Rng.in_range rng 900 2000);
          ])
  in
  ignore
    (Catalog.add_table cat ~name:"part"
       ~columns:
         [ ("pk", Datatype.Int); ("brand", Datatype.Int); ("size", Datatype.Int);
           ("retail", Datatype.Int) ]
       ~pk:[ "pk" ] part_rows);
  let supplier_rows =
    List.init params.suppliers (fun i ->
        Tuple.make
          [
            Value.Int i;
            Value.Int (Rng.int rng params.nations);
            Value.Int (Rng.in_range rng 0 10_000);
          ])
  in
  ignore
    (Catalog.add_table cat ~name:"supplier"
       ~columns:
         [ ("sk", Datatype.Int); ("nation", Datatype.Int); ("acctbal", Datatype.Int) ]
       ~pk:[ "sk" ] supplier_rows);
  Catalog.add_foreign_key cat ~from:("orders", "ck") ~refs:("customer", "ck");
  Catalog.add_foreign_key cat ~from:("lineitem", "ok") ~refs:("orders", "ok");
  Catalog.add_foreign_key cat ~from:("lineitem", "pk") ~refs:("part", "pk");
  cat

let icol ~qual name = Schema.column ~qual name Datatype.Int

let q_big_spenders ?(nation = 3) () =
  let avg_order =
    Aggregate.make Aggregate.Avg ~arg:(Expr.Col (icol ~qual:"o" "totalprice")) "avgval"
  in
  let view =
    {
      Block.v_alias = "v";
      v_rels = [ { Block.r_alias = "o"; r_table = "orders" } ];
      v_preds = [];
      v_keys = [ icol ~qual:"o" "ck" ];
      v_aggs = [ avg_order ];
      v_having = [];
      v_out = [ Block.Out_key (icol ~qual:"o" "ck", "ck"); Block.Out_agg avg_order ];
    }
  in
  {
    Block.q_views = [ view ];
    q_rels = [ { Block.r_alias = "c"; r_table = "customer" } ];
    q_preds =
      [
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"c" "ck"), Expr.Col (icol ~qual:"v" "ck"));
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"c" "nation"), Expr.int nation);
        Expr.Cmp
          ( Expr.Lt,
            Expr.Col (icol ~qual:"c" "acctbal"),
            Expr.Col (Schema.column ~qual:"v" "avgval" Datatype.Float) );
      ];
    q_grouped = false;
    q_keys = [];
    q_aggs = [];
    q_having = [];
    q_select =
      [
        Block.Sel_col (icol ~qual:"c" "ck", "ck");
        Block.Sel_col (icol ~qual:"c" "acctbal", "acctbal");
      ];
    q_order = [];
    q_limit = None;
  }

let q_small_quantity_parts ?(brand = 2) ?(factor = 0.5) () =
  let avg_qty =
    Aggregate.make Aggregate.Avg ~arg:(Expr.Col (icol ~qual:"l2" "qty")) "avgqty"
  in
  let view =
    {
      Block.v_alias = "v";
      v_rels = [ { Block.r_alias = "l2"; r_table = "lineitem" } ];
      v_preds = [];
      v_keys = [ icol ~qual:"l2" "pk" ];
      v_aggs = [ avg_qty ];
      v_having = [];
      v_out = [ Block.Out_key (icol ~qual:"l2" "pk", "pk"); Block.Out_agg avg_qty ];
    }
  in
  let total =
    Aggregate.make Aggregate.Sum ~arg:(Expr.Col (icol ~qual:"l" "price")) "total"
  in
  {
    Block.q_views = [ view ];
    q_rels =
      [
        { Block.r_alias = "l"; r_table = "lineitem" };
        { Block.r_alias = "p"; r_table = "part" };
      ];
    q_preds =
      [
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"l" "pk"), Expr.Col (icol ~qual:"p" "pk"));
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"p" "pk"), Expr.Col (icol ~qual:"v" "pk"));
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"p" "brand"), Expr.int brand);
        Expr.Cmp
          ( Expr.Lt,
            Expr.Col (icol ~qual:"l" "qty"),
            Expr.Binop
              ( Expr.Mul,
                Expr.flt factor,
                Expr.Col (Schema.column ~qual:"v" "avgqty" Datatype.Float) ) );
      ];
    q_grouped = true;
    q_keys = [];
    q_aggs = [ total ];
    q_having = [];
    q_select = [ Block.Sel_agg total ];
    q_order = [];
    q_limit = None;
  }

let q_two_views () =
  let order_value =
    Aggregate.make Aggregate.Sum ~arg:(Expr.Col (icol ~qual:"o2" "totalprice")) "ordval"
  in
  let v1 =
    {
      Block.v_alias = "v1";
      v_rels = [ { Block.r_alias = "o2"; r_table = "orders" } ];
      v_preds = [];
      v_keys = [ icol ~qual:"o2" "ck" ];
      v_aggs = [ order_value ];
      v_having = [];
      v_out = [ Block.Out_key (icol ~qual:"o2" "ck", "ck"); Block.Out_agg order_value ];
    }
  in
  let line_rev =
    Aggregate.make Aggregate.Sum ~arg:(Expr.Col (icol ~qual:"l2" "price")) "linerev"
  in
  let v2 =
    {
      Block.v_alias = "v2";
      v_rels = [ { Block.r_alias = "l2"; r_table = "lineitem" } ];
      v_preds = [];
      v_keys = [ icol ~qual:"l2" "ok" ];
      v_aggs = [ line_rev ];
      v_having = [];
      v_out = [ Block.Out_key (icol ~qual:"l2" "ok", "ok"); Block.Out_agg line_rev ];
    }
  in
  {
    Block.q_views = [ v1; v2 ];
    q_rels =
      [
        { Block.r_alias = "c"; r_table = "customer" };
        { Block.r_alias = "o"; r_table = "orders" };
      ];
    q_preds =
      [
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"c" "ck"), Expr.Col (icol ~qual:"o" "ck"));
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"c" "ck"), Expr.Col (icol ~qual:"v1" "ck"));
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"o" "ok"), Expr.Col (icol ~qual:"v2" "ok"));
        Expr.Cmp (Expr.Eq, Expr.Col (icol ~qual:"c" "nation"), Expr.int 1);
        Expr.Cmp
          ( Expr.Gt,
            Expr.Col (Schema.column ~qual:"v2" "linerev" Datatype.Int),
            Expr.Binop
              ( Expr.Mul,
                Expr.flt 0.1,
                Expr.Col (Schema.column ~qual:"v1" "ordval" Datatype.Int) ) );
      ];
    q_grouped = false;
    q_keys = [];
    q_aggs = [];
    q_having = [];
    q_select =
      [
        Block.Sel_col (icol ~qual:"c" "ck", "ck");
        Block.Sel_col (icol ~qual:"o" "ok", "ok");
      ];
    q_order = [];
    q_limit = None;
  }
