lib/workload/tpcd.mli: Block Catalog
