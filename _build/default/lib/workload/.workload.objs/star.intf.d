lib/workload/star.mli: Block Catalog
