lib/workload/star.ml: Aggregate Block Catalog Datatype Expr List Rng Schema Tuple Value
