lib/workload/emp_dept.ml: Aggregate Block Catalog Datatype Expr List Printf Rng Schema Tuple Value
