lib/workload/query_gen.mli: Block Catalog Rng
