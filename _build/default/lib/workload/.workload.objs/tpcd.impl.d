lib/workload/tpcd.ml: Aggregate Block Catalog Datatype Expr List Rng Schema Tuple Value
