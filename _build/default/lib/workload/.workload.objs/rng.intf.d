lib/workload/rng.mli:
