lib/workload/chain.mli: Block Catalog
