lib/workload/query_gen.ml: Aggregate Block Catalog Datatype Expr List Printf Rng Schema Stats String Value
