lib/workload/emp_dept.mli: Block Catalog
