lib/workload/chain.ml: Aggregate Array Block Catalog Datatype Expr List Printf Rng Schema Tuple Value
