type params = {
  emps : int;
  depts : int;
  age_min : int;
  age_max : int;
  sal_min : int;
  sal_max : int;
  seed : int;
  frames : int;
}

let default_params =
  {
    emps = 5000;
    depts = 50;
    age_min = 18;
    age_max = 65;
    sal_min = 1000;
    sal_max = 9000;
    seed = 42;
    frames = 128;
  }

let load ?(params = default_params) () =
  let rng = Rng.create ~seed:params.seed in
  let cat = Catalog.create ~frames:params.frames () in
  let dept_rows =
    List.init params.depts (fun i ->
        Tuple.make
          [
            Value.Int i;
            Value.Int (Rng.in_range rng 100_000 2_000_000);
            Value.String (Printf.sprintf "dept%03d" i);
          ])
  in
  let _dept =
    Catalog.add_table cat ~name:"dept"
      ~columns:[ ("dno", Datatype.Int); ("budget", Datatype.Int); ("dname", Datatype.String) ]
      ~pk:[ "dno" ] dept_rows
  in
  let emp_rows =
    List.init params.emps (fun i ->
        Tuple.make
          [
            Value.Int i;
            Value.Int (Rng.int rng params.depts);
            Value.Int (Rng.in_range rng params.sal_min params.sal_max);
            Value.Int (Rng.in_range rng params.age_min params.age_max);
          ])
  in
  let _emp =
    Catalog.add_table cat ~name:"emp"
      ~columns:
        [
          ("eno", Datatype.Int);
          ("dno", Datatype.Int);
          ("sal", Datatype.Int);
          ("age", Datatype.Int);
        ]
      ~pk:[ "eno" ]
      ~index:[ "dno"; "age" ]
      ~cluster:"dno" emp_rows
  in
  Catalog.add_foreign_key cat ~from:("emp", "dno") ~refs:("dept", "dno");
  cat

let col ~qual name = Schema.column ~qual name Datatype.Int

let avg_by_dept_view ~alias =
  let e2_dno = col ~qual:"e2" "dno" in
  let avg_sal =
    Aggregate.make Aggregate.Avg ~arg:(Expr.Col (col ~qual:"e2" "sal")) "asal"
  in
  {
    Block.v_alias = alias;
    v_rels = [ { Block.r_alias = "e2"; r_table = "emp" } ];
    v_preds = [];
    v_keys = [ e2_dno ];
    v_aggs = [ avg_sal ];
    v_having = [];
    v_out = [ Block.Out_key (e2_dno, "dno"); Block.Out_agg avg_sal ];
  }

let example1 ?(age_limit = 22) () =
  let e1 q = col ~qual:"e1" q in
  let b_dno = col ~qual:"b" "dno" in
  let b_asal = Schema.column ~qual:"b" "asal" Datatype.Float in
  {
    Block.q_views = [ avg_by_dept_view ~alias:"b" ];
    q_rels = [ { Block.r_alias = "e1"; r_table = "emp" } ];
    q_preds =
      [
        Expr.Cmp (Expr.Eq, Expr.Col (e1 "dno"), Expr.Col b_dno);
        Expr.Cmp (Expr.Lt, Expr.Col (e1 "age"), Expr.int age_limit);
        Expr.Cmp (Expr.Gt, Expr.Col (e1 "sal"), Expr.Col b_asal);
      ];
    q_grouped = false;
    q_keys = [];
    q_aggs = [];
    q_having = [];
    q_select = [ Block.Sel_col (e1 "eno", "eno"); Block.Sel_col (e1 "sal", "sal") ];
    q_order = [];
    q_limit = None;
  }

let example2 ?(budget_limit = 1_000_000) () =
  let e q = col ~qual:"e" q in
  let d q = col ~qual:"d" q in
  let avg_sal = Aggregate.make Aggregate.Avg ~arg:(Expr.Col (e "sal")) "asal" in
  {
    Block.q_views = [];
    q_rels =
      [
        { Block.r_alias = "e"; r_table = "emp" };
        { Block.r_alias = "d"; r_table = "dept" };
      ];
    q_preds =
      [
        Expr.Cmp (Expr.Eq, Expr.Col (e "dno"), Expr.Col (d "dno"));
        Expr.Cmp (Expr.Lt, Expr.Col (d "budget"), Expr.int budget_limit);
      ];
    q_grouped = true;
    q_keys = [ e "dno" ];
    q_aggs = [ avg_sal ];
    q_having = [];
    q_select = [ Block.Sel_col (e "dno", "dno"); Block.Sel_agg avg_sal ];
    q_order = [];
    q_limit = None;
  }
