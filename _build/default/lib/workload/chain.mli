(** Synthetic chain schemas for search-space experiments: tables
    [t0 .. t{n-1}] where [t{i}] has a primary key [k], a foreign key [fk]
    into [t{i-1}], and a value column [v].  Queries over a chain give a
    join-ordering problem of controllable size. *)

val load : ?rows:int -> ?fanout:int -> ?seed:int -> n:int -> unit -> Catalog.t
(** [load ~n ()] builds an [n]-table chain; [t0] has [rows] rows (default
    1000) and each further table [rows / fanout^i], at least 20. *)

val chain_query : view_size:int -> n:int -> Block.query
(** A query over an [n]-chain whose aggregate view spans the first
    [view_size] tables (grouped by the view's boundary foreign key, summing
    [t0.v]) joined with the remaining tables, filtered on the last table.
    Requires [1 <= view_size < n]. *)

val flat_query : n:int -> Block.query
(** A single-block grouped query joining the whole chain (no views):
    group by [t{n-1}.k], SUM of [t0.v]. *)
