(** Deterministic pseudo-random numbers (splitmix64).

    Every workload is generated from an explicit seed so that experiments
    and property tests are exactly reproducible. *)

type t

val create : seed:int -> t
val int : t -> int -> int
(** [int t bound] is uniform in [0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val in_range : t -> int -> int -> int
(** [in_range t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float
(** Uniform in [0, 1). *)

val bool : t -> bool
val pick : t -> 'a list -> 'a
(** @raise Invalid_argument on an empty list. *)

val zipf : t -> n:int -> theta:float -> int
(** Zipf-distributed rank in [0, n) with skew [theta] (0 = uniform). *)
