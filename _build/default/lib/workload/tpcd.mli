(** A scaled-down TPC-D-like decision-support schema — the workload family
    the paper motivates with ("e.g., see TPC-D benchmark", Section 1):

    - [customer(ck PK, nation, acctbal, mkt)]
    - [orders(ok PK, ck -> customer, odate, totalprice)]
    - [lineitem(lk PK, ok -> orders, pk -> part, qty, price, discount)],
      clustered on [ok]
    - [part(pk PK, brand, size, retail)]
    - [supplier(sk PK, nation, acctbal)]

    plus canonical queries with aggregate views over it. *)

type params = {
  customers : int;
  orders_per_customer : int;
  lines_per_order : int;
  parts : int;
  suppliers : int;
  nations : int;
  seed : int;
  frames : int;
}

val default_params : params
val load : ?params:params -> unit -> Catalog.t

val q_big_spenders : ?nation:int -> unit -> Block.query
(** Customers of a nation whose account balance is below their own average
    order value: a join of [customer] with an aggregate view over [orders]
    (Example 1's shape on the decision-support schema). *)

val q_small_quantity_parts : ?brand:int -> ?factor:float -> unit -> Block.query
(** TPC-D Q17's shape: revenue of lineitems whose quantity is below
    [factor] times the average quantity for their part, restricted to a
    brand — a join of [lineitem], [part] and an aggregate view over
    [lineitem], topped by a scalar aggregate. *)

val q_two_views : unit -> Block.query
(** A two-aggregate-view query (Figure 5's shape): per-customer order value
    and per-order line revenue views joined with the base tables. *)
