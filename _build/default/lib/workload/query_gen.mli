(** Random generator of well-formed aggregate-view queries over a catalog.

    Used by the "never worse than traditional" experiment (E6) and by the
    optimizer's differential fuzz tests.  Every generated query joins one
    or two aggregate views with a base table along declared foreign-key
    edges (so grouping columns and join predicates line up and results stay
    bounded — no cross joins), with random range filters whose constants
    are drawn from the actual column statistics, skewed toward the
    selective end.

    With [`Rich] complexity, views may span two relations (the FK source
    joined with a second FK's target inside the view — giving the minimal
    invariant set computation real work), carry several aggregates of mixed
    functions, a HAVING clause, and the outer block may add its own GROUP
    BY. *)

val generate :
  ?complexity:[ `Simple | `Rich ] -> Rng.t -> Catalog.t -> Block.query
(** Default [`Rich].
    @raise Invalid_argument if the catalog declares no foreign keys. *)
