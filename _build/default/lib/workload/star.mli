(** A star-schema data-warehouse workload (the setting of Gupta, Harinarayan
    & Quass [GHQ95], which the paper cites as concurrent work on
    aggregate-query processing): one fact table with foreign keys into
    several dimensions.

    - [sales(sk PK, day -> dates.day, prod -> product.prod,
      store -> store.store, qty, amount)], clustered on [prod]
    - [dates(day PK, month, year)]
    - [product(prod PK, category, price)]
    - [store(store PK, region)] *)

type params = {
  days : int;
  products : int;
  stores : int;
  rows_per_day : int;
  seed : int;
  frames : int;
}

val default_params : params
val load : ?params:params -> unit -> Catalog.t

val q_category_revenue : ?category:int -> unit -> Block.query
(** Revenue by month for one product category: a grouped join of the fact
    table with two dimensions — the invariant-grouping showcase (both
    dimension joins are N:1 on dimension keys). *)

val q_above_average_products : ?region:int -> unit -> Block.query
(** Products whose sales quantity in one region exceeds their overall
    average quantity per sale: a join of the fact table with an aggregate
    view over the fact table itself (pull-up territory: the view is grouped
    by [prod] and the fact table is clustered on it). *)
