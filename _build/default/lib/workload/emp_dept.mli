(** The paper's running example schema (Examples 1 and 2):

    - [emp(eno PK, dno -> dept, sal, age)]
    - [dept(dno PK, budget, dname)]

    with knobs for the parameters the paper's trade-off discussion turns on:
    the number of employees, the number of departments (hence group count),
    and the age distribution (hence the selectivity of [e1.age < limit]). *)

type params = {
  emps : int;
  depts : int;
  age_min : int;
  age_max : int;
  sal_min : int;
  sal_max : int;
  seed : int;
  frames : int;  (** buffer-pool pages *)
}

val default_params : params

val load : ?params:params -> unit -> Catalog.t
(** Build a catalog holding [emp] and [dept] with PK indexes, an index on
    [emp.dno] and [emp.age], the FK declaration, and statistics. *)

val example1 : ?age_limit:int -> unit -> Block.query
(** Example 1: employees younger than [age_limit] (default 22) earning more
    than their department's average salary — a join of [emp] with the
    aggregate view [A1(dno, asal)]. *)

val example2 : ?budget_limit:int -> unit -> Block.query
(** Example 2: average salary per department with budget below
    [budget_limit] — a single-block query whose minimal invariant set is
    [{emp}]. *)

val avg_by_dept_view : alias:string -> Block.view
(** The aggregate view A1: [SELECT dno, AVG(sal) FROM emp GROUP BY dno]. *)
