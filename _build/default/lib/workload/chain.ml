let table_name i = Printf.sprintf "t%d" i

let load ?(rows = 1000) ?(fanout = 2) ?(seed = 5) ~n () =
  if n < 2 then invalid_arg "Chain.load: n < 2";
  let rng = Rng.create ~seed in
  let cat = Catalog.create ~frames:256 () in
  let sizes =
    Array.init n (fun i ->
        max 20 (int_of_float (float_of_int rows /. (float_of_int fanout ** float_of_int i))))
  in
  for i = 0 to n - 1 do
    let size = sizes.(i) in
    let rows_i =
      List.init size (fun r ->
          let fk =
            if i = 0 then Value.Int 0 else Value.Int (Rng.int rng sizes.(i - 1))
          in
          Tuple.make [ Value.Int r; fk; Value.Int (Rng.in_range rng 0 1000) ])
    in
    ignore
      (Catalog.add_table cat ~name:(table_name i)
         ~columns:[ ("k", Datatype.Int); ("fk", Datatype.Int); ("v", Datatype.Int) ]
         ~pk:[ "k" ] ~index:[ "fk" ] rows_i)
  done;
  for i = 1 to n - 1 do
    Catalog.add_foreign_key cat
      ~from:(table_name i, "fk")
      ~refs:(table_name (i - 1), "k")
  done;
  cat

let col ~qual name = Schema.column ~qual name Datatype.Int

(* Join predicate t{i}.fk = t{i-1}.k using the given aliases. *)
let link_pred a_prev a_cur =
  Expr.Cmp (Expr.Eq, Expr.Col (col ~qual:a_cur "fk"), Expr.Col (col ~qual:a_prev "k"))

let chain_query ~view_size ~n =
  if view_size < 1 || view_size >= n then invalid_arg "Chain.chain_query: bad view_size";
  let valias i = Printf.sprintf "a%d" i in
  let inner_aliases = List.init view_size valias in
  let inner_rels =
    List.mapi (fun i a -> { Block.r_alias = a; r_table = table_name i }) inner_aliases
  in
  let inner_preds =
    List.init (view_size - 1) (fun i -> link_pred (valias i) (valias (i + 1)))
  in
  (* Group the view on the key of its last table, summing t0.v. *)
  let gkey = col ~qual:(valias (view_size - 1)) "k" in
  let total = Aggregate.make Aggregate.Sum ~arg:(Expr.Col (col ~qual:"a0" "v")) "total" in
  let view =
    {
      Block.v_alias = "vw";
      v_rels = inner_rels;
      v_preds = inner_preds;
      v_keys = [ gkey ];
      v_aggs = [ total ];
      v_having = [];
      v_out = [ Block.Out_key (gkey, "gk"); Block.Out_agg total ];
    }
  in
  let outer_aliases = List.init (n - view_size) (fun i -> valias (view_size + i)) in
  let outer_rels =
    List.mapi
      (fun i a -> { Block.r_alias = a; r_table = table_name (view_size + i) })
      outer_aliases
  in
  let boundary =
    Expr.Cmp
      ( Expr.Eq,
        Expr.Col (col ~qual:(valias view_size) "fk"),
        Expr.Col (Schema.column ~qual:"vw" "gk" Datatype.Int) )
  in
  let outer_links =
    List.init
      (n - view_size - 1)
      (fun i -> link_pred (valias (view_size + i)) (valias (view_size + i + 1)))
  in
  let last = valias (n - 1) in
  let filter =
    Expr.Cmp (Expr.Lt, Expr.Col (col ~qual:last "v"), Expr.int 500)
  in
  {
    Block.q_views = [ view ];
    q_rels = outer_rels;
    q_preds = (boundary :: outer_links) @ [ filter ];
    q_grouped = false;
    q_keys = [];
    q_aggs = [];
    q_having = [];
    q_select =
      [
        Block.Sel_col (col ~qual:last "k", "k");
        Block.Sel_col (Schema.column ~qual:"vw" "total" Datatype.Int, "total");
      ];
    q_order = [];
    q_limit = None;
  }

let flat_query ~n =
  let valias i = Printf.sprintf "a%d" i in
  let rels =
    List.init n (fun i -> { Block.r_alias = valias i; r_table = table_name i })
  in
  let links = List.init (n - 1) (fun i -> link_pred (valias i) (valias (i + 1))) in
  let key = col ~qual:(valias (n - 1)) "k" in
  let total = Aggregate.make Aggregate.Sum ~arg:(Expr.Col (col ~qual:"a0" "v")) "total" in
  {
    Block.q_views = [];
    q_rels = rels;
    q_preds = links;
    q_grouped = true;
    q_keys = [ key ];
    q_aggs = [ total ];
    q_having = [];
    q_select = [ Block.Sel_col (key, "k"); Block.Sel_agg total ];
    q_order = [];
    q_limit = None;
  }
