let numeric_columns (tbl : Catalog.table) =
  List.filter_map
    (fun (c : Schema.column) ->
      match c.Schema.cty with
      | Datatype.Int -> Some c.Schema.cname
      | Datatype.Float | Datatype.Date | Datatype.String | Datatype.Bool -> None)
    (Schema.columns tbl.Catalog.tschema)

let col_of cat table alias name =
  let tbl = Catalog.table_exn cat table in
  let i = Schema.find_exn tbl.Catalog.tschema name in
  let c = Schema.get tbl.Catalog.tschema i in
  Schema.column ~qual:alias name c.Schema.cty

(* A random range predicate on a numeric column, with the constant drawn
   between the column's observed min and max, skewed toward the selective
   end: decision-support filters are usually selective, and the interesting
   optimizer trade-offs (pull-up!) live there. *)
let random_filter rng cat table alias =
  let tbl = Catalog.table_exn cat table in
  match numeric_columns tbl with
  | [] -> None
  | cols ->
    let cname = Rng.pick rng cols in
    let stats = Catalog.column_stats tbl cname in
    let lo = Value.to_float stats.Stats.vmin and hi = Value.to_float stats.Stats.vmax in
    if hi <= lo then None
    else begin
      let u = Rng.float rng in
      let q = u ** 2.5 in
      let op = Rng.pick rng [ Expr.Lt; Expr.Le; Expr.Gt; Expr.Ge ] in
      let quantile = match op with Expr.Lt | Expr.Le -> q | _ -> 1. -. q in
      let v = lo +. (quantile *. (hi -. lo)) in
      Some
        (Expr.Cmp
           (op, Expr.Col (col_of cat table alias cname), Expr.Const (Value.Int (int_of_float v))))
    end

let random_agg rng cat table alias idx =
  let tbl = Catalog.table_exn cat table in
  let name = Printf.sprintf "a%d" idx in
  match numeric_columns tbl with
  | [] -> Aggregate.make Aggregate.Count_star name
  | cols ->
    let cname = Rng.pick rng cols in
    let arg = Expr.Col (col_of cat table alias cname) in
    (match Rng.pick rng [ `Sum; `Avg; `Min; `Max; `Count ] with
     | `Sum -> Aggregate.make Aggregate.Sum ~arg name
     | `Avg -> Aggregate.make Aggregate.Avg ~arg name
     | `Min -> Aggregate.make Aggregate.Min ~arg name
     | `Max -> Aggregate.make Aggregate.Max ~arg name
     | `Count -> Aggregate.make Aggregate.Count_star name)

(* A view grouped by [fk]'s source column, over either the FK source alone
   or (rich mode) the source joined with the target of a second FK of the
   same table — whose removability then depends on whether its join column
   is also a grouping key, exercising the minimal-invariant-set logic. *)
let build_view ~rich rng cat (fk : Catalog.foreign_key) idx =
  let valias = Printf.sprintf "v%d" idx in
  let inner = Printf.sprintf "%s_t" valias in
  let key = col_of cat fk.Catalog.fk_table inner fk.Catalog.fk_column in
  let other_fks =
    List.filter
      (fun (f : Catalog.foreign_key) ->
        String.equal f.Catalog.fk_table fk.Catalog.fk_table
        && not (String.equal f.Catalog.fk_column fk.Catalog.fk_column))
      (Catalog.foreign_keys cat)
  in
  let second =
    if rich && other_fks <> [] && Rng.bool rng then Some (Rng.pick rng other_fks)
    else None
  in
  let rels, join_preds, extra_key =
    match second with
    | None -> ([ { Block.r_alias = inner; r_table = fk.Catalog.fk_table } ], [], None)
    | Some f2 ->
      let dim = Printf.sprintf "%s_d" valias in
      let p =
        Expr.Cmp
          ( Expr.Eq,
            Expr.Col (col_of cat f2.Catalog.fk_table inner f2.Catalog.fk_column),
            Expr.Col (col_of cat f2.Catalog.pk_table dim f2.Catalog.pk_column) )
      in
      let extra =
        (* Sometimes also group by the second join column, making the dimension
           removable by invariant grouping. *)
        if Rng.bool rng then
          Some (col_of cat f2.Catalog.fk_table inner f2.Catalog.fk_column)
        else None
      in
      ( [ { Block.r_alias = inner; r_table = fk.Catalog.fk_table };
          { Block.r_alias = dim; r_table = f2.Catalog.pk_table } ],
        [ p ],
        extra )
  in
  let naggs = if rich then 1 + Rng.int rng 2 else 1 in
  let aggs =
    List.init naggs (fun i -> random_agg rng cat fk.Catalog.fk_table inner ((idx * 10) + i))
  in
  let filters =
    match random_filter rng cat fk.Catalog.fk_table inner with
    | Some p when Rng.bool rng -> [ p ]
    | _ -> []
  in
  let first_agg = List.hd aggs in
  let having =
    if rich && Rng.int rng 3 = 0 then
      [
        Expr.Cmp
          ( Rng.pick rng [ Expr.Gt; Expr.Lt ],
            Expr.Col
              (Schema.column ~qual:valias first_agg.Aggregate.out_name
                 (Aggregate.result_type first_agg)),
            Expr.Const (Value.Int (Rng.in_range rng 0 2000)) );
      ]
    else []
  in
  let keys = key :: (match extra_key with Some k -> [ k ] | None -> []) in
  let out =
    List.mapi (fun i k -> Block.Out_key (k, Printf.sprintf "k%d" i)) keys
    @ List.map (fun a -> Block.Out_agg a) aggs
  in
  ( {
      Block.v_alias = valias;
      v_rels = rels;
      v_preds = join_preds @ filters;
      v_keys = keys;
      v_aggs = aggs;
      v_having = having;
      v_out = out;
    },
    key )

let generate ?(complexity = `Rich) rng cat =
  let rich = complexity = `Rich in
  let fks = Catalog.foreign_keys cat in
  if fks = [] then invalid_arg "Query_gen.generate: catalog has no foreign keys";
  let nviews = 1 + Rng.int rng 2 in
  (* All views hang off the same foreign-key edge (with independent shapes)
     so the outer block needs a single base relation — the generator must
     never emit cross joins, whose results are unbounded. *)
  let shared_fk = Rng.pick rng fks in
  let views_and_keys = List.init nviews (build_view ~rich rng cat shared_fk) in
  let outer_rel = { Block.r_alias = "r0"; r_table = shared_fk.Catalog.pk_table } in
  let join_preds =
    List.map
      (fun (view, _) ->
        Expr.Cmp
          ( Expr.Eq,
            Expr.Col
              (col_of cat shared_fk.Catalog.pk_table "r0" shared_fk.Catalog.pk_column),
            Expr.Col (Schema.column ~qual:view.Block.v_alias "k0" Datatype.Int) ))
      views_and_keys
  in
  (* Maybe a predicate over a view's aggregate output. *)
  let agg_preds =
    List.filter_map
      (fun (view, _) ->
        if Rng.bool rng then begin
          let agg = List.hd view.Block.v_aggs in
          let acol =
            Schema.column ~qual:view.Block.v_alias agg.Aggregate.out_name
              (Aggregate.result_type agg)
          in
          let const = Expr.Const (Value.Int (Rng.in_range rng 0 5000)) in
          Some (Expr.Cmp (Rng.pick rng [ Expr.Gt; Expr.Lt ], Expr.Col acol, const))
        end
        else None)
      views_and_keys
  in
  let outer_filter =
    if Rng.int rng 4 < 3 then
      random_filter rng cat outer_rel.Block.r_table outer_rel.Block.r_alias
    else None
  in
  let views = List.map fst views_and_keys in
  let preds =
    join_preds @ agg_preds @ (match outer_filter with Some p -> [ p ] | None -> [])
  in
  let grouped = Rng.int rng 3 = 0 in
  let tbl = Catalog.table_exn cat outer_rel.Block.r_table in
  if grouped then begin
    let key_name =
      match numeric_columns tbl with
      | [] -> List.hd tbl.Catalog.primary_key
      | cols -> Rng.pick rng cols
    in
    let key = col_of cat outer_rel.Block.r_table outer_rel.Block.r_alias key_name in
    let top_agg =
      match numeric_columns tbl with
      | [] -> Aggregate.make Aggregate.Count_star "t0"
      | cols ->
        Aggregate.make Aggregate.Sum
          ~arg:(Expr.Col (col_of cat outer_rel.Block.r_table outer_rel.Block.r_alias (Rng.pick rng cols)))
          "t0"
    in
    {
      Block.q_views = views;
      q_rels = [ outer_rel ];
      q_preds = preds;
      q_grouped = true;
      q_keys = [ key ];
      q_aggs = [ top_agg ];
      q_having = [];
      q_select = [ Block.Sel_col (key, "k"); Block.Sel_agg top_agg ];
      q_order = [];
      q_limit = None;
    }
  end
  else begin
    let sel_name =
      match tbl.Catalog.primary_key with
      | pk :: _ -> pk
      | [] -> (Schema.get tbl.Catalog.tschema 0).Schema.cname
    in
    let sel_col = col_of cat outer_rel.Block.r_table outer_rel.Block.r_alias sel_name in
    {
      Block.q_views = views;
      q_rels = [ outer_rel ];
      q_preds = preds;
      q_grouped = false;
      q_keys = [];
      q_aggs = [];
      q_having = [];
      q_select = [ Block.Sel_col (sel_col, "c0") ];
      q_order = [];
      q_limit = None;
    }
  end
