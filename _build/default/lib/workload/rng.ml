type t = { mutable state : int64 }

let create ~seed = { state = Int64.of_int seed }

let next_u64 t =
  let open Int64 in
  t.state <- add t.state 0x9E3779B97F4A7C15L;
  let z = t.state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound <= 0";
  Int64.to_int (Int64.rem (Int64.shift_right_logical (next_u64 t) 1) (Int64.of_int bound))

let in_range t lo hi =
  if hi < lo then invalid_arg "Rng.in_range: hi < lo";
  lo + int t (hi - lo + 1)

let float t =
  Int64.to_float (Int64.shift_right_logical (next_u64 t) 11)
  /. 9007199254740992.0 (* 2^53 *)

let bool t = int t 2 = 0

let pick t = function
  | [] -> invalid_arg "Rng.pick: empty list"
  | l -> List.nth l (int t (List.length l))

let zipf t ~n ~theta =
  if theta <= 0. then int t n
  else begin
    (* Inverse-CDF sampling over the (truncated) zipfian weights. *)
    let weights = Array.init n (fun i -> 1. /. ((float_of_int (i + 1)) ** theta)) in
    let total = Array.fold_left ( +. ) 0. weights in
    let target = float t *. total in
    let rec walk i acc =
      if i >= n - 1 then i
      else
        let acc = acc +. weights.(i) in
        if acc >= target then i else walk (i + 1) acc
    in
    walk 0 0.
  end
