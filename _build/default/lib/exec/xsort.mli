(** External merge sort.

    If the input fits in [work_mem] pages the sort happens in memory with no
    extra IO; otherwise sorted runs of [work_mem] pages are spilled to temp
    files and merged with fan-in [work_mem - 1], exactly the behaviour the
    cost model prices. *)

val sort : Exec_ctx.t -> compare:(Tuple.t -> Tuple.t -> int) -> Iter.t -> Iter.t

val by_columns : Schema.t -> Schema.column list -> Tuple.t -> Tuple.t -> int
(** Comparator on the given columns resolved against [schema].
    @raise Expr.Unresolved_column on a missing column. *)
