let by_columns schema cols =
  let idx =
    Array.of_list
      (List.map
         (fun (c : Schema.column) ->
           match Schema.index_of_column schema c with
           | Some i -> i
           | None ->
             (match Schema.find schema ~qual:c.Schema.cqual c.Schema.cname with
              | Some i -> i
              | None ->
                raise
                  (Expr.Unresolved_column
                     (Format.asprintf "sort key %s not in %a"
                        (Schema.column_to_string c) Schema.pp schema))))
         cols)
  in
  fun a b -> Tuple.compare_at idx a b

(* k-way merge of already-sorted iterators. *)
let merge_iters schema compare iters =
  let arr = Array.of_list iters in
  let heads = Array.map (fun (it : Iter.t) -> it.Iter.next ()) arr in
  let next () =
    let best = ref (-1) in
    Array.iteri
      (fun i h ->
        match h with
        | None -> ()
        | Some t -> (
          match !best with
          | -1 -> best := i
          | b -> (
            match heads.(b) with
            | Some tb -> if compare t tb < 0 then best := i
            | None -> best := i)))
      heads;
    match !best with
    | -1 -> None
    | i ->
      let result = heads.(i) in
      heads.(i) <- arr.(i).Iter.next ();
      result
  in
  let close () = Array.iter (fun (it : Iter.t) -> it.Iter.close ()) arr in
  { Iter.schema; next; close }

let sort ctx ~compare (input : Iter.t) =
  let schema = input.Iter.schema in
  let work_mem = Exec_ctx.work_mem ctx in
  let page_cap = Page.capacity ~row_bytes:(Schema.byte_width schema) in
  let run_rows = max 1 (work_mem * page_cap) in
  let runs = ref [] in
  let buffer = ref [] in
  let buffered = ref 0 in
  let flush_run () =
    if !buffered > 0 then begin
      let sorted = List.sort compare !buffer in
      let heap = Exec_ctx.temp ctx schema in
      Heap_file.append_all heap sorted;
      runs := heap :: !runs;
      buffer := [];
      buffered := 0
    end
  in
  let rec consume () =
    match input.Iter.next () with
    | None -> ()
    | Some tup ->
      buffer := tup :: !buffer;
      incr buffered;
      if !buffered >= run_rows then flush_run ();
      consume ()
  in
  consume ();
  input.Iter.close ();
  if !runs = [] then
    (* Fits in memory: no spill. *)
    Iter.of_list schema (List.sort compare !buffer)
  else begin
    flush_run ();
    let fanin = max 2 (work_mem - 1) in
    let rec merge_passes runs =
      if List.length runs <= fanin then runs
      else begin
        let rec take n = function
          | [] -> ([], [])
          | x :: rest when n > 0 ->
            let batch, remaining = take (n - 1) rest in
            (x :: batch, remaining)
          | l -> ([], l)
        in
        let rec pass acc = function
          | [] -> List.rev acc
          | runs ->
            let batch, rest = take fanin runs in
            let merged =
              merge_iters schema compare
                (List.map (fun h -> Iter.of_seq schema (Heap_file.to_seq h)) batch)
            in
            let out = Exec_ctx.temp ctx schema in
            Iter.iter (fun t -> ignore (Heap_file.append out t)) merged;
            List.iter (fun h -> Exec_ctx.drop ctx h) batch;
            pass (out :: acc) rest
        in
        merge_passes (pass [] runs)
      end
    in
    let final_runs = merge_passes (List.rev !runs) in
    let merged =
      merge_iters schema compare
        (List.map (fun h -> Iter.of_seq schema (Heap_file.to_seq h)) final_runs)
    in
    {
      merged with
      Iter.close =
        (fun () ->
          merged.Iter.close ();
          List.iter (fun h -> Exec_ctx.drop ctx h) final_runs);
    }
  end
