lib/exec/iter.ml: List Option Relation Schema Seq Tuple
