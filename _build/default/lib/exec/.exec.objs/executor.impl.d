lib/exec/executor.ml: Aggregate Array Btree Buffer_pool Catalog Exec_ctx Expr Hashtbl Heap_file Iter List Option Page Physical Printf Schema Seq Storage Tuple Value Xsort
