lib/exec/exec_ctx.mli: Catalog Heap_file Schema Storage
