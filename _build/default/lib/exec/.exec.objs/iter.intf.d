lib/exec/iter.mli: Relation Schema Seq Tuple
