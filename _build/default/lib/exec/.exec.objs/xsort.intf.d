lib/exec/xsort.mli: Exec_ctx Iter Schema Tuple
