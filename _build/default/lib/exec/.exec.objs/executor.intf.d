lib/exec/executor.mli: Buffer_pool Exec_ctx Iter Physical Relation
