lib/exec/physical.mli: Aggregate Catalog Expr Format Schema Value
