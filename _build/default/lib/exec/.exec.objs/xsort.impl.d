lib/exec/xsort.ml: Array Exec_ctx Expr Format Heap_file Iter List Page Schema Tuple
