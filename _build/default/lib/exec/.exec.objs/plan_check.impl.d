lib/exec/plan_check.ml: Aggregate Catalog Expr Format List Physical Schema String
