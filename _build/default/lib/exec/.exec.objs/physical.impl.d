lib/exec/physical.ml: Aggregate Catalog Expr Format List Printf Schema String Value
