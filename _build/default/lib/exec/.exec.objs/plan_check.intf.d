lib/exec/plan_check.mli: Catalog Physical
