lib/exec/exec_ctx.ml: Catalog Heap_file List Storage
