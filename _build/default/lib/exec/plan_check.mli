(** Static validation of physical plans.

    Checks the invariants the executor trusts the planner to maintain:
    - every column reference (filters, join conditions, projections,
      aggregate arguments, grouping keys, having clauses) resolves in the
      schema available at that node;
    - [Merge_join] inputs are sorted on the join keys and [Sort_group]
      inputs on the grouping keys (per {!Physical.sorted_on});
    - the inner of a [Block_nl_join] is rescannable (a scan or a
      [Materialize]);
    - [Index_scan] and [Index_nl_join] target existing indexes.

    Used by the optimizer tests on every produced plan, and available to
    callers embedding the optimizer. *)

val check : Catalog.t -> Physical.t -> (unit, string) result
(** [Ok ()] or [Error description-of-first-violation]. *)

val check_exn : Catalog.t -> Physical.t -> unit
(** @raise Failure on the first violation. *)
