(** The volcano executor: evaluates physical plans over the paged storage
    engine, charging every page touch to the buffer pool. *)

val open_iter : Exec_ctx.t -> Physical.t -> Iter.t
(** Open a plan as a pull iterator.  The caller must drain or close it;
    temp files are released on close / {!Exec_ctx.cleanup}. *)

val run : Exec_ctx.t -> Physical.t -> Relation.t
(** Evaluate to a materialized (in-memory) result and clean up temps. *)

val run_measured :
  ?cold:bool -> Exec_ctx.t -> Physical.t -> Relation.t * Buffer_pool.stats
(** Like {!run} but resets IO counters first and returns the page IO the
    run incurred.  [cold] (default true) empties the buffer pool first, so
    the measurement starts from a cold cache. *)
