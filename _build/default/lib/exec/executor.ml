module Tuple_key = struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t
end

module TH = Hashtbl.Make (Tuple_key)

let compile_preds schema preds =
  match Expr.conjoin preds with
  | None -> fun _ -> true
  | Some p -> Expr.compile_pred schema p

let resolve_all schema cols =
  Array.of_list (List.map (Expr.resolve_column schema) cols)

let compare_keys a b =
  let n = Array.length a in
  let rec loop i =
    if i >= n then 0
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

(* Argument extractors for a list of aggregates against an input schema. *)
let agg_arg_fns schema aggs =
  List.map
    (fun (a : Aggregate.t) ->
      match a.Aggregate.arg with
      | None -> fun _ -> None
      | Some e ->
        let f = Expr.compile schema e in
        fun tup -> Some (f tup))
    aggs

let init_states aggs = List.map (fun (a : Aggregate.t) -> Aggregate.init a.Aggregate.func) aggs

let step_states states fns tup =
  List.map2 (fun st f -> Aggregate.step st (f tup)) states fns

let finish_group key states = Tuple.concat key (Array.of_list (List.map Aggregate.finish states))

let rec open_iter ctx plan : Iter.t =
  let cat = Exec_ctx.catalog ctx in
  match plan with
  | Physical.Seq_scan s ->
    let tbl = Catalog.table_exn cat s.table in
    let schema = Schema.rename_qualifier tbl.Catalog.tschema s.alias in
    let it = Iter.of_seq schema (Heap_file.to_seq tbl.Catalog.heap) in
    if s.filter = [] then it else Iter.filter (compile_preds schema s.filter) it
  | Physical.Index_scan s ->
    let tbl = Catalog.table_exn cat s.table in
    let idx =
      match Catalog.index_on tbl s.column with
      | Some i -> i
      | None ->
        invalid_arg
          (Printf.sprintf "Executor: no index on %s.%s" s.table s.column)
    in
    let schema = Schema.rename_qualifier tbl.Catalog.tschema s.alias in
    let rids = Btree.search_range idx ?lo:s.lo ?hi:s.hi () in
    let fetch rid = Heap_file.get tbl.Catalog.heap rid in
    let it = Iter.of_seq schema (Seq.map fetch (List.to_seq rids)) in
    if s.filter = [] then it else Iter.filter (compile_preds schema s.filter) it
  | Physical.Filter f ->
    let it = open_iter ctx f.input in
    Iter.filter (compile_preds it.Iter.schema f.pred) it
  | Physical.Project p ->
    let it = open_iter ctx p.input in
    let fns = List.map (fun (e, _) -> Expr.compile it.Iter.schema e) p.cols in
    let out_schema = Schema.of_columns (List.map snd p.cols) in
    Iter.map out_schema
      (fun tup -> Array.of_list (List.map (fun f -> f tup) fns))
      it
  | Physical.Materialize m ->
    let it = open_iter ctx m.input in
    let heap = Exec_ctx.temp ctx it.Iter.schema in
    Iter.iter (fun t -> ignore (Heap_file.append heap t)) it;
    let out = Iter.of_seq it.Iter.schema (Heap_file.to_seq heap) in
    { out with Iter.close = (fun () -> out.Iter.close (); Exec_ctx.drop ctx heap) }
  | Physical.Sort s ->
    let it = open_iter ctx s.input in
    Xsort.sort ctx ~compare:(Xsort.by_columns it.Iter.schema s.cols) it
  | Physical.Limit l ->
    let it = open_iter ctx l.input in
    let remaining = ref l.count in
    let next () =
      if !remaining <= 0 then None
      else
        match it.Iter.next () with
        | None -> None
        | Some t ->
          decr remaining;
          Some t
    in
    { it with Iter.next }
  | Physical.Block_nl_join j -> bnl_join ctx j.left j.right j.cond
  | Physical.Index_nl_join j ->
    index_nl_join ctx ~left:j.left ~alias:j.alias ~table:j.table ~column:j.column
      ~outer_key:j.outer_key ~cond:j.cond
  | Physical.Hash_join j ->
    hash_join ctx ~left:j.left ~right:j.right ~keys:j.keys ~cond:j.cond
      ~build_side:j.build_side
  | Physical.Merge_join j ->
    merge_join ctx ~left:j.left ~right:j.right ~keys:j.keys ~cond:j.cond
  | Physical.Hash_group g -> hash_group ctx g
  | Physical.Sort_group g -> sort_group ctx g

(* Block nested-loop join: buffer (work_mem - 1) pages of outer tuples, then
   rescan the inner once per block.  The inner must be rescannable; a
   [Materialize] inner is spooled once and re-read per block. *)
and bnl_join ctx left right cond =
  let cat = Exec_ctx.catalog ctx in
  let lit = open_iter ctx left in
  let rschema = Physical.schema cat right in
  let out_schema = Schema.append lit.Iter.schema rschema in
  let keep = compile_preds out_schema cond in
  let block_rows =
    let cap = Page.capacity ~row_bytes:(Schema.byte_width lit.Iter.schema) in
    max 1 ((Exec_ctx.work_mem ctx - 1) * cap)
  in
  (* Rescannable inner: spool a Materialize once; otherwise reopen the scan. *)
  let spooled = ref None in
  let extra_close = ref (fun () -> ()) in
  let reopen_right () =
    match right with
    | Physical.Materialize m -> (
      match !spooled with
      | Some heap -> Iter.of_seq rschema (Heap_file.to_seq heap)
      | None ->
        let it = open_iter ctx m.input in
        let heap = Exec_ctx.temp ctx it.Iter.schema in
        Iter.iter (fun t -> ignore (Heap_file.append heap t)) it;
        spooled := Some heap;
        (extra_close := fun () -> Exec_ctx.drop ctx heap);
        Iter.of_seq rschema (Heap_file.to_seq heap))
    | Physical.Seq_scan _ | Physical.Index_scan _ -> open_iter ctx right
    | _ ->
      invalid_arg
        "Executor: BNL inner must be a scan or Materialize (planner bug)"
  in
  let block = ref [||] in
  let bi = ref 0 in
  let rit : Iter.t option ref = ref None in
  let rtup = ref None in
  let exhausted = ref false in
  let load_block () =
    let buf = ref [] and n = ref 0 in
    let rec fill () =
      if !n < block_rows then
        match lit.Iter.next () with
        | None -> ()
        | Some t ->
          buf := t :: !buf;
          incr n;
          fill ()
    in
    fill ();
    Array.of_list (List.rev !buf)
  in
  let rec next () =
    if !exhausted then None
    else
      match !rtup with
      | Some rt ->
        if !bi < Array.length !block then begin
          let lt = (!block).(!bi) in
          incr bi;
          let out = Tuple.concat lt rt in
          if keep out then Some out else next ()
        end
        else begin
          bi := 0;
          rtup := (match !rit with Some it -> it.Iter.next () | None -> None);
          next ()
        end
      | None -> (
        (* Inner exhausted (or not started) for the current block. *)
        (match !rit with
         | Some it ->
           it.Iter.close ();
           rit := None
         | None -> ());
        block := load_block ();
        if Array.length !block = 0 then begin
          exhausted := true;
          None
        end
        else begin
          let it = reopen_right () in
          rit := Some it;
          rtup := it.Iter.next ();
          bi := 0;
          next ()
        end)
  in
  let close () =
    lit.Iter.close ();
    (match !rit with Some it -> it.Iter.close () | None -> ());
    !extra_close ()
  in
  { Iter.schema = out_schema; next; close }

and index_nl_join ctx ~left ~alias ~table ~column ~outer_key ~cond =
  let cat = Exec_ctx.catalog ctx in
  let lit = open_iter ctx left in
  let tbl = Catalog.table_exn cat table in
  let idx =
    match Catalog.index_on tbl column with
    | Some i -> i
    | None ->
      invalid_arg (Printf.sprintf "Executor: no index on %s.%s" table column)
  in
  let rschema = Schema.rename_qualifier tbl.Catalog.tschema alias in
  let out_schema = Schema.append lit.Iter.schema rschema in
  let keep = compile_preds out_schema cond in
  let key_idx = Expr.resolve_column lit.Iter.schema outer_key in
  let expand lt =
    let rids = Btree.search_eq idx (Tuple.get lt key_idx) in
    List.filter_map
      (fun rid ->
        let out = Tuple.concat lt (Heap_file.get tbl.Catalog.heap rid) in
        if keep out then Some out else None)
      rids
  in
  Iter.concat_map_tuples out_schema expand lit

and hash_join ctx ~left ~right ~keys ~cond ~build_side =
  let lit = open_iter ctx left in
  let rit = open_iter ctx right in
  let out_schema = Schema.append lit.Iter.schema rit.Iter.schema in
  let keep = compile_preds out_schema cond in
  let lkeys = resolve_all lit.Iter.schema (List.map fst keys) in
  let rkeys = resolve_all rit.Iter.schema (List.map snd keys) in
  let build_it, probe_it, build_keys, probe_keys, emit =
    match build_side with
    | `Right -> (rit, lit, rkeys, lkeys, fun probe build -> Tuple.concat probe build)
    | `Left -> (lit, rit, lkeys, rkeys, fun probe build -> Tuple.concat build probe)
  in
  let build_rows = Iter.to_list build_it in
  let build_schema = build_it.Iter.schema in
  let build_pages =
    Page.pages_for ~rows:(List.length build_rows)
      ~row_bytes:(Schema.byte_width build_schema)
  in
  let join_in_memory build_rows probe_next emit_results =
    let table = TH.create 1024 in
    List.iter
      (fun bt ->
        let k = Tuple.project_arr bt build_keys in
        TH.replace table k (bt :: (Option.value ~default:[] (TH.find_opt table k))))
      build_rows;
    let rec drain () =
      match probe_next () with
      | None -> ()
      | Some pt ->
        let k = Tuple.project_arr pt probe_keys in
        (match TH.find_opt table k with
         | None -> ()
         | Some bts ->
           List.iter
             (fun bt ->
               let out = emit pt bt in
               if keep out then emit_results out)
             bts);
        drain ()
    in
    drain ()
  in
  if build_pages <= Exec_ctx.work_mem ctx then begin
    (* In-memory build; stream the probe side. *)
    let table = TH.create 1024 in
    List.iter
      (fun bt ->
        let k = Tuple.project_arr bt build_keys in
        TH.replace table k (bt :: (Option.value ~default:[] (TH.find_opt table k))))
      build_rows;
    let pending = ref [] in
    let rec next () =
      match !pending with
      | x :: rest ->
        pending := rest;
        Some x
      | [] -> (
        match probe_it.Iter.next () with
        | None -> None
        | Some pt ->
          let k = Tuple.project_arr pt probe_keys in
          (match TH.find_opt table k with
           | None -> ()
           | Some bts ->
             pending :=
               List.filter_map
                 (fun bt ->
                   let out = emit pt bt in
                   if keep out then Some out else None)
                 bts);
          next ())
    in
    { Iter.schema = out_schema; next; close = probe_it.Iter.close }
  end
  else begin
    (* Grace hash join: partition both sides to temp files, then join each
       partition pair in memory. *)
    let work_mem = Exec_ctx.work_mem ctx in
    let nparts = min 64 (max 2 ((build_pages + work_mem - 2) / (work_mem - 1))) in
    let part_hash keys_idx t =
      (Tuple_key.hash (Tuple.project_arr t keys_idx) land max_int) mod nparts
    in
    let build_parts =
      Array.init nparts (fun _ -> Exec_ctx.temp ctx build_schema)
    in
    List.iter
      (fun bt -> ignore (Heap_file.append build_parts.(part_hash build_keys bt) bt))
      build_rows;
    let probe_schema = probe_it.Iter.schema in
    let probe_parts =
      Array.init nparts (fun _ -> Exec_ctx.temp ctx probe_schema)
    in
    Iter.iter
      (fun pt -> ignore (Heap_file.append probe_parts.(part_hash probe_keys pt) pt))
      probe_it;
    let results = ref [] in
    for p = 0 to nparts - 1 do
      let build_rows = Iter.to_list (Iter.of_seq build_schema (Heap_file.to_seq build_parts.(p))) in
      let probe_seq = ref (Heap_file.to_seq probe_parts.(p)) in
      let probe_next () =
        match !probe_seq () with
        | Seq.Nil -> None
        | Seq.Cons (x, rest) ->
          probe_seq := rest;
          Some x
      in
      join_in_memory build_rows probe_next (fun out -> results := out :: !results)
    done;
    Array.iter (fun h -> Exec_ctx.drop ctx h) build_parts;
    Array.iter (fun h -> Exec_ctx.drop ctx h) probe_parts;
    Iter.of_list out_schema (List.rev !results)
  end

and merge_join ctx ~left ~right ~keys ~cond =
  let lit = open_iter ctx left in
  let rit = open_iter ctx right in
  let out_schema = Schema.append lit.Iter.schema rit.Iter.schema in
  let keep = compile_preds out_schema cond in
  let lidx = resolve_all lit.Iter.schema (List.map fst keys) in
  let ridx = resolve_all rit.Iter.schema (List.map snd keys) in
  let lt = ref (lit.Iter.next ()) in
  let rt = ref (rit.Iter.next ()) in
  let group : (Tuple.t * Tuple.t list) option ref = ref None in
  let pending = ref [] in
  let collect_group rk =
    (* Gather all right tuples whose key equals rk; assumes !rt has key rk. *)
    let acc = ref [] in
    let rec loop () =
      match !rt with
      | Some r when compare_keys (Tuple.project_arr r ridx) rk = 0 ->
        acc := r :: !acc;
        rt := rit.Iter.next ();
        loop ()
      | _ -> ()
    in
    loop ();
    group := Some (rk, List.rev !acc)
  in
  let rec next () =
    match !pending with
    | x :: rest ->
      pending := rest;
      Some x
    | [] -> (
      match !lt with
      | None -> None
      | Some l -> (
        let lk = Tuple.project_arr l lidx in
        match !group with
        | Some (gk, gts) when compare_keys lk gk = 0 ->
          pending :=
            List.filter_map
              (fun r ->
                let out = Tuple.concat l r in
                if keep out then Some out else None)
              gts;
          lt := lit.Iter.next ();
          next ()
        | _ -> (
          match !rt with
          | None -> None
          | Some r ->
            let rk = Tuple.project_arr r ridx in
            let c = compare_keys lk rk in
            if c < 0 then begin
              lt := lit.Iter.next ();
              next ()
            end
            else if c > 0 then begin
              rt := rit.Iter.next ();
              next ()
            end
            else begin
              collect_group rk;
              next ()
            end)))
  in
  let close () =
    lit.Iter.close ();
    rit.Iter.close ()
  in
  { Iter.schema = out_schema; next; close }

and hash_group ctx (g : Physical.group) =
  let cat = Exec_ctx.catalog ctx in
  let it = open_iter ctx g.Physical.input in
  let in_schema = it.Iter.schema in
  let out_schema = Physical.schema cat (Physical.Hash_group g) in
  let key_idx = resolve_all in_schema g.Physical.keys in
  let fns = agg_arg_fns in_schema g.Physical.aggs in
  let table = TH.create 256 in
  let order = ref [] in
  Iter.iter
    (fun tup ->
      let k = Tuple.project_arr tup key_idx in
      let states =
        match TH.find_opt table k with
        | Some s -> s
        | None ->
          order := k :: !order;
          init_states g.Physical.aggs
      in
      TH.replace table k (step_states states fns tup))
    it;
  let rows = List.rev_map (fun k -> finish_group k (TH.find table k)) !order in
  let result = Iter.of_list out_schema rows in
  if g.Physical.having = [] then result
  else Iter.filter (compile_preds out_schema g.Physical.having) result

and sort_group ctx (g : Physical.group) =
  let cat = Exec_ctx.catalog ctx in
  let it = open_iter ctx g.Physical.input in
  let in_schema = it.Iter.schema in
  let out_schema = Physical.schema cat (Physical.Sort_group g) in
  let key_idx = resolve_all in_schema g.Physical.keys in
  let fns = agg_arg_fns in_schema g.Physical.aggs in
  let current = ref None in
  let finished = ref false in
  let rec next () =
    if !finished then None
    else
      match it.Iter.next () with
      | None ->
        finished := true;
        (match !current with
         | None -> None
         | Some (k, states) -> Some (finish_group k states))
      | Some tup -> (
        let k = Tuple.project_arr tup key_idx in
        match !current with
        | None ->
          current := Some (k, step_states (init_states g.Physical.aggs) fns tup);
          next ()
        | Some (gk, states) ->
          if compare_keys k gk = 0 then begin
            current := Some (gk, step_states states fns tup);
            next ()
          end
          else begin
            current := Some (k, step_states (init_states g.Physical.aggs) fns tup);
            Some (finish_group gk states)
          end)
  in
  let result = { Iter.schema = out_schema; next; close = it.Iter.close } in
  if g.Physical.having = [] then result
  else Iter.filter (compile_preds out_schema g.Physical.having) result

let run ctx plan =
  let it = open_iter ctx plan in
  let rel = Iter.to_relation it in
  Exec_ctx.cleanup ctx;
  rel

let run_measured ?(cold = true) ctx plan =
  let st = Exec_ctx.storage ctx in
  if cold then Buffer_pool.clear (Storage.pool st);
  Storage.reset_io st;
  let rel = run ctx plan in
  (rel, Storage.io_stats st)
