type env = { cat : Catalog.t; aliases : (string * string) list }

let of_aliases cat aliases = { cat; aliases }

let default_eq = 0.1
let default_range = 1. /. 3.

let column_stats env (c : Schema.column) =
  match List.assoc_opt c.Schema.cqual env.aliases with
  | None -> None
  | Some table -> (
    match Catalog.find_table env.cat table with
    | None -> None
    | Some tbl -> (
      try Some (Catalog.column_stats tbl c.Schema.cname) with Not_found -> None))

let ndv env c ~rows =
  match column_stats env c with
  | Some s -> Float.min (float_of_int s.Stats.ndv) (Float.max rows 1.)
  | None -> Float.max 1. (rows /. 10.)

let clamp s = Float.max 1e-9 (Float.min 1. s)

let cmp_sel env op lhs rhs =
  let open Expr in
  let col_const op c v =
    match column_stats env c with
    | None -> (
      match op with
      | Eq -> default_eq
      | Ne -> 1. -. default_eq
      | Lt | Le | Gt | Ge -> default_range)
    | Some s -> (
      let h = s.Stats.histogram in
      match op with
      | Eq -> Histogram.sel_eq h v
      | Ne -> 1. -. Histogram.sel_eq h v
      | Lt -> Histogram.sel_range h ~hi:(v, false) ()
      | Le -> Histogram.sel_range h ~hi:(v, true) ()
      | Gt -> Histogram.sel_range h ~lo:(v, false) ()
      | Ge -> Histogram.sel_range h ~lo:(v, true) ())
  in
  let flip = function
    | Eq -> Eq | Ne -> Ne | Lt -> Gt | Le -> Ge | Gt -> Lt | Ge -> Le
  in
  match lhs, rhs with
  | Col a, Col b -> (
    (* Equi-join selectivity: 1 / max(ndv); other comparisons: default. *)
    match op with
    | Eq ->
      let da =
        match column_stats env a with Some s -> float_of_int s.Stats.ndv | None -> 10.
      in
      let db =
        match column_stats env b with Some s -> float_of_int s.Stats.ndv | None -> 10.
      in
      1. /. Float.max 1. (Float.max da db)
    | Ne -> 1. -. default_eq
    | Lt | Le | Gt | Ge -> default_range)
  | Col c, Const v -> col_const op c v
  | Const v, Col c -> col_const (flip op) c v
  | _, _ -> (
    match op with
    | Eq -> default_eq
    | Ne -> 1. -. default_eq
    | Lt | Le | Gt | Ge -> default_range)

let rec pred env p =
  let open Expr in
  match p with
  | Cmp (op, a, b) -> clamp (cmp_sel env op a b)
  | And (p, q) -> clamp (pred env p *. pred env q)
  | Or (p, q) ->
    let sp = pred env p and sq = pred env q in
    clamp (sp +. sq -. (sp *. sq))
  | Not p -> clamp (1. -. pred env p)

let preds env ps = List.fold_left (fun acc p -> acc *. pred env p) 1. ps
