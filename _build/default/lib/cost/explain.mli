(** Annotated plan rendering: every node with its estimated rows, pages and
    cumulative IO cost (the EXPLAIN of this engine). *)

val pp : Catalog.t -> work_mem:int -> Format.formatter -> Physical.t -> unit

val to_string : Catalog.t -> work_mem:int -> Physical.t -> string
