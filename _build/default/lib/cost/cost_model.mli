(** The IO cost model (paper, Section 5: "The optimization algorithm ...
    minimizes IO cost").

    [estimate] predicts, for a physical plan, the output cardinality, row
    width, materialized size and cumulative page IO, using the same
    work-memory budget as the executor so spill decisions line up.  The
    model satisfies the principle of optimality: an operator's added cost
    depends only on its inputs' estimates, never on the surrounding plan.

    Formula inventory (M = work_mem pages):
    - SeqScan: heap pages.
    - IndexScan: tree height + matched leaf fraction + heap fetches
      (clustered: matched heap pages; unclustered: one page per matched row,
      capped by the heap size).
    - Block NL join: outer cost + ceil(outer_pages / (M-1)) inner rescans.
    - Index NL join: outer cost + outer rows * (height + 1).
    - Hash join: both input costs, + 2 * (both sides' pages) when the build
      side exceeds M (Grace partitioning).
    - Merge join: input costs (sorting is priced by explicit Sort nodes).
    - Sort: 2 * pages * passes when spilling, else free (in-memory).
    - Hash/Sort group-by: free beyond the input (streaming / in-memory
      table); output rows via the Cardenas distinct-groups formula.
    - Materialize: one write of the input's pages (re-reads are charged by
      the consuming BNL join). *)

type est = {
  rows : float;   (** estimated output cardinality *)
  width : int;    (** output row bytes *)
  pages : float;  (** pages the output would occupy if materialized *)
  cost : float;   (** cumulative page IO to produce the output once *)
}

val estimate : Catalog.t -> work_mem:int -> Physical.t -> est

val cardenas : n:float -> d:float -> float
(** Expected number of distinct values drawn when [n] rows are thrown into
    [d] equally likely groups: [d * (1 - (1 - 1/d)^n)]. *)

val group_rows : Selectivity.env -> input_rows:float -> Schema.column list -> float
(** Estimated group count for a GROUP BY over the given keys (naive
    product-of-NDVs form). *)

val group_rows_in_plan :
  Catalog.t ->
  Selectivity.env ->
  input_rows:float ->
  Physical.t ->
  Schema.column list ->
  float
(** Plan-aware group count used by {!estimate}: NDVs are capped by the
    filtered cardinality of the scan each key column comes from, grouping
    columns connected by the subplan's equi-join predicates count once
    (equivalence classes), and columns functionally determined by a primary
    key already among the keys are dropped. *)

val pages_of : rows:float -> width:int -> float

val plan_aware_grouping : bool ref
(** When set to [false], {!estimate} falls back to the naive
    product-of-NDVs group count (ablation switch for experiments; default
    [true]). *)

val pp_est : Format.formatter -> est -> unit
