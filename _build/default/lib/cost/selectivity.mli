(** Selectivity estimation.

    An estimation environment maps columns to statistics.  Base-table
    columns (qualified by a FROM alias) resolve to catalog statistics;
    derived columns — view aggregate outputs, for instance — have no
    statistics and fall back to the System R default guesses (1/10 for
    equality, 1/3 for ranges), which is also what the paper's setting
    implies: predicates over aggregated columns are hard to estimate. *)

type env

val of_aliases : Catalog.t -> (string * string) list -> env
(** [of_aliases cat aliases] builds an environment where column qualifier
    [alias] resolves into table [table] for each [(alias, table)] pair. *)

val column_stats : env -> Schema.column -> Stats.column_stats option

val ndv : env -> Schema.column -> rows:float -> float
(** Estimated distinct count of a column, capped by [rows]; defaults to
    [rows / 10] when unknown. *)

val pred : env -> Expr.pred -> float
(** Estimated fraction of tuples satisfying the predicate (independence
    assumed across conjuncts). *)

val preds : env -> Expr.pred list -> float

val default_eq : float
val default_range : float
