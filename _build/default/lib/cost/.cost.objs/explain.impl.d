lib/cost/explain.ml: Cost_model Format List Physical Printf String
