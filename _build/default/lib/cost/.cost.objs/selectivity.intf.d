lib/cost/selectivity.mli: Catalog Expr Schema Stats
