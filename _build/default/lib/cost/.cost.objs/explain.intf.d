lib/cost/explain.mli: Catalog Format Physical
