lib/cost/cost_model.mli: Catalog Format Physical Schema Selectivity
