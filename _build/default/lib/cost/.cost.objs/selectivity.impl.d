lib/cost/selectivity.ml: Catalog Expr Float Histogram List Schema Stats
