lib/cost/cost_model.ml: Aggregate Catalog Datatype Expr Float Format Histogram List Option Page Physical Schema Selectivity Stats String
