type t =
  | Scan of { alias : string; table : string; schema : Schema.t }
  | Filter of { input : t; pred : Expr.pred }
  | Join of { left : t; right : t; cond : Expr.pred list }
  | Group of {
      input : t;
      agg_qual : string;
      keys : Schema.column list;
      aggs : Aggregate.t list;
      having : Expr.pred list;
    }
  | Project of { input : t; cols : (Expr.t * Schema.column) list }

let group_schema ~agg_qual ~keys ~aggs input_schema =
  List.iter
    (fun k ->
      if Schema.index_of_column input_schema k = None then
        invalid_arg
          (Printf.sprintf "Logical: grouping column %s not in input"
             (Schema.column_to_string k)))
    keys;
  let agg_cols =
    List.map
      (fun (a : Aggregate.t) ->
        Schema.column ~qual:agg_qual a.Aggregate.out_name (Aggregate.result_type a))
      aggs
  in
  Schema.of_columns (keys @ agg_cols)

let rec schema = function
  | Scan s -> s.schema
  | Filter f -> schema f.input
  | Join j -> Schema.append (schema j.left) (schema j.right)
  | Group g -> group_schema ~agg_qual:g.agg_qual ~keys:g.keys ~aggs:g.aggs (schema g.input)
  | Project p ->
    Schema.of_columns (List.map snd p.cols)

let scan cat ~alias table =
  let tbl = Catalog.table_exn cat table in
  Scan { alias; table; schema = Schema.rename_qualifier tbl.Catalog.tschema alias }

let rec relations = function
  | Scan s -> [ (s.alias, s.table) ]
  | Filter f -> relations f.input
  | Join j -> relations j.left @ relations j.right
  | Group g -> relations g.input
  | Project p -> relations p.input

(* ---- reference interpreter ---- *)

let eval_group input_rel ~agg_qual ~keys ~aggs ~having =
  let in_schema = Relation.schema input_rel in
  let out_schema = group_schema ~agg_qual ~keys ~aggs in_schema in
  let key_idx =
    Array.of_list
      (List.map (fun k -> Schema.find_exn in_schema ~qual:k.Schema.cqual k.Schema.cname) keys)
  in
  let arg_fns =
    List.map
      (fun (a : Aggregate.t) ->
        match a.Aggregate.arg with
        | None -> fun _ -> None
        | Some e ->
          let f = Expr.compile in_schema e in
          fun tup -> Some (f tup))
      aggs
  in
  let tbl : (Tuple.t, Aggregate.state list) Hashtbl.t = Hashtbl.create 64 in
  let order = ref [] in
  Relation.iter
    (fun tup ->
      let k = Tuple.project_arr tup key_idx in
      let states =
        match Hashtbl.find_opt tbl k with
        | Some s -> s
        | None ->
          order := k :: !order;
          List.map (fun (a : Aggregate.t) -> Aggregate.init a.Aggregate.func) aggs
      in
      let states' =
        List.map2 (fun st f -> Aggregate.step st (f tup)) states arg_fns
      in
      Hashtbl.replace tbl k states')
    input_rel;
  let out_rows =
    List.rev_map
      (fun k ->
        let states = Hashtbl.find tbl k in
        Tuple.concat k (Array.of_list (List.map Aggregate.finish states)))
      !order
  in
  let rel = Relation.create out_schema out_rows in
  match Expr.conjoin having with
  | None -> rel
  | Some p ->
    let f = Expr.compile_pred out_schema p in
    Relation.filter f rel

let rec eval cat = function
  | Scan s ->
    let tbl = Catalog.table_exn cat s.table in
    let rel = Heap_file.to_relation tbl.Catalog.heap in
    Relation.create s.schema (Relation.tuples rel)
  | Filter f ->
    let rel = eval cat f.input in
    Relation.filter (Expr.compile_pred (Relation.schema rel) f.pred) rel
  | Join j ->
    let lrel = eval cat j.left and rrel = eval cat j.right in
    let out_schema = Schema.append (Relation.schema lrel) (Relation.schema rrel) in
    let keep =
      match Expr.conjoin j.cond with
      | None -> fun _ -> true
      | Some p -> Expr.compile_pred out_schema p
    in
    let rows =
      Relation.fold
        (fun acc lt ->
          Relation.fold
            (fun acc rt ->
              let tup = Tuple.concat lt rt in
              if keep tup then tup :: acc else acc)
            acc rrel)
        [] lrel
    in
    Relation.create out_schema (List.rev rows)
  | Group g ->
    eval_group (eval cat g.input) ~agg_qual:g.agg_qual ~keys:g.keys ~aggs:g.aggs
      ~having:g.having
  | Project p ->
    let rel = eval cat p.input in
    let in_schema = Relation.schema rel in
    let fns = List.map (fun (e, _) -> Expr.compile in_schema e) p.cols in
    let out_schema = Schema.of_columns (List.map snd p.cols) in
    Relation.map_tuples out_schema
      (fun tup -> Array.of_list (List.map (fun f -> f tup) fns))
      rel

let rec pp_indent ppf (indent, t) =
  let pad = String.make indent ' ' in
  match t with
  | Scan s -> Format.fprintf ppf "%sScan %s AS %s" pad s.table s.alias
  | Filter f ->
    Format.fprintf ppf "%sFilter [%a]@\n%a" pad Expr.pp_pred f.pred pp_indent
      (indent + 2, f.input)
  | Join j ->
    let conds = String.concat " AND " (List.map Expr.pred_to_string j.cond) in
    Format.fprintf ppf "%sJoin [%s]@\n%a@\n%a" pad conds pp_indent
      (indent + 2, j.left) pp_indent (indent + 2, j.right)
  | Group g ->
    let keys = String.concat ", " (List.map Schema.column_to_string g.keys) in
    let aggs = String.concat ", " (List.map Aggregate.to_string g.aggs) in
    let hv =
      match g.having with
      | [] -> ""
      | ps -> " HAVING " ^ String.concat " AND " (List.map Expr.pred_to_string ps)
    in
    Format.fprintf ppf "%sGroup [%s | %s%s]@\n%a" pad keys aggs hv pp_indent
      (indent + 2, g.input)
  | Project p ->
    let cols =
      String.concat ", "
        (List.map
           (fun (e, c) ->
             Printf.sprintf "%s AS %s" (Expr.to_string e) (Schema.column_to_string c))
           p.cols)
    in
    Format.fprintf ppf "%sProject [%s]@\n%a" pad cols pp_indent (indent + 2, p.input)

let pp ppf t = pp_indent ppf (0, t)
