lib/algebra/logical.mli: Aggregate Catalog Expr Format Relation Schema
