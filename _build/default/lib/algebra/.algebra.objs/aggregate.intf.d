lib/algebra/aggregate.mli: Datatype Expr Format Schema Value
