lib/algebra/block.mli: Aggregate Catalog Expr Format Logical Relation Schema
