lib/algebra/block.ml: Aggregate Array Catalog Expr Format List Logical Printf Relation Result Schema String
