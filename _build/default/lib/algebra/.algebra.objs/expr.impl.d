lib/algebra/expr.ml: Datatype Format List Schema String Tuple Value
