lib/algebra/expr.mli: Datatype Format Schema Tuple Value
