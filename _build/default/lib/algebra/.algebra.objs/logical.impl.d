lib/algebra/logical.ml: Aggregate Array Catalog Expr Format Hashtbl Heap_file List Printf Relation Schema String Tuple
