lib/algebra/aggregate.ml: Datatype Expr Float Format List Schema Value
