(** Scalar expressions and predicates over tuples.

    Columns are referenced symbolically by (qualifier, name); {!compile}
    resolves them against a concrete runtime schema, so the same predicate
    can be evaluated at different points of a plan as long as the needed
    columns are in scope.  This is what lets the optimizer move predicates
    between joins and Having clauses (pull-up defers join predicates on
    aggregated columns into the Having clause of the pulled-up group-by). *)

type t =
  | Col of Schema.column
  | Const of Value.t
  | Binop of binop * t * t

and binop = Add | Sub | Mul | Div

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | Cmp of cmp * t * t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

val col : ?qual:string -> string -> Datatype.t -> t
val int : int -> t
val flt : float -> t
val str : string -> t

(** {1 Static analysis} *)

val columns : t -> Schema.column list
val pred_columns : pred -> Schema.column list
val qualifiers : pred -> string list
(** Distinct table/view aliases a predicate mentions. *)

val conjuncts : pred -> pred list
(** Split top-level [And]s. *)

val conjoin : pred list -> pred option

val as_equijoin : pred -> (Schema.column * Schema.column) option
(** [Some (a, b)] when the predicate is [Cmp (Eq, Col a, Col b)] with
    different qualifiers. *)

val type_of : t -> Datatype.t

val subst_columns : (Schema.column -> Schema.column option) -> pred -> pred
(** Rewrite column references; [None] keeps the original. *)

val subst_expr_columns : (Schema.column -> Schema.column option) -> t -> t

(** {1 Evaluation} *)

exception Unresolved_column of string

val resolve_column : Schema.t -> Schema.column -> int
(** Position of a column in a runtime schema: exact (qualifier, name) match
    first, then qualified-name lookup.
    @raise Unresolved_column if absent. *)

val compile : Schema.t -> t -> Tuple.t -> Value.t
(** [compile schema e] resolves all columns of [e] in [schema] (raising
    {!Unresolved_column} immediately if one is absent) and returns an
    evaluator. *)

val compile_pred : Schema.t -> pred -> Tuple.t -> bool

val eval_cmp : cmp -> Value.t -> Value.t -> bool

(** {1 Printing} *)

val pp : Format.formatter -> t -> unit
val pp_pred : Format.formatter -> pred -> unit
val to_string : t -> string
val pred_to_string : pred -> string
