(** Logical operator trees.

    This is the representation the paper's transformations (Sections 3–4)
    rewrite: joins and group-by operators with annotations.  Projection is
    not a standalone reordering concern (paper, Section 2: each operator has
    an associated projection list); here an explicit [Project] node is used
    only at view boundaries (renaming a view's output columns) and at the
    query top.

    A [Group] node does {e not} rename its grouping columns: its output
    keeps their original qualified identities and adds one column per
    aggregate, qualified by [agg_qual].  This invariant is what makes the
    pull-up and push-down rewrites compositional — predicates referring to
    base columns stay valid across a group-by placement change.

    {!eval} gives the tree a direct in-memory semantics, used as ground
    truth by the equivalence tests and independent of the paged execution
    engine. *)

type t =
  | Scan of { alias : string; table : string; schema : Schema.t }
      (** base-table access; [schema] is the table's schema re-qualified by
          [alias] *)
  | Filter of { input : t; pred : Expr.pred }
  | Join of { left : t; right : t; cond : Expr.pred list }
      (** inner join; empty [cond] is a cross product *)
  | Group of {
      input : t;
      agg_qual : string;  (** qualifier given to the aggregate outputs *)
      keys : Schema.column list;
      aggs : Aggregate.t list;
      having : Expr.pred list;
    }
  | Project of { input : t; cols : (Expr.t * Schema.column) list }
      (** computes each expression and labels it with the given column *)

val schema : t -> Schema.t
(** Output schema of the tree (raises [Invalid_argument] on badly formed
    trees, e.g. grouping columns missing from the input). *)

val scan : Catalog.t -> alias:string -> string -> t
(** [scan cat ~alias table] builds a [Scan] with the re-qualified schema.
    @raise Invalid_argument on unknown table. *)

val relations : t -> (string * string) list
(** (alias, table) pairs of all scans in the tree. *)

val eval : Catalog.t -> t -> Relation.t
(** Reference interpreter: evaluates the tree directly over in-memory
    relations.  Not IO-accounted; intended for tests and small inputs. *)

val pp : Format.formatter -> t -> unit
(** Multi-line indented rendering of the tree. *)
