type t =
  | Col of Schema.column
  | Const of Value.t
  | Binop of binop * t * t

and binop = Add | Sub | Mul | Div

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type pred =
  | Cmp of cmp * t * t
  | And of pred * pred
  | Or of pred * pred
  | Not of pred

let col ?qual name ty = Col (Schema.column ?qual name ty)
let int i = Const (Value.Int i)
let flt f = Const (Value.Float f)
let str s = Const (Value.String s)

let rec columns = function
  | Col c -> [ c ]
  | Const _ -> []
  | Binop (_, a, b) -> columns a @ columns b

let rec pred_columns = function
  | Cmp (_, a, b) -> columns a @ columns b
  | And (p, q) | Or (p, q) -> pred_columns p @ pred_columns q
  | Not p -> pred_columns p

let qualifiers p =
  List.sort_uniq String.compare
    (List.map (fun c -> c.Schema.cqual) (pred_columns p))

let rec conjuncts = function
  | And (p, q) -> conjuncts p @ conjuncts q
  | p -> [ p ]

let conjoin = function
  | [] -> None
  | p :: ps -> Some (List.fold_left (fun acc q -> And (acc, q)) p ps)

let as_equijoin = function
  | Cmp (Eq, Col a, Col b) when not (String.equal a.Schema.cqual b.Schema.cqual) ->
    Some (a, b)
  | _ -> None

let rec type_of = function
  | Col c -> c.Schema.cty
  | Const v -> Value.type_of v
  | Binop (Div, _, _) -> Datatype.Float
  | Binop (_, a, b) -> (
    match type_of a, type_of b with
    | Datatype.Int, Datatype.Int -> Datatype.Int
    | Datatype.Date, Datatype.Int -> Datatype.Date
    | Datatype.Date, Datatype.Date -> Datatype.Int
    | _ -> Datatype.Float)

let rec subst_expr_columns f = function
  | Col c -> (match f c with Some c' -> Col c' | None -> Col c)
  | Const v -> Const v
  | Binop (op, a, b) -> Binop (op, subst_expr_columns f a, subst_expr_columns f b)

let rec subst_columns f = function
  | Cmp (op, a, b) -> Cmp (op, subst_expr_columns f a, subst_expr_columns f b)
  | And (p, q) -> And (subst_columns f p, subst_columns f q)
  | Or (p, q) -> Or (subst_columns f p, subst_columns f q)
  | Not p -> Not (subst_columns f p)

exception Unresolved_column of string

let resolve schema c =
  match Schema.index_of_column schema c with
  | Some i -> i
  | None -> (
    (* Fall back to name-based lookup: a column may have been re-qualified
       by view materialization. *)
    match Schema.find schema ~qual:c.Schema.cqual c.Schema.cname with
    | Some i -> i
    | None ->
      raise
        (Unresolved_column
           (Format.asprintf "%s not in %a" (Schema.column_to_string c) Schema.pp
              schema)))

let resolve_column = resolve

let binop_fn = function
  | Add -> Value.add
  | Sub -> Value.sub
  | Mul -> Value.mul
  | Div -> Value.div

let rec compile schema = function
  | Col c ->
    let i = resolve schema c in
    fun tup -> Tuple.get tup i
  | Const v -> fun _ -> v
  | Binop (op, a, b) ->
    let fa = compile schema a and fb = compile schema b and f = binop_fn op in
    fun tup -> f (fa tup) (fb tup)

let eval_cmp op a b =
  let c = Value.compare a b in
  match op with
  | Eq -> c = 0
  | Ne -> c <> 0
  | Lt -> c < 0
  | Le -> c <= 0
  | Gt -> c > 0
  | Ge -> c >= 0

let rec compile_pred schema = function
  | Cmp (op, a, b) ->
    let fa = compile schema a and fb = compile schema b in
    fun tup -> eval_cmp op (fa tup) (fb tup)
  | And (p, q) ->
    let fp = compile_pred schema p and fq = compile_pred schema q in
    fun tup -> fp tup && fq tup
  | Or (p, q) ->
    let fp = compile_pred schema p and fq = compile_pred schema q in
    fun tup -> fp tup || fq tup
  | Not p ->
    let fp = compile_pred schema p in
    fun tup -> not (fp tup)

let binop_str = function Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/"

let cmp_str = function
  | Eq -> "=" | Ne -> "<>" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let rec pp ppf = function
  | Col c -> Format.pp_print_string ppf (Schema.column_to_string c)
  | Const v -> Value.pp ppf v
  | Binop (op, a, b) -> Format.fprintf ppf "(%a %s %a)" pp a (binop_str op) pp b

let rec pp_pred ppf = function
  | Cmp (op, a, b) -> Format.fprintf ppf "%a %s %a" pp a (cmp_str op) pp b
  | And (p, q) -> Format.fprintf ppf "(%a AND %a)" pp_pred p pp_pred q
  | Or (p, q) -> Format.fprintf ppf "(%a OR %a)" pp_pred p pp_pred q
  | Not p -> Format.fprintf ppf "NOT (%a)" pp_pred p

let to_string e = Format.asprintf "%a" pp e
let pred_to_string p = Format.asprintf "%a" pp_pred p
