(* Predicate move-around: implied constant predicates across blocks. *)

let c ~q n = Schema.column ~qual:q n Datatype.Int

(* Example 1 with an extra constant restriction on the join column. *)
let query_with_dno_filter () =
  let q = Emp_dept.example1 () in
  {
    q with
    Block.q_preds =
      q.Block.q_preds
      @ [ Expr.Cmp (Expr.Lt, Expr.Col (c ~q:"e1" "dno"), Expr.int 10) ];
  }

let implied_cross_block () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 600; depts = 30 } () in
  let nq = Normalize.normalize cat (query_with_dno_filter ()) in
  let implied = Predicate_transfer.implied_predicates nq in
  let mentions_e2 p =
    List.exists
      (fun (col : Schema.column) ->
        String.equal col.Schema.cqual "e2" && String.equal col.Schema.cname "dno")
      (Expr.pred_columns p)
  in
  Alcotest.(check bool) "e2.dno < 10 implied" true (List.exists mentions_e2 implied);
  let nq' = Predicate_transfer.apply nq in
  let view = List.hd nq'.Normalize.views in
  Alcotest.(check bool) "implied predicate pushed into the view" true
    (List.exists mentions_e2 view.Normalize.n_preds)

let no_transfer_from_agg_outputs () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 300; depts = 10 } () in
  (* b.asal > 3000 restricts an aggregate output; nothing must move. *)
  let q = Emp_dept.example1 () in
  let q =
    {
      q with
      Block.q_preds =
        q.Block.q_preds
        @ [ Expr.Cmp
              (Expr.Gt, Expr.Col (Schema.column ~qual:"b" "asal" Datatype.Float),
               Expr.int 3000) ];
    }
  in
  let nq = Normalize.normalize cat q in
  let before = List.length (Predicate_transfer.implied_predicates nq) in
  Alcotest.(check int) "no implied predicates from aggregate columns" 0 before

let semantics_preserved () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 900; depts = 40 } () in
  let q = query_with_dno_filter () in
  let expected = Logical.eval cat (Block.query_logical cat q) in
  List.iter
    (fun moveround ->
      List.iter
        (fun algorithm ->
          let options =
            { Optimizer.default_options with algorithm; predicate_moveround = moveround }
          in
          let got, _ = Optimizer.run ~options cat q in
          Alcotest.(check bool)
            (Printf.sprintf "correct (moveround=%b)" moveround)
            true
            (Relation.multiset_equal expected got))
        [ Optimizer.Traditional; Optimizer.Paper ])
    [ true; false ]

let helps_traditional () =
  let cat =
    Emp_dept.load ~params:{ Emp_dept.default_params with emps = 20_000; depts = 1000 } ()
  in
  let q = query_with_dno_filter () in
  let cost moveround =
    let options =
      { Optimizer.default_options with
        algorithm = Optimizer.Traditional; predicate_moveround = moveround }
    in
    (Optimizer.optimize ~options cat q).Optimizer.est.Cost_model.cost
  in
  Alcotest.(check bool) "move-around cannot hurt the estimate" true
    (cost true <= cost false +. 1e-6)

let tests =
  [
    Alcotest.test_case "implied constant crosses the block boundary" `Quick
      implied_cross_block;
    Alcotest.test_case "aggregate outputs excluded" `Quick no_transfer_from_agg_outputs;
    Alcotest.test_case "semantics preserved with/without" `Quick semantics_preserved;
    Alcotest.test_case "traditional baseline benefits" `Quick helps_traditional;
  ]
