test/smoke.ml: Alcotest Block Buffer_pool Cost_model Emp_dept Logical Optimizer Printf Relation
