test/sql_tests.ml: Alcotest Binder Block Emp_dept Lexer List Logical Optimizer Parser Relation Tuple Value
