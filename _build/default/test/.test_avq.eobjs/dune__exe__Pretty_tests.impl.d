test/pretty_tests.ml: Alcotest Array Lexer List Parser Pretty
