test/cost_tests.ml: Aggregate Alcotest Buffer_pool Cost_model Datatype Emp_dept Exec_ctx Executor Expr Float Histogram List Physical Printf QCheck QCheck_alcotest Schema Value
