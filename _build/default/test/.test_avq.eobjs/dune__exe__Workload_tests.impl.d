test/workload_tests.ml: Alcotest Block Chain Cost_model Exec_ctx Executor List Logical Optimizer Plan_check Query_gen Relation Rng Star Tpcd
