test/plan_check_tests.ml: Alcotest Datatype Emp_dept Expr List Optimizer Physical Plan_check Query_gen Result Rng Schema Tpcd
