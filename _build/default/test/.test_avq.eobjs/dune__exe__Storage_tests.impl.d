test/storage_tests.ml: Alcotest Btree Buffer_pool Datatype Heap_file Int List Map Page QCheck QCheck_alcotest Schema Tuple Value
