test/logical_tests.ml: Aggregate Alcotest Catalog Datatype Expr List Logical Relation Schema Tuple Value
