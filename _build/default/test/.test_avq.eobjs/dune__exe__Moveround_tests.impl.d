test/moveround_tests.ml: Alcotest Block Cost_model Datatype Emp_dept Expr List Logical Normalize Optimizer Predicate_transfer Printf Relation Schema String
