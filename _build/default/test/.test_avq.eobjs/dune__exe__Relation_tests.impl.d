test/relation_tests.ml: Alcotest Datatype List QCheck QCheck_alcotest Relation Schema Tuple Value
