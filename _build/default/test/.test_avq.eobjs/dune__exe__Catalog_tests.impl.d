test/catalog_tests.ml: Alcotest Catalog Datatype Heap_file List Relation Schema Stats Tuple Value
