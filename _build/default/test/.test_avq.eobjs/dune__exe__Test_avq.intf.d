test/test_avq.mli:
