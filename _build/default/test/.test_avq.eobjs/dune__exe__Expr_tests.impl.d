test/expr_tests.ml: Alcotest Datatype Expr List Option QCheck QCheck_alcotest Schema Tuple Value
