test/aggregate_tests.ml: Aggregate Alcotest Block Datatype Emp_dept Expr List Optimizer QCheck QCheck_alcotest Relation Schema Tuple Value
