test/exec_tests.ml: Aggregate Alcotest Buffer_pool Catalog Datatype Exec_ctx Executor Expr Iter List Logical Option Physical Printf QCheck QCheck_alcotest Relation Rng Schema Storage Tuple Value
