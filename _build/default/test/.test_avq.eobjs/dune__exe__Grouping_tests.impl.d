test/grouping_tests.ml: Aggregate Alcotest Datatype Expr Grouping List Schema
