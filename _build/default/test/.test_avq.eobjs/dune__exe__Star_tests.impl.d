test/star_tests.ml: Alcotest Block Cost_model List Normalize Optimizer Printf Relation Star Tuple Value
