test/iter_xsort_tests.ml: Alcotest Catalog Datatype Exec_ctx Executor Expr Iter List Physical Relation Schema Tuple Value Xsort
