(* Catalog behaviour: keys, clustering, statistics, foreign keys, and the
   hidden-rowid fallback. *)

let rows n f = List.init n f

let basic_table () =
  let cat = Catalog.create ~frames:32 () in
  let tbl =
    Catalog.add_table cat ~name:"t"
      ~columns:[ ("k", Datatype.Int); ("v", Datatype.Int) ]
      ~pk:[ "k" ]
      (rows 100 (fun i -> Tuple.make [ Value.Int i; Value.Int (i mod 7) ]))
  in
  Alcotest.(check int) "cardinality" 100 tbl.Catalog.tstats.Stats.card;
  Alcotest.(check bool) "pk index built" true (Catalog.index_on tbl "k" <> None);
  Alcotest.(check bool) "no index on v" true (Catalog.index_on tbl "v" = None);
  let vs = Catalog.column_stats tbl "v" in
  Alcotest.(check int) "ndv of v" 7 vs.Stats.ndv;
  Alcotest.(check bool) "superkey" true (Catalog.is_superkey tbl [ "k"; "v" ]);
  Alcotest.(check bool) "not a superkey" false (Catalog.is_superkey tbl [ "v" ])

let clustering_sorts_rows () =
  let cat = Catalog.create ~frames:32 () in
  let tbl =
    Catalog.add_table cat ~name:"t"
      ~columns:[ ("k", Datatype.Int); ("g", Datatype.Int) ]
      ~pk:[ "k" ] ~cluster:"g"
      (rows 50 (fun i -> Tuple.make [ Value.Int i; Value.Int (49 - i) ]))
  in
  Alcotest.(check (option string)) "clustered column" (Some "g") tbl.Catalog.clustered;
  let rel = Heap_file.to_relation tbl.Catalog.heap in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      Value.compare (Tuple.get a 1) (Tuple.get b 1) <= 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "heap physically ordered by g" true
    (sorted (Relation.tuples rel))

let default_clustering_is_pk () =
  let cat = Catalog.create ~frames:32 () in
  let tbl =
    Catalog.add_table cat ~name:"t"
      ~columns:[ ("k", Datatype.Int) ]
      ~pk:[ "k" ]
      (rows 10 (fun i -> Tuple.make [ Value.Int (9 - i) ]))
  in
  Alcotest.(check (option string)) "clustered on pk head" (Some "k") tbl.Catalog.clustered

let rowid_fallback () =
  let cat = Catalog.create ~frames:32 () in
  let tbl =
    Catalog.add_table cat ~name:"t"
      ~columns:[ ("v", Datatype.Int) ]
      ~pk:[]
      (rows 5 (fun _ -> Tuple.make [ Value.Int 1 ]))
  in
  Alcotest.(check (list string)) "rid key" [ "_rid" ] tbl.Catalog.primary_key;
  Alcotest.(check int) "rid column appended" 2 (Schema.arity tbl.Catalog.tschema);
  let rid_stats = Catalog.column_stats tbl "_rid" in
  Alcotest.(check int) "rids distinct" 5 rid_stats.Stats.ndv

let foreign_keys () =
  let cat = Catalog.create ~frames:32 () in
  ignore
    (Catalog.add_table cat ~name:"parent" ~columns:[ ("k", Datatype.Int) ] ~pk:[ "k" ]
       (rows 5 (fun i -> Tuple.make [ Value.Int i ])));
  ignore
    (Catalog.add_table cat ~name:"child"
       ~columns:[ ("k", Datatype.Int); ("fk", Datatype.Int) ]
       ~pk:[ "k" ]
       (rows 10 (fun i -> Tuple.make [ Value.Int i; Value.Int (i mod 5) ])));
  Catalog.add_foreign_key cat ~from:("child", "fk") ~refs:("parent", "k");
  Alcotest.(check bool) "declared" true
    (Catalog.is_fk_join cat ~from:("child", "fk") ~refs:("parent", "k"));
  Alcotest.(check bool) "direction matters" false
    (Catalog.is_fk_join cat ~from:("parent", "k") ~refs:("child", "fk"));
  (match Catalog.add_foreign_key cat ~from:("child", "fk") ~refs:("parent", "nosuch") with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "bad fk target accepted");
  (match Catalog.add_foreign_key cat ~from:("child", "fk") ~refs:("child", "fk") with
   | exception Invalid_argument _ -> ()
   | () -> Alcotest.fail "non-pk fk target accepted")

let duplicate_and_errors () =
  let cat = Catalog.create ~frames:32 () in
  ignore
    (Catalog.add_table cat ~name:"t" ~columns:[ ("k", Datatype.Int) ] ~pk:[ "k" ]
       (rows 3 (fun i -> Tuple.make [ Value.Int i ])));
  (match
     Catalog.add_table cat ~name:"t" ~columns:[ ("k", Datatype.Int) ] ~pk:[ "k" ]
       (rows 1 (fun i -> Tuple.make [ Value.Int i ]))
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "duplicate table accepted");
  (match
     Catalog.add_table cat ~name:"u" ~columns:[ ("k", Datatype.Int) ] ~pk:[ "nosuch" ]
       (rows 1 (fun i -> Tuple.make [ Value.Int i ]))
   with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "bad pk column accepted");
  Alcotest.(check bool) "find_table none" true (Catalog.find_table cat "nosuch" = None)

let tests =
  [
    Alcotest.test_case "table registration and stats" `Quick basic_table;
    Alcotest.test_case "clustering sorts the heap" `Quick clustering_sorts_rows;
    Alcotest.test_case "default clustering is the pk" `Quick default_clustering_is_pk;
    Alcotest.test_case "rowid fallback for keyless tables" `Quick rowid_fallback;
    Alcotest.test_case "foreign key declarations" `Quick foreign_keys;
    Alcotest.test_case "error cases" `Quick duplicate_and_errors;
  ]
