(* SQL front end: parse + bind + optimize + execute, checked against the
   reference interpreter and against hand-built Block queries. *)

let small_params =
  { Emp_dept.default_params with emps = 600; depts = 15; frames = 64 }

let run_sql cat sql =
  let q = Binder.bind_sql cat sql in
  let expected = Logical.eval cat (Block.query_logical cat q) in
  let result, _ = Optimizer.run cat q in
  (expected, result)

let check_sql name sql () =
  let cat = Emp_dept.load ~params:small_params () in
  let expected, result = run_sql cat sql in
  Alcotest.(check bool) name true (Relation.multiset_equal expected result)

let example1_sql =
  "CREATE VIEW a1 (dno, asal) AS \
     SELECT e2.dno, AVG(e2.sal) FROM emp e2 GROUP BY e2.dno; \
   SELECT e1.eno AS eno, e1.sal AS sal FROM emp e1, a1 b \
   WHERE e1.dno = b.dno AND e1.age < 22 AND e1.sal > b.asal"

let nested_sql =
  "SELECT e1.eno AS eno, e1.sal AS sal FROM emp e1 \
   WHERE e1.age < 22 AND e1.sal > (SELECT AVG(e2.sal) FROM emp e2 WHERE e2.dno = e1.dno)"

let equivalent_to_view_form () =
  (* Kim's transformation: the nested query must equal the view form. *)
  let cat = Emp_dept.load ~params:small_params () in
  let _, r1 = run_sql cat example1_sql in
  let _, r2 = run_sql cat nested_sql in
  Alcotest.(check bool) "nested = flattened view form" true
    (Relation.multiset_equal r1 r2)

let example2_sql =
  "SELECT e.dno AS dno, AVG(e.sal) AS asal FROM emp e, dept d \
   WHERE e.dno = d.dno AND d.budget < 1000000 GROUP BY e.dno"

let spj_view_sql =
  "CREATE VIEW rich (xeno, xsal, xdno) AS \
     SELECT e.eno, e.sal, e.dno FROM emp e WHERE e.sal > 5000; \
   SELECT r.xeno AS eno, d.dname AS dname FROM rich r, dept d WHERE r.xdno = d.dno"

let having_sql =
  "SELECT e.dno AS dno, SUM(e.sal) AS total FROM emp e \
   GROUP BY e.dno HAVING SUM(e.sal) > 40000 AND COUNT(*) > 3"

let scalar_agg_sql = "SELECT MIN(e.sal) AS m, MAX(e.age) AS x, COUNT(*) AS n FROM emp e"

let parse_errors () =
  let cat = Emp_dept.load ~params:small_params () in
  let expect_fail name sql =
    let failed =
      try
        ignore (Binder.bind_sql cat sql);
        false
      with Binder.Bind_error _ | Parser.Parse_error _ | Lexer.Lex_error _ -> true
    in
    Alcotest.(check bool) name true failed
  in
  expect_fail "unknown table" "SELECT x.a AS a FROM nosuch x";
  expect_fail "unknown column" "SELECT e.nosuch AS a FROM emp e";
  expect_fail "ambiguous column" "SELECT sal AS s FROM emp e1, emp e2";
  expect_fail "select not in group by"
    "SELECT e.sal AS s, COUNT(*) AS n FROM emp e GROUP BY e.dno";
  expect_fail "count subquery rejected"
    "SELECT e.eno AS eno FROM emp e WHERE e.sal > (SELECT COUNT(*) FROM emp x WHERE x.dno = e.dno)";
  expect_fail "garbage" "SELEKT foo";
  expect_fail "trailing" "SELECT e.eno AS a FROM emp e WHERE"

let tests =
  [
    Alcotest.test_case "example1 via SQL" `Quick (check_sql "example1" example1_sql);
    Alcotest.test_case "example2 via SQL" `Quick (check_sql "example2" example2_sql);
    Alcotest.test_case "nested subquery flattening" `Quick
      (check_sql "nested" nested_sql);
    Alcotest.test_case "nested equals view form" `Quick equivalent_to_view_form;
    Alcotest.test_case "SPJ view inlining" `Quick (check_sql "spj" spj_view_sql);
    Alcotest.test_case "having with hidden agg" `Quick (check_sql "having" having_sql);
    Alcotest.test_case "scalar aggregates" `Quick (check_sql "scalar" scalar_agg_sql);
    Alcotest.test_case "binder error cases" `Quick parse_errors;
  ]

(* ---- ORDER BY / LIMIT ---- *)

let order_limit () =
  let cat = Emp_dept.load ~params:small_params () in
  let q =
    Binder.bind_sql cat
      "SELECT e.eno AS eno, e.sal AS sal FROM emp e WHERE e.sal > 5000 \
       ORDER BY sal, eno LIMIT 7"
  in
  let expected = Block.reference_eval cat q in
  let got, _ = Optimizer.run cat q in
  Alcotest.(check int) "limit applied" 7 (Relation.cardinality got);
  Alcotest.(check bool) "matches reference" true (Relation.multiset_equal expected got);
  let rec sorted = function
    | a :: (b :: _ as rest) -> Tuple.compare_at [| 1; 0 |] a b <= 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "output sorted" true (sorted (Relation.tuples got))

let order_by_qualified_and_agg () =
  let cat = Emp_dept.load ~params:small_params () in
  let q =
    Binder.bind_sql cat
      "SELECT e.dno AS dno, SUM(e.sal) AS total FROM emp e GROUP BY e.dno \
       ORDER BY e.dno LIMIT 3"
  in
  let got, _ = Optimizer.run cat q in
  Alcotest.(check int) "limit" 3 (Relation.cardinality got);
  let rec sorted = function
    | a :: (b :: _ as rest) -> Tuple.compare_at [| 0 |] a b <= 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "sorted by dno" true (sorted (Relation.tuples got))

let uncorrelated_scalar_subquery () =
  let cat = Emp_dept.load ~params:small_params () in
  let q =
    Binder.bind_sql cat
      "SELECT e.eno AS eno FROM emp e WHERE e.sal > (SELECT AVG(x.sal) FROM emp x)"
  in
  let expected = Block.reference_eval cat q in
  List.iter
    (fun algorithm ->
      let options = { Optimizer.default_options with algorithm } in
      let got, _ = Optimizer.run ~options cat q in
      Alcotest.(check bool) "above-average employees" true
        (Relation.multiset_equal expected got))
    [ Optimizer.Traditional; Optimizer.Paper ];
  (* sanity: strictly fewer than all, more than none *)
  let got, _ = Optimizer.run cat q in
  let n = Relation.cardinality got in
  Alcotest.(check bool) "plausible count" true (n > 0 && n < small_params.Emp_dept.emps)

let order_limit_errors () =
  let cat = Emp_dept.load ~params:small_params () in
  let expect_fail name sql =
    let failed =
      try ignore (Binder.bind_sql cat sql); false
      with Binder.Bind_error _ | Parser.Parse_error _ -> true
    in
    Alcotest.(check bool) name true failed
  in
  expect_fail "order by unselected column"
    "SELECT e.eno AS eno FROM emp e ORDER BY sal";
  expect_fail "negative limit" "SELECT e.eno AS eno FROM emp e LIMIT -1";
  expect_fail "order by in view"
    "CREATE VIEW v (a, b) AS SELECT e.dno, SUM(e.sal) FROM emp e GROUP BY e.dno ORDER BY a; \
     SELECT v.a AS a FROM v"

let more_tests =
  [
    Alcotest.test_case "ORDER BY + LIMIT" `Quick order_limit;
    Alcotest.test_case "ORDER BY qualified over grouped query" `Quick
      order_by_qualified_and_agg;
    Alcotest.test_case "uncorrelated scalar subquery" `Quick
      uncorrelated_scalar_subquery;
    Alcotest.test_case "ORDER BY / LIMIT error cases" `Quick order_limit_errors;
  ]

let sugar_queries () =
  let cat = Emp_dept.load ~params:small_params () in
  let check name sql =
    let q = Binder.bind_sql cat sql in
    let expected = Block.reference_eval cat q in
    let got, _ = Optimizer.run cat q in
    Alcotest.(check bool) name true (Relation.multiset_equal expected got)
  in
  check "BETWEEN desugars"
    "SELECT e.eno AS eno FROM emp e WHERE e.sal BETWEEN 3000 AND 4000";
  check "IN desugars"
    "SELECT e.eno AS eno FROM emp e WHERE e.dno IN (1, 3, 5)";
  check "DISTINCT groups"
    "SELECT DISTINCT e.dno AS dno FROM emp e WHERE e.sal > 6000"

let distinct_is_distinct () =
  let cat = Emp_dept.load ~params:small_params () in
  let q = Binder.bind_sql cat "SELECT DISTINCT e.dno AS dno FROM emp e" in
  let got, _ = Optimizer.run cat q in
  let n = Relation.cardinality got in
  let sorted = Relation.sort_by [| 0 |] got in
  let rec strictly = function
    | a :: (b :: _ as rest) ->
      Value.compare (Tuple.get a 0) (Tuple.get b 0) < 0 && strictly rest
    | _ -> true
  in
  Alcotest.(check bool) "no duplicates" true (strictly (Relation.tuples sorted));
  Alcotest.(check int) "one row per department" small_params.Emp_dept.depts n

let sugar_tests =
  [
    Alcotest.test_case "BETWEEN / IN / DISTINCT" `Quick sugar_queries;
    Alcotest.test_case "DISTINCT eliminates duplicates" `Quick distinct_is_distinct;
  ]
