(* TPC-D-like workload queries and randomly generated queries: all three
   optimizers must agree with the reference interpreter, and the paper
   algorithm must never be costlier than the traditional one. *)

let tiny = { Tpcd.default_params with customers = 60; orders_per_customer = 3;
             lines_per_order = 3; parts = 40; suppliers = 10 }

let check_query cat q algo =
  let expected = Logical.eval cat (Block.query_logical cat q) in
  let options = { Optimizer.default_options with algorithm = algo } in
  let result, _ = Optimizer.run ~options cat q in
  Relation.multiset_equal expected result

let tpcd_query name make () =
  let cat = Tpcd.load ~params:tiny () in
  let q = make () in
  List.iter
    (fun algo ->
      Alcotest.(check bool) name true (check_query cat q algo))
    [ Optimizer.Traditional; Optimizer.Greedy_conservative; Optimizer.Paper ]

let random_queries () =
  let cat = Tpcd.load ~params:tiny () in
  let rng = Rng.create ~seed:99 in
  for i = 1 to 25 do
    let q = Query_gen.generate rng cat in
    (match Block.validate cat q with
     | Ok () -> ()
     | Error e -> Alcotest.failf "generated query %d invalid: %s" i e);
    List.iter
      (fun algo ->
        if not (check_query cat q algo) then
          Alcotest.failf "query %d wrong under %s:@.%a" i
            (match algo with
             | Optimizer.Traditional -> "traditional"
             | Optimizer.Greedy_conservative -> "greedy"
             | Optimizer.Paper -> "paper")
            Block.pp q)
      [ Optimizer.Traditional; Optimizer.Greedy_conservative; Optimizer.Paper ]
  done

let never_worse () =
  let cat = Tpcd.load ~params:tiny () in
  let rng = Rng.create ~seed:7 in
  for i = 1 to 30 do
    let q = Query_gen.generate rng cat in
    let cost algo =
      let options = { Optimizer.default_options with algorithm = algo } in
      (Optimizer.optimize ~options cat q).Optimizer.est.Cost_model.cost
    in
    let trad = cost Optimizer.Traditional in
    let greedy = cost Optimizer.Greedy_conservative in
    let paper = cost Optimizer.Paper in
    if greedy > trad +. 1e-6 then
      Alcotest.failf "query %d: greedy %.1f > traditional %.1f" i greedy trad;
    if paper > greedy +. 1e-6 then
      Alcotest.failf "query %d: paper %.1f > greedy %.1f" i paper greedy
  done

let tests =
  [
    Alcotest.test_case "big spenders" `Quick (tpcd_query "big_spenders" (fun () -> Tpcd.q_big_spenders ()));
    Alcotest.test_case "small quantity parts (Q17 shape)" `Quick
      (tpcd_query "q17" (fun () -> Tpcd.q_small_quantity_parts ()));
    Alcotest.test_case "two views (Fig 5 shape)" `Quick
      (tpcd_query "two_views" (fun () -> Tpcd.q_two_views ()));
    Alcotest.test_case "25 random queries, 3 algorithms" `Slow random_queries;
    Alcotest.test_case "cost monotone: paper <= greedy <= traditional" `Slow never_worse;
  ]

(* Extended differential fuzz: rich queries (multi-relation views, HAVING,
   several aggregates) over all three schema families. *)
let fuzz_all_schemas () =
  let catalogs =
    [
      ("tpcd", Tpcd.load ~params:tiny ());
      ("star", Star.load ~params:{ Star.default_params with days = 20;
                                   products = 30; stores = 6; rows_per_day = 30 } ());
      ("chain", Chain.load ~rows:300 ~n:4 ());
    ]
  in
  List.iter
    (fun (name, cat) ->
      let rng = Rng.create ~seed:4242 in
      for i = 1 to 12 do
        let q = Query_gen.generate ~complexity:`Rich rng cat in
        (match Block.validate cat q with
         | Ok () -> ()
         | Error e -> Alcotest.failf "%s query %d invalid: %s" name i e);
        let expected = Block.reference_eval cat q in
        List.iter
          (fun algo ->
            let options = { Optimizer.default_options with algorithm = algo } in
            let r = Optimizer.optimize ~options cat q in
            (match Plan_check.check cat r.Optimizer.plan with
             | Ok () -> ()
             | Error m ->
               Alcotest.failf "%s query %d: invalid plan (%s):@.%a" name i m
                 Block.pp q);
            let ctx = Exec_ctx.create cat in
            let got = Executor.run ctx r.Optimizer.plan in
            if not (Relation.multiset_equal expected got) then
              Alcotest.failf "%s query %d wrong result:@.%a" name i Block.pp q)
          [ Optimizer.Traditional; Optimizer.Greedy_conservative; Optimizer.Paper ]
      done)
    catalogs

let fuzz_tests =
  [ Alcotest.test_case "rich fuzz across schemas (36 queries x 3 algos)" `Slow
      fuzz_all_schemas ]
