(* Unit and property tests for the relation substrate: values, schemas,
   tuples, in-memory relations. *)

let value_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun i -> Value.Int i) (int_range (-1000) 1000);
        map (fun f -> Value.Float f) (float_bound_inclusive 1000.);
        map (fun s -> Value.String s) (string_size ~gen:(char_range 'a' 'z') (return 5));
        map (fun b -> Value.Bool b) bool;
      ])

let value_arb = QCheck.make ~print:Value.to_string value_gen

let same_kind a b =
  match a, b with
  | (Value.Int _ | Value.Float _), (Value.Int _ | Value.Float _) -> true
  | Value.String _, Value.String _ | Value.Bool _, Value.Bool _ -> true
  | Value.Date _, Value.Date _ -> true
  | _ -> false

let prop_compare_antisym =
  QCheck.Test.make ~name:"Value.compare antisymmetric" ~count:500
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      QCheck.assume (same_kind a b);
      Value.compare a b = -Value.compare b a)

let prop_compare_refl =
  QCheck.Test.make ~name:"Value.compare reflexive & hash consistent" ~count:500
    value_arb (fun v -> Value.compare v v = 0 && Value.hash v = Value.hash v)

let prop_hash_eq =
  QCheck.Test.make ~name:"equal values hash equally (int/float mix)" ~count:200
    QCheck.(int_range (-100) 100) (fun i ->
      Value.equal (Value.Int i) (Value.Float (float_of_int i))
      && Value.hash (Value.Int i) = Value.hash (Value.Float (float_of_int i)))

let prop_minmax =
  QCheck.Test.make ~name:"min/max consistent with compare" ~count:500
    (QCheck.pair value_arb value_arb) (fun (a, b) ->
      QCheck.assume (same_kind a b);
      Value.compare (Value.min_value a b) (Value.max_value a b) <= 0)

let arithmetic () =
  Alcotest.(check string) "int add" "7" (Value.to_string (Value.add (Value.Int 3) (Value.Int 4)));
  Alcotest.(check string) "mixed mul" "7.5"
    (Value.to_string (Value.mul (Value.Int 3) (Value.Float 2.5)));
  Alcotest.(check string) "int div is float" "1.5"
    (Value.to_string (Value.div (Value.Int 3) (Value.Int 2)));
  Alcotest.(check string) "date minus int" "date:5"
    (Value.to_string (Value.sub (Value.Date 7) (Value.Int 2)));
  Alcotest.check_raises "div by zero" (Value.Type_error "div: division by zero")
    (fun () -> ignore (Value.div (Value.Int 1) (Value.Int 0)));
  (match Value.add (Value.String "a") (Value.Int 1) with
   | exception Value.Type_error _ -> ()
   | v -> Alcotest.failf "string+int should fail, got %s" (Value.to_string v))

let schema_fixture () =
  Schema.of_columns
    [
      Schema.column ~qual:"e" "dno" Datatype.Int;
      Schema.column ~qual:"e" "sal" Datatype.Int;
      Schema.column ~qual:"d" "dno" Datatype.Int;
      Schema.column ~qual:"d" "name" Datatype.String;
    ]

let schema_lookup () =
  let s = schema_fixture () in
  Alcotest.(check (option int)) "qualified" (Some 2) (Schema.find s ~qual:"d" "dno");
  Alcotest.(check (option int)) "unqualified unique" (Some 3) (Schema.find s "name");
  Alcotest.check_raises "ambiguous" (Schema.Ambiguous "dno") (fun () ->
      ignore (Schema.find s "dno"));
  Alcotest.(check (option int)) "missing" None (Schema.find s ~qual:"e" "name");
  Alcotest.(check int) "arity" 4 (Schema.arity s)

let schema_ops () =
  let s = schema_fixture () in
  let p = Schema.project s [ 3; 0 ] in
  Alcotest.(check int) "project arity" 2 (Schema.arity p);
  Alcotest.(check string) "project order" "d.name"
    (Schema.column_to_string (Schema.get p 0));
  let a = Schema.append p p in
  Alcotest.(check int) "append arity" 4 (Schema.arity a);
  let r = Schema.rename_qualifier s "x" in
  Alcotest.(check (option int)) "renamed" (Some 0) (Schema.find r ~qual:"x" "dno" |> fun o -> o);
  Alcotest.(check bool) "byte width positive" true (Schema.byte_width s > 0)

let tuple_ops () =
  let t = Tuple.make [ Value.Int 1; Value.String "x"; Value.Int 3 ] in
  Alcotest.(check int) "arity" 3 (Tuple.arity t);
  Alcotest.(check string) "project" "[3; 1]"
    (Tuple.to_string (Tuple.project t [ 2; 0 ]));
  let u = Tuple.concat t t in
  Alcotest.(check int) "concat" 6 (Tuple.arity u);
  Alcotest.(check int) "compare equal" 0 (Tuple.compare t t);
  Alcotest.(check bool) "compare_at picks columns" true
    (Tuple.compare_at [| 0 |] t (Tuple.make [ Value.Int 2; Value.Int 0; Value.Int 0 ]) < 0)

let relation_multiset () =
  let s = Schema.of_columns [ Schema.column "a" Datatype.Int ] in
  let mk l = Relation.create s (List.map (fun i -> Tuple.make [ Value.Int i ]) l) in
  Alcotest.(check bool) "permutation equal" true
    (Relation.multiset_equal (mk [ 1; 2; 2; 3 ]) (mk [ 3; 2; 1; 2 ]));
  Alcotest.(check bool) "multiplicity matters" false
    (Relation.multiset_equal (mk [ 1; 2; 2 ]) (mk [ 1; 1; 2 ]));
  Alcotest.(check bool) "cardinality differs" false
    (Relation.multiset_equal (mk [ 1 ]) (mk [ 1; 1 ]));
  let sorted = Relation.sort_by [| 0 |] (mk [ 3; 1; 2 ]) in
  Alcotest.(check string) "sort_by" "[1]"
    (Tuple.to_string (List.hd (Relation.tuples sorted)))

let tests =
  [
    QCheck_alcotest.to_alcotest prop_compare_antisym;
    QCheck_alcotest.to_alcotest prop_compare_refl;
    QCheck_alcotest.to_alcotest prop_hash_eq;
    QCheck_alcotest.to_alcotest prop_minmax;
    Alcotest.test_case "value arithmetic" `Quick arithmetic;
    Alcotest.test_case "schema lookup" `Quick schema_lookup;
    Alcotest.test_case "schema project/append/rename" `Quick schema_ops;
    Alcotest.test_case "tuple operations" `Quick tuple_ops;
    Alcotest.test_case "relation multiset equality" `Quick relation_multiset;
  ]
