(* Optimizer-level tests: normalization, DP behavior, option effects,
   determinism, and plan/report structure. *)

let c ~q n = Schema.column ~qual:q n Datatype.Int

let normalize_rewrites_exports () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 200; depts = 5 } () in
  let nq = Normalize.normalize cat (Emp_dept.example1 ()) in
  (* The outer join predicate e1.dno = b.dno must now reference e2.dno. *)
  let mentions_e2 =
    List.exists
      (fun p ->
        List.exists
          (fun (col : Schema.column) -> String.equal col.Schema.cqual "e2")
          (Expr.pred_columns p))
      nq.Normalize.preds
  in
  Alcotest.(check bool) "exported key rewritten to base column" true mentions_e2;
  let mentions_b_dno =
    List.exists
      (fun p ->
        List.exists
          (fun (col : Schema.column) ->
            String.equal col.Schema.cqual "b" && String.equal col.Schema.cname "dno")
          (Expr.pred_columns p))
      nq.Normalize.preds
  in
  Alcotest.(check bool) "no remaining b.dno reference" false mentions_b_dno;
  (* The aggregate-output reference must stay as b.asal. *)
  let agg_pred =
    List.find_opt (fun p -> Normalize.agg_quals_of_pred nq p = [ "b" ]) nq.Normalize.preds
  in
  Alcotest.(check bool) "aggregate predicate detected" true (agg_pred <> None);
  (match agg_pred with
   | Some p ->
     Alcotest.(check (list string)) "pred_aliases expands agg quals"
       [ "e1"; "e2" ] (Normalize.pred_aliases nq p)
   | None -> ())

let dp_single_relation () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 500; depts = 5 } () in
  let input =
    {
      Dp.items = [ { Dp.covers = [ "e" ]; access = Dp.A_base { alias = "e"; table = "emp" } } ];
      preds =
        [ Expr.Cmp (Expr.Lt, Expr.Col (c ~q:"e" "age"), Expr.int 25) ];
      group = None;
      early_grouping = false;
      bushy = false;
    }
  in
  let entry = Dp.optimize cat ~work_mem:32 input in
  Alcotest.(check bool) "positive cost" true (entry.Dp.est.Cost_model.cost > 0.);
  let rel = Executor.run (Exec_ctx.create cat) entry.Dp.plan in
  Relation.iter
    (fun t ->
      match Tuple.get t 3 with
      | Value.Int age when age < 25 -> ()
      | v -> Alcotest.failf "filter not applied: %s" (Value.to_string v))
    rel

let dp_optimality_vs_exhaustive () =
  (* For a 3-relation chain, DP's plan must not cost more than every
     left-deep BNL/hash variant we can enumerate by hand. *)
  let cat = Chain.load ~rows:500 ~n:3 () in
  let q = Chain.flat_query ~n:3 in
  let r = Optimizer.optimize ~options:{ Optimizer.default_options with algorithm = Optimizer.Traditional } cat q in
  let scan a t = Physical.Seq_scan { alias = a; table = t; filter = [] } in
  let pred a b =
    Expr.Cmp (Expr.Eq, Expr.Col (c ~q:b "fk"), Expr.Col (c ~q:a "k"))
  in
  let orders =
    [ [ ("a0", "t0"); ("a1", "t1"); ("a2", "t2") ];
      [ ("a1", "t1"); ("a0", "t0"); ("a2", "t2") ];
      [ ("a2", "t2"); ("a1", "t1"); ("a0", "t0") ] ]
  in
  let manual_cost order =
    match order with
    | [ (a1, t1); (a2, t2); (a3, t3) ] ->
      let join l (al, r) cond =
        Physical.Hash_join
          { left = l; right = scan al r;
            keys = (match Expr.as_equijoin cond with Some (x, y) ->
              (* orient left-covered column first *)
              (match x.Schema.cqual = al with
               | true -> [ (y, x) ]
               | false -> [ (x, y) ])
              | None -> []);
            cond = []; build_side = `Right }
      in
      let j1 =
        join (scan a1 t1) (a2, t2)
          (if a1 < a2 then pred a1 a2 else pred a2 a1)
      in
      let j2 = join j1 (a3, t3) (if a2 < a3 then pred a2 a3 else pred a3 a2) in
      let top =
        Physical.Hash_group
          { input = j2; agg_qual = ""; keys = [ c ~q:"a2" "k" ];
            aggs = [ Aggregate.make Aggregate.Sum ~arg:(Expr.Col (c ~q:"a0" "v")) "total" ];
            having = [] }
      in
      (Cost_model.estimate cat ~work_mem:32 top).Cost_model.cost
    | _ -> assert false
  in
  List.iter
    (fun order ->
      let manual = manual_cost order in
      Alcotest.(check bool)
        (Printf.sprintf "dp (%.1f) <= manual (%.1f)" r.Optimizer.est.Cost_model.cost manual)
        true
        (r.Optimizer.est.Cost_model.cost <= manual +. 1e-6))
    orders

let determinism () =
  let cat = Tpcd.load ~params:{ Tpcd.default_params with customers = 100 } () in
  let q = Tpcd.q_big_spenders () in
  let p1 = (Optimizer.optimize cat q).Optimizer.plan in
  let p2 = (Optimizer.optimize cat q).Optimizer.plan in
  Alcotest.(check string) "same plan across runs" (Physical.to_string p1)
    (Physical.to_string p2)

let k_zero_disables_pullup () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 2000; depts = 50 } () in
  let q = Emp_dept.example1 () in
  let opts k =
    { Optimizer.default_options with
      paper = { Paper_opt.default_options with k_pullup = k } }
  in
  let r0 = Optimizer.optimize ~options:(opts 0) cat q in
  Alcotest.(check int) "k=0: no pulled variants beyond W=V-V'" 0
    r0.Optimizer.search.Search_stats.pullups;
  let r2 = Optimizer.optimize ~options:(opts 2) cat q in
  Alcotest.(check bool) "k=2 explores pull-ups" true
    (r2.Optimizer.search.Search_stats.pullups > 0);
  Alcotest.(check bool) "larger space never increases est cost" true
    (r2.Optimizer.est.Cost_model.cost <= r0.Optimizer.est.Cost_model.cost +. 1e-6)

let report_structure () =
  let cat = Tpcd.load ~params:{ Tpcd.default_params with customers = 150 } () in
  let q = Tpcd.q_two_views () in
  let r = Optimizer.optimize cat q in
  match r.Optimizer.report with
  | None -> Alcotest.fail "paper run must produce a report"
  | Some rep ->
    Alcotest.(check int) "one minimal set per view" 2
      (List.length rep.Paper_opt.minimal_sets);
    Alcotest.(check bool) "phase-1 enumerated pulled plans" true
      (List.length rep.Paper_opt.pulled_plans >= 2);
    Alcotest.(check int) "one chosen W per view" 2 (List.length rep.Paper_opt.chosen_w);
    Alcotest.(check bool) "combos tried" true (rep.Paper_opt.combos_tried >= 1)

let search_stats_monotone () =
  (* Greedy explores at least as much as traditional on a grouped block. *)
  let cat = Chain.load ~n:4 () in
  let q = Chain.flat_query ~n:4 in
  let run algo =
    (Optimizer.optimize ~options:{ Optimizer.default_options with algorithm = algo } cat q).Optimizer.search
  in
  let t = run Optimizer.Traditional and g = run Optimizer.Greedy_conservative in
  Alcotest.(check int) "traditional considers no group placements" 0
    t.Search_stats.group_plans;
  Alcotest.(check bool) "greedy considers group placements" true
    (g.Search_stats.group_plans > 0)

let work_mem_changes_plans () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 30_000; depts = 2000 } () in
  let q = Emp_dept.example2 () in
  let cost wm =
    (Optimizer.optimize
       ~options:{ Optimizer.default_options with work_mem = wm } cat q)
      .Optimizer.est.Cost_model.cost
  in
  Alcotest.(check bool) "more memory never hurts the estimate" true
    (cost 128 <= cost 4 +. 1e-6)

let tests =
  [
    Alcotest.test_case "normalize rewrites view exports" `Quick normalize_rewrites_exports;
    Alcotest.test_case "dp single relation with filter" `Quick dp_single_relation;
    Alcotest.test_case "dp no worse than manual plans" `Quick dp_optimality_vs_exhaustive;
    Alcotest.test_case "optimization is deterministic" `Quick determinism;
    Alcotest.test_case "k-level pull-up restriction" `Quick k_zero_disables_pullup;
    Alcotest.test_case "paper report structure" `Quick report_structure;
    Alcotest.test_case "search counters by algorithm" `Quick search_stats_monotone;
    Alcotest.test_case "work_mem monotonicity" `Quick work_mem_changes_plans;
  ]

let bushy_extension () =
  let cat = Tpcd.load ~params:{ Tpcd.default_params with customers = 150 } () in
  let q = Tpcd.q_two_views () in
  let run bushy =
    Optimizer.optimize
      ~options:
        { Optimizer.default_options with
          paper = { Paper_opt.default_options with bushy } }
      cat q
  in
  let linear = run false and bushy = run true in
  Alcotest.(check bool) "bushy space includes linear: est never worse" true
    (bushy.Optimizer.est.Cost_model.cost <= linear.Optimizer.est.Cost_model.cost +. 1e-6);
  Alcotest.(check bool) "bushy explores more joins" true
    (bushy.Optimizer.search.Search_stats.join_plans
     >= linear.Optimizer.search.Search_stats.join_plans);
  (match Plan_check.check cat bushy.Optimizer.plan with
   | Ok () -> ()
   | Error m -> Alcotest.failf "bushy plan invalid: %s" m);
  let expected = Block.reference_eval cat q in
  let ctx = Exec_ctx.create cat in
  let got = Executor.run ctx bushy.Optimizer.plan in
  Alcotest.(check bool) "bushy plan correct" true (Relation.multiset_equal expected got)

let bushy_tests = [ Alcotest.test_case "bushy join trees" `Quick bushy_extension ]
