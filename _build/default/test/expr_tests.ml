(* Expression and predicate tests: compilation, static analysis,
   substitution and comparison semantics. *)

let schema =
  Schema.of_columns
    [
      Schema.column ~qual:"t" "a" Datatype.Int;
      Schema.column ~qual:"t" "b" Datatype.Int;
      Schema.column ~qual:"u" "c" Datatype.Float;
    ]

let tup a b c = Tuple.make [ Value.Int a; Value.Int b; Value.Float c ]

let ca = Schema.column ~qual:"t" "a" Datatype.Int
let cb = Schema.column ~qual:"t" "b" Datatype.Int
let cc = Schema.column ~qual:"u" "c" Datatype.Float

let eval_expr () =
  let e = Expr.Binop (Expr.Add, Expr.Col ca, Expr.Binop (Expr.Mul, Expr.Col cb, Expr.int 3)) in
  let f = Expr.compile schema e in
  Alcotest.(check string) "a + b*3" "11" (Value.to_string (f (tup 2 3 0.)));
  let d = Expr.compile schema (Expr.Binop (Expr.Div, Expr.Col ca, Expr.Col cb)) in
  Alcotest.(check string) "div promotes" "2.5" (Value.to_string (d (tup 5 2 0.)))

let eval_pred () =
  let p =
    Expr.And
      ( Expr.Cmp (Expr.Gt, Expr.Col ca, Expr.int 1),
        Expr.Or
          ( Expr.Cmp (Expr.Le, Expr.Col cb, Expr.int 0),
            Expr.Not (Expr.Cmp (Expr.Eq, Expr.Col cc, Expr.flt 1.0)) ) )
  in
  let f = Expr.compile_pred schema p in
  Alcotest.(check bool) "true branch" true (f (tup 2 5 2.0));
  Alcotest.(check bool) "false: a too small" false (f (tup 1 5 2.0));
  Alcotest.(check bool) "false: both disjuncts fail" false (f (tup 2 5 1.0))

let unresolved () =
  let ghost = Expr.Col (Schema.column ~qual:"x" "nope" Datatype.Int) in
  match Expr.compile schema ghost (tup 0 0 0.) with
  | exception Expr.Unresolved_column _ -> ()
  | v -> Alcotest.failf "expected Unresolved_column, got %s" (Value.to_string v)

let conjuncts_roundtrip =
  let pred_gen =
    QCheck.Gen.(
      let leaf =
        map (fun i -> Expr.Cmp (Expr.Eq, Expr.Col ca, Expr.int i)) (int_range 0 9)
      in
      fix
        (fun self n ->
          if n = 0 then leaf
          else
            frequency
              [
                (2, leaf);
                (3, map2 (fun a b -> Expr.And (a, b)) (self (n - 1)) (self (n - 1)));
                (1, map2 (fun a b -> Expr.Or (a, b)) (self (n - 1)) (self (n - 1)));
              ])
        3)
  in
  QCheck.Test.make ~name:"conjoin (conjuncts p) semantically equals p" ~count:200
    (QCheck.make ~print:Expr.pred_to_string pred_gen)
    (fun p ->
      let q = Option.get (Expr.conjoin (Expr.conjuncts p)) in
      let fp = Expr.compile_pred schema p and fq = Expr.compile_pred schema q in
      List.for_all
        (fun a -> fp (tup a (10 - a) 0.) = fq (tup a (10 - a) 0.))
        [ 0; 1; 2; 5; 9 ])

let analysis () =
  let p =
    Expr.And
      ( Expr.Cmp (Expr.Eq, Expr.Col ca, Expr.Col cc),
        Expr.Cmp (Expr.Lt, Expr.Col cb, Expr.int 5) )
  in
  Alcotest.(check (list string)) "qualifiers" [ "t"; "u" ] (Expr.qualifiers p);
  Alcotest.(check int) "columns" 3 (List.length (Expr.pred_columns p));
  (match Expr.as_equijoin (Expr.Cmp (Expr.Eq, Expr.Col ca, Expr.Col cc)) with
   | Some (a, b) ->
     Alcotest.(check string) "equijoin lhs" "t.a" (Schema.column_to_string a);
     Alcotest.(check string) "equijoin rhs" "u.c" (Schema.column_to_string b)
   | None -> Alcotest.fail "expected equijoin");
  Alcotest.(check bool) "same-qual eq is not a join" true
    (Expr.as_equijoin (Expr.Cmp (Expr.Eq, Expr.Col ca, Expr.Col cb)) = None)

let substitution () =
  let p = Expr.Cmp (Expr.Gt, Expr.Col ca, Expr.Col cb) in
  let q =
    Expr.subst_columns
      (fun c -> if Schema.column_equal c ca then Some cc else None)
      p
  in
  Alcotest.(check string) "substituted" "u.c > t.b" (Expr.pred_to_string q)

let types () =
  Alcotest.(check bool) "int+int" true
    (Datatype.equal (Expr.type_of (Expr.Binop (Expr.Add, Expr.Col ca, Expr.Col cb))) Datatype.Int);
  Alcotest.(check bool) "div is float" true
    (Datatype.equal (Expr.type_of (Expr.Binop (Expr.Div, Expr.Col ca, Expr.Col cb))) Datatype.Float);
  Alcotest.(check bool) "mixed is float" true
    (Datatype.equal (Expr.type_of (Expr.Binop (Expr.Add, Expr.Col ca, Expr.Col cc))) Datatype.Float)

let tests =
  [
    Alcotest.test_case "expression evaluation" `Quick eval_expr;
    Alcotest.test_case "predicate evaluation" `Quick eval_pred;
    Alcotest.test_case "unresolved column" `Quick unresolved;
    QCheck_alcotest.to_alcotest conjuncts_roundtrip;
    Alcotest.test_case "static analysis" `Quick analysis;
    Alcotest.test_case "column substitution" `Quick substitution;
    Alcotest.test_case "type inference" `Quick types;
  ]
