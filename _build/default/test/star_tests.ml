(* Star-schema workload: correctness across algorithms, invariant grouping
   on the dimension joins, and pull-up over the self-referencing view. *)

let tiny =
  { Star.default_params with days = 30; products = 50; stores = 8; rows_per_day = 40 }

let check q algo cat =
  let expected = Block.reference_eval cat q in
  let options = { Optimizer.default_options with algorithm = algo } in
  let got, _ = Optimizer.run ~options cat q in
  Relation.multiset_equal expected got

let all_algos name make () =
  let cat = Star.load ~params:tiny () in
  let q = make () in
  List.iter
    (fun algo -> Alcotest.(check bool) name true (check q algo cat))
    [ Optimizer.Traditional; Optimizer.Greedy_conservative; Optimizer.Paper ]

let category_revenue_sorted () =
  let cat = Star.load ~params:tiny () in
  let got, _ = Optimizer.run cat (Star.q_category_revenue ()) in
  let rec sorted = function
    | a :: (b :: _ as rest) ->
      Value.compare (Tuple.get a 0) (Tuple.get b 0) <= 0 && sorted rest
    | _ -> true
  in
  Alcotest.(check bool) "revenue ordered by month" true (sorted (Relation.tuples got));
  Alcotest.(check bool) "nonempty" true (Relation.cardinality got > 0)

let dimension_mis () =
  (* Written as a view, the category-revenue query's dimension joins are
     exactly the invariant-grouping case: both dimensions join N:1 on their
     keys... but only [product] survives removal because [dates.month] (a
     non-key dimension attribute) is the grouping column. *)
  let cat = Star.load ~params:tiny () in
  let q = Star.q_category_revenue () in
  let nq = Normalize.normalize cat q in
  Alcotest.(check int) "flat query has no views" 0 (List.length nq.Normalize.views)

let pullup_chosen_when_selective () =
  let params = { Star.default_params with rows_per_day = 400; days = 120 } in
  let cat = Star.load ~params () in
  let q = Star.q_above_average_products () in
  let t =
    Optimizer.optimize
      ~options:{ Optimizer.default_options with algorithm = Optimizer.Traditional } cat q
  in
  let p = Optimizer.optimize cat q in
  Alcotest.(check bool)
    (Printf.sprintf "paper (%.0f) <= traditional (%.0f)" p.Optimizer.est.Cost_model.cost
       t.Optimizer.est.Cost_model.cost)
    true
    (p.Optimizer.est.Cost_model.cost <= t.Optimizer.est.Cost_model.cost +. 1e-6)

let tests =
  [
    Alcotest.test_case "category revenue, all algorithms" `Quick
      (all_algos "category_revenue" (fun () -> Star.q_category_revenue ()));
    Alcotest.test_case "above-average products, all algorithms" `Quick
      (all_algos "above_avg" (fun () -> Star.q_above_average_products ()));
    Alcotest.test_case "ORDER BY month respected" `Quick category_revenue_sorted;
    Alcotest.test_case "flat star query normalizes without views" `Quick dimension_mis;
    Alcotest.test_case "paper never above traditional" `Quick pullup_chosen_when_selective;
  ]
