(* Aggregate function tests: runtime folding, merge (decomposability
   witness), and the partial/combine decomposition used by simple
   coalescing. *)

let fold_values func values =
  let st = List.fold_left (fun st v -> Aggregate.step st (Some v)) (Aggregate.init func) values in
  Aggregate.finish st

let direct () =
  let ints l = List.map (fun i -> Value.Int i) l in
  Alcotest.(check string) "sum" "10" (Value.to_string (fold_values Aggregate.Sum (ints [ 1; 2; 3; 4 ])));
  Alcotest.(check string) "min" "-5" (Value.to_string (fold_values Aggregate.Min (ints [ 1; -5; 3 ])));
  Alcotest.(check string) "max" "3" (Value.to_string (fold_values Aggregate.Max (ints [ 1; -5; 3 ])));
  Alcotest.(check string) "avg" "2.5" (Value.to_string (fold_values Aggregate.Avg (ints [ 1; 2; 3; 4 ])));
  let st = List.fold_left (fun st () -> Aggregate.step st None) (Aggregate.init Aggregate.Count_star) [ (); (); () ] in
  Alcotest.(check string) "count star" "3" (Value.to_string (Aggregate.finish st))

let empty_group () =
  match Aggregate.finish (Aggregate.init Aggregate.Sum) with
  | exception Invalid_argument _ -> ()
  | v -> Alcotest.failf "empty SUM should fail, got %s" (Value.to_string v)

let funcs = [ Aggregate.Sum; Aggregate.Min; Aggregate.Max; Aggregate.Avg ]

let prop_merge_is_split =
  (* Splitting a value list at any point and merging the two states equals
     folding the whole list: the decomposability property. *)
  QCheck.Test.make ~name:"merge (fold xs) (fold ys) = fold (xs @ ys)" ~count:300
    (QCheck.triple
       (QCheck.list_of_size (QCheck.Gen.int_range 1 30) (QCheck.int_range (-100) 100))
       (QCheck.list_of_size (QCheck.Gen.int_range 1 30) (QCheck.int_range (-100) 100))
       (QCheck.int_range 0 3))
    (fun (xs, ys, fidx) ->
      let func = List.nth funcs fidx in
      let fold l =
        List.fold_left
          (fun st v -> Aggregate.step st (Some (Value.Int v)))
          (Aggregate.init func) l
      in
      let merged = Aggregate.finish (Aggregate.merge (fold xs) (fold ys)) in
      let whole = Aggregate.finish (fold (xs @ ys)) in
      Value.compare merged whole = 0)

(* Decompose: run partials on two sub-groups, then combine — must equal the
   direct aggregate over the union (each sub-group plays the role of a
   partial group that agrees on the grouping columns). *)
let check_decompose func (xs, ys) =
  let arg_col = Schema.column ~qual:"t" "x" Datatype.Int in
  let agg =
    match func with
    | Aggregate.Count_star -> Aggregate.make Aggregate.Count_star "out"
    | f -> Aggregate.make f ~arg:(Expr.Col arg_col) "out"
  in
  let d = Aggregate.decompose ~qual:"g" agg in
  let schema = Schema.of_columns [ arg_col ] in
  let run_partials values =
    List.map
      (fun (p : Aggregate.t) ->
        let f =
          match p.Aggregate.arg with
          | None -> fun _ -> None
          | Some e ->
            let g = Expr.compile schema e in
            fun t -> Some (g t)
        in
        List.fold_left
          (fun st v -> Aggregate.step st (f (Tuple.make [ Value.Int v ])))
          (Aggregate.init p.Aggregate.func)
          values
        |> Aggregate.finish)
      d.Aggregate.partials
  in
  (* feed both partial rows into the combining aggregates *)
  let partial_schema =
    Schema.of_columns
      (List.map
         (fun (p : Aggregate.t) ->
           Schema.column ~qual:"g" p.Aggregate.out_name (Aggregate.result_type p))
         d.Aggregate.partials)
  in
  let combined =
    List.map
      (fun (c : Aggregate.t) ->
        let f =
          match c.Aggregate.arg with
          | Some e -> Expr.compile partial_schema e
          | None -> fun _ -> Value.Int 1
        in
        List.fold_left
          (fun st row -> Aggregate.step st (Some (f (Tuple.make row))))
          (Aggregate.init c.Aggregate.func)
          [ run_partials xs; run_partials ys ]
        |> Aggregate.finish)
      d.Aggregate.combine
  in
  let combine_schema =
    Schema.of_columns
      (List.map
         (fun (c : Aggregate.t) ->
           Schema.column ~qual:"g" c.Aggregate.out_name (Aggregate.result_type c))
         d.Aggregate.combine)
  in
  let final =
    match d.Aggregate.post with
    | None -> List.hd combined
    | Some (e, _) -> Expr.compile combine_schema e (Tuple.make combined)
  in
  let direct =
    let f st v =
      match func with
      | Aggregate.Count_star -> Aggregate.step st None
      | _ -> Aggregate.step st (Some (Value.Int v))
    in
    Aggregate.finish (List.fold_left f (Aggregate.init func) (xs @ ys))
  in
  Value.compare final direct = 0

let prop_decompose =
  QCheck.Test.make ~name:"decompose: partials + combine (+post) = direct" ~count:200
    (QCheck.triple
       (QCheck.list_of_size (QCheck.Gen.int_range 1 20) (QCheck.int_range (-50) 50))
       (QCheck.list_of_size (QCheck.Gen.int_range 1 20) (QCheck.int_range (-50) 50))
       (QCheck.int_range 0 4))
    (fun (xs, ys, fidx) ->
      let func =
        List.nth
          [ Aggregate.Sum; Aggregate.Min; Aggregate.Max; Aggregate.Avg; Aggregate.Count_star ]
          fidx
      in
      check_decompose func (xs, ys))

let result_types () =
  let c = Schema.column ~qual:"t" "x" Datatype.Int in
  let mk f = Aggregate.make f ~arg:(Expr.Col c) "o" in
  Alcotest.(check bool) "sum int" true
    (Datatype.equal (Aggregate.result_type (mk Aggregate.Sum)) Datatype.Int);
  Alcotest.(check bool) "avg float" true
    (Datatype.equal (Aggregate.result_type (mk Aggregate.Avg)) Datatype.Float);
  Alcotest.(check bool) "count int" true
    (Datatype.equal (Aggregate.result_type (Aggregate.make Aggregate.Count_star "o")) Datatype.Int);
  Alcotest.check_raises "count star with arg"
    (Invalid_argument "Aggregate.make: COUNT(*) takes no argument") (fun () ->
      ignore (Aggregate.make Aggregate.Count_star ~arg:(Expr.Col c) "o"));
  Alcotest.check_raises "sum without arg"
    (Invalid_argument "Aggregate.make: missing argument") (fun () ->
      ignore (Aggregate.make Aggregate.Sum "o"))

let tests =
  [
    Alcotest.test_case "direct folding" `Quick direct;
    Alcotest.test_case "empty group rejected" `Quick empty_group;
    QCheck_alcotest.to_alcotest prop_merge_is_split;
    QCheck_alcotest.to_alcotest prop_decompose;
    Alcotest.test_case "result types and arity checks" `Quick result_types;
  ]

(* ---- user-defined aggregates (paper: "built-in or user-defined") ---- *)

let stddev_direct () =
  let arg = Expr.Col (Schema.column ~qual:"t" "x" Datatype.Int) in
  let sd = Aggregate.stddev ~arg "sd" in
  let st =
    List.fold_left
      (fun st v -> Aggregate.step st (Some (Value.Int v)))
      (Aggregate.init sd.Aggregate.func) [ 2; 4; 4; 4; 5; 5; 7; 9 ]
  in
  (match Aggregate.finish st with
   | Value.Float f -> Alcotest.(check (float 0.0001)) "population stddev" 2.0 f
   | v -> Alcotest.failf "expected float, got %s" (Value.to_string v));
  Alcotest.(check bool) "not decomposable" false (Aggregate.is_decomposable sd);
  (match Aggregate.decompose ~qual:"g" sd with
   | exception Invalid_argument _ -> ()
   | _ -> Alcotest.fail "decompose must refuse UDFs")

let stddev_in_query () =
  (* A view computing stddev per department: pull-up must still work, and
     coalescing must be silently skipped (non-decomposable). *)
  let cat =
    Emp_dept.load ~params:{ Emp_dept.default_params with emps = 800; depts = 20 } ()
  in
  let c ~q n = Schema.column ~qual:q n Datatype.Int in
  let sd = Aggregate.stddev ~arg:(Expr.Col (c ~q:"e2" "sal")) "sd" in
  let view =
    {
      Block.v_alias = "b";
      v_rels = [ { Block.r_alias = "e2"; r_table = "emp" } ];
      v_preds = [];
      v_keys = [ c ~q:"e2" "dno" ];
      v_aggs = [ sd ];
      v_having = [];
      v_out = [ Block.Out_key (c ~q:"e2" "dno", "dno"); Block.Out_agg sd ];
    }
  in
  let q =
    {
      Block.q_views = [ view ];
      q_rels = [ { Block.r_alias = "e1"; r_table = "emp" } ];
      q_preds =
        [
          Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"e1" "dno"), Expr.Col (c ~q:"b" "dno"));
          Expr.Cmp (Expr.Lt, Expr.Col (c ~q:"e1" "age"), Expr.int 25);
          Expr.Cmp
            ( Expr.Gt,
              Expr.Col (c ~q:"e1" "sal"),
              Expr.Binop
                ( Expr.Mul,
                  Expr.flt 1.5,
                  Expr.Col (Schema.column ~qual:"b" "sd" Datatype.Float) ) );
        ];
      q_grouped = false;
      q_keys = [];
      q_aggs = [];
      q_having = [];
      q_select = [ Block.Sel_col (c ~q:"e1" "eno", "eno") ];
      q_order = [];
      q_limit = None;
    }
  in
  let expected = Block.reference_eval cat q in
  List.iter
    (fun algorithm ->
      let options = { Optimizer.default_options with algorithm } in
      let got, _ = Optimizer.run ~options cat q in
      Alcotest.(check bool) "stddev view query" true
        (Relation.multiset_equal expected got))
    [ Optimizer.Traditional; Optimizer.Greedy_conservative; Optimizer.Paper ]

let udf_tests =
  [
    Alcotest.test_case "stddev UDF folding and gating" `Quick stddev_direct;
    Alcotest.test_case "stddev view across all algorithms" `Quick stddev_in_query;
  ]
