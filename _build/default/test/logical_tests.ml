(* Reference-interpreter tests: small hand-checkable trees. *)

let mini_catalog () =
  let cat = Catalog.create ~frames:32 () in
  ignore
    (Catalog.add_table cat ~name:"r"
       ~columns:[ ("k", Datatype.Int); ("g", Datatype.Int); ("v", Datatype.Int) ]
       ~pk:[ "k" ]
       [
         Tuple.make [ Value.Int 0; Value.Int 1; Value.Int 10 ];
         Tuple.make [ Value.Int 1; Value.Int 1; Value.Int 20 ];
         Tuple.make [ Value.Int 2; Value.Int 2; Value.Int 30 ];
         Tuple.make [ Value.Int 3; Value.Int 2; Value.Int 40 ];
         Tuple.make [ Value.Int 4; Value.Int 3; Value.Int 50 ];
       ]);
  ignore
    (Catalog.add_table cat ~name:"s"
       ~columns:[ ("g", Datatype.Int); ("w", Datatype.Int) ]
       ~pk:[ "g" ]
       [
         Tuple.make [ Value.Int 1; Value.Int 100 ];
         Tuple.make [ Value.Int 2; Value.Int 200 ];
         Tuple.make [ Value.Int 9; Value.Int 900 ];
       ]);
  cat

let c ~q n = Schema.column ~qual:q n Datatype.Int

let scan_filter () =
  let cat = mini_catalog () in
  let t =
    Logical.Filter
      {
        input = Logical.scan cat ~alias:"a" "r";
        pred = Expr.Cmp (Expr.Ge, Expr.Col (c ~q:"a" "v"), Expr.int 30);
      }
  in
  Alcotest.(check int) "filtered rows" 3 (Relation.cardinality (Logical.eval cat t))

let join_eval () =
  let cat = mini_catalog () in
  let t =
    Logical.Join
      {
        left = Logical.scan cat ~alias:"a" "r";
        right = Logical.scan cat ~alias:"b" "s";
        cond = [ Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"a" "g"), Expr.Col (c ~q:"b" "g")) ];
      }
  in
  let rel = Logical.eval cat t in
  Alcotest.(check int) "join rows" 4 (Relation.cardinality rel);
  Alcotest.(check int) "join arity" 5 (Schema.arity (Relation.schema rel));
  (* cross join *)
  let cross =
    Logical.Join
      { left = Logical.scan cat ~alias:"a" "r";
        right = Logical.scan cat ~alias:"b" "s"; cond = [] }
  in
  Alcotest.(check int) "cross rows" 15 (Relation.cardinality (Logical.eval cat cross))

let group_eval () =
  let cat = mini_catalog () in
  let t =
    Logical.Group
      {
        input = Logical.scan cat ~alias:"a" "r";
        agg_qual = "x";
        keys = [ c ~q:"a" "g" ];
        aggs =
          [
            Aggregate.make Aggregate.Sum ~arg:(Expr.Col (c ~q:"a" "v")) "s";
            Aggregate.make Aggregate.Count_star "n";
          ];
        having = [];
      }
  in
  let rel = Relation.sort_by [| 0 |] (Logical.eval cat t) in
  Alcotest.(check int) "groups" 3 (Relation.cardinality rel);
  Alcotest.(check string) "group row" "[1; 30; 2]"
    (Tuple.to_string (List.hd (Relation.tuples rel)));
  (* having *)
  let with_having =
    Logical.Group
      {
        input = Logical.scan cat ~alias:"a" "r";
        agg_qual = "x";
        keys = [ c ~q:"a" "g" ];
        aggs = [ Aggregate.make Aggregate.Sum ~arg:(Expr.Col (c ~q:"a" "v")) "s" ];
        having = [ Expr.Cmp (Expr.Gt, Expr.Col (c ~q:"x" "s"), Expr.int 40) ];
      }
  in
  Alcotest.(check int) "having filters groups" 2
    (Relation.cardinality (Logical.eval cat with_having))

let scalar_group_empty_input () =
  let cat = mini_catalog () in
  let t =
    Logical.Group
      {
        input =
          Logical.Filter
            {
              input = Logical.scan cat ~alias:"a" "r";
              pred = Expr.Cmp (Expr.Gt, Expr.Col (c ~q:"a" "v"), Expr.int 10_000);
            };
        agg_qual = "x";
        keys = [];
        aggs = [ Aggregate.make Aggregate.Count_star "n" ];
        having = [];
      }
  in
  (* Documented deviation from SQL: empty input yields zero rows. *)
  Alcotest.(check int) "empty scalar group" 0 (Relation.cardinality (Logical.eval cat t))

let project_eval () =
  let cat = mini_catalog () in
  let t =
    Logical.Project
      {
        input = Logical.scan cat ~alias:"a" "r";
        cols =
          [
            ( Expr.Binop (Expr.Add, Expr.Col (c ~q:"a" "v"), Expr.int 1),
              Schema.column "v1" Datatype.Int );
          ];
      }
  in
  let rel = Logical.eval cat t in
  Alcotest.(check string) "computed column" "[11]"
    (Tuple.to_string (List.hd (Relation.tuples rel)))

let bad_group_key () =
  let cat = mini_catalog () in
  let t =
    Logical.Group
      {
        input = Logical.scan cat ~alias:"a" "r";
        agg_qual = "x";
        keys = [ c ~q:"zz" "nope" ];
        aggs = [ Aggregate.make Aggregate.Count_star "n" ];
        having = [];
      }
  in
  match Logical.schema t with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for bad grouping column"

let tests =
  [
    Alcotest.test_case "scan + filter" `Quick scan_filter;
    Alcotest.test_case "join (equi and cross)" `Quick join_eval;
    Alcotest.test_case "group-by with aggregates and having" `Quick group_eval;
    Alcotest.test_case "scalar aggregate over empty input" `Quick scalar_group_empty_input;
    Alcotest.test_case "project computes expressions" `Quick project_eval;
    Alcotest.test_case "bad grouping column rejected" `Quick bad_group_key;
  ]
