(* The paper's transformations as logical rewrites: equivalence on random
   instances, applicability conditions, and the minimal invariant set. *)

let c ~q n = Schema.column ~qual:q n Datatype.Int

let small_cat seed =
  Emp_dept.load
    ~params:
      { Emp_dept.default_params with
        emps = 150 + (seed mod 7 * 40);
        depts = 4 + (seed mod 5);
        seed;
        frames = 64 }
    ()

let agg_of = function
  | 0 -> Aggregate.make Aggregate.Avg ~arg:(Expr.Col (c ~q:"e2" "sal")) "a"
  | 1 -> Aggregate.make Aggregate.Sum ~arg:(Expr.Col (c ~q:"e2" "sal")) "a"
  | 2 -> Aggregate.make Aggregate.Min ~arg:(Expr.Col (c ~q:"e2" "sal")) "a"
  | 3 -> Aggregate.make Aggregate.Max ~arg:(Expr.Col (c ~q:"e2" "age")) "a"
  | _ -> Aggregate.make Aggregate.Count_star "a"

(* A Figure-1 tree with randomized filter, join predicate on the aggregate
   output, and optional Having. *)
let p1_tree cat fidx age has_having =
  let agg = agg_of fidx in
  let having =
    if has_having then
      [ Expr.Cmp
          (Expr.Gt, Expr.Col (Schema.column ~qual:"b" "a" (Aggregate.result_type agg)),
           Expr.int 10) ]
    else []
  in
  Logical.Join
    {
      left =
        Logical.Group
          { input = Logical.scan cat ~alias:"e2" "emp"; agg_qual = "b";
            keys = [ c ~q:"e2" "dno" ]; aggs = [ agg ]; having };
      right =
        Logical.Filter
          { input = Logical.scan cat ~alias:"e1" "emp";
            pred = Expr.Cmp (Expr.Lt, Expr.Col (c ~q:"e1" "age"), Expr.int age) };
      cond =
        [
          Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"e2" "dno"), Expr.Col (c ~q:"e1" "dno"));
          Expr.Cmp
            ( Expr.Lt,
              Expr.Col (Schema.column ~qual:"b" "a" (Aggregate.result_type agg)),
              Expr.Col (c ~q:"e1" "sal") );
        ];
    }

let prop_pullup =
  QCheck.Test.make ~name:"pull-up preserves semantics (random instances)" ~count:30
    (QCheck.triple (QCheck.int_range 0 50) (QCheck.int_range 0 4) QCheck.bool)
    (fun (seed, fidx, has_having) ->
      let cat = small_cat seed in
      let p1 = p1_tree cat fidx (20 + seed) has_having in
      match Pullup.rewrite cat p1 with
      | None -> false
      | Some p2 ->
        Relation.multiset_equal (Logical.eval cat p1) (Logical.eval cat p2))

let fig2_tree cat fidx budget =
  let agg =
    let a = agg_of fidx in
    { a with Aggregate.arg = Option.map (fun _ -> Expr.Col (c ~q:"e" "sal")) a.Aggregate.arg }
  in
  Logical.Group
    {
      input =
        Logical.Join
          {
            left = Logical.scan cat ~alias:"e" "emp";
            right =
              Logical.Filter
                { input = Logical.scan cat ~alias:"d" "dept";
                  pred = Expr.Cmp (Expr.Lt, Expr.Col (c ~q:"d" "budget"), Expr.int budget) };
            cond = [ Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"e" "dno"), Expr.Col (c ~q:"d" "dno")) ];
          };
      agg_qual = "g";
      keys = [ c ~q:"e" "dno" ];
      aggs = [ agg ];
      having = [];
    }

let prop_pushdown =
  QCheck.Test.make ~name:"invariant grouping preserves semantics" ~count:30
    (QCheck.pair (QCheck.int_range 0 50) (QCheck.int_range 0 4))
    (fun (seed, fidx) ->
      let cat = small_cat seed in
      let t = fig2_tree cat fidx ((seed + 1) * 40_000) in
      match Pushdown.rewrite cat t with
      | None -> false
      | Some t' -> Relation.multiset_equal (Logical.eval cat t) (Logical.eval cat t'))

let prop_coalesce =
  QCheck.Test.make ~name:"simple coalescing preserves semantics" ~count:30
    (QCheck.pair (QCheck.int_range 0 50) (QCheck.int_range 0 4))
    (fun (seed, fidx) ->
      let cat = small_cat seed in
      let t = fig2_tree cat fidx ((seed + 1) * 40_000) in
      match Coalesce.rewrite t with
      | None -> false
      | Some t' -> Relation.multiset_equal (Logical.eval cat t) (Logical.eval cat t'))

(* Invariant grouping must refuse a non-key join: group by e.sal (join
   column dno not a grouping key). *)
let pushdown_refuses_nonkey_join () =
  let cat = small_cat 1 in
  let t =
    Logical.Group
      {
        input =
          Logical.Join
            {
              left = Logical.scan cat ~alias:"e" "emp";
              right = Logical.scan cat ~alias:"d" "dept";
              cond = [ Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"e" "dno"), Expr.Col (c ~q:"d" "dno")) ];
            };
        agg_qual = "g";
        keys = [ c ~q:"e" "sal" ];  (* dno not in keys *)
        aggs = [ Aggregate.make Aggregate.Count_star "n" ];
        having = [];
      }
  in
  Alcotest.(check bool) "refused" true (Pushdown.rewrite cat t = None)

(* ...and a join into a non-key column of the right side. *)
let pushdown_refuses_nonkey_right () =
  let cat = small_cat 2 in
  let t =
    Logical.Group
      {
        input =
          Logical.Join
            {
              left = Logical.scan cat ~alias:"e" "emp";
              right = Logical.scan cat ~alias:"d" "dept";
              (* budget is not dept's key: a group can match many depts *)
              cond = [ Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"e" "sal"), Expr.Col (c ~q:"d" "budget")) ];
            };
        agg_qual = "g";
        keys = [ c ~q:"e" "sal" ];
        aggs = [ Aggregate.make Aggregate.Count_star "n" ];
        having = [];
      }
  in
  Alcotest.(check bool) "refused" true (Pushdown.rewrite cat t = None)

let pullup_refuses_group_right () =
  let cat = small_cat 3 in
  let group =
    Logical.Group
      { input = Logical.scan cat ~alias:"e2" "emp"; agg_qual = "b";
        keys = [ c ~q:"e2" "dno" ];
        aggs = [ Aggregate.make Aggregate.Count_star "n" ]; having = [] }
  in
  (* right side is itself a group-by: not a base access *)
  let t = Logical.Join { left = group; right = group; cond = [] } in
  Alcotest.(check bool) "refused" true (Pullup.rewrite cat t = None)

(* ---- minimal invariant set ---- *)

let nview_of_query cat q =
  match (Normalize.normalize cat q).Normalize.views with
  | [ v ] -> v
  | _ -> Alcotest.fail "expected one view"

let mis_example2 () =
  (* Example 2 as a view: group over emp join dept on the grouping column;
     dept is removable, so V' = {emp alias}. *)
  let cat = small_cat 4 in
  let avg = Aggregate.make Aggregate.Avg ~arg:(Expr.Col (c ~q:"e" "sal")) "asal" in
  let view =
    {
      Block.v_alias = "v";
      v_rels =
        [ { Block.r_alias = "e"; r_table = "emp" };
          { Block.r_alias = "d"; r_table = "dept" } ];
      v_preds =
        [
          Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"e" "dno"), Expr.Col (c ~q:"d" "dno"));
          Expr.Cmp (Expr.Lt, Expr.Col (c ~q:"d" "budget"), Expr.int 1_000_000);
        ];
      v_keys = [ c ~q:"e" "dno" ];
      v_aggs = [ avg ];
      v_having = [];
      v_out = [ Block.Out_key (c ~q:"e" "dno", "dno"); Block.Out_agg avg ];
    }
  in
  let q =
    { Block.q_views = [ view ]; q_rels = []; q_preds = []; q_grouped = false;
      q_keys = []; q_aggs = []; q_having = [];
      q_select = [ Block.Sel_col (Schema.column ~qual:"v" "dno" Datatype.Int, "dno") ];
      q_order = []; q_limit = None }
  in
  let v = nview_of_query cat q in
  let vprime, moved = Grouping.minimal_invariant_set cat v in
  Alcotest.(check (list string)) "V' = {e}" [ "e" ] vprime;
  Alcotest.(check (list string)) "moved = {d}" [ "d" ] (List.map fst moved)

let mis_not_removable_when_agg_source () =
  (* If the aggregate argument comes from dept, dept cannot be moved out. *)
  let cat = small_cat 5 in
  let avg = Aggregate.make Aggregate.Avg ~arg:(Expr.Col (c ~q:"d" "budget")) "ab" in
  let view =
    {
      Block.v_alias = "v";
      v_rels =
        [ { Block.r_alias = "e"; r_table = "emp" };
          { Block.r_alias = "d"; r_table = "dept" } ];
      v_preds =
        [ Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"e" "dno"), Expr.Col (c ~q:"d" "dno")) ];
      v_keys = [ c ~q:"e" "dno" ];
      v_aggs = [ avg ];
      v_having = [];
      v_out = [ Block.Out_key (c ~q:"e" "dno", "dno"); Block.Out_agg avg ];
    }
  in
  let q =
    { Block.q_views = [ view ]; q_rels = []; q_preds = []; q_grouped = false;
      q_keys = []; q_aggs = []; q_having = [];
      q_select = [ Block.Sel_col (Schema.column ~qual:"v" "dno" Datatype.Int, "dno") ];
      q_order = []; q_limit = None }
  in
  let v = nview_of_query cat q in
  let vprime, moved = Grouping.minimal_invariant_set cat v in
  Alcotest.(check int) "nothing moved" 0 (List.length moved);
  Alcotest.(check int) "V' keeps both" 2 (List.length vprime)

let mis_chain () =
  (* In the chain query's view only the first table feeds the aggregate;
     the second joins N:1 on its key?  No — t1 joins t0 via t1.fk = t0.k
     and the grouping key is t1.k, so t0 is on the N side: t0 is NOT
     removable (t0.k is its key but the view groups by t1.k; removing t0
     requires the equality to cover t0's PK from grouping columns, which
     fails because t1.fk is not a grouping column). *)
  let cat = Chain.load ~n:3 () in
  let q = Chain.chain_query ~view_size:2 ~n:3 in
  let v = nview_of_query cat q in
  let vprime, _ = Grouping.minimal_invariant_set cat v in
  Alcotest.(check int) "chain view keeps both relations" 2 (List.length vprime)

let tests =
  [
    QCheck_alcotest.to_alcotest prop_pullup;
    QCheck_alcotest.to_alcotest prop_pushdown;
    QCheck_alcotest.to_alcotest prop_coalesce;
    Alcotest.test_case "push-down refused: join col not a key" `Quick
      pushdown_refuses_nonkey_join;
    Alcotest.test_case "push-down refused: right side joined on non-key" `Quick
      pushdown_refuses_nonkey_right;
    Alcotest.test_case "pull-up refused: right side not base" `Quick
      pullup_refuses_group_right;
    Alcotest.test_case "minimal invariant set: Example 2" `Quick mis_example2;
    Alcotest.test_case "minimal invariant set: agg source blocks removal" `Quick
      mis_not_removable_when_agg_source;
    Alcotest.test_case "minimal invariant set: chain view" `Quick mis_chain;
  ]

(* Tuple-id fallback: a keyless relation gets a hidden _rid key, making
   pull-up applicable (paper, Section 3). *)
let pullup_via_rowid () =
  let cat = Catalog.create ~frames:64 () in
  let rng = Rng.create ~seed:9 in
  ignore
    (Catalog.add_table cat ~name:"grp"
       ~columns:[ ("g", Datatype.Int); ("v", Datatype.Int) ]
       ~pk:[]
       (List.init 200 (fun _ ->
            Tuple.make [ Value.Int (Rng.int rng 8); Value.Int (Rng.int rng 50) ])));
  ignore
    (Catalog.add_table cat ~name:"probe"
       ~columns:[ ("g", Datatype.Int); ("w", Datatype.Int) ]
       ~pk:[]
       (List.init 60 (fun _ ->
            Tuple.make [ Value.Int (Rng.int rng 8); Value.Int (Rng.int rng 50) ])));
  let tbl = Catalog.table_exn cat "probe" in
  Alcotest.(check (list string)) "hidden rid key" [ "_rid" ] tbl.Catalog.primary_key;
  (* Figure-1 shape over the keyless tables: pull-up must apply (the rid is
     a real column, so grouping by it is sound) and preserve semantics. *)
  let p1 =
    Logical.Join
      {
        left =
          Logical.Group
            { input = Logical.scan cat ~alias:"a" "grp"; agg_qual = "x";
              keys = [ c ~q:"a" "g" ];
              aggs = [ Aggregate.make Aggregate.Sum ~arg:(Expr.Col (c ~q:"a" "v")) "s" ];
              having = [] };
        right = Logical.scan cat ~alias:"b" "probe";
        cond = [ Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"a" "g"), Expr.Col (c ~q:"b" "g")) ];
      }
  in
  match Pullup.rewrite cat p1 with
  | None -> Alcotest.fail "pull-up must apply via the rid key"
  | Some p2 ->
    Alcotest.(check bool) "equivalent via rid key" true
      (Relation.multiset_equal (Logical.eval cat p1) (Logical.eval cat p2))

let rowid_tests =
  [ Alcotest.test_case "pull-up via internal tuple id" `Quick pullup_via_rowid ]
