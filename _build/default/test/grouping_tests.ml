(* Unit tests for the group-by placement legality checks (Grouping), which
   the DP's greedy conservative heuristic relies on. *)

let c ~q n = Schema.column ~qual:q n Datatype.Int

let spec ?(keys = [ c ~q:"e" "dno" ]) ?(having = []) () =
  {
    Grouping.gs_qual = "g";
    gs_keys = keys;
    gs_aggs = [ Aggregate.make Aggregate.Sum ~arg:(Expr.Col (c ~q:"e" "sal")) "s" ];
    gs_having = having;
  }

let dept_item =
  { Grouping.li_aliases = [ "d" ]; li_key = Some [ c ~q:"d" "dno" ] }

let join_pred = Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"e" "dno"), Expr.Col (c ~q:"d" "dno"))

let invariant_ok_basic () =
  Alcotest.(check bool) "classic Example 2 placement" true
    (Grouping.invariant_final_ok ~spec:(spec ()) ~covered_aliases:[ "e" ]
       ~remaining_items:[ dept_item ] ~remaining_preds:[ join_pred ])

let invariant_needs_keys_covered () =
  Alcotest.(check bool) "keys not covered -> refuse" false
    (Grouping.invariant_final_ok
       ~spec:(spec ~keys:[ c ~q:"x" "k" ] ())
       ~covered_aliases:[ "e" ] ~remaining_items:[ dept_item ]
       ~remaining_preds:[ join_pred ])

let invariant_needs_item_key () =
  let keyless = { Grouping.li_aliases = [ "d" ]; li_key = None } in
  Alcotest.(check bool) "no key on later item -> refuse" false
    (Grouping.invariant_final_ok ~spec:(spec ()) ~covered_aliases:[ "e" ]
       ~remaining_items:[ keyless ] ~remaining_preds:[ join_pred ])

let invariant_needs_key_equality () =
  (* join on a non-grouping column of the prefix *)
  let bad_pred =
    Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"e" "sal"), Expr.Col (c ~q:"d" "dno"))
  in
  Alcotest.(check bool) "non-key-side join column -> refuse" false
    (Grouping.invariant_final_ok ~spec:(spec ()) ~covered_aliases:[ "e" ]
       ~remaining_items:[ dept_item ] ~remaining_preds:[ bad_pred ])

let invariant_rejects_agg_args_elsewhere () =
  let s =
    {
      Grouping.gs_qual = "g";
      gs_keys = [ c ~q:"e" "dno" ];
      gs_aggs = [ Aggregate.make Aggregate.Sum ~arg:(Expr.Col (c ~q:"d" "budget")) "s" ];
      gs_having = [];
    }
  in
  Alcotest.(check bool) "aggregate argument outside prefix -> refuse" false
    (Grouping.invariant_final_ok ~spec:s ~covered_aliases:[ "e" ]
       ~remaining_items:[ dept_item ] ~remaining_preds:[ join_pred ])

let coalesce_spec_contents () =
  match
    Grouping.coalesce_at ~spec:(spec ()) ~covered_aliases:[ "e" ]
      ~remaining_preds:[ join_pred ]
  with
  | None -> Alcotest.fail "coalesce must apply"
  | Some cl ->
    (* partial keys = covered grouping keys + covered columns of remaining
       predicates, deduplicated (e.dno plays both roles here) *)
    Alcotest.(check int) "partial keys deduplicated" 1
      (List.length cl.Grouping.partial_keys);
    Alcotest.(check int) "one partial per SUM" 1 (List.length cl.Grouping.partial_aggs);
    Alcotest.(check int) "one combiner" 1 (List.length cl.Grouping.combine_aggs);
    Alcotest.(check int) "no post for SUM" 0 (List.length cl.Grouping.post)

let coalesce_avg_has_post () =
  let s =
    {
      Grouping.gs_qual = "g";
      gs_keys = [ c ~q:"e" "dno" ];
      gs_aggs = [ Aggregate.make Aggregate.Avg ~arg:(Expr.Col (c ~q:"e" "sal")) "m" ];
      gs_having = [];
    }
  in
  match
    Grouping.coalesce_at ~spec:s ~covered_aliases:[ "e" ] ~remaining_preds:[]
  with
  | None -> Alcotest.fail "coalesce must apply"
  | Some cl ->
    Alcotest.(check int) "AVG decomposes into sum+count" 2
      (List.length cl.Grouping.partial_aggs);
    Alcotest.(check int) "AVG recombination expression" 1 (List.length cl.Grouping.post)

let coalesce_refuses_foreign_args () =
  let s =
    {
      Grouping.gs_qual = "g";
      gs_keys = [ c ~q:"e" "dno" ];
      gs_aggs = [ Aggregate.make Aggregate.Sum ~arg:(Expr.Col (c ~q:"d" "budget")) "s" ];
      gs_having = [];
    }
  in
  Alcotest.(check bool) "args outside prefix -> None" true
    (Grouping.coalesce_at ~spec:s ~covered_aliases:[ "e" ] ~remaining_preds:[] = None)

let tests =
  [
    Alcotest.test_case "invariant placement: classic case" `Quick invariant_ok_basic;
    Alcotest.test_case "invariant: keys must be covered" `Quick invariant_needs_keys_covered;
    Alcotest.test_case "invariant: later item needs a key" `Quick invariant_needs_item_key;
    Alcotest.test_case "invariant: join must be on grouping keys" `Quick
      invariant_needs_key_equality;
    Alcotest.test_case "invariant: aggregate args must be covered" `Quick
      invariant_rejects_agg_args_elsewhere;
    Alcotest.test_case "coalesce: partial/combine structure" `Quick coalesce_spec_contents;
    Alcotest.test_case "coalesce: AVG needs a post expression" `Quick coalesce_avg_has_post;
    Alcotest.test_case "coalesce: foreign aggregate args refused" `Quick
      coalesce_refuses_foreign_args;
  ]
