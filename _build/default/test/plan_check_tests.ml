(* Plan validation: every plan the optimizers emit must pass the static
   checker, and the checker must reject planner-invariant violations. *)

let c ~q n = Schema.column ~qual:q n Datatype.Int

let all_optimizer_plans_valid () =
  let cat = Tpcd.load ~params:{ Tpcd.default_params with customers = 120 } () in
  let queries =
    [ Tpcd.q_big_spenders (); Tpcd.q_small_quantity_parts (); Tpcd.q_two_views () ]
  in
  let rng = Rng.create ~seed:31 in
  let random = List.init 10 (fun _ -> Query_gen.generate rng cat) in
  List.iter
    (fun q ->
      List.iter
        (fun algorithm ->
          let r =
            Optimizer.optimize ~options:{ Optimizer.default_options with algorithm } cat q
          in
          match Plan_check.check cat r.Optimizer.plan with
          | Ok () -> ()
          | Error msg ->
            Alcotest.failf "invalid plan from %s: %s@.%a"
              (match algorithm with
               | Optimizer.Traditional -> "traditional"
               | Optimizer.Greedy_conservative -> "greedy"
               | Optimizer.Paper -> "paper")
              msg Physical.pp r.Optimizer.plan)
        [ Optimizer.Traditional; Optimizer.Greedy_conservative; Optimizer.Paper ])
    (queries @ random)

let rejects_unsorted_merge () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 100; depts = 4 } () in
  let bad =
    Physical.Merge_join
      {
        left = Physical.Seq_scan { alias = "e"; table = "emp"; filter = [] };
        right = Physical.Seq_scan { alias = "d"; table = "dept"; filter = [] };
        keys = [ (c ~q:"e" "dno", c ~q:"d" "dno") ];
        cond = [];
      }
  in
  Alcotest.(check bool) "unsorted merge rejected" true
    (Result.is_error (Plan_check.check cat bad))

let rejects_nonrescannable_bnl () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 100; depts = 4 } () in
  let inner_join =
    Physical.Hash_join
      {
        left = Physical.Seq_scan { alias = "d"; table = "dept"; filter = [] };
        right = Physical.Seq_scan { alias = "e2"; table = "emp"; filter = [] };
        keys = [ (c ~q:"d" "dno", c ~q:"e2" "dno") ];
        cond = [];
        build_side = `Left;
      }
  in
  let bad =
    Physical.Block_nl_join
      { left = Physical.Seq_scan { alias = "e"; table = "emp"; filter = [] };
        right = inner_join; cond = [] }
  in
  Alcotest.(check bool) "non-rescannable BNL inner rejected" true
    (Result.is_error (Plan_check.check cat bad))

let rejects_unresolved_column () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 100; depts = 4 } () in
  let bad =
    Physical.Filter
      {
        input = Physical.Seq_scan { alias = "e"; table = "emp"; filter = [] };
        pred = [ Expr.Cmp (Expr.Eq, Expr.Col (c ~q:"ghost" "col"), Expr.int 1) ];
      }
  in
  Alcotest.(check bool) "unresolved column rejected" true
    (Result.is_error (Plan_check.check cat bad))

let rejects_missing_index () =
  let cat = Emp_dept.load ~params:{ Emp_dept.default_params with emps = 100; depts = 4 } () in
  let bad =
    Physical.Index_scan
      { alias = "e"; table = "emp"; column = "sal"; lo = None; hi = None; filter = [] }
  in
  Alcotest.(check bool) "missing index rejected" true
    (Result.is_error (Plan_check.check cat bad))

let tests =
  [
    Alcotest.test_case "all optimizer plans pass validation" `Slow
      all_optimizer_plans_valid;
    Alcotest.test_case "rejects unsorted merge join" `Quick rejects_unsorted_merge;
    Alcotest.test_case "rejects non-rescannable BNL inner" `Quick
      rejects_nonrescannable_bnl;
    Alcotest.test_case "rejects unresolved column" `Quick rejects_unresolved_column;
    Alcotest.test_case "rejects missing index" `Quick rejects_missing_index;
  ]
