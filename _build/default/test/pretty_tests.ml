(* SQL pretty-printer: parse (print (parse s)) must equal parse s. *)

let samples =
  [
    "SELECT e1.eno AS eno FROM emp e1 WHERE e1.age < 22";
    "SELECT e.dno, AVG(e.sal) AS a FROM emp e GROUP BY e.dno HAVING AVG(e.sal) > 3 AND COUNT(*) > 2";
    "SELECT a.x FROM t a, u b WHERE a.k = b.k AND (a.v > 1 OR NOT b.w <= 2)";
    "SELECT MIN(e.sal) AS m FROM emp e WHERE e.name = 'o''brien'";
    "SELECT e.sal AS s FROM emp e WHERE e.sal > (SELECT AVG(x.sal) FROM emp x WHERE x.dno = e.dno)";
    "SELECT a.v AS v FROM t a WHERE a.v * 2 + 1 >= a.w / 3 - 4";
    "CREATE VIEW v (k, s) AS SELECT e.dno, SUM(e.sal) FROM emp e GROUP BY e.dno; SELECT v.k AS k FROM v";
  ]

let roundtrip () =
  List.iter
    (fun src ->
      let ast = Parser.parse_script src in
      let printed = Pretty.script_to_string ast in
      let reparsed =
        try Parser.parse_script printed
        with Parser.Parse_error (m, off) ->
          Alcotest.failf "reparse failed at %d (%s) for:\n%s" off m printed
      in
      if ast <> reparsed then
        Alcotest.failf "roundtrip mismatch:\noriginal: %s\nprinted:  %s" src printed)
    samples

let lexer_errors () =
  let expect_fail s =
    match Lexer.tokenize s with
    | exception Lexer.Lex_error _ -> ()
    | _ -> Alcotest.failf "expected lex error for %S" s
  in
  expect_fail "SELECT 'unterminated";
  expect_fail "SELECT #"

let lexer_features () =
  let toks = Lexer.tokenize "select X -- comment\n <> 'a''b' 3.5" in
  let kinds = Array.to_list (Array.map fst toks) in
  Alcotest.(check bool) "keyword case-insensitive" true
    (List.mem (Lexer.KW "SELECT") kinds);
  Alcotest.(check bool) "comment skipped + ne" true (List.mem Lexer.NE kinds);
  Alcotest.(check bool) "escaped quote" true (List.mem (Lexer.STRING "a'b") kinds);
  Alcotest.(check bool) "float" true (List.mem (Lexer.FLOAT 3.5) kinds)

let tests =
  [
    Alcotest.test_case "parse/print round trips" `Quick roundtrip;
    Alcotest.test_case "lexer error cases" `Quick lexer_errors;
    Alcotest.test_case "lexer features" `Quick lexer_features;
  ]
