(* End-to-end smoke: Example 1 under all three algorithms must match the
   reference interpreter. *)

let small_params =
  { Emp_dept.default_params with emps = 800; depts = 20; frames = 64 }

let check_algo algo () =
  let cat = Emp_dept.load ~params:small_params () in
  let q = Emp_dept.example1 () in
  let expected = Logical.eval cat (Block.query_logical cat q) in
  let options = { Optimizer.default_options with algorithm = algo } in
  let result, io = Optimizer.run ~options cat q in
  Alcotest.(check bool)
    (Printf.sprintf "result matches reference (io reads=%d writes=%d)"
       io.Buffer_pool.reads io.Buffer_pool.writes)
    true
    (Relation.multiset_equal expected result)

let check_example2 algo () =
  let cat = Emp_dept.load ~params:small_params () in
  let q = Emp_dept.example2 () in
  let expected = Logical.eval cat (Block.query_logical cat q) in
  let options = { Optimizer.default_options with algorithm = algo } in
  let result, _io = Optimizer.run ~options cat q in
  Alcotest.(check bool) "example2 matches reference" true
    (Relation.multiset_equal expected result)

let guarantee () =
  let cat = Emp_dept.load ~params:small_params () in
  let q = Emp_dept.example1 () in
  let cost algo =
    let options = { Optimizer.default_options with algorithm = algo } in
    (Optimizer.optimize ~options cat q).Optimizer.est.Cost_model.cost
  in
  let trad = cost Optimizer.Traditional in
  let paper = cost Optimizer.Paper in
  Alcotest.(check bool)
    (Printf.sprintf "paper (%.1f) <= traditional (%.1f)" paper trad)
    true (paper <= trad +. 1e-6)

let tests =
  [
    Alcotest.test_case "example1 traditional" `Quick (check_algo Optimizer.Traditional);
    Alcotest.test_case "example1 greedy" `Quick (check_algo Optimizer.Greedy_conservative);
    Alcotest.test_case "example1 paper" `Quick (check_algo Optimizer.Paper);
    Alcotest.test_case "example2 traditional" `Quick (check_example2 Optimizer.Traditional);
    Alcotest.test_case "example2 paper" `Quick (check_example2 Optimizer.Paper);
    Alcotest.test_case "never worse than traditional" `Quick guarantee;
  ]
