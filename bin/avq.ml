(* avq — command-line front end: parse, optimize, explain and run SQL with
   aggregate views over the built-in synthetic databases. *)

open Cmdliner

(* ---- shared options ---- *)

let algo_conv =
  Arg.enum
    [
      ("traditional", Optimizer.Traditional);
      ("greedy", Optimizer.Greedy_conservative);
      ("paper", Optimizer.Paper);
    ]

let algo =
  Arg.(
    value
    & opt algo_conv Optimizer.Paper
    & info [ "a"; "algo" ] ~docv:"ALGO"
        ~doc:"Optimization algorithm: $(b,traditional), $(b,greedy) or $(b,paper).")

let db_conv = Arg.enum [ ("empdept", `Empdept); ("tpcd", `Tpcd); ("star", `Star) ]

let db =
  Arg.(
    value
    & opt db_conv `Empdept
    & info [ "d"; "db" ] ~docv:"DB"
        ~doc:
          "Built-in database: $(b,empdept) (the paper's example schema), $(b,tpcd) \
           or $(b,star).")

let scale =
  Arg.(
    value
    & opt int 1
    & info [ "s"; "scale" ] ~docv:"N" ~doc:"Scale factor for the synthetic data.")

let seed =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"SEED" ~doc:"Data generator seed.")

let work_mem =
  Arg.(
    value
    & opt int 32
    & info [ "work-mem" ] ~docv:"PAGES" ~doc:"Operator memory budget in pages.")

let dop =
  Arg.(
    value
    & opt int 1
    & info [ "dop" ] ~docv:"N"
        ~doc:
          "Degree of intra-query parallelism: eligible plans run their scan \
           pipeline on $(docv) morsel worker domains (1 = serial).")

let check_dop dop =
  if dop < 1 then begin
    Format.eprintf "avq: --dop must be >= 1@.";
    exit 1
  end

(* session / serve: default dop is core-aware, divided among the workers *)
let dop_auto =
  Arg.(
    value
    & opt (some int) None
    & info [ "dop" ] ~docv:"N"
        ~doc:
          "Degree of intra-query parallelism.  Default: the machine's \
           recommended domain count divided by the worker count (never \
           below 1), so workers times dop stays near the core count.")

let resolve_dop ~workers = function
  | Some d ->
    check_dop d;
    d
  | None -> Service.auto_dop ~workers

let sql_arg =
  Arg.(
    value
    & pos 0 (some string) None
    & info [] ~docv:"SQL" ~doc:"SQL text; omit to read from stdin.")

let db_name = function
  | `Empdept -> "empdept"
  | `Tpcd -> "tpcd"
  | `Star -> "star"

let load_db db scale seed =
  match db with
  | `Empdept ->
    let p = Emp_dept.default_params in
    Emp_dept.load
      ~params:{ p with emps = p.emps * scale; depts = p.depts * scale; seed }
      ()
  | `Tpcd ->
    let p = Tpcd.default_params in
    Tpcd.load ~params:{ p with customers = p.customers * scale; seed } ()
  | `Star ->
    let p = Star.default_params in
    Star.load ~params:{ p with days = p.days * scale; seed } ()

let read_sql = function
  | Some s -> s
  | None -> In_channel.input_all In_channel.stdin

let options algorithm work_mem dop =
  { Optimizer.default_options with algorithm; work_mem; dop }

let with_query db scale seed sql f =
  let cat = load_db db scale seed in
  match Binder.bind_sql cat (read_sql sql) with
  | query -> f cat query
  | exception Binder.Bind_error msg ->
    Format.eprintf "bind error: %s@." msg;
    exit 1
  | exception Parser.Parse_error (msg, off) ->
    Format.eprintf "parse error at offset %d: %s@." off msg;
    exit 1
  | exception Lexer.Lex_error (msg, off) ->
    Format.eprintf "lex error at offset %d: %s@." off msg;
    exit 1

(* ---- commands ---- *)

let explain_cmd =
  let run algo db scale seed work_mem dop sql =
    check_dop dop;
    with_query db scale seed sql (fun cat query ->
        Format.printf "Canonical form:@.%a@.@." Block.pp query;
        let r = Optimizer.optimize ~options:(options algo work_mem dop) cat query in
        Format.printf "Plan (estimated %a):@.%a@." Cost_model.pp_est r.Optimizer.est
          Physical.pp r.Optimizer.plan;
        Format.printf "@.Per-node estimates:@.%a" (Explain.pp cat ~work_mem)
          r.Optimizer.plan;
        Format.printf "@.Search effort: %a@." Search_stats.pp r.Optimizer.search;
        match r.Optimizer.report with
        | None -> ()
        | Some rep ->
          Format.printf "Minimal invariant sets:@.";
          List.iter
            (fun (v, aliases) ->
              Format.printf "  %s: {%s}@." v (String.concat ", " aliases))
            rep.Paper_opt.minimal_sets;
          Format.printf "Chosen pull-up sets:@.";
          List.iter
            (fun (v, w) ->
              Format.printf "  %s: {%s}@." v (String.concat ", " (List.map fst w)))
            rep.Paper_opt.chosen_w)
  in
  let doc = "Show the canonical multi-block form and the chosen plan." in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(const run $ algo $ db $ scale $ seed $ work_mem $ dop $ sql_arg)

let run_cmd =
  let run algo db scale seed work_mem dop sql =
    check_dop dop;
    with_query db scale seed sql (fun cat query ->
        let r = Optimizer.optimize ~options:(options algo work_mem dop) cat query in
        let ctx = Exec_ctx.create ~work_mem cat in
        let rel, io = Executor.run_measured ctx r.Optimizer.plan in
        Format.printf "%a@.@.(%a)@." Relation.pp rel Buffer_pool.pp_stats io)
  in
  let doc = "Optimize and execute a query, printing the result and measured IO." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ algo $ db $ scale $ seed $ work_mem $ dop $ sql_arg)

let compare_cmd =
  let run db scale seed work_mem sql =
    with_query db scale seed sql (fun cat query ->
        Format.printf "%-14s %12s %12s %10s %8s@." "algorithm" "est-cost"
          "meas-reads" "meas-writes" "rows";
        List.iter
          (fun (name, algorithm) ->
            let r =
              Optimizer.optimize ~options:(options algorithm work_mem 1) cat query
            in
            let ctx = Exec_ctx.create ~work_mem cat in
            let rel, io = Executor.run_measured ctx r.Optimizer.plan in
            Format.printf "%-14s %12.1f %12d %10d %8d@." name
              r.Optimizer.est.Cost_model.cost io.Buffer_pool.reads
              io.Buffer_pool.writes (Relation.cardinality rel))
          [
            ("traditional", Optimizer.Traditional);
            ("greedy", Optimizer.Greedy_conservative);
            ("paper", Optimizer.Paper);
          ])
  in
  let doc = "Compare the three optimization algorithms on one query." in
  Cmd.v (Cmd.info "compare" ~doc)
    Term.(const run $ db $ scale $ seed $ work_mem $ sql_arg)

let tables_cmd =
  let run db scale seed =
    let cat = load_db db scale seed in
    List.iter
      (fun (tbl : Catalog.table) ->
        Format.printf "%-10s %a  pk=(%s)%s@." tbl.Catalog.tname Stats.pp_table
          tbl.Catalog.tstats
          (String.concat ", " tbl.Catalog.primary_key)
          (match tbl.Catalog.clustered with
           | Some c -> "  clustered on " ^ c
           | None -> ""))
      (Catalog.tables cat)
  in
  let doc = "List the tables of a built-in database with their statistics." in
  Cmd.v (Cmd.info "tables" ~doc) Term.(const run $ db $ scale $ seed)

let repl_cmd =
  let run db scale seed work_mem =
    let cat = load_db db scale seed in
    Format.printf
      "avq interactive shell — terminate statements with ';;'.@.Commands: \
       .tables  .quit@.";
    let buffer = Buffer.create 256 in
    let rec loop () =
      if Buffer.length buffer = 0 then Format.printf "avq> @?"
      else Format.printf "...> @?";
      match In_channel.input_line In_channel.stdin with
      | None -> ()
      | Some ".quit" -> ()
      | Some ".tables" ->
        List.iter
          (fun (tbl : Catalog.table) ->
            Format.printf "%-10s %a@." tbl.Catalog.tname Stats.pp_table
              tbl.Catalog.tstats)
          (Catalog.tables cat);
        loop ()
      | Some line ->
        Buffer.add_string buffer line;
        Buffer.add_char buffer '\n';
        let text = Buffer.contents buffer in
        let finished =
          match String.rindex_opt (String.trim text) ';' with
          | Some i ->
            i > 0 && (String.trim text).[i - 1] = ';'
          | None -> false
        in
        if not finished then loop ()
        else begin
          let sql =
            let t = String.trim text in
            String.sub t 0 (String.length t - 2)
          in
          Buffer.clear buffer;
          (try
             let query = Binder.bind_sql cat sql in
             let r =
               Optimizer.optimize
                 ~options:{ Optimizer.default_options with work_mem } cat query
             in
             let ctx = Exec_ctx.create ~work_mem cat in
             let rel, io = Executor.run_measured ctx r.Optimizer.plan in
             Format.printf "%a@.(%a)@." Relation.pp rel Buffer_pool.pp_stats io
           with
           | Binder.Bind_error msg -> Format.printf "bind error: %s@." msg
           | Parser.Parse_error (msg, off) ->
             Format.printf "parse error at %d: %s@." off msg
           | Lexer.Lex_error (msg, off) ->
             Format.printf "lex error at %d: %s@." off msg);
          loop ()
        end
    in
    loop ()
  in
  let doc = "Interactive SQL shell over a built-in database." in
  Cmd.v (Cmd.info "repl" ~doc) Term.(const run $ db $ scale $ seed $ work_mem)

let session_cmd =
  let no_cache =
    Arg.(
      value & flag
      & info [ "no-cache" ]
          ~doc:"Disable the plan cache (optimize every statement).")
  in
  let recost_ratio =
    Arg.(
      value
      & opt float Service.default_config.Service.recost_ratio
      & info [ "recost-ratio" ] ~docv:"R"
          ~doc:
            "Serve a re-bound cached plan only while its re-costed estimate \
             stays within $(docv) times the cost it was cached at.")
  in
  let file =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:"Query file ($(b,;;)-terminated statements); omit for stdin.")
  in
  let workers =
    Arg.(
      value
      & opt int 1
      & info [ "w"; "workers" ] ~docv:"N"
          ~doc:
            "Execute statements on $(docv) concurrent worker domains sharing \
             one plan cache (1 = serial in-process replay).")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:
            "Per-statement deadline in milliseconds; a statement exceeding it \
             fails with a typed timeout error while the batch continues.")
  in
  let spill_quota =
    Arg.(
      value
      & opt (some int) None
      & info [ "spill-quota" ] ~docv:"PAGES"
          ~doc:
            "Cumulative temp-page budget per statement; exceeding it fails \
             the statement with a typed resource error.")
  in
  let fault_plan =
    Arg.(
      value
      & opt (some string) None
      & info [ "fault-plan" ] ~docv:"SPEC"
          ~doc:
            "Install a deterministic storage fault plan, e.g. \
             $(b,seed=7;retries=6;read:p=0.01).  Matching page operations \
             fail with typed IO errors (retried within the plan's budget); \
             checksum verification is turned on.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the session's metrics registry to $(docv) at the end of \
             the replay — JSON, or Prometheus text if $(docv) ends in \
             $(b,.prom).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Emit one span tree per statement (parse, canonicalize, plan, \
             execute, per-operator spans) as JSONL to $(docv).")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:
            "Slow-query log: statements taking at least $(docv) milliseconds \
             are reported to stderr with their trace id.")
  in
  let run algo db scale seed work_mem dop no_cache recost_ratio workers
      timeout_ms spill_quota fault_plan metrics_out trace_out slow_ms file =
    if recost_ratio < 1.0 then begin
      Format.eprintf "avq session: --recost-ratio must be >= 1.0@.";
      exit 1
    end;
    if workers < 1 then begin
      Format.eprintf "avq session: --workers must be >= 1@.";
      exit 1
    end;
    let dop = resolve_dop ~workers dop in
    (* Ctrl-C / SIGTERM mid-replay: abort in-flight statements at their next
       batch boundary, then fall through the normal epilogue so traces and
       metrics still flush and temps are verifiably gone. *)
    Lifecycle.install Lifecycle.Abort_on_signal;
    (match timeout_ms with
     | Some ms when ms <= 0. ->
       Format.eprintf "avq session: --timeout-ms must be > 0@.";
       exit 1
     | _ -> ());
    (match spill_quota with
     | Some q when q < 0 ->
       Format.eprintf "avq session: --spill-quota must be >= 0@.";
       exit 1
     | _ -> ());
    let cat = load_db db scale seed in
    let faults =
      match fault_plan with
      | None -> None
      | Some spec -> (
        match Fault.parse spec with
        | Ok plan -> Some plan
        | Error msg ->
          Format.eprintf "avq session: bad --fault-plan: %s@." msg;
          exit 1)
    in
    Option.iter (Storage.Faults.install (Catalog.storage cat)) faults;
    let config =
      {
        Service.default_config with
        Service.algorithm = algo;
        work_mem;
        cache_enabled = not no_cache;
        recost_ratio;
        statement_timeout_ms = timeout_ms;
        spill_quota_pages = spill_quota;
        dop;
      }
    in
    let svc = Service.create ~config cat in
    (* A --slow-ms threshold without --trace-out still wants the tracer (for
       the stderr slow log); spans just go nowhere. *)
    let tracer =
      match trace_out, slow_ms with
      | None, None -> None
      | Some path, _ -> Some (Trace.create_file ?slow_ms path)
      | None, Some _ -> Some (Trace.create ?slow_ms ())
    in
    Service.set_tracer svc tracer;
    let text =
      match file with
      | Some path -> In_channel.with_open_text path In_channel.input_all
      | None -> In_channel.input_all In_channel.stdin
    in
    (* The flush work is registered as lifecycle hooks (LIFO, run once) so an
       interrupted replay and a completed one leave through the same door. *)
    Option.iter
      (fun path ->
        Lifecycle.at_shutdown (fun () ->
            let m = Service.metrics svc in
            let body =
              if Filename.check_suffix path ".prom" then Metrics.to_prometheus m
              else Metrics.to_json m
            in
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc body);
            Format.printf "metrics -> %s@." path))
      metrics_out;
    Option.iter
      (fun tr ->
        Lifecycle.at_shutdown (fun () ->
            Trace.close tr;
            Format.printf "trace: %d spans emitted, %d slow statements%s@."
              (Trace.spans_emitted tr) (Trace.slow_statements tr)
              (match trace_out with Some p -> " -> " ^ p | None -> "")))
      tracer;
    Fun.protect ~finally:Lifecycle.run_hooks (fun () ->
        let lines =
          if workers = 1 then Replay.replay svc text
          else
            Service.Pool.with_pool ~workers svc (fun pool ->
                Replay.replay_pool pool text)
        in
        Replay.report Format.std_formatter svc lines);
    if faults <> None then begin
      let st = Catalog.storage cat in
      let fs = Storage.Faults.stats st in
      Format.printf
        "faults: %d injected, %d retries, %d recovered, %d exhausted; live \
         temps: %d@."
        fs.Buffer_pool.injected fs.Buffer_pool.retried fs.Buffer_pool.recovered
        fs.Buffer_pool.exhausted (Storage.live_temps st)
    end;
    if Lifecycle.exit_code () <> 0 then begin
      Format.printf "interrupted: replay stopped cleanly (live temps: %d)@."
        (Storage.live_temps (Catalog.storage cat));
      exit (Lifecycle.exit_code ())
    end
  in
  let doc =
    "Replay a query file through one long-lived session (optionally over a \
     pool of worker domains), reusing cached plans across statements, and \
     print the cache report.  Statement failures (timeouts, injected faults, \
     quota, bad SQL) are reported per line; the batch always continues."
  in
  Cmd.v (Cmd.info "session" ~doc)
    Term.(
      const run $ algo $ db $ scale $ seed $ work_mem $ dop_auto $ no_cache
      $ recost_ratio $ workers $ timeout_ms $ spill_quota $ fault_plan
      $ metrics_out $ trace_out $ slow_ms $ file)

(* ---- network front end ---- *)

let host =
  Arg.(
    value
    & opt string "127.0.0.1"
    & info [ "host" ] ~docv:"ADDR" ~doc:"Address to listen on / connect to.")

let port ~default =
  Arg.(
    value
    & opt int default
    & info [ "p"; "port" ] ~docv:"PORT" ~doc:"TCP port.")

let serve_cmd =
  let workers =
    Arg.(
      value
      & opt int 4
      & info [ "w"; "workers" ] ~docv:"N"
          ~doc:"Executor worker domains behind the statement queue.")
  in
  let max_connections =
    Arg.(
      value
      & opt int Server.default_config.Server.max_connections
      & info [ "max-connections" ] ~docv:"N"
          ~doc:"Concurrent client sessions; further connects are refused.")
  in
  let max_queue =
    Arg.(
      value
      & opt int Server.default_config.Server.max_queue
      & info [ "max-queue" ] ~docv:"N"
          ~doc:
            "Admission control: statements admitted (queued + executing) at \
             once across all sessions; arrivals beyond $(docv) are rejected \
             with a typed resource error instead of buffered.")
  in
  let drain_grace_ms =
    Arg.(
      value
      & opt float Server.default_config.Server.drain_grace_ms
      & info [ "drain-grace-ms" ] ~docv:"MS"
          ~doc:
            "On shutdown, wait up to $(docv) for in-flight statements before \
             aborting them.")
  in
  let timeout_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "timeout-ms" ] ~docv:"MS"
          ~doc:"Default per-statement deadline (sessions may SET their own).")
  in
  let spill_quota =
    Arg.(
      value
      & opt (some int) None
      & info [ "spill-quota" ] ~docv:"PAGES"
          ~doc:"Default per-statement temp-page budget.")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the server's metrics registry to $(docv) on shutdown — \
             JSON, or Prometheus text if $(docv) ends in $(b,.prom).")
  in
  let trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:"Emit one span tree per statement as JSONL to $(docv).")
  in
  let slow_ms =
    Arg.(
      value
      & opt (some float) None
      & info [ "slow-ms" ] ~docv:"MS"
          ~doc:"Report statements taking at least $(docv) ms to stderr.")
  in
  let data_dir =
    Arg.(
      value
      & opt (some string) None
      & info [ "data-dir" ] ~docv:"DIR"
          ~doc:
            "Durability: keep a write-ahead log and checkpoints under \
             $(docv).  On startup the directory is recovered (last \
             checkpoint + committed WAL tail); on SIGTERM the drained state \
             is checkpointed before exit.  The directory is pinned to its \
             first $(b,--db)/$(b,--scale)/$(b,--seed) identity.")
  in
  let wal_fsync =
    Arg.(
      value
      & opt (enum [ ("always", `Always); ("group", `Group); ("never", `Never) ])
          `Always
      & info [ "wal-fsync" ] ~docv:"MODE"
          ~doc:
            "WAL durability mode: $(b,always) fsyncs every commit, \
             $(b,group) fsyncs at most once per $(b,--wal-group-ms) window, \
             $(b,never) leaves flushing to the OS (crash may lose recent \
             commits, never consistency).")
  in
  let wal_group_ms =
    Arg.(
      value
      & opt float 5.
      & info [ "wal-group-ms" ] ~docv:"MS"
          ~doc:"Group-commit window for $(b,--wal-fsync group).")
  in
  let checkpoint_bytes =
    Arg.(
      value
      & opt int (4 * 1024 * 1024)
      & info [ "checkpoint-bytes" ] ~docv:"BYTES"
          ~doc:
            "Checkpoint and truncate the WAL once it reaches $(docv) bytes \
             (0 disables size-triggered checkpoints).")
  in
  let http_port =
    Arg.(
      value
      & opt (some int) None
      & info [ "http" ] ~docv:"PORT"
          ~doc:
            "Serve observability over HTTP on $(docv) (0 picks an ephemeral \
             port): $(b,GET /metrics) (Prometheus text), $(b,GET /healthz) \
             (ready/draining/recovering), $(b,GET /statements?n=K) (top-K \
             statement statistics as JSON).")
  in
  let stats_reset =
    Arg.(
      value
      & flag
      & info [ "stats-reset" ]
          ~doc:
            "Reset the cumulative statement-statistics store \
             ($(b,avq_stat_statements)) after startup, so the first scrape \
             of a recovered server starts from zero.")
  in
  let run algo db scale seed work_mem dop host port workers max_connections
      max_queue drain_grace_ms timeout_ms spill_quota metrics_out trace_out
      slow_ms data_dir wal_fsync wal_group_ms checkpoint_bytes http_port
      stats_reset =
    if workers < 1 then begin
      Format.eprintf "avq serve: --workers must be >= 1@.";
      exit 1
    end;
    if max_queue < 1 || max_connections < 1 then begin
      Format.eprintf "avq serve: --max-queue and --max-connections must be >= 1@.";
      exit 1
    end;
    if wal_group_ms <= 0. then begin
      Format.eprintf "avq serve: --wal-group-ms must be > 0@.";
      exit 1
    end;
    if checkpoint_bytes < 0 then begin
      Format.eprintf "avq serve: --checkpoint-bytes must be >= 0@.";
      exit 1
    end;
    let dop = resolve_dop ~workers dop in
    let tracer =
      match (trace_out, slow_ms) with
      | None, None -> None
      | Some path, _ -> Some (Trace.create_file ?slow_ms path)
      | None, Some _ -> Some (Trace.create ?slow_ms ())
    in
    (* One server per data directory: the lock covers recovery too (it
       reads and truncates the WAL), so take it before anything touches
       the dir.  The kernel releases it if we die. *)
    let dir_lock =
      match data_dir with
      | None -> None
      | Some dir -> (
        match Dir_lock.acquire dir with
        | lock -> Some lock
        | exception Avq_error.Error e ->
          Format.eprintf "avq serve: %s@." (Avq_error.to_string e);
          exit 1)
    in
    (* The HTTP endpoint comes up before recovery so /healthz can answer
       "recovering" while the WAL replays; /metrics and /statements stay
       503 until the service exists and the front end listens. *)
    let svc_ref = ref None in
    let http =
      Option.map
        (fun hport ->
          match
            Http.start ~host ~port:hport
              ~metrics:(fun () ->
                match !svc_ref with
                | Some svc -> Metrics.to_prometheus (Service.metrics svc)
                | None -> "")
              ~statements:(fun ~n ->
                match !svc_ref with
                | Some svc -> Stmt_stats.to_json_top ~n (Service.stats_store svc)
                | None -> "{}")
              ()
          with
          | http -> http
          | exception Unix.Unix_error (err, _, _) ->
            Format.eprintf "avq serve: cannot bind --http %d: %s@." hport
              (Unix.error_message err);
            exit 1)
        http_port
    in
    (* With a data dir, the catalog + matview registry come from recovery
       (checkpoint + committed WAL tail) rather than a fresh load; without
       one the server is in-memory-only, exactly as before. *)
    let recovered =
      match data_dir with
      | None -> None
      | Some dir ->
        let fsync_mode =
          match wal_fsync with
          | `Always -> Wal.Fsync_always
          | `Group -> Wal.Fsync_group wal_group_ms
          | `Never -> Wal.Fsync_never
        in
        let meta =
          Printf.sprintf "db=%s;scale=%d;seed=%d" (db_name db) scale seed
        in
        let span =
          Option.map
            (fun tr -> Trace.start tr ~trace_id:(Trace.new_trace tr) "recovery")
            tracer
        in
        let result =
          match
            Recovery.recover ~data_dir:dir ~fsync_mode ~meta
              ~seed:(fun () -> load_db db scale seed)
              ()
          with
          | r -> r
          | exception Recovery.Error msg ->
            Format.eprintf "avq serve: %s@." msg;
            exit 1
          | exception Checkpoint.Corrupt msg ->
            Format.eprintf "avq serve: corrupt checkpoint in %s: %s@." dir msg;
            exit 1
        in
        let _, _, _, r = result in
        Option.iter
          (fun sp ->
            Trace.set_attr sp "checkpoint_loaded"
              (Trace.B r.Recovery.checkpoint_loaded);
            Trace.set_attr sp "tables_restored" (Trace.I r.Recovery.tables_restored);
            Trace.set_attr sp "matviews_restored"
              (Trace.I r.Recovery.matviews_restored);
            Trace.set_attr sp "replayed" (Trace.I r.Recovery.replayed);
            Trace.set_attr sp "skipped" (Trace.I r.Recovery.skipped);
            Trace.set_attr sp "torn_tail" (Trace.B r.Recovery.torn);
            ignore (Trace.finish sp))
          span;
        Format.printf
          "avq serve: recovered %s — %s, %d tables, %d matviews, %d WAL \
           records replayed (%d skipped%s) in %.1f ms@."
          dir
          (if r.Recovery.checkpoint_loaded then "checkpoint loaded"
           else "no checkpoint (seeded)")
          r.Recovery.tables_restored r.Recovery.matviews_restored
          r.Recovery.replayed r.Recovery.skipped
          (if r.Recovery.torn then ", torn tail cut" else "")
          r.Recovery.duration_ms;
        Some (dir, result)
    in
    let cat, mviews =
      match recovered with
      | Some (_, (cat, mviews, _, _)) -> (cat, Some mviews)
      | None -> (load_db db scale seed, None)
    in
    let config =
      {
        Service.default_config with
        Service.algorithm = algo;
        work_mem;
        statement_timeout_ms = timeout_ms;
        spill_quota_pages = spill_quota;
        dop;
      }
    in
    let svc = Service.create ~config ?mviews cat in
    Option.iter
      (fun (dir, (_, _, writer, rstats)) ->
        Service.attach_wal svc ~data_dir:dir
          ?checkpoint_bytes:
            (if checkpoint_bytes = 0 then None else Some checkpoint_bytes)
          ~recovery:rstats writer)
      recovered;
    Service.set_tracer svc tracer;
    if stats_reset then Stmt_stats.reset (Service.stats_store svc);
    svc_ref := Some svc;
    (* first SIGTERM/SIGINT drains (finish in-flight, stop admitting), a
       second one aborts in-flight statements too *)
    Lifecycle.install Lifecycle.Drain_then_abort;
    Option.iter
      (fun path ->
        Lifecycle.at_shutdown (fun () ->
            let m = Service.metrics svc in
            let body =
              if Filename.check_suffix path ".prom" then Metrics.to_prometheus m
              else Metrics.to_json m
            in
            Out_channel.with_open_text path (fun oc ->
                Out_channel.output_string oc body);
            Format.printf "metrics -> %s@." path))
      metrics_out;
    Option.iter
      (fun tr -> Lifecycle.at_shutdown (fun () -> Trace.close tr))
      tracer;
    (* Hooks run LIFO: the drain checkpoint fires first, so the flushed
       metrics above still count it. *)
    if recovered <> None then
      Lifecycle.at_shutdown (fun () ->
          match Service.checkpoint svc with
          | tag -> Format.printf "avq serve: shutdown %s@." tag
          | exception e ->
            Format.eprintf "avq serve: shutdown checkpoint failed: %s@."
              (Printexc.to_string e));
    let server_config =
      { Server.host; port; max_connections; max_queue; drain_grace_ms }
    in
    let finally () =
      Lifecycle.run_hooks ();
      Option.iter Http.stop http;
      Option.iter Dir_lock.release dir_lock
    in
    Fun.protect ~finally (fun () ->
        Service.Pool.with_pool ~workers svc (fun pool ->
            let server = Server.start ~config:server_config pool in
            Format.printf
              "avq serve: listening on %s:%d (%d workers, dop %d, %d max \
               connections, %d statement queue)@."
              host (Server.port server) workers dop max_connections max_queue;
            Option.iter
              (fun h ->
                Http.set_ready h;
                Format.printf
                  "avq serve: observability on http://%s:%d (/metrics \
                   /healthz /statements)@."
                  host (Http.port h))
              http;
            Format.printf "avq serve: SIGTERM drains, SIGTERM twice aborts@?";
            Format.printf "@.";
            Server.run server;
            Format.printf
              "avq serve: drained — %d admitted, %d rejected, live temps: %d@."
              (Server.admitted server) (Server.rejected server)
              (Storage.live_temps (Catalog.storage cat))))
    (* a drain-triggered exit is the server working as designed: exit 0 *)
  in
  let doc =
    "Serve queries over TCP: many client sessions multiplexed onto a worker \
     pool sharing one plan cache, with bounded statement admission and \
     graceful drain on SIGTERM."
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ algo $ db $ scale $ seed $ work_mem $ dop_auto $ host
      $ port ~default:5499 $ workers $ max_connections $ max_queue
      $ drain_grace_ms $ timeout_ms $ spill_quota $ metrics_out $ trace_out
      $ slow_ms $ data_dir $ wal_fsync $ wal_group_ms $ checkpoint_bytes
      $ http_port $ stats_reset)

let query_cmd =
  let sql =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"SQL"
          ~doc:
            "One session statement: SELECT, INSERT, matview DDL, \
             $(b,\\\\metrics), $(b,\\\\dm), $(b,\\\\checkpoint).")
  in
  let run host port sql =
    match Client.connect ~host ~port () with
    | exception Wire.Protocol_error msg ->
      Format.eprintf "avq query: server refused: %s@." msg;
      exit 1
    | exception Unix.Unix_error (e, _, _) ->
      Format.eprintf "avq query: cannot connect to %s:%d: %s@." host port
        (Unix.error_message e);
      exit 1
    | c -> (
      match Client.query c sql with
      | Protocol.Result { body; _ } ->
        print_string body;
        if body <> "" && body.[String.length body - 1] <> '\n' then
          print_newline ();
        Client.close c
      | Protocol.Err { kind; detail } ->
        Format.eprintf "avq query: [%s] %s@." kind detail;
        Client.close c;
        exit 1
      | Protocol.Hello _ ->
        Format.eprintf "avq query: protocol error: unexpected Hello reply@.";
        Client.close c;
        exit 1)
  in
  let doc =
    "Send one statement to a running $(b,avq serve) and print the reply \
     body (exit 1 on a typed error)."
  in
  Cmd.v (Cmd.info "query" ~doc)
    Term.(const run $ host $ port ~default:5499 $ sql)

let loadgen_cmd =
  let connections =
    Arg.(
      value
      & opt int 8
      & info [ "c"; "connections" ] ~docv:"N" ~doc:"Concurrent client connections.")
  in
  let statements =
    Arg.(
      value
      & opt int 32
      & info [ "n"; "statements" ] ~docv:"N" ~doc:"Statements per connection.")
  in
  let rate =
    Arg.(
      value
      & opt (some float) None
      & info [ "rate" ] ~docv:"STMTS/S"
          ~doc:
            "Open-loop mode: offer $(docv) statements per second across all \
             connections regardless of reply latency.  Default: closed loop \
             (next statement when the reply lands).")
  in
  let file =
    Arg.(
      value
      & pos 0 (some file) None
      & info [] ~docv:"FILE"
          ~doc:
            "Workload file ($(b,;;)-terminated statements, sent round-robin); \
             omit for a built-in emp/dept aggregate mix.")
  in
  let run host port connections statements rate file =
    if connections < 1 || statements < 1 then begin
      Format.eprintf "avq loadgen: --connections and --statements must be >= 1@.";
      exit 1
    end;
    let sqls =
      match file with
      | None -> Loadgen.default_config.Loadgen.sqls
      | Some path ->
        let text = In_channel.with_open_text path In_channel.input_all in
        let stmts = Replay.split_statements text in
        if stmts = [] then begin
          Format.eprintf "avq loadgen: %s contains no statements@." path;
          exit 1
        end;
        stmts
    in
    let mode =
      match rate with
      | None -> Loadgen.Closed
      | Some r when r > 0. -> Loadgen.Open_rate r
      | Some _ ->
        Format.eprintf "avq loadgen: --rate must be > 0@.";
        exit 1
    in
    let stats =
      Loadgen.run { Loadgen.host; port; connections; statements; mode; sqls }
    in
    Format.printf "%a@." Loadgen.pp stats;
    if stats.Loadgen.ok = 0 then exit 1
  in
  let doc =
    "Drive a running $(b,avq serve) with concurrent connections and report \
     throughput and latency percentiles."
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const run $ host $ port ~default:5499 $ connections $ statements $ rate
      $ file)

let main =
  let doc = "cost-based optimization of queries with aggregate views (EDBT'96)" in
  Cmd.group (Cmd.info "avq" ~version:"1.0.0" ~doc)
    [
      explain_cmd;
      run_cmd;
      compare_cmd;
      tables_cmd;
      repl_cmd;
      session_cmd;
      serve_cmd;
      query_cmd;
      loadgen_cmd;
    ]

let () = exit (Cmd.eval main)
