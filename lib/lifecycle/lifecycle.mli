(** Process lifecycle: one shared shutdown path for the batch session and
    the network server.

    A signal (SIGINT/SIGTERM) or a programmatic request moves the process
    through up to two phases:

    - {e draining}: stop taking new work (the session stops submitting
      statements, the server stops accepting connections and admitting
      statements) but let in-flight statements finish;
    - {e aborting}: in-flight statements are cancelled too — the executor's
      batch-boundary poll ({!Exec_ctx.check}) observes the abort flag and
      raises [Avq_error.Error Cancelled], so every worker unwinds through
      its normal cleanup path (temps dropped, futures resolved).

    The signal handler itself only flips atomics and pokes a self-pipe
    (async-signal-safe by construction: no locks, no allocation-heavy
    work); all real shutdown work — flushing trace/metrics sinks, removing
    temps, closing sockets — happens in the owning control flow, via the
    {!at_shutdown} hooks it registered. *)

type phase = Running | Draining | Aborting

type mode =
  | Abort_on_signal
      (** first signal aborts in-flight work immediately (batch session:
          Ctrl-C means "stop now, but cleanly") *)
  | Drain_then_abort
      (** first signal drains gracefully, a second one aborts (server:
          SIGTERM finishes in-flight statements, SIGTERM×2 cuts them) *)

val install : ?signals:int list -> mode -> unit
(** Install handlers for [signals] (default SIGINT and SIGTERM).
    Idempotent; a second call just switches the mode. *)

val installed : unit -> bool

val phase : unit -> phase

val draining : unit -> bool
(** [phase () <> Running]: no new work should be admitted. *)

val aborting : unit -> bool
(** In-flight statements must unwind at their next poll point. *)

val engaged : unit -> bool
(** Whether executors should poll for lifecycle aborts at batch
    boundaries: handlers are installed or a shutdown was requested
    programmatically.  Kept cheap (two atomic reads) — it runs on the
    statement hot path. *)

val request_drain : unit -> unit
val request_abort : unit -> unit
(** Programmatic equivalents of the signals (tests, server [stop]). *)

val signal_received : unit -> int option
(** The last shutdown signal delivered, if any. *)

val exit_code : unit -> int
(** Conventional exit status: [128 + signal] if a signal triggered the
    shutdown, [0] otherwise. *)

val wake_fd : unit -> Unix.file_descr
(** Read end of the self-pipe.  Select/poll loops include it so a signal
    interrupts their wait; {!drain_wake} empties it. *)

val drain_wake : unit -> unit
(** Consume any pending wake bytes (non-blocking). *)

val at_shutdown : (unit -> unit) -> unit
(** Register a cleanup hook (flush a sink, remove temps...).  Hooks run
    LIFO, once, when the owning control flow calls {!run_hooks}; a hook
    that raises is reported on stderr and does not stop the others. *)

val run_hooks : unit -> unit
(** Run (and clear) the registered hooks.  Idempotent. *)

val reset : unit -> unit
(** Back to [Running] with no hooks and no recorded signal (tests).
    Installed handlers stay installed. *)
