type phase = Running | Draining | Aborting

type mode = Abort_on_signal | Drain_then_abort

(* 0 = Running, 1 = Draining, 2 = Aborting.  Monotone: shutdown only ever
   escalates, so a relaxed read racing an escalation errs on the lenient
   side for at most one poll interval. *)
let state = Atomic.make 0
let got_signal = Atomic.make 0
let is_installed = Atomic.make false
let current_mode = Atomic.make Abort_on_signal

let phase () =
  match Atomic.get state with 0 -> Running | 1 -> Draining | _ -> Aborting

let draining () = Atomic.get state > 0
let aborting () = Atomic.get state > 1
let installed () = Atomic.get is_installed
let engaged () = Atomic.get is_installed || Atomic.get state > 0

let escalate level =
  (* never de-escalate *)
  let rec go () =
    let cur = Atomic.get state in
    if cur >= level then ()
    else if not (Atomic.compare_and_set state cur level) then go ()
  in
  go ()

(* Self-pipe: the handler pokes it so select loops wake up.  Created
   lazily; both ends non-blocking (a full pipe must not block the signal
   handler — one pending byte is enough to wake any reader). *)
let pipe = lazy (
  let r, w = Unix.pipe ~cloexec:true () in
  Unix.set_nonblock r;
  Unix.set_nonblock w;
  (r, w))

let wake_fd () = fst (Lazy.force pipe)

let wake () =
  let _, w = Lazy.force pipe in
  try ignore (Unix.write w (Bytes.make 1 '!') 0 1) with
  | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | Unix.Unix_error _ -> ()

let drain_wake () =
  let r = wake_fd () in
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read r buf 0 64 with
    | 0 -> ()
    | _ -> go ()
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  in
  go ()

let request_drain () =
  escalate 1;
  wake ()

let request_abort () =
  escalate 2;
  wake ()

let on_signal signo =
  Atomic.set got_signal signo;
  (match Atomic.get current_mode with
   | Abort_on_signal -> escalate 2
   | Drain_then_abort ->
     (* first signal drains, a repeat aborts *)
     if Atomic.get state > 0 then escalate 2 else escalate 1);
  wake ()

let install ?(signals = [ Sys.sigint; Sys.sigterm ]) mode =
  Atomic.set current_mode mode;
  if not (Atomic.exchange is_installed true) then
    (* force the pipe outside the handler; handlers must not allocate it *)
    ignore (Lazy.force pipe);
  List.iter (fun s -> Sys.set_signal s (Sys.Signal_handle on_signal)) signals

let signal_received () =
  match Atomic.get got_signal with 0 -> None | s -> Some s

let exit_code () =
  match Atomic.get got_signal with 0 -> 0 | s ->
    (* [Sys.sigint] etc. are OCaml's own negative encodings; map the two we
       handle onto their POSIX numbers for the conventional 128+N status. *)
    let posix = if s = Sys.sigint then 2 else if s = Sys.sigterm then 15 else 0 in
    if posix = 0 then 1 else 128 + posix

(* Hooks: plain mutex — registered and run from regular control flow only,
   never from the signal handler. *)
let hooks_lock = Mutex.create ()
let hooks : (unit -> unit) list ref = ref []

let at_shutdown f =
  Mutex.lock hooks_lock;
  hooks := f :: !hooks;
  Mutex.unlock hooks_lock

let run_hooks () =
  Mutex.lock hooks_lock;
  let hs = !hooks in
  hooks := [];
  Mutex.unlock hooks_lock;
  List.iter
    (fun f ->
      try f () with e ->
        Printf.eprintf "lifecycle: shutdown hook failed: %s\n%!"
          (Printexc.to_string e))
    hs

let reset () =
  Atomic.set state 0;
  Atomic.set got_signal 0;
  Mutex.lock hooks_lock;
  hooks := [];
  Mutex.unlock hooks_lock;
  drain_wake ()
