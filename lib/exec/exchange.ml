(* Morsel-driven intra-query parallelism.

   A parallel segment is driven by page-range morsels claimed from a shared
   atomic cursor: morsel [m] covers pages [m*ppb, (m+1)*ppb) of the driving
   heap scan, the same page ranges (and therefore the same batches) the
   serial [Executor.scan_batches] produces.  [dop] worker domains each fork
   the statement context, claim morsels until the cursor runs dry, and hand
   their output to the consuming domain through a bounded MPMC queue.  The
   consumer resequences morsels back into cursor order, so a parallel plan's
   output is byte-identical to the serial plan's.

   Error containment: the first worker exception wins a CAS slot and raises
   the shared stop flag; siblings stop at their next morsel claim, the
   last-finishing worker closes the queue, and the consumer re-raises the
   stored error once the queue drains — one typed error per statement, no
   stuck producers (pushes to a closed queue are dropped). *)

let max_dop = 64
let clamp_dop d = max 1 (min max_dop d)

(* Per-worker counters, surfaced as [worker-<i>] profile nodes. *)
type wstats = {
  wid : int;
  mutable wrows : int;
  mutable wbatches : int;
  mutable wms : float;
  mutable wio : Buffer_pool.stats;
}

let zero_io = { Buffer_pool.reads = 0; writes = 0; hits = 0 }
let fresh_stats wid = { wid; wrows = 0; wbatches = 0; wms = 0.; wio = zero_io }

let io_add a b =
  {
    Buffer_pool.reads = a.Buffer_pool.reads + b.Buffer_pool.reads;
    writes = a.Buffer_pool.writes + b.Buffer_pool.writes;
    hits = a.Buffer_pool.hits + b.Buffer_pool.hits;
  }

(* ---- bounded MPMC morsel queue ---- *)

module Mpmc = struct
  type 'a t = {
    lock : Mutex.t;
    not_full : Condition.t;
    not_empty : Condition.t;
    buf : 'a Queue.t;
    cap : int;
    mutable closed : bool;
  }

  let protect m f =
    Mutex.lock m;
    Fun.protect ~finally:(fun () -> Mutex.unlock m) f

  let create cap =
    {
      lock = Mutex.create ();
      not_full = Condition.create ();
      not_empty = Condition.create ();
      buf = Queue.create ();
      cap = max 1 cap;
      closed = false;
    }

  (* Blocks while full; pushing to a closed queue drops the item (the
     producers are being torn down and the consumer no longer cares). *)
  let push q x =
    protect q.lock (fun () ->
        while (not q.closed) && Queue.length q.buf >= q.cap do
          Condition.wait q.not_full q.lock
        done;
        if not q.closed then begin
          Queue.push x q.buf;
          Condition.signal q.not_empty
        end)

  (* Blocks while empty and open; [None] means closed {e and} drained. *)
  let pop q =
    protect q.lock (fun () ->
        while Queue.is_empty q.buf && not q.closed do
          Condition.wait q.not_empty q.lock
        done;
        if Queue.is_empty q.buf then None
        else begin
          let x = Queue.pop q.buf in
          Condition.signal q.not_full;
          Some x
        end)

  let close q =
    protect q.lock (fun () ->
        q.closed <- true;
        Condition.broadcast q.not_empty;
        Condition.broadcast q.not_full)
end

(* ---- worker team ---- *)

type 'a team = {
  domains : unit Domain.t array;
  stats : wstats array;
  results : 'a option array;
  error : (exn * Printexc.raw_backtrace) option Atomic.t;
  stop : bool Atomic.t;
  storage : Storage.t;
  mutable joined : bool;
}

(* Spawn [dop] domains, each folding morsels claimed from a shared cursor.
   [worker] drives its own loop via [claim], which polls the stop flag and
   the statement limits (deadline / cancellation) before dispensing the next
   morsel index.  Each worker runs on a forked context (own temp list, same
   cancel token) that is cleaned up before the domain exits, measures its
   own wall time and per-domain IO tally, and parks its result in a
   dedicated slot. *)
let spawn ~ctx ~dop ~n_morsels
    ~(worker :
       wid:int -> stats:wstats -> Exec_ctx.t -> claim:(unit -> int option) -> 'a)
    : 'a team =
  let dop = clamp_dop dop in
  let cursor = Atomic.make 0 in
  let stop = Atomic.make false in
  let error = Atomic.make None in
  let stats = Array.init dop fresh_stats in
  let results = Array.make dop None in
  let storage = Exec_ctx.storage ctx in
  let run_worker wid =
    let ws = stats.(wid) in
    let wctx = Exec_ctx.fork ctx in
    let t0 = Unix.gettimeofday () in
    let before = Storage.io_snapshot storage in
    let claim () =
      if Atomic.get stop then None
      else begin
        if Exec_ctx.guarded wctx then Exec_ctx.check wctx;
        let m = Atomic.fetch_and_add cursor 1 in
        if m >= n_morsels then None else Some m
      end
    in
    (try results.(wid) <- Some (worker ~wid ~stats:ws wctx ~claim)
     with e ->
       let bt = Printexc.get_raw_backtrace () in
       ignore (Atomic.compare_and_set error None (Some (e, bt)));
       Atomic.set stop true);
    (try Exec_ctx.cleanup wctx with _ -> ());
    ws.wms <- (Unix.gettimeofday () -. t0) *. 1000.;
    ws.wio <- Storage.io_since storage before
  in
  let domains = Array.init dop (fun wid -> Domain.spawn (fun () -> run_worker wid)) in
  { domains; stats; results; error; stop; storage; joined = false }

let cancel t = Atomic.set t.stop true

(* Join all worker domains (idempotent) and credit their IO to the calling
   domain's tally, so the enclosing snapshot-and-subtract measurement
   windows ([Executor.run_measured], profile nodes) include parallel work. *)
let join t =
  if not t.joined then begin
    t.joined <- true;
    Array.iter Domain.join t.domains;
    Array.iter (fun ws -> Storage.io_add_local t.storage ws.wio) t.stats
  end

let raise_if_error t =
  match Atomic.get t.error with
  | Some (e, bt) -> Printexc.raise_with_backtrace e bt
  | None -> ()

(* ---- blocking fold: per-worker accumulators (parallel partial agg) ---- *)

(* At dop 1 the leader runs the (single) worker inline — no domain spawn,
   no queue, and no IO re-crediting (the work already lands on the calling
   domain's tally).  The claim still polls the statement limits, so
   deadline and cancellation behave exactly as in the spawned case. *)
let fold_inline ~ctx ~n_morsels ~worker ?on_done () =
  let ws = fresh_stats 0 in
  let wctx = Exec_ctx.fork ctx in
  let storage = Exec_ctx.storage ctx in
  let cursor = ref 0 in
  let claim () =
    if Exec_ctx.guarded wctx then Exec_ctx.check wctx;
    let m = !cursor in
    if m >= n_morsels then None
    else begin
      incr cursor;
      Some m
    end
  in
  let t0 = Unix.gettimeofday () in
  let before = Storage.io_snapshot storage in
  let fin () =
    (try Exec_ctx.cleanup wctx with _ -> ());
    ws.wms <- (Unix.gettimeofday () -. t0) *. 1000.;
    ws.wio <- Storage.io_since storage before;
    match on_done with Some f -> f [| ws |] | None -> ()
  in
  match worker ~wid:0 ~stats:ws wctx ~claim with
  | r ->
    fin ();
    ([| r |], [| ws |])
  | exception e ->
    let bt = Printexc.get_raw_backtrace () in
    fin ();
    Printexc.raise_with_backtrace e bt

let fold ~ctx ~dop ~n_morsels ~worker ?on_done () =
  if clamp_dop dop = 1 then fold_inline ~ctx ~n_morsels ~worker ?on_done ()
  else begin
    let team = spawn ~ctx ~dop ~n_morsels ~worker in
    join team;
    (match on_done with Some f -> f team.stats | None -> ());
    raise_if_error team;
    let results =
      Array.map
        (function
          | Some r -> r | None -> invalid_arg "Exchange.fold: lost worker")
        team.results
    in
    (results, team.stats)
  end

(* ---- streaming gather: resequencing consumer ---- *)

(* dop-1 gather: the leader claims and evaluates morsels lazily in
   [next_batch], on its own domain — no spawn, no queue, no resequencing
   (a single claimer is already in order) and no IO re-crediting. *)
let gather_inline ~ctx ~schema ~n_morsels ~morsel ?on_done () : Biter.t =
  let ws = fresh_stats 0 in
  let wctx = Exec_ctx.fork ctx in
  let storage = Exec_ctx.storage ctx in
  let next = ref 0 in
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      (try Exec_ctx.cleanup wctx with _ -> ());
      match on_done with Some f -> f [| ws |] | None -> ()
    end
  in
  let rec next_batch () =
    if !next >= n_morsels then begin
      finish ();
      None
    end
    else begin
      match
        if Exec_ctx.guarded wctx then Exec_ctx.check wctx;
        let m = !next in
        incr next;
        let t0 = Unix.gettimeofday () in
        let before = Storage.io_snapshot storage in
        let b = morsel ~wid:0 wctx m in
        ws.wms <- ws.wms +. ((Unix.gettimeofday () -. t0) *. 1000.);
        ws.wio <- io_add ws.wio (Storage.io_since storage before);
        b
      with
      | Some batch ->
        ws.wrows <- ws.wrows + Batch.live batch;
        ws.wbatches <- ws.wbatches + 1;
        Some batch
      | None -> next_batch ()
      | exception e ->
        let bt = Printexc.get_raw_backtrace () in
        finish ();
        Printexc.raise_with_backtrace e bt
    end
  in
  let close () = finish () in
  { Biter.schema; next_batch; close }

let gather_team ~ctx ~dop ~schema ~n_morsels
    ~(morsel : wid:int -> Exec_ctx.t -> int -> Batch.t option) ?on_done () :
    Biter.t =
  let q : (int * Batch.t option) Mpmc.t = Mpmc.create (2 * dop) in
  let active = Atomic.make dop in
  let team =
    spawn ~ctx ~dop ~n_morsels ~worker:(fun ~wid ~stats:ws wctx ~claim ->
        Fun.protect
          ~finally:(fun () ->
            (* Last worker out closes the queue so the consumer's pop can
               return end-of-stream. *)
            if Atomic.fetch_and_add active (-1) = 1 then Mpmc.close q)
          (fun () ->
            let rec loop () =
              match claim () with
              | None -> ()
              | Some m ->
                let b = morsel ~wid wctx m in
                (match b with
                 | Some batch ->
                   ws.wrows <- ws.wrows + Batch.live batch;
                   ws.wbatches <- ws.wbatches + 1
                 | None -> ());
                (* Empty morsels are pushed too, so the resequencer can
                   advance past them. *)
                Mpmc.push q (m, b);
                loop ()
            in
            loop ()))
  in
  (* Resequencer: drain the queue into a reorder map keyed by morsel index
     and emit strictly in index order.  The map is unbounded, so the queue
     always drains no matter how far out of order workers complete — a
     bounded queue plus in-order blocking pops would deadlock. *)
  let pending : (int, Batch.t option) Hashtbl.t = Hashtbl.create 64 in
  let next_seq = ref 0 in
  let finished = ref false in
  let finish () =
    if not !finished then begin
      finished := true;
      Mpmc.close q;
      join team;
      (match on_done with Some f -> f team.stats | None -> ());
      raise_if_error team
    end
  in
  let rec next_batch () =
    if !next_seq >= n_morsels then begin
      finish ();
      None
    end
    else
      match Hashtbl.find_opt pending !next_seq with
      | Some b ->
        Hashtbl.remove pending !next_seq;
        incr next_seq;
        (match b with Some _ as r -> r | None -> next_batch ())
      | None -> (
        match Mpmc.pop q with
        | Some (m, b) ->
          Hashtbl.replace pending m b;
          next_batch ()
        | None ->
          (* Closed and drained with morsels still missing: a worker died or
             the stream was stopped.  Surface the first error, else end. *)
          finish ();
          None)
  in
  let close () =
    cancel team;
    Mpmc.close q;
    try finish () with _ -> ()
  in
  { Biter.schema; next_batch; close }

let gather ~ctx ~dop ~schema ~n_morsels ~morsel ?on_done () : Biter.t =
  let dop = clamp_dop dop in
  if dop = 1 then gather_inline ~ctx ~schema ~n_morsels ~morsel ?on_done ()
  else gather_team ~ctx ~dop ~schema ~n_morsels ~morsel ?on_done ()

(* ---- plan surgery ---- *)

(* Aggregates whose partial/merge decomposition reproduces the serial
   fold bit for bit.  COUNT/MIN/MAX always; SUM and AVG only over Int
   arguments — float addition is not associative, so partial float sums
   would differ from the serial left fold in the low bits.  UDF folds are
   order-dependent by construction. *)
let parallel_agg_ok (a : Aggregate.t) =
  match a.Aggregate.func with
  | Aggregate.Count_star | Aggregate.Count | Aggregate.Min | Aggregate.Max ->
    true
  | Aggregate.Sum | Aggregate.Avg -> (
    match a.Aggregate.arg with
    | Some e -> Expr.type_of e = Datatype.Int
    | None -> false)
  | Aggregate.Udf _ -> false

let parallel_group_ok aggs = List.for_all parallel_agg_ok aggs

(* A morsel pipeline the workers can evaluate independently: a heap scan
   driving filters, projections and hash-join probes.  Build sides are
   evaluated once up front (and may be any plan), so only the probe spine
   is constrained. *)
let rec segment_ok = function
  | Physical.Seq_scan _ -> true
  | Physical.Filter f -> segment_ok f.input
  | Physical.Project p -> segment_ok p.input
  | Physical.Hash_join j ->
    segment_ok (match j.build_side with `Left -> j.right | `Right -> j.left)
  | _ -> false

(* Mark every hash-join build side in the segment for partitioned parallel
   build. *)
let rec mark_builds ~dop = function
  | Physical.Filter f -> Physical.Filter { f with input = mark_builds ~dop f.input }
  | Physical.Project p ->
    Physical.Project { p with input = mark_builds ~dop p.input }
  | Physical.Hash_join j ->
    (match j.build_side with
     | `Right ->
       Physical.Hash_join
         {
           j with
           left = mark_builds ~dop j.left;
           right =
             Physical.Repartition
               { input = j.right; dop; keys = List.map snd j.keys };
         }
     | `Left ->
       Physical.Hash_join
         {
           j with
           right = mark_builds ~dop j.right;
           left =
             Physical.Repartition
               { input = j.left; dop; keys = List.map fst j.keys };
         })
  | leaf -> leaf

(* Insert (at most) one [Exchange] at the widest eligible point of the
   plan: directly under a hash group whose input is a parallel segment (the
   executor then runs partial aggregation on the workers and merges), or
   around a bare segment.  Recurses through the unary wrappers the
   optimizer puts on top (Project / Sort / Limit / Filter / Materialize)
   and through outer group-bys. *)
let parallelize ~dop plan =
  let dop = clamp_dop dop in
  let wrap seg = Physical.Exchange { input = mark_builds ~dop seg; dop } in
  let rec go plan =
    if segment_ok plan then wrap plan
    else
      match plan with
      | Physical.Hash_group g when segment_ok g.input ->
        Physical.Hash_group { g with input = wrap g.input }
      | Physical.Hash_group g -> Physical.Hash_group { g with input = go g.input }
      | Physical.Sort s -> Physical.Sort { s with input = go s.input }
      | Physical.Limit l -> Physical.Limit { l with input = go l.input }
      | Physical.Project p -> Physical.Project { p with input = go p.input }
      | Physical.Filter f -> Physical.Filter { f with input = go f.input }
      | Physical.Materialize m -> Physical.Materialize { input = go m.input }
      | other -> other
  in
  go plan

(* Does the plan contain an [Exchange]?  (Used by the optimizer to report
   whether the parallel rewrite fired, and by tests.) *)
let rec has_exchange = function
  | Physical.Exchange _ -> true
  | p -> List.exists has_exchange (Physical.inputs p)
