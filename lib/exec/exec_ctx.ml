type t = {
  cat : Catalog.t;
  work_mem : int;
  mutable temps : Heap_file.t list;
  mutable profiler : Profile.t option;
  (* Per-statement limits, reset by [begin_statement].  A context belongs to
     one domain at a time, so the fields are plain mutables; only the cancel
     token is shared (another domain sets it to cancel the statement). *)
  mutable deadline : float option;  (* absolute Unix time *)
  mutable timeout_ms : float;  (* for the Timeout error payload *)
  mutable cancel_token : bool Atomic.t;
  mutable spill_quota : int option;
  mutable spill_pages : int;
  mutable guarded : bool;
}

let create ?(work_mem = 32) cat =
  if work_mem < 3 then invalid_arg "Exec_ctx.create: work_mem < 3";
  {
    cat;
    work_mem;
    temps = [];
    profiler = None;
    deadline = None;
    timeout_ms = 0.;
    cancel_token = Atomic.make false;
    spill_quota = None;
    spill_pages = 0;
    guarded = false;
  }

(* A morsel worker's view of the statement: same catalog, budget and limits
   (the cancel token is the SAME atomic, so cancelling the statement stops
   every worker), but its own temp list and spill counter — temps allocated
   on a worker domain are dropped by that worker — and no profiler (the
   exchange operator aggregates worker stats itself). *)
let fork t =
  {
    cat = t.cat;
    work_mem = t.work_mem;
    temps = [];
    profiler = None;
    deadline = t.deadline;
    timeout_ms = t.timeout_ms;
    cancel_token = t.cancel_token;
    spill_quota = t.spill_quota;
    spill_pages = 0;
    guarded = t.guarded;
  }

let profiler t = t.profiler
let set_profiler t p = t.profiler <- p

let catalog t = t.cat
let work_mem t = t.work_mem
let storage t = Catalog.storage t.cat

(* ---- statement limits ---- *)

let begin_statement ?timeout_ms ?spill_quota ?cancel t =
  (match timeout_ms with
   | Some ms when ms <= 0. ->
     invalid_arg "Exec_ctx.begin_statement: timeout_ms <= 0"
   | _ -> ());
  (match spill_quota with
   | Some q when q < 0 ->
     invalid_arg "Exec_ctx.begin_statement: spill_quota < 0"
   | _ -> ());
  t.deadline <-
    (match timeout_ms with
     | None -> None
     | Some ms -> Some (Unix.gettimeofday () +. (ms /. 1000.)));
  t.timeout_ms <- Option.value ~default:0. timeout_ms;
  t.cancel_token <- (match cancel with Some c -> c | None -> Atomic.make false);
  t.spill_quota <- spill_quota;
  t.spill_pages <- 0;
  t.guarded <- t.deadline <> None || cancel <> None

let cancel t = Atomic.set t.cancel_token true

(* Statements also poll while a process-wide shutdown may be in progress
   (lifecycle handlers installed), so a drain that escalates to abort stops
   every in-flight statement at its next batch boundary even when it carries
   no deadline or cancel token of its own. *)
let guarded t = t.guarded || Lifecycle.engaged ()

let check t =
  if Lifecycle.aborting () then Avq_error.error Avq_error.Cancelled;
  if Atomic.get t.cancel_token then Avq_error.error Avq_error.Cancelled;
  match t.deadline with
  | Some d when Unix.gettimeofday () > d ->
    Avq_error.error (Avq_error.Timeout { limit_ms = t.timeout_ms })
  | _ -> ()

let spill_pages t = t.spill_pages

(* Cumulative per-statement spill accounting: every fresh temp page counts
   against the quota, whether or not the file is dropped later — the budget
   bounds how much spilling the statement may *do*, not its high-water
   mark. *)
let on_spill_page t _page =
  t.spill_pages <- t.spill_pages + 1;
  match t.spill_quota with
  | Some q when t.spill_pages > q ->
    Avq_error.error
      (Avq_error.Resource_exceeded
         { resource = "temp-pages"; limit = q; used = t.spill_pages })
  | _ -> ()

let temp t schema =
  let h = Storage.create_temp (storage t) schema in
  Heap_file.set_page_hook h (Some (on_spill_page t));
  t.temps <- h :: t.temps;
  h

(* Idempotent: dropping a heap the context no longer tracks is a no-op, so
   an operator's eager close composes with the outer close / cleanup. *)
let drop t h =
  let id = Heap_file.file_id h in
  if List.exists (fun h' -> Heap_file.file_id h' = id) t.temps then begin
    Storage.drop_temp (storage t) h;
    t.temps <- List.filter (fun h' -> Heap_file.file_id h' <> id) t.temps
  end

let live_temps t = List.length t.temps

let cleanup t =
  List.iter (fun h -> Storage.drop_temp (storage t) h) t.temps;
  t.temps <- []
