type t = {
  cat : Catalog.t;
  work_mem : int;
  mutable temps : Heap_file.t list;
  mutable profiler : Profile.t option;
}

let create ?(work_mem = 32) cat =
  if work_mem < 3 then invalid_arg "Exec_ctx.create: work_mem < 3";
  { cat; work_mem; temps = []; profiler = None }

let profiler t = t.profiler
let set_profiler t p = t.profiler <- p

let catalog t = t.cat
let work_mem t = t.work_mem
let storage t = Catalog.storage t.cat

let temp t schema =
  let h = Storage.create_temp (storage t) schema in
  t.temps <- h :: t.temps;
  h

(* Idempotent: dropping a heap the context no longer tracks is a no-op, so
   an operator's eager close composes with the outer close / cleanup. *)
let drop t h =
  let id = Heap_file.file_id h in
  if List.exists (fun h' -> Heap_file.file_id h' = id) t.temps then begin
    Storage.drop_temp (storage t) h;
    t.temps <- List.filter (fun h' -> Heap_file.file_id h' <> id) t.temps
  end

let live_temps t = List.length t.temps

let cleanup t =
  List.iter (fun h -> Storage.drop_temp (storage t) h) t.temps;
  t.temps <- []
