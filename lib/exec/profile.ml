type node = {
  pname : string;
  mutable rows_out : int;
  mutable batches : int;
  mutable ms : float;
  mutable open_ms : float;
  mutable reads : int;
  mutable writes : int;
  mutable hits : int;
  mutable open_reads : int;
  mutable open_writes : int;
  mutable open_hits : int;
  mutable children : node list;  (* reverse registration order *)
}

type t = {
  mutable roots : node list;
  mutable stack : node list;
  mutable failed : string option;
}

let create () = { roots = []; stack = []; failed = None }

let enter t pname =
  let node =
    {
      pname;
      rows_out = 0;
      batches = 0;
      ms = 0.;
      open_ms = 0.;
      reads = 0;
      writes = 0;
      hits = 0;
      open_reads = 0;
      open_writes = 0;
      open_hits = 0;
      children = [];
    }
  in
  (match t.stack with
   | [] -> t.roots <- node :: t.roots
   | parent :: _ -> parent.children <- node :: parent.children);
  t.stack <- node :: t.stack;
  node

let leave t =
  match t.stack with
  | [] -> invalid_arg "Profile.leave: empty stack"
  | _ :: rest -> t.stack <- rest

let roots t = List.rev t.roots
let children n = List.rev n.children

let set_error t msg = if t.failed = None then t.failed <- Some msg
let error t = t.failed

let rows_in n =
  List.fold_left (fun acc c -> acc + c.rows_out) 0 n.children

(* Inclusive wall time: open cost (blocking operators drain their inputs
   while opening, outside any iterator wrapper) plus pull cost. *)
let total_ms n = n.open_ms +. n.ms

(* Inclusive page IO attributed to this node (includes descendants: IO is
   sampled around open and around next_batch/next of the wrapped subtree). *)
let total_reads n = n.open_reads + n.reads
let total_writes n = n.open_writes + n.writes
let total_hits n = n.open_hits + n.hits

(* Page touches: physical IO plus pool hits.  The cost model has no caching
   notion — it prices every page touch — so this is the estimate-comparable
   actual, stable whether the pool is cold or warm. *)
let total_touches n = total_reads n + total_writes n + total_hits n

(* Count rows (and close) through a node on the row path.  Per-row wall
   clocks would distort the very path being measured, so the row path only
   counts; [ms] stays 0. *)
let wrap_iter node (it : Iter.t) =
  let next () =
    match it.Iter.next () with
    | None -> None
    | Some _ as r ->
      node.rows_out <- node.rows_out + 1;
      r
  in
  { it with Iter.next }

(* Batch granularity is coarse enough that timing each [next_batch] call is
   in the noise; [ms] is inclusive of children. *)
let wrap_biter node (bit : Biter.t) =
  let next_batch () =
    let t0 = Unix.gettimeofday () in
    let r = bit.Biter.next_batch () in
    node.ms <- node.ms +. ((Unix.gettimeofday () -. t0) *. 1000.);
    (match r with
     | None -> ()
     | Some b ->
       node.batches <- node.batches + 1;
       node.rows_out <- node.rows_out + Batch.live b);
    r
  in
  { bit with Biter.next_batch }

let rec pp_node ppf (indent, n) =
  let self_ms =
    List.fold_left (fun acc c -> acc -. total_ms c) (total_ms n) n.children
  in
  Format.fprintf ppf
    "%s%-18s rows_in=%-8d rows_out=%-8d batches=%-6d pages=%-6d ms=%.2f"
    (String.make indent ' ') n.pname (rows_in n) n.rows_out n.batches
    (total_touches n)
    (max 0. self_ms);
  List.iter
    (fun c -> Format.fprintf ppf "@\n%a" pp_node (indent + 2, c))
    (children n)

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  (match t.failed with
   | Some msg -> Format.fprintf ppf "(partial: %s)@\n" msg
   | None -> ());
  List.iteri
    (fun i n ->
      if i > 0 then Format.pp_print_cut ppf ();
      pp_node ppf (0, n))
    (roots t);
  Format.pp_close_box ppf ()

let to_string t = Format.asprintf "%a" pp t
