type node = {
  pname : string;
  mutable rows_out : int;
  mutable batches : int;
  mutable ms : float;
  mutable children : node list;  (* reverse registration order *)
}

type t = { mutable roots : node list; mutable stack : node list }

let create () = { roots = []; stack = [] }

let enter t pname =
  let node = { pname; rows_out = 0; batches = 0; ms = 0.; children = [] } in
  (match t.stack with
   | [] -> t.roots <- node :: t.roots
   | parent :: _ -> parent.children <- node :: parent.children);
  t.stack <- node :: t.stack;
  node

let leave t =
  match t.stack with
  | [] -> invalid_arg "Profile.leave: empty stack"
  | _ :: rest -> t.stack <- rest

let roots t = List.rev t.roots
let children n = List.rev n.children

let rows_in n =
  List.fold_left (fun acc c -> acc + c.rows_out) 0 n.children

(* Count rows (and close) through a node on the row path.  Per-row wall
   clocks would distort the very path being measured, so the row path only
   counts; [ms] stays 0. *)
let wrap_iter node (it : Iter.t) =
  let next () =
    match it.Iter.next () with
    | None -> None
    | Some _ as r ->
      node.rows_out <- node.rows_out + 1;
      r
  in
  { it with Iter.next }

(* Batch granularity is coarse enough that timing each [next_batch] call is
   in the noise; [ms] is inclusive of children. *)
let wrap_biter node (bit : Biter.t) =
  let next_batch () =
    let t0 = Unix.gettimeofday () in
    let r = bit.Biter.next_batch () in
    node.ms <- node.ms +. ((Unix.gettimeofday () -. t0) *. 1000.);
    (match r with
     | None -> ()
     | Some b ->
       node.batches <- node.batches + 1;
       node.rows_out <- node.rows_out + Batch.live b);
    r
  in
  { bit with Biter.next_batch }

let rec pp_node ppf (indent, n) =
  let self_ms =
    List.fold_left (fun acc c -> acc -. c.ms) n.ms n.children
  in
  Format.fprintf ppf "%s%-18s rows_in=%-8d rows_out=%-8d batches=%-6d ms=%.2f"
    (String.make indent ' ') n.pname (rows_in n) n.rows_out n.batches
    (max 0. self_ms);
  List.iter
    (fun c -> Format.fprintf ppf "@\n%a" pp_node (indent + 2, c))
    (children n)

let pp ppf t =
  Format.pp_open_vbox ppf 0;
  List.iteri
    (fun i n ->
      if i > 0 then Format.pp_print_cut ppf ();
      pp_node ppf (0, n))
    (roots t);
  Format.pp_close_box ppf ()

let to_string t = Format.asprintf "%a" pp t
