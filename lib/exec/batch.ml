type t = {
  schema : Schema.t;
  rows : Tuple.t array;
  lo : int;  (* when [sel = None], live rows are [lo .. nrows-1] *)
  nrows : int;
  sel : int array option;
}

let default_rows = 1024

let of_sub schema rows nrows =
  if nrows < 0 || nrows > Array.length rows then
    invalid_arg "Batch.of_sub: nrows out of range";
  { schema; rows; lo = 0; nrows; sel = None }

let of_rows schema rows = of_sub schema rows (Array.length rows)

(* Zero-copy, zero-allocation view of [rows.(lo) .. rows.(lo+len-1)]: the
   (shared, read-only) source array is referenced directly and the live
   range is just the [lo .. nrows-1] window. *)
let of_segment schema rows ~lo ~len =
  if lo < 0 || len < 0 || lo + len > Array.length rows then
    invalid_arg "Batch.of_segment: segment out of range";
  { schema; rows; lo; nrows = lo + len; sel = None }

let of_list schema l = of_rows schema (Array.of_list l)
let schema t = t.schema

let live t = match t.sel with None -> t.nrows - t.lo | Some s -> Array.length s

let is_empty t = live t = 0

let iter f t =
  match t.sel with
  | None ->
    for i = t.lo to t.nrows - 1 do
      f t.rows.(i)
    done
  | Some s ->
    for i = 0 to Array.length s - 1 do
      f t.rows.(s.(i))
    done

let fold f init t =
  let acc = ref init in
  iter (fun tup -> acc := f !acc tup) t;
  !acc

let select p t =
  let n = live t in
  let keep = Array.make n 0 in
  let k = ref 0 in
  (match t.sel with
   | None ->
     for i = t.lo to t.nrows - 1 do
       if p t.rows.(i) then begin
         keep.(!k) <- i;
         incr k
       end
     done
   | Some s ->
     for i = 0 to Array.length s - 1 do
       let j = s.(i) in
       if p t.rows.(j) then begin
         keep.(!k) <- j;
         incr k
       end
     done);
  if !k = n && t.sel = None then t
  else { t with sel = Some (Array.sub keep 0 !k) }

(* X100-style specialized primitive: refine the selection to rows whose
   column [idx] compares [op] against the integer constant [k].  Skips the
   per-row closure tree and polymorphic compare of the generic [select];
   non-[Int] values (mixed-type data) fall back to the generic compare so
   semantics — including type errors — match the row interpreter. *)
let select_int_cmp ~op ~idx k t =
  let n = live t in
  let keep = Array.make n 0 in
  let c = ref 0 in
  let kv = Value.Int k in
  let test row =
    match Array.unsafe_get row idx with
    | Value.Int x -> (
      match op with
      | Expr.Eq -> x = k
      | Expr.Ne -> x <> k
      | Expr.Lt -> x < k
      | Expr.Le -> x <= k
      | Expr.Gt -> x > k
      | Expr.Ge -> x >= k)
    | v -> Expr.eval_cmp op v kv
  in
  (match t.sel with
   | None ->
     for i = t.lo to t.nrows - 1 do
       if test (Array.unsafe_get t.rows i) then begin
         Array.unsafe_set keep !c i;
         incr c
       end
     done
   | Some s ->
     for i = 0 to Array.length s - 1 do
       let j = Array.unsafe_get s i in
       if test (Array.unsafe_get t.rows j) then begin
         Array.unsafe_set keep !c j;
         incr c
       end
     done);
  if !c = n && t.sel = None then t
  else { t with sel = Some (Array.sub keep 0 !c) }

let map schema f t =
  let n = live t in
  let out = Array.make n [||] in
  let k = ref 0 in
  iter
    (fun tup ->
      out.(!k) <- f tup;
      incr k)
    t;
  of_rows schema out

let take n t =
  let n = max 0 n in
  if n >= live t then t
  else
    match t.sel with
    | None -> { t with sel = Some (Array.init n (fun i -> t.lo + i)) }
    | Some s -> { t with sel = Some (Array.sub s 0 n) }

let to_rows t =
  let out = Array.make (live t) [||] in
  let k = ref 0 in
  iter
    (fun tup ->
      out.(!k) <- tup;
      incr k)
    t;
  out

let to_list t = Array.to_list (to_rows t)
