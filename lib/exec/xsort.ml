let by_columns schema cols =
  let idx =
    Array.of_list
      (List.map
         (fun (c : Schema.column) ->
           match Schema.index_of_column schema c with
           | Some i -> i
           | None ->
             (match Schema.find schema ~qual:c.Schema.cqual c.Schema.cname with
              | Some i -> i
              | None ->
                raise
                  (Expr.Unresolved_column
                     (Format.asprintf "sort key %s not in %a"
                        (Schema.column_to_string c) Schema.pp schema))))
         cols)
  in
  fun a b -> Tuple.compare_at idx a b

let by_columns_dir schema cols ~desc =
  if desc = [] || not (List.exists Fun.id desc) then by_columns schema cols
  else begin
    let resolve (c : Schema.column) =
      match Schema.index_of_column schema c with
      | Some i -> i
      | None ->
        (match Schema.find schema ~qual:c.Schema.cqual c.Schema.cname with
         | Some i -> i
         | None ->
           raise
             (Expr.Unresolved_column
                (Format.asprintf "sort key %s not in %a"
                   (Schema.column_to_string c) Schema.pp schema)))
    in
    let keys =
      Array.of_list (List.map2 (fun c d -> (resolve c, d)) cols desc)
    in
    fun a b ->
      let rec loop i =
        if i >= Array.length keys then 0
        else
          let idx, d = keys.(i) in
          let c = Value.compare a.(idx) b.(idx) in
          if c <> 0 then if d then -c else c else loop (i + 1)
      in
      loop 0
  end

(* k-way merge of already-sorted iterators via a binary min-heap over the
   run heads: O(log k) per tuple instead of the O(k) linear scan, which made
   high-fan-in merges quadratic-ish.  Ties break on source index, keeping
   the merge deterministic. *)
let merge_iters schema compare iters =
  let arr = Array.of_list iters in
  let k = Array.length arr in
  let heap_tup = Array.make (max k 1) [||] in
  let heap_src = Array.make (max k 1) 0 in
  let size = ref 0 in
  let less i j =
    let c = compare heap_tup.(i) heap_tup.(j) in
    if c <> 0 then c < 0 else heap_src.(i) < heap_src.(j)
  in
  let swap i j =
    let t = heap_tup.(i) and s = heap_src.(i) in
    heap_tup.(i) <- heap_tup.(j);
    heap_src.(i) <- heap_src.(j);
    heap_tup.(j) <- t;
    heap_src.(j) <- s
  in
  let rec sift_up i =
    if i > 0 then begin
      let p = (i - 1) / 2 in
      if less i p then begin
        swap i p;
        sift_up p
      end
    end
  in
  let rec sift_down i =
    let l = (2 * i) + 1 and r = (2 * i) + 2 in
    let m = ref i in
    if l < !size && less l !m then m := l;
    if r < !size && less r !m then m := r;
    if !m <> i then begin
      swap i !m;
      sift_down !m
    end
  in
  let push tup src =
    heap_tup.(!size) <- tup;
    heap_src.(!size) <- src;
    incr size;
    sift_up (!size - 1)
  in
  Array.iteri
    (fun i (it : Iter.t) ->
      match it.Iter.next () with Some t -> push t i | None -> ())
    arr;
  let next () =
    if !size = 0 then None
    else begin
      let tup = heap_tup.(0) and src = heap_src.(0) in
      (match arr.(src).Iter.next () with
       | Some t ->
         heap_tup.(0) <- t;
         sift_down 0
       | None ->
         decr size;
         heap_tup.(0) <- heap_tup.(!size);
         heap_src.(0) <- heap_src.(!size);
         heap_tup.(!size) <- [||];
         if !size > 0 then sift_down 0);
      Some tup
    end
  in
  let close () = Array.iter (fun (it : Iter.t) -> it.Iter.close ()) arr in
  { Iter.schema; next; close }

(* Core external sort over an abstract producer: [drain f] must call [f] on
   every input tuple and release the input.  Shared by the row path
   ({!sort}) and the batch path ({!sort_batches}); both therefore buffer,
   spill and merge identically, page for page. *)
let sort_drain ctx ~compare ~schema drain =
  let work_mem = Exec_ctx.work_mem ctx in
  let page_cap = Page.capacity ~row_bytes:(Schema.byte_width schema) in
  let run_rows = max 1 (work_mem * page_cap) in
  let runs = ref [] in
  let buffer = ref [] in
  let buffered = ref 0 in
  let flush_run () =
    if !buffered > 0 then begin
      let sorted = List.sort compare !buffer in
      let heap = Exec_ctx.temp ctx schema in
      Heap_file.append_all heap sorted;
      runs := heap :: !runs;
      buffer := [];
      buffered := 0
    end
  in
  drain (fun tup ->
      buffer := tup :: !buffer;
      incr buffered;
      if !buffered >= run_rows then flush_run ());
  if !runs = [] then
    (* Fits in memory: no spill. *)
    Iter.of_list schema (List.sort compare !buffer)
  else begin
    flush_run ();
    let fanin = max 2 (work_mem - 1) in
    let rec merge_passes runs =
      if List.length runs <= fanin then runs
      else begin
        let rec take n = function
          | [] -> ([], [])
          | x :: rest when n > 0 ->
            let batch, remaining = take (n - 1) rest in
            (x :: batch, remaining)
          | l -> ([], l)
        in
        let rec pass acc = function
          | [] -> List.rev acc
          | runs ->
            let batch, rest = take fanin runs in
            let merged =
              merge_iters schema compare
                (List.map (fun h -> Iter.of_seq schema (Heap_file.to_seq h)) batch)
            in
            let out = Exec_ctx.temp ctx schema in
            Iter.iter (fun t -> ignore (Heap_file.append out t)) merged;
            List.iter (fun h -> Exec_ctx.drop ctx h) batch;
            pass (out :: acc) rest
        in
        merge_passes (pass [] runs)
      end
    in
    let final_runs = merge_passes (List.rev !runs) in
    let merged =
      merge_iters schema compare
        (List.map (fun h -> Iter.of_seq schema (Heap_file.to_seq h)) final_runs)
    in
    {
      merged with
      Iter.close =
        (fun () ->
          merged.Iter.close ();
          List.iter (fun h -> Exec_ctx.drop ctx h) final_runs);
    }
  end

let sort ctx ~compare (input : Iter.t) =
  sort_drain ctx ~compare ~schema:input.Iter.schema (fun f -> Iter.iter f input)

let sort_batches ctx ~compare (input : Biter.t) =
  sort_drain ctx ~compare ~schema:input.Biter.schema (fun f ->
      Biter.iter_rows f input)
