(** External merge sort.

    If the input fits in [work_mem] pages the sort happens in memory with no
    extra IO; otherwise sorted runs of [work_mem] pages are spilled to temp
    files and merged with fan-in [work_mem - 1], exactly the behaviour the
    cost model prices. *)

val sort : Exec_ctx.t -> compare:(Tuple.t -> Tuple.t -> int) -> Iter.t -> Iter.t

val sort_batches :
  Exec_ctx.t -> compare:(Tuple.t -> Tuple.t -> int) -> Biter.t -> Iter.t
(** Batch-fed external sort: drains the input batch-at-a-time into the same
    run-building and merge machinery as {!sort}, so both paths spill and
    merge identically.  The merged output is inherently row-at-a-time. *)

val merge_iters :
  Schema.t -> (Tuple.t -> Tuple.t -> int) -> Iter.t list -> Iter.t
(** k-way merge of already-sorted iterators using a binary min-heap over the
    run heads (O(log k) per tuple); ties break on run index. *)

val by_columns : Schema.t -> Schema.column list -> Tuple.t -> Tuple.t -> int
(** Comparator on the given columns resolved against [schema].
    @raise Expr.Unresolved_column on a missing column. *)

val by_columns_dir :
  Schema.t -> Schema.column list -> desc:bool list ->
  Tuple.t -> Tuple.t -> int
(** Like {!by_columns} with a per-column direction flag parallel to the
    column list ([true] = descending); [desc = []] means all ascending. *)
