(** Execution context: catalog access plus the operator memory budget.

    [work_mem] is the number of buffer-pool pages an operator may use as
    workspace (sort runs, hash tables, BNL outer blocks).  The cost model
    uses the same [work_mem] value, so predicted and measured IO agree on
    when spilling happens. *)

type t

val create : ?work_mem:int -> Catalog.t -> t
(** Default [work_mem] is 32 pages.
    @raise Invalid_argument if [work_mem < 3] (BNL and external sort need at
    least 3 pages). *)

val catalog : t -> Catalog.t
val work_mem : t -> int

val fork : t -> t
(** A morsel worker's view of the statement: shares the catalog, memory
    budget, deadline and the {e same} cancellation token (cancelling the
    statement stops every worker), but owns a fresh temp list / spill
    counter and carries no profiler — the exchange operator aggregates
    per-worker stats itself. *)

val storage : t -> Storage.t

val temp : t -> Schema.t -> Heap_file.t
(** Allocate a temp heap file (registered for {!cleanup}). *)

val drop : t -> Heap_file.t -> unit
(** Release one temp file.  Idempotent: dropping a heap this context no
    longer tracks is a no-op, so eager operator closes (e.g. [Limit])
    compose with the outer close and with {!cleanup}. *)

val cleanup : t -> unit
(** Drop any temp files still alive (safety net after failed runs). *)

val live_temps : t -> int
(** Number of temp heap files currently tracked (0 after {!cleanup}). *)

val profiler : t -> Profile.t option
val set_profiler : t -> Profile.t option -> unit
(** Per-operator counter sink; when set, {!Executor.open_iter} and
    [Executor.open_batch] register and wrap every operator they open. *)

(** {2 Statement limits}

    A statement may carry a deadline, a cancellation token and a temp-spill
    quota.  Deadline and cancellation are polled at batch boundaries by the
    executor (see {!guarded}); the spill quota is enforced eagerly, on every
    fresh temp page the statement allocates. *)

val begin_statement :
  ?timeout_ms:float -> ?spill_quota:int -> ?cancel:bool Atomic.t -> t -> unit
(** Reset the per-statement limit state.  [timeout_ms] sets an absolute
    deadline from now; [spill_quota] bounds the {e cumulative} number of
    temp pages the statement may allocate; [cancel] is a shared token another
    domain may set to abort the statement.
    @raise Invalid_argument if [timeout_ms <= 0] or [spill_quota < 0]. *)

val check : t -> unit
(** Poll the limits: raises [Avq_error.Error Cancelled] if a process-wide
    {!Lifecycle} abort is in progress or the statement's token is set, then
    [Avq_error.Error (Timeout _)] if past the deadline. *)

val cancel : t -> unit
(** Set this statement's cancellation token. *)

val guarded : t -> bool
(** Whether the executor should poll {!check} at batch boundaries: the
    current statement carries a deadline or cancel token, or lifecycle
    shutdown handlers are installed ({!Lifecycle.engaged}). *)

val spill_pages : t -> int
(** Cumulative temp pages allocated by the current statement. *)
