(** Volcano-style pull iterators. *)

type t = {
  schema : Schema.t;
  next : unit -> Tuple.t option;
  close : unit -> unit;
}

val of_seq : Schema.t -> Tuple.t Seq.t -> t
val of_list : Schema.t -> Tuple.t list -> t
val empty : Schema.t -> t

val map : Schema.t -> (Tuple.t -> Tuple.t) -> t -> t
val filter : (Tuple.t -> bool) -> t -> t

val concat_map_tuples : Schema.t -> (Tuple.t -> Tuple.t list) -> t -> t
(** Emit several output tuples per input tuple. *)

val once : (unit -> unit) -> unit -> unit
(** Make a close function idempotent (second and later calls are no-ops). *)

val to_list : t -> Tuple.t list
(** Drain and close; the source is closed (once) even on exceptions. *)

val to_relation : t -> Relation.t

val iter : (Tuple.t -> unit) -> t -> unit
(** Drain with a callback and close; exception-safe like {!to_list}. *)
