(** Batch iterators: the vectorized counterpart of {!Iter}.

    The protocol mirrors the volcano iterator but moves a {!Batch.t} per
    call instead of a tuple, so per-row closure dispatch and [Seq]/[option]
    allocation disappear from inner loops.  {!of_iter} / {!to_iter} adapt in
    both directions, letting operators convert to batch-native execution
    incrementally: a row-only operator keeps working under batch parents and
    vice versa. *)

type t = {
  schema : Schema.t;
  next_batch : unit -> Batch.t option;
  close : unit -> unit;
}

val empty : Schema.t -> t

val once : (unit -> unit) -> unit -> unit
(** Make a close function idempotent (second and later calls are no-ops). *)

val guard : t -> t
(** [guard t] is [t] with an idempotent [close], so an operator's eager
    close (e.g. [Limit]) composes with the outer drain's close. *)

val of_batches : Schema.t -> Batch.t list -> t
val of_rows : Schema.t -> Tuple.t array -> t
(** Serve an array as batches of {!Batch.default_rows}. *)

val of_iter : ?batch_rows:int -> Iter.t -> t
(** Adapter: accumulate up to [batch_rows] (default {!Batch.default_rows})
    rows per batch from a row iterator. *)

val to_iter : t -> Iter.t
(** Adapter: hand out the live rows of each batch one at a time. *)

val iter : (Batch.t -> unit) -> t -> unit
(** Drain batch-at-a-time and close; the source is closed (once) even when
    the callback or a producer raises. *)

val iter_rows : (Tuple.t -> unit) -> t -> unit
(** Drain row-at-a-time (over live rows) and close; exception-safe like
    {!iter}. *)

val to_list : t -> Tuple.t list
val to_relation : t -> Relation.t
