(** Per-operator execution counters.

    {!Executor.run_profiled} threads a profile through plan opening: each
    physical operator registers a node (children nested under parents) and
    its iterator is wrapped to count rows out, batches and wall time.  On
    the batch path [ms] is inclusive wall time of [next_batch] calls (the
    printer subtracts children to show self time); the row path only counts
    rows — per-row clock reads would distort the path being measured. *)

type node = {
  pname : string;
  mutable rows_out : int;
  mutable batches : int;
  mutable ms : float;
  mutable children : node list;
}

type t

val create : unit -> t

val enter : t -> string -> node
(** Open a node under the current parent and make it the parent for nodes
    registered until the matching {!leave}. *)

val leave : t -> unit

val roots : t -> node list
val children : node -> node list
val rows_in : node -> int
(** Sum of the direct children's [rows_out]. *)

val wrap_iter : node -> Iter.t -> Iter.t
val wrap_biter : node -> Biter.t -> Biter.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
