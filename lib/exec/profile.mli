(** Per-operator execution counters.

    {!Executor.run_profiled} threads a profile through plan opening: each
    physical operator registers a node (children nested under parents) and
    its iterator is wrapped to count rows out, batches and wall time.  On
    the batch path [ms] is inclusive wall time of [next_batch] calls (the
    printer subtracts children to show self time); the row path only counts
    rows — per-row clock reads would distort the path being measured.

    Blocking operators (hash build, sort, group) do their input-draining
    work while {e opening}, before the first [next_batch] — that cost lands
    in [open_ms]/[open_reads]/[open_writes], measured by the executor around
    the raw open call.  {!total_ms} and {!total_reads}/{!total_writes} are
    therefore inclusive of the node's whole subtree, so a root's totals
    match the statement's execute time and IO. *)

type node = {
  pname : string;
  mutable rows_out : int;
  mutable batches : int;
  mutable ms : float;  (* inclusive wall time of next_batch pulls *)
  mutable open_ms : float;  (* wall time spent opening (blocking work) *)
  mutable reads : int;  (* pages read during pulls, inclusive of subtree *)
  mutable writes : int;
  mutable hits : int;  (* pool hits during pulls *)
  mutable open_reads : int;  (* pages read while opening *)
  mutable open_writes : int;
  mutable open_hits : int;
  mutable children : node list;
}

type t

val create : unit -> t

val enter : t -> string -> node
(** Open a node under the current parent and make it the parent for nodes
    registered until the matching {!leave}. *)

val leave : t -> unit

val roots : t -> node list
val children : node -> node list
val rows_in : node -> int
(** Sum of the direct children's [rows_out]. *)

val set_error : t -> string -> unit
(** Mark the profile as partial: the statement failed mid-run and counters
    reflect work done up to the failure.  First caller wins. *)

val error : t -> string option

val total_ms : node -> float
(** [open_ms +. ms]: inclusive wall time for the node's subtree. *)

val total_reads : node -> int
val total_writes : node -> int
val total_hits : node -> int

val total_touches : node -> int
(** [reads + writes + hits], open + pulls: every buffer-pool page touch in
    the node's subtree.  The cost model prices page touches (it has no
    caching notion), so this is the estimate-comparable actual, stable
    whether the pool is cold or warm. *)

val wrap_iter : node -> Iter.t -> Iter.t
val wrap_biter : node -> Biter.t -> Biter.t

val pp : Format.formatter -> t -> unit
val to_string : t -> string
