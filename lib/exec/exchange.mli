(** Morsel-driven intra-query parallelism: the worker-team and queue
    machinery behind the [Physical.Exchange] / [Physical.Repartition]
    operators.

    The morsel unit is one batch worth of heap pages (1024 rows); workers
    claim morsel indices from a shared atomic cursor, so the parallel scan
    covers exactly the page ranges — and produces exactly the batches — of
    the serial [Executor.scan_batches].  The streaming consumer ({!gather})
    resequences morsels back into cursor order, which makes parallel plan
    output byte-identical to the serial plan's; {!fold} is the blocking
    variant used for parallel partial aggregation.

    Error containment: the first worker exception wins, raises a shared
    stop flag (siblings stop at their next morsel claim), and is re-raised
    on the consuming domain once the queue drains.  Worker contexts are
    forked from the statement context ({!Exec_ctx.fork}): they share the
    cancellation token and deadline, and clean their own temps before the
    domain exits. *)

val max_dop : int
val clamp_dop : int -> int

(** Per-worker counters, surfaced as [worker-<i>] children of the exchange
    profile node. *)
type wstats = {
  wid : int;
  mutable wrows : int;  (** rows the worker emitted (gather) / absorbed *)
  mutable wbatches : int;
  mutable wms : float;  (** worker wall time, ms *)
  mutable wio : Buffer_pool.stats;  (** IO tallied on the worker's domain *)
}

val fold :
  ctx:Exec_ctx.t ->
  dop:int ->
  n_morsels:int ->
  worker:
    (wid:int -> stats:wstats -> Exec_ctx.t -> claim:(unit -> int option) -> 'a) ->
  ?on_done:(wstats array -> unit) ->
  unit ->
  'a array * wstats array
(** Run [dop] workers to completion; each claims morsel indices via [claim]
    (which polls stop/deadline/cancellation and returns [None] when the
    cursor runs dry) and returns a final accumulator.  Blocks until all
    workers join, credits their IO to the calling domain, then re-raises
    the first worker error if any. *)

val gather :
  ctx:Exec_ctx.t ->
  dop:int ->
  schema:Schema.t ->
  n_morsels:int ->
  morsel:(wid:int -> Exec_ctx.t -> int -> Batch.t option) ->
  ?on_done:(wstats array -> unit) ->
  unit ->
  Biter.t
(** Streaming produce/consume over a bounded MPMC queue: workers evaluate
    [morsel] per claimed index ([None] = the morsel filtered to nothing)
    and the returned iterator emits the surviving batches in morsel order.
    [on_done] fires on the consuming domain once all workers have joined
    (before any error is re-raised).  Closing the iterator early stops the
    workers and drains the queue. *)

val parallel_group_ok : Aggregate.t list -> bool
(** Whether partial/merge decomposition of these aggregates reproduces the
    serial fold bit for bit: COUNT/MIN/MAX always, SUM/AVG only over Int
    arguments (float addition is not associative), never UDFs. *)

val segment_ok : Physical.t -> bool
(** Whether the plan is a morsel pipeline workers can evaluate
    independently: a heap scan driving filters, projections and hash-join
    probes (build sides are evaluated once up front and may be anything). *)

val parallelize : dop:int -> Physical.t -> Physical.t
(** Insert (at most) one [Exchange] at the widest eligible point of the
    plan and mark hash-join build sides inside the segment with
    [Repartition].  Plans with no eligible segment are returned
    unchanged. *)

val has_exchange : Physical.t -> bool
