(** Physical plans: the executable operator trees the optimizer emits.

    A physical plan fixes access paths (sequential vs index scan), join
    algorithms, sort placement and aggregation strategy.  The executor
    [Executor.run] evaluates any well-formed plan and reports measured page
    IO; the cost model [Cost_model] predicts that same IO from statistics.

    Planner-enforced invariants (the executor trusts them; the equivalence
    tests check end results):
    - [Merge_join] and [Sort_group] inputs must be sorted on the join /
      grouping columns (insert [Sort] nodes);
    - the inner (right) input of [Block_nl_join] and the target of
      [Index_nl_join] must be rescannable: a scan or a [Materialize]. *)

type bound = Value.t * bool  (** endpoint value, inclusive? *)

type t =
  | Seq_scan of { alias : string; table : string; filter : Expr.pred list }
  | Index_scan of {
      alias : string;
      table : string;
      column : string;  (** indexed column (unqualified name) *)
      lo : bound option;
      hi : bound option;
      filter : Expr.pred list;  (** residual, applied after the fetch *)
    }
  | Filter of { input : t; pred : Expr.pred list }
  | Block_nl_join of { left : t; right : t; cond : Expr.pred list }
  | Index_nl_join of {
      left : t;
      alias : string;
      table : string;
      column : string;  (** indexed column of the inner table *)
      outer_key : Schema.column;  (** column of [left] providing probe keys *)
      cond : Expr.pred list;  (** residual join predicates *)
    }
  | Hash_join of {
      left : t;
      right : t;
      keys : (Schema.column * Schema.column) list;  (** left col = right col *)
      cond : Expr.pred list;  (** residual non-equi conjuncts *)
      build_side : [ `Left | `Right ];
    }
  | Merge_join of {
      left : t;
      right : t;
      keys : (Schema.column * Schema.column) list;
      cond : Expr.pred list;
    }
  | Sort of { input : t; cols : Schema.column list; desc : bool list }
      (** [desc] is parallel to [cols]; [[]] means all ascending *)
  | Hash_group of group
  | Sort_group of group  (** input must be sorted on [keys] *)
  | Project of { input : t; cols : (Expr.t * Schema.column) list }
  | Materialize of { input : t }
      (** spool the input to a temp file, then stream it (rescannable) *)
  | Limit of { input : t; count : int }
      (** emit at most [count] rows, then stop pulling *)
  | Exchange of { input : t; dop : int }
      (** evaluate [input] morsel-wise on [dop] worker domains and gather
          the output batches, resequenced into producer order so results
          are byte-identical to a serial run *)
  | Repartition of { input : t; dop : int; keys : Schema.column list }
      (** hash-partition marker on a hash-join build side under an
          [Exchange]: the build table is split by hash of [keys] so [dop]
          workers each build their slice in parallel *)

and group = {
  input : t;
  agg_qual : string;
  keys : Schema.column list;
  aggs : Aggregate.t list;
  having : Expr.pred list;
}

val schema : Catalog.t -> t -> Schema.t
(** Output schema (needs the catalog to resolve scans). *)

val sorted_on : t -> (string * string) list
(** (qualifier, name) of columns the plan's output is provably sorted on
    (prefix order): [Sort]/[Merge_join]/[Sort_group]/[Index_scan] outputs,
    and sort order preserved through filters, projects (of retained
    columns) and materialize. *)

val relations : t -> (string * string) list
(** (alias, table) of every scan in the plan. *)

val op_name : t -> string
(** Short operator name ("SeqScan(emp)", "HashJoin", ...): the shared
    vocabulary between profile nodes, trace spans and EXPLAIN ANALYZE. *)

val display_table : string -> string
(** User-facing name of a scanned table: materialized-view extents
    ([__mv_<name>] heaps) render as [mv:<name>], anything else as itself.
    Used by every plan printer so EXPLAIN output attributes IO to the view
    the user created rather than an internal backing table. *)

val inputs : t -> t list
(** Direct child plans, left to right. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
