exception Bad of string

let fail fmt = Format.kasprintf (fun s -> raise (Bad s)) fmt

let check_pred schema p =
  List.iter
    (fun c ->
      try ignore (Expr.resolve_column schema c)
      with Expr.Unresolved_column msg -> fail "unresolved column in predicate: %s" msg)
    (Expr.pred_columns p)

let check_expr schema e =
  List.iter
    (fun c ->
      try ignore (Expr.resolve_column schema c)
      with Expr.Unresolved_column msg -> fail "unresolved column in expression: %s" msg)
    (Expr.columns e)

let key_name (c : Schema.column) = (c.Schema.cqual, c.Schema.cname)

let rec is_prefix small big =
  match small, big with
  | [], _ -> true
  | _, [] -> false
  | (q, n) :: s, (q', n') :: b ->
    String.equal q q' && String.equal n n' && is_prefix s b

let index_exists cat table column =
  match Catalog.find_table cat table with
  | None -> fail "unknown table %s" table
  | Some tbl ->
    if Catalog.index_on tbl column = None then
      fail "no index on %s.%s" table column

let rescannable = function
  | Physical.Seq_scan _ | Physical.Index_scan _ | Physical.Materialize _ -> true
  | _ -> false

let rec walk cat plan : Schema.t =
  let schema = Physical.schema cat plan in
  (match plan with
   | Physical.Seq_scan s -> List.iter (check_pred schema) s.filter
   | Physical.Index_scan s ->
     index_exists cat s.table s.column;
     List.iter (check_pred schema) s.filter
   | Physical.Filter f ->
     let inner = walk cat f.input in
     List.iter (check_pred inner) f.pred
   | Physical.Project p ->
     let inner = walk cat p.input in
     List.iter (fun (e, _) -> check_expr inner e) p.cols
   | Physical.Materialize m -> ignore (walk cat m.input)
   | Physical.Limit l ->
     if l.count < 0 then fail "negative limit";
     ignore (walk cat l.input)
   | Physical.Sort s ->
     let inner = walk cat s.input in
     if s.desc <> [] && List.length s.desc <> List.length s.cols then
       fail "Sort: desc flags not parallel to sort columns";
     List.iter
       (fun k ->
         try ignore (Expr.resolve_column inner k)
         with Expr.Unresolved_column msg -> fail "unresolved sort key: %s" msg)
       s.cols
   | Physical.Block_nl_join j ->
     let l = walk cat j.left and r = walk cat j.right in
     if not (rescannable j.right) then
       fail "BNL inner is not rescannable: %s"
         (String.concat "," (List.map fst (Physical.relations j.right)));
     let out = Schema.append l r in
     List.iter (check_pred out) j.cond
   | Physical.Index_nl_join j ->
     let l = walk cat j.left in
     index_exists cat j.table j.column;
     (try ignore (Expr.resolve_column l j.outer_key)
      with Expr.Unresolved_column msg -> fail "unresolved INL outer key: %s" msg);
     List.iter (check_pred schema) j.cond
   | Physical.Hash_join j ->
     let l = walk cat j.left and r = walk cat j.right in
     List.iter
       (fun (a, b) ->
         (try ignore (Expr.resolve_column l a)
          with Expr.Unresolved_column msg -> fail "hash key (left): %s" msg);
         try ignore (Expr.resolve_column r b)
         with Expr.Unresolved_column msg -> fail "hash key (right): %s" msg)
       j.keys;
     List.iter (check_pred schema) j.cond
   | Physical.Merge_join j ->
     let l = walk cat j.left and r = walk cat j.right in
     ignore l;
     ignore r;
     let lkeys = List.map (fun (a, _) -> key_name a) j.keys in
     let rkeys = List.map (fun (_, b) -> key_name b) j.keys in
     if not (is_prefix lkeys (Physical.sorted_on j.left)) then
       fail "merge join left input not sorted on its keys";
     if not (is_prefix rkeys (Physical.sorted_on j.right)) then
       fail "merge join right input not sorted on its keys";
     List.iter (check_pred schema) j.cond
   | Physical.Hash_group g | Physical.Sort_group g ->
     let inner = walk cat g.input in
     List.iter
       (fun k ->
         try ignore (Expr.resolve_column inner k)
         with Expr.Unresolved_column msg -> fail "unresolved grouping key: %s" msg)
       g.keys;
     List.iter
       (fun (a : Aggregate.t) ->
         match a.Aggregate.arg with
         | None -> ()
         | Some e -> check_expr inner e)
       g.aggs;
     List.iter (check_pred schema) g.having;
     (match plan with
      | Physical.Sort_group _ ->
        let keys = List.map key_name g.keys in
        if not (is_prefix keys (Physical.sorted_on g.input)) then
          fail "sort-group input not sorted on the grouping keys"
      | _ -> ())
   | Physical.Exchange e ->
     if e.dop < 1 then fail "exchange dop must be >= 1";
     ignore (walk cat e.input)
   | Physical.Repartition r ->
     if r.dop < 1 then fail "repartition dop must be >= 1";
     let inner = walk cat r.input in
     List.iter
       (fun k ->
         try ignore (Expr.resolve_column inner k)
         with Expr.Unresolved_column msg ->
           fail "unresolved repartition key: %s" msg)
       r.keys);
  schema

let check cat plan =
  match walk cat plan with
  | _ -> Ok ()
  | exception Bad msg -> Error msg
  | exception Invalid_argument msg -> Error msg

let check_exn cat plan =
  match check cat plan with Ok () -> () | Error msg -> failwith msg
