type bound = Value.t * bool

type t =
  | Seq_scan of { alias : string; table : string; filter : Expr.pred list }
  | Index_scan of {
      alias : string;
      table : string;
      column : string;
      lo : bound option;
      hi : bound option;
      filter : Expr.pred list;
    }
  | Filter of { input : t; pred : Expr.pred list }
  | Block_nl_join of { left : t; right : t; cond : Expr.pred list }
  | Index_nl_join of {
      left : t;
      alias : string;
      table : string;
      column : string;
      outer_key : Schema.column;
      cond : Expr.pred list;
    }
  | Hash_join of {
      left : t;
      right : t;
      keys : (Schema.column * Schema.column) list;
      cond : Expr.pred list;
      build_side : [ `Left | `Right ];
    }
  | Merge_join of {
      left : t;
      right : t;
      keys : (Schema.column * Schema.column) list;
      cond : Expr.pred list;
    }
  | Sort of { input : t; cols : Schema.column list; desc : bool list }
  | Hash_group of group
  | Sort_group of group
  | Project of { input : t; cols : (Expr.t * Schema.column) list }
  | Materialize of { input : t }
  | Limit of { input : t; count : int }
  | Exchange of { input : t; dop : int }
  | Repartition of { input : t; dop : int; keys : Schema.column list }

and group = {
  input : t;
  agg_qual : string;
  keys : Schema.column list;
  aggs : Aggregate.t list;
  having : Expr.pred list;
}

let table_schema cat ~alias table =
  let tbl = Catalog.table_exn cat table in
  Schema.rename_qualifier tbl.Catalog.tschema alias

let rec schema cat = function
  | Seq_scan s -> table_schema cat ~alias:s.alias s.table
  | Index_scan s -> table_schema cat ~alias:s.alias s.table
  | Filter f -> schema cat f.input
  | Block_nl_join j -> Schema.append (schema cat j.left) (schema cat j.right)
  | Index_nl_join j ->
    Schema.append (schema cat j.left) (table_schema cat ~alias:j.alias j.table)
  | Hash_join j -> Schema.append (schema cat j.left) (schema cat j.right)
  | Merge_join j -> Schema.append (schema cat j.left) (schema cat j.right)
  | Sort s -> schema cat s.input
  | Hash_group g | Sort_group g ->
    let in_schema = schema cat g.input in
    List.iter
      (fun k ->
        if Schema.index_of_column in_schema k = None then
          invalid_arg
            (Printf.sprintf "Physical: grouping column %s not in input"
               (Schema.column_to_string k)))
      g.keys;
    let agg_cols =
      List.map
        (fun (a : Aggregate.t) ->
          Schema.column ~qual:g.agg_qual a.Aggregate.out_name (Aggregate.result_type a))
        g.aggs
    in
    Schema.of_columns (g.keys @ agg_cols)
  | Project p -> Schema.of_columns (List.map snd p.cols)
  | Materialize m -> schema cat m.input
  | Limit l -> schema cat l.input
  | Exchange e -> schema cat e.input
  | Repartition r -> schema cat r.input

let key_name (c : Schema.column) = (c.Schema.cqual, c.Schema.cname)

let rec sorted_on = function
  (* A descending sort produces no ascending order property downstream
     consumers (merge join, sort-group) can reuse. *)
  | Sort s when List.exists Fun.id s.desc -> []
  | Sort s -> List.map key_name s.cols
  | Merge_join j -> List.map (fun (a, _) -> key_name a) j.keys
  | Sort_group g -> List.map key_name g.keys
  | Index_scan s -> [ (s.alias, s.column) ]
  | Filter f -> sorted_on f.input
  | Materialize m -> sorted_on m.input
  | Limit l -> sorted_on l.input
  | Project p ->
    (* Order survives as long as the leading sort columns are still present
       (as plain column references). *)
    let retained (q, n) =
      List.exists
        (fun (e, _) ->
          match e with
          | Expr.Col c -> String.equal c.Schema.cqual q && String.equal c.Schema.cname n
          | _ -> false)
        p.cols
    in
    let rec prefix = function
      | c :: rest when retained c -> c :: prefix rest
      | _ -> []
    in
    prefix (sorted_on p.input)
  (* The exchange consumer resequences morsels into producer order, so any
     order the input had is preserved. Repartition interleaves partitions
     and guarantees nothing. *)
  | Exchange e -> sorted_on e.input
  | Seq_scan _ | Block_nl_join _ | Index_nl_join _ | Hash_join _ | Hash_group _
  | Repartition _ ->
    []

let rec relations = function
  | Seq_scan s -> [ (s.alias, s.table) ]
  | Index_scan s -> [ (s.alias, s.table) ]
  | Filter f -> relations f.input
  | Block_nl_join j -> relations j.left @ relations j.right
  | Index_nl_join j -> relations j.left @ [ (j.alias, j.table) ]
  | Hash_join j -> relations j.left @ relations j.right
  | Merge_join j -> relations j.left @ relations j.right
  | Sort s -> relations s.input
  | Hash_group g | Sort_group g -> relations g.input
  | Project p -> relations p.input
  | Materialize m -> relations m.input
  | Limit l -> relations l.input
  | Exchange e -> relations e.input
  | Repartition r -> relations r.input

(* Materialized-view extents are backed by hidden [__mv_<name>] heap
   tables; display them as [mv:<name>] so EXPLAIN (and the op names that
   EXPLAIN ANALYZE zips actuals onto) attribute work to the view the user
   created, not to an internal table id. *)
let mv_prefix = "__mv_"

let display_table t =
  if String.length t > String.length mv_prefix
     && String.sub t 0 (String.length mv_prefix) = mv_prefix
  then
    "mv:"
    ^ String.sub t (String.length mv_prefix)
        (String.length t - String.length mv_prefix)
  else t

let preds_str ps = String.concat " AND " (List.map Expr.pred_to_string ps)
let cols_str cs = String.concat ", " (List.map Schema.column_to_string cs)

let keys_str keys =
  String.concat ", "
    (List.map
       (fun (a, b) ->
         Printf.sprintf "%s=%s" (Schema.column_to_string a) (Schema.column_to_string b))
       keys)

let rec pp_node ppf (indent, t) =
  let pad = String.make indent ' ' in
  let child c = (indent + 2, c) in
  match t with
  | Seq_scan s ->
    Format.fprintf ppf "%sSeqScan %s AS %s%s" pad (display_table s.table) s.alias
      (if s.filter = [] then "" else " [" ^ preds_str s.filter ^ "]")
  | Index_scan s ->
    let b side = function
      | None -> ""
      | Some (v, incl) ->
        Printf.sprintf " %s%s %s" side (if incl then "=" else "") (Value.to_string v)
    in
    Format.fprintf ppf "%sIndexScan %s AS %s on %s%s%s%s" pad (display_table s.table) s.alias s.column
      (b ">" s.lo) (b "<" s.hi)
      (if s.filter = [] then "" else " [" ^ preds_str s.filter ^ "]")
  | Filter f ->
    Format.fprintf ppf "%sFilter [%s]@\n%a" pad (preds_str f.pred) pp_node
      (child f.input)
  | Block_nl_join j ->
    Format.fprintf ppf "%sBNLJoin [%s]@\n%a@\n%a" pad (preds_str j.cond) pp_node
      (child j.left) pp_node (child j.right)
  | Index_nl_join j ->
    Format.fprintf ppf "%sIndexNLJoin %s AS %s via %s = %s%s@\n%a" pad (display_table j.table)
      j.alias j.column
      (Schema.column_to_string j.outer_key)
      (if j.cond = [] then "" else " [" ^ preds_str j.cond ^ "]")
      pp_node (child j.left)
  | Hash_join j ->
    Format.fprintf ppf "%sHashJoin [%s]%s build=%s@\n%a@\n%a" pad (keys_str j.keys)
      (if j.cond = [] then "" else " [" ^ preds_str j.cond ^ "]")
      (match j.build_side with `Left -> "left" | `Right -> "right")
      pp_node (child j.left) pp_node (child j.right)
  | Merge_join j ->
    Format.fprintf ppf "%sMergeJoin [%s]%s@\n%a@\n%a" pad (keys_str j.keys)
      (if j.cond = [] then "" else " [" ^ preds_str j.cond ^ "]")
      pp_node (child j.left) pp_node (child j.right)
  | Sort s ->
    let dir =
      if List.exists Fun.id s.desc then
        " <"
        ^ String.concat ", " (List.map (fun d -> if d then "desc" else "asc") s.desc)
        ^ ">"
      else ""
    in
    Format.fprintf ppf "%sSort [%s]%s@\n%a" pad (cols_str s.cols) dir pp_node
      (child s.input)
  | Hash_group g ->
    Format.fprintf ppf "%sHashGroup [%s | %s]%s@\n%a" pad (cols_str g.keys)
      (String.concat ", " (List.map Aggregate.to_string g.aggs))
      (if g.having = [] then "" else " HAVING " ^ preds_str g.having)
      pp_node (child g.input)
  | Sort_group g ->
    Format.fprintf ppf "%sSortGroup [%s | %s]%s@\n%a" pad (cols_str g.keys)
      (String.concat ", " (List.map Aggregate.to_string g.aggs))
      (if g.having = [] then "" else " HAVING " ^ preds_str g.having)
      pp_node (child g.input)
  | Project p ->
    let cols =
      String.concat ", "
        (List.map
           (fun (e, c) ->
             Printf.sprintf "%s AS %s" (Expr.to_string e) (Schema.column_to_string c))
           p.cols)
    in
    Format.fprintf ppf "%sProject [%s]@\n%a" pad cols pp_node (child p.input)
  | Materialize m ->
    Format.fprintf ppf "%sMaterialize@\n%a" pad pp_node (child m.input)
  | Limit l ->
    Format.fprintf ppf "%sLimit %d@\n%a" pad l.count pp_node (child l.input)
  | Exchange e ->
    Format.fprintf ppf "%sExchange dop=%d@\n%a" pad e.dop pp_node
      (child e.input)
  | Repartition r ->
    Format.fprintf ppf "%sRepartition dop=%d [%s]@\n%a" pad r.dop
      (cols_str r.keys) pp_node (child r.input)

let pp ppf t = pp_node ppf (0, t)
let to_string t = Format.asprintf "%a" pp t

(* Short operator name — the shared vocabulary between profile nodes,
   trace spans and EXPLAIN ANALYZE, so actuals can be zipped back onto the
   plan tree by name. *)
let op_name = function
  | Seq_scan s -> "SeqScan(" ^ display_table s.table ^ ")"
  | Index_scan s -> "IndexScan(" ^ display_table s.table ^ ")"
  | Filter _ -> "Filter"
  | Project _ -> "Project"
  | Materialize _ -> "Materialize"
  | Sort _ -> "Sort"
  | Limit _ -> "Limit"
  | Block_nl_join _ -> "BNLJoin"
  | Index_nl_join j -> "IndexNLJoin(" ^ display_table j.table ^ ")"
  | Hash_join _ -> "HashJoin"
  | Merge_join _ -> "MergeJoin"
  | Hash_group _ -> "HashGroup"
  | Sort_group _ -> "SortGroup"
  | Exchange e -> Printf.sprintf "Exchange(dop=%d)" e.dop
  | Repartition r -> Printf.sprintf "Repartition(dop=%d)" r.dop

let inputs = function
  | Seq_scan _ | Index_scan _ -> []
  | Filter f -> [ f.input ]
  | Project p -> [ p.input ]
  | Materialize m -> [ m.input ]
  | Sort s -> [ s.input ]
  | Limit l -> [ l.input ]
  | Block_nl_join j -> [ j.left; j.right ]
  | Index_nl_join j -> [ j.left ]
  | Hash_join j -> [ j.left; j.right ]
  | Merge_join j -> [ j.left; j.right ]
  | Hash_group g | Sort_group g -> [ g.input ]
  | Exchange e -> [ e.input ]
  | Repartition r -> [ r.input ]
