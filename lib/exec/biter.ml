type t = {
  schema : Schema.t;
  next_batch : unit -> Batch.t option;
  close : unit -> unit;
}

(* Idempotent close: operators like Limit close their input eagerly, and the
   exception-safe drains below close again in a [finally] — the second call
   must be a no-op. *)
let once close =
  let closed = ref false in
  fun () ->
    if not !closed then begin
      closed := true;
      close ()
    end

let guard t = { t with close = once t.close }

let empty schema =
  { schema; next_batch = (fun () -> None); close = (fun () -> ()) }

let of_batches schema batches =
  let pending = ref batches in
  let next_batch () =
    match !pending with
    | [] -> None
    | b :: rest ->
      pending := rest;
      Some b
  in
  { schema; next_batch; close = (fun () -> pending := []) }

(* Chunk a row array into batches of [Batch.default_rows]. *)
let of_rows schema rows =
  let n = Array.length rows in
  let pos = ref 0 in
  let next_batch () =
    if !pos >= n then None
    else begin
      let len = min Batch.default_rows (n - !pos) in
      let b = Batch.of_rows schema (Array.sub rows !pos len) in
      pos := !pos + len;
      Some b
    end
  in
  { schema; next_batch; close = (fun () -> pos := n) }

let of_iter ?(batch_rows = Batch.default_rows) (it : Iter.t) =
  let close = once it.Iter.close in
  let buf = Array.make batch_rows [||] in
  let next_batch () =
    let n = ref 0 in
    let rec fill () =
      if !n < batch_rows then
        match it.Iter.next () with
        | None -> ()
        | Some tup ->
          buf.(!n) <- tup;
          incr n;
          fill ()
    in
    fill ();
    if !n = 0 then None
    else
      (* Copy out: [buf] is reused across batches. *)
      Some (Batch.of_rows it.Iter.schema (Array.sub buf 0 !n))
  in
  { schema = it.Iter.schema; next_batch; close }

let to_iter t =
  let current = ref [||] in
  let pos = ref 0 in
  let rec next () =
    if !pos < Array.length !current then begin
      let tup = (!current).(!pos) in
      incr pos;
      Some tup
    end
    else
      match t.next_batch () with
      | None -> None
      | Some b ->
        current := Batch.to_rows b;
        pos := 0;
        next ()
  in
  { Iter.schema = t.schema; next; close = t.close }

let iter f t =
  let rec loop () =
    match t.next_batch () with
    | None -> ()
    | Some b ->
      f b;
      loop ()
  in
  (* Close the source even when [f] or a producer raises mid-pipeline, so
     scans and spills under this iterator release their resources; [once]
     keeps the close single-shot when the source already closed eagerly. *)
  Fun.protect ~finally:(once t.close) loop

let iter_rows f t = iter (fun b -> Batch.iter f b) t

let to_list t =
  let acc = ref [] in
  iter (fun b -> Batch.iter (fun tup -> acc := tup :: !acc) b) t;
  List.rev !acc

let to_relation t = Relation.create t.schema (to_list t)
