(** Row batches with selection vectors (MonetDB/X100-style vectorized
    execution unit).

    A batch is a filled prefix of an array of tuples plus an optional
    selection vector: an increasing array of indices of the rows that are
    still live.  Filters refine the selection vector instead of copying
    survivors, so a scan→filter→… pipeline touches each tuple array once.
    Batches are immutable from the consumer's point of view; [select] and
    [take] share the underlying row array.

    Ownership (X100 rule): a producer may reuse the underlying row array
    between batches, so a batch is only valid until the producer's next
    [next_batch] call.  Consumers must drain each batch before pulling the
    next, or copy rows out ([to_rows]/[to_list]); the tuples themselves are
    never overwritten and may be retained freely. *)

type t

val default_rows : int
(** Target rows per batch (1024). Operators may emit larger or smaller
    batches; the protocol does not require exact sizing. *)

val of_rows : Schema.t -> Tuple.t array -> t
(** Batch over the whole array, all rows live.  The array is owned by the
    batch afterwards. *)

val of_sub : Schema.t -> Tuple.t array -> int -> t
(** [of_sub schema rows n]: batch over the first [n] rows.
    @raise Invalid_argument if [n] is out of range. *)

val of_segment : Schema.t -> Tuple.t array -> lo:int -> len:int -> t
(** Zero-copy batch over [rows.(lo) .. rows.(lo+len-1)] of a shared,
    read-only array — e.g. a heap file's backing store.  No allocation
    proportional to [len].
    @raise Invalid_argument if the segment is out of range. *)

val of_list : Schema.t -> Tuple.t list -> t
val schema : t -> Schema.t

val live : t -> int
(** Number of live rows (selection vector length, or the full prefix). *)

val is_empty : t -> bool

val iter : (Tuple.t -> unit) -> t -> unit
(** Apply to every live row in batch order. *)

val fold : ('a -> Tuple.t -> 'a) -> 'a -> t -> 'a

val select : (Tuple.t -> bool) -> t -> t
(** Refine the selection vector to rows satisfying the predicate; no row is
    copied. *)

val select_int_cmp : op:Expr.cmp -> idx:int -> int -> t -> t
(** [select_int_cmp ~op ~idx k t]: specialized selection kernel for the
    post-pushdown shape [col <cmp> int-const] — a monomorphic loop over the
    batch with no per-row closure dispatch or polymorphic compare.
    Non-[Int] cell values fall back to {!Expr.eval_cmp}, so semantics match
    [select (Expr.compile_pred _ (Cmp (op, Col _, Const (Int k))))]. *)

val map : Schema.t -> (Tuple.t -> Tuple.t) -> t -> t
(** Compacting map over live rows (projection). *)

val take : int -> t -> t
(** Keep only the first [n] live rows. *)

val to_rows : t -> Tuple.t array
(** Compacted live rows. *)

val to_list : t -> Tuple.t list
