module Tuple_key = struct
  type t = Tuple.t

  let equal = Tuple.equal
  let hash t = Array.fold_left (fun acc v -> (acc * 31) + Value.hash v) 17 t
end

module TH = Hashtbl.Make (Tuple_key)

module Value_key = struct
  type t = Value.t

  let equal a b = Value.compare a b = 0

  (* Cheaper than {!Value.hash} on the dominant [Int] case (no intermediate
     tuple allocation), but still consistent with [equal]: an [Int] and the
     integral [Float] it equals hash identically. *)
  let hash = function
    | Value.Int i -> Hashtbl.hash i
    | Value.Float f when Float.is_integer f && Float.abs f < 1e18 ->
      Hashtbl.hash (int_of_float f)
    | v -> Value.hash v
end

(* Value-keyed table for the vectorized single-key group path. *)
module VH = Hashtbl.Make (Value_key)

type engine = [ `Row | `Batch ]

let compile_preds schema preds =
  match Expr.conjoin preds with
  | None -> fun _ -> true
  | Some p -> Expr.compile_pred schema p

let swap_cmp = function
  | Expr.Eq -> Expr.Eq
  | Expr.Ne -> Expr.Ne
  | Expr.Lt -> Expr.Gt
  | Expr.Le -> Expr.Ge
  | Expr.Gt -> Expr.Lt
  | Expr.Ge -> Expr.Le

(* Batch filter compiler: one selection kernel per conjunct.  The common
   post-pushdown shape [col <cmp> int-const] gets the vectorized primitive
   ({!Batch.select_int_cmp}); anything else runs the generic compiled
   predicate per live row.  Conjuncts are applied in order, matching the
   row path's short-circuiting [And] semantics. *)
let compile_batch_preds schema preds : (Batch.t -> Batch.t) list =
  List.concat_map Expr.conjuncts preds
  |> List.map (fun p ->
         match p with
         | Expr.Cmp (op, Expr.Col c, Expr.Const (Value.Int k)) ->
           let idx = Expr.resolve_column schema c in
           fun b -> Batch.select_int_cmp ~op ~idx k b
         | Expr.Cmp (op, Expr.Const (Value.Int k), Expr.Col c) ->
           let idx = Expr.resolve_column schema c in
           let op = swap_cmp op in
           fun b -> Batch.select_int_cmp ~op ~idx k b
         | p ->
           let f = Expr.compile_pred schema p in
           fun b -> Batch.select f b)

let resolve_all schema cols =
  Array.of_list (List.map (Expr.resolve_column schema) cols)

let compare_keys a b =
  let n = Array.length a in
  let rec loop i =
    if i >= n then 0
    else
      let c = Value.compare a.(i) b.(i) in
      if c <> 0 then c else loop (i + 1)
  in
  loop 0

(* Argument extractors for a list of aggregates against an input schema. *)
let agg_arg_fns schema aggs =
  List.map
    (fun (a : Aggregate.t) ->
      match a.Aggregate.arg with
      | None -> fun _ -> None
      | Some e ->
        let f = Expr.compile schema e in
        fun tup -> Some (f tup))
    aggs

let init_states aggs = List.map (fun (a : Aggregate.t) -> Aggregate.init a.Aggregate.func) aggs

(* Unboxed accumulation for the common all-int aggregate shapes —
   COUNT star, COUNT(col) and SUM over an Int-typed column.  [int_agg_plan]
   returns one kernel descriptor per aggregate when every aggregate in the
   list qualifies, so the batch group operator can keep a plain [int array]
   per group instead of stepping boxed [Aggregate.state]s. *)
type int_agg = ICount | ISum of int  (* ISum carries the column index *)

let int_agg_plan schema (aggs : Aggregate.t list) =
  let one (a : Aggregate.t) =
    match a.Aggregate.func, a.Aggregate.arg with
    | Aggregate.Count_star, None -> Some ICount
    | Aggregate.Count, Some (Expr.Col _) -> Some ICount
    | Aggregate.Sum, Some (Expr.Col c)
      when Expr.type_of (Expr.Col c) = Datatype.Int ->
      Some (ISum (Expr.resolve_column schema c))
    | _ -> None
  in
  let ks = List.filter_map one aggs in
  if List.length ks = List.length aggs then Some (Array.of_list ks) else None

(* Loop-style variants of the fast-path kernels, shared with the parallel
   partial-aggregation workers (closure-free on the per-row path). *)
let int_row_fits ia tup =
  let n = Array.length ia in
  let rec go j =
    j >= n
    || (match Array.unsafe_get ia j with
       | ICount -> true
       | ISum idx -> (
         match Array.unsafe_get tup idx with Value.Int _ -> true | _ -> false))
       && go (j + 1)
  in
  go 0

let int_apply ia acc tup =
  for j = 0 to Array.length ia - 1 do
    match Array.unsafe_get ia j with
    | ICount -> Array.unsafe_set acc j (Array.unsafe_get acc j + 1)
    | ISum idx -> (
      match Array.unsafe_get tup idx with
      | Value.Int x -> Array.unsafe_set acc j (Array.unsafe_get acc j + x)
      | _ -> assert false)
  done

let int_upgrade ia (aggs : Aggregate.t list) acc =
  Array.of_list
    (List.mapi
       (fun j (_ : Aggregate.t) ->
         match ia.(j) with
         | ICount -> Aggregate.count_state acc.(j)
         | ISum _ -> Aggregate.sum_state (Value.Int acc.(j)))
       aggs)

let step_states states fns tup =
  List.map2 (fun st f -> Aggregate.step st (f tup)) states fns

let finish_group key states = Tuple.concat key (Array.of_list (List.map Aggregate.finish states))

(* ---- hash-join building blocks shared by the row and batch paths ---- *)

let build_hash_table build_keys build_rows =
  let table = TH.create 1024 in
  List.iter
    (fun bt ->
      let k = Tuple.project_arr bt build_keys in
      TH.replace table k (bt :: Option.value ~default:[] (TH.find_opt table k)))
    build_rows;
  table

let probe_hits table probe_keys pt =
  match TH.find_opt table (Tuple.project_arr pt probe_keys) with
  | None -> []
  | Some bts -> bts

let grace_partitions ctx build_pages =
  let work_mem = Exec_ctx.work_mem ctx in
  min 64 (max 2 ((build_pages + work_mem - 2) / (work_mem - 1)))

let part_hash nparts keys_idx t =
  (Tuple_key.hash (Tuple.project_arr t keys_idx) land max_int) mod nparts

(* Join each spilled partition pair in memory; returns all result tuples in
   probe order within each partition (partitions in index order). *)
let grace_join ctx ~nparts ~build_parts ~probe_parts ~build_schema ~build_keys
    ~probe_keys ~keep ~emit =
  let results = ref [] in
  for p = 0 to nparts - 1 do
    let build_rows =
      Iter.to_list (Iter.of_seq build_schema (Heap_file.to_seq build_parts.(p)))
    in
    let table = build_hash_table build_keys build_rows in
    let probe_seq = ref (Heap_file.to_seq probe_parts.(p)) in
    let rec drain () =
      match !probe_seq () with
      | Seq.Nil -> ()
      | Seq.Cons (pt, rest) ->
        probe_seq := rest;
        List.iter
          (fun bt ->
            let out = emit pt bt in
            if keep out then results := out :: !results)
          (probe_hits table probe_keys pt);
        drain ()
    in
    drain ()
  done;
  Array.iter (fun h -> Exec_ctx.drop ctx h) build_parts;
  Array.iter (fun h -> Exec_ctx.drop ctx h) probe_parts;
  List.rev !results

(* Statement-limit polling (deadline / cancellation), applied to every
   operator a guarded statement opens.  Wrapping each node — not just the
   root — keeps pipeline breakers responsive: the scan feeding a big sort or
   group polls while the breaker is still absorbing input.  The row path
   amortizes the check over 128 rows; the batch path checks once per batch
   (its natural boundary). *)
let guard_iter ctx (it : Iter.t) =
  let n = ref 0 in
  let next () =
    if !n land 127 = 0 then Exec_ctx.check ctx;
    incr n;
    it.Iter.next ()
  in
  { it with Iter.next }

let guard_biter ctx (bit : Biter.t) =
  let next_batch () =
    Exec_ctx.check ctx;
    bit.Biter.next_batch ()
  in
  { bit with Biter.next_batch }

(* Open a plan node under a profile node, attributing wall time and page IO
   spent during the open itself (blocking operators — hash build, sort,
   group — drain their inputs here, before the first pull).  Records partial
   open stats even when the open raises, so aborted statements keep the work
   done so far. *)
let profiled_open ctx prof plan raw_open =
  let st = Exec_ctx.storage ctx in
  let node = Profile.enter prof (Physical.op_name plan) in
  let t0 = Unix.gettimeofday () in
  let before = Storage.io_snapshot st in
  let record () =
    let io = Storage.io_since st before in
    node.Profile.open_ms <- (Unix.gettimeofday () -. t0) *. 1000.;
    node.Profile.open_reads <- io.Buffer_pool.reads;
    node.Profile.open_writes <- io.Buffer_pool.writes;
    node.Profile.open_hits <- io.Buffer_pool.hits
  in
  match raw_open () with
  | v ->
    record ();
    Profile.leave prof;
    (node, v)
  | exception e ->
    record ();
    Profile.leave prof;
    raise e

(* Attribute page IO incurred during each pull to a profile node (inclusive
   of the subtree, like [Profile.wrap_biter]'s wall time). *)
let io_biter ctx (node : Profile.node) (bit : Biter.t) =
  let st = Exec_ctx.storage ctx in
  let next_batch () =
    let before = Storage.io_snapshot st in
    let r = bit.Biter.next_batch () in
    let io = Storage.io_since st before in
    node.Profile.reads <- node.Profile.reads + io.Buffer_pool.reads;
    node.Profile.writes <- node.Profile.writes + io.Buffer_pool.writes;
    node.Profile.hits <- node.Profile.hits + io.Buffer_pool.hits;
    r
  in
  { bit with Biter.next_batch }

(* ---- exchange segment compilation ----

   A parallel segment is the scan spine the morsel workers evaluate
   independently: heap scan -> filters -> projections -> hash-join probes.
   It compiles to one shared, domain-safe transform (the closures capture
   only immutable schemas, column indices and read-only hash tables;
   batches are immutable records), applied by each worker to the batches
   its claimed page ranges produce. *)

type segment = {
  seg_heap : Heap_file.t;
  seg_scan_schema : Schema.t;
  seg_schema : Schema.t;  (* output schema of the transform *)
  seg_fn : Batch.t -> Batch.t option;  (* [None] = morsel filtered away *)
}

exception Unsupported_segment

(* Serial and parallel scans must agree on morsel boundaries: morsel [m]
   covers pages [m*ppb, (m+1)*ppb), exactly the page ranges
   [scan_batches] walks. *)
let morsel_geometry heap =
  let npages = Heap_file.npages heap in
  let cap = Heap_file.page_capacity heap in
  let ppb = max 1 (Batch.default_rows / cap) in
  let n_morsels = if npages = 0 then 0 else ((npages + ppb - 1) / ppb) in
  (npages, ppb, n_morsels)

(* Pre-register [worker-<i>] profile nodes under the node currently being
   opened (the exchange), returning the callback that fills them with the
   team's counters once the workers join. *)
let worker_profile_nodes ctx ~dop =
  match Exec_ctx.profiler ctx with
  | None -> None
  | Some prof ->
    let dop = Exchange.clamp_dop dop in
    let nodes =
      Array.init dop (fun i ->
          let n = Profile.enter prof (Printf.sprintf "worker-%d" i) in
          Profile.leave prof;
          n)
    in
    Some
      (fun (stats : Exchange.wstats array) ->
        Array.iteri
          (fun i (ws : Exchange.wstats) ->
            if i < Array.length nodes then begin
              let n = nodes.(i) in
              n.Profile.rows_out <- ws.Exchange.wrows;
              n.Profile.batches <- ws.Exchange.wbatches;
              n.Profile.ms <- ws.Exchange.wms;
              n.Profile.reads <- ws.Exchange.wio.Buffer_pool.reads;
              n.Profile.writes <- ws.Exchange.wio.Buffer_pool.writes;
              n.Profile.hits <- ws.Exchange.wio.Buffer_pool.hits
            end)
          stats)

let rec open_iter ctx plan : Iter.t =
  let it =
    match Exec_ctx.profiler ctx with
    | None -> open_iter_raw ctx plan
    | Some prof ->
      let node, it = profiled_open ctx prof plan (fun () -> open_iter_raw ctx plan) in
      Profile.wrap_iter node it
  in
  if Exec_ctx.guarded ctx then guard_iter ctx it else it

and open_iter_raw ctx plan : Iter.t =
  let cat = Exec_ctx.catalog ctx in
  match plan with
  | Physical.Seq_scan s ->
    let tbl = Catalog.table_exn cat s.table in
    let schema = Schema.rename_qualifier tbl.Catalog.tschema s.alias in
    let it = Iter.of_seq schema (Heap_file.to_seq tbl.Catalog.heap) in
    if s.filter = [] then it else Iter.filter (compile_preds schema s.filter) it
  | Physical.Index_scan s ->
    let tbl = Catalog.table_exn cat s.table in
    let idx =
      match Catalog.index_on tbl s.column with
      | Some i -> i
      | None ->
        invalid_arg
          (Printf.sprintf "Executor: no index on %s.%s" s.table s.column)
    in
    let schema = Schema.rename_qualifier tbl.Catalog.tschema s.alias in
    let rids = Btree.search_range idx ?lo:s.lo ?hi:s.hi () in
    let fetch rid = Heap_file.get tbl.Catalog.heap rid in
    let it = Iter.of_seq schema (Seq.map fetch (List.to_seq rids)) in
    if s.filter = [] then it else Iter.filter (compile_preds schema s.filter) it
  | Physical.Filter f ->
    let it = open_iter ctx f.input in
    Iter.filter (compile_preds it.Iter.schema f.pred) it
  | Physical.Project p ->
    let it = open_iter ctx p.input in
    let fns = List.map (fun (e, _) -> Expr.compile it.Iter.schema e) p.cols in
    let out_schema = Schema.of_columns (List.map snd p.cols) in
    Iter.map out_schema
      (fun tup -> Array.of_list (List.map (fun f -> f tup) fns))
      it
  | Physical.Materialize m ->
    let it = open_iter ctx m.input in
    let heap = Exec_ctx.temp ctx it.Iter.schema in
    Iter.iter (fun t -> ignore (Heap_file.append heap t)) it;
    let out = Iter.of_seq it.Iter.schema (Heap_file.to_seq heap) in
    { out with Iter.close = (fun () -> out.Iter.close (); Exec_ctx.drop ctx heap) }
  | Physical.Sort s ->
    let it = open_iter ctx s.input in
    Xsort.sort ctx
      ~compare:(Xsort.by_columns_dir it.Iter.schema s.cols ~desc:s.desc)
      it
  | Physical.Limit l ->
    let it = open_iter ctx l.input in
    let remaining = ref l.count in
    let closed = ref false in
    (* Close the input as soon as the count is exhausted so scans under the
       Limit release temp heaps promptly; idempotent for the later close. *)
    let close_input () =
      if not !closed then begin
        closed := true;
        it.Iter.close ()
      end
    in
    let next () =
      if !remaining <= 0 then begin
        close_input ();
        None
      end
      else
        match it.Iter.next () with
        | None ->
          close_input ();
          None
        | Some t ->
          decr remaining;
          if !remaining = 0 then close_input ();
          Some t
    in
    { Iter.schema = it.Iter.schema; next; close = close_input }
  | Physical.Block_nl_join j -> bnl_join ctx j.left j.right j.cond
  | Physical.Index_nl_join j ->
    index_nl_join ctx ~left:j.left ~alias:j.alias ~table:j.table ~column:j.column
      ~outer_key:j.outer_key ~cond:j.cond
  | Physical.Hash_join j ->
    hash_join ctx ~left:j.left ~right:j.right ~keys:j.keys ~cond:j.cond
      ~build_side:j.build_side
  | Physical.Merge_join j ->
    merge_join ctx ~left:j.left ~right:j.right ~keys:j.keys ~cond:j.cond
  | Physical.Hash_group g -> hash_group ctx g
  | Physical.Sort_group g -> sort_group ctx g
  (* The row engine stays serial: exchange/repartition are transparent
     pass-throughs, so a parallel plan evaluated row-at-a-time produces the
     same rows as its serial shape. *)
  | Physical.Exchange e -> open_iter ctx e.input
  | Physical.Repartition r -> open_iter ctx r.input

(* Block nested-loop join: buffer (work_mem - 1) pages of outer tuples, then
   rescan the inner once per block.  The inner must be rescannable; a
   [Materialize] inner is spooled once and re-read per block. *)
and bnl_join ctx left right cond =
  let cat = Exec_ctx.catalog ctx in
  let lit = open_iter ctx left in
  let rschema = Physical.schema cat right in
  let out_schema = Schema.append lit.Iter.schema rschema in
  let keep = compile_preds out_schema cond in
  let block_rows =
    let cap = Page.capacity ~row_bytes:(Schema.byte_width lit.Iter.schema) in
    max 1 ((Exec_ctx.work_mem ctx - 1) * cap)
  in
  (* Rescannable inner: spool a Materialize once; otherwise reopen the scan.
     Reopens happen mid-next, when no profile parent is on the stack, so
     profiling is suspended around them. *)
  let spooled = ref None in
  let extra_close = ref (fun () -> ()) in
  let reopen_right () =
    let saved = Exec_ctx.profiler ctx in
    Exec_ctx.set_profiler ctx None;
    let reopened =
      match right with
      | Physical.Materialize m -> (
        match !spooled with
        | Some heap -> Iter.of_seq rschema (Heap_file.to_seq heap)
        | None ->
          let it = open_iter ctx m.input in
          let heap = Exec_ctx.temp ctx it.Iter.schema in
          Iter.iter (fun t -> ignore (Heap_file.append heap t)) it;
          spooled := Some heap;
          (extra_close := fun () -> Exec_ctx.drop ctx heap);
          Iter.of_seq rschema (Heap_file.to_seq heap))
      | Physical.Seq_scan _ | Physical.Index_scan _ -> open_iter ctx right
      | _ ->
        Exec_ctx.set_profiler ctx saved;
        invalid_arg
          "Executor: BNL inner must be a scan or Materialize (planner bug)"
    in
    Exec_ctx.set_profiler ctx saved;
    reopened
  in
  let block = ref [||] in
  let bi = ref 0 in
  let rit : Iter.t option ref = ref None in
  let rtup = ref None in
  let exhausted = ref false in
  let load_block () =
    let buf = ref [] and n = ref 0 in
    let rec fill () =
      if !n < block_rows then
        match lit.Iter.next () with
        | None -> ()
        | Some t ->
          buf := t :: !buf;
          incr n;
          fill ()
    in
    fill ();
    Array.of_list (List.rev !buf)
  in
  let rec next () =
    if !exhausted then None
    else
      match !rtup with
      | Some rt ->
        if !bi < Array.length !block then begin
          let lt = (!block).(!bi) in
          incr bi;
          let out = Tuple.concat lt rt in
          if keep out then Some out else next ()
        end
        else begin
          bi := 0;
          rtup := (match !rit with Some it -> it.Iter.next () | None -> None);
          next ()
        end
      | None -> (
        (* Inner exhausted (or not started) for the current block. *)
        (match !rit with
         | Some it ->
           it.Iter.close ();
           rit := None
         | None -> ());
        block := load_block ();
        if Array.length !block = 0 then begin
          exhausted := true;
          None
        end
        else begin
          let it = reopen_right () in
          rit := Some it;
          rtup := it.Iter.next ();
          bi := 0;
          next ()
        end)
  in
  let close () =
    lit.Iter.close ();
    (match !rit with Some it -> it.Iter.close () | None -> ());
    !extra_close ()
  in
  { Iter.schema = out_schema; next; close }

and index_nl_join ctx ~left ~alias ~table ~column ~outer_key ~cond =
  let cat = Exec_ctx.catalog ctx in
  let lit = open_iter ctx left in
  let tbl = Catalog.table_exn cat table in
  let idx =
    match Catalog.index_on tbl column with
    | Some i -> i
    | None ->
      invalid_arg (Printf.sprintf "Executor: no index on %s.%s" table column)
  in
  let rschema = Schema.rename_qualifier tbl.Catalog.tschema alias in
  let out_schema = Schema.append lit.Iter.schema rschema in
  let keep = compile_preds out_schema cond in
  let key_idx = Expr.resolve_column lit.Iter.schema outer_key in
  let expand lt =
    let rids = Btree.search_eq idx (Tuple.get lt key_idx) in
    List.filter_map
      (fun rid ->
        let out = Tuple.concat lt (Heap_file.get tbl.Catalog.heap rid) in
        if keep out then Some out else None)
      rids
  in
  Iter.concat_map_tuples out_schema expand lit

and hash_join ctx ~left ~right ~keys ~cond ~build_side =
  let lit = open_iter ctx left in
  let rit = open_iter ctx right in
  let out_schema = Schema.append lit.Iter.schema rit.Iter.schema in
  let keep = compile_preds out_schema cond in
  let lkeys = resolve_all lit.Iter.schema (List.map fst keys) in
  let rkeys = resolve_all rit.Iter.schema (List.map snd keys) in
  let build_it, probe_it, build_keys, probe_keys, emit =
    match build_side with
    | `Right -> (rit, lit, rkeys, lkeys, fun probe build -> Tuple.concat probe build)
    | `Left -> (lit, rit, lkeys, rkeys, fun probe build -> Tuple.concat build probe)
  in
  let build_rows = Iter.to_list build_it in
  let build_schema = build_it.Iter.schema in
  let build_pages =
    Page.pages_for ~rows:(List.length build_rows)
      ~row_bytes:(Schema.byte_width build_schema)
  in
  if build_pages <= Exec_ctx.work_mem ctx then begin
    (* In-memory build; stream the probe side. *)
    let table = build_hash_table build_keys build_rows in
    let pending = ref [] in
    let rec next () =
      match !pending with
      | x :: rest ->
        pending := rest;
        Some x
      | [] -> (
        match probe_it.Iter.next () with
        | None -> None
        | Some pt ->
          pending :=
            List.filter_map
              (fun bt ->
                let out = emit pt bt in
                if keep out then Some out else None)
              (probe_hits table probe_keys pt);
          next ())
    in
    { Iter.schema = out_schema; next; close = probe_it.Iter.close }
  end
  else begin
    (* Grace hash join: partition both sides to temp files, then join each
       partition pair in memory. *)
    let nparts = grace_partitions ctx build_pages in
    let build_parts =
      Array.init nparts (fun _ -> Exec_ctx.temp ctx build_schema)
    in
    List.iter
      (fun bt ->
        ignore (Heap_file.append build_parts.(part_hash nparts build_keys bt) bt))
      build_rows;
    let probe_schema = probe_it.Iter.schema in
    let probe_parts =
      Array.init nparts (fun _ -> Exec_ctx.temp ctx probe_schema)
    in
    Iter.iter
      (fun pt ->
        ignore (Heap_file.append probe_parts.(part_hash nparts probe_keys pt) pt))
      probe_it;
    let results =
      grace_join ctx ~nparts ~build_parts ~probe_parts ~build_schema
        ~build_keys ~probe_keys ~keep ~emit
    in
    Iter.of_list out_schema results
  end

and merge_join ctx ~left ~right ~keys ~cond =
  let lit = open_iter ctx left in
  let rit = open_iter ctx right in
  let out_schema = Schema.append lit.Iter.schema rit.Iter.schema in
  let keep = compile_preds out_schema cond in
  let lidx = resolve_all lit.Iter.schema (List.map fst keys) in
  let ridx = resolve_all rit.Iter.schema (List.map snd keys) in
  let lt = ref (lit.Iter.next ()) in
  let rt = ref (rit.Iter.next ()) in
  let group : (Tuple.t * Tuple.t list) option ref = ref None in
  let pending = ref [] in
  let collect_group rk =
    (* Gather all right tuples whose key equals rk; assumes !rt has key rk. *)
    let acc = ref [] in
    let rec loop () =
      match !rt with
      | Some r when compare_keys (Tuple.project_arr r ridx) rk = 0 ->
        acc := r :: !acc;
        rt := rit.Iter.next ();
        loop ()
      | _ -> ()
    in
    loop ();
    group := Some (rk, List.rev !acc)
  in
  let rec next () =
    match !pending with
    | x :: rest ->
      pending := rest;
      Some x
    | [] -> (
      match !lt with
      | None -> None
      | Some l -> (
        let lk = Tuple.project_arr l lidx in
        match !group with
        | Some (gk, gts) when compare_keys lk gk = 0 ->
          pending :=
            List.filter_map
              (fun r ->
                let out = Tuple.concat l r in
                if keep out then Some out else None)
              gts;
          lt := lit.Iter.next ();
          next ()
        | _ -> (
          match !rt with
          | None -> None
          | Some r ->
            let rk = Tuple.project_arr r ridx in
            let c = compare_keys lk rk in
            if c < 0 then begin
              lt := lit.Iter.next ();
              next ()
            end
            else if c > 0 then begin
              rt := rit.Iter.next ();
              next ()
            end
            else begin
              collect_group rk;
              next ()
            end)))
  in
  let close () =
    lit.Iter.close ();
    rit.Iter.close ()
  in
  { Iter.schema = out_schema; next; close }

and hash_group ctx (g : Physical.group) =
  let cat = Exec_ctx.catalog ctx in
  let it = open_iter ctx g.Physical.input in
  let in_schema = it.Iter.schema in
  let out_schema = Physical.schema cat (Physical.Hash_group g) in
  let key_idx = resolve_all in_schema g.Physical.keys in
  let fns = agg_arg_fns in_schema g.Physical.aggs in
  let table = TH.create 256 in
  let order = ref [] in
  Iter.iter
    (fun tup ->
      let k = Tuple.project_arr tup key_idx in
      let states =
        match TH.find_opt table k with
        | Some s -> s
        | None ->
          order := k :: !order;
          init_states g.Physical.aggs
      in
      TH.replace table k (step_states states fns tup))
    it;
  let rows = List.rev_map (fun k -> finish_group k (TH.find table k)) !order in
  let result = Iter.of_list out_schema rows in
  if g.Physical.having = [] then result
  else Iter.filter (compile_preds out_schema g.Physical.having) result

and sort_group ctx (g : Physical.group) =
  let cat = Exec_ctx.catalog ctx in
  let it = open_iter ctx g.Physical.input in
  let in_schema = it.Iter.schema in
  let out_schema = Physical.schema cat (Physical.Sort_group g) in
  let key_idx = resolve_all in_schema g.Physical.keys in
  let fns = agg_arg_fns in_schema g.Physical.aggs in
  let current = ref None in
  let finished = ref false in
  let rec next () =
    if !finished then None
    else
      match it.Iter.next () with
      | None ->
        finished := true;
        (match !current with
         | None -> None
         | Some (k, states) -> Some (finish_group k states))
      | Some tup -> (
        let k = Tuple.project_arr tup key_idx in
        match !current with
        | None ->
          current := Some (k, step_states (init_states g.Physical.aggs) fns tup);
          next ()
        | Some (gk, states) ->
          if compare_keys k gk = 0 then begin
            current := Some (gk, step_states states fns tup);
            next ()
          end
          else begin
            current := Some (k, step_states (init_states g.Physical.aggs) fns tup);
            Some (finish_group gk states)
          end)
  in
  let result = { Iter.schema = out_schema; next; close = it.Iter.close } in
  if g.Physical.having = [] then result
  else Iter.filter (compile_preds out_schema g.Physical.having) result

(* ==== batch-at-a-time path ==== *)

and open_batch ctx plan : Biter.t =
  match plan with
  | Physical.Block_nl_join _ | Physical.Index_nl_join _ | Physical.Merge_join _
  | Physical.Sort_group _ -> (
    (* Row-at-a-time fallback through the adapter; these operators consume
       their inputs with interleaving the batch path cannot reproduce
       page-for-page, so the whole subtree runs on the row path.  The root
       gets ONE profile node (not a batch node duplicating the row node),
       timed and IO-attributed at batch granularity by the adapter wrap. *)
    match Exec_ctx.profiler ctx with
    | None ->
      let bit = Biter.of_iter (open_iter ctx plan) in
      if Exec_ctx.guarded ctx then guard_biter ctx bit else bit
    | Some prof ->
      let node, it =
        profiled_open ctx prof plan (fun () -> open_iter_raw ctx plan)
      in
      let it = if Exec_ctx.guarded ctx then guard_iter ctx it else it in
      let bit = io_biter ctx node (Profile.wrap_biter node (Biter.of_iter it)) in
      if Exec_ctx.guarded ctx then guard_biter ctx bit else bit)
  | _ ->
    let bit =
      match Exec_ctx.profiler ctx with
      | None -> open_batch_raw ctx plan
      | Some prof ->
        let node, bit =
          profiled_open ctx prof plan (fun () -> open_batch_raw ctx plan)
        in
        io_biter ctx node (Profile.wrap_biter node bit)
    in
    if Exec_ctx.guarded ctx then guard_biter ctx bit else bit

and open_batch_raw ctx plan : Biter.t =
  let cat = Exec_ctx.catalog ctx in
  match plan with
  | Physical.Seq_scan s ->
    let tbl = Catalog.table_exn cat s.table in
    let schema = Schema.rename_qualifier tbl.Catalog.tschema s.alias in
    let bit = scan_batches schema tbl.Catalog.heap in
    if s.filter = [] then bit
    else batch_filter (compile_batch_preds schema s.filter) bit
  | Physical.Index_scan s ->
    let tbl = Catalog.table_exn cat s.table in
    let idx =
      match Catalog.index_on tbl s.column with
      | Some i -> i
      | None ->
        invalid_arg
          (Printf.sprintf "Executor: no index on %s.%s" s.table s.column)
    in
    let schema = Schema.rename_qualifier tbl.Catalog.tschema s.alias in
    let rids = ref (Btree.search_range idx ?lo:s.lo ?hi:s.hi ()) in
    (* Reused across batches; see the ownership rule in batch.mli. *)
    let buf = Array.make Batch.default_rows [||] in
    let next_batch () =
      if !rids = [] then None
      else begin
        let n = ref 0 in
        let rec fill () =
          if !n < Batch.default_rows then
            match !rids with
            | [] -> ()
            | rid :: rest ->
              buf.(!n) <- Heap_file.get tbl.Catalog.heap rid;
              incr n;
              rids := rest;
              fill ()
        in
        fill ();
        Some (Batch.of_sub schema buf !n)
      end
    in
    let bit = { Biter.schema; next_batch; close = (fun () -> rids := []) } in
    if s.filter = [] then bit
    else batch_filter (compile_batch_preds schema s.filter) bit
  | Physical.Filter f ->
    let bit = open_batch ctx f.input in
    batch_filter (compile_batch_preds bit.Biter.schema f.pred) bit
  | Physical.Project p ->
    let bit = open_batch ctx p.input in
    let fns =
      Array.of_list (List.map (fun (e, _) -> Expr.compile bit.Biter.schema e) p.cols)
    in
    let out_schema = Schema.of_columns (List.map snd p.cols) in
    let project tup = Array.map (fun f -> f tup) fns in
    let next_batch () =
      Option.map (Batch.map out_schema project) (bit.Biter.next_batch ())
    in
    { Biter.schema = out_schema; next_batch; close = bit.Biter.close }
  | Physical.Materialize m ->
    let bit = open_batch ctx m.input in
    let heap = Exec_ctx.temp ctx bit.Biter.schema in
    Biter.iter_rows (fun t -> ignore (Heap_file.append heap t)) bit;
    let out = scan_batches bit.Biter.schema heap in
    {
      out with
      Biter.close =
        (fun () ->
          out.Biter.close ();
          Exec_ctx.drop ctx heap);
    }
  | Physical.Sort s ->
    let bit = open_batch ctx s.input in
    Biter.of_iter
      (Xsort.sort_batches ctx
         ~compare:(Xsort.by_columns_dir bit.Biter.schema s.cols ~desc:s.desc)
         bit)
  | Physical.Limit l ->
    let bit = open_batch ctx l.input in
    let remaining = ref l.count in
    let closed = ref false in
    let close_input () =
      if not !closed then begin
        closed := true;
        bit.Biter.close ()
      end
    in
    let next_batch () =
      if !remaining <= 0 then begin
        close_input ();
        None
      end
      else
        match bit.Biter.next_batch () with
        | None ->
          close_input ();
          None
        | Some b ->
          let b = Batch.take !remaining b in
          remaining := !remaining - Batch.live b;
          if !remaining <= 0 then close_input ();
          Some b
    in
    { Biter.schema = bit.Biter.schema; next_batch; close = close_input }
  | Physical.Hash_join j ->
    batch_hash_join ctx ~left:j.left ~right:j.right ~keys:j.keys ~cond:j.cond
      ~build_side:j.build_side
  | Physical.Hash_group g -> (
    (* Parallel partial aggregation: when the group sits on an exchange
       whose segment the workers can run, fuse scan + partials into the
       workers and merge here.  Otherwise the exchange still parallelizes
       the scan and this group consumes the resequenced stream serially. *)
    match g.Physical.input with
    | Physical.Exchange e
      when Exchange.parallel_group_ok g.Physical.aggs
           && Exchange.segment_ok e.input -> (
      match open_parallel_group ctx g ~dop:e.dop e.input with
      | bit -> bit
      | exception Unsupported_segment -> batch_hash_group ctx g)
    | _ -> batch_hash_group ctx g)
  | Physical.Exchange e -> open_exchange ctx ~dop:e.dop e.input
  | Physical.Repartition r ->
    (* Only meaningful as a build-side marker inside an exchange segment;
       anywhere else it is a transparent pass-through. *)
    open_batch ctx r.input
  | Physical.Block_nl_join _ | Physical.Index_nl_join _ | Physical.Merge_join _
  | Physical.Sort_group _ ->
    (* Row-at-a-time fallback through the adapter; these operators consume
       their inputs with interleaving the batch path cannot reproduce
       page-for-page, so the whole subtree runs on the row path. *)
    Biter.of_iter (open_iter ctx plan)

(* Batches straight off heap pages: one buffer-pool touch per page, whole
   pages per batch, zero-copy — each batch is a view of the heap's backing
   row array (see the ownership rule in batch.mli). *)
and scan_batches schema heap : Biter.t =
  let npages = Heap_file.npages heap in
  let cap = Heap_file.page_capacity heap in
  let pages_per_batch = max 1 (Batch.default_rows / cap) in
  let next_page = ref 0 in
  let next_batch () =
    if !next_page >= npages then None
    else begin
      let p0 = !next_page in
      let np = min pages_per_batch (npages - p0) in
      let rows, lo, len = Heap_file.scan_segment heap ~page:p0 ~npages:np in
      next_page := p0 + np;
      Some (Batch.of_segment schema rows ~lo ~len)
    end
  in
  { Biter.schema; next_batch; close = (fun () -> next_page := npages) }

and batch_filter kernels (bit : Biter.t) : Biter.t =
  let rec next_batch () =
    match bit.Biter.next_batch () with
    | None -> None
    | Some b ->
      let b = List.fold_left (fun b k -> k b) b kernels in
      if Batch.is_empty b then next_batch () else Some b
  in
  { bit with Biter.next_batch }

and batch_hash_join ctx ~left ~right ~keys ~cond ~build_side : Biter.t =
  let lbit = open_batch ctx left in
  let rbit = open_batch ctx right in
  let out_schema = Schema.append lbit.Biter.schema rbit.Biter.schema in
  let keep = compile_preds out_schema cond in
  let lkeys = resolve_all lbit.Biter.schema (List.map fst keys) in
  let rkeys = resolve_all rbit.Biter.schema (List.map snd keys) in
  let build_bit, probe_bit, build_keys, probe_keys, emit =
    match build_side with
    | `Right -> (rbit, lbit, rkeys, lkeys, fun probe build -> Tuple.concat probe build)
    | `Left -> (lbit, rbit, lkeys, rkeys, fun probe build -> Tuple.concat build probe)
  in
  let build_rows = Biter.to_list build_bit in
  let build_schema = build_bit.Biter.schema in
  let build_pages =
    Page.pages_for ~rows:(List.length build_rows)
      ~row_bytes:(Schema.byte_width build_schema)
  in
  if build_pages <= Exec_ctx.work_mem ctx then begin
    (* In-memory build; probe batch-at-a-time, emitting one output batch per
       probe batch with at least one match. *)
    let table = build_hash_table build_keys build_rows in
    let rec next_batch () =
      match probe_bit.Biter.next_batch () with
      | None -> None
      | Some pb ->
        let out = ref [] in
        let n = ref 0 in
        Batch.iter
          (fun pt ->
            List.iter
              (fun bt ->
                let o = emit pt bt in
                if keep o then begin
                  out := o :: !out;
                  incr n
                end)
              (probe_hits table probe_keys pt))
          pb;
        if !n = 0 then next_batch ()
        else begin
          let arr = Array.make !n [||] in
          List.iteri (fun i t -> arr.(!n - 1 - i) <- t) !out;
          Some (Batch.of_rows out_schema arr)
        end
    in
    { Biter.schema = out_schema; next_batch; close = probe_bit.Biter.close }
  end
  else begin
    (* Grace hash join, identical partitioning and IO to the row path. *)
    let nparts = grace_partitions ctx build_pages in
    let build_parts =
      Array.init nparts (fun _ -> Exec_ctx.temp ctx build_schema)
    in
    List.iter
      (fun bt ->
        ignore (Heap_file.append build_parts.(part_hash nparts build_keys bt) bt))
      build_rows;
    let probe_schema = probe_bit.Biter.schema in
    let probe_parts =
      Array.init nparts (fun _ -> Exec_ctx.temp ctx probe_schema)
    in
    Biter.iter_rows
      (fun pt ->
        ignore (Heap_file.append probe_parts.(part_hash nparts probe_keys pt) pt))
      probe_bit;
    let results =
      grace_join ctx ~nparts ~build_parts ~probe_parts ~build_schema
        ~build_keys ~probe_keys ~keep ~emit
    in
    Biter.of_rows out_schema (Array.of_list results)
  end

and batch_hash_group ctx (g : Physical.group) : Biter.t =
  let cat = Exec_ctx.catalog ctx in
  let bit = open_batch ctx g.Physical.input in
  let in_schema = bit.Biter.schema in
  let out_schema = Physical.schema cat (Physical.Hash_group g) in
  let key_idx = resolve_all in_schema g.Physical.keys in
  let fns = agg_arg_fns in_schema g.Physical.aggs in
  let rows =
    match key_idx with
    | [| ki |] ->
      (* Vectorized single-key grouping: hash the key value itself (no
         per-row key-tuple allocation) and mutate each group's cells in
         place — one table probe per row instead of find + replace.
         Grouping semantics ([Value.compare]-based equality) and first-seen
         output order match the generic path exactly. *)
      let order = ref [] in
      let fns_arr = Array.of_list fns in
      let naggs = Array.length fns_arr in
      let step_gen st tup =
        for j = 0 to naggs - 1 do
          Array.unsafe_set st j
            (Aggregate.step (Array.unsafe_get st j)
               ((Array.unsafe_get fns_arr j) tup))
        done
      in
      (match int_agg_plan in_schema g.Physical.aggs with
       | Some ia ->
         (* All aggregates are int COUNT/SUM: a group's cell is a plain
            [int array] — the hot loop allocates nothing.  A non-Int SUM
            argument (mis-typed data; [Value.add] would promote the sum to
            Float) upgrades just that group to generic states rebuilt from
            its accumulators, so results stay identical either way. *)
         let table = VH.create 256 in
         let row_fits tup =
           let ok = ref true in
           for j = 0 to naggs - 1 do
             match Array.unsafe_get ia j with
             | ICount -> ()
             | ISum idx -> (
               match Array.unsafe_get tup idx with
               | Value.Int _ -> ()
               | _ -> ok := false)
           done;
           !ok
         in
         let apply_int acc tup =
           for j = 0 to naggs - 1 do
             match Array.unsafe_get ia j with
             | ICount ->
               Array.unsafe_set acc j (Array.unsafe_get acc j + 1)
             | ISum idx -> (
               match Array.unsafe_get tup idx with
               | Value.Int x ->
                 Array.unsafe_set acc j (Array.unsafe_get acc j + x)
               | _ -> assert false)
           done
         in
         (* Rebuild generic states from a cell that absorbed >= 1 rows. *)
         let upgrade acc =
           Array.of_list
             (List.mapi
                (fun j (_ : Aggregate.t) ->
                  match ia.(j) with
                  | ICount -> Aggregate.count_state acc.(j)
                  | ISum _ -> Aggregate.sum_state (Value.Int acc.(j)))
                g.Physical.aggs)
         in
         Biter.iter_rows
           (fun tup ->
             let k = Array.unsafe_get tup ki in
             match VH.find_opt table k with
             | Some cell -> (
               match !cell with
               | `Fast acc ->
                 if row_fits tup then apply_int acc tup
                 else begin
                   let st = upgrade acc in
                   step_gen st tup;
                   cell := `Slow st
                 end
               | `Slow st -> step_gen st tup)
             | None ->
               let cell =
                 if row_fits tup then begin
                   let acc = Array.make naggs 0 in
                   apply_int acc tup;
                   `Fast acc
                 end
                 else begin
                   let st = Array.of_list (init_states g.Physical.aggs) in
                   step_gen st tup;
                   `Slow st
                 end
               in
               VH.add table k (ref cell);
               order := k :: !order)
           bit;
         List.rev_map
           (fun k ->
             match !(VH.find table k) with
             | `Fast acc ->
               Tuple.concat [| k |]
                 (Array.init naggs (fun j -> Value.Int (Array.unsafe_get acc j)))
             | `Slow st -> finish_group [| k |] (Array.to_list st))
           !order
       | None ->
         let table = VH.create 256 in
         Biter.iter_rows
           (fun tup ->
             let k = Array.unsafe_get tup ki in
             let cell =
               match VH.find_opt table k with
               | Some c -> c
               | None ->
                 let c = Array.of_list (init_states g.Physical.aggs) in
                 VH.add table k c;
                 order := k :: !order;
                 c
             in
             step_gen cell tup)
           bit;
         List.rev_map
           (fun k -> finish_group [| k |] (Array.to_list (VH.find table k)))
           !order)
    | _ ->
      let table = TH.create 256 in
      let order = ref [] in
      Biter.iter_rows
        (fun tup ->
          let k = Tuple.project_arr tup key_idx in
          let states =
            match TH.find_opt table k with
            | Some s -> s
            | None ->
              order := k :: !order;
              init_states g.Physical.aggs
          in
          TH.replace table k (step_states states fns tup))
        bit;
      List.rev_map (fun k -> finish_group k (TH.find table k)) !order
  in
  let result = Biter.of_rows out_schema (Array.of_list rows) in
  if g.Physical.having = [] then result
  else batch_filter (compile_batch_preds out_schema g.Physical.having) result

(* ==== morsel-driven parallel path (Physical.Exchange) ==== *)

and compile_segment ctx plan : segment =
  let cat = Exec_ctx.catalog ctx in
  match plan with
  | Physical.Seq_scan s ->
    let tbl = Catalog.table_exn cat s.table in
    let schema = Schema.rename_qualifier tbl.Catalog.tschema s.alias in
    let kernels =
      if s.filter = [] then [] else compile_batch_preds schema s.filter
    in
    let fn b =
      let b = List.fold_left (fun b k -> k b) b kernels in
      if Batch.is_empty b then None else Some b
    in
    { seg_heap = tbl.Catalog.heap; seg_scan_schema = schema;
      seg_schema = schema; seg_fn = fn }
  | Physical.Filter f ->
    let seg = compile_segment ctx f.input in
    let kernels = compile_batch_preds seg.seg_schema f.pred in
    let fn b =
      match seg.seg_fn b with
      | None -> None
      | Some b ->
        let b = List.fold_left (fun b k -> k b) b kernels in
        if Batch.is_empty b then None else Some b
    in
    { seg with seg_fn = fn }
  | Physical.Project p ->
    let seg = compile_segment ctx p.input in
    let fns =
      Array.of_list
        (List.map (fun (e, _) -> Expr.compile seg.seg_schema e) p.cols)
    in
    let out_schema = Schema.of_columns (List.map snd p.cols) in
    let project tup = Array.map (fun f -> f tup) fns in
    let fn b = Option.map (Batch.map out_schema project) (seg.seg_fn b) in
    { seg with seg_schema = out_schema; seg_fn = fn }
  | Physical.Hash_join j ->
    let build_plan, probe_plan =
      match j.build_side with
      | `Right -> (j.right, j.left)
      | `Left -> (j.left, j.right)
    in
    let nparts, build_inner =
      match build_plan with
      | Physical.Repartition r -> (Exchange.clamp_dop r.dop, r.input)
      | p -> (1, p)
    in
    let seg = compile_segment ctx probe_plan in
    (* The build side is evaluated once, serially, on the consuming domain
       (it may be an arbitrary plan). *)
    let build_bit = open_batch ctx build_inner in
    let build_schema = build_bit.Biter.schema in
    let build_rows = Biter.to_list build_bit in
    let build_pages =
      Page.pages_for ~rows:(List.length build_rows)
        ~row_bytes:(Schema.byte_width build_schema)
    in
    (* A spilling (grace) build has no parallel form with identical output
       order; the caller falls back to the serial plan. *)
    if build_pages > Exec_ctx.work_mem ctx then raise Unsupported_segment;
    let probe_schema = seg.seg_schema in
    let out_schema, emit, build_keys, probe_keys =
      match j.build_side with
      | `Right ->
        ( Schema.append probe_schema build_schema,
          (fun pt bt -> Tuple.concat pt bt),
          resolve_all build_schema (List.map snd j.keys),
          resolve_all probe_schema (List.map fst j.keys) )
      | `Left ->
        ( Schema.append build_schema probe_schema,
          (fun pt bt -> Tuple.concat bt pt),
          resolve_all build_schema (List.map fst j.keys),
          resolve_all probe_schema (List.map snd j.keys) )
    in
    let keep = compile_preds out_schema j.cond in
    let tables =
      if nparts = 1 then [| build_hash_table build_keys build_rows |]
      else begin
        (* Partitioned parallel build: a key's rows all hash to one
           partition and keep their input order there, so each slice's
           table reproduces the serial table's bucket lists exactly. *)
        let parts = Array.make nparts [] in
        List.iter
          (fun bt ->
            let p = part_hash nparts build_keys bt in
            parts.(p) <- bt :: parts.(p))
          build_rows;
        let parts = Array.map List.rev parts in
        let tabs = Array.map (fun _ -> TH.create 0) parts in
        let (_ : unit array * Exchange.wstats array) =
          Exchange.fold ~ctx ~dop:nparts ~n_morsels:nparts
            ~worker:(fun ~wid:_ ~stats:_ _wctx ~claim ->
              let rec loop () =
                match claim () with
                | None -> ()
                | Some p ->
                  tabs.(p) <- build_hash_table build_keys parts.(p);
                  loop ()
              in
              loop ())
            ()
        in
        tabs
      end
    in
    let lookup pt =
      let k = Tuple.project_arr pt probe_keys in
      let tbl =
        if nparts = 1 then tables.(0)
        else tables.((Tuple_key.hash k land max_int) mod nparts)
      in
      match TH.find_opt tbl k with None -> [] | Some bts -> bts
    in
    let fn b =
      match seg.seg_fn b with
      | None -> None
      | Some pb ->
        let out = ref [] in
        let n = ref 0 in
        Batch.iter
          (fun pt ->
            List.iter
              (fun bt ->
                let o = emit pt bt in
                if keep o then begin
                  out := o :: !out;
                  incr n
                end)
              (lookup pt))
          pb;
        if !n = 0 then None
        else begin
          let arr = Array.make !n [||] in
          List.iteri (fun i t -> arr.(!n - 1 - i) <- t) !out;
          Some (Batch.of_rows out_schema arr)
        end
    in
    { seg with seg_schema = out_schema; seg_fn = fn }
  | _ -> raise Unsupported_segment

(* Exchange as a streaming operator: workers run the segment morsel-wise,
   the consumer resequences.  Unsupported segments degrade to the serial
   plan (the exchange becomes a pass-through), keeping results correct for
   any plan shape the rewrite or the plan cache may hand us. *)
and open_exchange ctx ~dop input : Biter.t =
  if not (Exchange.segment_ok input) then open_batch ctx input
  else
    match compile_segment ctx input with
    | exception Unsupported_segment -> open_batch ctx input
    | seg ->
      let npages, ppb, n_morsels = morsel_geometry seg.seg_heap in
      let morsel ~wid:_ _wctx m =
        let p0 = m * ppb in
        let np = min ppb (npages - p0) in
        let rows, lo, len =
          Heap_file.scan_segment seg.seg_heap ~page:p0 ~npages:np
        in
        seg.seg_fn (Batch.of_segment seg.seg_scan_schema rows ~lo ~len)
      in
      let on_done = worker_profile_nodes ctx ~dop in
      Exchange.gather ~ctx ~dop ~schema:seg.seg_schema ~n_morsels ~morsel
        ?on_done ()

(* Hash group over an exchange: each worker folds its morsels into a
   private partial-aggregate table; the consumer merges the partials with
   [Aggregate.merge] (the same partial algebra the matview extents use)
   and orders groups by their first appearance in the serial stream, so
   output is byte-identical to the serial operator. *)
and open_parallel_group ctx (g : Physical.group) ~dop input : Biter.t =
  let cat = Exec_ctx.catalog ctx in
  let seg = compile_segment ctx input in
  let in_schema = seg.seg_schema in
  let out_schema = Physical.schema cat (Physical.Hash_group g) in
  let key_idx = resolve_all in_schema g.Physical.keys in
  let fns = agg_arg_fns in_schema g.Physical.aggs in
  let npages, ppb, n_morsels = morsel_geometry seg.seg_heap in
  (* The exchange is fused into this operator, but observability should
     still show it: mirror it as a profile child with per-worker nodes. *)
  let xnode, on_done =
    match Exec_ctx.profiler ctx with
    | None -> (None, None)
    | Some prof ->
      let xn =
        Profile.enter prof (Physical.op_name (Physical.Exchange { input; dop }))
      in
      let fill = worker_profile_nodes ctx ~dop in
      Profile.leave prof;
      (Some xn, fill)
  in
  let scan_morsel m =
    let p0 = m * ppb in
    let np = min ppb (npages - p0) in
    let rows, lo, len = Heap_file.scan_segment seg.seg_heap ~page:p0 ~npages:np in
    seg.seg_fn (Batch.of_segment seg.seg_scan_schema rows ~lo ~len)
  in
  (* Worker partial tables record, per group, the aggregate partial plus
     the group's first (morsel, row position) — the row's rank in the
     serial stream — so ordering merged groups by the minimum (m, pos)
     reproduces the serial first-seen output order. *)
  let rows, wstats =
    match key_idx, int_agg_plan in_schema g.Physical.aggs with
    | [| ki |], Some ia ->
      (* Unboxed fast path, mirroring the serial single-int-key kernel:
         each group's partial is a plain [int array] until a mis-typed row
         upgrades it to generic states; partials merge by elementwise
         addition (or [Aggregate.merge] once upgraded). *)
      let fns_arr = Array.of_list fns in
      let naggs = Array.length fns_arr in
      let step_gen st tup =
        for j = 0 to naggs - 1 do
          Array.unsafe_set st j
            (Aggregate.step (Array.unsafe_get st j)
               ((Array.unsafe_get fns_arr j) tup))
        done
      in
      let worker ~wid:_ ~stats:(ws : Exchange.wstats) _wctx ~claim =
        let table = VH.create 256 in
        let rec loop () =
          match claim () with
          | None -> ()
          | Some m ->
            (match scan_morsel m with
             | None -> ()
             | Some b ->
               let pos = ref 0 in
               Batch.iter
                 (fun tup ->
                   let k = Array.unsafe_get tup ki in
                   (match VH.find_opt table k with
                    | Some (cell, _, _) -> (
                      match !cell with
                      | `Fast acc ->
                        if int_row_fits ia tup then int_apply ia acc tup
                        else begin
                          let st = int_upgrade ia g.Physical.aggs acc in
                          step_gen st tup;
                          cell := `Slow st
                        end
                      | `Slow st -> step_gen st tup)
                    | None ->
                      let cell =
                        if int_row_fits ia tup then begin
                          let acc = Array.make naggs 0 in
                          int_apply ia acc tup;
                          `Fast acc
                        end
                        else begin
                          let st = Array.of_list (init_states g.Physical.aggs) in
                          step_gen st tup;
                          `Slow st
                        end
                      in
                      VH.add table k (ref cell, m, !pos));
                   incr pos;
                   ws.Exchange.wrows <- ws.Exchange.wrows + 1)
                 b;
               ws.Exchange.wbatches <- ws.Exchange.wbatches + 1);
            loop ()
        in
        loop ();
        table
      in
      let tables, wstats =
        Exchange.fold ~ctx ~dop ~n_morsels ~worker ?on_done ()
      in
      let to_states = function
        | `Fast acc -> int_upgrade ia g.Physical.aggs acc
        | `Slow st -> st
      in
      let merged = VH.create 256 in
      Array.iter
        (fun t ->
          VH.iter
            (fun k (cell, m, p) ->
              match VH.find_opt merged k with
              | None -> VH.replace merged k (!cell, m, p)
              | Some (c0, m0, p0) ->
                (* Earlier-stream partial first, like the serial fold. *)
                let a, b, fm, fp =
                  if (m0, p0) <= (m, p) then (c0, !cell, m0, p0)
                  else (!cell, c0, m, p)
                in
                let c =
                  match a, b with
                  | `Fast x, `Fast y ->
                    `Fast (Array.init naggs (fun j -> x.(j) + y.(j)))
                  | _ ->
                    let sa = to_states a and sb = to_states b in
                    `Slow (Array.init naggs (fun j ->
                               Aggregate.merge sa.(j) sb.(j)))
                in
                VH.replace merged k (c, fm, fp))
            t)
        tables;
      let entries =
        List.sort
          (fun (_, _, m1, p1) (_, _, m2, p2) -> compare (m1, p1) (m2, p2))
          (VH.fold (fun k (c, m, p) acc -> (k, c, m, p) :: acc) merged [])
      in
      let rows =
        Array.of_list
          (List.map
             (fun (k, c, _, _) ->
               match c with
               | `Fast acc ->
                 Tuple.concat [| k |]
                   (Array.init naggs (fun j -> Value.Int acc.(j)))
               | `Slow st -> finish_group [| k |] (Array.to_list st))
             entries)
      in
      (rows, wstats)
    | _ ->
      let worker ~wid:_ ~stats:(ws : Exchange.wstats) _wctx ~claim =
        let table : (Aggregate.state list ref * int * int) TH.t =
          TH.create 256
        in
        let rec loop () =
          match claim () with
          | None -> ()
          | Some m ->
            (match scan_morsel m with
             | None -> ()
             | Some b ->
               let pos = ref 0 in
               Batch.iter
                 (fun tup ->
                   let k = Tuple.project_arr tup key_idx in
                   (match TH.find_opt table k with
                    | Some (states, _, _) ->
                      states := step_states !states fns tup
                    | None ->
                      TH.add table k
                        ( ref (step_states (init_states g.Physical.aggs) fns tup),
                          m, !pos ));
                   incr pos;
                   ws.Exchange.wrows <- ws.Exchange.wrows + 1)
                 b;
               ws.Exchange.wbatches <- ws.Exchange.wbatches + 1);
            loop ()
        in
        loop ();
        table
      in
      let tables, wstats =
        Exchange.fold ~ctx ~dop ~n_morsels ~worker ?on_done ()
      in
      let merged : (Aggregate.state list * int * int) TH.t = TH.create 256 in
      Array.iter
        (fun t ->
          TH.iter
            (fun k (states, m, p) ->
              match TH.find_opt merged k with
              | None -> TH.replace merged k (!states, m, p)
              | Some (states0, m0, p0) ->
                (* Merge earlier-stream partial first, so any
                   order-sensitive tie in [Aggregate.merge] resolves like
                   the serial fold. *)
                let a, b, fm, fp =
                  if (m0, p0) <= (m, p) then (states0, !states, m0, p0)
                  else (!states, states0, m, p)
                in
                TH.replace merged k (List.map2 Aggregate.merge a b, fm, fp))
            t)
        tables;
      let entries =
        List.sort
          (fun (_, _, m1, p1) (_, _, m2, p2) -> compare (m1, p1) (m2, p2))
          (TH.fold (fun k (states, m, p) acc -> (k, states, m, p) :: acc)
             merged [])
      in
      let rows =
        Array.of_list
          (List.map (fun (k, states, _, _) -> finish_group k states) entries)
      in
      (rows, wstats)
  in
  (match xnode with
   | Some xn ->
     Array.iter
       (fun (ws : Exchange.wstats) ->
         xn.Profile.rows_out <- xn.Profile.rows_out + ws.Exchange.wrows;
         xn.Profile.batches <- xn.Profile.batches + ws.Exchange.wbatches;
         xn.Profile.ms <- Float.max xn.Profile.ms ws.Exchange.wms;
         xn.Profile.reads <- xn.Profile.reads + ws.Exchange.wio.Buffer_pool.reads;
         xn.Profile.writes <- xn.Profile.writes + ws.Exchange.wio.Buffer_pool.writes;
         xn.Profile.hits <- xn.Profile.hits + ws.Exchange.wio.Buffer_pool.hits)
       wstats
   | None -> ());
  let result = Biter.of_rows out_schema rows in
  if g.Physical.having = [] then result
  else batch_filter (compile_batch_preds out_schema g.Physical.having) result

let run ?(executor = `Batch) ctx plan =
  (* Temps must be released even when an operator raises mid-pipeline
     (e.g. a type error in [Expr.eval]); otherwise spilled sort runs and
     join partitions leak on every failed query. *)
  Fun.protect
    ~finally:(fun () -> Exec_ctx.cleanup ctx)
    (fun () ->
      if Exec_ctx.guarded ctx then Exec_ctx.check ctx;
      match executor with
      | `Row -> Iter.to_relation (open_iter ctx plan)
      | `Batch -> Biter.to_relation (open_batch ctx plan))

let run_measured ?(cold = true) ?executor ctx plan =
  let st = Exec_ctx.storage ctx in
  if cold then begin
    (* Cold benchmark path (single-threaded by contract): empty the pool and
       zero the global counters so [Storage.io_stats] reads as one run. *)
    Buffer_pool.clear (Storage.pool st);
    Storage.reset_io st
  end;
  (* Measurement itself is delta-based on the calling domain's own tally:
     warm-path runs ([~cold:false], e.g. [Service.execute]) never reset
     shared counters, so overlapping measurements on concurrent workers
     cannot misattribute each other's IO. *)
  let before = Storage.io_snapshot st in
  let rel = run ?executor ctx plan in
  (rel, Storage.io_since st before)

let run_profiled_result ?(cold = false) ?executor ctx plan =
  let prof = Profile.create () in
  Exec_ctx.set_profiler ctx (Some prof);
  Fun.protect
    ~finally:(fun () -> Exec_ctx.set_profiler ctx None)
    (fun () ->
      match run_measured ~cold ?executor ctx plan with
      | rel, io -> Ok (rel, io, prof)
      | exception e ->
        (* Keep the partial per-operator stats: a timed-out or cancelled
           statement's profile shows where the time went before it died. *)
        Profile.set_error prof (Printexc.to_string e);
        Error (e, prof))

let run_profiled ?executor ctx plan =
  match run_profiled_result ~cold:false ?executor ctx plan with
  | Ok (rel, _io, prof) -> (rel, prof)
  | Error (e, _prof) -> raise e
