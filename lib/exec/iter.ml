type t = {
  schema : Schema.t;
  next : unit -> Tuple.t option;
  close : unit -> unit;
}

let of_seq schema seq =
  let state = ref seq in
  let next () =
    match !state () with
    | Seq.Nil -> None
    | Seq.Cons (x, rest) ->
      state := rest;
      Some x
  in
  { schema; next; close = (fun () -> state := Seq.empty) }

let of_list schema l = of_seq schema (List.to_seq l)
let empty schema = of_list schema []

let map schema f it =
  { schema; next = (fun () -> Option.map f (it.next ())); close = it.close }

let filter p it =
  let rec next () =
    match it.next () with
    | None -> None
    | Some tup -> if p tup then Some tup else next ()
  in
  { it with next }

let concat_map_tuples schema f it =
  let pending = ref [] in
  let rec next () =
    match !pending with
    | x :: rest ->
      pending := rest;
      Some x
    | [] -> (
      match it.next () with
      | None -> None
      | Some tup ->
        pending := f tup;
        next ())
  in
  { schema; next; close = it.close }

let once close =
  let closed = ref false in
  fun () ->
    if not !closed then begin
      closed := true;
      close ()
    end

let to_list it =
  let rec loop acc =
    match it.next () with None -> List.rev acc | Some x -> loop (x :: acc)
  in
  (* Close on the error path too; [once] tolerates eager operator closes. *)
  Fun.protect ~finally:(once it.close) (fun () -> loop [])

let to_relation it =
  let schema = it.schema in
  Relation.create schema (to_list it)

let iter f it =
  let rec loop () =
    match it.next () with
    | None -> ()
    | Some x ->
      f x;
      loop ()
  in
  Fun.protect ~finally:(once it.close) loop
