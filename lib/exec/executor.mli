(** The executor: evaluates physical plans over the paged storage engine,
    charging every page touch to the buffer pool.

    Two engines share the plan language.  The row engine is the classic
    volcano pull interpreter ({!open_iter}).  The batch engine
    ({!open_batch}) moves {!Batch.t} row batches with selection vectors and
    is the default for {!run}: scans fill batches a page at a time, filters
    mark rows in a selection vector instead of copying, projections and
    joins run compiled loops over batches.  Operators without a batch-native
    implementation (BNL / index-NL / merge joins, sort-group) fall back to
    the row engine through the {!Biter.of_iter} adapter, subtree-at-a-time,
    so both engines touch pages in the same order and report identical IO. *)

type engine = [ `Row | `Batch ]

val open_iter : Exec_ctx.t -> Physical.t -> Iter.t
(** Open a plan as a row-at-a-time pull iterator.  The caller must drain or
    close it; temp files are released on close / {!Exec_ctx.cleanup}. *)

val open_batch : Exec_ctx.t -> Physical.t -> Biter.t
(** Open a plan as a batch-at-a-time iterator. *)

val run : ?executor:engine -> Exec_ctx.t -> Physical.t -> Relation.t
(** Evaluate to a materialized (in-memory) result and clean up temps.
    Temps are released even if an operator raises (exception-safe).
    Default engine: [`Batch]. *)

val run_measured :
  ?cold:bool -> ?executor:engine -> Exec_ctx.t -> Physical.t ->
  Relation.t * Buffer_pool.stats
(** Like {!run} but also returns the page IO the run incurred, measured as
    the delta of the calling domain's own IO tally — no shared counter is
    reset on the warm path, so concurrent measurements on different worker
    domains cannot clobber each other.  [cold] (default true) additionally
    empties the buffer pool and zeroes the global counters first (cold-cache
    benchmarking; single-threaded by contract). *)

val run_profiled :
  ?executor:engine -> Exec_ctx.t -> Physical.t -> Relation.t * Profile.t
(** Like {!run} but additionally collects per-operator counters (rows
    in/out, batches, wall time, page IO) for every plan node. *)

val run_profiled_result :
  ?cold:bool ->
  ?executor:engine ->
  Exec_ctx.t ->
  Physical.t ->
  (Relation.t * Buffer_pool.stats * Profile.t, exn * Profile.t) result
(** {!run_measured} + {!run_profiled} with error-tolerant profiling: on
    failure (timeout, cancellation, fault, quota) the partial profile —
    counters up to the point of death, marked via {!Profile.error} — is
    returned alongside the exception instead of being dropped.  [cold]
    defaults to [false] (warm path). *)
