type config = {
  algorithm : Optimizer.algorithm;
  work_mem : int;
  paper : Paper_opt.options;
  max_entries : int;
  max_bytes : int;
  recost_ratio : float;
  cache_enabled : bool;
  executor : Executor.engine;
  statement_timeout_ms : float option;
  spill_quota_pages : int option;
}

let default_config =
  {
    algorithm = Optimizer.Paper;
    work_mem = 32;
    paper = Paper_opt.default_options;
    max_entries = 128;
    max_bytes = 4 * 1024 * 1024;
    recost_ratio = 10.0;
    cache_enabled = true;
    executor = `Batch;
    statement_timeout_ms = None;
    spill_quota_pages = None;
  }

(* Shared across every session and worker of one service: the cache sits
   behind [lock] (find→optimize→add is atomic, so a template is optimized
   once per (fingerprint, algo, work_mem) no matter how many workers race
   on it); the counters are atomics, readable without the lock. *)
type t = {
  cat : Catalog.t;
  cfg : config;
  cache : Plan_cache.t;
  lock : Sync.t;
  calls : Sync.Counter.t;
  hits : Sync.Counter.t;
  rebinds : Sync.Counter.t;
  misses : Sync.Counter.t;
  recost_fallbacks : Sync.Counter.t;
  rebind_conflicts : Sync.Counter.t;
  stale_hits : Sync.Counter.t;
  opt_ms_total : Sync.Fsum.t;
  opt_ms_saved : Sync.Fsum.t;
  (* Typed-error tally, one counter per {!Avq_error} kind (see [err_slot]).
     Bumped by [execute_on] when a statement fails with a typed error; a
     failed statement still counts one [calls], so
     hits + rebinds + misses + recost_fallbacks + rebind_conflicts +
     uncached = calls holds with or without failures (errors strike during
     execution, after the planning source was decided). *)
  errs : Sync.Counter.t array;
}

let create ?(config = default_config) cat =
  if config.recost_ratio < 1.0 then
    invalid_arg "Service.create: recost_ratio < 1.0";
  {
    cat;
    cfg = config;
    cache =
      Plan_cache.create ~max_entries:config.max_entries
        ~max_bytes:config.max_bytes ();
    lock = Sync.create ();
    calls = Sync.Counter.create ();
    hits = Sync.Counter.create ();
    rebinds = Sync.Counter.create ();
    misses = Sync.Counter.create ();
    recost_fallbacks = Sync.Counter.create ();
    rebind_conflicts = Sync.Counter.create ();
    stale_hits = Sync.Counter.create ();
    opt_ms_total = Sync.Fsum.create ();
    opt_ms_saved = Sync.Fsum.create ();
    errs = Array.init 6 (fun _ -> Sync.Counter.create ());
  }

let err_slot : Avq_error.t -> int = function
  | Avq_error.Io_fault _ -> 0
  | Avq_error.Corruption _ -> 1
  | Avq_error.Resource_exceeded _ -> 2
  | Avq_error.Timeout _ -> 3
  | Avq_error.Cancelled -> 4
  | Avq_error.Bad_statement _ -> 5

let record_error t e = Sync.Counter.incr t.errs.(err_slot e)

let catalog t = t.cat
let config t = t.cfg

type stmt = {
  squery : Block.query;
  template : string;
  fp : Fingerprint.t;
  base_params : Value.t list;
}

let prepare_query _t query =
  let template = Canon.serialize query in
  {
    squery = query;
    template;
    fp = Fingerprint.of_string template;
    base_params = Canon.params query;
  }

let prepare t sql = prepare_query t (Binder.bind_sql t.cat sql)

let stmt_fingerprint s = Fingerprint.to_hex s.fp
let stmt_params s = s.base_params

type source =
  | Hit
  | Hit_rebound
  | Miss
  | Recost_fallback
  | Rebind_conflict
  | Uncached

let source_label = function
  | Hit -> "hit"
  | Hit_rebound -> "hit-rebound"
  | Miss -> "miss"
  | Recost_fallback -> "recost-fallback"
  | Rebind_conflict -> "rebind-conflict"
  | Uncached -> "uncached"

type planned = {
  plan : Physical.t;
  est : Cost_model.est;
  source : source;
  opt_ms : float;
  plan_ms : float;
}

let algo_tag = function
  | Optimizer.Traditional -> "trad"
  | Optimizer.Greedy_conservative -> "greedy"
  | Optimizer.Paper -> "paper"

let cache_key t stmt =
  Printf.sprintf "%s/%s/%d" (Fingerprint.to_hex stmt.fp) (algo_tag t.cfg.algorithm)
    t.cfg.work_mem

let options t =
  {
    Optimizer.default_options with
    algorithm = t.cfg.algorithm;
    work_mem = t.cfg.work_mem;
    paper = t.cfg.paper;
  }

let params_equal a b = List.for_all2 (fun x y -> Stdlib.compare x y = 0) a b

(* Bytes-ish footprint of a cache entry: dominated by the plan tree, which
   we approximate by its rendering, plus key, template and parameters. *)
let entry_bytes ~key ~template ~plan ~params =
  String.length (Physical.to_string plan)
  + String.length template + String.length key + (24 * List.length params) + 128

let optimize_and_cache t stmt ps query source =
  let r = Optimizer.optimize ~options:(options t) t.cat query in
  Sync.Fsum.add t.opt_ms_total r.Optimizer.time_ms;
  let key = cache_key t stmt in
  if t.cfg.cache_enabled then
    Plan_cache.add t.cache
      {
        Plan_cache.key;
        template = stmt.template;
        params = ps;
        plan = r.Optimizer.plan;
        est = r.Optimizer.est;
        search = r.Optimizer.search;
        opt_ms = r.Optimizer.time_ms;
        epoch = Catalog.epoch t.cat;
        bytes =
          entry_bytes ~key ~template:stmt.template ~plan:r.Optimizer.plan
            ~params:ps;
      };
  (r.Optimizer.plan, r.Optimizer.est, source, r.Optimizer.time_ms)

let plan ?params t stmt =
  let t0 = Unix.gettimeofday () in
  let ps = Option.value ~default:stmt.base_params params in
  if List.length ps <> List.length stmt.base_params then
    invalid_arg "Service.plan: wrong number of parameters";
  let same_params = params_equal ps stmt.base_params in
  let query = if same_params then stmt.squery else Canon.substitute stmt.squery ps in
  Sync.Counter.incr t.calls;
  (* One critical section per call.  Holding the lock across the optimizer
     run serializes misses, which is exactly the pay-once semantics we want:
     a second worker racing on the same key blocks, then finds the entry and
     hits.  Cache-hit sections are microseconds. *)
  let plan, est, source, opt_ms =
    Sync.protect t.lock (fun () ->
        if not t.cfg.cache_enabled then
          optimize_and_cache t stmt ps query Uncached
        else begin
          let epoch = Catalog.epoch t.cat in
          match Plan_cache.find t.cache (cache_key t stmt) ~epoch with
          | None ->
            Sync.Counter.incr t.misses;
            optimize_and_cache t stmt ps query Miss
          | Some entry
            when not (String.equal entry.Plan_cache.template stmt.template) ->
            (* 64-bit fingerprint collision: a different template landed on
               our key.  Treat as a miss (re-optimizing overwrites the
               entry); the colliding templates may thrash but can never
               serve each other's plans. *)
            Sync.Counter.incr t.misses;
            optimize_and_cache t stmt ps query Miss
          | Some entry ->
            if entry.Plan_cache.epoch <> epoch then begin
              (* unreachable: [find] filters stale epochs; belt and
                 suspenders so a stale plan can never be served silently. *)
              Sync.Counter.incr t.stale_hits;
              Sync.Counter.incr t.misses;
              optimize_and_cache t stmt ps query Miss
            end
            else if params_equal ps entry.Plan_cache.params then begin
              Sync.Counter.incr t.hits;
              Sync.Fsum.add t.opt_ms_saved entry.Plan_cache.opt_ms;
              (entry.Plan_cache.plan, entry.Plan_cache.est, Hit, 0.)
            end
            else begin
              match
                Plan_rebind.mapping ~old_params:entry.Plan_cache.params
                  ~new_params:ps
              with
              | None ->
                Sync.Counter.incr t.rebind_conflicts;
                optimize_and_cache t stmt ps query Rebind_conflict
              | Some pairs ->
                let plan' = Plan_rebind.rebind pairs entry.Plan_cache.plan in
                let est' =
                  Cost_model.estimate t.cat ~work_mem:t.cfg.work_mem plan'
                in
                if
                  est'.Cost_model.cost
                  <= (t.cfg.recost_ratio
                      *. entry.Plan_cache.est.Cost_model.cost)
                     +. 1e-6
                then begin
                  Sync.Counter.incr t.rebinds;
                  Sync.Fsum.add t.opt_ms_saved entry.Plan_cache.opt_ms;
                  (plan', est', Hit_rebound, 0.)
                end
                else begin
                  Sync.Counter.incr t.recost_fallbacks;
                  optimize_and_cache t stmt ps query Recost_fallback
                end
            end
        end)
  in
  { plan; est; source; opt_ms; plan_ms = (Unix.gettimeofday () -. t0) *. 1000. }

(* Plan under the shared lock, execute on the caller's own context —
   execution (the expensive part) runs outside any lock, and the IO
   measurement is the delta of the executing domain's tally. *)
let execute_on ctx ?cancel ?params t stmt =
  (* The deadline covers planning + execution; limits are (re)armed before
     planning so a statement submitted after its token was cancelled never
     runs at all (the executor's initial check fires). *)
  Exec_ctx.begin_statement ?timeout_ms:t.cfg.statement_timeout_ms
    ?spill_quota:t.cfg.spill_quota_pages ?cancel ctx;
  match
    let p = plan ?params t stmt in
    let rel, io =
      Executor.run_measured ~cold:false ~executor:t.cfg.executor ctx p.plan
    in
    (p, rel, io)
  with
  | r -> r
  | exception e ->
    (match Avq_error.of_exn e with
     | Some te -> record_error t te
     | None -> ());
    raise e

let execute ?params t stmt =
  let ctx = Exec_ctx.create ~work_mem:t.cfg.work_mem t.cat in
  execute_on ctx ?params t stmt

let submit t sql = execute t (prepare t sql)

type error_stats = {
  io_faults : int;
  corruptions : int;
  resource_exceeded : int;
  timeouts : int;
  cancellations : int;
  bad_statements : int;
}

let total_errors e =
  e.io_faults + e.corruptions + e.resource_exceeded + e.timeouts
  + e.cancellations + e.bad_statements

type stats = {
  calls : int;
  hits : int;
  rebinds : int;
  misses : int;
  recost_fallbacks : int;
  rebind_conflicts : int;
  stale_hits : int;
  invalidations : int;
  evictions : int;
  entries : int;
  cache_bytes : int;
  opt_ms_total : float;
  opt_ms_saved : float;
  errors : error_stats;
}

let stats t =
  let c = Sync.protect t.lock (fun () -> Plan_cache.counters t.cache) in
  {
    calls = Sync.Counter.get t.calls;
    hits = Sync.Counter.get t.hits;
    rebinds = Sync.Counter.get t.rebinds;
    misses = Sync.Counter.get t.misses;
    recost_fallbacks = Sync.Counter.get t.recost_fallbacks;
    rebind_conflicts = Sync.Counter.get t.rebind_conflicts;
    stale_hits = Sync.Counter.get t.stale_hits;
    invalidations = c.Plan_cache.invalidations;
    evictions = c.Plan_cache.evictions;
    entries = c.Plan_cache.entries;
    cache_bytes = c.Plan_cache.bytes;
    opt_ms_total = Sync.Fsum.get t.opt_ms_total;
    opt_ms_saved = Sync.Fsum.get t.opt_ms_saved;
    errors =
      (let g i = Sync.Counter.get t.errs.(i) in
       {
         io_faults = g 0;
         corruptions = g 1;
         resource_exceeded = g 2;
         timeouts = g 3;
         cancellations = g 4;
         bad_statements = g 5;
       });
  }

let hit_ratio s =
  if s.calls = 0 then 0.
  else float_of_int (s.hits + s.rebinds) /. float_of_int s.calls

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>plan cache: %d calls, %d hits + %d rebinds (ratio %.2f), %d misses@,\
     fallbacks: %d recost, %d rebind-conflict; stale hits: %d@,\
     entries: %d (%d bytes), evictions: %d, invalidations: %d@,\
     optimizer ms: %.1f spent, %.1f saved@,\
     errors: %d (%d io-fault, %d corruption, %d resource, %d timeout, \
     %d cancelled, %d bad-statement)@]"
    s.calls s.hits s.rebinds (hit_ratio s) s.misses s.recost_fallbacks
    s.rebind_conflicts s.stale_hits s.entries s.cache_bytes s.evictions
    s.invalidations s.opt_ms_total s.opt_ms_saved (total_errors s.errors)
    s.errors.io_faults s.errors.corruptions s.errors.resource_exceeded
    s.errors.timeouts s.errors.cancellations s.errors.bad_statements

let invalidate_all t = Sync.protect t.lock (fun () -> Plan_cache.clear t.cache)

(* ==== concurrent worker pool ==== *)

module Pool = struct
  type service = t

  (* As in [Sync]: [Mutex.protect] would bump the lower bound to 5.1. *)
  let protect m f =
    Mutex.lock m;
    match f () with
    | v ->
      Mutex.unlock m;
      v
    | exception e ->
      Mutex.unlock m;
      raise e

  type outcome = (planned * Relation.t * Buffer_pool.stats, exn) result

  type future = {
    fm : Mutex.t;
    fc : Condition.t;
    mutable result : outcome option;
    fcancel : bool Atomic.t;
        (* shared with the executing worker's statement; setting it makes
           the job resolve to [Error (Avq_error.Error Cancelled)] at its
           next batch boundary (or immediately, if not yet started) *)
  }

  type task =
    | Stmt of stmt * Value.t list option
    | Sql of string

  type job = { task : task; fut : future }

  type t = {
    svc : service;
    qm : Mutex.t;
    qc : Condition.t;
    jobs : job Queue.t;
    mutable stopping : bool;
    mutable domains : unit Domain.t list;
    nworkers : int;
    executed : Sync.Counter.t;
  }

  let fulfil fut outcome =
    protect fut.fm (fun () ->
        fut.result <- Some outcome;
        Condition.broadcast fut.fc)

  let run_task svc ctx cancel = function
    | Stmt (stmt, params) -> execute_on ctx ~cancel ?params svc stmt
    | Sql sql ->
      (* Parse/bind failures become typed [Bad_statement] so session batches
         report them structurally and keep going; planner/executor bugs
         (other exceptions) still propagate untyped through the future. *)
      let bad m =
        let e = Avq_error.Bad_statement m in
        record_error svc e;
        Avq_error.error e
      in
      let stmt =
        try prepare svc sql with
        | Binder.Bind_error msg -> bad ("bind: " ^ msg)
        | Parser.Parse_error (msg, off) ->
          bad (Printf.sprintf "parse at %d: %s" off msg)
        | Lexer.Lex_error (msg, off) ->
          bad (Printf.sprintf "lex at %d: %s" off msg)
      in
      execute_on ctx ~cancel svc stmt

  (* Worker body: one private [Exec_ctx] for the domain's whole lifetime
     (temps are cleaned per run; the context is just the temp registry and
     work_mem).  Every exception — planner, binder or executor — lands in
     the job's future; the worker itself never dies early. *)
  let worker pool () =
    let ctx = Exec_ctx.create ~work_mem:pool.svc.cfg.work_mem pool.svc.cat in
    let rec loop () =
      let job =
        protect pool.qm (fun () ->
            let rec wait () =
              if not (Queue.is_empty pool.jobs) then Some (Queue.pop pool.jobs)
              else if pool.stopping then None
              else begin
                Condition.wait pool.qc pool.qm;
                wait ()
              end
            in
            wait ())
      in
      match job with
      | None -> ()
      | Some { task; fut } ->
        let outcome =
          match run_task pool.svc ctx fut.fcancel task with
          | r -> Ok r
          | exception e -> Error e
        in
        Sync.Counter.incr pool.executed;
        fulfil fut outcome;
        loop ()
    in
    loop ()

  let create ?(workers = 4) svc =
    if workers < 1 then invalid_arg "Service.Pool.create: workers < 1";
    let pool =
      {
        svc;
        qm = Mutex.create ();
        qc = Condition.create ();
        jobs = Queue.create ();
        stopping = false;
        domains = [];
        nworkers = workers;
        executed = Sync.Counter.create ();
      }
    in
    pool.domains <-
      List.init workers (fun _ -> Domain.spawn (worker pool));
    pool

  let workers t = t.nworkers
  let executed t = Sync.Counter.get t.executed
  let service t = t.svc

  let enqueue t task =
    let fut =
      {
        fm = Mutex.create ();
        fc = Condition.create ();
        result = None;
        fcancel = Atomic.make false;
      }
    in
    protect t.qm (fun () ->
        if t.stopping then
          invalid_arg "Service.Pool: submit after shutdown";
        Queue.push { task; fut } t.jobs;
        Condition.signal t.qc);
    fut

  let submit ?params t stmt = enqueue t (Stmt (stmt, params))
  let submit_sql t sql = enqueue t (Sql sql)

  (* Cooperative: the executing worker observes the token at its next batch
     boundary; a job still queued fails its initial check instead of
     starting.  Either way the worker survives and the future resolves. *)
  let cancel fut = Atomic.set fut.fcancel true

  let await fut =
    let outcome =
      protect fut.fm (fun () ->
          let rec wait () =
            match fut.result with
            | Some o -> o
            | None ->
              Condition.wait fut.fc fut.fm;
              wait ()
          in
          wait ())
    in
    match outcome with Ok r -> r | Error e -> raise e

  let shutdown t =
    let ds =
      protect t.qm (fun () ->
          if t.stopping then []
          else begin
            t.stopping <- true;
            Condition.broadcast t.qc;
            let ds = t.domains in
            t.domains <- [];
            ds
          end)
    in
    List.iter Domain.join ds

  let with_pool ?workers svc f =
    let pool = create ?workers svc in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
end
