type config = {
  algorithm : Optimizer.algorithm;
  work_mem : int;
  paper : Paper_opt.options;
  max_entries : int;
  max_bytes : int;
  recost_ratio : float;
  cache_enabled : bool;
  executor : Executor.engine;
  statement_timeout_ms : float option;
  spill_quota_pages : int option;
  dop : int;
}

let default_config =
  {
    algorithm = Optimizer.Paper;
    work_mem = 32;
    paper = Paper_opt.default_options;
    max_entries = 128;
    max_bytes = 4 * 1024 * 1024;
    recost_ratio = 10.0;
    cache_enabled = true;
    executor = `Batch;
    statement_timeout_ms = None;
    spill_quota_pages = None;
    dop = 1;
  }

(* Shared across every session and worker of one service: the cache sits
   behind [lock] (find→optimize→add is atomic, so a template is optimized
   once per (fingerprint, algo, work_mem) no matter how many workers race
   on it); the counters are atomics, readable without the lock. *)
type t = {
  cat : Catalog.t;
  cfg : config;
  cache : Plan_cache.t;
  mviews : Matview.t;
  lock : Sync.t;
  calls : Sync.Counter.t;
  hits : Sync.Counter.t;
  rebinds : Sync.Counter.t;
  misses : Sync.Counter.t;
  recost_fallbacks : Sync.Counter.t;
  rebind_conflicts : Sync.Counter.t;
  stale_hits : Sync.Counter.t;
  opt_ms_total : Sync.Fsum.t;
  opt_ms_saved : Sync.Fsum.t;
  (* Typed-error tally, one counter per {!Avq_error} kind (see [err_slot]).
     Bumped by [execute_on] when a statement fails with a typed error; a
     failed statement still counts one [calls], so
     hits + rebinds + misses + recost_fallbacks + rebind_conflicts +
     uncached = calls holds with or without failures (errors strike during
     execution, after the planning source was decided). *)
  errs : Sync.Counter.t array;
  (* Observability: the registry aggregates every counter family this
     service touches (buffer pool, plan cache, errors, statements, pool);
     the tracer, when set, receives one span tree per executed statement. *)
  metrics : Metrics.t;
  (* Per-fingerprint cumulative statement statistics (always on): every
     statement path — execute_on, exec_statement, explain_analyze — records
     exactly one observation per [statements] increment, so the sum of
     [Stats] calls tracks [avq_statements_total] while nothing is evicted. *)
  stats : Stmt_stats.t;
  mutable tracer : Trace.tracer option;
  statements : Metrics.Counter.t;
  stmt_ms : Metrics.Histogram.t;
  stmt_io : Metrics.Histogram.t;
  (* Durability: when a WAL is attached every mutating statement appends its
     record (and fsyncs per the writer's mode) BEFORE touching the catalog,
     and seals it with a commit record after — so recovery replays exactly
     the acknowledged statements.  All WAL state is guarded by [lock], like
     the catalog it journals. *)
  mutable wal : Wal.writer option;
  mutable wal_dir : string option;
  mutable wal_checkpoint_bytes : int option;
  mutable checkpoints_done : int;
}

let n_err_kinds = 7

let err_slot : Avq_error.t -> int = function
  | Avq_error.Io_fault _ -> 0
  | Avq_error.Corruption _ -> 1
  | Avq_error.Resource_exceeded _ -> 2
  | Avq_error.Timeout _ -> 3
  | Avq_error.Cancelled -> 4
  | Avq_error.Bad_statement _ -> 5
  | Avq_error.Unavailable _ -> 6

let err_kind_label = function
  | 0 -> "io_fault"
  | 1 -> "corruption"
  | 2 -> "resource_exceeded"
  | 3 -> "timeout"
  | 4 -> "cancelled"
  | 5 -> "bad_statement"
  | _ -> "unavailable"

let record_error t e = Sync.Counter.incr t.errs.(err_slot e)

(* Expose every pre-existing counter family through the registry as
   sampled-at-export instruments, so the exports unify state that keeps
   living where it is cheap to update (storage atomics, cache counters
   behind the service lock). *)
let register_metrics t =
  let m = t.metrics in
  let st = Catalog.storage t.cat in
  let fi f = fun () -> float_of_int (f ()) in
  Metrics.fn_counter m "avq_bufferpool_reads_total"
    ~help:"Physical page reads (buffer-pool misses)"
    (fi (fun () -> (Storage.io_stats st).Buffer_pool.reads));
  Metrics.fn_counter m "avq_bufferpool_writes_total"
    ~help:"Physical page writes (dirty evictions + flushes)"
    (fi (fun () -> (Storage.io_stats st).Buffer_pool.writes));
  Metrics.fn_counter m "avq_bufferpool_hits_total"
    ~help:"Page accesses served from the pool"
    (fi (fun () -> (Storage.io_stats st).Buffer_pool.hits));
  Metrics.gauge m "avq_storage_temps_live"
    ~help:"Temp heap files currently allocated"
    (fi (fun () -> Storage.live_temps st));
  Metrics.fn_counter m "avq_faults_injected_total"
    ~help:"Typed faults raised by the installed fault plan"
    (fi (fun () -> (Storage.Faults.stats st).Buffer_pool.injected));
  Metrics.fn_counter m "avq_faults_retried_total"
    ~help:"Retry attempts spent on faulted reads"
    (fi (fun () -> (Storage.Faults.stats st).Buffer_pool.retried));
  Metrics.fn_counter m "avq_faults_recovered_total"
    ~help:"Reads that succeeded after at least one retry"
    (fi (fun () -> (Storage.Faults.stats st).Buffer_pool.recovered));
  Metrics.fn_counter m "avq_faults_exhausted_total"
    ~help:"Reads that failed after the whole retry budget"
    (fi (fun () -> (Storage.Faults.stats st).Buffer_pool.exhausted));
  let c name help ctr =
    Metrics.fn_counter m name ~help (fi (fun () -> Sync.Counter.get ctr))
  in
  c "avq_plancache_calls_total" "Plan/execute requests" t.calls;
  c "avq_plancache_hits_total" "Cached plans served as-is" t.hits;
  c "avq_plancache_rebinds_total" "Cached templates re-bound and served"
    t.rebinds;
  c "avq_plancache_misses_total" "Optimizations with no usable entry" t.misses;
  c "avq_plancache_recost_fallbacks_total"
    "Re-bound plans rejected by the recost guard" t.recost_fallbacks;
  c "avq_plancache_rebind_conflicts_total" "Ambiguous re-bindings"
    t.rebind_conflicts;
  c "avq_plancache_stale_hits_total" "Plans served under a wrong epoch (must stay 0)"
    t.stale_hits;
  let cache_counters () = Sync.protect t.lock (fun () -> Plan_cache.counters t.cache) in
  Metrics.fn_counter m "avq_plancache_evictions_total"
    ~help:"Entries dropped to stay within capacity"
    (fi (fun () -> (cache_counters ()).Plan_cache.evictions));
  Metrics.fn_counter m "avq_plancache_invalidations_total"
    ~help:"Entries dropped for a stale epoch or by invalidate_all"
    (fi (fun () -> (cache_counters ()).Plan_cache.invalidations));
  Metrics.gauge m "avq_plancache_entries"
    ~help:"Current plan-cache population"
    (fi (fun () -> (cache_counters ()).Plan_cache.entries));
  Metrics.gauge m "avq_plancache_bytes"
    ~help:"Current plan-cache size (bytes-ish)"
    (fi (fun () -> (cache_counters ()).Plan_cache.bytes));
  let mc name help f =
    Metrics.fn_counter m name ~help
      (fi (fun () -> f (Matview.stats t.mviews)))
  in
  mc "avq_matview_rewrite_attempts_total"
    "Optimizations that considered at least one materialized view"
    (fun s -> s.Matview.attempts);
  mc "avq_matview_rewrite_hits_total"
    "Plans answered from a materialized view (cost-chosen)"
    (fun s -> s.Matview.hits);
  mc "avq_matview_rewrite_cost_rejections_total"
    "View rewrites discarded because the base plan was cheaper"
    (fun s -> s.Matview.cost_rejections);
  mc "avq_matview_rewrite_stale_skips_total"
    "Optimizations whose only matching views were stale"
    (fun s -> s.Matview.stale_skips);
  mc "avq_matview_maintenance_deltas_total"
    "Incremental maintenance batches folded into extents"
    (fun s -> s.Matview.deltas);
  mc "avq_matview_maintenance_rows_total"
    "Base rows absorbed by incremental maintenance"
    (fun s -> s.Matview.delta_rows);
  mc "avq_matview_refreshes_total" "Full REFRESH recomputations"
    (fun s -> s.Matview.refreshes);
  Metrics.gauge m "avq_matviews" ~help:"Live materialized views"
    (fi (fun () -> List.length (Matview.views t.mviews)));
  for i = 0 to Array.length t.errs - 1 do
    Metrics.fn_counter m "avq_errors_total"
      ~help:"Failed statements by typed-error kind"
      ~labels:[ ("kind", err_kind_label i) ]
      (fi (fun () -> Sync.Counter.get t.errs.(i)))
  done;
  Metrics.fn_counter m "avq_slow_statements_total"
    ~help:"Statements at or above the tracer's slow-ms threshold" (fun () ->
      match t.tracer with
      | Some tr -> float_of_int (Trace.slow_statements tr)
      | None -> 0.);
  Metrics.fn_counter m "avq_trace_spans_total"
    ~help:"Spans emitted by the statement tracer" (fun () ->
      match t.tracer with
      | Some tr -> float_of_int (Trace.spans_emitted tr)
      | None -> 0.);
  Stmt_stats.register_metrics t.stats m

let create ?(config = default_config) ?mviews cat =
  if config.recost_ratio < 1.0 then
    invalid_arg "Service.create: recost_ratio < 1.0";
  let metrics = Metrics.create () in
  let t =
    {
      cat;
      cfg = config;
      cache =
        Plan_cache.create ~max_entries:config.max_entries
          ~max_bytes:config.max_bytes ();
      mviews = (match mviews with Some m -> m | None -> Matview.create ());
      lock = Sync.create ();
      calls = Sync.Counter.create ();
      hits = Sync.Counter.create ();
      rebinds = Sync.Counter.create ();
      misses = Sync.Counter.create ();
      recost_fallbacks = Sync.Counter.create ();
      rebind_conflicts = Sync.Counter.create ();
      stale_hits = Sync.Counter.create ();
      opt_ms_total = Sync.Fsum.create ();
      opt_ms_saved = Sync.Fsum.create ();
      errs = Array.init n_err_kinds (fun _ -> Sync.Counter.create ());
      metrics;
      stats = Stmt_stats.create ();
      tracer = None;
      statements =
        Metrics.counter metrics "avq_statements_total"
          ~help:"Statements executed (successful or not)";
      stmt_ms =
        Metrics.histogram metrics "avq_statement_ms"
          ~help:"Successful statement latency, planning + execution (ms)"
          ~buckets:Metrics.Histogram.latency_ms_buckets;
      stmt_io =
        Metrics.histogram metrics "avq_statement_io_pages"
          ~help:"Page IO (reads + writes) per successful statement"
          ~buckets:Metrics.Histogram.io_pages_buckets;
      wal = None;
      wal_dir = None;
      wal_checkpoint_bytes = None;
      checkpoints_done = 0;
    }
  in
  register_metrics t;
  t

(* ---- durability ---- *)

let register_wal_metrics t w recovery =
  let m = t.metrics in
  let ws f = fun () -> float_of_int (f (Wal.stats w)) in
  Metrics.fn_counter m "avq_wal_records_total"
    ~help:"WAL records appended since attach" (ws (fun s -> s.Wal.records));
  Metrics.fn_counter m "avq_wal_commits_total"
    ~help:"Commit records appended (statements acknowledged durable)"
    (ws (fun s -> s.Wal.commits));
  Metrics.fn_counter m "avq_wal_fsyncs_total"
    ~help:"fsync calls issued by the WAL writer" (ws (fun s -> s.Wal.fsyncs));
  Metrics.fn_counter m "avq_wal_group_deferred_total"
    ~help:"Commits whose fsync was deferred to a group window"
    (ws (fun s -> s.Wal.deferred));
  Metrics.fn_counter m "avq_wal_truncations_total"
    ~help:"Post-checkpoint WAL truncations" (ws (fun s -> s.Wal.truncations));
  Metrics.gauge m "avq_wal_bytes" ~help:"Current WAL size on disk"
    (ws (fun s -> s.Wal.bytes));
  Metrics.fn_counter m "avq_checkpoints_total"
    ~help:"Checkpoints written (size-triggered, \\checkpoint, or drain)"
    (fun () -> float_of_int t.checkpoints_done);
  match recovery with
  | None -> ()
  | Some (r : Recovery.stats) ->
    let g name help v = Metrics.gauge m name ~help (fun () -> v) in
    g "avq_recovery_replayed" "Committed WAL records replayed at startup"
      (float_of_int r.Recovery.replayed);
    g "avq_recovery_skipped"
      "WAL records skipped at startup (checkpointed or uncommitted)"
      (float_of_int r.Recovery.skipped);
    g "avq_recovery_torn_tail" "1 if the WAL ended in a torn record"
      (if r.Recovery.torn then 1. else 0.);
    g "avq_recovery_tables_restored" "Tables restored from the checkpoint"
      (float_of_int r.Recovery.tables_restored);
    g "avq_recovery_matviews_restored"
      "Materialized views restored from the checkpoint"
      (float_of_int r.Recovery.matviews_restored);
    g "avq_recovery_duration_ms" "Startup recovery wall time"
      r.Recovery.duration_ms

let attach_wal t ~data_dir ?checkpoint_bytes ?recovery writer =
  t.wal <- Some writer;
  t.wal_dir <- Some data_dir;
  t.wal_checkpoint_bytes <- checkpoint_bytes;
  register_wal_metrics t writer recovery

let wal t = t.wal

let checkpoint_locked t =
  match t.wal, t.wal_dir with
  | Some w, Some dir ->
    ignore (Wal.append w Wal.Checkpoint_begin);
    Wal.flush w;
    let last = Wal.last_lsn w in
    let bytes = Checkpoint.write ~dir ~last_lsn:last t.cat t.mviews in
    ignore (Wal.append w (Wal.Checkpoint_end { ckpt_lsn = last }));
    Wal.truncate w;
    t.checkpoints_done <- t.checkpoints_done + 1;
    Printf.sprintf "CHECKPOINT (%d bytes, through lsn %Ld)" bytes last
  | _ -> "CHECKPOINT skipped: no data directory attached"

let checkpoint t = Sync.protect t.lock (fun () -> checkpoint_locked t)

(* Size-triggered checkpointing, checked after each committed mutation
   (lock already held). *)
let maybe_checkpoint_locked t =
  match t.wal, t.wal_checkpoint_bytes with
  | Some w, Some limit when Wal.size w >= limit ->
    ignore (checkpoint_locked t)
  | _ -> ()

let wal_append_locked t record =
  match t.wal with Some w -> Some (Wal.append w record) | None -> None

let wal_commit_locked t lsn_opt =
  match t.wal, lsn_opt with
  | Some w, Some lsn ->
    Wal.commit w lsn;
    maybe_checkpoint_locked t
  | _ -> ()

let catalog t = t.cat
let config t = t.cfg

(* Core-aware default dop: divide the cores the runtime recommends among
   the pool workers that will run statements concurrently, never below 1.
   One worker gets every core for its morsel pipeline; N workers share. *)
let auto_dop ~workers =
  let cores = Domain.recommended_domain_count () in
  max 1 (cores / max 1 workers)

(* Per-session overrides of the service-wide statement knobs ([None] =
   inherit the config).  Carried per call so one shared service (and one
   shared plan cache — dop and work_mem are part of the cache key) can
   serve sessions with different SET values. *)
type session_limits = {
  sl_timeout_ms : float option;
  sl_spill_quota : int option;
  sl_dop : int option;
  sl_work_mem : int option;
  sl_sid : int option;  (* server session id, for slow-log / stats joins *)
}

let no_limits =
  { sl_timeout_ms = None; sl_spill_quota = None; sl_dop = None;
    sl_work_mem = None; sl_sid = None }
let matviews t = t.mviews
let metrics t = t.metrics
let stats_store t = t.stats
let set_tracer t tr = t.tracer <- tr
let tracer t = t.tracer

type stmt = {
  squery : Block.query;
  template : string;
  fp : Fingerprint.t;
  base_params : Value.t list;
  parse_ms : float;  (* lex + parse + bind time (0 for prepare_query) *)
  canon_ms : float;  (* canonicalize + fingerprint time *)
}

let make_stmt ~parse_ms query =
  let t0 = Unix.gettimeofday () in
  let template = Canon.serialize query in
  let fp = Fingerprint.of_string template in
  {
    squery = query;
    template;
    fp;
    base_params = Canon.params query;
    parse_ms;
    canon_ms = (Unix.gettimeofday () -. t0) *. 1000.;
  }

let prepare_query _t query = make_stmt ~parse_ms:0. query

let prepare t sql =
  let t0 = Unix.gettimeofday () in
  (* Queries over the system views read a snapshot taken just before they
     are bound: re-materialize under the statement lock, then bind against
     the refreshed catalog.  The textual trigger over-approximates, which
     only costs an unneeded refresh. *)
  if Sysview.references_system_view sql then
    Sync.protect t.lock (fun () ->
        Sysview.refresh t.cat ~stats:t.stats ~mviews:t.mviews);
  let query = Binder.bind_sql t.cat sql in
  let parse_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  make_stmt ~parse_ms query

let stmt_fingerprint s = Fingerprint.to_hex s.fp
let stmt_params s = s.base_params

type source =
  | Hit
  | Hit_rebound
  | Miss
  | Recost_fallback
  | Rebind_conflict
  | Uncached

let source_label = function
  | Hit -> "hit"
  | Hit_rebound -> "hit-rebound"
  | Miss -> "miss"
  | Recost_fallback -> "recost-fallback"
  | Rebind_conflict -> "rebind-conflict"
  | Uncached -> "uncached"

type planned = {
  plan : Physical.t;
  est : Cost_model.est;
  source : source;
  opt_ms : float;
  plan_ms : float;
  search : Search_stats.t;
  rewrite : Matview.decision;
}

let algo_tag = function
  | Optimizer.Traditional -> "trad"
  | Optimizer.Greedy_conservative -> "greedy"
  | Optimizer.Paper -> "paper"

let cache_key ?work_mem ?dop t stmt =
  Printf.sprintf "%s/%s/%d/%d" (Fingerprint.to_hex stmt.fp)
    (algo_tag t.cfg.algorithm)
    (Option.value ~default:t.cfg.work_mem work_mem)
    (Option.value ~default:t.cfg.dop dop)

let options ?work_mem ?dop t =
  {
    Optimizer.default_options with
    algorithm = t.cfg.algorithm;
    work_mem = Option.value ~default:t.cfg.work_mem work_mem;
    paper = t.cfg.paper;
    dop = Option.value ~default:t.cfg.dop dop;
  }

let params_equal a b = List.for_all2 (fun x y -> Stdlib.compare x y = 0) a b

(* Bytes-ish footprint of a cache entry: dominated by the plan tree, which
   we approximate by its rendering, plus key, template and parameters. *)
let entry_bytes ~key ~template ~plan ~params =
  String.length (Physical.to_string plan)
  + String.length template + String.length key + (24 * List.length params) + 128

let optimize_and_cache ~work_mem ~dop t stmt ps query source =
  let r, decision =
    Matview.optimize ~options:(options ~work_mem ~dop t) t.cat t.mviews query
  in
  Sync.Fsum.add t.opt_ms_total r.Optimizer.time_ms;
  let key = cache_key ~work_mem ~dop t stmt in
  if t.cfg.cache_enabled then
    Plan_cache.add t.cache
      {
        Plan_cache.key;
        template = stmt.template;
        params = ps;
        plan = r.Optimizer.plan;
        est = r.Optimizer.est;
        search = r.Optimizer.search;
        opt_ms = r.Optimizer.time_ms;
        epoch = Catalog.epoch t.cat;
        mv = Matview.rewritten_view decision;
        bytes =
          entry_bytes ~key ~template:stmt.template ~plan:r.Optimizer.plan
            ~params:ps;
      };
  (r.Optimizer.plan, r.Optimizer.est, source, r.Optimizer.time_ms,
   r.Optimizer.search, decision)

let plan ?params ?(limits = no_limits) t stmt =
  let t0 = Unix.gettimeofday () in
  let work_mem = Option.value ~default:t.cfg.work_mem limits.sl_work_mem in
  let dop = Option.value ~default:t.cfg.dop limits.sl_dop in
  let optimize_and_cache = optimize_and_cache ~work_mem ~dop in
  let ps = Option.value ~default:stmt.base_params params in
  if List.length ps <> List.length stmt.base_params then
    invalid_arg "Service.plan: wrong number of parameters";
  let same_params = params_equal ps stmt.base_params in
  let query = if same_params then stmt.squery else Canon.substitute stmt.squery ps in
  Sync.Counter.incr t.calls;
  (* One critical section per call.  Holding the lock across the optimizer
     run serializes misses, which is exactly the pay-once semantics we want:
     a second worker racing on the same key blocks, then finds the entry and
     hits.  Cache-hit sections are microseconds. *)
  let plan, est, source, opt_ms, search, rewrite =
    Sync.protect t.lock (fun () ->
        if not t.cfg.cache_enabled then
          optimize_and_cache t stmt ps query Uncached
        else begin
          let epoch = Catalog.epoch t.cat in
          match Plan_cache.find t.cache (cache_key ~work_mem ~dop t stmt) ~epoch with
          | None ->
            Sync.Counter.incr t.misses;
            optimize_and_cache t stmt ps query Miss
          | Some entry
            when not (String.equal entry.Plan_cache.template stmt.template) ->
            (* 64-bit fingerprint collision: a different template landed on
               our key.  Treat as a miss (re-optimizing overwrites the
               entry); the colliding templates may thrash but can never
               serve each other's plans. *)
            Sync.Counter.incr t.misses;
            optimize_and_cache t stmt ps query Miss
          | Some entry ->
            if entry.Plan_cache.epoch <> epoch then begin
              (* unreachable: [find] filters stale epochs; belt and
                 suspenders so a stale plan can never be served silently. *)
              Sync.Counter.incr t.stale_hits;
              Sync.Counter.incr t.misses;
              optimize_and_cache t stmt ps query Miss
            end
            else if params_equal ps entry.Plan_cache.params then begin
              Sync.Counter.incr t.hits;
              Sync.Fsum.add t.opt_ms_saved entry.Plan_cache.opt_ms;
              (entry.Plan_cache.plan, entry.Plan_cache.est, Hit, 0.,
               entry.Plan_cache.search,
               Matview.From_cache entry.Plan_cache.mv)
            end
            else if entry.Plan_cache.mv <> None then begin
              (* A view-rewritten plan folded the view's covered predicates
                 into the extent's contents; re-binding it to different
                 parameters would silently answer the wrong query.  Always
                 re-optimize for new parameters instead. *)
              Sync.Counter.incr t.misses;
              optimize_and_cache t stmt ps query Miss
            end
            else begin
              match
                Plan_rebind.mapping ~old_params:entry.Plan_cache.params
                  ~new_params:ps
              with
              | None ->
                Sync.Counter.incr t.rebind_conflicts;
                optimize_and_cache t stmt ps query Rebind_conflict
              | Some pairs ->
                let plan' = Plan_rebind.rebind pairs entry.Plan_cache.plan in
                let est' = Cost_model.estimate t.cat ~work_mem plan' in
                if
                  est'.Cost_model.cost
                  <= (t.cfg.recost_ratio
                      *. entry.Plan_cache.est.Cost_model.cost)
                     +. 1e-6
                then begin
                  Sync.Counter.incr t.rebinds;
                  Sync.Fsum.add t.opt_ms_saved entry.Plan_cache.opt_ms;
                  (plan', est', Hit_rebound, 0., entry.Plan_cache.search,
                   Matview.From_cache None)
                end
                else begin
                  Sync.Counter.incr t.recost_fallbacks;
                  optimize_and_cache t stmt ps query Recost_fallback
                end
            end
        end)
  in
  {
    plan;
    est;
    source;
    opt_ms;
    plan_ms = (Unix.gettimeofday () -. t0) *. 1000.;
    search;
    rewrite;
  }

(* Where did the group-by land relative to the joins?  The paper's central
   plan-shape decision, surfaced as a trace attr on every plan span. *)
let group_placement plan =
  let rec walk ~below_join acc p =
    let acc =
      match p with
      | Physical.Hash_group _ | Physical.Sort_group _ ->
        (if below_join then `Early else `Late) :: acc
      | _ -> acc
    in
    let below_join =
      below_join
      ||
      match p with
      | Physical.Block_nl_join _ | Physical.Index_nl_join _
      | Physical.Hash_join _ | Physical.Merge_join _ -> true
      | _ -> false
    in
    List.fold_left (walk ~below_join) acc (Physical.inputs p)
  in
  match walk ~below_join:false [] plan with
  | [] -> "none"
  | ps ->
    if List.mem `Early ps && List.mem `Late ps then "mixed"
    else if List.mem `Early ps then "early"
    else "late"

(* Rebuild per-operator spans from the profile tree.  [t0] is the execute
   span's start: operator timing is measured by the profiler, not the
   tracer, so these are synthetic spans anchored at the execute start. *)
let rec emit_op_spans tr ~trace_id ~parent ~t0 node =
  let sid =
    Trace.emit tr ~trace_id ~parent ~t0 ~dur_ms:(Profile.total_ms node)
      ("op:" ^ node.Profile.pname)
      [
        ("rows_out", Trace.I node.Profile.rows_out);
        ("batches", Trace.I node.Profile.batches);
        ("reads", Trace.I (Profile.total_reads node));
        ("writes", Trace.I (Profile.total_writes node));
        ("hits", Trace.I (Profile.total_hits node));
        ("open_ms", Trace.F node.Profile.open_ms);
      ]
  in
  List.iter (emit_op_spans tr ~trace_id ~parent:sid ~t0) (Profile.children node)

let plan_span_attrs t p =
  [
    ("source", Trace.S (source_label p.source));
    ("algorithm", Trace.S (algo_tag t.cfg.algorithm));
    ("opt_ms", Trace.F p.opt_ms);
    ("est_rows", Trace.F p.est.Cost_model.rows);
    ("est_io", Trace.F p.est.Cost_model.cost);
    ("join_plans", Trace.I p.search.Search_stats.join_plans);
    ("group_plans", Trace.I p.search.Search_stats.group_plans);
    ("dp_entries", Trace.I p.search.Search_stats.entries);
    ("pullups", Trace.I p.search.Search_stats.pullups);
    ("group_placement", Trace.S (group_placement p.plan));
  ]
  @ (match Matview.rewritten_view p.rewrite with
    | Some v -> [ ("matview", Trace.S v) ]
    | None -> [])

let observe_success t ~ms ~io =
  Metrics.Histogram.observe t.stmt_ms ms;
  Metrics.Histogram.observe t.stmt_io
    (float_of_int (io.Buffer_pool.reads + io.Buffer_pool.writes))

let execute_traced tr ctx ?params ?(limits = no_limits) t stmt =
  let trace_id = Trace.new_trace tr in
  let root = Trace.start tr ~trace_id "statement" in
  Trace.set_attr root "fingerprint" (Trace.S (Fingerprint.to_hex stmt.fp));
  let now = Unix.gettimeofday () in
  (* Prepare-time work, re-emitted per execution so every trace is
     self-contained; anchored at the statement start, not when the (possibly
     long-lived) statement was actually prepared. *)
  ignore
    (Trace.emit tr ~trace_id ~parent:(Trace.id root) ~t0:now
       ~dur_ms:stmt.parse_ms "parse" []);
  ignore
    (Trace.emit tr ~trace_id ~parent:(Trace.id root) ~t0:now
       ~dur_ms:stmt.canon_ms "canonicalize" []);
  match
    let p = plan ?params ~limits t stmt in
    ignore
      (Trace.emit tr ~trace_id ~parent:(Trace.id root)
         ~t0:(Unix.gettimeofday () -. (p.plan_ms /. 1000.))
         ~dur_ms:p.plan_ms "plan" (plan_span_attrs t p));
    (match p.rewrite with
     | Matview.No_views -> ()
     | d ->
       ignore
         (Trace.emit tr ~trace_id ~parent:(Trace.id root)
            ~t0:(Unix.gettimeofday ()) ~dur_ms:0. "view_rewrite"
            (("decision", Trace.S (Matview.decision_to_string d))
            :: (match Matview.rewritten_view d with
               | Some v -> [ ("view", Trace.S v) ]
               | None -> []))));
    let exec_t0 = Unix.gettimeofday () in
    let espan = Trace.start tr ~trace_id ~parent:(Trace.id root) "execute" in
    match
      Executor.run_profiled_result ~cold:false ~executor:t.cfg.executor ctx
        p.plan
    with
    | Ok (rel, io, prof) ->
      Trace.set_attr espan "rows" (Trace.I (Relation.cardinality rel));
      Trace.set_attr espan "reads" (Trace.I io.Buffer_pool.reads);
      Trace.set_attr espan "writes" (Trace.I io.Buffer_pool.writes);
      Trace.set_attr espan "hits" (Trace.I io.Buffer_pool.hits);
      let eid = Trace.id espan in
      let _edur = Trace.finish espan in
      List.iter
        (emit_op_spans tr ~trace_id ~parent:eid ~t0:exec_t0)
        (Profile.roots prof);
      (p, rel, io)
    | Error (e, prof) ->
      Trace.set_attr espan "partial" (Trace.B true);
      let eid = Trace.id espan in
      let _edur = Trace.finish ~status:"error" espan in
      List.iter
        (emit_op_spans tr ~trace_id ~parent:eid ~t0:exec_t0)
        (Profile.roots prof);
      raise e
  with
  | p, rel, io ->
    let dur = Trace.finish root in
    Trace.note_slow tr ~fingerprint:(Fingerprint.to_hex stmt.fp)
      ?sid:limits.sl_sid ~sql:stmt.template ~dur_ms:dur ~trace_id ();
    observe_success t ~ms:dur ~io;
    (p, rel, io)
  | exception e ->
    let dur = Trace.finish ~status:"error" root in
    Trace.note_slow tr ~fingerprint:(Fingerprint.to_hex stmt.fp)
      ?sid:limits.sl_sid ~sql:stmt.template ~dur_ms:dur ~trace_id ();
    raise e

(* Plan under the shared lock, execute on the caller's own context —
   execution (the expensive part) runs outside any lock, and the IO
   measurement is the delta of the executing domain's tally. *)
let execute_on ctx ?cancel ?params ?(limits = no_limits) t stmt =
  (* Session overrides take precedence over the service config; a work_mem
     override gets its own context (a context's budget is fixed at creation
     and shared with the cost model through the plan). *)
  let ctx =
    match limits.sl_work_mem with
    | Some wm when wm <> Exec_ctx.work_mem ctx ->
      Exec_ctx.create ~work_mem:wm t.cat
    | _ -> ctx
  in
  let timeout_ms =
    match limits.sl_timeout_ms with
    | Some _ as o -> o
    | None -> t.cfg.statement_timeout_ms
  in
  let spill_quota =
    match limits.sl_spill_quota with
    | Some _ as o -> o
    | None -> t.cfg.spill_quota_pages
  in
  (* The deadline covers planning + execution; limits are (re)armed before
     planning so a statement submitted after its token was cancelled never
     runs at all (the executor's initial check fires). *)
  Exec_ctx.begin_statement ?timeout_ms ?spill_quota ?cancel ctx;
  Metrics.Counter.incr t.statements;
  let t0 = Unix.gettimeofday () in
  let fp = Fingerprint.to_hex stmt.fp in
  let dop = Option.value ~default:t.cfg.dop limits.sl_dop in
  match
    match t.tracer with
    | Some tr -> execute_traced tr ctx ?params ~limits t stmt
    | None ->
      let p = plan ?params ~limits t stmt in
      let rel, io =
        Executor.run_measured ~cold:false ~executor:t.cfg.executor ctx p.plan
      in
      observe_success t ~ms:((Unix.gettimeofday () -. t0) *. 1000.) ~io;
      (p, rel, io)
  with
  | (p, rel, io) as r ->
    Stmt_stats.record t.stats ~fp ~query:stmt.template
      ~rows:(Relation.cardinality rel)
      ~pages:(io.Buffer_pool.reads + io.Buffer_pool.writes)
      ~spill_bytes:(Exec_ctx.spill_pages ctx * Page.size)
      ~cache_hit:(p.source = Hit)
      ~rebind:(p.source = Hit_rebound)
      ~mv_hit:(Matview.rewritten_view p.rewrite <> None)
      ~dop
      ~ms:((Unix.gettimeofday () -. t0) *. 1000.)
      ();
    r
  | exception e ->
    let error =
      match Avq_error.of_exn e with
      | Some te ->
        record_error t te;
        err_kind_label (err_slot te)
      | None -> "exception"
    in
    Stmt_stats.record t.stats ~fp ~query:stmt.template ~error
      ~spill_bytes:(Exec_ctx.spill_pages ctx * Page.size)
      ~dop
      ~ms:((Unix.gettimeofday () -. t0) *. 1000.)
      ();
    raise e

let execute ?params t stmt =
  let ctx = Exec_ctx.create ~work_mem:t.cfg.work_mem t.cat in
  execute_on ctx ?params t stmt

let submit t sql = execute t (prepare t sql)

(* EXPLAIN ANALYZE: plan through the cache like any statement, run under
   per-operator profiling, zip actuals onto the plan next to the model's
   estimates.  A failing run still produces the (partial) annotated tree. *)
let explain_analyze ?params t stmt =
  let ctx = Exec_ctx.create ~work_mem:t.cfg.work_mem t.cat in
  Exec_ctx.begin_statement ?timeout_ms:t.cfg.statement_timeout_ms
    ?spill_quota:t.cfg.spill_quota_pages ctx;
  Metrics.Counter.incr t.statements;
  let fp = Fingerprint.to_hex stmt.fp in
  let p =
    try plan ?params t stmt
    with e ->
      let error =
        match Avq_error.of_exn e with
        | Some te ->
          record_error t te;
          err_kind_label (err_slot te)
        | None -> "exception"
      in
      Stmt_stats.record t.stats ~fp ~query:stmt.template ~error ~ms:0. ();
      raise e
  in
  let t0 = Unix.gettimeofday () in
  match
    Executor.run_profiled_result ~cold:false ~executor:t.cfg.executor ctx
      p.plan
  with
  | Ok (rel, io, prof) ->
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    observe_success t ~ms:(p.plan_ms +. wall_ms) ~io;
    Stmt_stats.record t.stats ~fp ~query:stmt.template
      ~rows:(Relation.cardinality rel)
      ~pages:(io.Buffer_pool.reads + io.Buffer_pool.writes)
      ~spill_bytes:(Exec_ctx.spill_pages ctx * Page.size)
      ~cache_hit:(p.source = Hit)
      ~rebind:(p.source = Hit_rebound)
      ~mv_hit:(Matview.rewritten_view p.rewrite <> None)
      ~ms:(p.plan_ms +. wall_ms) ();
    ( p,
      Ok rel,
      Explain_analyze.of_profile t.cat ~work_mem:t.cfg.work_mem p.plan ~io
        ~wall_ms prof )
  | Error (e, prof) ->
    let error =
      match Avq_error.of_exn e with
      | Some te ->
        record_error t te;
        err_kind_label (err_slot te)
      | None -> "exception"
    in
    let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
    Stmt_stats.record t.stats ~fp ~query:stmt.template ~error
      ~spill_bytes:(Exec_ctx.spill_pages ctx * Page.size)
      ~ms:(p.plan_ms +. wall_ms) ();
    let io = { Buffer_pool.reads = 0; writes = 0; hits = 0 } in
    ( p,
      Error e,
      Explain_analyze.of_profile t.cat ~work_mem:t.cfg.work_mem p.plan ~io
        ~wall_ms prof )

let pp_analysis t ppf (p, report) =
  Format.fprintf ppf
    "plan: source=%s algorithm=%s opt_ms=%.2f plan_ms=%.2f@\n\
     search: join_plans=%d group_plans=%d dp_entries=%d pullups=%d \
     group_placement=%s@\n\
     %a"
    (source_label p.source) (algo_tag t.cfg.algorithm) p.opt_ms p.plan_ms
    p.search.Search_stats.join_plans p.search.Search_stats.group_plans
    p.search.Search_stats.entries p.search.Search_stats.pullups
    (group_placement p.plan) Explain_analyze.pp report

type error_stats = {
  io_faults : int;
  corruptions : int;
  resource_exceeded : int;
  timeouts : int;
  cancellations : int;
  bad_statements : int;
  unavailable : int;
}

let total_errors e =
  e.io_faults + e.corruptions + e.resource_exceeded + e.timeouts
  + e.cancellations + e.bad_statements + e.unavailable

type stats = {
  calls : int;
  hits : int;
  rebinds : int;
  misses : int;
  recost_fallbacks : int;
  rebind_conflicts : int;
  stale_hits : int;
  invalidations : int;
  evictions : int;
  entries : int;
  cache_bytes : int;
  opt_ms_total : float;
  opt_ms_saved : float;
  errors : error_stats;
}

let stats t =
  let c = Sync.protect t.lock (fun () -> Plan_cache.counters t.cache) in
  {
    calls = Sync.Counter.get t.calls;
    hits = Sync.Counter.get t.hits;
    rebinds = Sync.Counter.get t.rebinds;
    misses = Sync.Counter.get t.misses;
    recost_fallbacks = Sync.Counter.get t.recost_fallbacks;
    rebind_conflicts = Sync.Counter.get t.rebind_conflicts;
    stale_hits = Sync.Counter.get t.stale_hits;
    invalidations = c.Plan_cache.invalidations;
    evictions = c.Plan_cache.evictions;
    entries = c.Plan_cache.entries;
    cache_bytes = c.Plan_cache.bytes;
    opt_ms_total = Sync.Fsum.get t.opt_ms_total;
    opt_ms_saved = Sync.Fsum.get t.opt_ms_saved;
    errors =
      (let g i = Sync.Counter.get t.errs.(i) in
       {
         io_faults = g 0;
         corruptions = g 1;
         resource_exceeded = g 2;
         timeouts = g 3;
         cancellations = g 4;
         bad_statements = g 5;
         unavailable = g 6;
       });
  }

let hit_ratio s =
  if s.calls = 0 then 0.
  else float_of_int (s.hits + s.rebinds) /. float_of_int s.calls

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>plan cache: %d calls, %d hits + %d rebinds (ratio %.2f), %d misses@,\
     fallbacks: %d recost, %d rebind-conflict; stale hits: %d@,\
     entries: %d (%d bytes), evictions: %d, invalidations: %d@,\
     optimizer ms: %.1f spent, %.1f saved@,\
     errors: %d (%d io-fault, %d corruption, %d resource, %d timeout, \
     %d cancelled, %d bad-statement, %d unavailable)@]"
    s.calls s.hits s.rebinds (hit_ratio s) s.misses s.recost_fallbacks
    s.rebind_conflicts s.stale_hits s.entries s.cache_bytes s.evictions
    s.invalidations s.opt_ms_total s.opt_ms_saved (total_errors s.errors)
    s.errors.io_faults s.errors.corruptions s.errors.resource_exceeded
    s.errors.timeouts s.errors.cancellations s.errors.bad_statements
    s.errors.unavailable

let invalidate_all t = Sync.protect t.lock (fun () -> Plan_cache.clear t.cache)

(* ==== DML / materialized-view DDL ==== *)

let bad_stmt fmt =
  Format.kasprintf
    (fun m ->
      let e = Avq_error.Bad_statement m in
      Avq_error.error e)
    fmt

(* Execute one non-SELECT statement under the service lock (the lock also
   guards the matview registry, and holding it across the catalog mutation
   means no planner observes a half-applied write).  The epoch bump inside
   [Catalog.insert] / the extent swap invalidates cached plans on their next
   lookup.  Returns a human-readable completion tag. *)
let exec_statement_inner t sql =
  let count_err = record_error t in
  let guard f =
    try f () with
    | Matview.Error m ->
      let e = Avq_error.Bad_statement m in
      count_err e; Avq_error.error e
    | Binder.Bind_error m ->
      let e = Avq_error.Bad_statement ("bind: " ^ m) in
      count_err e; Avq_error.error e
    | Invalid_argument m ->
      let e = Avq_error.Bad_statement m in
      count_err e; Avq_error.error e
  in
  Metrics.Counter.incr t.statements;
  match Parser.parse_script sql with
  | [ Sql_ast.S_insert { it_table; it_rows } ] ->
    guard (fun () ->
        if
          String.length it_table >= String.length Matview.backing_prefix
          && String.sub it_table 0 (String.length Matview.backing_prefix)
             = Matview.backing_prefix
        then bad_stmt "INSERT into a materialized-view extent is not allowed";
        if Sysview.is_system_table it_table then
          bad_stmt "INSERT into a system view is not allowed";
        let rows = Binder.bind_insert t.cat ~table:it_table it_rows in
        Sync.protect t.lock (fun () ->
            (* Write-ahead: the bound rows hit the log (and, in always mode,
               the disk) before the catalog mutates.  Replay re-runs
               [Catalog.insert], which re-synthesizes identical [_rid]s. *)
            let lsn =
              wal_append_locked t (Wal.Insert { table = it_table; rows })
            in
            let stored = Catalog.insert t.cat ~table:it_table rows in
            let versions_before =
              List.map
                (fun v -> (v.Matview.mv_name, v.Matview.mv_versions))
                (Matview.views t.mviews)
            in
            Matview.on_insert t.cat t.mviews ~table:it_table ~rows:stored;
            (* Informational markers for each view that absorbed the delta
               (its version vector moved); covered by the insert's commit. *)
            List.iter
              (fun v ->
                match List.assoc_opt v.Matview.mv_name versions_before with
                | Some old when old <> v.Matview.mv_versions ->
                  ignore
                    (wal_append_locked t
                       (Wal.Mv_delta
                          { view = v.Matview.mv_name; table = it_table;
                            rows = List.length stored }))
                | _ -> ())
              (Matview.views t.mviews);
            wal_commit_locked t lsn;
            Printf.sprintf "INSERT %d" (List.length stored)))
  | [ Sql_ast.S_create_matview { mv_name; mv_body } ] ->
    guard (fun () ->
        let def = Binder.bind_matview_body t.cat ~name:mv_name mv_body in
        let sql_text = Pretty.select_to_string mv_body in
        Sync.protect t.lock (fun () ->
            let lsn =
              wal_append_locked t
                (Wal.Create_matview { name = mv_name; sql = sql_text })
            in
            let mv =
              Matview.create_view ~options:(options t) t.cat t.mviews
                ~name:mv_name ~sql:sql_text def
            in
            wal_commit_locked t lsn;
            Printf.sprintf "CREATE MATERIALIZED VIEW %s (%d groups)" mv_name
              (Matview.row_count t.cat mv)))
  | [ Sql_ast.S_drop_matview name ] ->
    guard (fun () ->
        Sync.protect t.lock (fun () ->
            let lsn = wal_append_locked t (Wal.Drop_matview name) in
            Matview.drop t.cat t.mviews name;
            wal_commit_locked t lsn;
            Printf.sprintf "DROP MATERIALIZED VIEW %s" name))
  | [ Sql_ast.S_refresh_matview name ] ->
    guard (fun () ->
        Sync.protect t.lock (fun () ->
            let lsn = wal_append_locked t (Wal.Refresh_matview name) in
            Matview.refresh ~options:(options t) t.cat t.mviews name;
            (* The commit lands only after the refresh finished: an abort or
               crash mid-refresh leaves an uncommitted record that replay
               drops, so the recovered view is wholly old or wholly new. *)
            wal_commit_locked t lsn;
            let mv = Option.get (Matview.find t.mviews name) in
            Printf.sprintf "REFRESH MATERIALIZED VIEW %s (%d groups)" name
              (Matview.row_count t.cat mv)))
  | _ -> bad_stmt "expected exactly one INSERT / MATERIALIZED VIEW statement"

(* DML statements have no plan-cache fingerprint; key their stats on a
   fingerprint of the trimmed text, and charge the WAL bytes their commit
   appended (the cumulative counter's delta — checkpoint traffic between
   statements is not attributed here because the lock is held across the
   whole mutation). *)
let exec_statement t sql =
  let t0 = Unix.gettimeofday () in
  let text = String.trim sql in
  let fp = Fingerprint.to_hex (Fingerprint.of_string text) in
  let wal_bytes () =
    match t.wal with
    | Some w -> (Wal.stats w).Wal.appended_bytes
    | None -> 0
  in
  let before = wal_bytes () in
  match exec_statement_inner t sql with
  | tag ->
    Stmt_stats.record t.stats ~fp ~query:text
      ~wal_bytes:(wal_bytes () - before)
      ~ms:((Unix.gettimeofday () -. t0) *. 1000.)
      ();
    tag
  | exception e ->
    let error =
      match Avq_error.of_exn e with
      | Some te -> err_kind_label (err_slot te)
      | None -> "exception"
    in
    Stmt_stats.record t.stats ~fp ~query:text ~error
      ~wal_bytes:(wal_bytes () - before)
      ~ms:((Unix.gettimeofday () -. t0) *. 1000.)
      ();
    raise e

let render_matviews t =
  Sync.protect t.lock (fun () ->
      match Matview.views t.mviews with
      | [] -> "no materialized views"
      | vs ->
        let buf = Buffer.create 256 in
        List.iteri
          (fun i mv ->
            if i > 0 then Buffer.add_char buf '\n';
            let state =
              if Matview.is_fresh t.cat mv then "fresh"
              else "STALE (refresh required)"
            in
            let versions =
              String.concat ", "
                (List.map
                   (fun (tb, v) ->
                     let cur = Catalog.table_version t.cat tb in
                     if cur = v then Printf.sprintf "%s@%d" tb v
                     else Printf.sprintf "%s@%d (now %d)" tb v cur)
                   mv.Matview.mv_versions)
            in
            Buffer.add_string buf
              (Printf.sprintf "%s: %d groups, %s, absorbed %s\n  AS %s"
                 mv.Matview.mv_name
                 (Matview.row_count t.cat mv)
                 state versions mv.Matview.mv_sql))
          vs;
        Buffer.contents buf)

(* ==== concurrent worker pool ==== *)

module Pool = struct
  type service = t

  (* As in [Sync]: [Mutex.protect] would bump the lower bound to 5.1. *)
  let protect m f =
    Mutex.lock m;
    match f () with
    | v ->
      Mutex.unlock m;
      v
    | exception e ->
      Mutex.unlock m;
      raise e

  type outcome = (planned * Relation.t * Buffer_pool.stats, exn) result

  type future = {
    fm : Mutex.t;
    fc : Condition.t;
    mutable result : outcome option;
    fcancel : bool Atomic.t;
        (* shared with the executing worker's statement; setting it makes
           the job resolve to [Error (Avq_error.Error Cancelled)] at its
           next batch boundary (or immediately, if not yet started) *)
  }

  type task =
    | Stmt of stmt * Value.t list option * session_limits
    | Sql of string * session_limits

  type job = { task : task; fut : future }

  type t = {
    svc : service;
    qm : Mutex.t;
    qc : Condition.t;
    jobs : job Queue.t;
    mutable stopping : bool;
    mutable domains : unit Domain.t list;
    nworkers : int;
    executed : Sync.Counter.t;
  }

  let fulfil fut outcome =
    protect fut.fm (fun () ->
        fut.result <- Some outcome;
        Condition.broadcast fut.fc)

  let run_task svc ctx cancel = function
    | Stmt (stmt, params, limits) ->
      execute_on ctx ~cancel ?params ~limits svc stmt
    | Sql (sql, limits) ->
      (* Parse/bind failures become typed [Bad_statement] so session batches
         report them structurally and keep going; planner/executor bugs
         (other exceptions) still propagate untyped through the future. *)
      let bad m =
        let e = Avq_error.Bad_statement m in
        record_error svc e;
        Avq_error.error e
      in
      let stmt =
        try prepare svc sql with
        | Binder.Bind_error msg -> bad ("bind: " ^ msg)
        | Parser.Parse_error (msg, off) ->
          bad (Printf.sprintf "parse at %d: %s" off msg)
        | Lexer.Lex_error (msg, off) ->
          bad (Printf.sprintf "lex at %d: %s" off msg)
      in
      execute_on ctx ~cancel ~limits svc stmt

  (* Worker body: one private [Exec_ctx] for the domain's whole lifetime
     (temps are cleaned per run; the context is just the temp registry and
     work_mem).  Every exception — planner, binder or executor — lands in
     the job's future; the worker itself never dies early. *)
  let worker pool () =
    let ctx = Exec_ctx.create ~work_mem:pool.svc.cfg.work_mem pool.svc.cat in
    let rec loop () =
      let job =
        protect pool.qm (fun () ->
            let rec wait () =
              if not (Queue.is_empty pool.jobs) then Some (Queue.pop pool.jobs)
              else if pool.stopping then None
              else begin
                Condition.wait pool.qc pool.qm;
                wait ()
              end
            in
            wait ())
      in
      match job with
      | None -> ()
      | Some { task; fut } ->
        let outcome =
          match run_task pool.svc ctx fut.fcancel task with
          | r -> Ok r
          | exception e -> Error e
        in
        Sync.Counter.incr pool.executed;
        fulfil fut outcome;
        loop ()
    in
    loop ()

  let create ?(workers = 4) svc =
    if workers < 1 then invalid_arg "Service.Pool.create: workers < 1";
    let pool =
      {
        svc;
        qm = Mutex.create ();
        qc = Condition.create ();
        jobs = Queue.create ();
        stopping = false;
        domains = [];
        nworkers = workers;
        executed = Sync.Counter.create ();
      }
    in
    pool.domains <-
      List.init workers (fun _ -> Domain.spawn (worker pool));
    (* Re-creating a pool over the same service re-points these at the new
       pool (same name+labels replaces in the registry). *)
    Metrics.gauge svc.metrics "avq_pool_workers"
      ~help:"Executor worker domains" (fun () -> float_of_int pool.nworkers);
    Metrics.gauge svc.metrics "avq_pool_queue_depth"
      ~help:"Jobs waiting in the pool queue" (fun () ->
        float_of_int (protect pool.qm (fun () -> Queue.length pool.jobs)));
    Metrics.fn_counter svc.metrics "avq_pool_executed_total"
      ~help:"Jobs completed by the pool (successfully or not)" (fun () ->
        float_of_int (Sync.Counter.get pool.executed));
    pool

  let workers t = t.nworkers
  let executed t = Sync.Counter.get t.executed
  let service t = t.svc

  let enqueue t task =
    let fut =
      {
        fm = Mutex.create ();
        fc = Condition.create ();
        result = None;
        fcancel = Atomic.make false;
      }
    in
    protect t.qm (fun () ->
        if t.stopping then
          invalid_arg "Service.Pool: submit after shutdown";
        Queue.push { task; fut } t.jobs;
        Condition.signal t.qc);
    fut

  let submit ?params ?(limits = no_limits) t stmt =
    enqueue t (Stmt (stmt, params, limits))

  let submit_sql ?(limits = no_limits) t sql = enqueue t (Sql (sql, limits))

  (* Cooperative: the executing worker observes the token at its next batch
     boundary; a job still queued fails its initial check instead of
     starting.  Either way the worker survives and the future resolves. *)
  let cancel fut = Atomic.set fut.fcancel true

  (* Non-blocking: lets a connection handler interleave "is it done yet?"
     with watching its client socket for disconnects. *)
  let peek fut = protect fut.fm (fun () -> fut.result <> None)

  let await fut =
    let outcome =
      protect fut.fm (fun () ->
          let rec wait () =
            match fut.result with
            | Some o -> o
            | None ->
              Condition.wait fut.fc fut.fm;
              wait ()
          in
          wait ())
    in
    match outcome with Ok r -> r | Error e -> raise e

  let shutdown t =
    let ds =
      protect t.qm (fun () ->
          if t.stopping then []
          else begin
            t.stopping <- true;
            Condition.broadcast t.qc;
            let ds = t.domains in
            t.domains <- [];
            ds
          end)
    in
    List.iter Domain.join ds

  let with_pool ?workers svc f =
    let pool = create ?workers svc in
    Fun.protect ~finally:(fun () -> shutdown pool) (fun () -> f pool)
end
