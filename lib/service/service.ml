type config = {
  algorithm : Optimizer.algorithm;
  work_mem : int;
  paper : Paper_opt.options;
  max_entries : int;
  max_bytes : int;
  recost_ratio : float;
  cache_enabled : bool;
  executor : Executor.engine;
}

let default_config =
  {
    algorithm = Optimizer.Paper;
    work_mem = 32;
    paper = Paper_opt.default_options;
    max_entries = 128;
    max_bytes = 4 * 1024 * 1024;
    recost_ratio = 10.0;
    cache_enabled = true;
    executor = `Batch;
  }

type t = {
  cat : Catalog.t;
  cfg : config;
  cache : Plan_cache.t;
  mutable calls : int;
  mutable hits : int;
  mutable rebinds : int;
  mutable misses : int;
  mutable recost_fallbacks : int;
  mutable rebind_conflicts : int;
  mutable stale_hits : int;
  mutable opt_ms_total : float;
  mutable opt_ms_saved : float;
}

let create ?(config = default_config) cat =
  if config.recost_ratio < 1.0 then
    invalid_arg "Service.create: recost_ratio < 1.0";
  {
    cat;
    cfg = config;
    cache =
      Plan_cache.create ~max_entries:config.max_entries
        ~max_bytes:config.max_bytes ();
    calls = 0;
    hits = 0;
    rebinds = 0;
    misses = 0;
    recost_fallbacks = 0;
    rebind_conflicts = 0;
    stale_hits = 0;
    opt_ms_total = 0.;
    opt_ms_saved = 0.;
  }

let catalog t = t.cat
let config t = t.cfg

type stmt = {
  squery : Block.query;
  template : string;
  fp : Fingerprint.t;
  base_params : Value.t list;
}

let prepare_query _t query =
  let template = Canon.serialize query in
  {
    squery = query;
    template;
    fp = Fingerprint.of_string template;
    base_params = Canon.params query;
  }

let prepare t sql = prepare_query t (Binder.bind_sql t.cat sql)

let stmt_fingerprint s = Fingerprint.to_hex s.fp
let stmt_params s = s.base_params

type source =
  | Hit
  | Hit_rebound
  | Miss
  | Recost_fallback
  | Rebind_conflict
  | Uncached

let source_label = function
  | Hit -> "hit"
  | Hit_rebound -> "hit-rebound"
  | Miss -> "miss"
  | Recost_fallback -> "recost-fallback"
  | Rebind_conflict -> "rebind-conflict"
  | Uncached -> "uncached"

type planned = {
  plan : Physical.t;
  est : Cost_model.est;
  source : source;
  opt_ms : float;
  plan_ms : float;
}

let algo_tag = function
  | Optimizer.Traditional -> "trad"
  | Optimizer.Greedy_conservative -> "greedy"
  | Optimizer.Paper -> "paper"

let cache_key t stmt =
  Printf.sprintf "%s/%s/%d" (Fingerprint.to_hex stmt.fp) (algo_tag t.cfg.algorithm)
    t.cfg.work_mem

let options t =
  {
    Optimizer.default_options with
    algorithm = t.cfg.algorithm;
    work_mem = t.cfg.work_mem;
    paper = t.cfg.paper;
  }

let params_equal a b = List.for_all2 (fun x y -> Stdlib.compare x y = 0) a b

(* Bytes-ish footprint of a cache entry: dominated by the plan tree, which
   we approximate by its rendering, plus key, template and parameters. *)
let entry_bytes ~key ~template ~plan ~params =
  String.length (Physical.to_string plan)
  + String.length template + String.length key + (24 * List.length params) + 128

let optimize_and_cache t stmt ps query source =
  let r = Optimizer.optimize ~options:(options t) t.cat query in
  t.opt_ms_total <- t.opt_ms_total +. r.Optimizer.time_ms;
  let key = cache_key t stmt in
  if t.cfg.cache_enabled then
    Plan_cache.add t.cache
      {
        Plan_cache.key;
        template = stmt.template;
        params = ps;
        plan = r.Optimizer.plan;
        est = r.Optimizer.est;
        search = r.Optimizer.search;
        opt_ms = r.Optimizer.time_ms;
        epoch = Catalog.epoch t.cat;
        bytes =
          entry_bytes ~key ~template:stmt.template ~plan:r.Optimizer.plan
            ~params:ps;
      };
  (r.Optimizer.plan, r.Optimizer.est, source, r.Optimizer.time_ms)

let plan ?params t stmt =
  let t0 = Unix.gettimeofday () in
  let ps = Option.value ~default:stmt.base_params params in
  if List.length ps <> List.length stmt.base_params then
    invalid_arg "Service.plan: wrong number of parameters";
  let same_params = params_equal ps stmt.base_params in
  let query = if same_params then stmt.squery else Canon.substitute stmt.squery ps in
  t.calls <- t.calls + 1;
  let plan, est, source, opt_ms =
    if not t.cfg.cache_enabled then optimize_and_cache t stmt ps query Uncached
    else begin
      let epoch = Catalog.epoch t.cat in
      match Plan_cache.find t.cache (cache_key t stmt) ~epoch with
      | None ->
        t.misses <- t.misses + 1;
        optimize_and_cache t stmt ps query Miss
      | Some entry
        when not (String.equal entry.Plan_cache.template stmt.template) ->
        (* 64-bit fingerprint collision: a different template landed on our
           key.  Treat as a miss (re-optimizing overwrites the entry); the
           colliding templates may thrash but can never serve each other's
           plans. *)
        t.misses <- t.misses + 1;
        optimize_and_cache t stmt ps query Miss
      | Some entry ->
        if entry.Plan_cache.epoch <> epoch then begin
          (* unreachable: [find] filters stale epochs; belt and suspenders
             so a stale plan can never be served silently. *)
          t.stale_hits <- t.stale_hits + 1;
          t.misses <- t.misses + 1;
          optimize_and_cache t stmt ps query Miss
        end
        else if params_equal ps entry.Plan_cache.params then begin
          t.hits <- t.hits + 1;
          t.opt_ms_saved <- t.opt_ms_saved +. entry.Plan_cache.opt_ms;
          (entry.Plan_cache.plan, entry.Plan_cache.est, Hit, 0.)
        end
        else begin
          match
            Plan_rebind.mapping ~old_params:entry.Plan_cache.params
              ~new_params:ps
          with
          | None ->
            t.rebind_conflicts <- t.rebind_conflicts + 1;
            optimize_and_cache t stmt ps query Rebind_conflict
          | Some pairs ->
            let plan' = Plan_rebind.rebind pairs entry.Plan_cache.plan in
            let est' =
              Cost_model.estimate t.cat ~work_mem:t.cfg.work_mem plan'
            in
            if
              est'.Cost_model.cost
              <= (t.cfg.recost_ratio *. entry.Plan_cache.est.Cost_model.cost)
                 +. 1e-6
            then begin
              t.rebinds <- t.rebinds + 1;
              t.opt_ms_saved <- t.opt_ms_saved +. entry.Plan_cache.opt_ms;
              (plan', est', Hit_rebound, 0.)
            end
            else begin
              t.recost_fallbacks <- t.recost_fallbacks + 1;
              optimize_and_cache t stmt ps query Recost_fallback
            end
        end
    end
  in
  { plan; est; source; opt_ms; plan_ms = (Unix.gettimeofday () -. t0) *. 1000. }

let execute ?params t stmt =
  let p = plan ?params t stmt in
  let ctx = Exec_ctx.create ~work_mem:t.cfg.work_mem t.cat in
  let rel, io =
    Executor.run_measured ~cold:false ~executor:t.cfg.executor ctx p.plan
  in
  (p, rel, io)

let submit t sql = execute t (prepare t sql)

type stats = {
  calls : int;
  hits : int;
  rebinds : int;
  misses : int;
  recost_fallbacks : int;
  rebind_conflicts : int;
  stale_hits : int;
  invalidations : int;
  evictions : int;
  entries : int;
  cache_bytes : int;
  opt_ms_total : float;
  opt_ms_saved : float;
}

let stats t =
  let c = Plan_cache.counters t.cache in
  {
    calls = t.calls;
    hits = t.hits;
    rebinds = t.rebinds;
    misses = t.misses;
    recost_fallbacks = t.recost_fallbacks;
    rebind_conflicts = t.rebind_conflicts;
    stale_hits = t.stale_hits;
    invalidations = c.Plan_cache.invalidations;
    evictions = c.Plan_cache.evictions;
    entries = c.Plan_cache.entries;
    cache_bytes = c.Plan_cache.bytes;
    opt_ms_total = t.opt_ms_total;
    opt_ms_saved = t.opt_ms_saved;
  }

let hit_ratio s =
  if s.calls = 0 then 0.
  else float_of_int (s.hits + s.rebinds) /. float_of_int s.calls

let pp_stats fmt s =
  Format.fprintf fmt
    "@[<v>plan cache: %d calls, %d hits + %d rebinds (ratio %.2f), %d misses@,\
     fallbacks: %d recost, %d rebind-conflict; stale hits: %d@,\
     entries: %d (%d bytes), evictions: %d, invalidations: %d@,\
     optimizer ms: %.1f spent, %.1f saved@]"
    s.calls s.hits s.rebinds (hit_ratio s) s.misses s.recost_fallbacks
    s.rebind_conflicts s.stale_hits s.entries s.cache_bytes s.evictions
    s.invalidations s.opt_ms_total s.opt_ms_saved

let invalidate_all t = Plan_cache.clear t.cache
