(* Small synchronization toolkit for the service layer: one mutex guarding
   the plan cache (and anything else with linked structure), plus atomic
   counters that can be read without taking it. *)

type t = Mutex.t

let create () = Mutex.create ()

(* Not [Mutex.protect]: that arrived in OCaml 5.1 and this is the one place
   keeping the package honest about its 5.0 lower bound. *)
let protect t f =
  Mutex.lock t;
  match f () with
  | v ->
    Mutex.unlock t;
    v
  | exception e ->
    Mutex.unlock t;
    raise e

module Counter = struct
  type t = int Atomic.t

  let create () = Atomic.make 0
  let incr t = Atomic.incr t
  let get t = Atomic.get t
end

module Fsum = struct
  type t = float Atomic.t

  let create () = Atomic.make 0.

  let add t x =
    let rec go () =
      let v = Atomic.get t in
      if not (Atomic.compare_and_set t v (v +. x)) then go ()
    in
    go ()

  let get t = Atomic.get t
end
