(** Deterministic 64-bit FNV-1a fingerprints.

    Cache keys must be stable across runs, machines and OCaml versions, so
    the service layer never hashes query structures with the polymorphic
    [Hashtbl.hash] (whose value depends on the runtime's memory
    representation); it serializes them canonically ({!Canon.serialize})
    and fingerprints the bytes with this module. *)

type t = int64

val empty : t
(** The FNV-1a offset basis. *)

val add_string : t -> string -> t
(** Fold the bytes of a string into the fingerprint. *)

val add_int : t -> int -> t
(** Fold an integer (as its decimal rendering, with a separator — so
    [add_int (add_int h 1) 23] differs from [add_int (add_int h 12) 3]). *)

val of_string : string -> t

val to_hex : t -> string
(** 16-digit lowercase hex, the form used in composed cache keys. *)

val pp : Format.formatter -> t -> unit
