(** Synchronization primitives for the shared service state.

    The plan cache is an intrusive LRU list, so all cache operations (and
    the find→optimize→add sequence that must be atomic for "optimization
    paid once per key") run under one {!t} mutex.  Per-call counters are
    atomics ({!Counter}, {!Fsum}) so {!Service.stats} can read them without
    blocking the planning path. *)

type t

val create : unit -> t

val protect : t -> (unit -> 'a) -> 'a
(** Run a thunk with the lock held; always released (even on exceptions). *)

(** Monotonic integer counter readable without the lock. *)
module Counter : sig
  type t

  val create : unit -> t
  val incr : t -> unit
  val get : t -> int
end

(** Atomic float accumulator (CAS loop) for wall-time totals. *)
module Fsum : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val get : t -> float
end
