(** System views: observability state exposed as queryable relations.

    Four synthesized tables — [avq_stat_statements] (per-fingerprint
    cumulative statement statistics from {!Stmt_stats}),
    [avq_stat_tables] (per-table cardinality/pages/indexes/version),
    [avq_stat_matviews] (materialized-view freshness) and
    [avq_server_sessions] (live TCP sessions, when a server installed its
    provider) — are materialized into the catalog with
    {!Catalog.put_system_table} right before a statement that references
    one is bound.  From there the normal binder → optimizer → executor →
    wire pipeline applies: [SELECT * FROM avq_stat_statements ORDER BY
    total_ms DESC LIMIT 5] needs no special evaluation path. *)

val is_system_table : string -> bool
(** Is this one of the four synthesized view names?  Checkpoints must skip
    them; INSERT into them is refused. *)

val references_system_view : string -> bool
(** Case-insensitive substring scan of raw SQL for ["avq_stat_"] /
    ["avq_server_"] — the refresh trigger.  May report false positives
    (costing only an extra snapshot); never false negatives. *)

(** One live TCP session, as reported by the server's provider hook.
    [-1] in an override field means "inherit the service config". *)
type session_row = {
  ss_sid : int;
  ss_dop : int;
  ss_work_mem : int;
  ss_timeout_ms : float;
  ss_spill_quota : int;
  ss_prepared : int;
}

val set_session_provider : (unit -> session_row list) -> unit
(** Install the [avq_server_sessions] source (called by [Server.start];
    one provider per process). *)

val clear_session_provider : unit -> unit

val refresh : Catalog.t -> stats:Stmt_stats.t -> mviews:Matview.t -> unit
(** Re-materialize all four views from current state (caller holds the
    service statement lock).  Bumps the catalog epoch, invalidating plans
    cached over the previous snapshot. *)
