let mapping ~old_params ~new_params =
  if List.length old_params <> List.length new_params then
    invalid_arg "Plan_rebind.mapping: parameter vectors differ in length";
  let pairs = List.combine old_params new_params in
  let consistent =
    List.for_all
      (fun (o, n) ->
        List.for_all (fun (o', n') -> o <> o' || n = n') pairs)
      pairs
  in
  if consistent then Some pairs else None

let subst_value pairs v =
  match List.assoc_opt v pairs with Some v' -> v' | None -> v

let rec subst_expr pairs = function
  | Expr.Col _ as e -> e
  | Expr.Const v -> Expr.Const (subst_value pairs v)
  | Expr.Binop (op, a, b) ->
    let a = subst_expr pairs a in
    let b = subst_expr pairs b in
    Expr.Binop (op, a, b)

let rec subst_pred pairs = function
  | Expr.Cmp (op, a, b) ->
    let a = subst_expr pairs a in
    let b = subst_expr pairs b in
    Expr.Cmp (op, a, b)
  | Expr.And (a, b) ->
    let a = subst_pred pairs a in
    let b = subst_pred pairs b in
    Expr.And (a, b)
  | Expr.Or (a, b) ->
    let a = subst_pred pairs a in
    let b = subst_pred pairs b in
    Expr.Or (a, b)
  | Expr.Not a -> Expr.Not (subst_pred pairs a)

let rebind pairs plan =
  let preds = List.map (subst_pred pairs) in
  let bound = Option.map (fun (v, incl) -> (subst_value pairs v, incl)) in
  let rec go = function
    | Physical.Seq_scan s -> Physical.Seq_scan { s with filter = preds s.filter }
    | Physical.Index_scan s ->
      Physical.Index_scan
        { s with lo = bound s.lo; hi = bound s.hi; filter = preds s.filter }
    | Physical.Filter f ->
      Physical.Filter { input = go f.input; pred = preds f.pred }
    | Physical.Block_nl_join j ->
      Physical.Block_nl_join
        { left = go j.left; right = go j.right; cond = preds j.cond }
    | Physical.Index_nl_join j ->
      Physical.Index_nl_join { j with left = go j.left; cond = preds j.cond }
    | Physical.Hash_join j ->
      Physical.Hash_join
        { j with left = go j.left; right = go j.right; cond = preds j.cond }
    | Physical.Merge_join j ->
      Physical.Merge_join
        { j with left = go j.left; right = go j.right; cond = preds j.cond }
    | Physical.Sort s -> Physical.Sort { s with input = go s.input }
    | Physical.Hash_group g -> Physical.Hash_group (group g)
    | Physical.Sort_group g -> Physical.Sort_group (group g)
    | Physical.Project p -> Physical.Project { p with input = go p.input }
    | Physical.Materialize m -> Physical.Materialize { input = go m.input }
    | Physical.Limit l -> Physical.Limit { l with input = go l.input }
    | Physical.Exchange e -> Physical.Exchange { e with input = go e.input }
    | Physical.Repartition r -> Physical.Repartition { r with input = go r.input }
  (* Aggregate arguments are template constants: only [having] is re-bound. *)
  and group g =
    { g with Physical.input = go g.Physical.input;
      having = preds g.Physical.having }
  in
  go plan
