(** Re-binding a cached plan template to new parameter values.

    A cached physical plan was optimized for one concrete parameter vector;
    serving it for a new vector means rewriting every occurrence of each old
    constant at {e predicate positions} (scan filters, index bounds, join
    residuals, HAVING clauses) to the corresponding new constant.  The
    rewrite is value-directed, which is sound because the optimizer only
    copies and moves predicate constants (predicate move-around, index-bound
    extraction) — it never invents or folds them — and because constants
    outside predicates (aggregate arguments, projections, LIMIT) are part of
    the template, never parameterized, and left untouched here. *)

val mapping :
  old_params:Value.t list -> new_params:Value.t list ->
  (Value.t * Value.t) list option
(** The substitution pairs, or [None] when it would be ambiguous: the same
    old value bound at two positions that now want {e different} new values
    (value-directed rewriting cannot tell the occurrences apart, so the
    caller must fall back to a fresh optimization).
    @raise Invalid_argument on vectors of different lengths. *)

val rebind : (Value.t * Value.t) list -> Physical.t -> Physical.t
(** Apply a {!mapping} to all predicate positions of a plan. *)
