(* System views: [avq_stat_statements], [avq_stat_tables],
   [avq_stat_matviews] and [avq_server_sessions], synthesized as ordinary
   in-memory catalog tables ({!Catalog.put_system_table}) right before a
   query that references them is bound.  Being real tables means the whole
   stack — binder, optimizer, executor, wire protocol — queries them with
   no special cases: ORDER BY, filters and LIMIT just work.  The price is
   that a snapshot is only as fresh as the last refresh, which is exactly
   the statement that reads it. *)

let statement_views =
  [ "avq_stat_statements"; "avq_stat_tables"; "avq_stat_matviews";
    "avq_server_sessions" ]

let is_system_table name =
  List.exists (String.equal name) statement_views

(* Cheap textual trigger: does this SQL possibly reference a system view?
   False positives only cost an extra refresh; false negatives are
   impossible because every view name contains one of these substrings. *)
let references_system_view sql =
  let contains hay needle =
    let nh = String.length hay and nn = String.length needle in
    let rec go i =
      i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
    in
    go 0
  in
  let lower = String.lowercase_ascii sql in
  contains lower "avq_stat_" || contains lower "avq_server_"

(* ---- avq_server_sessions provider ----

   The TCP server lives a layer above this library, so it injects its
   session snapshot through a hook: one provider per process (one server
   per process in every deployment we ship; tests run servers
   sequentially). *)

type session_row = {
  ss_sid : int;
  ss_dop : int;  (* -1 = inherit the service config *)
  ss_work_mem : int;  (* -1 = inherit *)
  ss_timeout_ms : float;  (* -1 = inherit *)
  ss_spill_quota : int;  (* -1 = inherit *)
  ss_prepared : int;
}

let session_provider : (unit -> session_row list) option ref = ref None
let set_session_provider f = session_provider := Some f
let clear_session_provider () = session_provider := None

(* ---- the snapshots ---- *)

let f x = Value.Float x
let i x = Value.Int x
let s x = Value.String x
let b x = Value.Bool x

let statements_columns =
  [ ("fingerprint", Datatype.String); ("query", Datatype.String);
    ("calls", Datatype.Int); ("errors", Datatype.Int);
    ("total_ms", Datatype.Float); ("mean_ms", Datatype.Float);
    ("min_ms", Datatype.Float); ("max_ms", Datatype.Float);
    ("p50_ms", Datatype.Float); ("p95_ms", Datatype.Float);
    ("p99_ms", Datatype.Float); ("rows", Datatype.Int);
    ("pages", Datatype.Int); ("spill_bytes", Datatype.Int);
    ("cache_hits", Datatype.Int); ("rebinds", Datatype.Int);
    ("mv_hits", Datatype.Int); ("wal_bytes", Datatype.Int);
    ("max_dop", Datatype.Int) ]

let statements_rows stats =
  List.map
    (fun (st : Stmt_stats.stat) ->
      Tuple.make
        [ s st.fingerprint; s st.query; i st.calls; i st.errors;
          f st.total_ms; f st.mean_ms; f st.min_ms; f st.max_ms;
          f st.p50_ms; f st.p95_ms; f st.p99_ms; i st.rows; i st.pages;
          i st.spill_bytes; i st.cache_hits; i st.rebinds; i st.mv_hits;
          i st.wal_bytes; i st.max_dop ])
    (Stmt_stats.snapshot stats)

let tables_columns =
  [ ("name", Datatype.String); ("rows", Datatype.Int);
    ("pages", Datatype.Int); ("row_bytes", Datatype.Int);
    ("columns", Datatype.Int); ("indexes", Datatype.Int);
    ("version", Datatype.Int); ("clustered", Datatype.String);
    ("primary_key", Datatype.String) ]

let tables_rows cat =
  List.filter_map
    (fun (tbl : Catalog.table) ->
      if is_system_table tbl.Catalog.tname then None
      else
        Some
          (Tuple.make
             [ s tbl.Catalog.tname;
               i tbl.Catalog.tstats.Stats.card;
               i tbl.Catalog.tstats.Stats.pages;
               i tbl.Catalog.tstats.Stats.row_bytes;
               i (Schema.arity tbl.Catalog.tschema);
               i (List.length tbl.Catalog.indexes);
               i (Catalog.table_version cat tbl.Catalog.tname);
               s (Option.value ~default:"" tbl.Catalog.clustered);
               s (String.concat "," tbl.Catalog.primary_key) ]))
    (Catalog.tables cat)

let matviews_columns =
  [ ("name", Datatype.String); ("backing", Datatype.String);
    ("groups", Datatype.Int); ("fresh", Datatype.Bool);
    ("maintain", Datatype.Bool) ]

let matviews_rows cat mviews =
  List.map
    (fun (v : Matview.view) ->
      Tuple.make
        [ s v.Matview.mv_name; s v.Matview.mv_backing;
          i (Matview.row_count cat v);
          b (Matview.is_fresh cat v);
          b v.Matview.mv_maintain ])
    (Matview.views mviews)

let sessions_columns =
  [ ("sid", Datatype.Int); ("dop", Datatype.Int);
    ("work_mem", Datatype.Int); ("timeout_ms", Datatype.Float);
    ("spill_quota", Datatype.Int); ("prepared", Datatype.Int) ]

let sessions_rows () =
  match !session_provider with
  | None -> []
  | Some provider ->
    List.map
      (fun r ->
        Tuple.make
          [ i r.ss_sid; i r.ss_dop; i r.ss_work_mem; f r.ss_timeout_ms;
            i r.ss_spill_quota; i r.ss_prepared ])
      (List.sort (fun a b -> compare a.ss_sid b.ss_sid) (provider ()))

let refresh cat ~stats ~mviews =
  ignore
    (Catalog.put_system_table cat ~name:"avq_stat_statements"
       ~columns:statements_columns (statements_rows stats));
  ignore
    (Catalog.put_system_table cat ~name:"avq_stat_tables"
       ~columns:tables_columns (tables_rows cat));
  ignore
    (Catalog.put_system_table cat ~name:"avq_stat_matviews"
       ~columns:matviews_columns (matviews_rows cat mviews));
  ignore
    (Catalog.put_system_table cat ~name:"avq_server_sessions"
       ~columns:sessions_columns (sessions_rows ()))
