(** LRU cache of optimized plan templates.

    Keys are composed by the caller from (query fingerprint, algorithm,
    work_mem); the catalog epoch the plan was optimized under is stored in
    the entry and checked on every lookup, so a plan from before a DDL
    change or statistics refresh is never served — it is dropped at lookup
    time and counted as an invalidation.  Capacity is bounded both by entry
    count and by a bytes-ish size estimate of the stored plans; eviction is
    strict LRU. *)

type entry = {
  key : string;
  template : string;  (** canonical query text (diagnostics) *)
  params : Value.t list;  (** parameter vector the plan was optimized for *)
  plan : Physical.t;
  est : Cost_model.est;
  search : Search_stats.t;
  opt_ms : float;  (** what the original optimization cost *)
  epoch : int;  (** catalog epoch at optimization time *)
  mv : string option;
      (** materialized view the plan reads from, when it is a view rewrite.
          Such a plan embeds the view's covered predicates implicitly (their
          constants are baked into the extent's contents), so it must never
          be re-bound to different parameters — the service re-optimizes
          instead of rebinding when this is set. *)
  bytes : int;
}

type counters = {
  evictions : int;  (** entries dropped to stay within capacity *)
  invalidations : int;  (** entries dropped on lookup for a stale epoch *)
  entries : int;  (** current population *)
  bytes : int;  (** current bytes-ish total *)
}

type t

val create : ?max_entries:int -> ?max_bytes:int -> unit -> t
(** Defaults: 128 entries, 4 MiB. *)

val find : t -> string -> epoch:int -> entry option
(** Epoch-checked lookup; a found entry becomes most-recently used.  An
    entry with a different epoch is removed, counted as an invalidation,
    and reported as absent. *)

val add : t -> entry -> unit
(** Insert (replacing any entry under the same key, not counted as an
    eviction), then evict least-recently-used entries while over either
    capacity bound. *)

val remove : t -> string -> unit

val clear : t -> unit
(** Drop every entry, counting each as an invalidation. *)

val keys_lru : t -> string list
(** Keys from least- to most-recently used (inspection and tests). *)

val counters : t -> counters
