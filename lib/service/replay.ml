let strip_comments text =
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         let t = String.trim line in
         not (String.length t >= 2 && t.[0] = '-' && t.[1] = '-'))
  |> String.concat "\n"

let split_statements text =
  let text = strip_comments text in
  let out = ref [] in
  let buf = Buffer.create 128 in
  let flush () =
    let s = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then out := s :: !out
  in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && text.[!i] = ';' && text.[!i + 1] = ';' then begin
      flush ();
      i := !i + 2
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  flush ();
  List.rev !out

type line = {
  index : int;
  sql : string;
  outcome : (Service.planned * int, string) result;
}

let replay svc text =
  List.mapi
    (fun i sql ->
      let outcome =
        match Service.submit svc sql with
        | p, rel, _io -> Ok (p, Relation.cardinality rel)
        | exception Binder.Bind_error msg -> Error ("bind error: " ^ msg)
        | exception Parser.Parse_error (msg, off) ->
          Error (Printf.sprintf "parse error at %d: %s" off msg)
        | exception Lexer.Lex_error (msg, off) ->
          Error (Printf.sprintf "lex error at %d: %s" off msg)
      in
      { index = i + 1; sql; outcome })
    (split_statements text)

let first_line sql =
  match String.index_opt sql '\n' with
  | None -> sql
  | Some i -> String.sub sql 0 i ^ " ..."

let report fmt svc lines =
  List.iter
    (fun l ->
      match l.outcome with
      | Ok (p, rows) ->
        Format.fprintf fmt "[%3d] %-15s %6d rows  est %10.1f  %6.2f ms  %s@."
          l.index
          (Service.source_label p.Service.source)
          rows p.Service.est.Cost_model.cost p.Service.plan_ms
          (first_line l.sql)
      | Error msg ->
        Format.fprintf fmt "[%3d] ERROR %s  %s@." l.index msg (first_line l.sql))
    lines;
  Format.fprintf fmt "@.%a@." Service.pp_stats (Service.stats svc)
