let strip_comments text =
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         let t = String.trim line in
         not (String.length t >= 2 && t.[0] = '-' && t.[1] = '-'))
  |> String.concat "\n"

let split_statements text =
  let text = strip_comments text in
  let out = ref [] in
  let buf = Buffer.create 128 in
  let flush () =
    let s = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then out := s :: !out
  in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && text.[!i] = ';' && text.[!i + 1] = ';' then begin
      flush ();
      i := !i + 2
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  flush ();
  List.rev !out

type line = {
  index : int;
  sql : string;
  outcome : (Service.planned * int, string) result;
}

let describe_error = function
  | Avq_error.Error e -> Avq_error.to_string e
  | Binder.Bind_error msg -> "bind error: " ^ msg
  | Parser.Parse_error (msg, off) ->
    Printf.sprintf "parse error at %d: %s" off msg
  | Lexer.Lex_error (msg, off) -> Printf.sprintf "lex error at %d: %s" off msg
  | e -> raise e

let replay svc text =
  List.mapi
    (fun i sql ->
      let outcome =
        match Service.submit svc sql with
        | p, rel, _io -> Ok (p, Relation.cardinality rel)
        | exception e -> Error (describe_error e)
      in
      { index = i + 1; sql; outcome })
    (split_statements text)

(* Pool replay: submit every statement up front, then await in order — the
   report stays deterministic per-line while execution itself is concurrent.
   Worker-side bind/parse errors surface through [await] per statement. *)
let replay_pool pool text =
  let stmts = split_statements text in
  let futs = List.map (fun sql -> (sql, Service.Pool.submit_sql pool sql)) stmts in
  List.mapi
    (fun i (sql, fut) ->
      let outcome =
        match Service.Pool.await fut with
        | p, rel, _io -> Ok (p, Relation.cardinality rel)
        | exception e -> Error (describe_error e)
      in
      { index = i + 1; sql; outcome })
    futs

let first_line sql =
  match String.index_opt sql '\n' with
  | None -> sql
  | Some i -> String.sub sql 0 i ^ " ..."

let report fmt svc lines =
  List.iter
    (fun l ->
      match l.outcome with
      | Ok (p, rows) ->
        Format.fprintf fmt "[%3d] %-15s %6d rows  est %10.1f  %6.2f ms  %s@."
          l.index
          (Service.source_label p.Service.source)
          rows p.Service.est.Cost_model.cost p.Service.plan_ms
          (first_line l.sql)
      | Error msg ->
        Format.fprintf fmt "[%3d] ERROR %s  %s@." l.index msg (first_line l.sql))
    lines;
  Format.fprintf fmt "@.%a@." Service.pp_stats (Service.stats svc)
