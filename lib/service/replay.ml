let strip_comments text =
  String.split_on_char '\n' text
  |> List.filter (fun line ->
         let t = String.trim line in
         not (String.length t >= 2 && t.[0] = '-' && t.[1] = '-'))
  |> String.concat "\n"

let split_statements text =
  let text = strip_comments text in
  let out = ref [] in
  let buf = Buffer.create 128 in
  let flush () =
    let s = String.trim (Buffer.contents buf) in
    Buffer.clear buf;
    if s <> "" then out := s :: !out
  in
  let n = String.length text in
  let i = ref 0 in
  while !i < n do
    if !i + 1 < n && text.[!i] = ';' && text.[!i + 1] = ';' then begin
      flush ();
      i := !i + 2
    end
    else begin
      Buffer.add_char buf text.[!i];
      incr i
    end
  done;
  flush ();
  List.rev !out

type outcome =
  | Executed of Service.planned * int
  | Rendered of string
  | Failed of string

type line = { index : int; sql : string; outcome : outcome }

let describe_error = function
  | Avq_error.Error e -> Avq_error.to_string e
  | Binder.Bind_error msg -> "bind error: " ^ msg
  | Parser.Parse_error (msg, off) ->
    Printf.sprintf "parse error at %d: %s" off msg
  | Lexer.Lex_error (msg, off) -> Printf.sprintf "lex error at %d: %s" off msg
  | e -> raise e

(* Session directives and statement modifiers, classified before execution.
   [\metrics] dumps the registry; an [EXPLAIN ANALYZE] prefix runs the rest
   of the statement under profiling and renders the annotated tree. *)
type classified =
  | Directive_metrics of [ `Json | `Prometheus ]
  | Directive_stats of [ `Show | `Reset ]
  | Directive_matviews
  | Directive_checkpoint
  | Explain_analyze of string
  | Update of string
      (** INSERT or MATERIALIZED VIEW DDL: mutates shared state, so pool
          replay treats it as a barrier *)
  | Plain of string

let is_space c = c = ' ' || c = '\t' || c = '\n' || c = '\r'

let strip_prefix ~prefix s =
  let n = String.length prefix and l = String.length s in
  if l > n && String.lowercase_ascii (String.sub s 0 n) = prefix && is_space s.[n]
  then Some (String.trim (String.sub s n (l - n)))
  else None

let classify sql =
  let t = String.trim sql in
  let lt = String.lowercase_ascii t in
  let has_prefix p =
    String.length lt > String.length p
    && String.sub lt 0 (String.length p) = p
    && is_space lt.[String.length p]
  in
  match lt with
  | "\\metrics" | "\\metrics json" -> Directive_metrics `Json
  | "\\metrics prom" | "\\metrics prometheus" -> Directive_metrics `Prometheus
  | "\\stats" -> Directive_stats `Show
  | "\\stats reset" -> Directive_stats `Reset
  | "\\dm" -> Directive_matviews
  | "\\checkpoint" -> Directive_checkpoint
  | _ ->
    if
      has_prefix "insert" || has_prefix "create materialized"
      || has_prefix "drop materialized"
      || has_prefix "refresh materialized"
    then Update t
    else (
      match strip_prefix ~prefix:"explain analyze" t with
      | Some rest when rest <> "" -> Explain_analyze rest
      | _ -> Plain t)

let run_metrics svc fmt_kind =
  let m = Service.metrics svc in
  match fmt_kind with
  | `Json -> Metrics.to_json m
  | `Prometheus -> Metrics.to_prometheus m

let run_stats svc = function
  | `Reset ->
    Stmt_stats.reset (Service.stats_store svc);
    "statement statistics reset"
  | `Show ->
    let st = Service.stats_store svc in
    let buf = Buffer.create 512 in
    Buffer.add_string buf
      (Printf.sprintf "tracked=%d recorded=%d evictions=%d\n"
         (Stmt_stats.tracked st) (Stmt_stats.recorded st)
         (Stmt_stats.evictions st));
    Buffer.add_string buf
      (Printf.sprintf "%-16s %6s %5s %10s %9s %9s %8s  %s\n" "fingerprint"
         "calls" "errs" "total_ms" "mean_ms" "p95_ms" "rows" "query");
    List.iter
      (fun (s : Stmt_stats.stat) ->
        let q =
          if String.length s.query > 48 then String.sub s.query 0 45 ^ "..."
          else s.query
        in
        Buffer.add_string buf
          (Printf.sprintf "%-16s %6d %5d %10.2f %9.3f %9.3f %8d  %s\n"
             s.fingerprint s.calls s.errors s.total_ms s.mean_ms s.p95_ms
             s.rows q))
      (Stmt_stats.top ~n:20 st);
    Buffer.contents buf

(* A failed EXPLAIN ANALYZE still has a (partial) rendered tree worth
   showing next to the error. *)
exception Analysis_failed of exn * string

let run_explain_analyze svc sql =
  let stmt = Service.prepare svc sql in
  let p, res, report = Service.explain_analyze svc stmt in
  let body = Format.asprintf "%a" (Service.pp_analysis svc) (p, report) in
  match res with
  | Ok _ -> body
  | Error e -> raise_notrace (Analysis_failed (e, body))

let run_update svc sql =
  match Service.exec_statement svc sql with
  | tag -> Rendered tag
  | exception e -> Failed (describe_error e)

(* One statement, synchronously on the service. *)
let run_one svc sql =
  match classify sql with
  | Directive_metrics kind -> Rendered (run_metrics svc kind)
  | Directive_stats kind -> Rendered (run_stats svc kind)
  | Directive_matviews -> Rendered (Service.render_matviews svc)
  | Directive_checkpoint -> Rendered (Service.checkpoint svc)
  | Explain_analyze rest -> (
    match run_explain_analyze svc rest with
    | body -> Rendered body
    | exception Analysis_failed (e, body) ->
      Failed (describe_error e ^ "\n" ^ body)
    | exception e -> Failed (describe_error e))
  | Update sql -> run_update svc sql
  | Plain sql -> (
    match Service.submit svc sql with
    | p, rel, _io -> Executed (p, Relation.cardinality rel)
    | exception e -> Failed (describe_error e))

(* A lifecycle drain (Ctrl-C / SIGTERM) stops the replay between
   statements: already-executed lines keep their outcomes, the rest are
   never started.  In-flight work is stopped by the lifecycle abort flag
   through the executor's own poll points, not from here. *)
let replay svc text =
  let rec go i acc = function
    | [] -> List.rev acc
    | _ :: _ when Lifecycle.draining () -> List.rev acc
    | sql :: rest ->
      go (i + 1) ({ index = i; sql; outcome = run_one svc sql } :: acc) rest
  in
  go 1 [] (split_statements text)

(* Pool replay: runs of consecutive read-only statements are submitted to
   the pool up front, then awaited in order — the report stays
   deterministic per-line while execution itself is concurrent.  Updates
   (INSERT, MATERIALIZED VIEW DDL) are barriers: an update runs alone,
   after every earlier statement has completed and before any later one is
   submitted, so concurrent readers never race a catalog mutation and every
   statement sees a well-defined database state.  Directives and EXPLAIN
   ANALYZE run synchronously at their position in the await sequence, so a
   [\metrics] line observes every earlier statement's effect (later ones in
   the same run may still be in flight on the workers). *)
let replay_pool pool text =
  let svc = Service.Pool.service pool in
  let results = ref [] in
  let pending = ref [] in
  let await_outcome = function
    | `Fut fut -> (
      match Service.Pool.await fut with
      | p, rel, _io -> Executed (p, Relation.cardinality rel)
      | exception e -> Failed (describe_error e))
    | `Sync (Directive_metrics kind) -> Rendered (run_metrics svc kind)
    | `Sync (Directive_stats kind) -> Rendered (run_stats svc kind)
    | `Sync Directive_matviews -> Rendered (Service.render_matviews svc)
    | `Sync (Explain_analyze rest) -> (
      match run_explain_analyze svc rest with
      | body -> Rendered body
      | exception Analysis_failed (e, body) ->
        Failed (describe_error e ^ "\n" ^ body)
      | exception e -> Failed (describe_error e))
    | `Sync (Plain _ | Update _ | Directive_checkpoint) -> assert false
  in
  let flush () =
    List.iter
      (fun (sql, job) -> results := (sql, await_outcome job) :: !results)
      (List.rev !pending);
    pending := []
  in
  List.iter
    (fun sql ->
      if not (Lifecycle.draining ()) then
        match classify sql with
        | Update u ->
          flush ();
          results := (sql, run_update svc u) :: !results
        (* A checkpoint snapshots the catalog and truncates the WAL — run it
           as a barrier too, with no statement in flight. *)
        | Directive_checkpoint ->
          flush ();
          results := (sql, Rendered (Service.checkpoint svc)) :: !results
        | Plain p ->
          pending := (sql, `Fut (Service.Pool.submit_sql pool p)) :: !pending
        | (Directive_metrics _ | Directive_stats _ | Directive_matviews
          | Explain_analyze _) as c ->
          pending := (sql, `Sync c) :: !pending)
    (split_statements text);
  flush ();
  List.mapi
    (fun i (sql, outcome) -> { index = i + 1; sql; outcome })
    (List.rev !results)

let first_line sql =
  match String.index_opt sql '\n' with
  | None -> sql
  | Some i -> String.sub sql 0 i ^ " ..."

let report fmt svc lines =
  List.iter
    (fun l ->
      match l.outcome with
      | Executed (p, rows) ->
        let mv =
          match Matview.rewritten_view p.Service.rewrite with
          | Some v -> Printf.sprintf "  [mv:%s]" v
          | None -> ""
        in
        Format.fprintf fmt "[%3d] %-15s %6d rows  est %10.1f  %6.2f ms  %s%s@."
          l.index
          (Service.source_label p.Service.source)
          rows p.Service.est.Cost_model.cost p.Service.plan_ms
          (first_line l.sql) mv
      | Rendered body ->
        Format.fprintf fmt "[%3d] %s@.%s@." l.index (first_line l.sql) body
      | Failed msg ->
        Format.fprintf fmt "[%3d] ERROR %s  %s@." l.index msg (first_line l.sql))
    lines;
  Format.fprintf fmt "@.%a@." Service.pp_stats (Service.stats svc)
