(** Batch replay of a query file through one service instance.

    Input format matches the interactive shell: statements are terminated
    by [;;] (each statement may itself be a script of [;]-separated CREATE
    VIEWs ending in a SELECT).  Lines whose first non-blank characters are
    [--] are comments. *)

val split_statements : string -> string list
(** Strip comment lines and split on [;;]; empty statements are dropped. *)

type line = {
  index : int;
  sql : string;
  outcome : (Service.planned * int, string) result;
      (** planned + result row count, or the bind/parse error message *)
}

val replay : Service.t -> string -> line list
(** Run every statement in order, executing each against the service's
    catalog. Statements that fail to bind or parse are reported in their
    [outcome] and do not stop the replay. *)

val replay_pool : Service.Pool.t -> string -> line list
(** Like {!replay} but through a worker pool: all statements are submitted
    up front and awaited in order, so the per-line report is deterministic
    while prepare + plan + execute run concurrently on the workers. *)

val report : Format.formatter -> Service.t -> line list -> unit
(** Human-readable per-statement lines followed by the service's cache
    statistics. *)
