(** Batch replay of a query file through one service instance.

    Input format matches the interactive shell: statements are terminated
    by [;;] (each statement may itself be a script of [;]-separated CREATE
    VIEWs ending in a SELECT).  Lines whose first non-blank characters are
    [--] are comments.

    Three non-SQL forms are recognized per statement:
    - [\metrics] (or [\metrics prom]): dump the service's metrics registry
      as JSON (or Prometheus text) at that point in the replay;
    - [\dm]: list materialized views (name, group count, freshness,
      absorbed base-table versions, definition);
    - [EXPLAIN ANALYZE <sql>]: run the statement under per-operator
      profiling and render the estimated-vs-actual tree with q-errors.

    Mutating statements (INSERT, CREATE / DROP / REFRESH MATERIALIZED
    VIEW) are routed through {!Service.exec_statement} and report a
    completion tag instead of a row count. *)

val split_statements : string -> string list
(** Strip comment lines and split on [;;]; empty statements are dropped. *)

(** How one statement is routed; shared with the network server so [avq
    serve] speaks exactly the session statement language. *)
type classified =
  | Directive_metrics of [ `Json | `Prometheus ]
  | Directive_stats of [ `Show | `Reset ]
      (** [\stats] / [\stats reset]: render the top statement statistics
          ({!Stmt_stats}) or drop every tracked entry *)
  | Directive_matviews
  | Directive_checkpoint
      (** [\checkpoint]: snapshot catalog + matviews to the data directory
          and truncate the WAL; a barrier in pool replay *)
  | Explain_analyze of string
  | Update of string
      (** INSERT or MATERIALIZED VIEW DDL: mutates shared state, so pool
          replay treats it as a barrier *)
  | Plain of string

val classify : string -> classified

val describe_error : exn -> string
(** One-line rendering of a typed / binder / parser / lexer failure.
    Re-raises anything it cannot soundly describe. *)

val run_metrics : Service.t -> [ `Json | `Prometheus ] -> string

val run_stats : Service.t -> [ `Show | `Reset ] -> string
(** Render the top tracked statements as an aligned table, or reset the
    store and report that. *)

exception Analysis_failed of exn * string
(** A failed [EXPLAIN ANALYZE] still carries its partial annotated tree. *)

val run_explain_analyze : Service.t -> string -> string
(** @raise Analysis_failed with the (partial) rendered tree on failure. *)

type outcome =
  | Executed of Service.planned * int
      (** planned + result row count of a plain statement *)
  | Rendered of string
      (** output of a [\metrics] directive or an [EXPLAIN ANALYZE] *)
  | Failed of string  (** bind/parse/typed-execution error message *)

type line = { index : int; sql : string; outcome : outcome }

val replay : Service.t -> string -> line list
(** Run every statement in order, executing each against the service's
    catalog. Statements that fail to bind or parse are reported in their
    [outcome] and do not stop the replay.  A {!Lifecycle} drain stops the
    replay at the next statement boundary: finished lines keep their
    outcomes, the rest are never started. *)

val replay_pool : Service.Pool.t -> string -> line list
(** Like {!replay} but through a worker pool: runs of consecutive read-only
    statements are submitted up front and awaited in order, so the per-line
    report is deterministic while prepare + plan + execute run concurrently
    on the workers.  Mutating statements are barriers: each runs alone,
    after all earlier statements completed and before any later one is
    submitted.  Directives and [EXPLAIN ANALYZE] run synchronously at their
    await position (a [\metrics] line sees every earlier statement's
    effect; later statements in the same run may still be in flight). *)

val report : Format.formatter -> Service.t -> line list -> unit
(** Human-readable per-statement lines followed by the service's cache
    statistics. *)
