type t = int64

(* FNV-1a, 64-bit: hash = (hash xor byte) * prime, per byte. *)

let empty = 0xcbf29ce484222325L
let prime = 0x100000001b3L

let add_byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let add_string h s =
  let h = ref h in
  String.iter (fun c -> h := add_byte !h (Char.code c)) s;
  !h

let add_int h i = add_byte (add_string h (string_of_int i)) 0x1f

let of_string s = add_string empty s

let to_hex h = Printf.sprintf "%016Lx" h

let pp fmt h = Format.pp_print_string fmt (to_hex h)
