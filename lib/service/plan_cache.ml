type entry = {
  key : string;
  template : string;
  params : Value.t list;
  plan : Physical.t;
  est : Cost_model.est;
  search : Search_stats.t;
  opt_ms : float;
  epoch : int;
  mv : string option;
  bytes : int;
}

type counters = {
  evictions : int;
  invalidations : int;
  entries : int;
  bytes : int;
}

(* Intrusive doubly-linked list threaded through a sentinel: sentinel.next
   is most-recently used, sentinel.prev least-recently used. *)
type node = {
  mutable prev : node;
  mutable next : node;
  slot : entry option;  (* None only for the sentinel *)
}

type t = {
  max_entries : int;
  max_bytes : int;
  index : (string, node) Hashtbl.t;
  sentinel : node;
  mutable cur_bytes : int;
  mutable evictions : int;
  mutable invalidations : int;
}

let create ?(max_entries = 128) ?(max_bytes = 4 * 1024 * 1024) () =
  if max_entries < 1 then invalid_arg "Plan_cache.create: max_entries < 1";
  let rec sentinel = { prev = sentinel; next = sentinel; slot = None } in
  {
    max_entries;
    max_bytes;
    index = Hashtbl.create 64;
    sentinel;
    cur_bytes = 0;
    evictions = 0;
    invalidations = 0;
  }

let unlink node =
  node.prev.next <- node.next;
  node.next.prev <- node.prev

let push_front t node =
  node.next <- t.sentinel.next;
  node.prev <- t.sentinel;
  t.sentinel.next.prev <- node;
  t.sentinel.next <- node

let entry_exn node =
  match node.slot with
  | Some e -> e
  | None -> assert false

let drop t node =
  let e = entry_exn node in
  unlink node;
  Hashtbl.remove t.index e.key;
  t.cur_bytes <- t.cur_bytes - e.bytes

let remove t key =
  match Hashtbl.find_opt t.index key with
  | None -> ()
  | Some node -> drop t node

let find t key ~epoch =
  match Hashtbl.find_opt t.index key with
  | None -> None
  | Some node ->
    let e = entry_exn node in
    if e.epoch <> epoch then begin
      drop t node;
      t.invalidations <- t.invalidations + 1;
      None
    end
    else begin
      unlink node;
      push_front t node;
      Some e
    end

let add t entry =
  remove t entry.key;
  let node = { prev = t.sentinel; next = t.sentinel; slot = Some entry } in
  push_front t node;
  Hashtbl.add t.index entry.key node;
  t.cur_bytes <- t.cur_bytes + entry.bytes;
  while
    Hashtbl.length t.index > t.max_entries
    || (t.cur_bytes > t.max_bytes && Hashtbl.length t.index > 1)
  do
    drop t t.sentinel.prev;
    t.evictions <- t.evictions + 1
  done

let clear t =
  while t.sentinel.next != t.sentinel do
    drop t t.sentinel.next;
    t.invalidations <- t.invalidations + 1
  done

let keys_lru t =
  let rec walk node acc =
    if node == t.sentinel then acc
    else walk node.prev ((entry_exn node).key :: acc)
  in
  List.rev (walk t.sentinel.prev [])

let counters t =
  {
    evictions = t.evictions;
    invalidations = t.invalidations;
    entries = Hashtbl.length t.index;
    bytes = t.cur_bytes;
  }
