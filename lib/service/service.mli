(** The session layer: a long-lived query service over one catalog.

    Amortizes optimizer work across repeated parameterized queries: each
    incoming query is canonicalized ({!Canon}), fingerprinted
    ({!Fingerprint}) and looked up in an LRU plan cache ({!Plan_cache}).
    On a hit the cached plan template is re-bound to the call's parameter
    values ({!Plan_rebind}) and re-costed; if the re-costed estimate drifts
    beyond [recost_ratio] times the cost the template was cached at, the
    template is considered parameter-sensitive for these values and the
    query is re-optimized from scratch (preserving the paper's
    "never worse than traditional" guarantee, which only holds for plans
    the optimizer actually picked for the parameters at hand).  Plans from
    an older catalog epoch are never served.

    The service is shared-state safe: the plan cache and its counters live
    behind a {!Sync} mutex (one critical section per {!plan} call, so an
    optimization is paid once per (fingerprint, algo, work_mem) even when
    workers race on a cold key), per-call counters are atomics, and
    execution runs outside any lock on the caller's own {!Exec_ctx} with
    delta-based per-domain IO measurement.  {!Pool} puts N executor worker
    domains behind a job queue over one shared service. *)

type config = {
  algorithm : Optimizer.algorithm;
  work_mem : int;
  paper : Paper_opt.options;
  max_entries : int;  (** plan-cache capacity, entries *)
  max_bytes : int;  (** plan-cache capacity, bytes-ish *)
  recost_ratio : float;
      (** serve a re-bound template only while its re-costed estimate is
          within this factor of the cost it was cached at (>= 1.0) *)
  cache_enabled : bool;  (** [false] = optimize every call (baseline) *)
  executor : Executor.engine;
      (** execution engine for this session's runs; the plan cache is
          engine-agnostic (plans are identical), so sessions sharing a
          service may differ only in how plans are interpreted *)
  statement_timeout_ms : float option;
      (** per-statement deadline covering planning + execution; exceeding it
          raises [Avq_error.Error (Timeout _)] at the next batch boundary *)
  spill_quota_pages : int option;
      (** cumulative temp pages a statement may allocate before
          [Avq_error.Error (Resource_exceeded _)] *)
  dop : int;
      (** degree of intra-query parallelism handed to the optimizer; plans
          cached at one dop are not served at another (the key includes
          it) *)
}

val default_config : config
(** [Paper] algorithm, 32 pages work_mem, 128 entries / 4 MiB cache,
    recost ratio 10.0, cache on, batch executor, no timeout or spill
    quota, serial ([dop = 1]). *)

type t

val create : ?config:config -> ?mviews:Matview.t -> Catalog.t -> t
(** [mviews] injects a pre-populated matview registry (startup recovery);
    by default the service starts with an empty one. *)

val catalog : t -> Catalog.t
val config : t -> config

(** {1 Durability}

    With a WAL attached, every mutating statement (INSERT,
    CREATE/DROP/REFRESH MATERIALIZED VIEW) appends its record to the log —
    fsynced per the writer's mode — {e before} the catalog mutates, and
    seals it with a commit record once the mutation is complete.  Recovery
    ({!Recovery.recover}) replays exactly the committed records, so a crash
    at any instant loses at most unacknowledged statements. *)

val attach_wal :
  t ->
  data_dir:string ->
  ?checkpoint_bytes:int ->
  ?recovery:Recovery.stats ->
  Wal.writer ->
  unit
(** Attach a WAL writer (usually the one {!Recovery.recover} returned) and
    register the [avq_wal_*] / [avq_checkpoints_*] metric families (plus
    [avq_recovery_*] when startup recovery stats are given).
    [checkpoint_bytes] arms size-triggered checkpointing: once the log
    reaches that many bytes, the next committed mutation checkpoints and
    truncates it. *)

val wal : t -> Wal.writer option

val checkpoint : t -> string
(** Write a checkpoint now (under the statement lock): [Checkpoint_begin]
    marker → {!Checkpoint.write} (buffer-pool flush + atomic snapshot) →
    [Checkpoint_end] → WAL truncation.  Returns a human-readable completion
    tag; reports "skipped" when no WAL is attached. *)

val auto_dop : workers:int -> int
(** Core-aware default degree of intra-query parallelism:
    [Domain.recommended_domain_count ()] divided among [workers] concurrent
    pool workers, never below 1.  Used when no explicit [--dop] is given. *)

(** {1 Per-session limits}

    One shared service can serve sessions with different [SET] values:
    every field is an override of the corresponding config knob ([None] =
    inherit).  [sl_dop] and [sl_work_mem] participate in planning and are
    part of the plan-cache key, so sessions at different settings never
    serve each other's plans. *)

type session_limits = {
  sl_timeout_ms : float option;
  sl_spill_quota : int option;
  sl_dop : int option;
  sl_work_mem : int option;
  sl_sid : int option;
      (** server session/connection id — not a limit, but carried here so
          the execution path can stamp slow-log lines and traces with the
          connection that ran the statement *)
}

val no_limits : session_limits
(** Inherit every config default. *)

(** {1 Statements} *)

type stmt
(** A prepared statement: canonical template, fingerprint and the parameter
    vector extracted from the statement's own literals. *)

val prepare : t -> string -> stmt
(** Parse, bind and canonicalize an SQL script (CREATE VIEWs followed by one
    SELECT).  Raises the usual {!Binder.Bind_error} / [Parser.Parse_error] /
    [Lexer.Lex_error] on bad input. *)

val prepare_query : t -> Block.query -> stmt
(** Same, for an already-bound query (workload generators, tests). *)

val stmt_fingerprint : stmt -> string
(** Template fingerprint in hex. *)

val stmt_params : stmt -> Value.t list
(** The parameter vector extracted at prepare time. *)

(** {1 Execution} *)

type source =
  | Hit  (** cached plan served as-is (identical parameters) *)
  | Hit_rebound  (** cached template re-bound to new parameters *)
  | Miss  (** no usable entry; optimized and cached *)
  | Recost_fallback
      (** template found but re-costed beyond [recost_ratio]; re-optimized *)
  | Rebind_conflict
      (** template found but value-directed re-binding was ambiguous;
          re-optimized *)
  | Uncached  (** cache disabled *)

val source_label : source -> string

type planned = {
  plan : Physical.t;
  est : Cost_model.est;
  source : source;
  opt_ms : float;  (** optimizer time this call actually spent (0 on hits) *)
  plan_ms : float;  (** end-to-end planning time incl. cache work *)
  search : Search_stats.t;
      (** optimizer search effort (from the original optimization when the
          plan was served from cache) *)
  rewrite : Matview.decision;
      (** what the materialized-view matcher decided for this plan
          ([From_cache] when the plan was served from the cache) *)
}

val plan : ?params:Value.t list -> ?limits:session_limits -> t -> stmt -> planned
(** Produce an executable plan for the statement bound to [params]
    (default: the literals it was prepared with).  [limits] may override
    the session's [dop] and [work_mem] for this call (cache-key aware).
    @raise Invalid_argument if [params] has the wrong arity. *)

val execute :
  ?params:Value.t list -> t -> stmt -> planned * Relation.t * Buffer_pool.stats
(** {!plan}, then run on the service's warm buffer pool, measuring IO
    (delta of the calling domain's tally — safe under concurrency). *)

val execute_on :
  Exec_ctx.t -> ?cancel:bool Atomic.t -> ?params:Value.t list ->
  ?limits:session_limits -> t -> stmt ->
  planned * Relation.t * Buffer_pool.stats
(** Like {!execute} but on a caller-supplied context (pool workers reuse
    one private context per domain).  Arms the context's statement limits
    from the service config overridden by [limits] (a [sl_work_mem]
    override executes on a fresh context at that budget); [cancel] is an
    externally-settable abort token.  A failing statement bumps the
    matching typed-error counter (see {!error_stats}) and re-raises. *)

val record_error : t -> Avq_error.t -> unit
(** Count a typed failure that struck outside {!execute_on} — e.g. the
    network front end's admission rejections — so {!error_stats} and the
    [avq_errors_total] family stay the single source of truth. *)

val submit : t -> string -> planned * Relation.t * Buffer_pool.stats
(** One-shot convenience: {!prepare} then {!execute}, sharing the cache. *)

(** {1 Observability} *)

val metrics : t -> Metrics.t
(** The service's metrics registry: buffer-pool, plan-cache, error,
    statement and pool families, exportable as JSON
    ({!Metrics.to_json}) or Prometheus text ({!Metrics.to_prometheus}). *)

val stats_store : t -> Stmt_stats.t
(** The always-on per-fingerprint statement statistics.  Every statement
    path ({!execute_on}, {!exec_statement}, {!explain_analyze}) records
    exactly one observation per [avq_statements_total] increment, so total
    calls across fingerprints track that counter until eviction or
    {!Stmt_stats.reset} discards history. *)

val set_tracer : t -> Trace.tracer option -> unit
(** Install (or remove) the statement tracer.  When set, every
    {!execute}/{!execute_on} emits one span tree — statement → parse /
    canonicalize / plan / execute, with per-operator child spans under
    execute — and slow statements hit the tracer's slow-query log. *)

val tracer : t -> Trace.tracer option

val explain_analyze :
  ?params:Value.t list ->
  t ->
  stmt ->
  planned * (Relation.t, exn) result * Explain_analyze.t
(** Plan through the cache like any statement, run under per-operator
    profiling, and return the annotated estimated-vs-actual tree.  A failing
    run still returns the (partial) tree with its [error] set; typed errors
    are counted as usual. *)

val pp_analysis :
  t -> Format.formatter -> planned * Explain_analyze.t -> unit
(** Render {!explain_analyze} output: an optimizer header (plan source,
    algorithm, search-effort counters, group-by placement) followed by the
    per-node estimated-vs-actual tree with q-errors. *)

val group_placement : Physical.t -> string
(** Where group-bys sit relative to joins in a plan: ["early"] (below a
    join — the paper's push-down shape), ["late"], ["mixed"] or ["none"]. *)

type error_stats = {
  io_faults : int;
  corruptions : int;
  resource_exceeded : int;
  timeouts : int;
  cancellations : int;
  bad_statements : int;
  unavailable : int;
}
(** Failed statements by {!Avq_error} kind.  A failed statement still counts
    one [calls] (the failure strikes during execution, after the planning
    source was decided), so the cache-counter sum invariant is unaffected. *)

val total_errors : error_stats -> int

type stats = {
  calls : int;  (** plan/execute requests *)
  hits : int;  (** served from cache (as-is) *)
  rebinds : int;  (** served from cache after re-binding *)
  misses : int;  (** optimized because nothing usable was cached *)
  recost_fallbacks : int;
  rebind_conflicts : int;
  stale_hits : int;  (** must stay 0: plans served under a wrong epoch *)
  invalidations : int;
      (** entries dropped for a stale epoch or by {!invalidate_all} *)
  evictions : int;
  entries : int;
  cache_bytes : int;
  opt_ms_total : float;  (** optimizer wall time actually spent *)
  opt_ms_saved : float;
      (** sum over cache-served calls of the original optimization time of
          the served template — the work the cache avoided re-doing *)
  errors : error_stats;
}

val stats : t -> stats
val hit_ratio : stats -> float
(** (hits + rebinds) / calls; 0 on no calls. *)

val pp_stats : Format.formatter -> stats -> unit

val invalidate_all : t -> unit
(** Drop every cached plan, counting each as an invalidation. *)

(** {1 Writes and materialized views}

    The only mutating statements the engine supports:
    [INSERT INTO t VALUES ...] and
    [CREATE / DROP / REFRESH MATERIALIZED VIEW].  They run under the
    service lock; the catalog epoch bump invalidates cached plans, and
    inserts are offered to the matview registry for incremental
    maintenance. *)

val matviews : t -> Matview.t
(** The service's materialized-view registry (access it only from the
    statement path or tests — the service lock guards it). *)

val exec_statement : t -> string -> string
(** Execute one INSERT / CREATE / DROP / REFRESH MATERIALIZED VIEW
    statement, returning a completion tag such as ["INSERT 3"].
    Raises [Avq_error.Error (Bad_statement _)] (counted in
    {!error_stats}) on anything else or on bind/definition errors. *)

val render_matviews : t -> string
(** Multi-line listing for the [\dm] session directive: per view its name,
    group count, freshness, absorbed base-table versions and defining
    query. *)

(** {1 Concurrent worker pool}

    N executor workers, each an OCaml 5 domain with its own private
    {!Exec_ctx}, pull jobs from a Mutex/Condition work queue and resolve
    futures.  All workers share the service's plan cache, so optimization
    cost is amortized across clients, not just across calls; execution
    itself runs in parallel, outside the service lock. *)
module Pool : sig
  type service := t
  type t

  type future
  (** Handle for one submitted job; resolves to the same triple
      {!Service.execute} returns, or re-raises the job's exception. *)

  val create : ?workers:int -> service -> t
  (** Spawn [workers] (default 4) executor domains over a shared service.
      @raise Invalid_argument if [workers < 1]. *)

  val workers : t -> int
  val service : t -> service

  val executed : t -> int
  (** Jobs completed (successfully or not) so far. *)

  val submit : ?params:Value.t list -> ?limits:session_limits -> t -> stmt -> future
  (** Enqueue a prepared statement (with optional parameter re-binding and
      per-session limit overrides).
      @raise Invalid_argument after {!shutdown}. *)

  val submit_sql : ?limits:session_limits -> t -> string -> future
  (** Enqueue raw SQL; the worker does prepare + plan + execute, so parsing
      and binding also run off the submitting thread.  Parse/bind failures
      resolve the future with a typed [Avq_error.Bad_statement]. *)

  val cancel : future -> unit
  (** Request cancellation of one job.  Cooperative: an executing worker
      observes the token at its next batch boundary (a queued job fails its
      initial check instead of starting) and resolves the future with
      [Avq_error.Error Cancelled]; the worker itself keeps running. *)

  val peek : future -> bool
  (** Whether the job has resolved (non-blocking).  Connection handlers
      interleave this with watching their client socket, so a disconnect
      mid-statement can {!cancel} the job. *)

  val await : future -> planned * Relation.t * Buffer_pool.stats
  (** Block until the job finishes.  Re-raises the worker-side exception
      (binder, parser, planner or executor) if the job failed. *)

  val shutdown : t -> unit
  (** Drain remaining jobs, stop the workers and join their domains.
      Idempotent. *)

  val with_pool : ?workers:int -> service -> (t -> 'a) -> 'a
  (** [with_pool svc f] runs [f] over a fresh pool and always shuts it
      down, even if [f] raises. *)
end
