(** Metrics registry: named counters, gauges and fixed-bucket histograms with
    JSON and Prometheus text exposition.

    Hot-path instruments ({!Counter.add}, {!Histogram.observe}) are lock-free:
    counters are sharded across domains, histogram buckets are atomics and the
    float sum uses a CAS retry loop.  The registry lock is only taken to
    register instruments and to export. *)

module Counter : sig
  type t

  val create : unit -> t
  (** A standalone (unregistered) sharded counter. *)

  val add : t -> int -> unit
  val incr : t -> unit
  val get : t -> int
end

module Histogram : sig
  type t

  val create : float array -> t
  (** [create bounds] with strictly ascending bucket upper bounds; an implicit
      [+Inf] bucket is appended.  Raises [Invalid_argument] on an empty or
      non-ascending ladder. *)

  val observe : t -> float -> unit
  val count : t -> int
  val sum : t -> float

  val buckets : t -> (float * int) list
  (** Per-bucket (upper bound, count) pairs, non-cumulative, ending with the
      [+Inf] bucket (reported as [infinity]). *)

  val latency_ms_buckets : float array
  (** Default ladder for statement latencies in milliseconds. *)

  val io_pages_buckets : float array
  (** Default ladder for per-statement page IO. *)
end

type t
(** A registry: a mutable set of named instruments. *)

val create : unit -> t

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t
(** Create and register a counter; returns it for hot-path use. *)

val fn_counter :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  (unit -> float) ->
  unit
(** Register a counter whose (monotonic) value is sampled at export time —
    used to expose counters that already live elsewhere (buffer pool, plan
    cache) without double-counting. *)

val gauge :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  string ->
  (unit -> float) ->
  unit
(** Register a gauge sampled at export time (queue depth, live temps, ...). *)

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  buckets:float array ->
  string ->
  Histogram.t

val json_float : float -> string
(** Number rendering used by both exports: integral values print without a
    fraction, everything else prints the shortest decimal form that parses
    back to the exact same float — large cumulative counters and histogram
    sums never lose precision. *)

val to_json : t -> string
(** All metrics as one JSON document, sorted by (name, labels). *)

val to_prometheus : t -> string
(** Prometheus text exposition format: [# TYPE] lines, cumulative histogram
    buckets with [le] labels, [_sum]/[_count] series. *)
