(* Metrics registry: named counters, gauges and fixed-bucket histograms with
   JSON and Prometheus text exposition.  Instruments are lock-free on the hot
   path — counters and histogram buckets are sharded arrays of atomics indexed
   by the calling domain, so concurrent pool workers do not bounce one cache
   line; the registry mutex is taken only to (un)register and to export. *)

let nshards = 8

let shard () = (Domain.self () :> int) land (nshards - 1)

module Counter = struct
  type t = int Atomic.t array

  let create () = Array.init nshards (fun _ -> Atomic.make 0)
  let add t n = ignore (Atomic.fetch_and_add t.(shard ()) n)
  let incr t = add t 1
  let get t = Array.fold_left (fun acc a -> acc + Atomic.get a) 0 t
end

module Histogram = struct
  type t = {
    bounds : float array;  (* ascending upper bounds; a +inf bucket is implicit *)
    counts : int Atomic.t array;  (* per-bucket observation counts *)
    sum : float Atomic.t;
    count : int Atomic.t;
  }

  let create bounds =
    let n = Array.length bounds in
    if n = 0 then invalid_arg "Metrics.Histogram.create: no buckets";
    for i = 1 to n - 1 do
      if bounds.(i) <= bounds.(i - 1) then
        invalid_arg "Metrics.Histogram.create: buckets not ascending"
    done;
    {
      bounds = Array.copy bounds;
      counts = Array.init (n + 1) (fun _ -> Atomic.make 0);
      sum = Atomic.make 0.;
      count = Atomic.make 0;
    }

  let fadd a x =
    let rec go () =
      let v = Atomic.get a in
      if not (Atomic.compare_and_set a v (v +. x)) then go ()
    in
    go ()

  let observe t x =
    let n = Array.length t.bounds in
    let rec slot i = if i >= n || x <= t.bounds.(i) then i else slot (i + 1) in
    Atomic.incr t.counts.(slot 0);
    Atomic.incr t.count;
    fadd t.sum x

  let count t = Atomic.get t.count
  let sum t = Atomic.get t.sum

  let buckets t =
    Array.to_list
      (Array.mapi
         (fun i c ->
           ((if i < Array.length t.bounds then t.bounds.(i) else infinity),
            Atomic.get c))
         t.counts)

  (* Default bucket ladders for the two quantities the engine cares about. *)
  let latency_ms_buckets =
    [| 0.05; 0.1; 0.25; 0.5; 1.; 2.5; 5.; 10.; 25.; 50.; 100.; 250.; 500.;
       1000.; 5000. |]

  let io_pages_buckets =
    [| 1.; 4.; 16.; 64.; 256.; 1024.; 4096.; 16384.; 65536. |]
end

type instrument =
  | ICounter of Counter.t
  | IFn_counter of (unit -> float)  (* monotonic value sampled at export *)
  | IGauge of (unit -> float)
  | IHistogram of Histogram.t

type metric = {
  name : string;
  help : string;
  labels : (string * string) list;
  instrument : instrument;
}

type t = { lock : Mutex.t; mutable metrics : metric list }

let create () = { lock = Mutex.create (); metrics = [] }

let protect t f =
  Mutex.lock t.lock;
  match f () with
  | v ->
    Mutex.unlock t.lock;
    v
  | exception e ->
    Mutex.unlock t.lock;
    raise e

let valid_name name =
  name <> ""
  && String.for_all
       (fun c ->
         (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
         || (c >= '0' && c <= '9') || c = '_' || c = ':')
       name

(* Same (name, labels) replaces: re-creating a service component (e.g. a new
   pool over one service) re-points the metric instead of duplicating it. *)
let register t ?(help = "") ?(labels = []) name instrument =
  if not (valid_name name) then
    invalid_arg (Printf.sprintf "Metrics.register: bad metric name %S" name);
  let m = { name; help; labels; instrument } in
  protect t (fun () ->
      t.metrics <-
        m
        :: List.filter
             (fun m' -> not (m'.name = name && m'.labels = labels))
             t.metrics)

let counter t ?help ?labels name =
  let c = Counter.create () in
  register t ?help ?labels name (ICounter c);
  c

let fn_counter t ?help ?labels name f =
  register t ?help ?labels name (IFn_counter f)

let gauge t ?help ?labels name f = register t ?help ?labels name (IGauge f)

let histogram t ?help ?labels ~buckets name =
  let h = Histogram.create buckets in
  register t ?help ?labels name (IHistogram h);
  h

let kind_label = function
  | ICounter _ | IFn_counter _ -> "counter"
  | IGauge _ -> "gauge"
  | IHistogram _ -> "histogram"

(* Stable export order: by name, then by labels. *)
let sorted_metrics t =
  let ms = protect t (fun () -> t.metrics) in
  List.sort
    (fun a b ->
      match compare a.name b.name with 0 -> compare a.labels b.labels | c -> c)
    ms

(* ---- JSON exposition ---- *)

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Round-trippable rendering: %g keeps only 6 significant digits, which
   silently truncates large cumulative counters and histogram sums in the
   exports.  Prefer the shortest of %.0f / %.12g that parses back to the
   exact same float, falling back to %.17g (always exact for finite
   doubles). *)
let json_float x =
  if Float.is_nan x then "0"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x

let add_labels_json buf labels =
  Buffer.add_string buf "{";
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_string buf ", ";
      Buffer.add_string buf
        (Printf.sprintf "\"%s\": \"%s\"" (escape_json k) (escape_json v)))
    labels;
  Buffer.add_string buf "}"

let to_json t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n  \"metrics\": [";
  List.iteri
    (fun i m ->
      Buffer.add_string buf (if i = 0 then "\n    " else ",\n    ");
      Buffer.add_string buf
        (Printf.sprintf "{ \"name\": \"%s\", \"type\": \"%s\", \"labels\": "
           (escape_json m.name) (kind_label m.instrument));
      add_labels_json buf m.labels;
      (match m.instrument with
       | ICounter c ->
         Buffer.add_string buf
           (Printf.sprintf ", \"value\": %d" (Counter.get c))
       | IFn_counter f | IGauge f ->
         Buffer.add_string buf
           (Printf.sprintf ", \"value\": %s" (json_float (f ())))
       | IHistogram h ->
         Buffer.add_string buf ", \"buckets\": [";
         List.iteri
           (fun j (le, n) ->
             if j > 0 then Buffer.add_string buf ", ";
             Buffer.add_string buf
               (Printf.sprintf "{ \"le\": %s, \"count\": %d }"
                  (if le = infinity then "\"+Inf\"" else json_float le)
                  n))
           (Histogram.buckets h);
         Buffer.add_string buf
           (Printf.sprintf "], \"sum\": %s, \"count\": %d"
              (json_float (Histogram.sum h))
              (Histogram.count h)));
      Buffer.add_string buf " }")
    (sorted_metrics t);
  Buffer.add_string buf "\n  ]\n}\n";
  Buffer.contents buf

(* ---- Prometheus text exposition ---- *)

let escape_label_value s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let prom_labels = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

let prom_float x =
  if x = infinity then "+Inf"
  else if x = neg_infinity then "-Inf"
  else json_float x

let to_prometheus t =
  let buf = Buffer.create 1024 in
  let typed = Hashtbl.create 16 in
  List.iter
    (fun m ->
      if not (Hashtbl.mem typed m.name) then begin
        Hashtbl.add typed m.name ();
        if m.help <> "" then
          Buffer.add_string buf
            (Printf.sprintf "# HELP %s %s\n" m.name m.help);
        Buffer.add_string buf
          (Printf.sprintf "# TYPE %s %s\n" m.name (kind_label m.instrument))
      end;
      (match m.instrument with
       | ICounter c ->
         Buffer.add_string buf
           (Printf.sprintf "%s%s %d\n" m.name (prom_labels m.labels)
              (Counter.get c))
       | IFn_counter f | IGauge f ->
         Buffer.add_string buf
           (Printf.sprintf "%s%s %s\n" m.name (prom_labels m.labels)
              (prom_float (f ())))
       | IHistogram h ->
         (* Prometheus histogram buckets are cumulative. *)
         let cum = ref 0 in
         List.iter
           (fun (le, n) ->
             cum := !cum + n;
             Buffer.add_string buf
               (Printf.sprintf "%s_bucket%s %d\n" m.name
                  (prom_labels (m.labels @ [ ("le", prom_float le) ]))
                  !cum))
           (Histogram.buckets h);
         Buffer.add_string buf
           (Printf.sprintf "%s_sum%s %s\n" m.name (prom_labels m.labels)
              (json_float (Histogram.sum h)));
         Buffer.add_string buf
           (Printf.sprintf "%s_count%s %d\n" m.name (prom_labels m.labels)
              (Histogram.count h))))
    (sorted_metrics t);
  Buffer.contents buf
