(* Per-statement cumulative statistics keyed by plan-cache fingerprint.

   Always-on: every statement the service executes records one observation
   here, so the hot path must stay cheap and domain-safe.  Entries live in
   [nshards] hash tables, each behind its own mutex; a record takes exactly
   one shard lock (picked by fingerprint hash), so concurrent pool workers
   touching different statements do not contend, and workers hammering the
   same statement contend only with each other.

   Cardinality is bounded: when a shard is full the coldest entry (smallest
   last-used tick) is evicted and counted.  The per-entry latency histogram
   reuses the registry's bucket ladder, so p50/p95/p99 here agree with what
   a Prometheus scrape would compute from [avq_statement_ms_bucket]. *)

let nshards = 8

(* Bucket ladder shared with Metrics.Histogram.latency_ms_buckets; +Inf is
   implicit as a final slot. *)
let ladder = Metrics.Histogram.latency_ms_buckets

type entry = {
  e_fp : string;
  e_query : string;
  mutable e_calls : int;
  mutable e_errors : (string * int) list;  (* error class -> count *)
  mutable e_total_ms : float;
  mutable e_min_ms : float;
  mutable e_max_ms : float;
  e_hist : int array;  (* latency buckets over [ladder], +Inf last *)
  mutable e_rows : int;
  mutable e_pages : int;
  mutable e_spill_bytes : int;
  mutable e_cache_hits : int;
  mutable e_rebinds : int;
  mutable e_mv_hits : int;
  mutable e_wal_bytes : int;
  mutable e_max_dop : int;
  mutable e_last_used : int;
}

type shard = {
  mu : Mutex.t;
  tbl : (string, entry) Hashtbl.t;
}

type t = {
  shards : shard array;
  cap : int;  (* max entries per shard *)
  clock : int Atomic.t;  (* LRU tick, global across shards *)
  evicted : int Atomic.t;
  recorded : int Atomic.t;  (* total record calls, survives eviction/reset *)
}

let create ?(max_entries = 2048) () =
  if max_entries < nshards then
    invalid_arg "Stmt_stats.create: max_entries below shard count";
  {
    shards =
      Array.init nshards (fun _ ->
          { mu = Mutex.create (); tbl = Hashtbl.create 64 });
    cap = max_entries / nshards;
    clock = Atomic.make 0;
    evicted = Atomic.make 0;
    recorded = Atomic.make 0;
  }

let protect mu f =
  Mutex.lock mu;
  match f () with
  | v ->
    Mutex.unlock mu;
    v
  | exception e ->
    Mutex.unlock mu;
    raise e

let shard_of t fp = t.shards.(Hashtbl.hash fp land (nshards - 1))

let max_query_len = 256

let truncate_query q =
  if String.length q <= max_query_len then q
  else String.sub q 0 (max_query_len - 3) ^ "..."

let fresh_entry fp query tick =
  {
    e_fp = fp;
    e_query = truncate_query query;
    e_calls = 0;
    e_errors = [];
    e_total_ms = 0.;
    e_min_ms = infinity;
    e_max_ms = 0.;
    e_hist = Array.make (Array.length ladder + 1) 0;
    e_rows = 0;
    e_pages = 0;
    e_spill_bytes = 0;
    e_cache_hits = 0;
    e_rebinds = 0;
    e_mv_hits = 0;
    e_wal_bytes = 0;
    e_max_dop = 0;
    e_last_used = tick;
  }

let evict_coldest sh =
  let victim = ref None in
  Hashtbl.iter
    (fun fp e ->
      match !victim with
      | Some (_, cold) when cold.e_last_used <= e.e_last_used -> ()
      | _ -> victim := Some (fp, e))
    sh.tbl;
  match !victim with
  | Some (fp, _) ->
    Hashtbl.remove sh.tbl fp;
    true
  | None -> false

let bucket_slot ms =
  let n = Array.length ladder in
  let rec go i = if i >= n || ms <= ladder.(i) then i else go (i + 1) in
  go 0

let record t ~fp ~query ?error ?(rows = 0) ?(pages = 0) ?(spill_bytes = 0)
    ?(cache_hit = false) ?(rebind = false) ?(mv_hit = false) ?(wal_bytes = 0)
    ?(dop = 1) ~ms () =
  Atomic.incr t.recorded;
  let tick = Atomic.fetch_and_add t.clock 1 in
  let sh = shard_of t fp in
  protect sh.mu (fun () ->
      let e =
        match Hashtbl.find_opt sh.tbl fp with
        | Some e -> e
        | None ->
          if Hashtbl.length sh.tbl >= t.cap && evict_coldest sh then
            Atomic.incr t.evicted;
          let e = fresh_entry fp query tick in
          Hashtbl.add sh.tbl fp e;
          e
      in
      e.e_last_used <- tick;
      e.e_calls <- e.e_calls + 1;
      (match error with
       | None -> ()
       | Some cls ->
         let n = Option.value ~default:0 (List.assoc_opt cls e.e_errors) in
         e.e_errors <- (cls, n + 1) :: List.remove_assoc cls e.e_errors);
      e.e_total_ms <- e.e_total_ms +. ms;
      if ms < e.e_min_ms then e.e_min_ms <- ms;
      if ms > e.e_max_ms then e.e_max_ms <- ms;
      let slot = bucket_slot ms in
      e.e_hist.(slot) <- e.e_hist.(slot) + 1;
      e.e_rows <- e.e_rows + rows;
      e.e_pages <- e.e_pages + pages;
      e.e_spill_bytes <- e.e_spill_bytes + spill_bytes;
      if cache_hit then e.e_cache_hits <- e.e_cache_hits + 1;
      if rebind then e.e_rebinds <- e.e_rebinds + 1;
      if mv_hit then e.e_mv_hits <- e.e_mv_hits + 1;
      e.e_wal_bytes <- e.e_wal_bytes + wal_bytes;
      if dop > e.e_max_dop then e.e_max_dop <- dop)

(* ---- snapshots ---- *)

type stat = {
  fingerprint : string;
  query : string;
  calls : int;
  errors : int;
  error_classes : (string * int) list;
  total_ms : float;
  mean_ms : float;
  min_ms : float;
  max_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  rows : int;
  pages : int;
  spill_bytes : int;
  cache_hits : int;
  rebinds : int;
  mv_hits : int;
  wal_bytes : int;
  max_dop : int;
}

(* Smallest bucket upper bound whose cumulative count reaches rank;
   observations beyond the ladder answer with the exact max instead of
   +Inf. *)
let quantile e q =
  if e.e_calls = 0 then 0.
  else begin
    let rank =
      let r = int_of_float (Float.ceil (q *. float_of_int e.e_calls)) in
      if r < 1 then 1 else r
    in
    let n = Array.length ladder in
    let rec go i cum =
      if i >= n then e.e_max_ms
      else
        let cum = cum + e.e_hist.(i) in
        if cum >= rank then ladder.(i) else go (i + 1) cum
    in
    go 0 0
  end

let stat_of_entry e =
  {
    fingerprint = e.e_fp;
    query = e.e_query;
    calls = e.e_calls;
    errors = List.fold_left (fun acc (_, n) -> acc + n) 0 e.e_errors;
    error_classes = e.e_errors;
    total_ms = e.e_total_ms;
    mean_ms = (if e.e_calls = 0 then 0. else e.e_total_ms /. float_of_int e.e_calls);
    min_ms = (if e.e_calls = 0 then 0. else e.e_min_ms);
    max_ms = e.e_max_ms;
    p50_ms = quantile e 0.50;
    p95_ms = quantile e 0.95;
    p99_ms = quantile e 0.99;
    rows = e.e_rows;
    pages = e.e_pages;
    spill_bytes = e.e_spill_bytes;
    cache_hits = e.e_cache_hits;
    rebinds = e.e_rebinds;
    mv_hits = e.e_mv_hits;
    wal_bytes = e.e_wal_bytes;
    max_dop = e.e_max_dop;
  }

(* Consistent-per-entry snapshot: each shard is locked while its entries are
   copied, but shards are visited one after another — a cross-shard sum can
   lag concurrent records, which is fine for monitoring reads. *)
let snapshot t =
  let acc = ref [] in
  Array.iter
    (fun sh ->
      protect sh.mu (fun () ->
          Hashtbl.iter (fun _ e -> acc := stat_of_entry e :: !acc) sh.tbl))
    t.shards;
  List.sort (fun a b -> compare b.total_ms a.total_ms) !acc

let top ?(n = 10) t =
  let all = snapshot t in
  let rec take k = function
    | [] -> []
    | x :: rest -> if k = 0 then [] else x :: take (k - 1) rest
  in
  take n all

let reset t =
  Array.iter (fun sh -> protect sh.mu (fun () -> Hashtbl.reset sh.tbl)) t.shards

let tracked t =
  Array.fold_left
    (fun acc sh -> acc + protect sh.mu (fun () -> Hashtbl.length sh.tbl))
    0 t.shards

let evictions t = Atomic.get t.evicted
let recorded t = Atomic.get t.recorded

let total_calls t =
  Array.fold_left
    (fun acc sh ->
      acc
      + protect sh.mu (fun () ->
            Hashtbl.fold (fun _ e n -> n + e.e_calls) sh.tbl 0))
    0 t.shards

(* ---- JSON (the /statements endpoint body) ---- *)

let escape_json s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json_top ?(n = 10) t =
  let buf = Buffer.create 1024 in
  let fnum = Metrics.json_float in
  Buffer.add_string buf "{\n  \"statements\": [";
  List.iteri
    (fun i s ->
      Buffer.add_string buf (if i = 0 then "\n    " else ",\n    ");
      Buffer.add_string buf
        (Printf.sprintf
           "{ \"fingerprint\": \"%s\", \"query\": \"%s\", \"calls\": %d, \
            \"errors\": %d, \"total_ms\": %s, \"mean_ms\": %s, \"min_ms\": \
            %s, \"max_ms\": %s, \"p50_ms\": %s, \"p95_ms\": %s, \"p99_ms\": \
            %s, \"rows\": %d, \"pages\": %d, \"spill_bytes\": %d, \
            \"cache_hits\": %d, \"rebinds\": %d, \"mv_hits\": %d, \
            \"wal_bytes\": %d, \"max_dop\": %d }"
           (escape_json s.fingerprint) (escape_json s.query) s.calls s.errors
           (fnum s.total_ms) (fnum s.mean_ms) (fnum s.min_ms) (fnum s.max_ms)
           (fnum s.p50_ms) (fnum s.p95_ms) (fnum s.p99_ms) s.rows s.pages
           s.spill_bytes s.cache_hits s.rebinds s.mv_hits s.wal_bytes
           s.max_dop))
    (top ~n t);
  Buffer.add_string buf
    (Printf.sprintf "\n  ],\n  \"tracked\": %d,\n  \"evictions\": %d\n}\n"
       (tracked t) (evictions t));
  Buffer.contents buf

(* Register the store's own meta-counters on a metrics registry so scrapes
   see the stats subsystem itself. *)
let register_metrics t m =
  Metrics.gauge m ~help:"fingerprints currently tracked by the stats store"
    "avq_stat_statements_tracked" (fun () -> float_of_int (tracked t));
  Metrics.fn_counter m ~help:"stats-store LRU evictions"
    "avq_stat_evictions_total" (fun () -> float_of_int (evictions t));
  Metrics.fn_counter m ~help:"statement observations recorded"
    "avq_stat_recorded_total" (fun () -> float_of_int (recorded t))
