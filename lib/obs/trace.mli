(** Statement tracing: per-statement trace ids, span trees emitted as JSONL,
    and a slow-query log.

    A span line looks like:
    {v
    {"trace":3,"span":7,"parent":5,"name":"execute","status":"ok",
     "ts":1754500000.123456,"dur_ms":4.218,"attrs":{"rows":42}}
    v}

    Live spans ({!start}/{!finish}) measure wall time themselves; {!emit}
    writes a span with externally measured timing, which is how per-operator
    spans are synthesized from the executor's profile tree after the run —
    the executor's hot loop never touches the tracer. *)

type attr = S of string | I of int | F of float | B of bool

type span
type tracer

val create :
  ?slow_ms:float -> ?out:out_channel -> ?owns_out:bool -> unit -> tracer
(** A tracer writing JSONL to [out] (if any).  [slow_ms] arms the slow-query
    log: statements at or above the threshold are reported to stderr.
    [owns_out] makes {!close} close the channel. *)

val create_file : ?slow_ms:float -> string -> tracer
(** Tracer writing to a fresh file at [path]; {!close} closes it. *)

val close : tracer -> unit
(** Flush (and close, if owned) the output channel.  Idempotent enough for
    shutdown paths. *)

val new_trace : tracer -> int
(** Allocate a fresh trace id (one per statement). *)

val start : tracer -> trace_id:int -> ?parent:int -> string -> span
(** Start a live span; wall clock runs until {!finish}. *)

val id : span -> int
(** Span id, for parenting children. *)

val set_attr : span -> string -> attr -> unit

val finish : ?status:string -> span -> float
(** Close the span, write its JSONL line, return its duration in ms.
    [status] defaults to ["ok"]; error paths pass ["error"]. *)

val emit :
  tracer ->
  trace_id:int ->
  ?parent:int ->
  ?status:string ->
  t0:float ->
  dur_ms:float ->
  string ->
  (string * attr) list ->
  int
(** Write a span with externally measured [t0] (Unix seconds) and [dur_ms];
    returns the new span id. *)

val note_slow :
  tracer ->
  ?fingerprint:string ->
  ?sid:int ->
  sql:string ->
  dur_ms:float ->
  trace_id:int ->
  unit ->
  unit
(** Report the statement to the slow-query log if [dur_ms] is at or above the
    tracer's [slow_ms] threshold (no-op otherwise).  [fingerprint] (plan-cache
    hex fingerprint) and [sid] (server session/connection id) are printed when
    given, so slow-log lines can be joined against [avq_stat_statements] and
    per-connection traces. *)

val spans_emitted : tracer -> int
val slow_statements : tracer -> int
