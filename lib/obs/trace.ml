(* Statement tracing: spans grouped into per-statement traces, emitted as
   JSONL.  A span records a monotonic start offset and duration in ms plus a
   small bag of attributes; operator spans are synthesized after the fact from
   the executor's profile tree via [emit], so tracing costs nothing per row. *)

type attr = S of string | I of int | F of float | B of bool

type span = {
  tracer : tracer;
  trace_id : int;
  span_id : int;
  parent : int option;  (* parent span id within the same trace *)
  name : string;
  t0 : float;  (* Unix.gettimeofday at start *)
  mutable attrs : (string * attr) list;
}

and tracer = {
  out : out_channel option;
  owns_out : bool;
  lock : Mutex.t;
  slow_ms : float option;
  next_trace : int Atomic.t;
  next_span : int Atomic.t;
  spans_emitted : int Atomic.t;
  slow_statements : int Atomic.t;
}

let create ?slow_ms ?out ?(owns_out = false) () =
  {
    out;
    owns_out;
    lock = Mutex.create ();
    slow_ms;
    next_trace = Atomic.make 1;
    next_span = Atomic.make 1;
    spans_emitted = Atomic.make 0;
    slow_statements = Atomic.make 0;
  }

let create_file ?slow_ms path =
  create ?slow_ms ~out:(open_out path) ~owns_out:true ()

let close t =
  match t.out with
  | Some oc ->
    Mutex.lock t.lock;
    (try
       flush oc;
       if t.owns_out then close_out oc
     with _ -> ());
    Mutex.unlock t.lock
  | None -> ()

let spans_emitted t = Atomic.get t.spans_emitted
let slow_statements t = Atomic.get t.slow_statements
let new_trace t = Atomic.fetch_and_add t.next_trace 1

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 32 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let attr_json = function
  | S s -> Printf.sprintf "\"%s\"" (escape s)
  | I n -> string_of_int n
  | F x ->
    if Float.is_integer x && Float.abs x < 1e15 then Printf.sprintf "%.0f" x
    else Printf.sprintf "%.6g" x
  | B b -> if b then "true" else "false"

let write_line t ~trace_id ~span_id ~parent ~name ~status ~t0 ~dur_ms attrs =
  Atomic.incr t.spans_emitted;
  match t.out with
  | None -> ()
  | Some oc ->
    let buf = Buffer.create 256 in
    Buffer.add_string buf
      (Printf.sprintf
         "{\"trace\":%d,\"span\":%d,\"parent\":%s,\"name\":\"%s\",\
          \"status\":\"%s\",\"ts\":%.6f,\"dur_ms\":%.3f"
         trace_id span_id
         (match parent with None -> "null" | Some p -> string_of_int p)
         (escape name) (escape status) t0 dur_ms);
    if attrs <> [] then begin
      Buffer.add_string buf ",\"attrs\":{";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf
            (Printf.sprintf "\"%s\":%s" (escape k) (attr_json v)))
        attrs;
      Buffer.add_char buf '}'
    end;
    Buffer.add_string buf "}\n";
    Mutex.lock t.lock;
    (try output_string oc (Buffer.contents buf) with _ -> ());
    Mutex.unlock t.lock

let start t ~trace_id ?parent name =
  {
    tracer = t;
    trace_id;
    span_id = Atomic.fetch_and_add t.next_span 1;
    parent;
    name;
    t0 = Unix.gettimeofday ();
    attrs = [];
  }

let id s = s.span_id
let set_attr s k v = s.attrs <- (k, v) :: s.attrs

let finish ?(status = "ok") s =
  let dur_ms = (Unix.gettimeofday () -. s.t0) *. 1000. in
  write_line s.tracer ~trace_id:s.trace_id ~span_id:s.span_id ~parent:s.parent
    ~name:s.name ~status ~t0:s.t0 ~dur_ms (List.rev s.attrs);
  dur_ms

(* Synthetic span with externally measured timing — operator spans rebuilt
   from the profile tree, and parse/canonicalize durations recorded at
   prepare time. Returns the span id so callers can parent children. *)
let emit t ~trace_id ?parent ?(status = "ok") ~t0 ~dur_ms name attrs =
  let span_id = Atomic.fetch_and_add t.next_span 1 in
  write_line t ~trace_id ~span_id ~parent ~name ~status ~t0 ~dur_ms attrs;
  span_id

let note_slow t ?fingerprint ?sid ~sql ~dur_ms ~trace_id () =
  match t.slow_ms with
  | Some thresh when dur_ms >= thresh ->
    Atomic.incr t.slow_statements;
    let sql =
      if String.length sql > 200 then String.sub sql 0 197 ^ "..." else sql
    in
    let fp =
      match fingerprint with None -> "" | Some f -> Printf.sprintf " fp=%s" f
    in
    let sid =
      match sid with None -> "" | Some s -> Printf.sprintf " sid=%d" s
    in
    Printf.eprintf "[slow %.1fms trace=%d%s%s] %s\n%!" dur_ms trace_id fp sid
      sql
  | _ -> ()
