(** Always-on per-statement cumulative statistics, keyed by the plan-cache
    fingerprint (hex form).

    Sharded over [nshards] mutex-protected hash tables, so one record takes
    one shard lock; safe to call from any domain.  Cardinality is bounded:
    a full shard evicts its least-recently-used fingerprint (counted by
    {!evictions}).  Latency quantiles come from a per-entry fixed-bucket
    histogram over {!Metrics.Histogram.latency_ms_buckets}, so they agree
    with scrape-side quantiles over the registry histogram. *)

type t

val create : ?max_entries:int -> unit -> t
(** [max_entries] bounds fingerprints across all shards (default 2048).
    @raise Invalid_argument when below the shard count. *)

val record :
  t ->
  fp:string ->
  query:string ->
  ?error:string ->
  ?rows:int ->
  ?pages:int ->
  ?spill_bytes:int ->
  ?cache_hit:bool ->
  ?rebind:bool ->
  ?mv_hit:bool ->
  ?wal_bytes:int ->
  ?dop:int ->
  ms:float ->
  unit ->
  unit
(** Record one completed (or failed: [?error] is the error class) statement
    execution under fingerprint [fp].  [query] is the canonical template,
    stored truncated on first touch. *)

type stat = {
  fingerprint : string;
  query : string;
  calls : int;
  errors : int;
  error_classes : (string * int) list;
  total_ms : float;
  mean_ms : float;
  min_ms : float;
  max_ms : float;
  p50_ms : float;
  p95_ms : float;
  p99_ms : float;
  rows : int;
  pages : int;
  spill_bytes : int;
  cache_hits : int;
  rebinds : int;
  mv_hits : int;
  wal_bytes : int;
  max_dop : int;
}

val snapshot : t -> stat list
(** All tracked statements, sorted by [total_ms] descending. *)

val top : ?n:int -> t -> stat list
(** First [n] (default 10) of {!snapshot}. *)

val reset : t -> unit
(** Drop every entry. {!recorded} and {!evictions} keep counting. *)

val tracked : t -> int
(** Fingerprints currently tracked. *)

val evictions : t -> int
(** Entries dropped by the LRU cardinality bound since creation. *)

val recorded : t -> int
(** Total observations recorded since creation (monotonic; survives
    {!reset} and eviction). *)

val total_calls : t -> int
(** Sum of [calls] over live entries.  Equals {!recorded} only while no
    eviction or reset has discarded history — the sum-invariant tests rely
    on exactly that. *)

val to_json_top : ?n:int -> t -> string
(** Top-[n] entries as one JSON document (the [/statements] HTTP body). *)

val register_metrics : t -> Metrics.t -> unit
(** Expose the store's meta-instruments ([avq_stat_statements_tracked],
    [avq_stat_evictions_total], [avq_stat_recorded_total]) on a registry. *)
