exception Protocol_error of string

let () =
  Printexc.register_printer (function
    | Protocol_error m -> Some ("Wire.Protocol_error: " ^ m)
    | _ -> None)

let max_frame = 16 * 1024 * 1024

let write_all fd buf pos len =
  let sent = ref 0 in
  while !sent < len do
    sent := !sent + Unix.write fd buf (pos + !sent) (len - !sent)
  done

let write_frame fd payload =
  let n = String.length payload in
  if n > max_frame then
    raise (Protocol_error (Printf.sprintf "frame too large: %d bytes" n));
  let buf = Bytes.create (4 + n) in
  Bytes.set_int32_be buf 0 (Int32.of_int n);
  Bytes.blit_string payload 0 buf 4 n;
  write_all fd buf 0 (4 + n)

(* [exactly] distinguishes "EOF at a frame boundary" (a clean close, [None])
   from "EOF inside a frame" (the peer died mid-message, an error). *)
let read_exactly fd n ~at_boundary =
  let buf = Bytes.create n in
  let got = ref 0 in
  let eof = ref false in
  while (not !eof) && !got < n do
    match Unix.read fd buf !got (n - !got) with
    | 0 -> eof := true
    | k -> got := !got + k
  done;
  if !got = n then Some buf
  else if !got = 0 && at_boundary then None
  else raise (Protocol_error "peer closed mid-frame")

let read_frame fd =
  match read_exactly fd 4 ~at_boundary:true with
  | None -> None
  | Some hdr ->
    let len = Int32.to_int (Bytes.get_int32_be hdr 0) in
    if len < 0 || len > max_frame then
      raise (Protocol_error (Printf.sprintf "bad frame length: %d" len));
    if len = 0 then Some ""
    else (
      match read_exactly fd len ~at_boundary:false with
      | Some b -> Some (Bytes.unsafe_to_string b)
      | None -> assert false)
