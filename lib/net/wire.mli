(** Length-prefixed framing over a file descriptor.

    One frame = a 4-byte big-endian payload length followed by the payload
    bytes.  Both sides read and write frames only, so message boundaries
    survive TCP's stream semantics; the length cap bounds what a client
    can make the server buffer. *)

exception Protocol_error of string
(** Framing violation: oversized frame, negative length, or a peer that
    closed mid-frame. *)

val max_frame : int
(** Hard payload cap (16 MiB). *)

val write_frame : Unix.file_descr -> string -> unit
(** Write one frame, handling partial writes.
    @raise Protocol_error if the payload exceeds {!max_frame};
    @raise Unix.Unix_error on a dead peer (EPIPE, ECONNRESET...). *)

val read_frame : Unix.file_descr -> string option
(** Read one frame.  [None] on a clean EOF at a frame boundary.
    @raise Protocol_error on EOF mid-frame or a bogus length;
    @raise Unix.Unix_error on socket errors. *)
