(** The [avq serve] front end: a TCP listener multiplexing many client
    connections onto one {!Service.Pool}.

    Each connection gets a lightweight session — its own prepared-statement
    table and [SET]-able limit overrides ({!Service.session_limits}) — while
    planning and execution share the pool's service, so the plan cache is
    amortized across every client.

    Admission control is a bounded in-flight statement count: a statement
    arriving while [max_queue] statements are already queued or running is
    rejected immediately with a typed [resource-exceeded] error instead of
    being buffered without bound, and a draining server rejects all new
    work with [unavailable].  Both rejections are counted in the service's
    error metrics.

    Shutdown is graceful: {!stop} (or a first SIGTERM under
    [Lifecycle.Drain_then_abort]) closes the listener, lets in-flight
    statements finish for up to [drain_grace_ms], then escalates to a
    lifecycle abort so stragglers unwind through the executor's
    batch-boundary poll, and finally closes every client socket.  The
    server borrows the pool — shutting the pool down stays the caller's
    job. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port (tests); see {!port} *)
  max_connections : int;
      (** concurrent sessions; further connects get a typed rejection and
          are closed *)
  max_queue : int;
      (** statements admitted (queued + executing) at once across all
          sessions; the admission-control bound *)
  drain_grace_ms : float;
      (** how long {!stop} waits for in-flight statements before
          escalating to an abort *)
}

val default_config : config
(** 127.0.0.1:5499, 64 connections, 32 in-flight statements, 5 s grace. *)

type t

val start : ?config:config -> Service.Pool.t -> t
(** Bind, listen and spawn the accept loop; connection handlers run on
    their own threads.  Registers [avq_server_*] metrics on the pool's
    service registry.
    @raise Unix.Unix_error if the address cannot be bound. *)

val port : t -> int
(** The bound port (useful with [port = 0]). *)

val connections : t -> int
(** Live sessions right now. *)

val in_flight : t -> int
(** Statements admitted and not yet replied to. *)

val admitted : t -> int

val rejected : t -> int
(** Statements refused by admission control (full queue, draining, or the
    connection cap). *)

val stop : t -> unit
(** Graceful drain as described above.  Idempotent; blocks until the
    accept loop has exited and every session socket is closed. *)

val run : t -> unit
(** Block until a lifecycle drain is requested (signal or
    [Lifecycle.request_drain]), then {!stop}.  The [avq serve] main
    loop. *)
