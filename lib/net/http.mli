(** Minimal HTTP/1.0 observability endpoint ([avq serve --http PORT]).

    Three routes, GET only, [Connection: close] per request:

    - [/metrics] — the metrics registry as Prometheus text (histograms with
      cumulative [_bucket] lines plus [_sum]/[_count]); 503 until
      {!set_ready};
    - [/healthz] — [{"status":"ready"}] with 200 while serving; 503 with
      ["recovering"] before {!set_ready} and ["draining"] once
      {!Lifecycle.draining} flips (SIGTERM received);
    - [/statements?n=K] — top-K cumulative statement statistics as JSON
      (same data as the [avq_stat_statements] system view).

    Connections are handled one thread each — this serves a scraper every
    few seconds, not traffic. *)

type t

val start :
  ?host:string ->
  port:int ->
  metrics:(unit -> string) ->
  statements:(n:int -> string) ->
  unit ->
  t
(** Bind and start accepting (port 0 picks an ephemeral port — see
    {!port}).  Starts in the [recovering] state. *)

val set_ready : t -> unit
(** Flip [/healthz] to 200 and open [/metrics] + [/statements] (call once
    recovery finished and the TCP front end is listening). *)

val port : t -> int
val requests : t -> int
(** Requests accepted since start (any route, any status). *)

val stop : t -> unit
(** Stop accepting and close the listener.  Idempotent. *)
