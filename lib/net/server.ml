type config = {
  host : string;
  port : int;
  max_connections : int;
  max_queue : int;
  drain_grace_ms : float;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 5499;
    max_connections = 64;
    max_queue = 32;
    drain_grace_ms = 5_000.;
  }

type session = {
  id : int;
  fd : Unix.file_descr;
  sm : Mutex.t;
  mutable fd_closed : bool;
  mutable limits : Service.session_limits;
  prepared : (string, Service.stmt) Hashtbl.t;
  mutable thread : Thread.t option;
}

type t = {
  cfg : config;
  pool : Service.Pool.t;
  svc : Service.t;
  listen_fd : Unix.file_descr;
  bound_port : int;
  stop_r : Unix.file_descr;  (* server-local wake pipe for the accept loop *)
  stop_w : Unix.file_descr;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  in_flight_n : int Atomic.t;
  admitted_n : int Atomic.t;
  rejected_n : int Atomic.t;
  next_id : int Atomic.t;
  tm : Mutex.t;
  sessions : (int, session) Hashtbl.t;
  mutable acceptor : Thread.t option;
}

let port t = t.bound_port
let in_flight t = Atomic.get t.in_flight_n
let admitted t = Atomic.get t.admitted_n
let rejected t = Atomic.get t.rejected_n

let connections t =
  Mutex.protect t.tm (fun () -> Hashtbl.length t.sessions)

(* Only the handler thread ever [close]s its fd (closing from another
   thread would not wake a blocked read, and risks fd reuse); [stop]
   instead [shutdown]s the socket, which does wake the reader. *)
let close_session t sess =
  let close_now =
    Mutex.protect sess.sm (fun () ->
        if sess.fd_closed then false
        else (
          sess.fd_closed <- true;
          true))
  in
  if close_now then (try Unix.close sess.fd with Unix.Unix_error _ -> ());
  Mutex.protect t.tm (fun () -> Hashtbl.remove t.sessions sess.id)

let shutdown_session sess =
  Mutex.protect sess.sm (fun () ->
      if not sess.fd_closed then
        try Unix.shutdown sess.fd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ())

(* ---- replies ---- *)

(* A reply larger than the wire's frame cap must not fail opaquely (the old
   behavior: [write_frame] raised, the handler tore the connection down).
   [write_frame] checks the size before writing any bytes, so the stream is
   still in frame-sync — replace the oversized reply with a typed
   [resource-exceeded] error, counted in [avq_errors_total]. *)
let send t sess reply =
  let payload = Protocol.encode_reply reply in
  if String.length payload > Wire.max_frame then begin
    let e =
      Avq_error.Resource_exceeded
        { resource = "reply-frame"; limit = Wire.max_frame;
          used = String.length payload }
    in
    Service.record_error t.svc e;
    Wire.write_frame sess.fd
      (Protocol.encode_reply
         (Protocol.Err
            { kind = Avq_error.kind_label e;
              detail =
                Printf.sprintf
                  "reply of %d bytes exceeds the %d-byte frame cap; narrow \
                   the result (LIMIT, fewer columns) and retry"
                  (String.length payload) Wire.max_frame }))
  end
  else Wire.write_frame sess.fd payload

let tag_reply ?(source = "tag") ~ms body =
  Protocol.Result { source; rows = 0; ms; body }

let error_reply e =
  match Avq_error.of_exn e with
  | Some t ->
    Protocol.Err { kind = Avq_error.kind_label t; detail = Avq_error.to_string t }
  | None -> (
    match Replay.describe_error e with
    | detail -> Protocol.Err { kind = "bad-statement"; detail }
    | exception _ ->
      Protocol.Err { kind = "internal"; detail = Printexc.to_string e })

exception Disconnected

(* ---- admission control ----

   One bounded count of statements admitted-and-unfinished across every
   session.  Rejections are typed and counted in the service's error
   metrics so [avq_errors_total{kind=...}] covers them too. *)

let try_admit t =
  if Atomic.get t.stopping || Lifecycle.draining () then (
    Atomic.incr t.rejected_n;
    let e = Avq_error.Unavailable "server is draining" in
    Service.record_error t.svc e;
    Error (Protocol.Err { kind = Avq_error.kind_label e; detail = Avq_error.to_string e }))
  else
    let n = Atomic.fetch_and_add t.in_flight_n 1 in
    if n >= t.cfg.max_queue then (
      ignore (Atomic.fetch_and_add t.in_flight_n (-1));
      Atomic.incr t.rejected_n;
      let e =
        Avq_error.Resource_exceeded
          { resource = "admission-queue"; limit = t.cfg.max_queue; used = n + 1 }
      in
      Service.record_error t.svc e;
      Error
        (Protocol.Err { kind = Avq_error.kind_label e; detail = Avq_error.to_string e }))
    else (
      Atomic.incr t.admitted_n;
      Ok ())

let finish t = ignore (Atomic.fetch_and_add t.in_flight_n (-1))

(* ---- future waiting with disconnect detection ----

   While a pool worker runs the statement, the handler thread watches its
   client socket: an EOF there (the client vanished) cancels the job so a
   dead connection stops holding a worker and an admission slot.  Once
   pipelined bytes show up on the socket we stop selecting on it (it would
   spin) and just poll the future. *)

let wait_future sess fut =
  let watch = ref true in
  let buf = Bytes.create 1 in
  while not (Service.Pool.peek fut) do
    if !watch then (
      match Unix.select [ sess.fd ] [] [] 0.01 with
      | [ _ ], _, _ -> (
        match Unix.recv sess.fd buf 0 1 [ Unix.MSG_PEEK ] with
        | 0 ->
          Service.Pool.cancel fut;
          raise Disconnected
        | _ -> watch := false
        | exception Unix.Unix_error _ ->
          Service.Pool.cancel fut;
          raise Disconnected)
      | _ -> ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
    else Thread.delay 0.005
  done

(* ---- session variables ---- *)

let set_limit limits name value =
  let default = String.lowercase_ascii value = "default" in
  let fopt () =
    if default || value = "0" then None
    else
      match float_of_string_opt value with
      | Some f when f > 0. -> Some f
      | _ -> Avq_error.error (Avq_error.Bad_statement ("bad SET value: " ^ value))
  and iopt ~zero_clears () =
    if default || (zero_clears && value = "0") then None
    else
      match int_of_string_opt value with
      | Some i when i > 0 -> Some i
      | _ -> Avq_error.error (Avq_error.Bad_statement ("bad SET value: " ^ value))
  in
  match String.lowercase_ascii name with
  | "timeout_ms" -> { limits with Service.sl_timeout_ms = fopt () }
  | "spill_quota" -> { limits with Service.sl_spill_quota = iopt ~zero_clears:true () }
  | "dop" -> { limits with Service.sl_dop = iopt ~zero_clears:false () }
  | "work_mem" -> { limits with Service.sl_work_mem = iopt ~zero_clears:false () }
  | _ -> Avq_error.error (Avq_error.Bad_statement ("unknown session variable: " ^ name))

(* ---- statement execution ---- *)

let result_of_execution (planned, rel, _io) ms =
  Protocol.Result
    {
      source = Service.source_label planned.Service.source;
      rows = Relation.cardinality rel;
      ms;
      body = Format.asprintf "%a" Relation.pp rel;
    }

let run_admitted t work =
  match try_admit t with
  | Error reply -> reply
  | Ok () ->
    Fun.protect ~finally:(fun () -> finish t) (fun () ->
        let t0 = Unix.gettimeofday () in
        match work () with
        | reply -> reply ((Unix.gettimeofday () -. t0) *. 1000.)
        | exception Disconnected -> raise Disconnected
        | exception e -> error_reply e)

let exec_query t sess sql =
  match Replay.classify sql with
  | Replay.Directive_metrics fmt ->
    tag_reply ~source:"text" ~ms:0. (Replay.run_metrics t.svc fmt)
  | Replay.Directive_stats kind ->
    tag_reply ~source:"text" ~ms:0. (Replay.run_stats t.svc kind)
  | Replay.Directive_matviews ->
    tag_reply ~source:"text" ~ms:0. (Service.render_matviews t.svc)
  | Replay.Explain_analyze inner ->
    run_admitted t (fun () ->
        match Replay.run_explain_analyze t.svc inner with
        | rendered -> fun ms -> tag_reply ~source:"text" ~ms rendered
        | exception Replay.Analysis_failed (e, partial) ->
          fun _ms ->
            (match error_reply e with
            | Protocol.Err { kind; detail } ->
              Protocol.Err { kind; detail = detail ^ "\n" ^ partial }
            | r -> r))
  | Replay.Directive_checkpoint ->
    run_admitted t (fun () ->
        let tag = Service.checkpoint t.svc in
        fun ms -> tag_reply ~ms tag)
  | Replay.Update stmt ->
    run_admitted t (fun () ->
        let tag = Service.exec_statement t.svc stmt in
        fun ms -> tag_reply ~ms tag)
  | Replay.Plain stmt ->
    run_admitted t (fun () ->
        let fut = Service.Pool.submit_sql ~limits:sess.limits t.pool stmt in
        wait_future sess fut;
        let res = Service.Pool.await fut in
        fun ms -> result_of_execution res ms)

let exec_prepared t sess name params =
  match Hashtbl.find_opt sess.prepared name with
  | None ->
    error_reply
      (Avq_error.Error (Avq_error.Bad_statement ("no prepared statement " ^ name)))
  | Some stmt ->
    run_admitted t (fun () ->
        let params = if params = [] then None else Some params in
        let fut = Service.Pool.submit ?params ~limits:sess.limits t.pool stmt in
        wait_future sess fut;
        let res = Service.Pool.await fut in
        fun ms -> result_of_execution res ms)

let handle_request t sess req =
  match req with
  | Protocol.Close ->
    send t sess (tag_reply ~ms:0. "BYE");
    false
  | Protocol.Set (name, value) ->
    (try
       sess.limits <- set_limit sess.limits name value;
       send t sess (tag_reply ~ms:0. "SET")
     with e -> send t sess (error_reply e));
    true
  | Protocol.Prepare (name, sql) ->
    (try
       let stmt = Service.prepare t.svc sql in
       Hashtbl.replace sess.prepared name stmt;
       send t sess (tag_reply ~ms:0. "PREPARE")
     with e -> send t sess (error_reply e));
    true
  | Protocol.Exec_prepared (name, params) ->
    send t sess (exec_prepared t sess name params);
    true
  | Protocol.Query sql ->
    send t sess (exec_query t sess sql);
    true

let handler t sess =
  let continue = ref true in
  (try
     send t sess
       (Protocol.Hello { server = "avq"; workers = Service.Pool.workers t.pool });
     while !continue do
       match Wire.read_frame sess.fd with
       | None -> continue := false
       | Some payload -> (
         match Protocol.decode_request payload with
         | req -> continue := handle_request t sess req
         | exception Protocol.Protocol_error m ->
           send t sess (Protocol.Err { kind = "protocol"; detail = m }))
     done
   with
  | Disconnected | Wire.Protocol_error _ | Unix.Unix_error _ | Sys_error _ -> ());
  close_session t sess

(* ---- accept loop ---- *)

let accept_one t =
  let fd, _addr = Unix.accept ~cloexec:true t.listen_fd in
  if Atomic.get t.stopping || Lifecycle.draining () then (
    Atomic.incr t.rejected_n;
    let e = Avq_error.Unavailable "server is draining" in
    Service.record_error t.svc e;
    (try
       Wire.write_frame fd
         (Protocol.encode_reply
            (Protocol.Err
               { kind = Avq_error.kind_label e; detail = Avq_error.to_string e }))
     with _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ())
  else if connections t >= t.cfg.max_connections then (
    Atomic.incr t.rejected_n;
    let e =
      Avq_error.Resource_exceeded
        {
          resource = "connections";
          limit = t.cfg.max_connections;
          used = connections t + 1;
        }
    in
    Service.record_error t.svc e;
    (try
       Wire.write_frame fd
         (Protocol.encode_reply
            (Protocol.Err
               { kind = Avq_error.kind_label e; detail = Avq_error.to_string e }))
     with _ -> ());
    try Unix.close fd with Unix.Unix_error _ -> ())
  else begin
    let id = Atomic.fetch_and_add t.next_id 1 in
    let sess =
      {
        id;
        fd;
        sm = Mutex.create ();
        fd_closed = false;
        limits = { Service.no_limits with Service.sl_sid = Some id };
        prepared = Hashtbl.create 7;
        thread = None;
      }
    in
    Mutex.protect t.tm (fun () -> Hashtbl.replace t.sessions sess.id sess);
    sess.thread <- Some (Thread.create (fun () -> handler t sess) ())
  end

(* Keeps running while merely draining — connects landing in that window
   must be {e answered} with a typed [unavailable] (in [accept_one]) rather
   than left hanging in the backlog.  Only [stop] ends the loop. *)
let accept_loop t =
  let stop = ref false in
  while not !stop do
    if Atomic.get t.stopping then stop := true
    else
      match Unix.select [ t.listen_fd; t.stop_r ] [] [] 1.0 with
      | ready, _, _ ->
        if List.mem t.stop_r ready then stop := true
        else if List.mem t.listen_fd ready then (
          try accept_one t with
          | Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _) -> ()
          | Unix.Unix_error _ when Atomic.get t.stopping -> stop := true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

(* ---- lifecycle ---- *)

let start ?(config = default_config) pool =
  let svc = Service.Pool.service pool in
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd
       (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
     Unix.listen listen_fd 128
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> config.port
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      cfg = config;
      pool;
      svc;
      listen_fd;
      bound_port;
      stop_r;
      stop_w;
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      in_flight_n = Atomic.make 0;
      admitted_n = Atomic.make 0;
      rejected_n = Atomic.make 0;
      next_id = Atomic.make 0;
      tm = Mutex.create ();
      sessions = Hashtbl.create 16;
      acceptor = None;
    }
  in
  let m = Service.metrics svc in
  Metrics.gauge m ~help:"live client sessions" "avq_server_connections" (fun () ->
      float_of_int (connections t));
  Metrics.gauge m ~help:"statements admitted and not yet replied to"
    "avq_server_in_flight" (fun () -> float_of_int (in_flight t));
  Metrics.fn_counter m ~help:"statements admitted" "avq_server_admitted_total"
    (fun () -> float_of_int (admitted t));
  Metrics.fn_counter m
    ~help:"statements or connections refused by admission control"
    "avq_server_rejected_total"
    (fun () -> float_of_int (rejected t));
  (* [avq_server_sessions] source: snapshot the live session table (the
     hashtable is tiny — max_connections entries — so copying under [tm]
     is cheap). *)
  Sysview.set_session_provider (fun () ->
      let sessions =
        Mutex.protect t.tm (fun () ->
            Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [])
      in
      List.map
        (fun sess ->
          let l = sess.limits in
          { Sysview.ss_sid = sess.id;
            ss_dop = Option.value ~default:(-1) l.Service.sl_dop;
            ss_work_mem = Option.value ~default:(-1) l.Service.sl_work_mem;
            ss_timeout_ms =
              Option.value ~default:(-1.) l.Service.sl_timeout_ms;
            ss_spill_quota =
              Option.value ~default:(-1) l.Service.sl_spill_quota;
            ss_prepared = Hashtbl.length sess.prepared })
        sessions);
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let wait_in_flight t deadline =
  while Atomic.get t.in_flight_n > 0 && Unix.gettimeofday () < deadline do
    Thread.delay 0.01
  done

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Atomic.set t.stopping true;
    (* wake and join the accept loop, then close the listener *)
    (try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.acceptor;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (* drain: in-flight statements may finish within the grace window... *)
    let grace = t.cfg.drain_grace_ms /. 1000. in
    wait_in_flight t (Unix.gettimeofday () +. grace);
    (* ...then stragglers are aborted at their next batch boundary *)
    if Atomic.get t.in_flight_n > 0 then begin
      Lifecycle.request_abort ();
      wait_in_flight t (Unix.gettimeofday () +. grace)
    end;
    (* cut the sessions (wakes any blocked reads) and join their handlers;
       each handler closes its own fd on the way out *)
    let sessions =
      Mutex.protect t.tm (fun () ->
          Hashtbl.fold (fun _ s acc -> s :: acc) t.sessions [])
    in
    List.iter shutdown_session sessions;
    List.iter (fun s -> Option.iter Thread.join s.thread) sessions;
    Sysview.clear_session_provider ();
    (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
    try Unix.close t.stop_w with Unix.Unix_error _ -> ()
  end

let run t =
  let wake = Lifecycle.wake_fd () in
  while not (Lifecycle.draining () || Atomic.get t.stopping) do
    (match Unix.select [ wake ] [] [] 0.5 with
    | [ _ ], _, _ -> Lifecycle.drain_wake ()
    | _ -> ()
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
  done;
  stop t
