(** Load generator for E20 and the CI server-smoke job.

    [connections] client threads each drive one connection through
    [statements] statements drawn round-robin from [sqls].  Closed-loop
    mode sends the next statement as soon as the reply lands (measures
    capacity); open-loop mode paces sends at a fixed aggregate rate
    regardless of reply latency (measures behaviour under offered load,
    where admission control matters). *)

type mode =
  | Closed
  | Open_rate of float  (** target statements/second across all connections *)

type config = {
  host : string;
  port : int;
  connections : int;
  statements : int;  (** per connection *)
  mode : mode;
  sqls : string list;
}

val default_config : config
(** localhost:5499, 8 connections, 32 statements each, closed loop, one
    trivial aggregate query. *)

type stats = {
  ok : int;
  errors : int;  (** failed statements other than admission rejections *)
  rejected : int;
      (** admission rejections: [resource-exceeded] and [unavailable]
          replies, plus refused connections *)
  wall_ms : float;
  latencies_ms : float array;  (** per-ok-statement, sorted ascending *)
}

val run : config -> stats

val percentile : float array -> float -> float
(** Nearest-rank percentile on a sorted array ([percentile lat 99.]);
    0 on an empty array. *)

val throughput : stats -> float
(** Completed (ok) statements per second of wall time. *)

val pp : Format.formatter -> stats -> unit
(** One line: ok / errors / rejected / throughput / p50 / p95 / p99. *)
