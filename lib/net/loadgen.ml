type mode = Closed | Open_rate of float

type config = {
  host : string;
  port : int;
  connections : int;
  statements : int;
  mode : mode;
  sqls : string list;
}

let default_config =
  {
    host = "127.0.0.1";
    port = 5499;
    connections = 8;
    statements = 32;
    mode = Closed;
    sqls =
      [
        "SELECT e.dno AS dno, COUNT(*) AS heads FROM emp e WHERE e.sal > 1000 \
         GROUP BY e.dno";
        "SELECT e.dno AS dno, AVG(e.sal) AS avg_sal FROM emp e WHERE e.age > 30 \
         GROUP BY e.dno";
      ];
  }

type stats = {
  ok : int;
  errors : int;
  rejected : int;
  wall_ms : float;
  latencies_ms : float array;
}

type tally = { mutable t_ok : int; mutable t_err : int; mutable t_rej : int }

let is_rejection kind = kind = "resource-exceeded" || kind = "unavailable"

(* One connection's life: dial, run its statement budget, close.  In open
   loop each connection fires at [interval] since its own start, skipping
   sleeps it is already late for (the offered rate stays fixed even when
   the server lags — that is the point of open loop). *)
let drive cfg tally lats lock conn_idx =
  let sqls = Array.of_list cfg.sqls in
  let interval =
    match cfg.mode with
    | Closed -> 0.
    | Open_rate r -> float_of_int cfg.connections /. r
  in
  match Client.connect ~host:cfg.host ~port:cfg.port () with
  | exception (Wire.Protocol_error _ | Unix.Unix_error _) ->
    Mutex.protect lock (fun () -> tally.t_rej <- tally.t_rej + cfg.statements)
  | client ->
    let my_lats = ref [] in
    let my = { t_ok = 0; t_err = 0; t_rej = 0 } in
    let start = Unix.gettimeofday () in
    (try
       for i = 0 to cfg.statements - 1 do
         if interval > 0. then begin
           let due = start +. (float_of_int i *. interval) in
           let wait = due -. Unix.gettimeofday () in
           if wait > 0. then Thread.delay wait
         end;
         let sql = sqls.((conn_idx + i) mod Array.length sqls) in
         let t0 = Unix.gettimeofday () in
         match Client.query client sql with
         | Protocol.Result _ ->
           my.t_ok <- my.t_ok + 1;
           my_lats := ((Unix.gettimeofday () -. t0) *. 1000.) :: !my_lats
         | Protocol.Err { kind; _ } when is_rejection kind ->
           my.t_rej <- my.t_rej + 1
         | Protocol.Err _ -> my.t_err <- my.t_err + 1
         | Protocol.Hello _ -> my.t_err <- my.t_err + 1
       done;
       Client.close client
     with Wire.Protocol_error _ | Protocol.Protocol_error _ | Unix.Unix_error _ ->
       my.t_err <- my.t_err + 1;
       Client.abort client);
    Mutex.protect lock (fun () ->
        tally.t_ok <- tally.t_ok + my.t_ok;
        tally.t_err <- tally.t_err + my.t_err;
        tally.t_rej <- tally.t_rej + my.t_rej;
        lats := List.rev_append !my_lats !lats)

let run cfg =
  let tally = { t_ok = 0; t_err = 0; t_rej = 0 } in
  let lats = ref [] in
  let lock = Mutex.create () in
  let t0 = Unix.gettimeofday () in
  let threads =
    List.init cfg.connections (fun i ->
        Thread.create (fun () -> drive cfg tally lats lock i) ())
  in
  List.iter Thread.join threads;
  let wall_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let latencies_ms = Array.of_list !lats in
  Array.sort compare latencies_ms;
  {
    ok = tally.t_ok;
    errors = tally.t_err;
    rejected = tally.t_rej;
    wall_ms;
    latencies_ms;
  }

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else
    let rank = int_of_float (ceil (p /. 100. *. float_of_int n)) in
    sorted.(max 0 (min (n - 1) (rank - 1)))

let throughput s = if s.wall_ms <= 0. then 0. else float_of_int s.ok /. (s.wall_ms /. 1000.)

let pp ppf s =
  Format.fprintf ppf
    "ok=%d errors=%d rejected=%d throughput=%.1f/s p50=%.2fms p95=%.2fms p99=%.2fms"
    s.ok s.errors s.rejected (throughput s)
    (percentile s.latencies_ms 50.)
    (percentile s.latencies_ms 95.)
    (percentile s.latencies_ms 99.)
