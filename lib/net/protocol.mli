(** The avq wire protocol: typed requests and replies over {!Wire} frames.

    Deliberately minimal — a 1-byte opcode and newline-separated text
    fields (parameters are netstring-framed so any byte is legal in a
    string value).  One request gets exactly one reply; the server sends a
    [Hello] once per connection before the first request. *)

type request =
  | Query of string
      (** any session statement: SELECT, INSERT / matview DDL,
          [EXPLAIN ANALYZE], [\metrics], [\dm] *)
  | Set of string * string
      (** session variable: [timeout_ms], [spill_quota], [dop],
          [work_mem]; value ["default"] (or ["0"] for the first two)
          resets to the server default *)
  | Prepare of string * string  (** name, SQL template *)
  | Exec_prepared of string * Value.t list  (** name, parameter vector *)
  | Close

type reply =
  | Hello of { server : string; workers : int }
  | Result of { source : string; rows : int; ms : float; body : string }
      (** [source] is the plan-cache source label (or ["tag"] / ["text"]
          for DDL tags and directive output); [ms] is server-side wall
          time for the statement *)
  | Err of { kind : string; detail : string }
      (** [kind] is the {!Avq_error.kind_label} taxonomy tag, or
          ["protocol"] / ["internal"] *)

exception Protocol_error of string
(** Malformed payload (unknown opcode, missing field, bad value tag). *)

val encode_request : request -> string
val decode_request : string -> request
val encode_reply : reply -> string
val decode_reply : string -> reply

val render_value : Value.t -> string
(** Tagged, lossless parameter encoding ([i:42], [f:0x1.8p1], [s:abc],
    [b:true], [d:19000]); {!parse_value} inverts it exactly. *)

val parse_value : string -> Value.t
