type t = {
  fd : Unix.file_descr;
  server_name : string;
  server_workers : int;
  mutable closed : bool;
}

let connect ?(host = "127.0.0.1") ~port () =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port))
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  match
    (try Wire.read_frame fd
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e)
  with
  | Some payload -> (
    match Protocol.decode_reply payload with
    | Protocol.Hello { server; workers } ->
      { fd; server_name = server; server_workers = workers; closed = false }
    | Protocol.Err { kind; detail } ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (Wire.Protocol_error (Printf.sprintf "rejected: %s: %s" kind detail))
    | Protocol.Result _ ->
      (try Unix.close fd with Unix.Unix_error _ -> ());
      raise (Wire.Protocol_error "expected Hello"))
  | None ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    raise (Wire.Protocol_error "server closed before Hello")

let server t = t.server_name
let workers t = t.server_workers
let fd t = t.fd

let roundtrip t req =
  Wire.write_frame t.fd (Protocol.encode_request req);
  match Wire.read_frame t.fd with
  | Some payload -> Protocol.decode_reply payload
  | None -> raise (Wire.Protocol_error "server closed mid-conversation")

let query t sql = roundtrip t (Protocol.Query sql)
let set t name value = roundtrip t (Protocol.Set (name, value))
let prepare t name sql = roundtrip t (Protocol.Prepare (name, sql))
let exec_prepared t name params = roundtrip t (Protocol.Exec_prepared (name, params))

let abort t =
  if not t.closed then (
    t.closed <- true;
    try Unix.close t.fd with Unix.Unix_error _ -> ())

let close t =
  if not t.closed then (
    (try ignore (roundtrip t Protocol.Close)
     with Wire.Protocol_error _ | Protocol.Protocol_error _ | Unix.Unix_error _ -> ());
    abort t)
