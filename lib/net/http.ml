(* Minimal HTTP/1.0 observability endpoint: GET /metrics (Prometheus text),
   GET /healthz (readiness), GET /statements?n=K (top-K statement stats as
   JSON).  One thread per connection, [Connection: close] semantics — a
   scrape every few seconds from one or two collectors, not a web server.
   Anything but a GET of a known path is answered 404/405 so a misdirected
   client fails loudly. *)

type state = Recovering | Ready

type t = {
  listen_fd : Unix.file_descr;
  bound_port : int;
  state : state Atomic.t;
  stopping : bool Atomic.t;
  stopped : bool Atomic.t;
  stop_r : Unix.file_descr;
  stop_w : Unix.file_descr;
  metrics : unit -> string;
  statements : n:int -> string;
  requests_n : int Atomic.t;
  mutable acceptor : Thread.t option;
}

let port t = t.bound_port
let requests t = Atomic.get t.requests_n
let set_ready t = Atomic.set t.state Ready

let status_line = function
  | 200 -> "200 OK"
  | 400 -> "400 Bad Request"
  | 404 -> "404 Not Found"
  | 405 -> "405 Method Not Allowed"
  | 503 -> "503 Service Unavailable"
  | c -> Printf.sprintf "%d Status" c

let respond fd ~code ~content_type body =
  let head =
    Printf.sprintf
      "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\n\
       Connection: close\r\n\r\n"
      (status_line code) content_type (String.length body)
  in
  let msg = head ^ body in
  let b = Bytes.unsafe_of_string msg in
  let n = Bytes.length b in
  let sent = ref 0 in
  try
    while !sent < n do
      sent := !sent + Unix.write fd b !sent (n - !sent)
    done
  with Unix.Unix_error _ -> ()

(* Read up to the end of the request head (CRLFCRLF); we only need the
   request line, but draining the headers keeps clients that wait for us
   to read them happy.  Bounded so a garbage client cannot balloon us. *)
let read_head fd =
  let buf = Buffer.create 256 in
  let chunk = Bytes.create 512 in
  let rec go () =
    if Buffer.length buf > 16_384 then Buffer.contents buf
    else
      let seen = Buffer.contents buf in
      let have_terminator =
        let n = String.length seen in
        n >= 4 && String.sub seen (n - 4) 4 = "\r\n\r\n"
        || (n >= 2 && String.sub seen (n - 2) 2 = "\n\n")
      in
      if have_terminator then seen
      else
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> seen
        | n ->
          Buffer.add_subbytes buf chunk 0 n;
          go ()
        | exception Unix.Unix_error _ -> seen
  in
  go ()

let parse_request head =
  match String.index_opt head '\n' with
  | None -> None
  | Some i ->
    let line = String.trim (String.sub head 0 i) in
    (match String.split_on_char ' ' line with
     | meth :: target :: _ -> Some (meth, target)
     | _ -> None)

(* /statements?n=K — everything else about the query string is ignored. *)
let parse_n target ~default =
  match String.index_opt target '?' with
  | None -> default
  | Some q ->
    let qs = String.sub target (q + 1) (String.length target - q - 1) in
    List.fold_left
      (fun acc kv ->
        match String.split_on_char '=' kv with
        | [ "n"; v ] -> ( try max 1 (int_of_string v) with Failure _ -> acc)
        | _ -> acc)
      default
      (String.split_on_char '&' qs)

let path_of target =
  match String.index_opt target '?' with
  | None -> target
  | Some q -> String.sub target 0 q

let handle t fd =
  Atomic.incr t.requests_n;
  let head = read_head fd in
  (match parse_request head with
  | None -> respond fd ~code:400 ~content_type:"text/plain" "bad request\n"
  | Some (meth, target) when meth <> "GET" ->
    ignore target;
    respond fd ~code:405 ~content_type:"text/plain" "method not allowed\n"
  | Some (_, target) -> (
    let draining = Lifecycle.draining () in
    let state = Atomic.get t.state in
    match path_of target with
    | "/healthz" ->
      (* Readiness for load balancers and the CI smoke: 200 only while
         serving; recovery and drain both answer 503 with the phase
         spelled out. *)
      let code, phase =
        match (state, draining) with
        | Recovering, _ -> (503, "recovering")
        | Ready, true -> (503, "draining")
        | Ready, false -> (200, "ready")
      in
      respond fd ~code ~content_type:"application/json"
        (Printf.sprintf "{\"status\":\"%s\"}\n" phase)
    | "/metrics" ->
      if state <> Ready then
        respond fd ~code:503 ~content_type:"text/plain" "recovering\n"
      else
        respond fd ~code:200
          ~content_type:"text/plain; version=0.0.4" (t.metrics ())
    | "/statements" ->
      if state <> Ready then
        respond fd ~code:503 ~content_type:"text/plain" "recovering\n"
      else
        respond fd ~code:200 ~content_type:"application/json"
          (t.statements ~n:(parse_n target ~default:10))
    | _ -> respond fd ~code:404 ~content_type:"text/plain" "not found\n"));
  try Unix.close fd with Unix.Unix_error _ -> ()

let accept_loop t =
  let stop = ref false in
  while not !stop do
    if Atomic.get t.stopping then stop := true
    else
      match Unix.select [ t.listen_fd; t.stop_r ] [] [] 1.0 with
      | ready, _, _ ->
        if List.mem t.stop_r ready then stop := true
        else if List.mem t.listen_fd ready then (
          match Unix.accept ~cloexec:true t.listen_fd with
          | fd, _ -> ignore (Thread.create (fun () -> handle t fd) ())
          | exception Unix.Unix_error ((Unix.EINTR | Unix.ECONNABORTED), _, _)
            -> ()
          | exception Unix.Unix_error _ when Atomic.get t.stopping ->
            stop := true)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let start ?(host = "127.0.0.1") ~port ~metrics ~statements () =
  let listen_fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  (try
     Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname listen_fd with
    | Unix.ADDR_INET (_, p) -> p
    | Unix.ADDR_UNIX _ -> port
  in
  let stop_r, stop_w = Unix.pipe ~cloexec:true () in
  let t =
    {
      listen_fd;
      bound_port;
      state = Atomic.make Recovering;
      stopping = Atomic.make false;
      stopped = Atomic.make false;
      stop_r;
      stop_w;
      metrics;
      statements;
      requests_n = Atomic.make 0;
      acceptor = None;
    }
  in
  t.acceptor <- Some (Thread.create (fun () -> accept_loop t) ());
  t

let stop t =
  if not (Atomic.exchange t.stopped true) then begin
    Atomic.set t.stopping true;
    (try ignore (Unix.write t.stop_w (Bytes.of_string "x") 0 1)
     with Unix.Unix_error _ -> ());
    Option.iter Thread.join t.acceptor;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    (try Unix.close t.stop_r with Unix.Unix_error _ -> ());
    try Unix.close t.stop_w with Unix.Unix_error _ -> ()
  end
