type request =
  | Query of string
  | Set of string * string
  | Prepare of string * string
  | Exec_prepared of string * Value.t list
  | Close

type reply =
  | Hello of { server : string; workers : int }
  | Result of { source : string; rows : int; ms : float; body : string }
  | Err of { kind : string; detail : string }

exception Protocol_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Protocol_error m)) fmt

(* ---- values ----
   Tagged so the type survives the round trip (an untagged "42" could be an
   Int or a String) and floats go through %h (hex, exact). *)

let render_value = function
  | Value.Int i -> Printf.sprintf "i:%d" i
  | Value.Float f -> Printf.sprintf "f:%h" f
  | Value.String s -> "s:" ^ s
  | Value.Bool b -> Printf.sprintf "b:%b" b
  | Value.Date d -> Printf.sprintf "d:%d" d

let parse_value s =
  if String.length s < 2 || s.[1] <> ':' then fail "bad value literal %S" s;
  let body = String.sub s 2 (String.length s - 2) in
  let num of_string kind =
    match of_string body with
    | Some v -> v
    | None -> fail "bad %s literal %S" kind s
  in
  match s.[0] with
  | 'i' -> Value.Int (num int_of_string_opt "int")
  | 'f' -> Value.Float (num float_of_string_opt "float")
  | 's' -> Value.String body
  | 'b' -> Value.Bool (num bool_of_string_opt "bool")
  | 'd' -> Value.Date (num int_of_string_opt "date")
  | c -> fail "unknown value tag %C" c

(* ---- netstring-ish field framing: <len>:<bytes>, ---- *)

let add_netstring buf s =
  Buffer.add_string buf (string_of_int (String.length s));
  Buffer.add_char buf ':';
  Buffer.add_string buf s;
  Buffer.add_char buf ','

let read_netstring s pos =
  match String.index_from_opt s pos ':' with
  | None -> fail "missing netstring length at %d" pos
  | Some colon ->
    let len =
      match int_of_string_opt (String.sub s pos (colon - pos)) with
      | Some n when n >= 0 -> n
      | _ -> fail "bad netstring length at %d" pos
    in
    let stop = colon + 1 + len in
    if stop >= String.length s + 1 || stop >= String.length s && len > 0 then
      fail "truncated netstring at %d" pos;
    if stop >= String.length s || s.[stop] <> ',' then
      fail "unterminated netstring at %d" pos;
    (String.sub s (colon + 1) len, stop + 1)

let rec read_netstrings s pos acc =
  if pos >= String.length s then List.rev acc
  else
    let field, pos = read_netstring s pos in
    read_netstrings s pos (field :: acc)

(* ---- single "name\nrest" splitter ---- *)

let split_line s =
  match String.index_opt s '\n' with
  | None -> fail "missing field separator in %S" s
  | Some i ->
    (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

let body s = String.sub s 1 (String.length s - 1)

(* ---- requests ---- *)

let encode_request = function
  | Query sql -> "q" ^ sql
  | Set (name, v) -> "s" ^ name ^ "\n" ^ v
  | Prepare (name, sql) -> "p" ^ name ^ "\n" ^ sql
  | Exec_prepared (name, params) ->
    let buf = Buffer.create 64 in
    Buffer.add_char buf 'e';
    Buffer.add_string buf name;
    Buffer.add_char buf '\n';
    List.iter (fun v -> add_netstring buf (render_value v)) params;
    Buffer.contents buf
  | Close -> "x"

let decode_request s =
  if s = "" then fail "empty request";
  match s.[0] with
  | 'q' -> Query (body s)
  | 's' ->
    let name, v = split_line (body s) in
    Set (name, v)
  | 'p' ->
    let name, sql = split_line (body s) in
    Prepare (name, sql)
  | 'e' ->
    let name, rest = split_line (body s) in
    Exec_prepared (name, List.map parse_value (read_netstrings rest 0 []))
  | 'x' -> Close
  | c -> fail "unknown request opcode %C" c

(* ---- replies ---- *)

let encode_reply = function
  | Hello { server; workers } -> Printf.sprintf "H%s\n%d" server workers
  | Result { source; rows; ms; body } ->
    Printf.sprintf "R%s %d %h\n%s" source rows ms body
  | Err { kind; detail } -> "E" ^ kind ^ "\n" ^ detail

let decode_reply s =
  if s = "" then fail "empty reply";
  match s.[0] with
  | 'H' ->
    let server, w = split_line (body s) in
    let workers =
      match int_of_string_opt w with
      | Some n -> n
      | None -> fail "bad hello workers %S" w
    in
    Hello { server; workers }
  | 'R' ->
    let hdr, rbody = split_line (body s) in
    (match String.split_on_char ' ' hdr with
     | [ source; rows; ms ] ->
       let rows =
         match int_of_string_opt rows with
         | Some n -> n
         | None -> fail "bad result rows %S" rows
       in
       let ms =
         match float_of_string_opt ms with
         | Some f -> f
         | None -> fail "bad result ms %S" ms
       in
       Result { source; rows; ms; body = rbody }
     | _ -> fail "bad result header %S" hdr)
  | 'E' ->
    let kind, detail = split_line (body s) in
    Err { kind; detail }
  | c -> fail "unknown reply opcode %C" c
