(** Blocking client for the {!Server} wire protocol.

    One connection = one session.  Every call sends one request frame and
    reads one reply frame, so calls on a single client must not be made
    concurrently; the load generator gives each connection its own
    thread. *)

type t

val connect : ?host:string -> port:int -> unit -> t
(** Dial the server and read its [Hello].
    @raise Wire.Protocol_error if the server rejects the connection (a
    draining or full server replies with a typed error instead of
    [Hello] — the error detail is carried in the message);
    @raise Unix.Unix_error if nothing is listening. *)

val server : t -> string
val workers : t -> int
(** From the connection [Hello]. *)

val query : t -> string -> Protocol.reply
(** Any session statement: SELECT, INSERT / matview DDL,
    [EXPLAIN ANALYZE], [\metrics], [\dm]. *)

val set : t -> string -> string -> Protocol.reply
(** [set t "timeout_ms" "50"]; value ["default"] resets. *)

val prepare : t -> string -> string -> Protocol.reply
val exec_prepared : t -> string -> Value.t list -> Protocol.reply

val close : t -> unit
(** Polite close: send [Close], read the goodbye, shut the socket.
    Idempotent; swallows socket errors (the server may already be gone). *)

val abort : t -> unit
(** Abrupt close: drop the socket without a [Close] — from the server's
    side this is a client death, which must cancel any in-flight
    statement.  For churn tests. *)

val fd : t -> Unix.file_descr
