(** The binder: resolves a parsed script against a catalog and lowers it to
    the canonical multi-block form {!Block.query} (Figure 3).

    Handled here:
    - name resolution (qualified and bare columns, ambiguity detection);
    - CREATE VIEW registration; aggregate views referenced in FROM become
      {!Block.view}s, with their internal aliases renamed
      ["<outer alias>_<inner alias>"] so aliases stay globally unique;
    - SPJ views (no GROUP BY) are {e inlined} into the referencing block —
      the traditional flattening the paper contrasts against;
    - HAVING aggregate references are matched to select-list aggregates (or
      added as hidden aggregates);
    - correlated scalar aggregate subqueries in WHERE are flattened à la
      Kim [Kim82] into a join with a synthesized aggregate view grouped on
      the correlation columns (COUNT subqueries are rejected: the classic
      count bug makes the plain join transformation unsound for them). *)

exception Bind_error of string

val bind_script : Catalog.t -> Sql_ast.script -> Block.query
(** Process view definitions in order; the last statement must be a SELECT.
    @raise Bind_error on resolution or well-formedness failures. *)

val bind_sql : Catalog.t -> string -> Block.query
(** Parse and bind a script given as text. *)

val bind_insert :
  Catalog.t -> table:string -> Sql_ast.sexpr list list -> Tuple.t list
(** Type-check the literal VALUES rows of an INSERT against the table's
    visible columns (the hidden [_rid] key, when present, is assigned by
    {!Catalog.insert}).  Integer literals are coerced into Float columns.
    @raise Bind_error on an unknown table, wrong arity or a type clash. *)

val bind_matview_body : Catalog.t -> name:string -> Sql_ast.select -> Block.view
(** Bind the defining query of [CREATE MATERIALIZED VIEW name AS ...] as a
    {!Block.view} whose alias is the view's name.  The body must be a
    single-block aggregate query (GROUP BY required; DISTINCT, HAVING,
    ORDER BY and LIMIT rejected) whose aggregates are all decomposable.
    @raise Bind_error otherwise. *)
