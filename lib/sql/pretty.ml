open Sql_ast

let binop_str = function
  | Expr.Add -> "+"
  | Expr.Sub -> "-"
  | Expr.Mul -> "*"
  | Expr.Div -> "/"

let cmp_str = function
  | Expr.Eq -> "="
  | Expr.Ne -> "<>"
  | Expr.Lt -> "<"
  | Expr.Le -> "<="
  | Expr.Gt -> ">"
  | Expr.Ge -> ">="

let rec expr_to_string = function
  | E_col (None, n) -> n
  | E_col (Some q, n) -> q ^ "." ^ n
  | E_int i -> string_of_int i
  | E_float f -> Printf.sprintf "%g" f
  | E_string s -> "'" ^ String.concat "''" (String.split_on_char '\'' s) ^ "'"
  | E_binop (op, a, b) ->
    Printf.sprintf "(%s %s %s)" (expr_to_string a) (binop_str op) (expr_to_string b)

let agg_to_string (a : agg_call) =
  match a.afunc, a.aarg with
  | Aggregate.Count_star, _ -> "COUNT(*)"
  | f, Some e ->
    let name =
      match f with
      | Aggregate.Count -> "COUNT"
      | Aggregate.Sum -> "SUM"
      | Aggregate.Avg -> "AVG"
      | Aggregate.Min -> "MIN"
      | Aggregate.Max -> "MAX"
      | Aggregate.Udf u -> u.Aggregate.udf_name
      | Aggregate.Count_star -> assert false
    in
    Printf.sprintf "%s(%s)" name (expr_to_string e)
  | ( Aggregate.Count | Aggregate.Sum | Aggregate.Avg | Aggregate.Min
    | Aggregate.Max | Aggregate.Udf _ ), None ->
    assert false

let rec cond_to_string = function
  | C_cmp (op, a, b) ->
    Printf.sprintf "%s %s %s" (operand_to_string a) (cmp_str op) (operand_to_string b)
  | C_and (a, b) -> Printf.sprintf "(%s AND %s)" (cond_to_string a) (cond_to_string b)
  | C_or (a, b) -> Printf.sprintf "(%s OR %s)" (cond_to_string a) (cond_to_string b)
  | C_not a -> Printf.sprintf "NOT (%s)" (cond_to_string a)

and operand_to_string = function
  | O_expr e -> expr_to_string e
  | O_agg a -> agg_to_string a
  | O_subquery s -> "(" ^ select_to_string s ^ ")"

and select_to_string s =
  let item = function
    | I_expr (e, None) -> expr_to_string e
    | I_expr (e, Some a) -> expr_to_string e ^ " AS " ^ a
    | I_agg (c, None) -> agg_to_string c
    | I_agg (c, Some a) -> agg_to_string c ^ " AS " ^ a
    | I_star -> "*"
  in
  let from = function
    | t, None -> t
    | t, Some a -> t ^ " " ^ a
  in
  let buf = Buffer.create 128 in
  Buffer.add_string buf "SELECT ";
  if s.s_distinct then Buffer.add_string buf "DISTINCT ";
  Buffer.add_string buf (String.concat ", " (List.map item s.s_items));
  Buffer.add_string buf " FROM ";
  Buffer.add_string buf (String.concat ", " (List.map from s.s_from));
  (match s.s_where with
   | None -> ()
   | Some c -> Buffer.add_string buf (" WHERE " ^ cond_to_string c));
  (match s.s_group with
   | [] -> ()
   | cols ->
     let col = function None, n -> n | Some q, n -> q ^ "." ^ n in
     Buffer.add_string buf (" GROUP BY " ^ String.concat ", " (List.map col cols)));
  (match s.s_having with
   | None -> ()
   | Some c -> Buffer.add_string buf (" HAVING " ^ cond_to_string c));
  (match s.s_order with
   | [] -> ()
   | cols ->
     let col o =
       let base =
         match o.o_qual with None -> o.o_col | Some q -> q ^ "." ^ o.o_col
       in
       if o.o_desc then base ^ " DESC" else base
     in
     Buffer.add_string buf (" ORDER BY " ^ String.concat ", " (List.map col cols)));
  (match s.s_limit with
   | None -> ()
   | Some n -> Buffer.add_string buf (" LIMIT " ^ string_of_int n));
  Buffer.contents buf

let statement_to_string = function
  | S_select s -> select_to_string s
  | S_create_view v ->
    let cols =
      match v.cv_cols with
      | None -> ""
      | Some cs -> " (" ^ String.concat ", " cs ^ ")"
    in
    Printf.sprintf "CREATE VIEW %s%s AS %s" v.cv_name cols (select_to_string v.cv_body)
  | S_insert i ->
    let row vs = "(" ^ String.concat ", " (List.map expr_to_string vs) ^ ")" in
    Printf.sprintf "INSERT INTO %s VALUES %s" i.it_table
      (String.concat ", " (List.map row i.it_rows))
  | S_create_matview v ->
    Printf.sprintf "CREATE MATERIALIZED VIEW %s AS %s" v.mv_name
      (select_to_string v.mv_body)
  | S_drop_matview n -> "DROP MATERIALIZED VIEW " ^ n
  | S_refresh_matview n -> "REFRESH MATERIALIZED VIEW " ^ n

let script_to_string script =
  String.concat ";\n" (List.map statement_to_string script)
