(** Query canonicalization and literal parameterization.

    Turns a bound {!Block.query} into a deterministic {e template} plus a
    {e parameter vector}: every literal constant appearing in a predicate
    (view WHERE/HAVING, outer WHERE/HAVING) becomes a positional parameter,
    and top-level conjuncts are put into a canonical order, so that two
    queries differing only in predicate constants — or in the textual order
    of their conjuncts — share one template.  The template's serialization
    is what the service layer fingerprints for its plan cache.

    Constants outside predicates (aggregate arguments, select expressions,
    LIMIT) are treated as part of the template: changing them changes the
    fingerprint.  Plan templates are only ever re-bound at predicate
    positions, so this split keeps re-binding sound. *)

val order_preds : Expr.pred list -> Expr.pred list
(** Stable sort of conjuncts by their parameterized serialization.  Two
    conjuncts equal up to constants keep their original relative order, so
    extraction and substitution agree on parameter positions. *)

val serialize : Block.query -> string
(** Canonical template text: conjuncts ordered by {!order_preds}, predicate
    constants rendered as [?]; everything else (aliases, tables, grouping
    columns, aggregates, select list, ORDER BY, LIMIT) rendered literally.
    Deterministic across runs and OCaml versions. *)

val params : Block.query -> Value.t list
(** The query's predicate constants, in canonical (template) order. *)

val substitute : Block.query -> Value.t list -> Block.query
(** [substitute q vals] rewrites the i-th canonical predicate constant of
    [q] to [List.nth vals i] — the inverse of {!params}:
    [substitute q (params q) = q] up to conjunct order.
    @raise Invalid_argument when the vector length differs from
    [List.length (params q)], or when a value's type does not match the
    constant it replaces (an ill-typed plan would otherwise execute and
    return meaningless comparisons instead of failing cleanly). *)
