(* Abstract syntax of the supported SQL subset: single-block SELECTs with
   GROUP BY / HAVING, CREATE VIEW, and correlated scalar aggregate
   subqueries in WHERE (for Kim-style unnesting).  Shared type definitions:
   opened by the parser, pretty-printer and binder. *)

type sexpr =
  | E_col of string option * string  (* optional qualifier, column *)
  | E_int of int
  | E_float of float
  | E_string of string
  | E_binop of Expr.binop * sexpr * sexpr

type agg_call = {
  afunc : Aggregate.func;
  aarg : sexpr option;  (* None only for COUNT star *)
}

type operand =
  | O_expr of sexpr
  | O_agg of agg_call        (* aggregate reference, only valid in HAVING *)
  | O_subquery of select     (* scalar subquery, only valid in WHERE *)

and cond =
  | C_cmp of Expr.cmp * operand * operand
  | C_and of cond * cond
  | C_or of cond * cond
  | C_not of cond

and select_item =
  | I_expr of sexpr * string option  (* expression, optional AS alias *)
  | I_agg of agg_call * string option
  | I_star  (* SELECT *: every visible column of every FROM entry, in order *)

and order_item = {
  o_qual : string option;
  o_col : string;
  o_desc : bool;
}

and select = {
  s_distinct : bool;
  s_items : select_item list;
  s_from : (string * string option) list;  (* table-or-view, optional alias *)
  s_where : cond option;
  s_group : (string option * string) list;
  s_having : cond option;
  s_order : order_item list;
  s_limit : int option;
}

type statement =
  | S_select of select
  | S_create_view of {
      cv_name : string;
      cv_cols : string list option;  (* optional explicit column names *)
      cv_body : select;
    }
  | S_insert of {
      it_table : string;
      it_rows : sexpr list list;  (* VALUES rows, literal expressions *)
    }
  | S_create_matview of {
      mv_name : string;
      mv_body : select;  (* single-block aggregate query over base tables *)
    }
  | S_drop_matview of string
  | S_refresh_matview of string

type script = statement list
