open Sql_ast

exception Bind_error of string

let err fmt = Format.kasprintf (fun s -> raise (Bind_error s)) fmt

(* ---- scopes ---- *)

type scope = {
  sc_alias : string;
  sc_lookup : string -> Schema.column option;
  sc_columns : unit -> (string * Schema.column) list;
      (* visible columns in declaration order, for SELECT * expansion *)
}

let scope_of_table cat alias table_name =
  match Catalog.find_table cat table_name with
  | None -> err "unknown table or view %s" table_name
  | Some tbl ->
    let schema = Schema.rename_qualifier tbl.Catalog.tschema alias in
    {
      sc_alias = alias;
      sc_lookup =
        (fun name ->
          Option.map (Schema.get schema) (Schema.find schema ~qual:alias name));
      sc_columns =
        (fun () ->
          List.filter_map
            (fun (c : Schema.column) ->
              if String.equal c.Schema.cname "_rid" then None
              else Some (c.Schema.cname, c))
            (Schema.columns schema));
    }

let scope_of_columns alias cols =
  {
    sc_alias = alias;
    sc_lookup = (fun name -> List.assoc_opt name cols);
    sc_columns = (fun () -> cols);
  }

let resolve_col scopes qual name =
  match qual with
  | Some q -> (
    match List.find_opt (fun s -> String.equal s.sc_alias q) scopes with
    | None -> err "unknown alias %s" q
    | Some s -> (
      match s.sc_lookup name with
      | Some c -> c
      | None -> err "no column %s in %s" name q))
  | None -> (
    let hits =
      List.filter_map
        (fun s -> Option.map (fun c -> (s.sc_alias, c)) (s.sc_lookup name))
        scopes
    in
    match hits with
    | [ (_, c) ] -> c
    | [] -> err "unknown column %s" name
    | _ :: _ :: _ -> err "ambiguous column %s" name)

let rec bind_expr scopes = function
  | E_col (q, n) -> Expr.Col (resolve_col scopes q n)
  | E_int i -> Expr.Const (Value.Int i)
  | E_float f -> Expr.Const (Value.Float f)
  | E_string s -> Expr.Const (Value.String s)
  | E_binop (op, a, b) -> Expr.Binop (op, bind_expr scopes a, bind_expr scopes b)

(* ---- aggregates ---- *)

type agg_acc = {
  mutable aggs : (agg_call option * Aggregate.t) list;
      (* source call (for HAVING matching) and the bound aggregate *)
  mutable counter : int;
  agg_scopes : scope list;  (* scopes for aggregate arguments *)
}

let same_call a b =
  a.afunc = b.afunc
  &&
  match a.aarg, b.aarg with
  | None, None -> true
  | Some x, Some y -> x = y
  | _ -> false

let bind_agg acc ?name call =
  match
    List.find_opt
      (fun (src, _) -> match src with Some c -> same_call c call | None -> false)
      acc.aggs
  with
  | Some (_, bound) -> bound
  | None ->
    let out_name =
      match name with
      | Some n -> n
      | None ->
        acc.counter <- acc.counter + 1;
        Printf.sprintf "agg%d" acc.counter
    in
    let arg = Option.map (bind_expr acc.agg_scopes) call.aarg in
    let bound =
      match arg with
      | None -> Aggregate.make call.afunc out_name
      | Some a -> Aggregate.make call.afunc ~arg:a out_name
    in
    acc.aggs <- acc.aggs @ [ (Some call, bound) ];
    bound

(* ---- conditions ---- *)

(* Bind a condition into conjuncts.  [on_agg] maps an aggregate call to the
   column carrying its result (HAVING); [on_subquery] flattens a correlated
   subquery comparison into replacement conjuncts (WHERE). *)
let rec bind_cond ~scopes ~on_agg ~on_subquery cond : Expr.pred list =
  match cond with
  | C_and (a, b) ->
    bind_cond ~scopes ~on_agg ~on_subquery a
    @ bind_cond ~scopes ~on_agg ~on_subquery b
  | c -> [ bind_cond1 ~scopes ~on_agg ~on_subquery c ]

and bind_cond1 ~scopes ~on_agg ~on_subquery cond : Expr.pred =
  let operand = function
    | O_expr e -> bind_expr scopes e
    | O_agg call -> (
      match on_agg with
      | Some f -> Expr.Col (f call)
      | None -> err "aggregate not allowed here")
    | O_subquery _ -> err "subquery only allowed as a comparison operand in WHERE"
  in
  match cond with
  | C_cmp (op, O_subquery sub, rhs) -> (
    match on_subquery with
    | Some f -> f op ~sub ~other:(operand rhs) ~sub_on_left:true
    | None -> err "subquery not allowed here")
  | C_cmp (op, lhs, O_subquery sub) -> (
    match on_subquery with
    | Some f -> f op ~sub ~other:(operand lhs) ~sub_on_left:false
    | None -> err "subquery not allowed here")
  | C_cmp (op, a, b) -> Expr.Cmp (op, operand a, operand b)
  | C_and (a, b) ->
    Expr.And
      ( bind_cond1 ~scopes ~on_agg ~on_subquery a,
        bind_cond1 ~scopes ~on_agg ~on_subquery b )
  | C_or (a, b) ->
    Expr.Or
      ( bind_cond1 ~scopes ~on_agg ~on_subquery a,
        bind_cond1 ~scopes ~on_agg ~on_subquery b )
  | C_not a -> Expr.Not (bind_cond1 ~scopes ~on_agg ~on_subquery a)

(* ---- views ---- *)

(* Bind a view body (single block over base tables, with GROUP BY) as a
   Block.view instantiated under [outer_alias]. *)
let bind_aggregate_view cat ~outer_alias ~explicit_cols body =
  if body.s_group = [] then err "view %s: aggregate view needs GROUP BY" outer_alias;
  if body.s_distinct then err "view %s: DISTINCT not supported in views" outer_alias;
  if body.s_order <> [] || body.s_limit <> None then
    err "view %s: ORDER BY / LIMIT not allowed in a view" outer_alias;
  let rels =
    List.map
      (fun (table, alias) ->
        let inner = Option.value ~default:table alias in
        { Block.r_alias = outer_alias ^ "_" ^ inner; r_table = table })
      body.s_from
  in
  (* scopes use the renamed aliases; bare inner aliases resolve via rename *)
  let scopes =
    List.map2
      (fun (table, alias) r ->
        let inner = Option.value ~default:table alias in
        let base = scope_of_table cat r.Block.r_alias r.Block.r_table in
        { base with sc_alias = inner })
      body.s_from rels
    @ List.map (fun r -> scope_of_table cat r.Block.r_alias r.Block.r_table) rels
  in
  let preds =
    match body.s_where with
    | None -> []
    | Some c -> bind_cond ~scopes ~on_agg:None ~on_subquery:None c
  in
  let keys = List.map (fun (q, n) -> resolve_col scopes q n) body.s_group in
  let acc = { aggs = []; counter = 0; agg_scopes = scopes } in
  let out_rev = ref [] in
  List.iteri
    (fun i item ->
      let explicit_name =
        Option.bind explicit_cols (fun cols -> List.nth_opt cols i)
      in
      match item with
      | I_expr (E_col (q, n), alias) ->
        let c = resolve_col scopes q n in
        if not (List.exists (Schema.column_equal c) keys) then
          err "view %s: selected column %s is not a grouping column" outer_alias n;
        let name =
          match explicit_name, alias with
          | Some e, _ -> e
          | None, Some a -> a
          | None, None -> n
        in
        out_rev := Block.Out_key (c, name) :: !out_rev
      | I_expr _ -> err "view %s: select list supports columns and aggregates" outer_alias
      | I_star -> err "view %s: SELECT * not allowed in a view" outer_alias
      | I_agg (call, alias) ->
        let name =
          match explicit_name, alias with
          | Some e, _ -> Some e
          | None, Some a -> Some a
          | None, None -> None
        in
        let bound = bind_agg acc ?name call in
        out_rev := Block.Out_agg bound :: !out_rev)
    body.s_items;
  let having =
    match body.s_having with
    | None -> []
    | Some c ->
      let on_agg call =
        let bound = bind_agg acc call in
        Schema.column ~qual:outer_alias bound.Aggregate.out_name
          (Aggregate.result_type bound)
      in
      bind_cond ~scopes ~on_agg:(Some on_agg) ~on_subquery:None c
  in
  {
    Block.v_alias = outer_alias;
    v_rels = rels;
    v_preds = preds;
    v_keys = keys;
    v_aggs = List.map snd acc.aggs;
    v_having = having;
    v_out = List.rev !out_rev;
  }

(* An SPJ view (no GROUP BY): inlined into the outer block.  Returns the
   relations and predicates to merge plus a column-mapping scope. *)
let bind_spj_view cat ~outer_alias ~explicit_cols body =
  if body.s_having <> None then err "view %s: HAVING without GROUP BY" outer_alias;
  if body.s_order <> [] || body.s_limit <> None then
    err "view %s: ORDER BY / LIMIT not allowed in a view" outer_alias;
  let rels =
    List.map
      (fun (table, alias) ->
        let inner = Option.value ~default:table alias in
        { Block.r_alias = outer_alias ^ "_" ^ inner; r_table = table })
      body.s_from
  in
  let scopes =
    List.map2
      (fun (table, alias) r ->
        let inner = Option.value ~default:table alias in
        let base = scope_of_table cat r.Block.r_alias r.Block.r_table in
        { base with sc_alias = inner })
      body.s_from rels
    @ List.map (fun r -> scope_of_table cat r.Block.r_alias r.Block.r_table) rels
  in
  let preds =
    match body.s_where with
    | None -> []
    | Some c -> bind_cond ~scopes ~on_agg:None ~on_subquery:None c
  in
  let exports =
    List.mapi
      (fun i item ->
        let explicit_name =
          Option.bind explicit_cols (fun cols -> List.nth_opt cols i)
        in
        match item with
        | I_expr (E_col (q, n), alias) ->
          let c = resolve_col scopes q n in
          let name =
            match explicit_name, alias with
            | Some e, _ -> e
            | None, Some a -> a
            | None, None -> n
          in
          (name, c)
        | I_expr _ | I_agg _ | I_star ->
          err "view %s: SPJ view select list must be plain columns" outer_alias)
      body.s_items
  in
  (rels, preds, scope_of_columns outer_alias exports)

(* ---- the outer block ---- *)

type from_entry =
  | F_table of Block.rel
  | F_agg_view of Block.view
  | F_inlined of Block.rel list * Expr.pred list * scope

let bind ~views cat (sel : select) : Block.query =
  let sub_counter = ref 0 in
  let entries =
    List.map
      (fun (name, alias) ->
        let outer_alias = Option.value ~default:name alias in
        match List.assoc_opt name views with
        | None ->
          if Catalog.find_table cat name = None then err "unknown table or view %s" name;
          F_table { Block.r_alias = outer_alias; r_table = name }
        | Some (cols, body) ->
          if body.s_group = [] then
            let rels, preds, scope =
              bind_spj_view cat ~outer_alias ~explicit_cols:cols body
            in
            F_inlined (rels, preds, scope)
          else F_agg_view (bind_aggregate_view cat ~outer_alias ~explicit_cols:cols body))
      sel.s_from
  in
  let base_scopes =
    List.map
      (function
        | F_table r -> scope_of_table cat r.Block.r_alias r.Block.r_table
        | F_agg_view v ->
          let schema = Block.view_schema v in
          {
            sc_alias = v.Block.v_alias;
            sc_lookup =
              (fun name ->
                Option.map (Schema.get schema)
                  (Schema.find schema ~qual:v.Block.v_alias name));
            sc_columns =
              (fun () ->
                List.map
                  (fun (c : Schema.column) -> (c.Schema.cname, c))
                  (Schema.columns schema));
          }
        | F_inlined (_, _, scope) -> scope)
      entries
  in
  let extra_views = ref [] in
  let extra_preds = ref [] in
  (* Kim-style flattening of a correlated scalar aggregate subquery. *)
  let flatten_subquery op ~sub ~other ~sub_on_left =
    incr sub_counter;
    let valias = Printf.sprintf "sub%d" !sub_counter in
    (match sub.s_items with
     | [ I_agg ({ afunc = Aggregate.Count | Aggregate.Count_star; _ }, _) ] ->
       err "COUNT subqueries cannot be flattened soundly (count bug); rewrite manually"
     | [ I_agg _ ] -> ()
     | _ -> err "subquery must select exactly one aggregate");
    if sub.s_group <> [] then err "subquery must not have GROUP BY";
    let inner_rels =
      List.map
        (fun (table, alias) ->
          let inner = Option.value ~default:table alias in
          { Block.r_alias = valias ^ "_" ^ inner; r_table = table })
        sub.s_from
    in
    let inner_scopes =
      List.map2
        (fun (table, alias) r ->
          let inner = Option.value ~default:table alias in
          let base = scope_of_table cat r.Block.r_alias r.Block.r_table in
          { base with sc_alias = inner })
        sub.s_from inner_rels
      @ List.map (fun r -> scope_of_table cat r.Block.r_alias r.Block.r_table) inner_rels
    in
    (* Inner names shadow outer ones. *)
    let scopes = inner_scopes @ base_scopes in
    let conjuncts =
      match sub.s_where with
      | None -> []
      | Some c -> bind_cond ~scopes ~on_agg:None ~on_subquery:None c
    in
    let is_inner (c : Schema.column) =
      List.exists (fun r -> String.equal r.Block.r_alias c.Schema.cqual) inner_rels
    in
    let correlated, local =
      List.partition
        (fun p -> List.exists (fun c -> not (is_inner c)) (Expr.pred_columns p))
        conjuncts
    in
    let corr_pairs =
      List.map
        (fun p ->
          match Expr.as_equijoin p with
          | Some (a, b) when is_inner a && not (is_inner b) -> (a, b)
          | Some (a, b) when is_inner b && not (is_inner a) -> (b, a)
          | _ ->
            err "correlated predicate must be an equality inner-column = outer-column")
        correlated
    in
    if sub.s_order <> [] || sub.s_limit <> None then
      err "subquery: ORDER BY / LIMIT not allowed";
    let agg =
      match sub.s_items with
      | [ I_agg (call, _) ] ->
        let acc = { aggs = []; counter = 0; agg_scopes = inner_scopes } in
        bind_agg acc ~name:"agg" call
      | _ -> assert false
    in
    let keys = List.map fst corr_pairs in
    let out =
      List.mapi (fun i (k, _) -> Block.Out_key (k, Printf.sprintf "k%d" i)) corr_pairs
      @ [ Block.Out_agg agg ]
    in
    let view =
      {
        Block.v_alias = valias;
        v_rels = inner_rels;
        v_preds = local;
        v_keys = keys;
        v_aggs = [ agg ];
        v_having = [];
        v_out = out;
      }
    in
    extra_views := !extra_views @ [ view ];
    let key_eqs =
      List.mapi
        (fun i ((k : Schema.column), outer_col) ->
          Expr.Cmp
            ( Expr.Eq,
              Expr.Col outer_col,
              Expr.Col (Schema.column ~qual:valias (Printf.sprintf "k%d" i) k.Schema.cty)
            ))
        corr_pairs
    in
    extra_preds := !extra_preds @ key_eqs;
    let agg_col =
      Expr.Col
        (Schema.column ~qual:valias agg.Aggregate.out_name (Aggregate.result_type agg))
    in
    if sub_on_left then Expr.Cmp (op, agg_col, other)
    else Expr.Cmp (op, other, agg_col)
  in
  let preds =
    match sel.s_where with
    | None -> []
    | Some c ->
      bind_cond ~scopes:base_scopes ~on_agg:None
        ~on_subquery:(Some flatten_subquery) c
  in
  let keys = List.map (fun (q, n) -> resolve_col base_scopes q n) sel.s_group in
  let acc = { aggs = []; counter = 0; agg_scopes = base_scopes } in
  let select_rev = ref [] in
  List.iter
    (fun item ->
      match item with
      | I_expr (E_col (q, n), alias) ->
        let c = resolve_col base_scopes q n in
        let name = Option.value ~default:n alias in
        select_rev := Block.Sel_col (c, name) :: !select_rev
      | I_expr _ -> err "select list supports columns and aggregates only"
      | I_star ->
        List.iter
          (fun scope ->
            List.iter
              (fun (n, c) -> select_rev := Block.Sel_col (c, n) :: !select_rev)
              (scope.sc_columns ()))
          base_scopes
      | I_agg (call, alias) ->
        let bound = bind_agg acc ?name:alias call in
        select_rev := Block.Sel_agg bound :: !select_rev)
    sel.s_items;
  let having =
    match sel.s_having with
    | None -> []
    | Some c ->
      let on_agg call =
        let bound = bind_agg acc call in
        Schema.column ~qual:"" bound.Aggregate.out_name (Aggregate.result_type bound)
      in
      bind_cond ~scopes:base_scopes ~on_agg:(Some on_agg) ~on_subquery:None c
  in
  (* SELECT DISTINCT c1..cn == GROUP BY c1..cn with no aggregates. *)
  let keys, distinct_grouped =
    if not sel.s_distinct then (keys, false)
    else if keys <> [] || acc.aggs <> [] then
      err "DISTINCT cannot be combined with GROUP BY or aggregates"
    else
      ( List.filter_map
          (function Block.Sel_col (c, _) -> Some c | Block.Sel_agg _ -> None)
          (List.rev !select_rev),
        true )
  in
  let grouped = sel.s_group <> [] || acc.aggs <> [] || distinct_grouped in
  if grouped then
    List.iter
      (function
        | Block.Sel_col (c, _) when not (List.exists (Schema.column_equal c) keys) ->
          err "selected column %s not in GROUP BY" (Schema.column_to_string c)
        | Block.Sel_col _ | Block.Sel_agg _ -> ())
      !select_rev;
  let inlined_rels =
    List.concat_map (function F_inlined (rs, _, _) -> rs | F_table _ | F_agg_view _ -> []) entries
  in
  let inlined_preds =
    List.concat_map (function F_inlined (_, ps, _) -> ps | F_table _ | F_agg_view _ -> []) entries
  in
  {
    Block.q_views =
      List.filter_map (function F_agg_view v -> Some v | F_table _ | F_inlined _ -> None) entries
      @ !extra_views;
    q_rels =
      List.filter_map (function F_table r -> Some r | F_agg_view _ | F_inlined _ -> None) entries
      @ inlined_rels;
    q_preds = preds @ inlined_preds @ !extra_preds;
    q_grouped = grouped;
    q_keys = keys;
    q_aggs = List.map snd acc.aggs;
    q_having = having;
    q_select = List.rev !select_rev;
    q_order =
      (let select = List.rev !select_rev in
       let out_names =
         List.map
           (function
             | Block.Sel_col (_, n) -> n
             | Block.Sel_agg a -> a.Aggregate.out_name)
           select
       in
       List.map
         (fun { o_qual = qual; o_col = name; o_desc } ->
           let resolved =
             match qual with
             | None when List.exists (String.equal name) out_names -> name
             | _ -> (
               (* Qualified (or non-output) reference: find the select item
                  computing that column. *)
               let col = resolve_col base_scopes qual name in
               match
                 List.find_map
                   (function
                     | Block.Sel_col (c, n) when Schema.column_equal c col -> Some n
                     | Block.Sel_col _ | Block.Sel_agg _ -> None)
                   select
               with
               | Some n -> n
               | None -> err "ORDER BY column %s is not selected" name)
           in
           (resolved, o_desc))
         sel.s_order);
    q_limit = sel.s_limit;
  }

let bind_script cat script =
  let rec process views = function
    | [] -> err "script contains no SELECT statement"
    | [ S_select sel ] -> bind ~views cat sel
    | S_select _ :: _ -> err "only the final statement may be a SELECT"
    | (S_insert _ | S_create_matview _ | S_drop_matview _ | S_refresh_matview _)
      :: _ ->
      err "INSERT / MATERIALIZED VIEW statements must be submitted on their own"
    | S_create_view v :: rest ->
      if List.mem_assoc v.cv_name views then err "duplicate view %s" v.cv_name;
      process ((v.cv_name, (v.cv_cols, v.cv_body)) :: views) rest
  in
  process [] script

let bind_sql cat src = bind_script cat (Parser.parse_script src)

(* ---- write path and materialized views ---- *)

(* Visible columns of a table: everything except the hidden [_rid] key the
   catalog synthesizes for tables loaded without a declared primary key. *)
let visible_columns (tbl : Catalog.table) =
  List.filter
    (fun (c : Schema.column) -> not (String.equal c.Schema.cname "_rid"))
    (Schema.columns tbl.Catalog.tschema)

let bind_insert cat ~table rows =
  let tbl =
    match Catalog.find_table cat table with
    | Some tbl -> tbl
    | None -> err "INSERT: unknown table %s" table
  in
  let cols = visible_columns tbl in
  let arity = List.length cols in
  let literal = function
    | E_int i -> Value.Int i
    | E_float f -> Value.Float f
    | E_string s -> Value.String s
    | E_col _ | E_binop _ -> err "INSERT: VALUES rows must be literals"
  in
  List.map
    (fun row ->
      if List.length row <> arity then
        err "INSERT into %s: expected %d values, got %d" table arity
          (List.length row);
      Tuple.make
        (List.map2
           (fun (c : Schema.column) e ->
             let v = literal e in
             match v, c.Schema.cty with
             | Value.Int i, Datatype.Float -> Value.Float (float_of_int i)
             | v, ty when Datatype.equal (Value.type_of v) ty -> v
             | v, ty ->
               err "INSERT into %s: column %s expects %s, got %s" table
                 c.Schema.cname (Datatype.to_string ty)
                 (Datatype.to_string (Value.type_of v)))
           cols row))
    rows

let bind_matview_body cat ~name body =
  if body.s_having <> None then
    err "materialized view %s: HAVING is not supported (filter at query time)"
      name;
  let v = bind_aggregate_view cat ~outer_alias:name ~explicit_cols:None body in
  List.iter
    (fun (a : Aggregate.t) ->
      if not (Aggregate.is_decomposable a) then
        err "materialized view %s: aggregate %s is not decomposable" name
          (Aggregate.to_string a))
    v.Block.v_aggs;
  v
